GO ?= go

.PHONY: all check vet build test race bench

all: check

# check is the CI gate: vet, build, and the full test suite under the
# race detector.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
