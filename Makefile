GO ?= go

.PHONY: all check vet build test race bench soak

all: check

# check is the CI gate: vet, build, and the full test suite under the
# race detector.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the whole suite under the race detector — including the sweep
# executor tests in internal/exp, which fan hermetic simulations across a
# worker pool and are the main thing the detector is here to watch.
race:
	$(GO) test -race ./...

# soak runs the deterministic chaos campaign under the race detector:
# seeded random fail/burst/wake-fault/stall + repair schedules across all
# four topologies, full-rate audited, with byte-identical replays
# required per seed. Widen the campaign with MEMNET_SOAK_SEEDS=1,2,...,N.
soak:
	$(GO) test -race -count=1 -run TestChaosSoak ./internal/fault/

# bench regenerates the paper-shaped testing.B benchmarks and writes the
# machine-readable sweep-executor record (events/sec, wall time, speedup)
# to BENCH_sweep.json so the perf trajectory is tracked across PRs.
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
	$(GO) run ./cmd/memnetsim -sweepbench BENCH_sweep.json
