GO ?= go

.PHONY: all check vet build test race bench soak cover fuzz benchdiff distsmoke daemonsmoke daemonrestartsmoke profile calib

all: check

# check is the CI gate: vet, build, and the full test suite under the
# race detector.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the whole suite under the race detector — including the sweep
# executor tests in internal/exp, which fan hermetic simulations across a
# worker pool and are the main thing the detector is here to watch.
race:
	$(GO) test -race ./...

# soak runs the deterministic chaos campaigns under the race detector:
# seeded random fail/burst/wake-fault/stall + repair schedules across all
# four topologies (byte-identical replays required per seed), the
# distributed churn soak (seeded worker kills mid-sweep, byte-identical
# merged journal required), and the daemon lifecycle soak (concurrent
# submissions, mid-stream disconnects, drain under load; no goroutine
# leaks, byte-identical cache hits). Widen with MEMNET_SOAK_SEEDS=1,...,N.
soak:
	$(GO) test -race -count=1 -run TestChaosSoak ./internal/fault/
	$(GO) test -race -count=1 -run TestChurnSoak ./internal/dist/
	$(GO) test -race -count=1 -run 'TestChaosSoak|TestCrashRestartSoak' ./internal/serve/

# distsmoke runs the real-process distributed sweep check: a coordinator,
# two workers, one SIGKILLed mid-sweep and replaced, requiring the merged
# journal, stdout, and figure files to match a single-process run byte
# for byte.
distsmoke:
	$(GO) test -count=1 -run TestDistributedSmoke ./cmd/experiments/

# daemonsmoke runs the real-process memnetd lifecycle check: start the
# daemon, submit and stream a sweep, verify the duplicate submission is
# a cache hit, then SIGTERM it with a job in flight and require a clean
# drain (prompt kernel cancellation, valid journal, exit <= 1). The
# race detector rides along — the daemon is the most concurrent binary
# in the repo.
daemonsmoke:
	$(GO) test -race -count=1 -run TestDaemonSmoke ./cmd/memnetd/

# daemonrestartsmoke is the crash-recovery counterpart: SIGKILL a real
# memnetd with one job mid-kernel and one queued, restart it on the same
# store, and require both jobs to finish under their original IDs, the
# first life's stored result to come back as a byte-identical cache hit
# (no duplicate simulation), and the accept journal to owe nothing.
daemonrestartsmoke:
	$(GO) test -race -count=1 -run TestDaemonRestartSmoke ./cmd/memnetd/

# bench regenerates the paper-shaped testing.B benchmarks and writes the
# machine-readable sweep-executor record (events/sec, wall time, speedup)
# to BENCH_sweep.json so the perf trajectory is tracked across PRs.
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
	$(GO) run ./cmd/memnetsim -sweepbench BENCH_sweep.json

# COVER_FLOOR is the post-calibration-PR baseline over ./internal/... —
# the cover gate fails if total statement coverage drops below it. cmd/*
# packages are excluded: their tests drive compiled subprocesses, which
# the coverage profiler cannot see.
COVER_FLOOR ?= 90.3

# cover measures library coverage and enforces the floor.
cover:
	$(GO) test -count=1 -coverprofile=cover.out ./internal/...
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
	  { echo "coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; }

# calib runs the model-calibration harness: every published reference row
# and sensitivity band must be within tolerance (the CLI exits nonzero
# otherwise), and the report must match the committed accuracy report
# byte for byte so model drift cannot land silently. Regenerate the
# golden deliberately with:
#   go run ./cmd/experiments -calibrate > results/calibration.txt
calib:
	$(GO) run ./cmd/experiments -calibrate > /tmp/calibration_check.txt
	@cmp /tmp/calibration_check.txt results/calibration.txt || \
	  { echo "results/calibration.txt drifted from the live model; regenerate deliberately (see Makefile)"; exit 1; }
	@echo "calibration report matches results/calibration.txt"

# fuzz smoke-runs the committed seed corpora (no fuzzing engine; CI-safe)
# then fuzzes each target briefly. Lengthen with FUZZTIME=30s.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run Fuzz ./internal/exp ./internal/fault ./internal/dist ./internal/calib
	$(GO) test -run='^$$' -fuzz=FuzzLoadBatch -fuzztime=$(FUZZTIME) ./internal/exp
	$(GO) test -run='^$$' -fuzz=FuzzParseScenario -fuzztime=$(FUZZTIME) ./internal/fault
	$(GO) test -run='^$$' -fuzz='FuzzWire$$' -fuzztime=$(FUZZTIME) ./internal/dist
	$(GO) test -run='^$$' -fuzz=FuzzWireRequests -fuzztime=$(FUZZTIME) ./internal/dist
	$(GO) test -run='^$$' -fuzz=FuzzCalibReference -fuzztime=$(FUZZTIME) ./internal/calib

# profile runs the standard benchmark sweep under the CPU and heap
# profilers and prints the top CPU consumers. Inspect interactively with
#   go tool pprof cpu.pprof      (or mem.pprof)
profile:
	$(GO) run ./cmd/memnetsim -sweepbench /tmp/bench_profile.json \
		-cpuprofile cpu.pprof -memprofile mem.pprof
	$(GO) tool pprof -top -nodecount=15 cpu.pprof

# benchdiff measures a fresh sweep benchmark and diffs it against the
# committed BENCH_sweep.json with a tolerance band; it hard-fails beyond
# the band. CI runs it blocking with a widened BENCHDIFF_TOL to absorb
# shared-runner clock noise while still catching real regressions.
BENCHDIFF_TOL ?= 0.25
benchdiff:
	$(GO) run ./cmd/memnetsim -sweepbench /tmp/bench_fresh.json
	$(GO) run ./cmd/benchdiff -tol $(BENCHDIFF_TOL) BENCH_sweep.json /tmp/bench_fresh.json
