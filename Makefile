GO ?= go

.PHONY: all check vet build test race bench soak cover fuzz benchdiff

all: check

# check is the CI gate: vet, build, and the full test suite under the
# race detector.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the whole suite under the race detector — including the sweep
# executor tests in internal/exp, which fan hermetic simulations across a
# worker pool and are the main thing the detector is here to watch.
race:
	$(GO) test -race ./...

# soak runs the deterministic chaos campaign under the race detector:
# seeded random fail/burst/wake-fault/stall + repair schedules across all
# four topologies, full-rate audited, with byte-identical replays
# required per seed. Widen the campaign with MEMNET_SOAK_SEEDS=1,2,...,N.
soak:
	$(GO) test -race -count=1 -run TestChaosSoak ./internal/fault/

# bench regenerates the paper-shaped testing.B benchmarks and writes the
# machine-readable sweep-executor record (events/sec, wall time, speedup)
# to BENCH_sweep.json so the perf trajectory is tracked across PRs.
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
	$(GO) run ./cmd/memnetsim -sweepbench BENCH_sweep.json

# COVER_FLOOR is the pre-metrics-PR baseline over ./internal/... — the
# cover gate fails if total statement coverage drops below it. cmd/*
# packages are excluded: their tests drive compiled subprocesses, which
# the coverage profiler cannot see.
COVER_FLOOR ?= 89.8

# cover measures library coverage and enforces the floor.
cover:
	$(GO) test -count=1 -coverprofile=cover.out ./internal/...
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
	  { echo "coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; }

# fuzz smoke-runs the committed seed corpora (no fuzzing engine; CI-safe)
# then fuzzes each target briefly. Lengthen with FUZZTIME=30s.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run Fuzz ./internal/exp ./internal/fault
	$(GO) test -run='^$$' -fuzz=FuzzLoadBatch -fuzztime=$(FUZZTIME) ./internal/exp
	$(GO) test -run='^$$' -fuzz=FuzzParseScenario -fuzztime=$(FUZZTIME) ./internal/fault

# benchdiff measures a fresh sweep benchmark and diffs it against the
# committed BENCH_sweep.json with a tolerance band. Informational in CI
# (shared runners have noisy clocks); hard-fails locally beyond ±25%.
benchdiff:
	$(GO) run ./cmd/memnetsim -sweepbench /tmp/bench_fresh.json
	$(GO) run ./cmd/benchdiff BENCH_sweep.json /tmp/bench_fresh.json
