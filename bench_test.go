// Package memnet_test carries the benchmark harness: one testing.B
// benchmark per table/figure of the paper's evaluation, plus ablation
// benches for the design choices DESIGN.md calls out. Each benchmark runs
// a reduced-but-representative slice of the corresponding sweep and
// reports domain metrics (W/HMC, power saving, perf degradation) through
// b.ReportMetric, so `go test -bench=. -benchmem` regenerates the shape of
// every result.
//
// The full-resolution sweeps (all 14 workloads × 4 topologies × both
// sizes) live behind cmd/experiments; benchmarks use a fixed workload
// subset so a complete -bench=. pass stays laptop-sized.
package memnet_test

import (
	"testing"

	"memnet/internal/core"
	"memnet/internal/dram"
	"memnet/internal/exp"
	"memnet/internal/link"
	"memnet/internal/network"
	"memnet/internal/packet"
	"memnet/internal/sim"
	"memnet/internal/stats"
	"memnet/internal/topology"
	"memnet/internal/workload"
)

// benchWorkloads is the representative subset used by the benchmarks:
// the lowest-utilization workload, the highest, one HPC middle case and
// one cloud middle case.
var benchWorkloads = []string{"sp.D", "mixB", "mg.D", "mixC"}

func benchRunner() *exp.Runner {
	r := exp.NewRunner()
	r.SimTime = 200 * sim.Microsecond
	r.Warmup = 50 * sim.Microsecond
	// A hung benchmark should fail fast with a diagnostic dump, not spin
	// until the test binary's external timeout kills it.
	r.Watchdog = true
	return r
}

func wl(b *testing.B, name string) *workload.Profile {
	b.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// benchSpec is the common single-cell configuration.
func benchSpec(b *testing.B, wlName string, topo topology.Kind, size exp.NetworkSize,
	mech exp.Mech, pol core.PolicyKind, alpha float64) exp.Spec {
	return exp.Spec{
		Workload: wl(b, wlName), Topology: topo, Size: size,
		Mech: mech, Policy: pol, Alpha: alpha,
	}
}

// BenchmarkTableI exercises the DRAM timing model (Table I): sustained
// single-module read throughput.
func BenchmarkTableI(b *testing.B) {
	r := benchRunner()
	spec := benchSpec(b, "mixG", topology.DaisyChain, exp.Small, exp.MechFP, core.PolicyNone, 0)
	var res exp.Result
	for i := 0; i < b.N; i++ {
		res = r.Run(spec)
		r = benchRunner() // defeat the cache so b.N iterations measure work
	}
	b.ReportMetric(res.AvgReadLatency.Nanoseconds(), "read-ns")
}

// BenchmarkTableII exercises the substituted processor front end: issue
// calibration across all 14 workloads.
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		for _, p := range workload.Profiles {
			r.Run(exp.Spec{Workload: p, Topology: topology.Star, Size: exp.Small,
				SimTime: 50 * sim.Microsecond, Warmup: 10 * sim.Microsecond})
		}
	}
}

// BenchmarkFig4 samples every workload's access CDF.
func BenchmarkFig4(b *testing.B) {
	rng := sim.NewRNG(1)
	samplers := make([]*workload.Sampler, len(workload.Profiles))
	for i, p := range workload.Profiles {
		samplers[i] = workload.NewSampler(p, 64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range samplers {
			_ = s.Sample(rng)
		}
	}
}

// fig5Cell measures the full-power per-HMC power of one workload/topology.
func fig5Cell(b *testing.B, size exp.NetworkSize) {
	r := benchRunner()
	var totalPower, idleFrac float64
	n := 0
	for i := 0; i < b.N; i++ {
		for _, name := range benchWorkloads {
			for _, topo := range topology.Kinds {
				res := r.Run(benchSpec(b, name, topo, size, exp.MechFP, core.PolicyNone, 0))
				totalPower += res.PerHMC.Total()
				idleFrac += res.IdleIOFraction()
				n++
			}
		}
	}
	b.ReportMetric(totalPower/float64(n), "W/HMC")
	b.ReportMetric(100*idleFrac/float64(n), "idleIO%")
}

// BenchmarkFig5Small / Big regenerate the full-power power breakdown.
func BenchmarkFig5Small(b *testing.B) { fig5Cell(b, exp.Small) }
func BenchmarkFig5Big(b *testing.B)   { fig5Cell(b, exp.Big) }

// BenchmarkFig6 regenerates links-traversed-per-access for the worst case
// (big daisy chain) and best case (big ternary tree).
func BenchmarkFig6(b *testing.B) {
	r := benchRunner()
	var chain, tree float64
	for i := 0; i < b.N; i++ {
		chain = r.Run(benchSpec(b, "is.D", topology.DaisyChain, exp.Big, exp.MechFP, core.PolicyNone, 0)).LinksPerAccess
		tree = r.Run(benchSpec(b, "is.D", topology.TernaryTree, exp.Big, exp.MechFP, core.PolicyNone, 0)).LinksPerAccess
	}
	b.ReportMetric(chain, "links/acc-chain")
	b.ReportMetric(tree, "links/acc-tree")
}

// BenchmarkFig8 regenerates the idle-I/O share spread between the
// least and most utilized workloads.
func BenchmarkFig8(b *testing.B) {
	r := benchRunner()
	var lo, hi float64
	for i := 0; i < b.N; i++ {
		hi = r.Run(benchSpec(b, "sp.D", topology.Star, exp.Big, exp.MechFP, core.PolicyNone, 0)).IdleIOFraction()
		lo = r.Run(benchSpec(b, "mixB", topology.Star, exp.Big, exp.MechFP, core.PolicyNone, 0)).IdleIOFraction()
	}
	b.ReportMetric(100*hi, "idleIO%-sp.D")
	b.ReportMetric(100*lo, "idleIO%-mixB")
}

// BenchmarkFig9 regenerates channel-vs-link utilization attenuation.
func BenchmarkFig9(b *testing.B) {
	r := benchRunner()
	var chanU, linkU float64
	for i := 0; i < b.N; i++ {
		res := r.Run(benchSpec(b, "mg.D", topology.DaisyChain, exp.Big, exp.MechFP, core.PolicyNone, 0))
		chanU, linkU = res.ChannelUtil, res.LinkUtil
	}
	b.ReportMetric(100*chanU, "chanUtil%")
	b.ReportMetric(100*linkU, "linkUtil%")
}

// unawareCell averages power saving and degradation for one mechanism
// under network-unaware management over the benchmark workloads.
func managedCell(b *testing.B, pol core.PolicyKind, mech exp.Mech, size exp.NetworkSize,
	alpha float64, wakeup sim.Duration) (saving, deg float64) {
	r := benchRunner()
	n := 0
	for _, name := range benchWorkloads {
		for _, topo := range []topology.Kind{topology.DaisyChain, topology.Star} {
			spec := benchSpec(b, name, topo, size, mech, pol, alpha)
			spec.Wakeup = wakeup
			res := r.Run(spec)
			fp := r.FPBaseline(spec)
			saving += 1 - res.Power.Total()/fp.Power.Total()
			deg += r.PerfDegradation(res)
			n++
		}
	}
	return saving / float64(n), deg / float64(n)
}

// BenchmarkFig11 regenerates network-unaware power savings (α = 5%).
func BenchmarkFig11(b *testing.B) {
	var saving float64
	for i := 0; i < b.N; i++ {
		saving, _ = managedCell(b, core.PolicyUnaware, exp.MechVWLROO, exp.Big, 0.05, 0)
	}
	b.ReportMetric(100*saving, "power-saving%")
}

// BenchmarkFig12 regenerates network-unaware performance overheads.
func BenchmarkFig12(b *testing.B) {
	var deg25, deg50 float64
	for i := 0; i < b.N; i++ {
		_, deg25 = managedCell(b, core.PolicyUnaware, exp.MechVWL, exp.Small, 0.025, 0)
		_, deg50 = managedCell(b, core.PolicyUnaware, exp.MechVWL, exp.Small, 0.05, 0)
	}
	b.ReportMetric(100*deg25, "deg%-a2.5")
	b.ReportMetric(100*deg50, "deg%-a5")
}

// BenchmarkFig13 regenerates the link-hour distribution and reports how
// much time low-utilization links spend in sub-16-lane modes.
func BenchmarkFig13(b *testing.B) {
	var lowUtilNarrow float64
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		hist := &stats.LinkHourHist{}
		for _, name := range benchWorkloads {
			spec := benchSpec(b, name, topology.Star, exp.Big, exp.MechVWL, core.PolicyAware, 0.05)
			spec.CollectLinkHours = true
			hist.Merge(r.Run(spec).Hist)
		}
		lowUtilNarrow = 0
		for mode := 1; mode < stats.NumLaneModes; mode++ {
			lowUtilNarrow += hist.Fraction(0, mode) + hist.Fraction(1, mode)
		}
	}
	b.ReportMetric(100*lowUtilNarrow, "lowUtil-narrow%")
}

// BenchmarkFig15 regenerates aware-vs-unaware power savings.
func BenchmarkFig15(b *testing.B) {
	var extra float64
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		var un, aw float64
		for _, name := range benchWorkloads {
			specU := benchSpec(b, name, topology.Star, exp.Big, exp.MechVWLROO, core.PolicyUnaware, 0.05)
			specA := specU
			specA.Policy = core.PolicyAware
			un += r.Run(specU).Power.Total()
			aw += r.Run(specA).Power.Total()
		}
		extra = 1 - aw/un
	}
	b.ReportMetric(100*extra, "aware-vs-unaware%")
}

// BenchmarkFig16 regenerates per-workload savings for the extremes.
func BenchmarkFig16(b *testing.B) {
	r := benchRunner()
	var spd, mixb float64
	for i := 0; i < b.N; i++ {
		for _, c := range []struct {
			name string
			out  *float64
		}{{"sp.D", &spd}, {"mixB", &mixb}} {
			spec := benchSpec(b, c.name, topology.Star, exp.Big, exp.MechVWLROO, core.PolicyAware, 0.05)
			res := r.Run(spec)
			fp := r.FPBaseline(spec)
			*c.out = 1 - res.Power.Total()/fp.Power.Total()
		}
	}
	b.ReportMetric(100*spd, "saving%-sp.D")
	b.ReportMetric(100*mixb, "saving%-mixB")
}

// BenchmarkFig17 regenerates the aware-management performance overheads.
func BenchmarkFig17(b *testing.B) {
	var degA, degU float64
	for i := 0; i < b.N; i++ {
		_, degA = managedCell(b, core.PolicyAware, exp.MechVWLROO, exp.Big, 0.05, 0)
		_, degU = managedCell(b, core.PolicyUnaware, exp.MechVWLROO, exp.Big, 0.05, 0)
	}
	b.ReportMetric(100*degA, "deg%-aware")
	b.ReportMetric(100*degU, "deg%-unaware")
}

// BenchmarkFig18 regenerates the DVFS / 20 ns-ROO sensitivity study.
func BenchmarkFig18(b *testing.B) {
	var dvfs, roo20 float64
	for i := 0; i < b.N; i++ {
		dvfs, _ = managedCell(b, core.PolicyAware, exp.MechDVFS, exp.Big, 0.05, 0)
		roo20, _ = managedCell(b, core.PolicyAware, exp.MechROO, exp.Big, 0.05, link.WakeupSensitivity)
	}
	b.ReportMetric(100*dvfs, "saving%-DVFS")
	b.ReportMetric(100*roo20, "saving%-ROO20")
}

// BenchmarkStaticStudy regenerates §VII-A: static fat/tapered vs aware
// management at α=30%.
func BenchmarkStaticStudy(b *testing.B) {
	var static, aware float64
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		for _, name := range benchWorkloads {
			st := exp.Spec{Workload: wl(b, name), Topology: topology.Star, Size: exp.Big,
				Mech: exp.MechVWL, Policy: core.PolicyStatic, Interleave: true}
			aw := benchSpec(b, name, topology.Star, exp.Big, exp.MechVWL, core.PolicyAware, 0.30)
			static += r.Run(st).Power.Total()
			aware += r.Run(aw).Power.Total()
		}
	}
	b.ReportMetric(100*(1-aware/static), "aware-vs-static%")
}

// --- Ablations (DESIGN.md §6) ---

// ablationSpec is the common configuration ablations perturb.
func ablationRun(b *testing.B, mutate func(*core.Config)) (powerW, deg float64) {
	p := wl(b, "mg.D")
	kernel := sim.NewKernel()
	topo, err := topology.Build(topology.Star, p.Modules(1))
	if err != nil {
		b.Fatal(err)
	}
	netCfg := network.DefaultConfig()
	netCfg.Mechanism = link.MechVWL
	netCfg.ROO = true
	netCfg.ChunkBytes = 1 << 30
	net := network.New(kernel, topo, netCfg)
	mcfg := core.DefaultConfig(core.PolicyAware, 0.05)
	if mutate != nil {
		mutate(&mcfg)
	}
	core.Attach(kernel, net, mcfg)
	fe, err := workload.NewFrontEnd(kernel, net, p, workload.DefaultFrontEndConfig(42))
	if err != nil {
		b.Fatal(err)
	}
	fe.Start()
	kernel.Run(50 * sim.Microsecond)
	warm := net.TakeSnapshot()
	kernel.Run(250 * sim.Microsecond)
	end := net.TakeSnapshot()
	return network.IntervalPower(warm, end).Total(), network.Throughput(warm, end)
}

// BenchmarkAblationISPIterations compares 1 vs 3 ISP iterations.
func BenchmarkAblationISPIterations(b *testing.B) {
	var p1, p3 float64
	for i := 0; i < b.N; i++ {
		p1, _ = ablationRun(b, func(c *core.Config) { c.ISPIterations = 1 })
		p3, _ = ablationRun(b, func(c *core.Config) { c.ISPIterations = 3 })
	}
	b.ReportMetric(100*(1-p3/p1), "iter3-vs-iter1%")
}

// BenchmarkAblationGrantPool disables the leftover-AMS grant pool.
func BenchmarkAblationGrantPool(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		with, _ = ablationRun(b, nil)
		without, _ = ablationRun(b, func(c *core.Config) { c.GrantFraction = 0 })
	}
	b.ReportMetric(100*(1-with/without), "pool-saving%")
}

// BenchmarkAblationRequestShare compares the 3/4 request-link pool share
// against an even split.
func BenchmarkAblationRequestShare(b *testing.B) {
	var skew, even float64
	for i := 0; i < b.N; i++ {
		skew, _ = ablationRun(b, nil)
		even, _ = ablationRun(b, func(c *core.Config) { c.RequestShare = 0.5 })
	}
	b.ReportMetric(100*(1-skew/even), "share75-vs-50%")
}

// BenchmarkAblationWakeCascade measures the §VI-B cascade's latency value
// (read latency with vs without it, ROO links, sparse deep traffic).
func BenchmarkAblationWakeCascade(b *testing.B) {
	run := func(disable bool) sim.Duration {
		k := sim.NewKernel()
		topo, err := topology.Build(topology.DaisyChain, 6)
		if err != nil {
			b.Fatal(err)
		}
		ncfg := network.DefaultConfig()
		ncfg.ROO = true
		net := network.New(k, topo, ncfg)
		mcfg := core.DefaultConfig(core.PolicyAware, 2.0)
		mcfg.DisableWakeCascade = disable
		core.Attach(k, net, mcfg)
		for i := 0; i < 300; i++ {
			k.Run(k.Now() + 3*sim.Microsecond)
			net.InjectRead(5*uint64(ncfg.ChunkBytes)+uint64(i)*64, -1)
		}
		k.Run(k.Now() + 10*sim.Microsecond)
		a := network.Snapshot{}
		bsnap := net.TakeSnapshot()
		return network.AvgReadLatency(a, bsnap)
	}
	var with, without sim.Duration
	for i := 0; i < b.N; i++ {
		with = run(false)
		without = run(true)
	}
	b.ReportMetric(with.Nanoseconds(), "lat-ns-cascade")
	b.ReportMetric(without.Nanoseconds(), "lat-ns-nocascade")
}

// BenchmarkAblationQDQF measures the §VI-C congestion discount's power
// contribution under the aware policy.
func BenchmarkAblationQDQF(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		with, _ = ablationRun(b, nil)
		without, _ = ablationRun(b, func(c *core.Config) { c.DisableQDQF = true })
	}
	b.ReportMetric(100*(1-with/without), "qdqf-saving%")
}

// BenchmarkAblationLinkSplit compares the paper's equal per-link AMS split
// against a traffic-proportional split under unaware management.
func BenchmarkAblationLinkSplit(b *testing.B) {
	run := func(proportional bool) float64 {
		p := wl(b, "mg.D")
		kernel := sim.NewKernel()
		topo, err := topology.Build(topology.Star, p.Modules(1))
		if err != nil {
			b.Fatal(err)
		}
		netCfg := network.DefaultConfig()
		netCfg.Mechanism = link.MechVWL
		netCfg.ROO = true
		netCfg.ChunkBytes = 1 << 30
		net := network.New(kernel, topo, netCfg)
		mcfg := core.DefaultConfig(core.PolicyUnaware, 0.05)
		mcfg.ProportionalLinkSplit = proportional
		core.Attach(kernel, net, mcfg)
		fe, err := workload.NewFrontEnd(kernel, net, p, workload.DefaultFrontEndConfig(42))
		if err != nil {
			b.Fatal(err)
		}
		fe.Start()
		kernel.Run(50 * sim.Microsecond)
		warm := net.TakeSnapshot()
		kernel.Run(250 * sim.Microsecond)
		end := net.TakeSnapshot()
		return network.IntervalPower(warm, end).Total()
	}
	var equal, prop float64
	for i := 0; i < b.N; i++ {
		equal = run(false)
		prop = run(true)
	}
	b.ReportMetric(100*(1-prop/equal), "prop-vs-equal%")
}

// BenchmarkAblationOpenPage compares the paper's close-page DRAM policy
// against open page on one workload (row hits are rare under the random
// line-grain traffic, matching the paper's choice of close page).
func BenchmarkAblationOpenPage(b *testing.B) {
	run := func(page dram.PagePolicy) sim.Duration {
		p := wl(b, "mixC")
		kernel := sim.NewKernel()
		topo, err := topology.Build(topology.Star, p.Modules(4))
		if err != nil {
			b.Fatal(err)
		}
		netCfg := network.DefaultConfig()
		netCfg.DRAM.Page = page
		net := network.New(kernel, topo, netCfg)
		fe, err := workload.NewFrontEnd(kernel, net, p, workload.DefaultFrontEndConfig(42))
		if err != nil {
			b.Fatal(err)
		}
		fe.Start()
		kernel.Run(50 * sim.Microsecond)
		warm := net.TakeSnapshot()
		kernel.Run(250 * sim.Microsecond)
		end := net.TakeSnapshot()
		return network.AvgReadLatency(warm, end)
	}
	var closeLat, openLat sim.Duration
	for i := 0; i < b.N; i++ {
		closeLat = run(dram.ClosePage)
		openLat = run(dram.OpenPage)
	}
	b.ReportMetric(closeLat.Nanoseconds(), "lat-ns-close")
	b.ReportMetric(openLat.Nanoseconds(), "lat-ns-open")
}

// BenchmarkAblationBER measures the link-level throughput cost of CRC
// retry under a lossy channel: back-to-back responses at BER 0 vs 1e-4.
func BenchmarkAblationBER(b *testing.B) {
	measure := func(ber float64) float64 {
		k := sim.NewKernel()
		cfg := link.Config{FullWatts: 0.586, BER: ber}
		l := link.New(k, cfg, 0, link.DirResponse, 0, 0, packet.ProcessorID, 1)
		delivered := 0
		l.Deliver = func(*packet.Packet) { delivered++ }
		for i := 0; i < 2000; i++ {
			l.Enqueue(&packet.Packet{ID: uint64(i), Kind: packet.ReadResp})
		}
		k.RunAll()
		return float64(delivered) / k.Now().Seconds()
	}
	var clean, lossy float64
	for i := 0; i < b.N; i++ {
		clean = measure(0)
		lossy = measure(1e-4)
	}
	b.ReportMetric(100*(1-lossy/clean), "throughput-loss%-ber1e-4")
}

// BenchmarkKernel measures raw event throughput of the simulation kernel.
// Steady-state schedule+step must report 0 allocs/op: the timing wheel
// reuses slot storage in place and nothing boxes an interface.
func BenchmarkKernel(b *testing.B) {
	k := sim.NewKernel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Schedule(k.Now()+1, func() {})
		k.Step()
	}
}

// BenchmarkKernelScheduleStep measures the same cycle against a deep
// pending queue — the realistic shape during a sweep, where thousands of
// link/DRAM/management events are in flight. Also 0 allocs/op.
func BenchmarkKernelScheduleStep(b *testing.B) {
	k := sim.NewKernel()
	for i := 0; i < 4096; i++ {
		k.Schedule(sim.Time(i), func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Schedule(k.Now()+100, func() {})
		k.Step()
	}
}

// sweepBenchCells is the multi-cell sweep the executor benchmarks run:
// the four representative workloads on big star networks, FP and managed.
func sweepBenchCells(b *testing.B) []exp.Spec {
	var specs []exp.Spec
	for _, name := range benchWorkloads {
		for _, mech := range []exp.Mech{exp.MechFP, exp.MechVWLROO} {
			pol := core.PolicyNone
			if mech != exp.MechFP {
				pol = core.PolicyAware
			}
			spec := benchSpec(b, name, topology.Star, exp.Big, mech, pol, 0.05)
			spec.SimTime = 100 * sim.Microsecond
			spec.Warmup = 25 * sim.Microsecond
			specs = append(specs, spec)
		}
	}
	return specs
}

// BenchmarkSweepJobs1 / BenchmarkSweepJobs4 compare the sweep executor's
// sequential and 4-worker wall clock over the same cells; on a 4+ core
// machine Jobs4 should run the sweep at least 2x faster (cells are
// hermetic, so scaling is limited only by cores — see TestSweepSpeedup).
func BenchmarkSweepJobs1(b *testing.B) { benchSweep(b, 1) }
func BenchmarkSweepJobs4(b *testing.B) { benchSweep(b, 4) }

func benchSweep(b *testing.B, jobs int) {
	specs := sweepBenchCells(b)
	var events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := exp.RunSpecs(specs, jobs)
		if err != nil {
			b.Fatal(err)
		}
		for _, res := range results {
			events += res.Events
		}
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds()/1e6, "Mevents/s")
}

// BenchmarkLinkTransmit measures the per-packet cost of the link model.
func BenchmarkLinkTransmit(b *testing.B) {
	k := sim.NewKernel()
	cfg := link.Config{Mechanism: link.MechVWL, ROO: true, FullWatts: 0.586}
	l := link.New(k, cfg, 0, link.DirResponse, 0, 0, packet.ProcessorID, 1)
	l.Deliver = func(*packet.Packet) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Enqueue(&packet.Packet{Kind: packet.ReadResp})
		k.RunAll()
	}
}
