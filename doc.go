// Package memnet is a discrete-event simulator and power-management
// library for HMC-style memory networks, reproducing "Understanding and
// Optimizing Power Consumption in Memory Networks" (HPCA 2017).
//
// The root package holds the benchmark harness (bench_test.go), with one
// benchmark per paper table/figure plus ablations. The library lives
// under internal/: see README.md for the architecture map and DESIGN.md
// for the paper-to-module inventory.
//
// Entry points:
//
//	cmd/memnetsim     one simulation or a JSON batch
//	cmd/experiments   regenerate every paper table and figure
//	cmd/memnettrace   record / inspect / replay access traces
//	cmd/memnetviz     annotated topology tree
//	examples/         five runnable walkthroughs
package memnet
