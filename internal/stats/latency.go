package stats

import (
	"fmt"
	"math/bits"

	"memnet/internal/sim"
)

// LatencyHist is a log₂-bucketed latency histogram: bucket i counts
// samples whose picosecond value has bit length i. Adding a sample is a
// handful of instructions, so it can sit on the per-read completion path;
// percentiles are approximate (sub-bucket linear interpolation), which is
// plenty for tail reporting.
type LatencyHist struct {
	buckets [64]uint64
	count   uint64
	sum     sim.Duration
	max     sim.Duration
}

// Add records one latency sample.
func (h *LatencyHist) Add(d sim.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bits.Len64(uint64(d))]++
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of samples.
func (h *LatencyHist) Count() uint64 { return h.count }

// Mean returns the average latency.
func (h *LatencyHist) Mean() sim.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / sim.Duration(h.count)
}

// Max returns the largest sample.
func (h *LatencyHist) Max() sim.Duration { return h.max }

// Percentile returns the approximate p-quantile (p in [0,1]).
func (h *LatencyHist) Percentile(p float64) sim.Duration {
	if h.count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := uint64(p * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var seen uint64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		if seen+c > target {
			// Interpolate within [2^(i-1), 2^i).
			lo := sim.Duration(0)
			if i > 0 {
				lo = sim.Duration(uint64(1) << uint(i-1))
			}
			hi := sim.Duration(uint64(1) << uint(i))
			if i >= 63 {
				hi = h.max
			}
			frac := float64(target-seen) / float64(c)
			v := lo + sim.Duration(frac*float64(hi-lo))
			if v > h.max {
				v = h.max
			}
			return v
		}
		seen += c
	}
	return h.max
}

// Reset clears the histogram (e.g., at the end of warmup).
func (h *LatencyHist) Reset() { *h = LatencyHist{} }

// NumBuckets is the fixed bucket count of a LatencyHist.
const NumBuckets = 64

// CopyBuckets writes the cumulative per-bucket counts into dst (at most
// NumBuckets entries). Bucket i counts samples whose picosecond value
// has bit length i, i.e. values ≤ 2^i − 1. The metrics sampler pulls
// these to build per-interval latency distributions.
func (h *LatencyHist) CopyBuckets(dst []uint64) {
	copy(dst, h.buckets[:])
}

// String summarizes the distribution.
func (h *LatencyHist) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		h.count, h.Mean(), h.Percentile(0.50), h.Percentile(0.95), h.Percentile(0.99), h.max)
}
