package stats

import (
	"fmt"

	"memnet/internal/sim"
)

// Availability tracks per-module up/down intervals for the fault-recovery
// subsystem. The network layer feeds it reachability transitions (a module
// goes down when any link on its path to the processor fails, up when the
// last such link finishes retraining); the report summarizes outage
// counts, downtime, MTTR, and the availability fraction over a window.
type Availability struct {
	down      []bool
	downSince []sim.Time
	downTime  []sim.Duration // completed outage time per module
	outages   int            // completed (repaired) outages
	mttrSum   sim.Duration   // total duration of completed outages
}

// NewAvailability tracks n modules, all initially up.
func NewAvailability(n int) *Availability {
	return &Availability{
		down:      make([]bool, n),
		downSince: make([]sim.Time, n),
		downTime:  make([]sim.Duration, n),
	}
}

// Down opens an outage interval for module id at now. Idempotent: a
// module already down stays attributed to its original outage start.
func (a *Availability) Down(id int, now sim.Time) {
	if a.down[id] {
		return
	}
	a.down[id] = true
	a.downSince[id] = now
}

// Up closes module id's outage interval at now. No-op if the module is
// not down.
func (a *Availability) Up(id int, now sim.Time) {
	if !a.down[id] {
		return
	}
	a.down[id] = false
	d := now - a.downSince[id]
	a.downTime[id] += d
	a.outages++
	a.mttrSum += d
}

// AvailabilityReport is the flat summary surfaced through exp.Result and
// the CLIs. All fields are plain values so results JSON-round-trip and
// compare with reflect.DeepEqual in the journal/cache paths.
type AvailabilityReport struct {
	// Modules is the module count the fractions are normalized over.
	Modules int
	// Outages counts completed (repaired) module outages; OpenOutages
	// counts modules still down at report time.
	Outages     int
	OpenOutages int
	// Downtime is total module-downtime (open intervals closed at report
	// time); MTTR is the mean duration of completed outages.
	Downtime sim.Duration
	MTTR     sim.Duration
	// Availability is 1 − Downtime/(Modules × window): the fraction of
	// module-time the network could reach its modules.
	Availability float64
}

// Report summarizes accounting over a window ending at now.
func (a *Availability) Report(window sim.Duration, now sim.Time) AvailabilityReport {
	r := AvailabilityReport{Modules: len(a.down), Outages: a.outages, Availability: 1}
	for id, d := range a.down {
		r.Downtime += a.downTime[id]
		if d {
			r.OpenOutages++
			r.Downtime += now - a.downSince[id]
		}
	}
	if a.outages > 0 {
		r.MTTR = a.mttrSum / sim.Duration(a.outages)
	}
	if window > 0 && r.Modules > 0 {
		r.Availability = 1 - float64(r.Downtime)/float64(sim.Duration(r.Modules)*window)
	}
	return r
}

// String renders the report for CLI output.
func (r AvailabilityReport) String() string {
	return fmt.Sprintf("%.6f (%d outage(s), %d open, MTTR %s, downtime %s)",
		r.Availability, r.Outages, r.OpenOutages, r.MTTR, r.Downtime)
}
