// Package stats provides the measurement helpers shared by the experiment
// harness: the link-hour histogram behind Fig. 13 and small numeric
// utilities.
package stats

import (
	"fmt"

	"memnet/internal/sim"
)

// UtilBuckets are Fig. 13's link-utilization bins.
var UtilBuckets = []struct {
	Label string
	Lo    float64
	Hi    float64
}{
	{"0-1%", 0, 0.01},
	{"1-5%", 0.01, 0.05},
	{"5-10%", 0.05, 0.10},
	{"10-20%", 0.10, 0.20},
	{"20-100%", 0.20, 1.01},
}

// NumUtilBuckets is the number of utilization bins.
const NumUtilBuckets = 5

// UtilBucket returns the bin index for a utilization in [0,1].
func UtilBucket(util float64) int {
	for i, b := range UtilBuckets {
		if util < b.Hi {
			return i
		}
	}
	return NumUtilBuckets - 1
}

// NumLaneModes mirrors link.NumBWModes (16/8/4/1 lanes) without importing
// the package; kept in sync by a test.
const NumLaneModes = 4

// LinkHourHist accumulates, per (utilization bucket, lane mode), the link
// time spent — Fig. 13's "fraction of total link hours".
type LinkHourHist struct {
	Seconds [NumUtilBuckets][NumLaneModes]float64
	Total   float64
}

// Add records one link-epoch: its utilization during the epoch and the
// time it spent in each bandwidth mode.
func (h *LinkHourHist) Add(util float64, timeInMode [NumLaneModes]sim.Duration) {
	b := UtilBucket(util)
	for m, d := range timeInMode {
		s := d.Seconds()
		h.Seconds[b][m] += s
		h.Total += s
	}
}

// Merge accumulates o into h.
func (h *LinkHourHist) Merge(o *LinkHourHist) {
	for b := range h.Seconds {
		for m := range h.Seconds[b] {
			h.Seconds[b][m] += o.Seconds[b][m]
		}
	}
	h.Total += o.Total
}

// Fraction returns the share of total link hours in (bucket, mode).
func (h *LinkHourHist) Fraction(bucket, mode int) float64 {
	if h.Total == 0 {
		return 0
	}
	return h.Seconds[bucket][mode] / h.Total
}

// String renders the histogram as a table (rows = buckets, cols = modes).
func (h *LinkHourHist) String() string {
	out := "util\\lanes      16       8       4       1\n"
	lanes := [NumLaneModes]int{16, 8, 4, 1}
	_ = lanes
	for b, bk := range UtilBuckets {
		out += fmt.Sprintf("%-9s", bk.Label)
		for m := 0; m < NumLaneModes; m++ {
			out += fmt.Sprintf(" %6.2f%%", 100*h.Fraction(b, m))
		}
		out += "\n"
	}
	return out
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Max returns the maximum of xs (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// TopQuartileMean returns the mean of the largest quarter of xs — the
// paper's "average top quarter worst-case" metric in §VII-A.
func TopQuartileMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] > sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	n := (len(sorted) + 3) / 4
	return Mean(sorted[:n])
}
