package stats

import (
	"math"
	"testing"

	"memnet/internal/link"
	"memnet/internal/sim"
)

func TestNumLaneModesMatchesLinkPackage(t *testing.T) {
	if NumLaneModes != link.NumBWModes {
		t.Fatalf("NumLaneModes = %d, link.NumBWModes = %d", NumLaneModes, link.NumBWModes)
	}
}

func TestUtilBucket(t *testing.T) {
	cases := []struct {
		util float64
		want int
	}{
		{0, 0}, {0.009, 0}, {0.01, 1}, {0.04, 1}, {0.05, 2},
		{0.09, 2}, {0.1, 3}, {0.19, 3}, {0.2, 4}, {0.99, 4}, {1.0, 4},
	}
	for _, c := range cases {
		if got := UtilBucket(c.util); got != c.want {
			t.Errorf("UtilBucket(%v) = %d, want %d", c.util, got, c.want)
		}
	}
}

func TestLinkHourHistFractions(t *testing.T) {
	h := &LinkHourHist{}
	h.Add(0.005, [NumLaneModes]sim.Duration{100 * sim.Microsecond, 0, 0, 0})
	h.Add(0.5, [NumLaneModes]sim.Duration{0, 100 * sim.Microsecond, 0, 0})
	if got := h.Fraction(0, 0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("fraction(0,0) = %v", got)
	}
	if got := h.Fraction(4, 1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("fraction(4,1) = %v", got)
	}
	var total float64
	for b := 0; b < NumUtilBuckets; b++ {
		for m := 0; m < NumLaneModes; m++ {
			total += h.Fraction(b, m)
		}
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("fractions sum to %v", total)
	}
	if h.String() == "" {
		t.Fatal("empty render")
	}
}

func TestLinkHourHistMerge(t *testing.T) {
	a, b := &LinkHourHist{}, &LinkHourHist{}
	a.Add(0.5, [NumLaneModes]sim.Duration{sim.Microsecond, 0, 0, 0})
	b.Add(0.5, [NumLaneModes]sim.Duration{sim.Microsecond, 0, 0, 0})
	a.Merge(b)
	if math.Abs(a.Total-2e-6) > 1e-15 {
		t.Fatalf("merged total = %v", a.Total)
	}
}

func TestEmptyHistFraction(t *testing.T) {
	h := &LinkHourHist{}
	if h.Fraction(0, 0) != 0 {
		t.Fatal("empty hist fraction not zero")
	}
}

func TestMeanMax(t *testing.T) {
	if Mean(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty slices")
	}
	xs := []float64{1, 5, 3}
	if Mean(xs) != 3 || Max(xs) != 5 {
		t.Fatalf("mean=%v max=%v", Mean(xs), Max(xs))
	}
}

func TestTopQuartileMean(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	// Top quarter = {8, 7}; mean 7.5.
	if got := TopQuartileMean(xs); got != 7.5 {
		t.Fatalf("top quartile = %v, want 7.5", got)
	}
	if got := TopQuartileMean([]float64{4}); got != 4 {
		t.Fatalf("singleton = %v", got)
	}
	if TopQuartileMean(nil) != 0 {
		t.Fatal("empty")
	}
	// Input must not be mutated.
	if xs[0] != 1 || xs[7] != 8 {
		t.Fatal("input mutated")
	}
}

func TestLatencyHistBasics(t *testing.T) {
	h := &LatencyHist{}
	if h.Percentile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty hist not zero")
	}
	for i := 1; i <= 1000; i++ {
		h.Add(sim.Duration(i) * sim.Nanosecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != sim.Duration(500500)*sim.Picosecond*1000/1000 {
		// mean of 1..1000 ns = 500.5 ns
		want := sim.FromNanos(500.5)
		if h.Mean() != want {
			t.Fatalf("mean = %v, want %v", h.Mean(), want)
		}
	}
	if h.Max() != 1000*sim.Nanosecond {
		t.Fatalf("max = %v", h.Max())
	}
	// Log-bucket approximation: p50 within a factor of 2 of the truth.
	p50 := h.Percentile(0.5)
	if p50 < 250*sim.Nanosecond || p50 > 1000*sim.Nanosecond {
		t.Fatalf("p50 = %v, want within [250ns, 1000ns]", p50)
	}
	if h.Percentile(1.0) < h.Percentile(0.5) {
		t.Fatal("percentiles not monotone")
	}
	if h.Percentile(0) > h.Percentile(0.5) {
		t.Fatal("percentiles not monotone at 0")
	}
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset failed")
	}
}

func TestLatencyHistNegativeClamped(t *testing.T) {
	h := &LatencyHist{}
	h.Add(-5)
	if h.Count() != 1 || h.Max() != 0 {
		t.Fatalf("negative sample handling: %v", h)
	}
}

func TestLatencyHistSingleValue(t *testing.T) {
	h := &LatencyHist{}
	for i := 0; i < 100; i++ {
		h.Add(64 * sim.Nanosecond)
	}
	p50 := h.Percentile(0.5)
	// All samples in one bucket [2^15, 2^16) ps = [32.768ns, 65.536ns).
	if p50 < 32*sim.Nanosecond || p50 > 66*sim.Nanosecond {
		t.Fatalf("p50 = %v for constant 64ns input", p50)
	}
	if h.String() == "" {
		t.Fatal("empty string")
	}
}
