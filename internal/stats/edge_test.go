// Edge-case tables for the reporting primitives: percentile behavior at
// the boundaries of the log₂ histogram, and availability accounting for
// degenerate outage intervals. These lock down behavior the figure
// pipeline depends on but the happy-path tests never exercise.
package stats

import (
	"testing"

	"memnet/internal/sim"
)

func TestLatencyHistPercentileEdges(t *testing.T) {
	cases := []struct {
		name    string
		samples []sim.Duration
		p       float64
		want    func(got sim.Duration) bool
		desc    string
	}{
		{"empty p50", nil, 0.5,
			func(g sim.Duration) bool { return g == 0 }, "empty histogram reports 0"},
		{"empty p0", nil, 0,
			func(g sim.Duration) bool { return g == 0 }, "empty histogram reports 0"},
		{"single sample p0", []sim.Duration{100}, 0,
			func(g sim.Duration) bool { return g >= 64 && g <= 100 }, "within the sample's bucket, clamped to max"},
		{"single sample p100", []sim.Duration{100}, 1,
			func(g sim.Duration) bool { return g >= 64 && g <= 100 }, "p=1 stays within the sample's bucket (approximate histogram)"},
		{"all ties p50", []sim.Duration{70, 70, 70, 70, 70}, 0.5,
			func(g sim.Duration) bool { return g >= 64 && g <= 70 }, "ties stay inside one bucket"},
		{"all ties p99", []sim.Duration{70, 70, 70, 70, 70}, 0.99,
			func(g sim.Duration) bool { return g >= 64 && g <= 70 }, "ties stay inside one bucket"},
		{"zero samples only", []sim.Duration{0, 0, 0}, 0.5,
			func(g sim.Duration) bool { return g == 0 }, "bit length 0 bucket reports 0"},
		{"p below 0 clamps", []sim.Duration{10, 20}, -3,
			func(g sim.Duration) bool { return g >= 0 && g <= 20 }, "negative p behaves like p=0"},
		{"p above 1 clamps", []sim.Duration{10, 20}, 7,
			func(g sim.Duration) bool { return g >= 16 && g <= 20 }, "p>1 behaves like p=1: inside the top sample's bucket"},
		{"bimodal p50 in low mode", []sim.Duration{1, 1, 1, 1 << 40}, 0.5,
			func(g sim.Duration) bool { return g <= 1 }, "median must not be pulled into the outlier bucket"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var h LatencyHist
			for _, s := range tc.samples {
				h.Add(s)
			}
			if got := h.Percentile(tc.p); !tc.want(got) {
				t.Errorf("Percentile(%v) = %v; want %s", tc.p, got, tc.desc)
			}
		})
	}
}

// TestLatencyHistPercentileMonotone: for any sample set, the percentile
// function must be non-decreasing in p and bounded by [0, Max].
func TestLatencyHistPercentileMonotone(t *testing.T) {
	var h LatencyHist
	for _, s := range []sim.Duration{3, 3, 17, 90, 90, 90, 1500, 40000, 40000, 1 << 30} {
		h.Add(s)
	}
	prev := sim.Duration(-1)
	for p := 0.0; p <= 1.0; p += 0.01 {
		got := h.Percentile(p)
		if got < prev {
			t.Fatalf("Percentile(%0.2f) = %v < Percentile(%0.2f) = %v", p, got, p-0.01, prev)
		}
		if got < 0 || got > h.Max() {
			t.Fatalf("Percentile(%0.2f) = %v outside [0, %v]", p, got, h.Max())
		}
		prev = got
	}
}

func TestCopyBuckets(t *testing.T) {
	var h LatencyHist
	h.Add(0)    // bit length 0
	h.Add(1)    // bit length 1
	h.Add(1)    // bit length 1
	h.Add(1000) // bit length 10
	dst := make([]uint64, NumBuckets)
	h.CopyBuckets(dst)
	if dst[0] != 1 || dst[1] != 2 || dst[10] != 1 {
		t.Errorf("buckets = [0]=%d [1]=%d [10]=%d, want 1, 2, 1", dst[0], dst[1], dst[10])
	}
	// A short destination takes a prefix without panicking.
	short := make([]uint64, 2)
	h.CopyBuckets(short)
	if short[0] != 1 || short[1] != 2 {
		t.Errorf("short copy = %v, want [1 2]", short)
	}
}

func TestAvailabilityEdges(t *testing.T) {
	us := sim.Microsecond
	cases := []struct {
		name string
		run  func(a *Availability)
		at   sim.Time // report time
		want AvailabilityReport
	}{
		{
			name: "zero-duration outage",
			run: func(a *Availability) {
				a.Down(0, sim.Time(10*us))
				a.Up(0, sim.Time(10*us))
			},
			at: sim.Time(100 * us),
			want: AvailabilityReport{Modules: 2, Outages: 1, OpenOutages: 0,
				Downtime: 0, MTTR: 0, Availability: 1},
		},
		{
			name: "open interval at end of run",
			run: func(a *Availability) {
				a.Down(1, sim.Time(60*us))
			},
			at: sim.Time(100 * us),
			want: AvailabilityReport{Modules: 2, Outages: 0, OpenOutages: 1,
				Downtime: 40 * us, MTTR: 0, Availability: 1 - 40.0/200.0},
		},
		{
			name: "double down attributes to first start",
			run: func(a *Availability) {
				a.Down(0, sim.Time(10*us))
				a.Down(0, sim.Time(50*us)) // idempotent
				a.Up(0, sim.Time(70*us))
			},
			at: sim.Time(100 * us),
			want: AvailabilityReport{Modules: 2, Outages: 1, OpenOutages: 0,
				Downtime: 60 * us, MTTR: 60 * us, Availability: 1 - 60.0/200.0},
		},
		{
			name: "up without down is a no-op",
			run: func(a *Availability) {
				a.Up(0, sim.Time(30*us))
			},
			at:   sim.Time(100 * us),
			want: AvailabilityReport{Modules: 2, Availability: 1},
		},
		{
			name: "repeated zero-duration cycles keep MTTR finite",
			run: func(a *Availability) {
				for i := 0; i < 3; i++ {
					a.Down(1, sim.Time(20*us))
					a.Up(1, sim.Time(20*us))
				}
			},
			at: sim.Time(100 * us),
			want: AvailabilityReport{Modules: 2, Outages: 3, OpenOutages: 0,
				Downtime: 0, MTTR: 0, Availability: 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := NewAvailability(2)
			tc.run(a)
			got := a.Report(100*us, tc.at)
			if got != tc.want {
				t.Errorf("report = %+v\nwant     %+v", got, tc.want)
			}
		})
	}
}

// TestAvailabilityZeroWindow: a zero (or negative) window cannot divide;
// the availability fraction stays at its defined default of 1.
func TestAvailabilityZeroWindow(t *testing.T) {
	a := NewAvailability(1)
	a.Down(0, 0)
	a.Up(0, sim.Time(5*sim.Microsecond))
	got := a.Report(0, sim.Time(10*sim.Microsecond))
	if got.Availability != 1 {
		t.Errorf("availability with zero window = %v, want 1 (undefined fraction defaults up)", got.Availability)
	}
	if got.Downtime != 5*sim.Microsecond || got.Outages != 1 {
		t.Errorf("downtime accounting lost: %+v", got)
	}
}
