package stats

import (
	"strings"
	"testing"

	"memnet/internal/sim"
)

func TestAvailabilityAccounting(t *testing.T) {
	a := NewAvailability(4)
	us := func(n int) sim.Time { return sim.Time(sim.Duration(n) * sim.Microsecond) }

	// One clean outage on module 1: 10 µs -> 30 µs.
	a.Down(1, us(10))
	a.Down(1, us(15)) // idempotent: the original start wins
	a.Up(1, us(30))
	a.Up(1, us(31)) // no-op: already up

	// Module 2 is still down at report time.
	a.Down(2, us(90))

	r := a.Report(100*sim.Microsecond, us(100))
	if r.Modules != 4 || r.Outages != 1 || r.OpenOutages != 1 {
		t.Fatalf("report = %+v, want 1 completed + 1 open outage over 4 modules", r)
	}
	if r.MTTR != 20*sim.Microsecond {
		t.Fatalf("MTTR = %v, want 20us", r.MTTR)
	}
	// 20 µs completed + 10 µs open-at-report = 30 µs of module-downtime
	// over 4 modules × 100 µs.
	if r.Downtime != 30*sim.Microsecond {
		t.Fatalf("Downtime = %v, want 30us", r.Downtime)
	}
	if want := 1 - 30.0/400.0; r.Availability != want {
		t.Fatalf("Availability = %v, want %v", r.Availability, want)
	}
	if s := r.String(); !strings.Contains(s, "MTTR 20.00us") {
		t.Fatalf("String() = %q lacks the MTTR", s)
	}
}

func TestAvailabilityNoOutages(t *testing.T) {
	a := NewAvailability(2)
	r := a.Report(50*sim.Microsecond, sim.Time(sim.Duration(50)*sim.Microsecond))
	if r.Availability != 1 || r.Outages != 0 || r.OpenOutages != 0 || r.MTTR != 0 || r.Downtime != 0 {
		t.Fatalf("idle report = %+v, want all-up", r)
	}
	// A degenerate window must not divide by zero.
	if r := a.Report(0, 0); r.Availability != 1 {
		t.Fatalf("zero-window availability = %v, want 1", r.Availability)
	}
}
