package packet

import "testing"

func TestFlitCounts(t *testing.T) {
	// §II: a read request is a single 16 B flit; write request and read
	// response packets contain five flits (64 B lines).
	cases := []struct {
		kind Kind
		want int
	}{
		{ReadReq, 1},
		{WriteReq, 5},
		{ReadResp, 5},
		{Control, 5},
	}
	for _, c := range cases {
		if got := c.kind.Flits(); got != c.want {
			t.Errorf("%v.Flits() = %d, want %d", c.kind, got, c.want)
		}
	}
}

func TestBytes(t *testing.T) {
	p := &Packet{Kind: ReadResp}
	if got := p.Bytes(); got != 80 {
		t.Errorf("ReadResp bytes = %d, want 80", got)
	}
	p.Kind = ReadReq
	if got := p.Bytes(); got != 16 {
		t.Errorf("ReadReq bytes = %d, want 16", got)
	}
}

func TestClassification(t *testing.T) {
	if !ReadReq.IsRead() || !ReadResp.IsRead() {
		t.Error("read kinds not classified as reads")
	}
	if WriteReq.IsRead() || Control.IsRead() {
		t.Error("non-read kinds classified as reads")
	}
	if !ReadReq.Downstream() || !WriteReq.Downstream() {
		t.Error("request kinds not downstream")
	}
	if ReadResp.Downstream() {
		t.Error("read response marked downstream")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		ReadReq: "ReadReq", WriteReq: "WriteReq", ReadResp: "ReadResp", Control: "Control",
	} {
		if k.String() != want {
			t.Errorf("String() = %q, want %q", k.String(), want)
		}
	}
	if Kind(42).String() != "Kind(42)" {
		t.Errorf("unknown kind string = %q", Kind(42).String())
	}
}

func TestUnknownKindFlitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Flits on unknown kind did not panic")
		}
	}()
	Kind(42).Flits()
}

func TestPacketString(t *testing.T) {
	p := &Packet{ID: 7, Kind: ReadReq, Src: ProcessorID, Dst: 3, Addr: 0x1000}
	if got := p.String(); got != "ReadReq#7 -1->3 addr=0x1000" {
		t.Errorf("String() = %q", got)
	}
}
