// Package packet defines the traffic units of the memory network: flits
// and packets, per the HMC-style packet protocol the paper models. A read
// request packet is a single 16 B flit; write request and read response
// packets carry a 64 B line and are five flits each.
package packet

import (
	"fmt"

	"memnet/internal/sim"
)

// FlitBytes is the size of one flit, the minimum traffic flow unit.
const FlitBytes = 16

// LineBytes is the cache line size carried by data packets.
const LineBytes = 64

// Kind identifies a packet type.
type Kind uint8

const (
	// ReadReq is a read request travelling downstream (away from the
	// processor) on request links. One flit.
	ReadReq Kind = iota
	// WriteReq is a write request travelling downstream. Five flits
	// (header + 64 B line).
	WriteReq
	// ReadResp is a read response travelling upstream on response links.
	// Five flits.
	ReadResp
	// Control is management traffic (ISP gather/scatter messages,
	// leftover-AMS requests). Modelled as a single 64 B packet = 5 flits
	// when charged to links.
	Control
	// ReadErr is an error response travelling upstream: the network could
	// not deliver the read (severed link, unroutable destination) and
	// completes it with an error instead of data. Header-only, one flit.
	ReadErr
	// WriteErr is the posted-write analogue of ReadErr, so the processor
	// can release the write credit of a write the network had to drop.
	WriteErr
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case ReadReq:
		return "ReadReq"
	case WriteReq:
		return "WriteReq"
	case ReadResp:
		return "ReadResp"
	case Control:
		return "Control"
	case ReadErr:
		return "ReadErr"
	case WriteErr:
		return "WriteErr"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Flits returns the number of flits a packet of this kind occupies.
func (k Kind) Flits() int {
	switch k {
	case ReadReq:
		return 1
	case WriteReq, ReadResp:
		return 1 + LineBytes/FlitBytes
	case Control:
		return 1 + LineBytes/FlitBytes
	case ReadErr, WriteErr:
		return 1 // header-only error response, no data payload
	default:
		panic("packet: unknown kind")
	}
}

// IsRead reports whether the packet belongs to a read transaction. The
// management policies only constrain read latency (writes are off the
// critical path), so this classification drives all latency accounting.
func (k Kind) IsRead() bool { return k == ReadReq || k == ReadResp }

// Downstream reports whether packets of this kind travel on request links
// (away from the processor) rather than response links. Error responses
// travel upstream like data responses.
func (k Kind) Downstream() bool { return k == ReadReq || k == WriteReq }

// IsError reports whether the packet is a degradation-path error response.
func (k Kind) IsError() bool { return k == ReadErr || k == WriteErr }

// ProcessorID is the module ID used for the processor endpoint.
const ProcessorID = -1

// Packet is one packet in flight. Packets are allocated once per memory
// transaction leg and mutated in place as they move hop to hop.
type Packet struct {
	ID   uint64
	Kind Kind
	// Src and Dst are module IDs; ProcessorID denotes the processor.
	Src, Dst int
	// Addr is the physical byte address of the access (used for vault
	// selection at the destination module).
	Addr uint64
	// Issued is when the originating transaction entered the network.
	Issued sim.Time
	// HopArrive is when the packet arrived at the current hop's link
	// controller queue (set by the network, used for per-link latency).
	HopArrive sim.Time
	// Hops counts link traversals so far (for Fig. 6).
	Hops int
	// Req is the originating request's packet ID, set on response and
	// error packets so the processor's outstanding-request table can match
	// completions (and discard late ones) after a timeout-driven retry.
	Req uint64
	// Core identifies the issuing core for closed-loop accounting; -1
	// for traffic with no core attribution.
	Core int
}

// Flits returns the packet's size in flits.
func (p *Packet) Flits() int { return p.Kind.Flits() }

// Bytes returns the packet's size in bytes.
func (p *Packet) Bytes() int { return p.Flits() * FlitBytes }

// String implements fmt.Stringer for debugging.
func (p *Packet) String() string {
	return fmt.Sprintf("%s#%d %d->%d addr=%#x", p.Kind, p.ID, p.Src, p.Dst, p.Addr)
}
