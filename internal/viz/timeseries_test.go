package viz

import (
	"reflect"
	"strings"
	"testing"

	"memnet/internal/metrics"
	"memnet/internal/sim"
)

func TestRenderTimeSeries(t *testing.T) {
	d := &metrics.Dump{
		Interval: 10 * sim.Microsecond,
		Ticks:    4,
		Series: []metrics.SeriesDump{
			{Name: "frontend.completed", Kind: "counter", Samples: []float64{10, 20, 30, 40}},
			{Name: "network.in_flight", Kind: "gauge", Samples: []float64{5, 5, 5, 5}},
			{Name: "lat", Kind: "histogram", Bounds: []float64{1, 2},
				Hist: [][]uint64{{1, 1}, {0, 3}, {2, 0}, {0, 0}}},
		},
	}
	out := RenderTimeSeries(d)
	if !strings.Contains(out, "4 ticks x 10.00us") {
		t.Errorf("missing header: %q", out)
	}
	if !strings.Contains(out, "min=10 mean=25 max=40 last=40") {
		t.Errorf("counter stats wrong:\n%s", out)
	}
	if !strings.Contains(out, "min=0 mean=1.75 max=3 last=0 (observations/tick)") {
		t.Errorf("histogram totals wrong:\n%s", out)
	}
	// Every series line carries a sparkline rune.
	for _, name := range []string{"frontend.completed", "network.in_flight", "lat"} {
		line := ""
		for _, l := range strings.Split(out, "\n") {
			if strings.Contains(l, name) {
				line = l
			}
		}
		if !strings.ContainsAny(line, "▁▂▃▄▅▆▇█") {
			t.Errorf("series %s has no sparkline: %q", name, line)
		}
	}
}

func TestRenderTimeSeriesEmpty(t *testing.T) {
	for _, d := range []*metrics.Dump{nil, {Interval: 1}} {
		out := RenderTimeSeries(d)
		if !strings.Contains(out, "no samples") {
			t.Errorf("empty dump rendered %q", out)
		}
	}
}

func TestDownsample(t *testing.T) {
	cases := []struct {
		name  string
		in    []float64
		width int
		want  []float64
	}{
		{"short passthrough", []float64{1, 2, 3}, 60, []float64{1, 2, 3}},
		{"exact fit", []float64{1, 2}, 2, []float64{1, 2}},
		{"halving", []float64{1, 3, 5, 7}, 2, []float64{2, 6}},
		{"ragged tail", []float64{2, 4, 6, 8, 10}, 3, []float64{3, 7, 10}},
		{"zero width", []float64{1, 2}, 0, []float64{1, 2}},
	}
	for _, tc := range cases {
		if got := downsample(tc.in, tc.width); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: downsample = %v, want %v", tc.name, got, tc.want)
		}
	}
}
