package viz

import (
	"math"
	"strings"
)

// BandGauge renders a value's position inside a declared band [lo, hi] as
// a fixed-width ASCII gauge: "[---*----]" with the marker at the value's
// relative position. Values outside the band pin to '<' or '>' at the
// matching edge, and a non-finite value renders all '?' — so a failing
// row is visually loud in plain-text reports. Width is the inner cell
// count (minimum 1).
func BandGauge(lo, hi, val float64, width int) string {
	if width < 1 {
		width = 1
	}
	if math.IsNaN(val) || math.IsInf(val, 0) || math.IsNaN(lo) || math.IsNaN(hi) || lo > hi {
		return "[" + strings.Repeat("?", width) + "]"
	}
	cells := make([]byte, width)
	for i := range cells {
		cells[i] = '-'
	}
	switch {
	case val < lo:
		cells[0] = '<'
	case val > hi:
		cells[width-1] = '>'
	default:
		frac := 0.5
		if hi > lo {
			frac = (val - lo) / (hi - lo)
		}
		pos := int(frac * float64(width))
		if pos >= width {
			pos = width - 1
		}
		cells[pos] = '*'
	}
	return "[" + string(cells) + "]"
}
