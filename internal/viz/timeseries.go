package viz

import (
	"fmt"
	"strings"

	"memnet/internal/metrics"
	"memnet/internal/sim"
)

// sparkWidth caps a time-series sparkline; longer series downsample by
// averaging fixed-size groups so the rendered shape stays faithful.
const sparkWidth = 60

// RenderTimeSeries draws one metrics dump as a labeled sparkline per
// series — the repo's time-series figure. Counter and gauge series show
// min/mean/max/last over the retained window; histogram series render
// their per-tick total observation count. A nil or empty dump renders a
// one-line placeholder so callers can print unconditionally.
func RenderTimeSeries(d *metrics.Dump) string {
	if d == nil || d.Ticks == 0 {
		return "metrics: no samples (enable with -metrics)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "metrics: %d ticks x %s", d.Ticks, sim.Duration(d.Interval))
	if d.Dropped > 0 {
		fmt.Fprintf(&b, " (%d oldest dropped by the ring)", d.Dropped)
	}
	b.WriteByte('\n')
	nameW := 0
	for _, s := range d.Series {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	for _, s := range d.Series {
		vals := s.Samples
		suffix := ""
		if s.Kind == "histogram" {
			vals = histTotals(s.Hist)
			suffix = " (observations/tick)"
		}
		lo, hi, mean, last := summarize(vals)
		fmt.Fprintf(&b, "  %-*s %s  min=%.4g mean=%.4g max=%.4g last=%.4g%s\n",
			nameW, s.Name, pad(Sparkline(downsample(vals, sparkWidth)), sparkWidth),
			lo, mean, hi, last, suffix)
	}
	return b.String()
}

// histTotals flattens histogram rows to per-tick observation counts.
func histTotals(rows [][]uint64) []float64 {
	out := make([]float64, len(rows))
	for j, row := range rows {
		var t uint64
		for _, c := range row {
			t += c
		}
		out[j] = float64(t)
	}
	return out
}

// downsample reduces vals to at most width points by averaging equal
// groups (the last group may be shorter).
func downsample(vals []float64, width int) []float64 {
	if len(vals) <= width || width <= 0 {
		return vals
	}
	group := (len(vals) + width - 1) / width
	out := make([]float64, 0, width)
	for i := 0; i < len(vals); i += group {
		end := i + group
		if end > len(vals) {
			end = len(vals)
		}
		sum := 0.0
		for _, v := range vals[i:end] {
			sum += v
		}
		out = append(out, sum/float64(end-i))
	}
	return out
}

func summarize(vals []float64) (lo, hi, mean, last float64) {
	if len(vals) == 0 {
		return 0, 0, 0, 0
	}
	lo, hi = vals[0], vals[0]
	sum := 0.0
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
		sum += v
	}
	return lo, hi, sum / float64(len(vals)), vals[len(vals)-1]
}

// pad right-pads a sparkline to width runes so the stat columns align
// even for short series.
func pad(s string, width int) string {
	if n := len([]rune(s)); n < width {
		return s + strings.Repeat(" ", width-n)
	}
	return s
}
