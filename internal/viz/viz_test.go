package viz

import (
	"strings"
	"testing"

	"memnet/internal/topology"
)

func TestRenderTreeShape(t *testing.T) {
	topo, err := topology.Build(topology.TernaryTree, 5)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTree(topo, nil)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// processor + 5 modules.
	if len(lines) != 6 {
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	if lines[0] != "processor" {
		t.Fatalf("first line %q", lines[0])
	}
	if !strings.Contains(lines[1], "└─ 0") {
		t.Fatalf("root line %q", lines[1])
	}
	// Every module appears exactly once.
	for m := 0; m < 5; m++ {
		count := 0
		for _, l := range lines {
			fields := strings.Fields(strings.NewReplacer("├─", "", "└─", "", "│", "").Replace(l))
			for _, f := range fields {
				if f == strings.TrimSpace(string(rune('0'+m))) {
					count++
				}
			}
		}
		if count != 1 {
			t.Fatalf("module %d appears %d times:\n%s", m, count, out)
		}
	}
}

func TestRenderTreeAnnotations(t *testing.T) {
	topo, _ := topology.Build(topology.DaisyChain, 2)
	out := RenderTree(topo, func(m int) string {
		if m == 1 {
			return "HOT"
		}
		return ""
	})
	if !strings.Contains(out, "1  HOT") {
		t.Fatalf("annotation missing:\n%s", out)
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Fatal("empty input should render empty")
	}
	s := Sparkline([]float64{0, 0.5, 1})
	runes := []rune(s)
	if len(runes) != 3 {
		t.Fatalf("length %d", len(runes))
	}
	if runes[0] != '▁' || runes[2] != '█' {
		t.Fatalf("scaling wrong: %s", s)
	}
	// Constant series renders at the floor without dividing by zero.
	c := []rune(Sparkline([]float64{3, 3, 3}))
	if len(c) != 3 || c[0] != '▁' {
		t.Fatalf("constant series: %s", string(c))
	}
}

func TestBar(t *testing.T) {
	if Bar(0.5, 8) != "[####....]" {
		t.Fatalf("Bar(0.5,8) = %q", Bar(0.5, 8))
	}
	if Bar(-1, 4) != "[....]" || Bar(2, 4) != "[####]" {
		t.Fatal("clamping broken")
	}
	if Bar(0.5, 0) != "" {
		t.Fatal("zero width")
	}
}
