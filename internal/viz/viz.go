// Package viz renders memory-network state as text: the module tree with
// per-link annotations, and sparklines for sampled time series. The
// renderers are pure functions over the topology so they are unit-testable
// without a simulation.
package viz

import (
	"fmt"
	"strings"

	"memnet/internal/topology"
)

// RenderTree draws the module tree. annotate(module) supplies the text
// appended to each module line (e.g., link modes and utilizations); nil
// renders bare IDs.
func RenderTree(topo *topology.Topology, annotate func(module int) string) string {
	var b strings.Builder
	b.WriteString("processor\n")
	var walk func(mod int, prefix string, last bool)
	walk = func(mod int, prefix string, last bool) {
		connector := "├─ "
		childPrefix := prefix + "│  "
		if last {
			connector = "└─ "
			childPrefix = prefix + "   "
		}
		line := fmt.Sprintf("%s%s%d", prefix, connector, mod)
		if annotate != nil {
			if a := annotate(mod); a != "" {
				line += "  " + a
			}
		}
		b.WriteString(line)
		b.WriteByte('\n')
		children := topo.Children(mod)
		for i, c := range children {
			walk(c, childPrefix, i == len(children)-1)
		}
	}
	walk(0, "", true)
	return b.String()
}

// sparkRunes are the eight block-element levels.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values scaled to [min, max] as unicode block levels.
// An empty input renders as an empty string; a constant series renders at
// the lowest level.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := values[0], values[0]
	for _, v := range values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// Bar renders a fraction in [0,1] as a fixed-width meter, e.g. [####....].
func Bar(frac float64, width int) string {
	if width <= 0 {
		return ""
	}
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	filled := int(frac*float64(width) + 0.5)
	return "[" + strings.Repeat("#", filled) + strings.Repeat(".", width-filled) + "]"
}
