package viz

import (
	"math"
	"strings"
	"testing"
)

func TestBandGauge(t *testing.T) {
	cases := []struct {
		name        string
		lo, hi, val float64
		width       int
		want        string
	}{
		{"center", 0, 1, 0.5, 10, "[-----*----]"},
		{"at min", 0, 1, 0, 10, "[*---------]"},
		{"at max clamps inside", 0, 1, 1, 10, "[---------*]"},
		{"below pins left", 0, 1, -0.5, 10, "[<---------]"},
		{"above pins right", 0, 1, 1.5, 10, "[--------->]"},
		{"degenerate band centers", 2, 2, 2, 9, "[----*----]"},
		{"nan is loud", 0, 1, math.NaN(), 6, "[??????]"},
		{"inverted band is loud", 1, 0, 0.5, 4, "[????]"},
		{"width floor", 0, 1, 0.5, 0, "[*]"},
		{"negative range", -2, -1, -1.75, 4, "[-*--]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := BandGauge(tc.lo, tc.hi, tc.val, tc.width); got != tc.want {
				t.Fatalf("BandGauge(%g, %g, %g, %d) = %q, want %q", tc.lo, tc.hi, tc.val, tc.width, got, tc.want)
			}
		})
	}
	// Exactly one marker for any in-band value at any width.
	for _, v := range []float64{0, 0.1, 0.33, 0.5, 0.77, 1} {
		g := BandGauge(0, 1, v, 12)
		if strings.Count(g, "*") != 1 || len(g) != 14 {
			t.Fatalf("BandGauge(0, 1, %g, 12) = %q: want exactly one marker in 12 cells", v, g)
		}
	}
}
