package topology

import (
	"fmt"
	"sort"
	"testing"
)

// reachableWithoutUpEdge runs a BFS from the processor over the
// parent/children graph with module cut's upstream edge removed, and
// returns the set of modules it can no longer reach, sorted.
func reachableWithoutUpEdge(topo *Topology, cut int) []int {
	n := topo.N()
	seen := make([]bool, n)
	var frontier []int
	for m := 0; m < n; m++ {
		// Roots hang directly off the processor.
		if topo.Parent(m) == -1 && m != cut {
			seen[m] = true
			frontier = append(frontier, m)
		}
	}
	for len(frontier) > 0 {
		m := frontier[0]
		frontier = frontier[1:]
		for _, c := range topo.Children(m) {
			if c == cut || seen[c] { // cut's up-edge is the removed one
				continue
			}
			seen[c] = true
			frontier = append(frontier, c)
		}
	}
	var lost []int
	for m := 0; m < n; m++ {
		if !seen[m] {
			lost = append(lost, m)
		}
	}
	return lost
}

// TestSingleLinkRemovalPartitionsSubtree is the partition property: for
// every topology and every module c, removing the single link between c
// and its parent must disconnect exactly Subtree(c) — nothing more (the
// rest of the network survives) and nothing less (there is no redundant
// path; these are all trees).
func TestSingleLinkRemovalPartitionsSubtree(t *testing.T) {
	for _, kind := range Kinds {
		for _, n := range []int{1, 2, 4, 8, 9, 16, 27} {
			topo, err := Build(kind, n)
			if err != nil {
				t.Fatalf("%v/%d: %v", kind, n, err)
			}
			for c := 0; c < topo.N(); c++ {
				want := append([]int(nil), topo.Subtree(c)...)
				sort.Ints(want)
				got := reachableWithoutUpEdge(topo, c)
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("%v/%d: cutting above module %d partitions %v, want Subtree=%v",
						kind, n, c, got, want)
				}
			}
		}
	}
}

// TestSubtreeContainsSelfFirst pins the Subtree contract the network's
// failure handling relies on: d itself is included and IDs ascend.
func TestSubtreeContainsSelfFirst(t *testing.T) {
	for _, kind := range Kinds {
		topo, err := Build(kind, 9)
		if err != nil {
			t.Fatal(err)
		}
		for d := 0; d < topo.N(); d++ {
			sub := topo.Subtree(d)
			if len(sub) == 0 || sub[0] != d {
				t.Fatalf("%v: Subtree(%d) = %v, want it to start with %d", kind, d, sub, d)
			}
			for i := 1; i < len(sub); i++ {
				if sub[i] <= sub[i-1] {
					t.Fatalf("%v: Subtree(%d) = %v not ascending", kind, d, sub)
				}
			}
		}
	}
}
