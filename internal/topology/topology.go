// Package topology builds the minimally connected memory-network
// topologies studied in the paper (Fig. 3): daisy chain, ternary tree,
// star, and DDRx-like. A topology is a tree of HMC modules rooted at the
// module attached to the processor; every edge is one full link (a pair of
// unidirectional request/response links).
//
// Minimally connected topologies are acyclic by construction, so routing
// is unique and no deadlock/livelock avoidance is needed — exactly the
// setting the paper studies.
//
// The paper's Fig. 3 drawings leave some numbering ambiguous; the concrete
// choices here are documented on each generator. Module i always holds the
// i-th contiguous slice of the physical address space (4 GB in the small
// network study, 1 GB in the big network study), matching §III-C.
package topology

import "fmt"

// Kind selects one of the studied topologies.
type Kind int

const (
	// DaisyChain is a single chain of low-radix HMCs:
	// processor -> 0 -> 1 -> ... -> n-1.
	DaisyChain Kind = iota
	// TernaryTree is a BFS-numbered complete ternary tree of high-radix
	// HMCs; it minimizes hop distance.
	TernaryTree
	// Star is one high-radix hub (module 0) attached to the processor,
	// with three low-radix spokes grown ring by ring so that every ring
	// is equidistant from the processor.
	Star
	// DDRxLike scales like DDRx DIMM ranks: rows of three modules, the
	// first row's centre module attached to the processor, each
	// subsequent row chained below the previous one.
	DDRxLike
)

// Kinds lists every topology in the order the paper's figures use.
var Kinds = []Kind{DaisyChain, TernaryTree, Star, DDRxLike}

// String implements fmt.Stringer with the paper's labels.
func (k Kind) String() string {
	switch k {
	case DaisyChain:
		return "daisychain"
	case TernaryTree:
		return "ternary tree"
	case Star:
		return "star"
	case DDRxLike:
		return "DDRx-like"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind converts a label (as printed by String) back to a Kind.
func ParseKind(s string) (Kind, error) {
	for _, k := range Kinds {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("topology: unknown kind %q", s)
}

// Radix classifies an HMC by its number of full links, per the HMC spec:
// high-radix parts have four full links, low-radix parts two.
type Radix int

const (
	// LowRadix HMCs have two full links.
	LowRadix Radix = 2
	// HighRadix HMCs have four full links.
	HighRadix Radix = 4
)

// ProcessorID is the parent ID of the root module.
const ProcessorID = -1

// Topology is an immutable module tree. Build validates all invariants, so
// a Topology in hand is always well formed.
type Topology struct {
	kind     Kind
	parent   []int
	radix    []Radix
	children [][]int
	depth    []int // hops from the processor; root is 1
	nextHop  [][]int
}

// Build constructs a topology of the given kind with n modules (n >= 1).
func Build(kind Kind, n int) (*Topology, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: need at least 1 module, got %d", n)
	}
	var parent []int
	var radix []Radix
	switch kind {
	case DaisyChain:
		parent, radix = buildDaisyChain(n)
	case TernaryTree:
		parent, radix = buildTernaryTree(n)
	case Star:
		parent, radix = buildStar(n)
	case DDRxLike:
		parent, radix = buildDDRxLike(n)
	default:
		return nil, fmt.Errorf("topology: unknown kind %d", int(kind))
	}
	t := &Topology{kind: kind, parent: parent, radix: radix}
	if err := t.finish(); err != nil {
		return nil, err
	}
	return t, nil
}

// New constructs a topology from explicit parent pointers and radix
// classes, for tests and custom layouts. parent[0] must be ProcessorID.
func New(kind Kind, parent []int, radix []Radix) (*Topology, error) {
	if len(parent) != len(radix) {
		return nil, fmt.Errorf("topology: %d parents but %d radix classes", len(parent), len(radix))
	}
	t := &Topology{
		kind:   kind,
		parent: append([]int(nil), parent...),
		radix:  append([]Radix(nil), radix...),
	}
	if err := t.finish(); err != nil {
		return nil, err
	}
	return t, nil
}

// buildDaisyChain chains low-radix modules: each uses one full link up and
// one down, the minimum-area configuration the paper picks for chains.
func buildDaisyChain(n int) ([]int, []Radix) {
	parent := make([]int, n)
	radix := make([]Radix, n)
	for i := range parent {
		parent[i] = i - 1 // module 0 gets ProcessorID
		radix[i] = LowRadix
	}
	return parent, radix
}

// buildTernaryTree numbers a complete ternary tree breadth-first: module i
// has children 3i+1, 3i+2, 3i+3. All modules are high radix (one full link
// up, up to three down).
func buildTernaryTree(n int) ([]int, []Radix) {
	parent := make([]int, n)
	radix := make([]Radix, n)
	for i := range parent {
		if i == 0 {
			parent[i] = ProcessorID
		} else {
			parent[i] = (i - 1) / 3
		}
		radix[i] = HighRadix
	}
	return parent, radix
}

// buildStar attaches one high-radix hub to the processor and grows three
// low-radix spokes ring by ring: ring r holds modules 3(r-1)+1 .. 3r, each
// directly below the same spoke's module in ring r-1. Small stars thus have
// the same hop-distance multiset as the ternary tree while using a single
// high-radix part, matching the paper's motivation for the topology.
func buildStar(n int) ([]int, []Radix) {
	parent := make([]int, n)
	radix := make([]Radix, n)
	parent[0] = ProcessorID
	radix[0] = HighRadix
	for i := 1; i < n; i++ {
		if i <= 3 {
			parent[i] = 0
		} else {
			parent[i] = i - 3
		}
		radix[i] = LowRadix
	}
	return parent, radix
}

// buildDDRxLike arranges modules in rows of three, like ranks of DIMMs:
// row r is {centre 3r, left 3r+1, right 3r+2}; the left and right modules
// attach to their row's centre, and each row's centre attaches to the
// centre above it (row 0's centre to the processor). Capacity scales by
// appending rows, the paper's "add ranks" analogy. Centre modules carry
// up to four links (up, down, two siblings) and are high radix; the
// leaves are low radix, giving the mixed-radix composition §III-A calls
// for.
func buildDDRxLike(n int) ([]int, []Radix) {
	parent := make([]int, n)
	radix := make([]Radix, n)
	for i := 0; i < n; i++ {
		row, pos := i/3, i%3
		switch {
		case pos == 0 && row == 0:
			parent[i] = ProcessorID
			radix[i] = HighRadix
		case pos == 0:
			parent[i] = 3 * (row - 1)
			radix[i] = HighRadix
		default:
			parent[i] = 3 * row
			radix[i] = LowRadix
		}
	}
	return parent, radix
}

// finish derives children/depth/routing tables and validates invariants.
func (t *Topology) finish() error {
	n := len(t.parent)
	t.children = make([][]int, n)
	for i := 1; i < n; i++ {
		p := t.parent[i]
		if p < 0 || p >= n {
			if i == 0 {
				continue
			}
			return fmt.Errorf("topology: module %d has invalid parent %d", i, p)
		}
		if p >= i {
			return fmt.Errorf("topology: module %d has parent %d >= itself; modules must be numbered so parents precede children", i, p)
		}
		t.children[p] = append(t.children[p], i)
	}
	if n > 0 && t.parent[0] != ProcessorID {
		return fmt.Errorf("topology: module 0 must attach to the processor, has parent %d", t.parent[0])
	}
	for i := 1; i < n; i++ {
		if t.parent[i] == ProcessorID {
			return fmt.Errorf("topology: module %d attaches to the processor; only module 0 may", i)
		}
	}
	// Radix budget: one full link upstream plus one per child.
	for i := 0; i < n; i++ {
		used := 1 + len(t.children[i])
		if used > int(t.radix[i]) {
			return fmt.Errorf("topology: module %d uses %d full links but is radix %d", i, used, t.radix[i])
		}
	}
	// Depth (hop distance from the processor; the root is one hop away).
	t.depth = make([]int, n)
	for i := 0; i < n; i++ {
		if t.parent[i] == ProcessorID {
			t.depth[i] = 1
		} else {
			t.depth[i] = t.depth[t.parent[i]] + 1
		}
	}
	// Downstream routing: nextHop[m][d] is the child of m on the path to
	// d, or -1 if d is not in m's subtree (or d == m).
	t.nextHop = make([][]int, n)
	for m := range t.nextHop {
		t.nextHop[m] = make([]int, n)
		for d := range t.nextHop[m] {
			t.nextHop[m][d] = -1
		}
	}
	for d := 0; d < n; d++ {
		// Walk up from d, recording the step taken into each ancestor.
		child := d
		for p := t.parent[d]; p != ProcessorID; p = t.parent[p] {
			t.nextHop[p][d] = child
			child = p
		}
	}
	return nil
}

// Kind returns the topology kind.
func (t *Topology) Kind() Kind { return t.kind }

// N returns the number of modules.
func (t *Topology) N() int { return len(t.parent) }

// Parent returns module i's upstream neighbour (ProcessorID for the root).
func (t *Topology) Parent(i int) int { return t.parent[i] }

// Radix returns module i's radix class.
func (t *Topology) Radix(i int) Radix { return t.radix[i] }

// Children returns module i's downstream neighbours. The returned slice is
// shared; callers must not modify it.
func (t *Topology) Children(i int) []int { return t.children[i] }

// Depth returns module i's hop distance from the processor (root = 1).
func (t *Topology) Depth(i int) int { return t.depth[i] }

// MaxDepth returns the worst-case hop distance in the network.
func (t *Topology) MaxDepth() int {
	max := 0
	for _, d := range t.depth {
		if d > max {
			max = d
		}
	}
	return max
}

// NextHop returns the module to forward to from module m toward
// destination d (downstream routing), or -1 if d is not strictly below m.
func (t *Topology) NextHop(m, d int) int { return t.nextHop[m][d] }

// PathFromProcessor returns the module sequence from the root to d,
// inclusive.
func (t *Topology) PathFromProcessor(d int) []int {
	path := make([]int, 0, t.depth[d])
	for i := d; i != ProcessorID; i = t.parent[i] {
		path = append(path, i)
	}
	// Reverse in place.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// Subtree returns d and every module below it, in ascending ID order.
func (t *Topology) Subtree(d int) []int {
	var out []int
	var walk func(int)
	walk = func(m int) {
		out = append(out, m)
		for _, c := range t.children[m] {
			walk(c)
		}
	}
	walk(d)
	// IDs are assigned parents-first but subtrees may interleave; sort.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// CountByRadix returns how many modules are low and high radix.
func (t *Topology) CountByRadix() (low, high int) {
	for _, r := range t.radix {
		if r == HighRadix {
			high++
		} else {
			low++
		}
	}
	return low, high
}

// LinksAtDepth returns, for each hop distance d >= 1, the number of full
// links whose downstream endpoint is at depth d (S(d) in the paper's
// §VII-A static-selection formula). Index 0 is unused.
func (t *Topology) LinksAtDepth() []int {
	s := make([]int, t.MaxDepth()+1)
	for _, d := range t.depth {
		s[d]++
	}
	return s
}

// String summarizes the topology.
func (t *Topology) String() string {
	low, high := t.CountByRadix()
	return fmt.Sprintf("%s(n=%d, low=%d, high=%d, maxHops=%d)", t.kind, t.N(), low, high, t.MaxDepth())
}
