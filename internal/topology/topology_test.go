package topology

import (
	"testing"
	"testing/quick"
)

func build(t *testing.T, k Kind, n int) *Topology {
	t.Helper()
	topo, err := Build(k, n)
	if err != nil {
		t.Fatalf("Build(%v, %d): %v", k, n, err)
	}
	return topo
}

// checkInvariants validates the structural properties every minimally
// connected topology must have.
func checkInvariants(t *testing.T, topo *Topology) {
	t.Helper()
	n := topo.N()
	if topo.Parent(0) != ProcessorID {
		t.Fatalf("root parent = %d", topo.Parent(0))
	}
	// Tree: every non-root has exactly one parent with smaller ID, so the
	// graph is acyclic and connected with n-1 edges.
	edges := 0
	for i := 1; i < n; i++ {
		p := topo.Parent(i)
		if p < 0 || p >= i {
			t.Fatalf("module %d parent %d violates parents-first numbering", i, p)
		}
		edges++
	}
	if edges != n-1 {
		t.Fatalf("edges = %d, want %d", edges, n-1)
	}
	// Radix budgets.
	for i := 0; i < n; i++ {
		used := 1 + len(topo.Children(i))
		if used > int(topo.Radix(i)) {
			t.Fatalf("module %d uses %d full links with radix %d", i, used, topo.Radix(i))
		}
	}
	// Depths are parent depth + 1.
	for i := 1; i < n; i++ {
		if topo.Depth(i) != topo.Depth(topo.Parent(i))+1 {
			t.Fatalf("module %d depth %d, parent depth %d", i, topo.Depth(i), topo.Depth(topo.Parent(i)))
		}
	}
	if n > 0 && topo.Depth(0) != 1 {
		t.Fatalf("root depth = %d, want 1", topo.Depth(0))
	}
	// Routing: the path from the processor reaches every module, and
	// NextHop agrees with it.
	for d := 0; d < n; d++ {
		path := topo.PathFromProcessor(d)
		if path[0] != 0 || path[len(path)-1] != d {
			t.Fatalf("path to %d = %v", d, path)
		}
		if len(path) != topo.Depth(d) {
			t.Fatalf("path length %d != depth %d", len(path), topo.Depth(d))
		}
		for i := 0; i+1 < len(path); i++ {
			if topo.NextHop(path[i], d) != path[i+1] {
				t.Fatalf("NextHop(%d,%d) = %d, want %d", path[i], d, topo.NextHop(path[i], d), path[i+1])
			}
		}
		if topo.NextHop(d, d) != -1 {
			t.Fatalf("NextHop(%d,%d) should be -1", d, d)
		}
	}
	// LinksAtDepth sums to n.
	sum := 0
	for _, s := range topo.LinksAtDepth() {
		sum += s
	}
	if sum != n {
		t.Fatalf("LinksAtDepth sums to %d, want %d", sum, n)
	}
}

func TestAllKindsInvariants(t *testing.T) {
	for _, k := range Kinds {
		for _, n := range []int{1, 2, 3, 4, 5, 7, 9, 13, 17, 26, 33, 40} {
			checkInvariants(t, build(t, k, n))
		}
	}
}

func TestInvariantsQuick(t *testing.T) {
	if err := quick.Check(func(kindSel uint8, nRaw uint8) bool {
		k := Kinds[int(kindSel)%len(Kinds)]
		n := 1 + int(nRaw)%64
		topo, err := Build(k, n)
		if err != nil {
			return false
		}
		if topo.N() != n {
			return false
		}
		// Spot-check the invariants cheaply.
		for i := 1; i < n; i++ {
			if topo.Parent(i) >= i || topo.Depth(i) != topo.Depth(topo.Parent(i))+1 {
				return false
			}
			if 1+len(topo.Children(i)) > int(topo.Radix(i)) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDaisyChainShape(t *testing.T) {
	topo := build(t, DaisyChain, 5)
	for i := 0; i < 5; i++ {
		if topo.Parent(i) != i-1 {
			t.Errorf("parent(%d) = %d", i, topo.Parent(i))
		}
		if topo.Radix(i) != LowRadix {
			t.Errorf("module %d radix %d, want low", i, topo.Radix(i))
		}
		if topo.Depth(i) != i+1 {
			t.Errorf("depth(%d) = %d", i, topo.Depth(i))
		}
	}
	if topo.MaxDepth() != 5 {
		t.Errorf("max depth = %d", topo.MaxDepth())
	}
}

func TestTernaryTreeShape(t *testing.T) {
	topo := build(t, TernaryTree, 13)
	// BFS numbering: children of i are 3i+1..3i+3.
	for i := 1; i < 13; i++ {
		if topo.Parent(i) != (i-1)/3 {
			t.Errorf("parent(%d) = %d, want %d", i, topo.Parent(i), (i-1)/3)
		}
	}
	low, high := topo.CountByRadix()
	if low != 0 || high != 13 {
		t.Errorf("radix counts low=%d high=%d, want all high", low, high)
	}
	// 13 modules = root + 3 + 9: depth 3.
	if topo.MaxDepth() != 3 {
		t.Errorf("max depth = %d, want 3", topo.MaxDepth())
	}
}

func TestStarShape(t *testing.T) {
	topo := build(t, Star, 7)
	low, high := topo.CountByRadix()
	if high != 1 || low != 6 {
		t.Errorf("star radix: low=%d high=%d, want 6/1", low, high)
	}
	// Hub at depth 1, ring 1 at depth 2, ring 2 at depth 3.
	wantDepth := []int{1, 2, 2, 2, 3, 3, 3}
	for i, w := range wantDepth {
		if topo.Depth(i) != w {
			t.Errorf("depth(%d) = %d, want %d", i, topo.Depth(i), w)
		}
	}
}

// TestStarMatchesTernaryTreeHopDistancesSmall checks the paper's claim
// that for small networks star offers the same hop distances as the
// ternary tree while requiring fewer high-radix HMCs.
func TestStarMatchesTernaryTreeHopDistancesSmall(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4} {
		star := build(t, Star, n)
		tree := build(t, TernaryTree, n)
		starH := map[int]int{}
		treeH := map[int]int{}
		for i := 0; i < n; i++ {
			starH[star.Depth(i)]++
			treeH[tree.Depth(i)]++
		}
		for d, c := range treeH {
			if starH[d] != c {
				t.Errorf("n=%d: hop multiset differs at depth %d: star %d vs tree %d", n, d, starH[d], c)
			}
		}
		_, starHigh := star.CountByRadix()
		_, treeHigh := tree.CountByRadix()
		if n > 1 && starHigh >= treeHigh+1 {
			t.Errorf("n=%d: star uses %d high-radix vs tree %d", n, starHigh, treeHigh)
		}
	}
}

func TestDDRxLikeShape(t *testing.T) {
	topo := build(t, DDRxLike, 9)
	// Rows of three: centres 0,3,6 form a high-radix spine, leaves hang
	// off their row's centre.
	for _, c := range []struct{ mod, parent int }{
		{1, 0}, {2, 0}, {3, 0}, {4, 3}, {5, 3}, {6, 3}, {7, 6}, {8, 6},
	} {
		if topo.Parent(c.mod) != c.parent {
			t.Errorf("parent(%d) = %d, want %d", c.mod, topo.Parent(c.mod), c.parent)
		}
	}
	for i := 0; i < 9; i++ {
		wantHigh := i%3 == 0
		if (topo.Radix(i) == HighRadix) != wantHigh {
			t.Errorf("module %d radix = %d", i, topo.Radix(i))
		}
	}
	low, high := topo.CountByRadix()
	if low != 6 || high != 3 {
		t.Errorf("radix mix low=%d high=%d, want 6/3", low, high)
	}
	// The topology must differ from star beyond trivial sizes.
	star := build(t, Star, 9)
	same := true
	for i := 0; i < 9; i++ {
		if star.Parent(i) != topo.Parent(i) {
			same = false
		}
	}
	if same {
		t.Error("DDRx-like degenerated into the star topology")
	}
}

func TestSubtree(t *testing.T) {
	topo := build(t, TernaryTree, 13)
	sub := topo.Subtree(1)
	want := []int{1, 4, 5, 6}
	if len(sub) != len(want) {
		t.Fatalf("Subtree(1) = %v, want %v", sub, want)
	}
	for i := range want {
		if sub[i] != want[i] {
			t.Fatalf("Subtree(1) = %v, want %v", sub, want)
		}
	}
	whole := topo.Subtree(0)
	if len(whole) != 13 {
		t.Fatalf("Subtree(0) has %d modules", len(whole))
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(DaisyChain, 0); err == nil {
		t.Error("Build with n=0 should fail")
	}
	if _, err := Build(Kind(99), 3); err == nil {
		t.Error("Build with unknown kind should fail")
	}
}

func TestNewValidation(t *testing.T) {
	// A chain of low-radix modules with a 3-way branch must fail.
	parent := []int{ProcessorID, 0, 0, 0}
	radix := []Radix{LowRadix, LowRadix, LowRadix, LowRadix}
	if _, err := New(DaisyChain, parent, radix); err == nil {
		t.Error("radix violation not detected")
	}
	radix[0] = HighRadix
	if _, err := New(DaisyChain, parent, radix); err != nil {
		t.Errorf("valid custom topology rejected: %v", err)
	}
	// Child-before-parent numbering rejected.
	if _, err := New(DaisyChain, []int{ProcessorID, 2, 1}, []Radix{LowRadix, LowRadix, LowRadix}); err == nil {
		t.Error("forward parent reference not detected")
	}
	// Second processor attachment rejected.
	if _, err := New(DaisyChain, []int{ProcessorID, ProcessorID}, []Radix{LowRadix, LowRadix}); err == nil {
		t.Error("two processor attachments not detected")
	}
	// Mismatched slice lengths rejected.
	if _, err := New(DaisyChain, []int{ProcessorID}, nil); err == nil {
		t.Error("length mismatch not detected")
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range Kinds {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("mesh"); err == nil {
		t.Error("ParseKind accepted unknown kind")
	}
}

func TestLinksAtDepthDaisyChain(t *testing.T) {
	topo := build(t, DaisyChain, 4)
	s := topo.LinksAtDepth()
	for d := 1; d <= 4; d++ {
		if s[d] != 1 {
			t.Errorf("S(%d) = %d, want 1", d, s[d])
		}
	}
}

func TestStringSummaries(t *testing.T) {
	topo := build(t, Star, 7)
	if topo.String() == "" || topo.Kind().String() != "star" {
		t.Error("string summaries empty")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind string empty")
	}
}
