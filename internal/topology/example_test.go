package topology_test

import (
	"fmt"

	"memnet/internal/topology"
)

// Example builds the paper's four topologies at the average small-network
// size and prints their shapes.
func Example() {
	for _, kind := range topology.Kinds {
		topo, err := topology.Build(kind, 5)
		if err != nil {
			panic(err)
		}
		fmt.Println(topo)
	}
	// Output:
	// daisychain(n=5, low=5, high=0, maxHops=5)
	// ternary tree(n=5, low=0, high=5, maxHops=3)
	// star(n=5, low=4, high=1, maxHops=3)
	// DDRx-like(n=5, low=3, high=2, maxHops=3)
}

// ExampleTopology_PathFromProcessor shows downstream routing through a
// ternary tree.
func ExampleTopology_PathFromProcessor() {
	topo, _ := topology.Build(topology.TernaryTree, 13)
	fmt.Println(topo.PathFromProcessor(11))
	fmt.Println(topo.NextHop(0, 11))
	// Output:
	// [0 3 11]
	// 3
}

// ExampleTopology_LinksAtDepth shows the S(d) profile §VII-A's static
// bandwidth formula consumes.
func ExampleTopology_LinksAtDepth() {
	topo, _ := topology.Build(topology.TernaryTree, 13)
	fmt.Println(topo.LinksAtDepth()[1:])
	// Output:
	// [1 3 9]
}
