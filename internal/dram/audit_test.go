package dram

import (
	"testing"

	"memnet/internal/audit"
	"memnet/internal/sim"
)

// TestAuditCleanTrafficNoViolations hammers the stack with enough
// requests to saturate vault queues and requires a clean full-rate audit.
func TestAuditCleanTrafficNoViolations(t *testing.T) {
	k, d := newDRAM(t)
	a := audit.New(audit.Config{SampleEvery: 1, SweepEvery: 16}, k.Now)
	d.AttachAudit(a, 3)
	rng := sim.NewRNG(5)
	done := 0
	for i := 0; i < 400; i++ {
		addr := rng.Uint64()
		read := rng.Float64() < 0.7
		k.Schedule(k.Now()+sim.Duration(rng.Intn(int(20*sim.Nanosecond))), func() {
			d.Access(addr, read, func() { done++ })
		})
		if i%50 == 49 {
			k.RunAll()
		}
	}
	k.RunAll()
	a.RunSweeps()
	if a.Count() != 0 {
		t.Fatalf("healthy DRAM reported %d violations: %v", a.Count(), a.Violations())
	}
	if done == 0 {
		t.Fatal("no accesses completed")
	}
}

// TestAuditCatchesNegativeOutstandingReads corrupts the completion
// counter and checks the sweep reports it against the attached module
// name.
func TestAuditCatchesNegativeOutstandingReads(t *testing.T) {
	k, d := newDRAM(t)
	a := audit.New(audit.Config{}, k.Now)
	d.AttachAudit(a, 7)
	d.outstandingReads = -2
	a.RunSweeps()
	if a.Count() == 0 {
		t.Fatal("negative outstanding reads not detected")
	}
	v := a.Violations()[0]
	if v.Component != "dram[7]" || v.Rule != "outstanding-reads" {
		t.Fatalf("violation = %+v", v)
	}
}

// TestAuditCatchesStatsRegression rewinds a statistics counter between
// sweeps.
func TestAuditCatchesStatsRegression(t *testing.T) {
	k, d := newDRAM(t)
	a := audit.New(audit.Config{}, k.Now)
	d.AttachAudit(a, 0)
	d.Access(0, true, func() {})
	k.RunAll()
	a.RunSweeps()
	if a.Count() != 0 {
		t.Fatalf("clean run reported %v", a.Violations())
	}
	d.stats.Reads-- // counters must never run backwards
	a.RunSweeps()
	found := false
	for _, v := range a.Violations() {
		if v.Rule == "stats-monotone" {
			found = true
		}
	}
	if !found {
		t.Fatalf("stats regression not detected: %v", a.Violations())
	}
}
