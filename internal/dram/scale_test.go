package dram

import (
	"strings"
	"testing"

	"memnet/internal/sim"
)

// Every declared sweep axis must actually perturb the config — a dead
// axis would make a calibration sensitivity sweep vacuously pass.
func TestScaledPerturbsEveryDeclaredParam(t *testing.T) {
	base := DefaultConfig()
	for _, param := range ScalableParams() {
		up, err := base.Scaled(param, 2)
		if err != nil {
			t.Fatalf("Scaled(%q, 2): %v", param, err)
		}
		if up == base {
			t.Errorf("Scaled(%q, 2) left the config unchanged", param)
		}
		if up.Fingerprint() == base.Fingerprint() {
			t.Errorf("Scaled(%q, 2) not visible in Fingerprint", param)
		}
		same, err := base.Scaled(param, 1)
		if err != nil {
			t.Fatalf("Scaled(%q, 1): %v", param, err)
		}
		if same != base {
			t.Errorf("Scaled(%q, 1) is not the identity: %+v", param, same)
		}
	}
}

func TestScaledRejectsBadInput(t *testing.T) {
	base := DefaultConfig()
	if _, err := base.Scaled("tCAS", 1.1); err == nil || !strings.Contains(err.Error(), "unknown scalable parameter") {
		t.Errorf("unknown parameter accepted (err=%v)", err)
	}
	for _, f := range []float64{0, -1} {
		if _, err := base.Scaled("tCL", f); err == nil {
			t.Errorf("factor %g accepted", f)
		}
	}
	// Scaling that breaks a cross-field invariant must surface the
	// Validate error: tRFC blown past tREFI is not a usable config.
	if _, err := base.Scaled("tRFC", 1000); err == nil || !strings.Contains(err.Error(), "refresh") {
		t.Errorf("tRFC x1000 produced no refresh validation error (err=%v)", err)
	}
}

// Fingerprint keys sweep memoization: any field drifting without the
// fingerprint changing would silently alias two different models.
func TestFingerprintCoversEveryField(t *testing.T) {
	base := DefaultConfig()
	perturbed := []struct {
		name string
		mut  func(*Config)
	}{
		{"Vaults", func(c *Config) { c.Vaults++ }},
		{"Banks", func(c *Config) { c.Banks++ }},
		{"QueueDepth", func(c *Config) { c.QueueDepth++ }},
		{"LineBytes", func(c *Config) { c.LineBytes *= 2 }},
		{"BusBits", func(c *Config) { c.BusBits *= 2 }},
		{"BusGbps", func(c *Config) { c.BusGbps *= 1.5 }},
		{"TCL", func(c *Config) { c.TCL += sim.Nanosecond }},
		{"TRCD", func(c *Config) { c.TRCD += sim.Nanosecond }},
		{"TRAS", func(c *Config) { c.TRAS += sim.Nanosecond }},
		{"TRP", func(c *Config) { c.TRP += sim.Nanosecond }},
		{"TRRD", func(c *Config) { c.TRRD += sim.Nanosecond }},
		{"TWR", func(c *Config) { c.TWR += sim.Nanosecond }},
		{"TREFI", func(c *Config) { c.TREFI += sim.Nanosecond }},
		{"TRFC", func(c *Config) { c.TRFC += sim.Nanosecond }},
		{"Page", func(c *Config) { c.Page = 1 - c.Page }},
		{"RowBytes", func(c *Config) { c.RowBytes *= 2 }},
	}
	seen := map[string]string{base.Fingerprint(): "base"}
	for _, p := range perturbed {
		cfg := base
		p.mut(&cfg)
		fp := cfg.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("perturbing %s collides with %s: %s", p.name, prev, fp)
		}
		seen[fp] = p.name
	}
}
