package dram

import (
	"testing"

	"memnet/internal/sim"
)

func newDRAM(t *testing.T) (*sim.Kernel, *HMCDRAM) {
	t.Helper()
	k := sim.NewKernel()
	return k, New(k, DefaultConfig())
}

func TestNominalReadLatency(t *testing.T) {
	c := DefaultConfig()
	// Table I: tRCD + tCL + 8 ns burst = 30 ns, the value §V-A quotes.
	if got := c.NominalReadLatency(); got != 30*sim.Nanosecond {
		t.Fatalf("nominal read latency = %v, want 30ns", got)
	}
	if got := c.BurstTime(); got != 8*sim.Nanosecond {
		t.Fatalf("burst = %v, want 8ns", got)
	}
	if got := c.TRC(); got != 33*sim.Nanosecond {
		t.Fatalf("tRC = %v, want 33ns", got)
	}
}

func TestPeakBandwidth(t *testing.T) {
	c := DefaultConfig()
	// 32 vaults × 32 bits × 2 Gbps = 2048 Gbit/s = 256 GB/s.
	if got := c.PeakBandwidthBytesPerSec(); got != 256e9 {
		t.Fatalf("peak BW = %v, want 256e9", got)
	}
}

func TestUnloadedReadCompletesAtNominalLatency(t *testing.T) {
	k, d := newDRAM(t)
	var done sim.Time = -1
	if !d.Access(0, true, func() { done = k.Now() }) {
		t.Fatal("access rejected")
	}
	k.RunAll()
	if done != 30*sim.Nanosecond {
		t.Fatalf("read completed at %v, want 30ns", done)
	}
	if st := d.Stats(); st.Reads != 1 || st.TotalReadLatency != 30*sim.Nanosecond {
		t.Fatalf("stats = %+v", st)
	}
}

func TestVaultMapping(t *testing.T) {
	_, d := newDRAM(t)
	if d.VaultFor(0) != 0 || d.VaultFor(64) != 1 || d.VaultFor(64*32) != 0 {
		t.Fatal("line-interleaved vault mapping broken")
	}
}

func TestReadsPrioritizedOverWrites(t *testing.T) {
	k, d := newDRAM(t)
	var order []string
	// Fill the vault with writes first, then a read; all to vault 0.
	for i := 0; i < 3; i++ {
		d.Access(0, false, func() { order = append(order, "w") })
	}
	d.Access(0, true, func() { order = append(order, "r") })
	k.RunAll()
	// The first write is already in service; the read must bypass the
	// two queued writes.
	if len(order) != 4 || order[0] != "w" || order[1] != "r" {
		t.Fatalf("completion order = %v, want [w r w w]", order)
	}
}

func TestQueueFullRejects(t *testing.T) {
	k, d := newDRAM(t)
	accepted := 0
	for i := 0; i < 40; i++ {
		if d.Access(0, true, nil) {
			accepted++
		}
	}
	// QueueDepth 16 plus whatever entered service before the queue
	// filled; rejects must be counted.
	if d.Stats().QueueFullRejects == 0 {
		t.Fatal("no rejects recorded")
	}
	if accepted >= 40 {
		t.Fatal("queue never filled")
	}
	k.RunAll()
}

func TestOutstandingReads(t *testing.T) {
	k, d := newDRAM(t)
	d.Access(0, true, nil)
	d.Access(64, true, nil)
	if d.OutstandingReads() != 2 {
		t.Fatalf("outstanding = %d, want 2", d.OutstandingReads())
	}
	k.RunAll()
	if d.OutstandingReads() != 0 {
		t.Fatalf("outstanding after drain = %d", d.OutstandingReads())
	}
}

func TestOnReadStartFires(t *testing.T) {
	k, d := newDRAM(t)
	fires := 0
	d.OnReadStart = func() { fires++ }
	d.Access(0, true, nil)
	d.Access(0, false, nil)
	k.RunAll()
	if fires != 1 {
		t.Fatalf("OnReadStart fired %d times, want 1", fires)
	}
}

func TestVaultParallelism(t *testing.T) {
	k, d := newDRAM(t)
	// Two reads to different vaults complete at the same nominal time;
	// two to the same vault serialize on the bus/tRRD.
	var t1, t2, t3 sim.Time
	d.Access(0, true, func() { t1 = k.Now() })
	d.Access(64, true, func() { t2 = k.Now() })
	d.Access(128*32, true, func() { t3 = k.Now() }) // vault 0 again
	k.RunAll()
	if t1 != 30*sim.Nanosecond || t2 != 30*sim.Nanosecond {
		t.Fatalf("parallel vault reads at %v/%v, want 30ns both", t1, t2)
	}
	if t3 <= t1 {
		t.Fatalf("same-vault read completed at %v, not after %v", t3, t1)
	}
	// Same-vault back-to-back reads are burst-limited: second completes
	// one burst (8 ns) after the first.
	if t3 != 38*sim.Nanosecond {
		t.Fatalf("pipelined same-vault read at %v, want 38ns", t3)
	}
}

func TestClosePageBankOccupancy(t *testing.T) {
	k, d := newDRAM(t)
	cfg := DefaultConfig()
	cfg.Banks = 1
	d = New(k, cfg)
	var t1, t2 sim.Time
	d.Access(0, true, func() { t1 = k.Now() })
	d.Access(128*32, true, func() { t2 = k.Now() }) // same vault, same (only) bank
	k.RunAll()
	// Close page: the single bank is busy tRC (33 ns); the second read
	// activates at 33 ns and completes 30 ns later.
	if t1 != 30*sim.Nanosecond || t2 != 63*sim.Nanosecond {
		t.Fatalf("t1=%v t2=%v, want 30ns/63ns", t1, t2)
	}
}

func TestWriteStats(t *testing.T) {
	k, d := newDRAM(t)
	d.Access(0, false, nil)
	k.RunAll()
	st := d.Stats()
	if st.Writes != 1 || st.Reads != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesTransferred != 64 {
		t.Fatalf("bytes = %d, want 64", st.BytesTransferred)
	}
	if st.BusyTime != 8*sim.Nanosecond {
		t.Fatalf("busy = %v, want 8ns", st.BusyTime)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Vaults = 0 },
		func(c *Config) { c.Banks = -1 },
		func(c *Config) { c.QueueDepth = 0 },
		func(c *Config) { c.LineBytes = 0 },
		func(c *Config) { c.TCL = 0 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if c.Validate() == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if DefaultConfig().Validate() != nil {
		t.Error("default config rejected")
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid config did not panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.Vaults = 0
	New(sim.NewKernel(), cfg)
}

func TestThroughputUnderLoad(t *testing.T) {
	k, d := newDRAM(t)
	// Saturate one vault with a closed loop of reads and check its
	// sustained bandwidth is near the 8 GB/s vault data rate.
	completed := 0
	var issue func()
	issue = func() {
		d.Access(0, true, func() {
			completed++
			issue()
		})
	}
	for i := 0; i < 8; i++ {
		issue()
	}
	k.Run(100 * sim.Microsecond)
	gotBW := float64(completed*64) / (100e-6)
	if gotBW < 6e9 || gotBW > 8.1e9 {
		t.Fatalf("single-vault bandwidth = %.2f GB/s, want ~8", gotBW/1e9)
	}
}

func TestRefreshStallsAccess(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig()
	cfg.TREFI = 1000 * sim.Nanosecond
	cfg.TRFC = 100 * sim.Nanosecond
	d := New(k, cfg)
	// Vault 0's refresh phase is tREFI×1/32 = 31.25 ns; its first window
	// is [31.25ns, 131.25ns). An access issued inside it must wait.
	k.Run(40 * sim.Nanosecond)
	var done sim.Time
	d.Access(0, true, func() { done = k.Now() })
	k.RunAll()
	// Activate pushed to window end (131.25 ns rounded to ps grid), then
	// the nominal 30 ns.
	want := cfg.TREFI/32 + cfg.TRFC + 30*sim.Nanosecond
	if done != want {
		t.Fatalf("refresh-stalled read at %v, want %v", done, want)
	}
	if d.Stats().RefreshStalls != 1 {
		t.Fatalf("stalls = %d", d.Stats().RefreshStalls)
	}
}

func TestRefreshDisabled(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig()
	cfg.TREFI = 0
	d := New(k, cfg)
	k.Run(40 * sim.Nanosecond)
	var done sim.Time
	d.Access(0, true, func() { done = k.Now() })
	k.RunAll()
	if done != 70*sim.Nanosecond {
		t.Fatalf("read at %v, want 70ns (no refresh)", done)
	}
}

func TestRefreshConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TRFC = cfg.TREFI + 1
	if cfg.Validate() == nil {
		t.Fatal("tRFC > tREFI accepted")
	}
}

func TestOpenPageRowHit(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig()
	cfg.Page = OpenPage
	cfg.TREFI = 0
	d := New(k, cfg)
	var t1, t2 sim.Time
	d.Access(0, true, func() { t1 = k.Now() })
	k.RunAll()
	// Addresses 0 and 2048 share vault 0 (line interleaving) and sit in
	// the same vault-local 2 KiB row.
	d.Access(64*32, true, func() { t2 = k.Now() })
	k.RunAll()
	// First access: tRCD+tCL+burst = 30 ns. Hit: tCL+burst = 19 ns.
	if t1 != 30*sim.Nanosecond {
		t.Fatalf("first access at %v", t1)
	}
	if t2-t1 != 19*sim.Nanosecond {
		t.Fatalf("row hit latency = %v, want 19ns", t2-t1)
	}
	if st := d.Stats(); st.RowHits != 1 || st.RowConflicts != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOpenPageRowConflict(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig()
	cfg.Page = OpenPage
	cfg.TREFI = 0
	cfg.Banks = 1
	d := New(k, cfg)
	var t1, t2 sim.Time
	d.Access(0, true, func() { t1 = k.Now() })
	k.RunAll()
	// Different row, same (only) bank: precharge + activate + read.
	d.Access(64*1024, true, func() { t2 = k.Now() }) // vault 0? 64KB/64 % 32 = 0 ✓, row 32
	k.RunAll()
	want := cfg.TRP + cfg.TRCD + cfg.TCL + cfg.BurstTime()
	if t2-t1 != want {
		t.Fatalf("conflict latency = %v, want %v", t2-t1, want)
	}
	if st := d.Stats(); st.RowConflicts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestClosePageNeverHits(t *testing.T) {
	k, d := newDRAM(t)
	for i := 0; i < 5; i++ {
		d.Access(0, true, nil)
		k.RunAll()
	}
	if st := d.Stats(); st.RowHits != 0 || st.RowConflicts != 0 {
		t.Fatalf("close page recorded row outcomes: %+v", st)
	}
}
