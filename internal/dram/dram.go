// Package dram models the DRAM arrays inside one HMC: 32 vaults, each with
// a small bank pool behind a 32-bit 2 Gbps TSV data bus, operated with a
// close-page policy and line-interleaved vault mapping (Table I of the
// paper). The nominal read latency works out to tRCD + tCL + burst =
// 11 + 11 + 8 = 30 ns, the figure the paper's management math uses.
package dram

import (
	"fmt"

	"memnet/internal/audit"
	"memnet/internal/sim"
)

// PagePolicy selects the row-buffer policy.
type PagePolicy int

const (
	// ClosePage precharges after every access (Table I, the paper's
	// configuration): every access pays tRCD + tCL.
	ClosePage PagePolicy = iota
	// OpenPage leaves the row open: hits pay only tCL, conflicts pay
	// tRP + tRCD + tCL. Off the paper's configuration; provided for
	// ablations (the HMC spec permits either).
	OpenPage
)

// Config holds the DRAM array parameters (Table I).
type Config struct {
	// Vaults per HMC.
	Vaults int
	// Banks per vault; activates to distinct banks can overlap subject
	// to TRRD and data-bus serialization.
	Banks int
	// QueueDepth is the per-vault request buffer (Table I: 16 entries).
	QueueDepth int
	// LineBytes is the access granularity.
	LineBytes int
	// BusBits is the vault data bus width (x32) and BusGbps its rate.
	BusBits int
	BusGbps float64
	// Timing parameters.
	TCL, TRCD, TRAS, TRP, TRRD, TWR sim.Duration
	// Refresh: every TREFI each vault performs an all-bank refresh that
	// occupies it for TRFC. TREFI = 0 disables refresh.
	TREFI, TRFC sim.Duration
	// Page selects the row-buffer policy; RowBytes is the row size used
	// for hit detection under OpenPage (default 2 KiB).
	Page     PagePolicy
	RowBytes int
}

// DefaultConfig returns Table I's parameters.
func DefaultConfig() Config {
	return Config{
		Vaults:     32,
		Banks:      8,
		QueueDepth: 16,
		LineBytes:  64,
		BusBits:    32,
		BusGbps:    2.0,
		TCL:        11 * sim.Nanosecond,
		TRCD:       11 * sim.Nanosecond,
		TRAS:       22 * sim.Nanosecond,
		TRP:        11 * sim.Nanosecond,
		TRRD:       5 * sim.Nanosecond,
		TWR:        12 * sim.Nanosecond,
		TREFI:      7800 * sim.Nanosecond,
		TRFC:       260 * sim.Nanosecond,
		Page:       ClosePage,
		RowBytes:   2 << 10,
	}
}

// BurstTime is how long one line occupies the vault data bus.
func (c Config) BurstTime() sim.Duration {
	bits := float64(c.LineBytes * 8)
	ns := bits / (float64(c.BusBits) * c.BusGbps)
	return sim.FromNanos(ns)
}

// NominalReadLatency is the unloaded read latency (tRCD + tCL + burst).
func (c Config) NominalReadLatency() sim.Duration {
	return c.TRCD + c.TCL + c.BurstTime()
}

// TRC is the close-page bank cycle time (tRAS + tRP).
func (c Config) TRC() sim.Duration { return c.TRAS + c.TRP }

// PeakBandwidthBytesPerSec is the aggregate vault data-bus bandwidth of
// the HMC, used to scale DRAM dynamic power.
func (c Config) PeakBandwidthBytesPerSec() float64 {
	return float64(c.Vaults) * float64(c.BusBits) * c.BusGbps * 1e9 / 8
}

// ScalableParams lists the parameter names Scaled accepts, in a stable
// order — the axes the calibration sensitivity sweep perturbs.
func ScalableParams() []string {
	return []string{"tCL", "tRCD", "tRAS", "tRP", "tRRD", "tWR", "tREFI", "tRFC", "busGbps"}
}

// Scaled returns a copy of c with one named parameter multiplied by
// factor (timings round to the nearest picosecond). It rejects unknown
// names and non-positive factors so a sweep axis cannot silently perturb
// nothing.
func (c Config) Scaled(param string, factor float64) (Config, error) {
	if factor <= 0 {
		return Config{}, fmt.Errorf("dram: scale factor must be positive, got %g", factor)
	}
	scale := func(d sim.Duration) sim.Duration {
		return sim.Duration(float64(d)*factor + 0.5)
	}
	switch param {
	case "tCL":
		c.TCL = scale(c.TCL)
	case "tRCD":
		c.TRCD = scale(c.TRCD)
	case "tRAS":
		c.TRAS = scale(c.TRAS)
	case "tRP":
		c.TRP = scale(c.TRP)
	case "tRRD":
		c.TRRD = scale(c.TRRD)
	case "tWR":
		c.TWR = scale(c.TWR)
	case "tREFI":
		c.TREFI = scale(c.TREFI)
	case "tRFC":
		c.TRFC = scale(c.TRFC)
	case "busGbps":
		c.BusGbps *= factor
	default:
		return Config{}, fmt.Errorf("dram: unknown scalable parameter %q (have %v)", param, ScalableParams())
	}
	return c, c.Validate()
}

// Fingerprint is a compact stable identity string covering every field,
// used by the experiment harness to key memoization and journals when a
// spec carries a DRAM override.
func (c Config) Fingerprint() string {
	return fmt.Sprintf("v%d.b%d.q%d.l%d.w%d.g%g.cl%d.rcd%d.ras%d.rp%d.rrd%d.wr%d.refi%d.rfc%d.p%d.row%d",
		c.Vaults, c.Banks, c.QueueDepth, c.LineBytes, c.BusBits, c.BusGbps,
		c.TCL, c.TRCD, c.TRAS, c.TRP, c.TRRD, c.TWR, c.TREFI, c.TRFC, c.Page, c.RowBytes)
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Vaults <= 0:
		return fmt.Errorf("dram: vaults must be positive, got %d", c.Vaults)
	case c.Banks <= 0:
		return fmt.Errorf("dram: banks must be positive, got %d", c.Banks)
	case c.QueueDepth <= 0:
		return fmt.Errorf("dram: queue depth must be positive, got %d", c.QueueDepth)
	case c.LineBytes <= 0 || c.BusBits <= 0 || c.BusGbps <= 0:
		return fmt.Errorf("dram: line/bus parameters must be positive")
	case c.TCL <= 0 || c.TRCD <= 0 || c.TRAS <= 0 || c.TRP <= 0 || c.TRRD < 0 || c.TWR < 0:
		return fmt.Errorf("dram: timing parameters must be positive")
	case c.TREFI < 0 || c.TRFC < 0 || (c.TREFI > 0 && c.TRFC > c.TREFI):
		return fmt.Errorf("dram: invalid refresh parameters tREFI=%v tRFC=%v", c.TREFI, c.TRFC)
	}
	return nil
}

// Completion receives an access-completion callback. Using an interface
// instead of a func lets callers hand the DRAM a reusable completion
// object, so the steady-state access path schedules without allocating.
type Completion interface{ AccessDone() }

// funcDone adapts a plain func to Completion for the convenience Access
// entry point (func values are pointer-shaped, so the conversion is free).
type funcDone func()

func (f funcDone) AccessDone() { f() }

// request is one queued vault access.
type request struct {
	addr   uint64
	isRead bool
	done   Completion
}

// vault serializes accesses through a bank pool and a shared data bus.
type vault struct {
	idx          int
	bankFree     []sim.Time // next time each bank can start an activate
	openRow      []int64    // per bank; -1 = precharged (OpenPage only)
	lastActivate sim.Time
	busFree      sim.Time
	queue        []request // reads kept ahead of writes
	inService    bool
	// issue is the vault's reusable next-issue event; the service chain
	// is strictly sequential, so at most one is ever pending.
	issue issueAction
}

// issueAction resumes a vault's service loop tRRD after an activate.
type issueAction struct {
	d *HMCDRAM
	v *vault
}

func (a *issueAction) Act() { a.d.serviceNext(a.v) }

// burstDoneAction is the pooled data-burst-complete event: it settles the
// outstanding-read count and fires the caller's completion. Bursts
// pipeline across banks and vaults, so these come from a free list.
type burstDoneAction struct {
	d      *HMCDRAM
	isRead bool
	done   Completion
}

func (a *burstDoneAction) Act() {
	d, isRead, done := a.d, a.isRead, a.done
	a.done = nil
	d.doneFree = append(d.doneFree, a)
	if isRead {
		d.outstandingReads--
		if d.outstandingReads < 0 {
			d.aud.Reportf(d.auditName, "outstanding-reads",
				"read completion drove outstanding reads to %d", d.outstandingReads)
		}
	}
	if done != nil {
		done.AccessDone()
	}
}

// Stats aggregates DRAM activity for power and verification.
type Stats struct {
	Reads, Writes    uint64
	BytesTransferred uint64
	TotalReadLatency sim.Duration // actual, arrival to data
	QueueFullRejects uint64
	BusyTime         sim.Duration // data-bus occupancy across vaults
	RefreshStalls    uint64
	// InjectedStalls counts accesses delayed by a fault-injected stall.
	InjectedStalls uint64
	// Row-buffer outcomes (OpenPage only).
	RowHits, RowConflicts uint64
}

// HMCDRAM is the DRAM stack of one module.
type HMCDRAM struct {
	cfg    Config
	kernel *sim.Kernel
	vaults []vault
	stats  Stats

	outstandingReads int
	stallUntil       sim.Time
	doneFree         []*burstDoneAction
	// OnReadStart, if set, fires when a read access enters service —
	// the hook the proactive response-link wakeup ([22]) uses.
	OnReadStart func()

	// Runtime invariant auditing (nil = unaudited).
	aud       *audit.Auditor
	auditName string
	auditPrev Stats
}

// AttachAudit wires the runtime invariant auditor: vault queue insertions
// are sample-checked against QueueDepth, read completions assert the
// outstanding-read count stays non-negative, and a registered sweep walks
// every vault and the statistics counters. module names the component in
// violations. Purely observational.
func (d *HMCDRAM) AttachAudit(a *audit.Auditor, module int) {
	d.aud = a
	d.auditName = fmt.Sprintf("dram[%d]", module)
	d.auditPrev = d.stats
	a.RegisterSweep(d.auditSweep)
}

// auditSweep checks every vault's queue bound and the monotone/sign
// invariants of the accumulated statistics.
func (d *HMCDRAM) auditSweep(now sim.Time, report func(component, rule, detail string)) {
	for i := range d.vaults {
		if q := len(d.vaults[i].queue); q > d.cfg.QueueDepth {
			report(d.auditName, "vault-queue-bound",
				fmt.Sprintf("vault %d holds %d requests, depth %d", i, q, d.cfg.QueueDepth))
		}
	}
	if d.outstandingReads < 0 {
		report(d.auditName, "outstanding-reads",
			fmt.Sprintf("outstanding reads went negative: %d", d.outstandingReads))
	}
	p, s := d.auditPrev, d.stats
	if s.Reads < p.Reads || s.Writes < p.Writes || s.BytesTransferred < p.BytesTransferred ||
		s.TotalReadLatency < p.TotalReadLatency || s.BusyTime < p.BusyTime {
		report(d.auditName, "stats-monotone", fmt.Sprintf("stats regressed: %+v -> %+v", p, s))
	}
	d.auditPrev = s
}

// Stall blocks every vault from starting new accesses until now+dur, the
// fault-injection model of a stack-wide maintenance/thermal stall. Queued
// and newly arriving requests are held, not dropped, and resume in order
// when the window closes. Overlapping stalls extend to the latest end.
func (d *HMCDRAM) Stall(dur sim.Duration) {
	if dur < 0 {
		dur = 0
	}
	if until := d.kernel.Now() + dur; until > d.stallUntil {
		d.stallUntil = until
	}
}

// ClearStall ends any active injected stall window immediately — the
// repair path's module-recovery hook. Accesses already scheduled past
// the old window keep their start times; only future arrivals benefit.
func (d *HMCDRAM) ClearStall() {
	if now := d.kernel.Now(); d.stallUntil > now {
		d.stallUntil = now
	}
}

// New builds the DRAM stack. It panics on invalid configuration: a config
// is construction-time input, not runtime data.
func New(k *sim.Kernel, cfg Config) *HMCDRAM {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	d := &HMCDRAM{cfg: cfg, kernel: k, vaults: make([]vault, cfg.Vaults)}
	for i := range d.vaults {
		d.vaults[i].idx = i
		// The queue never exceeds QueueDepth (AccessAction rejects past
		// it), so full capacity up front means no vault ever grows its
		// queue mid-run.
		d.vaults[i].queue = make([]request, 0, cfg.QueueDepth)
		d.vaults[i].bankFree = make([]sim.Time, cfg.Banks)
		d.vaults[i].openRow = make([]int64, cfg.Banks)
		for b := range d.vaults[i].openRow {
			d.vaults[i].openRow[b] = -1
		}
		// No activate has happened yet; far enough in the past that the
		// tRRD window never binds the first access.
		d.vaults[i].lastActivate = -(sim.Time(1) << 60)
		d.vaults[i].issue = issueAction{d: d, v: &d.vaults[i]}
	}
	return d
}

// rowOf maps an address to its row identifier for hit detection. Rows are
// vault-local: with line-interleaved vault mapping, consecutive lines of a
// row land in the same vault every Vaults lines.
func (d *HMCDRAM) rowOf(addr uint64) int64 {
	rb := d.cfg.RowBytes
	if rb <= 0 {
		rb = 2 << 10
	}
	linesPerRow := uint64(rb / d.cfg.LineBytes)
	if linesPerRow == 0 {
		linesPerRow = 1
	}
	vaultLine := addr / uint64(d.cfg.LineBytes*d.cfg.Vaults)
	return int64(vaultLine / linesPerRow)
}

// refreshAdjust pushes a candidate activate time out of any all-bank
// refresh window of the vault. Refresh is modelled analytically (every
// vault refreshes for tRFC once per tREFI, phase-staggered by vault index)
// rather than with events, so idle networks stay event-free and RunAll
// terminates.
func (d *HMCDRAM) refreshAdjust(vaultIdx int, start sim.Time) sim.Time {
	if d.cfg.TREFI <= 0 {
		return start
	}
	phase := d.cfg.TREFI * sim.Duration(vaultIdx+1) / sim.Duration(d.cfg.Vaults)
	since := start - phase
	if since < 0 {
		return start
	}
	into := since % d.cfg.TREFI
	if into < d.cfg.TRFC {
		d.stats.RefreshStalls++
		return start + (d.cfg.TRFC - into)
	}
	return start
}

// Config returns the active configuration.
func (d *HMCDRAM) Config() Config { return d.cfg }

// Stats returns a snapshot of accumulated statistics.
func (d *HMCDRAM) Stats() Stats { return d.stats }

// OutstandingReads reports reads queued or in flight; the network-aware
// ROO policy keeps the module's response link on while this is non-zero.
func (d *HMCDRAM) OutstandingReads() int { return d.outstandingReads }

// QueuedRequests counts requests waiting in vault queues (excluding the
// one in service per vault) — the metrics sampler's queue-depth probe.
func (d *HMCDRAM) QueuedRequests() int {
	total := 0
	for i := range d.vaults {
		total += len(d.vaults[i].queue)
	}
	return total
}

// VaultFor maps a physical address to its vault (line-interleaved).
func (d *HMCDRAM) VaultFor(addr uint64) int {
	return int((addr / uint64(d.cfg.LineBytes)) % uint64(d.cfg.Vaults))
}

// Access enqueues a line access. done fires when the access completes
// (data burst finished for reads, write restored for writes). It returns
// false if the vault queue is full, in which case the caller must retry —
// the network layer holds the packet at the link controller in that case.
func (d *HMCDRAM) Access(addr uint64, isRead bool, done func()) bool {
	var c Completion
	if done != nil {
		c = funcDone(done)
	}
	return d.AccessAction(addr, isRead, c)
}

// AccessAction is Access taking a Completion value directly — the
// allocation-free entry point for callers with pooled completions.
func (d *HMCDRAM) AccessAction(addr uint64, isRead bool, done Completion) bool {
	v := &d.vaults[d.VaultFor(addr)]
	if len(v.queue) >= d.cfg.QueueDepth {
		d.stats.QueueFullRejects++
		return false
	}
	if isRead {
		d.outstandingReads++
		// Reads are prioritized: insert before the first write.
		idx := len(v.queue)
		for i, r := range v.queue {
			if !r.isRead {
				idx = i
				break
			}
		}
		v.queue = append(v.queue, request{})
		copy(v.queue[idx+1:], v.queue[idx:])
		v.queue[idx] = request{addr: addr, isRead: true, done: done}
	} else {
		v.queue = append(v.queue, request{addr: addr, isRead: false, done: done})
	}
	if d.aud.Sample() && len(v.queue) > d.cfg.QueueDepth {
		d.aud.Reportf(d.auditName, "vault-queue-bound",
			"vault %d accepted past its depth: %d > %d", v.idx, len(v.queue), d.cfg.QueueDepth)
	}
	if !v.inService {
		d.serviceNext(v)
	}
	return true
}

// serviceNext starts the head-of-queue access on vault v.
func (d *HMCDRAM) serviceNext(v *vault) {
	if len(v.queue) == 0 {
		v.inService = false
		return
	}
	v.inService = true
	req := v.queue[0]
	// Copy-down pop keeps the backing array in place, so the queue's
	// capacity is reused forever instead of re-allocated as the base
	// pointer walks forward.
	copy(v.queue, v.queue[1:])
	v.queue[len(v.queue)-1] = request{}
	v.queue = v.queue[:len(v.queue)-1]

	now := d.kernel.Now()
	row := d.rowOf(req.addr)
	// Bank selection: open page prefers a row hit, then a precharged
	// bank, then the earliest free; close page takes the earliest free.
	bank := 0
	earliest := func() int {
		b := 0
		for i, t := range v.bankFree {
			if t < v.bankFree[b] {
				b = i
			}
		}
		return b
	}
	if d.cfg.Page == OpenPage {
		hit, closed := -1, -1
		for i := range v.bankFree {
			if v.openRow[i] == row && hit == -1 {
				hit = i
			}
			if v.openRow[i] == -1 && closed == -1 {
				closed = i
			}
		}
		switch {
		case hit >= 0:
			bank = hit
		case closed >= 0:
			bank = closed
		default:
			bank = earliest()
		}
	} else {
		bank = earliest()
	}

	start := now
	if d.stallUntil > start {
		start = d.stallUntil
		d.stats.InjectedStalls++
	}
	if v.bankFree[bank] > start {
		start = v.bankFree[bank]
	}
	isHit := d.cfg.Page == OpenPage && v.openRow[bank] == row
	if !isHit && v.lastActivate+d.cfg.TRRD > start {
		start = v.lastActivate + d.cfg.TRRD
	}
	start = d.refreshAdjust(v.idx, start)

	// Command-to-data latency by row-buffer outcome.
	var pre sim.Duration
	switch {
	case isHit:
		pre = d.cfg.TCL
		d.stats.RowHits++
	case d.cfg.Page == OpenPage && v.openRow[bank] >= 0:
		pre = d.cfg.TRP + d.cfg.TRCD + d.cfg.TCL
		d.stats.RowConflicts++
	default:
		pre = d.cfg.TRCD + d.cfg.TCL
	}

	burst := d.cfg.BurstTime()
	// The data burst must win the shared vault data bus.
	dataStart := start + pre
	if v.busFree > dataStart {
		// Delay the whole access so the burst lands when the bus frees.
		delta := v.busFree - dataStart
		start += delta
		dataStart += delta
	}
	dataEnd := dataStart + burst

	if !isHit {
		v.lastActivate = start
	}
	v.busFree = dataEnd
	var bankBusyUntil sim.Time
	if d.cfg.Page == OpenPage {
		// The row stays open; the bank frees when the burst ends.
		v.openRow[bank] = row
		bankBusyUntil = dataEnd
	} else {
		// Close page: the bank is busy for a full tRC.
		bankBusyUntil = start + d.cfg.TRC()
	}
	if !req.isRead {
		// Writes additionally hold the bank for tWR.
		bankBusyUntil += d.cfg.TWR
	}
	v.bankFree[bank] = bankBusyUntil

	d.stats.BusyTime += burst
	d.stats.BytesTransferred += uint64(d.cfg.LineBytes)

	if req.isRead {
		d.stats.Reads++
		d.stats.TotalReadLatency += dataEnd - now
		if d.OnReadStart != nil {
			d.OnReadStart()
		}
	} else {
		d.stats.Writes++
	}

	var bd *burstDoneAction
	if n := len(d.doneFree); n > 0 {
		bd, d.doneFree = d.doneFree[n-1], d.doneFree[:n-1]
	} else {
		bd = &burstDoneAction{d: d}
	}
	bd.isRead, bd.done = req.isRead, req.done
	d.kernel.ScheduleAction(dataEnd, bd)
	// The vault can issue its next activate tRRD after this one (bank and
	// bus conflicts are resolved when that access is scheduled), so the
	// queue drains in a pipeline rather than one access per tRC.
	nextIssue := start + d.cfg.TRRD
	if nextIssue < now {
		nextIssue = now
	}
	d.kernel.ScheduleAction(nextIssue, &v.issue)
}
