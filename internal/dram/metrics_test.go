package dram

import (
	"testing"
)

// TestQueuedRequests: requests behind the one in service per vault count
// as queued; the probe drains to zero with the queues.
func TestQueuedRequests(t *testing.T) {
	k, d := newDRAM(t)
	if got := d.QueuedRequests(); got != 0 {
		t.Fatalf("idle QueuedRequests = %d, want 0", got)
	}
	// Same address, same vault: one in service, four queued.
	for i := 0; i < 5; i++ {
		if !d.Access(0, true, func() {}) {
			t.Fatalf("access %d rejected", i)
		}
	}
	if got := d.QueuedRequests(); got != 4 {
		t.Errorf("QueuedRequests = %d, want 4 (5 accesses, 1 in service)", got)
	}
	if got := d.OutstandingReads(); got != 5 {
		t.Errorf("OutstandingReads = %d, want 5", got)
	}
	k.RunAll()
	if got := d.QueuedRequests(); got != 0 {
		t.Errorf("drained QueuedRequests = %d, want 0", got)
	}
	if got := d.OutstandingReads(); got != 0 {
		t.Errorf("drained OutstandingReads = %d, want 0", got)
	}
}
