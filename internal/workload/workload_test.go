package workload

import (
	"math"
	"testing"
	"testing/quick"

	"memnet/internal/network"
	"memnet/internal/sim"
	"memnet/internal/topology"
)

func TestAllProfilesValid(t *testing.T) {
	if len(Profiles) != 14 {
		t.Fatalf("profiles = %d, want 14 (7 HPC + 7 cloud)", len(Profiles))
	}
	hpc, cloud := 0, 0
	for _, p := range Profiles {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		switch p.Class {
		case "HPC":
			hpc++
		case "cloud":
			cloud++
		default:
			t.Errorf("%s: unknown class %q", p.Name, p.Class)
		}
	}
	if hpc != 7 || cloud != 7 {
		t.Fatalf("class split %d/%d, want 7/7", hpc, cloud)
	}
}

func TestAggregateCalibrationMatchesPaper(t *testing.T) {
	// §III-C: the average memory footprint is ~17 GB, so the average
	// small network has ceil(17/4) = 5 modules; Fig. 9's average channel
	// utilization is ~43%.
	var fp, util, modsSmall float64
	for _, p := range Profiles {
		fp += float64(p.FootprintGB)
		util += p.TargetChannelUtil
		modsSmall += float64(p.Modules(4))
	}
	fp /= 14
	util /= 14
	modsSmall /= 14
	if fp < 15 || fp > 19 {
		t.Errorf("avg footprint = %.1f GB, want ~17", fp)
	}
	if util < 0.40 || util > 0.47 {
		t.Errorf("avg target channel util = %.2f, want ~0.43", util)
	}
	if modsSmall < 4.2 || modsSmall > 5.8 {
		t.Errorf("avg small modules = %.1f, want ~5", modsSmall)
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("mixB")
	if err != nil || p.Name != "mixB" {
		t.Fatalf("ByName(mixB) = %v, %v", p, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestCDFProperties(t *testing.T) {
	for _, p := range Profiles {
		if p.CDFAt(0) != 0 {
			t.Errorf("%s: CDF(0) = %v", p.Name, p.CDFAt(0))
		}
		if got := p.CDFAt(float64(p.FootprintGB)); got != 1 {
			t.Errorf("%s: CDF(footprint) = %v", p.Name, got)
		}
		prev := -1.0
		for gb := 0.0; gb <= float64(p.FootprintGB); gb += 0.5 {
			v := p.CDFAt(gb)
			if v < prev {
				t.Fatalf("%s: CDF not monotone at %v", p.Name, gb)
			}
			prev = v
		}
	}
}

func TestModuleFractionsSumToOne(t *testing.T) {
	for _, p := range Profiles {
		for _, chunk := range []int{1, 4} {
			fr := p.ModuleFractions(chunk)
			if len(fr) != p.Modules(chunk) {
				t.Fatalf("%s: %d fractions for %d modules", p.Name, len(fr), p.Modules(chunk))
			}
			var sum float64
			for _, f := range fr {
				if f < -1e-12 {
					t.Fatalf("%s: negative fraction", p.Name)
				}
				sum += f
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("%s chunk %d: fractions sum to %v", p.Name, chunk, sum)
			}
		}
	}
}

func TestSamplerMatchesCDF(t *testing.T) {
	p, _ := ByName("mixC")
	s := NewSampler(p, 64)
	rng := sim.NewRNG(123)
	const n = 200000
	counts := make([]int, p.Modules(4))
	for i := 0; i < n; i++ {
		addr := s.Sample(rng)
		if addr%64 != 0 {
			t.Fatal("address not line aligned")
		}
		if addr >= uint64(p.FootprintGB)<<30 {
			t.Fatalf("address %#x beyond footprint", addr)
		}
		counts[addr>>32]++
	}
	want := p.ModuleFractions(4)
	for i, c := range counts {
		got := float64(c) / n
		if math.Abs(got-want[i]) > 0.01 {
			t.Errorf("module %d: sampled %.3f, want %.3f", i, got, want[i])
		}
	}
}

func TestSamplerDeterministic(t *testing.T) {
	p, _ := ByName("ua.D")
	s1, s2 := NewSampler(p, 64), NewSampler(p, 64)
	r1, r2 := sim.NewRNG(9), sim.NewRNG(9)
	for i := 0; i < 1000; i++ {
		if s1.Sample(r1) != s2.Sample(r2) {
			t.Fatal("sampler not deterministic")
		}
	}
}

func TestValidationCatchesBadProfiles(t *testing.T) {
	base := func() *Profile {
		return &Profile{
			Name: "x", FootprintGB: 4, ReadFraction: 0.5, TargetChannelUtil: 0.5,
			BurstPeriod: sim.Microsecond, BurstDuty: 0.5,
			AccessCDF: []CDFPoint{{4, 1}},
		}
	}
	cases := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.FootprintGB = 0 },
		func(p *Profile) { p.ReadFraction = 1.5 },
		func(p *Profile) { p.TargetChannelUtil = 0 },
		func(p *Profile) { p.BurstDuty = 0 },
		func(p *Profile) { p.AccessCDF = nil },
		func(p *Profile) { p.AccessCDF = []CDFPoint{{4, 0.9}} },
		func(p *Profile) { p.AccessCDF = []CDFPoint{{2, 0.5}, {1, 0.6}, {4, 1}} },
	}
	for i, mutate := range cases {
		p := base()
		mutate(p)
		if p.Validate() == nil {
			t.Errorf("case %d: invalid profile accepted", i)
		}
	}
	if base().Validate() != nil {
		t.Error("valid profile rejected")
	}
}

func TestModulesQuick(t *testing.T) {
	if err := quick.Check(func(fp uint8, chunk uint8) bool {
		f := 1 + int(fp)%64
		c := 1 + int(chunk)%8
		p := &Profile{FootprintGB: f}
		n := p.Modules(c)
		return n*c >= f && (n-1)*c < f
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// buildFrontEnd wires a front end over a real network for integration
// checks.
func buildFrontEnd(t *testing.T, name string, seed uint64) (*sim.Kernel, *network.Network, *FrontEnd) {
	t.Helper()
	p, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	topo, err := topology.Build(topology.Star, p.Modules(4))
	if err != nil {
		t.Fatal(err)
	}
	net := network.New(k, topo, network.DefaultConfig())
	fe, err := NewFrontEnd(k, net, p, DefaultFrontEndConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return k, net, fe
}

func TestFrontEndHitsUtilizationTarget(t *testing.T) {
	k, net, fe := buildFrontEnd(t, "lu.D", 1)
	fe.Start()
	k.Run(50 * sim.Microsecond)
	warm := net.TakeSnapshot()
	k.Run(250 * sim.Microsecond)
	end := net.TakeSnapshot()
	got := network.ChannelUtilization(warm, end)
	want := 0.45
	if got < want*0.7 || got > want*1.35 {
		t.Fatalf("channel utilization = %.2f, want within 70-135%% of %.2f", got, want)
	}
}

func TestFrontEndReadWriteMix(t *testing.T) {
	k, _, fe := buildFrontEnd(t, "cg.D", 2)
	fe.Start()
	k.Run(200 * sim.Microsecond)
	r, w := fe.Issued()
	frac := float64(r) / float64(r+w)
	if math.Abs(frac-0.80) > 0.05 {
		t.Fatalf("read fraction = %.2f, want ~0.80", frac)
	}
}

func TestFrontEndDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		k, _, fe := buildFrontEnd(t, "mixG", 7)
		fe.Start()
		k.Run(100 * sim.Microsecond)
		return fe.Issued()
	}
	r1, w1 := run()
	r2, w2 := run()
	if r1 != r2 || w1 != w2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", r1, w1, r2, w2)
	}
}

func TestBurstsCreateIdleIntervals(t *testing.T) {
	// sp.D has duty 0.35: the channel must alternate between busy and
	// idle phases, visible as sub-unity utilization of the ON phase.
	k, net, fe := buildFrontEnd(t, "sp.D", 3)
	fe.Start()
	k.Run(100 * sim.Microsecond)
	// Count idle gaps > 1 µs on the processor request link via the idle
	// histogram (512 ns bucket).
	ec := net.Modules[0].UpReq.Mon().Peek()
	if ec.IdleOverCount[2] == 0 {
		t.Fatal("no long idle intervals despite 35% burst duty")
	}
}

func TestFrontEndString(t *testing.T) {
	_, _, fe := buildFrontEnd(t, "mixA", 4)
	if fe.String() == "" || fe.Slots() < 2 || fe.TargetRate() <= 0 {
		t.Fatal("front end accessors broken")
	}
}

func TestColdRegionGetsNoTraffic(t *testing.T) {
	// sp.D's CDF is flat between 14 GB and 20 GB: a cold range that must
	// receive (almost) no samples — the modules the paper's management
	// puts into the deepest low-power modes.
	p, _ := ByName("sp.D")
	s := NewSampler(p, 64)
	rng := sim.NewRNG(8)
	cold := 0
	const n = 100000
	for i := 0; i < n; i++ {
		addr := s.Sample(rng)
		gb := float64(addr) / float64(1<<30)
		if gb >= 14.5 && gb < 19.5 {
			cold++
		}
	}
	if frac := float64(cold) / n; frac > 0.002 {
		t.Fatalf("cold region received %.2f%% of traffic", 100*frac)
	}
}
