// Package workload substitutes the paper's gem5 full-system workloads
// (seven 16-threaded NAS class-D benchmarks and seven four-application
// cloud mixes, Table III) with synthetic trace generators.
//
// Substitution rationale (see DESIGN.md §3): the network power results are
// driven by the memory traffic the processor emits — its footprint, its
// channel utilization (Fig. 9), how accesses distribute across the address
// space (Fig. 4, which with the contiguous-chunk-per-module mapping
// determines per-module traffic), its read/write mix, and its burstiness
// (which shapes the idle intervals ROO exploits). Each profile pins these
// observable statistics to values consistent with the paper's figures; the
// average footprint is ~17 GB (⇒ 5 modules small / ~18 big) and the
// average channel utilization ~43%, as the paper reports.
package workload

import (
	"fmt"

	"memnet/internal/sim"
)

// CDFPoint anchors the cumulative access distribution: Cum of all accesses
// fall at addresses below GB gigabytes. Points are linearly interpolated;
// an implicit (0,0) starts every curve and the last point must reach the
// footprint with Cum=1. Flat segments are the paper's "cold ranges".
type CDFPoint struct {
	GB  float64
	Cum float64
}

// Profile describes one synthetic workload.
type Profile struct {
	Name  string
	Class string // "HPC" or "cloud"
	// Apps is the composition (Table III) the profile stands in for.
	Apps string
	// FootprintGB is the allocated memory; it sets the network size
	// (ceil(footprint/4GB) modules small, ceil(footprint/1GB) big).
	FootprintGB int
	// AccessCDF shapes Fig. 4's cumulative access distribution.
	AccessCDF []CDFPoint
	// ReadFraction of accesses that are reads.
	ReadFraction float64
	// TargetChannelUtil is the intended utilization of the busier
	// direction of the processor link (Fig. 9's "chan" series).
	TargetChannelUtil float64
	// BurstPeriod and BurstDuty shape the ON/OFF arrival modulation;
	// traffic flows during BurstDuty of each period.
	BurstPeriod sim.Duration
	BurstDuty   float64
}

// Validate reports profile inconsistencies.
func (p *Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("workload: empty name")
	case p.FootprintGB <= 0:
		return fmt.Errorf("workload %s: footprint must be positive", p.Name)
	case p.ReadFraction < 0 || p.ReadFraction > 1:
		return fmt.Errorf("workload %s: read fraction %f out of range", p.Name, p.ReadFraction)
	case p.TargetChannelUtil <= 0 || p.TargetChannelUtil > 1:
		return fmt.Errorf("workload %s: channel utilization %f out of range", p.Name, p.TargetChannelUtil)
	case p.BurstDuty <= 0 || p.BurstDuty > 1:
		return fmt.Errorf("workload %s: burst duty %f out of range", p.Name, p.BurstDuty)
	case len(p.AccessCDF) == 0:
		return fmt.Errorf("workload %s: empty access CDF", p.Name)
	}
	prevGB, prevCum := 0.0, 0.0
	for i, pt := range p.AccessCDF {
		if pt.GB < prevGB || pt.Cum < prevCum {
			return fmt.Errorf("workload %s: CDF point %d not monotone", p.Name, i)
		}
		prevGB, prevCum = pt.GB, pt.Cum
	}
	last := p.AccessCDF[len(p.AccessCDF)-1]
	if last.GB != float64(p.FootprintGB) || last.Cum != 1 {
		return fmt.Errorf("workload %s: CDF must end at (footprint, 1), ends at (%g, %g)",
			p.Name, last.GB, last.Cum)
	}
	return nil
}

// Modules returns the network size for a per-module chunk of chunkGB.
func (p *Profile) Modules(chunkGB int) int {
	n := (p.FootprintGB + chunkGB - 1) / chunkGB
	if n < 1 {
		n = 1
	}
	return n
}

// CDFAt returns the cumulative access fraction below gb gigabytes.
func (p *Profile) CDFAt(gb float64) float64 {
	prev := CDFPoint{}
	for _, pt := range p.AccessCDF {
		if gb <= pt.GB {
			if pt.GB == prev.GB {
				return pt.Cum
			}
			f := (gb - prev.GB) / (pt.GB - prev.GB)
			return prev.Cum + f*(pt.Cum-prev.Cum)
		}
		prev = pt
	}
	return 1
}

// ModuleFractions returns each module's share of accesses under the
// contiguous chunkGB-per-module mapping — the per-module traffic weights
// that Fig. 4 plus Fig. 3 determine.
func (p *Profile) ModuleFractions(chunkGB int) []float64 {
	n := p.Modules(chunkGB)
	out := make([]float64, n)
	prev := 0.0
	for i := 0; i < n; i++ {
		hi := p.CDFAt(float64((i + 1) * chunkGB))
		out[i] = hi - prev
		prev = hi
	}
	return out
}

// Profiles lists all 14 workloads in the paper's figure order.
var Profiles = []*Profile{
	// --- HPC: 16-threaded NAS class D ---
	{
		Name: "ua.D", Class: "HPC", Apps: "16T ua.D",
		FootprintGB: 18, ReadFraction: 0.72, TargetChannelUtil: 0.35,
		BurstPeriod: 8 * sim.Microsecond, BurstDuty: 0.65,
		AccessCDF: []CDFPoint{{6, 0.45}, {12, 0.80}, {18, 1}},
	},
	{
		Name: "lu.D", Class: "HPC", Apps: "16T lu.D",
		FootprintGB: 20, ReadFraction: 0.70, TargetChannelUtil: 0.45,
		BurstPeriod: 6 * sim.Microsecond, BurstDuty: 0.75,
		AccessCDF: []CDFPoint{{5, 0.40}, {10, 0.72}, {16, 0.93}, {20, 1}},
	},
	{
		Name: "bt.D", Class: "HPC", Apps: "16T bt.D",
		FootprintGB: 26, ReadFraction: 0.68, TargetChannelUtil: 0.40,
		BurstPeriod: 10 * sim.Microsecond, BurstDuty: 0.70,
		AccessCDF: []CDFPoint{{8, 0.35}, {16, 0.68}, {22, 0.92}, {26, 1}},
	},
	{
		// Lowest channel utilization in Fig. 9; mostly idle links.
		Name: "sp.D", Class: "HPC", Apps: "16T sp.D",
		FootprintGB: 28, ReadFraction: 0.70, TargetChannelUtil: 0.10,
		BurstPeriod: 16 * sim.Microsecond, BurstDuty: 0.35,
		AccessCDF: []CDFPoint{{7, 0.55}, {14, 0.80}, {20, 0.80}, {28, 1}},
	},
	{
		Name: "cg.D", Class: "HPC", Apps: "16T cg.D",
		FootprintGB: 18, ReadFraction: 0.80, TargetChannelUtil: 0.55,
		BurstPeriod: 4 * sim.Microsecond, BurstDuty: 0.80,
		AccessCDF: []CDFPoint{{4, 0.60}, {9, 0.85}, {18, 1}},
	},
	{
		Name: "mg.D", Class: "HPC", Apps: "16T mg.D",
		FootprintGB: 26, ReadFraction: 0.74, TargetChannelUtil: 0.60,
		BurstPeriod: 5 * sim.Microsecond, BurstDuty: 0.85,
		AccessCDF: []CDFPoint{{6, 0.30}, {13, 0.62}, {20, 0.88}, {26, 1}},
	},
	{
		Name: "is.D", Class: "HPC", Apps: "16T is.D",
		FootprintGB: 33, ReadFraction: 0.64, TargetChannelUtil: 0.50,
		BurstPeriod: 7 * sim.Microsecond, BurstDuty: 0.75,
		AccessCDF: []CDFPoint{{8, 0.28}, {17, 0.55}, {25, 0.80}, {33, 1}},
	},
	// --- Cloud: four-application mixes (Table III). Memory is allocated
	// in invocation order, so each app occupies a contiguous region and
	// the CDF steps hard where high-MPKI apps (mcf, GemsFDTD, omnetpp)
	// sit and flattens over low-MPKI apps (sjeng, wrf). ---
	{
		Name: "mixA", Class: "cloud", Apps: "4 bwaves, 4 cactusADM, 4 wrf, ocean_cp",
		FootprintGB: 15, ReadFraction: 0.70, TargetChannelUtil: 0.40,
		BurstPeriod: 6 * sim.Microsecond, BurstDuty: 0.70,
		AccessCDF: []CDFPoint{{5, 0.42}, {9, 0.72}, {12, 0.80}, {15, 1}},
	},
	{
		// Highest channel utilization in Fig. 9 (~75%).
		Name: "mixB", Class: "cloud", Apps: "4 mcf, 4 GemsFDTD, 4T barnes, 4T radiosity",
		FootprintGB: 12, ReadFraction: 0.78, TargetChannelUtil: 0.75,
		BurstPeriod: 3 * sim.Microsecond, BurstDuty: 0.90,
		AccessCDF: []CDFPoint{{4, 0.48}, {8, 0.86}, {10, 0.95}, {12, 1}},
	},
	{
		Name: "mixC", Class: "cloud", Apps: "4 omnetpp, 4 mcf, 4 wrf, 4T ocean_cp",
		FootprintGB: 12, ReadFraction: 0.76, TargetChannelUtil: 0.50,
		BurstPeriod: 5 * sim.Microsecond, BurstDuty: 0.75,
		AccessCDF: []CDFPoint{{3, 0.35}, {7, 0.78}, {10, 0.88}, {12, 1}},
	},
	{
		Name: "mixD", Class: "cloud", Apps: "4 sjeng, 4 cactusADM, 4T radiosity, 4T fft",
		FootprintGB: 10, ReadFraction: 0.68, TargetChannelUtil: 0.25,
		BurstPeriod: 12 * sim.Microsecond, BurstDuty: 0.50,
		AccessCDF: []CDFPoint{{2, 0.10}, {5, 0.45}, {8, 0.75}, {10, 1}},
	},
	{
		Name: "mixE", Class: "cloud", Apps: "4 cactusADM, 4 sjeng, 4 wrf, 4T fft",
		FootprintGB: 11, ReadFraction: 0.67, TargetChannelUtil: 0.30,
		BurstPeriod: 10 * sim.Microsecond, BurstDuty: 0.55,
		AccessCDF: []CDFPoint{{3, 0.40}, {6, 0.52}, {9, 0.78}, {11, 1}},
	},
	{
		Name: "mixF", Class: "cloud", Apps: "4 cactusADM, 4 bwaves, 4 sjeng, 4T fft",
		FootprintGB: 13, ReadFraction: 0.69, TargetChannelUtil: 0.35,
		BurstPeriod: 9 * sim.Microsecond, BurstDuty: 0.60,
		AccessCDF: []CDFPoint{{4, 0.38}, {8, 0.74}, {10, 0.80}, {13, 1}},
	},
	{
		Name: "mixG", Class: "cloud", Apps: "4 mcf, 4 omnetpp, 4 astar, 4T fft",
		FootprintGB: 8, ReadFraction: 0.79, TargetChannelUtil: 0.55,
		BurstPeriod: 4 * sim.Microsecond, BurstDuty: 0.80,
		AccessCDF: []CDFPoint{{2, 0.40}, {4, 0.70}, {6, 0.90}, {8, 1}},
	},
}

// ByName returns the named profile.
func ByName(name string) (*Profile, error) {
	for _, p := range Profiles {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown profile %q", name)
}
