package workload

import "memnet/internal/sim"

// Sampler draws physical addresses distributed per a profile's access CDF.
// Sampling inverts the piecewise-linear CDF: a uniform variate picks a
// segment by cumulative mass and interpolates a byte address within it, so
// a module's expected share of accesses equals its CDF mass exactly.
type Sampler struct {
	// Segment boundaries in bytes and cumulative mass at each boundary.
	bounds []uint64
	cum    []float64
	line   uint64
}

// NewSampler builds a sampler for p. lineBytes aligns addresses.
func NewSampler(p *Profile, lineBytes int) *Sampler {
	s := &Sampler{line: uint64(lineBytes)}
	s.bounds = append(s.bounds, 0)
	s.cum = append(s.cum, 0)
	for _, pt := range p.AccessCDF {
		s.bounds = append(s.bounds, uint64(pt.GB*float64(1<<30)))
		s.cum = append(s.cum, pt.Cum)
	}
	return s
}

// Sample returns a line-aligned address drawn from the CDF.
func (s *Sampler) Sample(rng *sim.RNG) uint64 {
	u := rng.Float64()
	// Find the first boundary with cum >= u (segments are few; linear
	// scan beats binary search at this size).
	i := 1
	for i < len(s.cum)-1 && s.cum[i] < u {
		i++
	}
	lo, hi := s.bounds[i-1], s.bounds[i]
	cl, ch := s.cum[i-1], s.cum[i]
	var addr uint64
	if ch <= cl || hi <= lo {
		// Zero-mass or zero-width segment: fall back to its start.
		addr = lo
	} else {
		f := (u - cl) / (ch - cl)
		addr = lo + uint64(f*float64(hi-lo))
	}
	if addr >= s.bounds[len(s.bounds)-1] {
		addr = s.bounds[len(s.bounds)-1] - 1
	}
	return addr - addr%s.line
}
