package workload_test

import (
	"fmt"

	"memnet/internal/workload"
)

// Example prints the calibrated aggregate statistics of the 14 synthetic
// workloads — the numbers that tie them to the paper's §III-C.
func Example() {
	var fp, util float64
	for _, p := range workload.Profiles {
		fp += float64(p.FootprintGB)
		util += p.TargetChannelUtil
	}
	fmt.Printf("workloads: %d\n", len(workload.Profiles))
	fmt.Printf("avg footprint: %.1f GB\n", fp/14)
	fmt.Printf("avg target channel utilization: %.1f%%\n", 100*util/14)
	// Output:
	// workloads: 14
	// avg footprint: 17.9 GB
	// avg target channel utilization: 43.2%
}

// ExampleProfile_ModuleFractions shows how a workload's access CDF turns
// into per-module traffic weights under the 4 GB-per-module mapping.
func ExampleProfile_ModuleFractions() {
	p, _ := workload.ByName("mixB")
	for i, f := range p.ModuleFractions(4) {
		fmt.Printf("module %d: %.0f%%\n", i, 100*f)
	}
	// Output:
	// module 0: 48%
	// module 1: 38%
	// module 2: 14%
}
