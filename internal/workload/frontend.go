package workload

import (
	"fmt"

	"memnet/internal/link"
	"memnet/internal/metrics"
	"memnet/internal/network"
	"memnet/internal/packet"
	"memnet/internal/sim"
)

// FrontEnd is the processor-side request generator substituting the
// paper's 16-core gem5 model (Table II). It is a closed-loop,
// limited-MLP issue engine: a pool of outstanding-miss slots (the cores'
// aggregate MSHRs) each repeatedly issues an access and waits for its
// completion, gated by an ON/OFF burst modulator. Closed-loop issue is
// what gives the simulator the paper's feedback: added memory latency
// directly lowers achieved throughput, which Figs. 12/17/18 measure.
//
// The slot count is calibrated by Little's law so the busier direction of
// the processor link reaches the profile's target channel utilization
// under full-power links.
type FrontEndConfig struct {
	// Cores documents the substituted core count (Table II).
	Cores int
	// SlotsOverride forces the outstanding-access slot count (0 = auto).
	SlotsOverride int
	// Seed drives all randomness of this front end.
	Seed uint64
	// Timeout arms the outstanding-request table: every issued access gets
	// a deadline, and a read whose response never arrives (severed link,
	// dropped packet) is retried up to MaxRetries times with doubling
	// backoff, then completed as a timeout error so its slot keeps
	// working. Zero disables the table entirely and preserves the legacy
	// wait-forever behavior byte for byte. Requires an injection target
	// implementing TrackedInjector.
	Timeout sim.Duration
	// MaxRetries bounds timeout-driven re-issues per read (0 = no retry:
	// first timeout abandons the access).
	MaxRetries int
}

// DefaultFrontEndConfig mirrors Table II's 16-core processor.
func DefaultFrontEndConfig(seed uint64) FrontEndConfig {
	return FrontEndConfig{Cores: 16, Seed: seed}
}

// Injector is where the front end sends accesses: a single network or a
// multi-channel system.
type Injector interface {
	InjectRead(addr uint64, core int)
	InjectWrite(addr uint64, core int)
}

// TrackedInjector is an injection target that reports request packet IDs,
// which the timeout machinery needs to match completions (Packet.Req) to
// table entries and discard late or duplicate responses.
type TrackedInjector interface {
	Injector
	InjectReadID(addr uint64, core int) uint64
	InjectWriteID(addr uint64, core int) uint64
}

// pendingRead is one slot's outstanding-read table entry.
type pendingRead struct {
	id      uint64 // packet ID of the current attempt
	addr    uint64
	retries int
	seq     uint64 // bumped on every state change; stale timeout events no-op
	active  bool
}

// FrontEndFaultStats aggregates the timeout machinery's counters.
type FrontEndFaultStats struct {
	// ReadTimeouts counts read deadline expiries (including ones that led
	// to a successful retry); Retries of them were re-issued, Abandoned
	// exhausted their retry budget and completed as timeout errors.
	ReadTimeouts uint64
	Retries      uint64
	Abandoned    uint64
	// ErrorReads/ErrorWrites count network error responses received.
	ErrorReads  uint64
	ErrorWrites uint64
	// WriteTimeouts counts write credits reclaimed by deadline.
	WriteTimeouts uint64
	// LateResponses counts completions that arrived after their request
	// had already timed out or been superseded (discarded).
	LateResponses uint64
	// RecoveredReads counts reads that timed out at least once but whose
	// retry ultimately returned data — requests the recovery path (link
	// repair, retraining) saved rather than lost.
	RecoveredReads uint64
}

// FrontEnd drives one injection target with one workload profile.
type FrontEnd struct {
	kernel  *sim.Kernel
	target  Injector
	profile *Profile
	rng     *sim.RNG
	sampler *Sampler

	slots      int
	jitterMean float64 // ns
	estLatency sim.Duration
	targetRate float64 // accesses/s

	// Writes are posted: a slot issues one and continues immediately,
	// bounded by writeCap credits so in-flight traffic stays finite.
	// Slots that hit the cap park until a write retires.
	writeCap       int
	inFlightWrites int
	writeParked    []int

	onPhase bool
	stopped bool
	parked  []int

	issuedReads  uint64
	issuedWrites uint64

	// Completion counters (maintained in both modes; they feed the
	// watchdog's progress/outstanding probes without touching the event
	// schedule).
	completedReads  uint64
	completedWrites uint64

	// Outstanding-request table (active only when timeout > 0).
	timeout       sim.Duration
	maxRetries    int
	tracked       TrackedInjector
	reads         []pendingRead
	pendingWrites map[uint64]struct{} // keyed access only — never iterated
	timedOutIDs   []uint64
	faults        FrontEndFaultStats

	// Pooled event actions: one reusable issue event per slot (a slot has
	// at most one pending issue/resume at a time), singleton burst-cycle
	// events, and free lists for the overlapping timeout deadlines.
	issueActs   []slotIssueAction
	cycleAct    burstCycleAction
	offAct      offPhaseAction
	timeoutFree []*readTimeoutAction
	wtoFree     []*writeTimeoutAction
}

// slotIssueAction is slot's reusable issue/resume event.
type slotIssueAction struct {
	fe   *FrontEnd
	slot int
}

func (a *slotIssueAction) Act() { a.fe.issue(a.slot) }

// burstCycleAction starts the next ON phase; offPhaseAction ends it. One
// of each is pending at a time, so both live inline in the FrontEnd.
type burstCycleAction struct{ fe *FrontEnd }

func (a *burstCycleAction) Act() { a.fe.burstCycle() }

type offPhaseAction struct{ fe *FrontEnd }

func (a *offPhaseAction) Act() { a.fe.onPhase = false }

// readTimeoutAction is a pooled read deadline. Stale deadlines overlap
// (every retry arms a new one and bumps seq to cancel the old), so these
// come from a free list; each fires exactly once and returns itself.
type readTimeoutAction struct {
	fe   *FrontEnd
	slot int
	seq  uint64
}

func (a *readTimeoutAction) Act() {
	fe, slot, seq := a.fe, a.slot, a.seq
	fe.timeoutFree = append(fe.timeoutFree, a)
	fe.readTimeout(slot, seq)
}

// writeTimeoutAction is the pooled write-credit deadline.
type writeTimeoutAction struct {
	fe *FrontEnd
	id uint64
}

func (a *writeTimeoutAction) Act() {
	fe, id := a.fe, a.id
	fe.wtoFree = append(fe.wtoFree, a)
	fe.writeTimeout(id)
}

// ChannelBandwidthBytesPerSec is one direction of a full-width link.
func ChannelBandwidthBytesPerSec() float64 {
	return float64(link.LanesPerLink) * link.LaneRateGbps * 1e9 / 8
}

// bytesPerAccess returns average down- and upstream bytes per access.
func bytesPerAccess(readFrac float64) (down, up float64) {
	readReq := float64(packet.ReadReq.Flits() * packet.FlitBytes)
	writeReq := float64(packet.WriteReq.Flits() * packet.FlitBytes)
	readResp := float64(packet.ReadResp.Flits() * packet.FlitBytes)
	down = readFrac*readReq + (1-readFrac)*writeReq
	up = readFrac * readResp
	return down, up
}

// EstimateReadLatency returns the unloaded end-to-end read latency for p
// on net: DRAM nominal latency plus the module-fraction-weighted hop cost.
// The workload calibration and the multichannel wrapper both use it.
func EstimateReadLatency(net *network.Network, p *Profile) sim.Duration {
	chunkGB := int(net.Cfg.ChunkBytes >> 30)
	if chunkGB < 1 {
		chunkGB = 1
	}
	fracs := p.ModuleFractions(chunkGB)
	avgDepth := 0.0
	for i, f := range fracs {
		if i < net.Topo.N() {
			avgDepth += f * float64(net.Topo.Depth(i))
		} else {
			avgDepth += f * float64(net.Topo.MaxDepth())
		}
	}
	perHopDown := link.RouterLatency() + link.SERDESBase + link.FlitTimeFull
	perHopUp := link.RouterLatency() + link.SERDESBase + 5*link.FlitTimeFull
	dramLat := net.Cfg.DRAM.NominalReadLatency()
	return dramLat + sim.Duration(avgDepth*float64(perHopDown+perHopUp))
}

// NewFrontEnd builds and calibrates a front end for p over net, wiring the
// network's completion callbacks.
func NewFrontEnd(k *sim.Kernel, net *network.Network, p *Profile, cfg FrontEndConfig) (*FrontEnd, error) {
	fe, err := NewFrontEndOver(k, net, p, cfg,
		EstimateReadLatency(net, p), ChannelBandwidthBytesPerSec())
	if err != nil {
		return nil, err
	}
	net.OnReadComplete = fe.HandleReadComplete
	net.OnWriteComplete = fe.HandleWriteComplete
	return fe, nil
}

// NewFrontEndOver builds a front end over any injection target. The caller
// supplies the unloaded read-latency estimate and the aggregate channel
// bandwidth (per direction) for calibration, and must route read/write
// completions to HandleReadComplete/HandleWriteComplete.
func NewFrontEndOver(k *sim.Kernel, target Injector, p *Profile, cfg FrontEndConfig,
	estLatency sim.Duration, bandwidthBytesPerSec float64) (*FrontEnd, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if estLatency <= 0 {
		return nil, fmt.Errorf("workload: latency estimate must be positive")
	}
	if cfg.Cores <= 0 {
		cfg.Cores = 16
	}
	fe := &FrontEnd{
		kernel:     k,
		target:     target,
		profile:    p,
		rng:        sim.NewRNG(cfg.Seed),
		sampler:    NewSampler(p, packet.LineBytes),
		onPhase:    true,
		timeout:    cfg.Timeout,
		maxRetries: cfg.MaxRetries,
	}
	if cfg.Timeout > 0 {
		ti, ok := target.(TrackedInjector)
		if !ok {
			return nil, fmt.Errorf("workload: request timeouts need a TrackedInjector target, got %T", target)
		}
		fe.tracked = ti
		fe.pendingWrites = make(map[uint64]struct{})
	}

	// --- Calibration ---
	down, up := bytesPerAccess(p.ReadFraction)
	busier := down
	if up > busier {
		busier = up
	}
	fe.targetRate = p.TargetChannelUtil * bandwidthBytesPerSec / busier

	// Queueing/management margin. Kept small: the closed loop divides
	// slots by *actual* latency, so overestimating the latency here
	// overshoots the utilization target by the same factor.
	fe.estLatency = estLatency + estLatency/10

	fe.jitterMean = 0.05 * fe.estLatency.Nanoseconds()
	if cfg.SlotsOverride > 0 {
		fe.slots = cfg.SlotsOverride
	} else {
		// Little's law, scaled so the ON phase carries the whole load.
		// A slot only blocks on reads (writes are posted), so one slot
		// cycle costs readFrac × read latency plus the think jitter.
		perSlotCycle := (p.ReadFraction*fe.estLatency.Seconds() +
			fe.jitterMean*1e-9) * 1.05
		slots := fe.targetRate * perSlotCycle / p.BurstDuty
		fe.slots = int(slots + 0.5)
		if fe.slots < 2 {
			fe.slots = 2
		}
	}
	fe.writeCap = 2 * fe.slots
	if fe.timeout > 0 {
		fe.reads = make([]pendingRead, fe.slots)
	}
	fe.issueActs = make([]slotIssueAction, fe.slots)
	for s := range fe.issueActs {
		fe.issueActs[s] = slotIssueAction{fe: fe, slot: s}
	}
	fe.cycleAct.fe, fe.offAct.fe = fe, fe
	return fe, nil
}

// Slots returns the calibrated outstanding-access slot count.
func (fe *FrontEnd) Slots() int { return fe.slots }

// TargetRate returns the calibrated access rate (accesses/s).
func (fe *FrontEnd) TargetRate() float64 { return fe.targetRate }

// EstimatedLatency returns the unloaded latency estimate used for
// calibration.
func (fe *FrontEnd) EstimatedLatency() sim.Duration { return fe.estLatency }

// Issued returns issued reads and writes so far.
func (fe *FrontEnd) Issued() (reads, writes uint64) {
	return fe.issuedReads, fe.issuedWrites
}

// Start launches the burst modulator and all issue slots. Slots start
// staggered across one estimated latency to avoid lockstep.
func (fe *FrontEnd) Start() {
	if fe.profile.BurstDuty < 1 {
		fe.burstCycle()
	}
	for s := 0; s < fe.slots; s++ {
		delay := sim.Duration(fe.rng.Float64() * float64(fe.estLatency))
		fe.kernel.AfterAction(delay, &fe.issueActs[s])
	}
}

// burstCycle runs one ON/OFF toggle and reschedules itself forever.
func (fe *FrontEnd) burstCycle() {
	period := fe.profile.BurstPeriod
	onSpan := sim.Duration(float64(period) * fe.profile.BurstDuty)
	fe.onPhase = true
	// Release parked slots with a little jitter so the burst edge is
	// sharp but not a single-instant spike.
	for _, slot := range fe.parked {
		d := sim.FromNanos(fe.rng.Exp(fe.jitterMean / 4))
		fe.kernel.AfterAction(d, &fe.issueActs[slot])
	}
	fe.parked = fe.parked[:0]
	fe.kernel.AfterAction(onSpan, &fe.offAct)
	fe.kernel.AfterAction(period, &fe.cycleAct)
}

// Stop parks every slot permanently: no further accesses are issued, but
// in-flight requests and their timeout machinery keep running so the
// system drains to quiescence. Used by soak tests that need a bounded
// outstanding set before checking conservation.
func (fe *FrontEnd) Stop() { fe.stopped = true }

// issue makes slot perform its next access, or parks it during OFF or on
// write-credit exhaustion.
func (fe *FrontEnd) issue(slot int) {
	if fe.stopped {
		return
	}
	if !fe.onPhase {
		fe.parked = append(fe.parked, slot)
		return
	}
	addr := fe.sampler.Sample(fe.rng)
	if fe.rng.Float64() < fe.profile.ReadFraction {
		fe.issuedReads++
		if fe.timeout > 0 {
			fe.startRead(slot, addr)
		} else {
			fe.target.InjectRead(addr, slot)
		}
		return // resumed by HandleReadComplete (or a timeout)
	}
	if fe.inFlightWrites >= fe.writeCap {
		fe.writeParked = append(fe.writeParked, slot)
		return // resumed by HandleWriteComplete
	}
	fe.inFlightWrites++
	fe.issuedWrites++
	if fe.timeout > 0 {
		fe.startWrite(addr)
	} else {
		fe.target.InjectWrite(addr, -1)
	}
	// Writes are posted — the slot continues after its think jitter.
	fe.resume(slot)
}

// startRead issues a tracked read for slot and arms its deadline.
func (fe *FrontEnd) startRead(slot int, addr uint64) {
	pr := &fe.reads[slot]
	pr.seq++
	pr.active = true
	pr.addr = addr
	pr.retries = 0
	pr.id = fe.tracked.InjectReadID(addr, slot)
	fe.armReadTimeout(slot, fe.timeout)
}

// armReadTimeout schedules the deadline for slot's current attempt. The
// carried seq makes the event a no-op if the attempt resolves first.
func (fe *FrontEnd) armReadTimeout(slot int, d sim.Duration) {
	var a *readTimeoutAction
	if n := len(fe.timeoutFree); n > 0 {
		a, fe.timeoutFree = fe.timeoutFree[n-1], fe.timeoutFree[:n-1]
	} else {
		a = &readTimeoutAction{fe: fe}
	}
	a.slot, a.seq = slot, fe.reads[slot].seq
	fe.kernel.AfterAction(d, a)
}

// readTimeout fires when slot's read deadline expires: retry with doubled
// backoff while budget remains, then complete the access as a timeout
// error so the slot is never stranded by a lost response.
func (fe *FrontEnd) readTimeout(slot int, seq uint64) {
	pr := &fe.reads[slot]
	if !pr.active || pr.seq != seq {
		return // completed or superseded before the deadline
	}
	fe.faults.ReadTimeouts++
	fe.timedOutIDs = append(fe.timedOutIDs, pr.id)
	if pr.retries < fe.maxRetries {
		pr.retries++
		fe.faults.Retries++
		pr.seq++
		pr.id = fe.tracked.InjectReadID(pr.addr, slot)
		fe.armReadTimeout(slot, fe.timeout<<uint(pr.retries))
		return
	}
	pr.active = false
	pr.seq++
	fe.faults.Abandoned++
	fe.completedReads++
	fe.resume(slot)
}

// startWrite issues a tracked write with a deadline that reclaims its
// credit if no completion (retire or WriteErr) ever arrives, so a lost
// write cannot leak write-cap credits and starve the writers.
func (fe *FrontEnd) startWrite(addr uint64) {
	id := fe.tracked.InjectWriteID(addr, -1)
	fe.pendingWrites[id] = struct{}{}
	var a *writeTimeoutAction
	if n := len(fe.wtoFree); n > 0 {
		a, fe.wtoFree = fe.wtoFree[n-1], fe.wtoFree[:n-1]
	} else {
		a = &writeTimeoutAction{fe: fe}
	}
	a.id = id
	fe.kernel.AfterAction(fe.timeout, a)
}

// writeTimeout reclaims the credit of a write whose completion never
// arrived.
func (fe *FrontEnd) writeTimeout(id uint64) {
	if _, ok := fe.pendingWrites[id]; !ok {
		return // completed in time
	}
	delete(fe.pendingWrites, id)
	fe.faults.WriteTimeouts++
	fe.releaseWriteCredit()
}

// resume schedules slot's next access after its think jitter.
func (fe *FrontEnd) resume(slot int) {
	think := sim.FromNanos(fe.rng.Exp(fe.jitterMean))
	fe.kernel.AfterAction(think, &fe.issueActs[slot])
}

// HandleReadComplete resumes the slot that owned the finished read. With
// the outstanding-request table armed, the completion (data or error)
// must match the slot's current attempt; late responses to requests that
// already timed out are discarded.
func (fe *FrontEnd) HandleReadComplete(p *packet.Packet) {
	if p.Core < 0 {
		return
	}
	if fe.timeout <= 0 {
		fe.completedReads++
		fe.resume(p.Core)
		return
	}
	pr := &fe.reads[p.Core]
	if !pr.active || p.Req != pr.id {
		fe.faults.LateResponses++
		return
	}
	pr.active = false
	pr.seq++ // disarm the pending deadline
	if p.Kind.IsError() {
		fe.faults.ErrorReads++
	} else if pr.retries > 0 {
		fe.faults.RecoveredReads++ // a retried read came back with data
	}
	fe.completedReads++
	fe.resume(p.Core)
}

// HandleWriteComplete frees a write credit and revives a parked writer.
func (fe *FrontEnd) HandleWriteComplete(p *packet.Packet) {
	if fe.timeout <= 0 {
		fe.releaseWriteCredit()
		return
	}
	// A retired write completes with its own request packet; a failed one
	// with a WriteErr referencing it.
	id := p.ID
	if p.Kind.IsError() {
		id = p.Req
		fe.faults.ErrorWrites++
	}
	if _, ok := fe.pendingWrites[id]; !ok {
		fe.faults.LateResponses++ // deadline already reclaimed the credit
		return
	}
	delete(fe.pendingWrites, id)
	fe.releaseWriteCredit()
}

// releaseWriteCredit returns one write credit and revives a parked writer.
func (fe *FrontEnd) releaseWriteCredit() {
	fe.inFlightWrites--
	fe.completedWrites++
	if len(fe.writeParked) > 0 {
		slot := fe.writeParked[0]
		fe.writeParked = fe.writeParked[:copy(fe.writeParked, fe.writeParked[1:])]
		fe.resume(slot)
	}
}

// Outstanding counts accesses issued but not yet terminally resolved —
// the processor-side probe the watchdog uses.
func (fe *FrontEnd) Outstanding() int {
	return int(fe.issuedReads-fe.completedReads) + fe.inFlightWrites
}

// Progress is a monotone completion counter (data, error, or timeout
// resolution all count) — the watchdog's progress probe.
func (fe *FrontEnd) Progress() uint64 {
	return fe.completedReads + fe.completedWrites
}

// AttachMetrics registers the front end's issue/complete time-series on
// reg (nil-safe: a nil registry registers nothing). Issue and completion
// counters export as per-interval deltas, i.e. rates × interval.
func (fe *FrontEnd) AttachMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("frontend.issued_reads", func() float64 { return float64(fe.issuedReads) })
	reg.Counter("frontend.issued_writes", func() float64 { return float64(fe.issuedWrites) })
	reg.Counter("frontend.completed", func() float64 { return float64(fe.Progress()) })
	reg.Gauge("frontend.outstanding", func() float64 { return float64(fe.Outstanding()) })
}

// FaultStats returns the timeout machinery's counters.
func (fe *FrontEnd) FaultStats() FrontEndFaultStats { return fe.faults }

// TimedOutIDs returns the packet IDs of every read attempt whose deadline
// expired, in expiry order — the determinism fixture for fault runs.
func (fe *FrontEnd) TimedOutIDs() []uint64 { return fe.timedOutIDs }

// String documents the substituted processor configuration (Table II).
func (fe *FrontEnd) String() string {
	return fmt.Sprintf("frontend{%s: slots=%d target=%.1fM acc/s estLat=%s duty=%.0f%%}",
		fe.profile.Name, fe.slots, fe.targetRate/1e6, fe.estLatency, fe.profile.BurstDuty*100)
}
