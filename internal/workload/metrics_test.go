package workload

import (
	"testing"

	"memnet/internal/metrics"
	"memnet/internal/sim"
)

// TestFrontEndAttachMetrics cross-checks the sampled series against the
// front end's own counters: per-tick issue deltas must sum to the
// cumulative totals, and the outstanding gauge must match Outstanding().
func TestFrontEndAttachMetrics(t *testing.T) {
	k, _, fe := buildFrontEnd(t, "mixB", 7)
	fe.AttachMetrics(nil) // disabled path registers nothing
	reg := metrics.New(k, metrics.Config{Interval: 10 * sim.Microsecond})
	fe.AttachMetrics(reg)
	reg.Start(sim.Time(50 * sim.Microsecond))
	fe.Start()
	k.Run(50 * sim.Microsecond)
	d := reg.Dump()
	if d == nil || d.Ticks != 5 {
		t.Fatalf("dump = %+v, want 5 ticks", d)
	}
	sums := map[string]float64{}
	for _, s := range d.Series {
		for _, v := range s.Samples {
			sums[s.Name] += v
		}
	}
	if got := sums["frontend.completed"]; got != float64(fe.Progress()) {
		t.Errorf("completed deltas sum to %v, Progress() = %d", got, fe.Progress())
	}
	if sums["frontend.issued_reads"] <= 0 || sums["frontend.issued_writes"] <= 0 {
		t.Errorf("no issue activity sampled: %+v", sums)
	}
	last := map[string]float64{}
	for _, s := range d.Series {
		last[s.Name] = s.Samples[len(s.Samples)-1]
	}
	if got := last["frontend.outstanding"]; got != float64(fe.Outstanding()) {
		t.Errorf("outstanding gauge = %v, Outstanding() = %d", got, fe.Outstanding())
	}
}
