package power

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestHighRadixBudget(t *testing.T) {
	p := ParamsForRadix(true)
	if p.PeakWatts != 13.4 || p.UniLinks != 8 {
		t.Fatalf("params = %+v", p)
	}
	// 43/22/35 split of 13.4 W.
	if !almost(p.DRAMPeakWatts(), 13.4*0.43) || !almost(p.LogicPeakWatts(), 13.4*0.22) ||
		!almost(p.IOPeakWatts(), 13.4*0.35) {
		t.Fatal("peak split wrong")
	}
	if !almost(p.DRAMPeakWatts()+p.LogicPeakWatts()+p.IOPeakWatts(), 13.4) {
		t.Fatal("split does not sum to peak")
	}
	// §III-D's example: ~0.586 W per unidirectional link.
	if !almost(p.LinkFullWatts(), 13.4*0.35/8) {
		t.Fatalf("link watts = %v", p.LinkFullWatts())
	}
}

func TestLowRadixBudget(t *testing.T) {
	lo, hi := ParamsForRadix(false), ParamsForRadix(true)
	if !almost(lo.PeakWatts, hi.PeakWatts/2) || lo.UniLinks != 4 {
		t.Fatalf("low radix params = %+v", lo)
	}
	// Same per-link power for both classes (half the I/O, half the links).
	if !almost(lo.LinkFullWatts(), hi.LinkFullWatts()) {
		t.Fatal("per-link power differs between radix classes")
	}
}

func TestIdleFractions(t *testing.T) {
	p := ParamsForRadix(true)
	if !almost(p.DRAMLeakageWatts(), 0.10*p.DRAMPeakWatts()) {
		t.Fatal("DRAM idle fraction wrong")
	}
	if !almost(p.LogicLeakageWatts(), 0.25*p.LogicPeakWatts()) {
		t.Fatal("logic idle fraction wrong")
	}
	if !almost(p.DRAMLeakageWatts()+p.DRAMDynamicRangeWatts(), p.DRAMPeakWatts()) {
		t.Fatal("DRAM leak+dynamic != peak")
	}
	if !almost(p.LogicLeakageWatts()+p.LogicDynamicRangeWatts(), p.LogicPeakWatts()) {
		t.Fatal("logic leak+dynamic != peak")
	}
}

func TestBreakdownArithmetic(t *testing.T) {
	// Constrain generated values to a physical range (watts-scale) so the
	// identities hold within floating-point tolerance.
	clamp := func(b Breakdown) Breakdown {
		f := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 1
			}
			return math.Abs(math.Mod(x, 1000))
		}
		return Breakdown{f(b.IdleIO), f(b.ActiveIO), f(b.LogicLeak), f(b.LogicDyn), f(b.DRAMLeak), f(b.DRAMDyn)}
	}
	if err := quick.Check(func(ra, rb Breakdown) bool {
		a, b := clamp(ra), clamp(rb)
		sum := a
		sum.Add(b)
		if !almost(sum.Total(), a.Total()+b.Total()) {
			return false
		}
		s := a.Scale(2)
		return almost(s.Total(), 2*a.Total()) && almost(a.IO(), a.IdleIO+a.ActiveIO)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBreakdownString(t *testing.T) {
	b := Breakdown{IdleIO: 1, ActiveIO: 2, LogicLeak: 3, LogicDyn: 4, DRAMLeak: 5, DRAMDyn: 6}
	if b.Total() != 21 {
		t.Fatalf("total = %v", b.Total())
	}
	if b.String() == "" {
		t.Fatal("empty string")
	}
}

// Check is the auditor's physicality gate: all-zero is a legal interval,
// and every component rejects NaN, infinity, and negative energy.
func TestBreakdownCheck(t *testing.T) {
	if err := (Breakdown{}).Check(); err != nil {
		t.Fatalf("zero breakdown rejected: %v", err)
	}
	if err := (Breakdown{IdleIO: 1, ActiveIO: 2, LogicLeak: 3, LogicDyn: 4, DRAMLeak: 5, DRAMDyn: 6}).Check(); err != nil {
		t.Fatalf("positive breakdown rejected: %v", err)
	}
	for name, b := range map[string]Breakdown{
		"negative idleIO":  {IdleIO: -1},
		"NaN activeIO":     {ActiveIO: math.NaN()},
		"Inf logicDyn":     {LogicDyn: math.Inf(1)},
		"negative dramDyn": {DRAMDyn: -1e-12},
	} {
		if err := b.Check(); err == nil {
			t.Errorf("%s passed Check", name)
		}
	}
}
