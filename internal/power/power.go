// Package power holds the HMC power model the paper adopts from Pugsley et
// al. [12] and the energy-accounting types shared by the simulator.
//
// Model (§III-B): a high-radix HMC at 12.5 Gbps/lane consumes 13.4 W peak,
// split 43% DRAM dies, 22% logic, 35% I/O links. When idle, DRAM draws 10%
// of its peak and logic 25% of its peak, while I/O draws the same power
// idle as active (high-speed links keep transmitting to stay synchronized).
// Low-radix HMC peak power is half (power tracks bandwidth), with the same
// relative breakdown; since a low-radix part has half the links, per-link
// I/O power is identical for both classes.
package power

import (
	"fmt"
	"math"
)

// Model constants from [12] / §III-B.
const (
	HighRadixPeakWatts = 13.4
	DRAMFraction       = 0.43
	LogicFraction      = 0.22
	IOFraction         = 0.35
	DRAMIdleFraction   = 0.10 // of DRAM peak
	LogicIdleFraction  = 0.25 // of logic peak
	OffLinkFraction    = 0.01 // ROO off-state power, of full link power
)

// Model bundles the [12] power parameters as data, so the calibration
// harness can perturb them (sensitivity sweeps) and validate them (pinning
// against the reference table) without rebuilding the package. The
// package-level constants remain the published operating point;
// DefaultModel carries exactly those values.
type Model struct {
	// PeakWatts is the high-radix peak; low radix is half (power tracks
	// bandwidth, §III-B).
	PeakWatts float64
	// Component split of peak power.
	DRAMFraction, LogicFraction, IOFraction float64
	// Idle draw as a fraction of the component's peak.
	DRAMIdleFraction, LogicIdleFraction float64
}

// DefaultModel returns the published [12] parameters.
func DefaultModel() Model {
	return Model{
		PeakWatts:         HighRadixPeakWatts,
		DRAMFraction:      DRAMFraction,
		LogicFraction:     LogicFraction,
		IOFraction:        IOFraction,
		DRAMIdleFraction:  DRAMIdleFraction,
		LogicIdleFraction: LogicIdleFraction,
	}
}

// ModuleParams is the peak-power budget of one HMC class.
type ModuleParams struct {
	PeakWatts float64
	UniLinks  int // unidirectional links (8 high radix, 4 low radix)
	dramPeak  float64
	logicPeak float64
	ioPeak    float64
	dramIdle  float64
	logicIdle float64
}

// ParamsForRadix returns the power budget for a module class under m.
func (m Model) ParamsForRadix(highRadix bool) ModuleParams {
	peak := m.PeakWatts
	links := 8
	if !highRadix {
		peak = m.PeakWatts / 2
		links = 4
	}
	return ModuleParams{
		PeakWatts: peak,
		UniLinks:  links,
		dramPeak:  peak * m.DRAMFraction,
		logicPeak: peak * m.LogicFraction,
		ioPeak:    peak * m.IOFraction,
		dramIdle:  m.DRAMIdleFraction,
		logicIdle: m.LogicIdleFraction,
	}
}

// ParamsForRadix returns the power budget for a module class at the
// published operating point.
func ParamsForRadix(highRadix bool) ModuleParams {
	return DefaultModel().ParamsForRadix(highRadix)
}

// DRAMPeakWatts returns the DRAM dies' share of peak power.
func (p ModuleParams) DRAMPeakWatts() float64 { return p.dramPeak }

// LogicPeakWatts returns the logic share of peak power.
func (p ModuleParams) LogicPeakWatts() float64 { return p.logicPeak }

// IOPeakWatts returns the I/O share of peak power.
func (p ModuleParams) IOPeakWatts() float64 { return p.ioPeak }

// LinkFullWatts is the full power of one unidirectional link. It is the
// same (≈0.586 W) for both radix classes.
func (p ModuleParams) LinkFullWatts() float64 { return p.ioPeak / float64(p.UniLinks) }

// DRAMLeakageWatts is the always-on DRAM power.
func (p ModuleParams) DRAMLeakageWatts() float64 { return p.dramPeak * p.dramIdle }

// DRAMDynamicRangeWatts is the DRAM power swing between idle and peak.
func (p ModuleParams) DRAMDynamicRangeWatts() float64 { return p.dramPeak * (1 - p.dramIdle) }

// LogicLeakageWatts is the always-on logic power.
func (p ModuleParams) LogicLeakageWatts() float64 { return p.logicPeak * p.logicIdle }

// LogicDynamicRangeWatts is the logic power swing between idle and peak.
func (p ModuleParams) LogicDynamicRangeWatts() float64 { return p.logicPeak * (1 - p.logicIdle) }

// Breakdown is an energy (joules) or power (watts) decomposition into the
// six components of the paper's Fig. 5. The same struct serves both uses;
// divide an energy breakdown by elapsed seconds to get power.
type Breakdown struct {
	IdleIO    float64
	ActiveIO  float64
	LogicLeak float64
	LogicDyn  float64
	DRAMLeak  float64
	DRAMDyn   float64
}

// Total sums all components.
func (b Breakdown) Total() float64 {
	return b.IdleIO + b.ActiveIO + b.LogicLeak + b.LogicDyn + b.DRAMLeak + b.DRAMDyn
}

// IO sums the I/O components.
func (b Breakdown) IO() float64 { return b.IdleIO + b.ActiveIO }

// Add accumulates o into b.
func (b *Breakdown) Add(o Breakdown) {
	b.IdleIO += o.IdleIO
	b.ActiveIO += o.ActiveIO
	b.LogicLeak += o.LogicLeak
	b.LogicDyn += o.LogicDyn
	b.DRAMLeak += o.DRAMLeak
	b.DRAMDyn += o.DRAMDyn
}

// Scale returns b with every component multiplied by f (e.g., 1/seconds to
// convert energy to average power, or 1/nModules for per-HMC figures).
func (b Breakdown) Scale(f float64) Breakdown {
	return Breakdown{
		IdleIO:    b.IdleIO * f,
		ActiveIO:  b.ActiveIO * f,
		LogicLeak: b.LogicLeak * f,
		LogicDyn:  b.LogicDyn * f,
		DRAMLeak:  b.DRAMLeak * f,
		DRAMDyn:   b.DRAMDyn * f,
	}
}

// Check validates the breakdown as physical: every component must be a
// finite, non-negative energy/power value. The runtime invariant auditor
// applies it to measured intervals; a failure means the accounting — not
// the policy under study — produced the numbers.
func (b Breakdown) Check() error {
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"idleIO", b.IdleIO}, {"activeIO", b.ActiveIO},
		{"logicLeak", b.LogicLeak}, {"logicDyn", b.LogicDyn},
		{"dramLeak", b.DRAMLeak}, {"dramDyn", b.DRAMDyn},
	} {
		if math.IsNaN(c.v) || math.IsInf(c.v, 0) || c.v < 0 {
			return fmt.Errorf("power: %s component %g is not physical", c.name, c.v)
		}
	}
	return nil
}

// String formats the breakdown compactly (useful in reports and tests).
func (b Breakdown) String() string {
	return fmt.Sprintf("idleIO=%.3f activeIO=%.3f logicLeak=%.3f logicDyn=%.3f dramLeak=%.3f dramDyn=%.3f total=%.3f",
		b.IdleIO, b.ActiveIO, b.LogicLeak, b.LogicDyn, b.DRAMLeak, b.DRAMDyn, b.Total())
}
