package network

import (
	"math"
	"testing"

	"memnet/internal/link"
	"memnet/internal/metrics"
	"memnet/internal/sim"
	"memnet/internal/topology"
)

// TestAttachMetricsSeries drives a small network with the sampler armed
// and checks the registered series against ground truth the test can
// compute independently: residency partitions time across power states,
// completed reads match the injection count, and the latency histogram
// holds every completion.
func TestAttachMetricsSeries(t *testing.T) {
	k, net := buildNet(t, topology.DaisyChain, 2, nil)
	interval := 10 * sim.Microsecond
	reg := metrics.New(k, metrics.Config{Interval: interval})
	net.AttachMetrics(reg)
	reg.Start(sim.Time(4 * interval))

	for i := 0; i < 100; i++ {
		net.InjectRead(uint64(i%2)*net.Cfg.ChunkBytes, 0)
	}
	k.Run(sim.Time(4 * interval))
	d := reg.Dump()
	if d == nil || d.Ticks != 4 {
		t.Fatalf("dump = %+v, want 4 ticks", d)
	}

	series := map[string]metrics.SeriesDump{}
	for _, s := range d.Series {
		series[s.Name] = s
	}

	// Residency counters partition each interval exactly across states.
	links := float64(len(net.Links))
	for j := 0; j < d.Ticks; j++ {
		sum := 0.0
		for s := 0; s < link.NumStates; s++ {
			name := "link.residency." + link.State(s).String() + "_ps"
			sd, ok := series[name]
			if !ok {
				t.Fatalf("missing series %s", name)
			}
			sum += sd.Samples[j]
		}
		if want := links * float64(interval); sum != want {
			t.Errorf("tick %d: residency sum = %v, want %v", j, sum, want)
		}
	}

	// All 100 reads completed well inside the window, so the cumulative
	// completion counter equals the per-tick deltas summed.
	done := 0.0
	for _, v := range series["network.reads_completed"].Samples {
		done += v
	}
	if done != 100 {
		t.Errorf("reads_completed total = %v, want 100", done)
	}

	// The latency histogram saw exactly one observation per read, and the
	// per-tick rows carry the log2 bounds.
	hist := series["network.read_latency_hist"]
	if len(hist.Bounds) != len(hist.Hist[0]) {
		t.Fatalf("bounds/row mismatch: %d vs %d", len(hist.Bounds), len(hist.Hist[0]))
	}
	var observed uint64
	for _, row := range hist.Hist {
		for _, c := range row {
			observed += c
		}
	}
	if observed != 100 {
		t.Errorf("histogram observations = %d, want 100", observed)
	}

	// Queues drained, so the final gauges read zero.
	for _, name := range []string{"network.in_flight", "link.buffer_occupancy",
		"dram.vault_queue_depth", "dram.outstanding_reads"} {
		s := series[name].Samples
		if last := s[len(s)-1]; last != 0 {
			t.Errorf("%s final sample = %v, want 0 (network idle)", name, last)
		}
	}
}

// TestAttachMetricsNilRegistry: the disabled path registers nothing and
// must leave the simulation event stream untouched.
func TestAttachMetricsNilRegistry(t *testing.T) {
	k1, net1 := buildNet(t, topology.Star, 4, nil)
	net1.AttachMetrics(nil)
	net1.InjectRead(0, 0)
	k1.RunAll()
	k2, net2 := buildNet(t, topology.Star, 4, nil)
	net2.InjectRead(0, 0)
	k2.RunAll()
	if k1.Processed() != k2.Processed() {
		t.Errorf("nil registry changed event count: %d vs %d", k1.Processed(), k2.Processed())
	}
}

// TestLatencyBounds: the exported bucket edges must mirror the log2
// histogram layout — inclusive upper edge 2^i - 1 — and be monotone.
func TestLatencyBounds(t *testing.T) {
	b := latencyBounds()
	if b[0] != 0 || b[1] != 1 || b[10] != 1023 {
		t.Errorf("bounds start %v %v ... [10]=%v, want 0 1 ... 1023", b[0], b[1], b[10])
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] || math.IsInf(b[i], 0) {
			t.Fatalf("bounds not strictly increasing at %d: %v, %v", i, b[i-1], b[i])
		}
	}
}
