// Package network assembles HMC modules, their DRAM stacks, and the
// unidirectional link pairs into a simulated memory network: routing,
// vault dispatch, read-response generation, and whole-network energy and
// traffic accounting.
package network

import (
	"errors"
	"fmt"
	"strings"

	"memnet/internal/audit"
	"memnet/internal/dram"
	"memnet/internal/link"
	"memnet/internal/packet"
	"memnet/internal/power"
	"memnet/internal/sim"
	"memnet/internal/stats"
	"memnet/internal/topology"
)

// Config selects the network build parameters.
type Config struct {
	// Mechanism and ROO select every link's power-control capabilities.
	Mechanism link.Mechanism
	ROO       bool
	// Wakeup is the ROO wakeup latency (defaults to 14 ns).
	Wakeup sim.Duration
	// ChunkBytes is the contiguous slice of physical address space mapped
	// to each module: 4 GB in the small network study, 1 GB in the big.
	ChunkBytes uint64
	// Interleave switches to page-interleaved address mapping (used by
	// the §VII-A static baseline); PageBytes is the interleaving grain.
	Interleave bool
	PageBytes  uint64
	// DRAM configures every module's DRAM stack.
	DRAM dram.Config
	// Power overrides the [12] power model for every module (nil = the
	// published operating point, power.DefaultModel). The calibration
	// harness perturbs it for sensitivity sweeps.
	Power *power.Model
	// ProactiveRespWake wires [22]: a module's response link starts
	// waking as soon as its DRAM begins a read. The paper includes this
	// in both management schemes whenever ROO links are used.
	ProactiveRespWake bool
	// Retrain is every link's lane-training latency for repair and CRC
	// escalation (defaults to link.RetrainDefault).
	Retrain sim.Duration
	// MaxCRCRetries bounds consecutive CRC retransmissions per packet
	// before a link escalates (0 = link.DefaultMaxCRCRetries).
	MaxCRCRetries int
}

// DefaultConfig returns the paper's small-network configuration.
func DefaultConfig() Config {
	return Config{
		Mechanism:         link.MechNone,
		ChunkBytes:        4 << 30,
		PageBytes:         4 << 10,
		DRAM:              dram.DefaultConfig(),
		Wakeup:            link.WakeupDefault,
		ProactiveRespWake: true,
	}
}

// Sentinel errors for degradation paths. Faults recorded by the network
// wrap one of these, so callers (the fault layer, tests) can classify
// them with errors.Is.
var (
	// ErrUnroutable marks a packet no route exists for.
	ErrUnroutable = errors.New("network: unroutable packet")
	// ErrLinkFailed marks traffic lost to a permanently failed link.
	ErrLinkFailed = errors.New("network: link failed")
)

// Module is one HMC: DRAM stack plus its two connectivity links (the
// request link entering it from upstream and the response link leaving it
// upstream). Per §V-A, a module's management owns exactly these two links.
type Module struct {
	ID     int
	DRAM   *dram.HMCDRAM
	UpReq  *link.Link // upstream neighbour -> this module (request)
	UpResp *link.Link // this module -> upstream neighbour (response)
	Params power.ModuleParams

	net         *Network
	pendingDRAM []*packet.Packet
	flitsRouted uint64
	doneFree    []*dramDone
}

// dramDone is the pooled DRAM-completion object for one request packet:
// it emits the read response (or retires the write), recycles the request
// packet, and drains any vault-full backlog. One fires per accepted
// access, so each returns itself to the module's free list exactly once.
type dramDone struct {
	m      *Module
	p      *packet.Packet
	isRead bool
}

func (dd *dramDone) AccessDone() {
	m, p, isRead := dd.m, dd.p, dd.isRead
	dd.p = nil
	m.doneFree = append(m.doneFree, dd)
	if isRead {
		m.sendResponse(p)
		m.net.putPacket(p)
	} else {
		m.net.writesDone++
		m.net.writeHops += uint64(p.Hops)
		if m.net.OnWriteComplete != nil {
			m.net.OnWriteComplete(p)
		}
		m.net.putPacket(p)
	}
	m.drainPending()
}

// FlitsRouted returns the flits this module's router has handled.
func (m *Module) FlitsRouted() uint64 { return m.flitsRouted }

// Network is a fully wired memory network attached to one processor
// channel.
type Network struct {
	Kernel  *sim.Kernel
	Topo    *topology.Topology
	Cfg     Config
	Modules []*Module
	Links   []*link.Link // 2 per module: [2i]=UpReq, [2i+1]=UpResp

	// OnReadComplete fires when a read completes at the processor — with a
	// ReadResp carrying data, or with a ReadErr when the network could not
	// deliver the read (check Kind.IsError()). OnWriteComplete fires when a
	// write retires at its DRAM, or with a WriteErr when it could not be
	// delivered, so the issuer can release the write credit either way.
	OnReadComplete  func(*packet.Packet)
	OnWriteComplete func(*packet.Packet)
	// OnInject observes every injected packet (trace recording).
	OnInject func(*packet.Packet)

	buildTime  sim.Time
	pktFree    []*packet.Packet
	nextPktID  uint64
	readsDone  uint64
	writesDone uint64
	readHops   uint64
	writeHops  uint64
	readLatSum sim.Duration
	latHist    stats.LatencyHist

	// Degradation and recovery state and accounting.
	unreachable  []bool
	linkDown     []bool // failed and not yet retrained back into service
	avail        *stats.Availability
	repaired     uint64
	injReads     uint64
	injWrites    uint64
	readsFailed  uint64 // reads completed as ReadErr at the processor
	writesFailed uint64 // writes completed as WriteErr at the processor
	lostReads    uint64 // reads whose response was dropped/stranded: terminal
	lostWrites   uint64
	droppedPkts  uint64
	routingErrs  uint64
	failLatSum   sim.Duration // issue-to-error latency of failed reads
	faultLog     []error
	faultCount   uint64

	// Runtime invariant auditing (nil = unaudited).
	aud           *audit.Auditor
	minReadLat    sim.Duration
	auditPrevInj  uint64
	auditPrevTerm uint64
}

// maxFaultLog bounds the retained fault diagnostics; the count keeps
// accumulating past it.
const maxFaultLog = 128

// New builds a network over topo. All links share the same mechanism
// configuration; management policies are attached afterwards (package
// core).
func New(k *sim.Kernel, topo *topology.Topology, cfg Config) *Network {
	if cfg.ChunkBytes == 0 {
		panic("network: ChunkBytes must be set")
	}
	if cfg.Wakeup <= 0 {
		cfg.Wakeup = link.WakeupDefault
	}
	pm := power.DefaultModel()
	if cfg.Power != nil {
		pm = *cfg.Power
	}
	n := &Network{Kernel: k, Topo: topo, Cfg: cfg, buildTime: k.Now()}
	n.Modules = make([]*Module, topo.N())
	n.Links = make([]*link.Link, 0, 2*topo.N())
	n.unreachable = make([]bool, topo.N())
	n.linkDown = make([]bool, 2*topo.N())
	n.avail = stats.NewAvailability(topo.N())

	for i := 0; i < topo.N(); i++ {
		m := &Module{
			ID:     i,
			DRAM:   dram.New(k, cfg.DRAM),
			Params: pm.ParamsForRadix(topo.Radix(i) == topology.HighRadix),
			net:    n,
		}
		lcfg := link.Config{
			Mechanism:     cfg.Mechanism,
			ROO:           cfg.ROO,
			Wakeup:        cfg.Wakeup,
			FullWatts:     m.Params.LinkFullWatts(),
			Retrain:       cfg.Retrain,
			MaxCRCRetries: cfg.MaxCRCRetries,
		}
		parent := topo.Parent(i)
		depth := topo.Depth(i)
		m.UpReq = link.New(k, lcfg, 2*i, link.DirRequest, i, parent, i, depth)
		m.UpResp = link.New(k, lcfg, 2*i+1, link.DirResponse, i, i, parent, depth)
		n.Modules[i] = m
		n.Links = append(n.Links, m.UpReq, m.UpResp)
	}

	// Wire deliveries.
	for i := 0; i < topo.N(); i++ {
		m := n.Modules[i]
		m.UpReq.Deliver = m.receiveDownstream
		m.UpResp.Deliver = m.receiveUpstream
		if cfg.ROO && cfg.ProactiveRespWake {
			resp := m.UpResp
			m.DRAM.OnReadStart = func() { resp.Wake() }
		}
	}
	for _, l := range n.Links {
		l := l
		l.OnDrop = func(p *packet.Packet) { n.handleDrop(l, p) }
		// Recovery wiring: an exhausted escalation ladder fails the link
		// through the network (stranded requests error-complete); a
		// finished retraining re-admits the subtree if the link was down.
		l.OnHardFail = func() { _ = n.FailLink(l.ID) }
		l.OnRetrained = func() { n.linkRetrained(l) }
	}
	return n
}

// AttachAudit wires the runtime invariant auditor through the whole
// network: every link's state machine, buffer and energy accounting,
// every module's DRAM vault queues, read-latency and hop sanity at
// completion, and a registered conservation sweep over the injection/
// terminal counters. The auditor is purely observational — it schedules
// no events and mutates no simulation state, so audited and unaudited
// runs produce bit-identical results.
func (n *Network) AttachAudit(a *audit.Auditor) {
	n.aud = a
	// The latency floor is conservative across page policies: even an
	// open-page row hit pays tCL plus the data burst, and the network adds
	// serialization on top.
	n.minReadLat = n.Cfg.DRAM.TCL + n.Cfg.DRAM.BurstTime()
	for _, l := range n.Links {
		l.AttachAudit(a)
	}
	for i, m := range n.Modules {
		m.DRAM.AttachAudit(a, i)
	}
	a.RegisterSweep(n.auditSweep)
}

// auditRead is the sampled completion check: end-to-end latency above the
// physical floor, and the round trip exactly twice the serving module's
// depth (responses retrace the request path).
func (n *Network) auditRead(p *packet.Packet, lat sim.Duration) {
	if lat < n.minReadLat {
		n.aud.Reportf("network", "read-latency-floor",
			"read %d (module %d) completed in %s, floor %s", p.ID, p.Src, lat, n.minReadLat)
	}
	if want := 2 * n.Topo.Depth(p.Src); p.Hops != want {
		n.aud.Reportf("network", "read-hops",
			"read %d served by module %d took %d hops, want %d", p.ID, p.Src, p.Hops, want)
	}
}

// auditSweep checks request conservation: terminal outcomes never exceed
// injections (in-flight ≥ 0) and both families of counters are monotone.
func (n *Network) auditSweep(now sim.Time, report func(component, rule, detail string)) {
	inj := n.injReads + n.injWrites
	term := n.readsDone + n.readsFailed + n.lostReads +
		n.writesDone + n.writesFailed + n.lostWrites
	if term > inj {
		report("network", "conservation", fmt.Sprintf(
			"terminal outcomes %d exceed injected %d (reads %d done/%d failed/%d lost, writes %d/%d/%d)",
			term, inj, n.readsDone, n.readsFailed, n.lostReads, n.writesDone, n.writesFailed, n.lostWrites))
	}
	if inj < n.auditPrevInj || term < n.auditPrevTerm {
		report("network", "counter-monotone", fmt.Sprintf(
			"injected %d->%d terminal %d->%d", n.auditPrevInj, inj, n.auditPrevTerm, term))
	}
	n.auditPrevInj, n.auditPrevTerm = inj, term
	// Reachability marks must be exactly what the down-link set implies —
	// a repair that forgets to re-admit a subtree (or a failure that
	// forgets to sever one) shows up here.
	for m := range n.Modules {
		down := false
		for a := m; a != packet.ProcessorID; a = n.Topo.Parent(a) {
			if n.linkDown[2*a] || n.linkDown[2*a+1] {
				down = true
				break
			}
		}
		if down != n.unreachable[m] {
			report("network", "reachability-consistent", fmt.Sprintf(
				"module %d unreachable=%v but down-link derivation says %v", m, n.unreachable[m], down))
		}
	}
}

// CheckQuiesced verifies the drained-network half of the conservation
// invariant: once the event queue is empty (and issuers have timed out or
// completed), every injected request must have a terminal outcome — data,
// error response, or accounted loss. A live network legitimately has
// in-flight requests, so this is a quiesce-time check, not a sweep.
func (n *Network) CheckQuiesced() error {
	if out := n.Outstanding(); out != 0 {
		return fmt.Errorf("network: %d requests still in flight at quiesce (injected %d reads + %d writes)",
			out, n.injReads, n.injWrites)
	}
	return nil
}

// Injected returns the cumulative injected read and write requests (the
// audit layer's cross-check against the issuing front end).
func (n *Network) Injected() (reads, writes uint64) { return n.injReads, n.injWrites }

// nextID allocates a packet ID.
func (n *Network) nextID() uint64 {
	n.nextPktID++
	return n.nextPktID
}

// getPacket draws a packet from the free list (or allocates one); the
// caller overwrites every field. Packets retired on the hot completion
// paths come back through putPacket, so steady-state injection and
// response generation allocate nothing; degradation-path packets (errors,
// strands, drops) are simply left to the garbage collector, which keeps
// every put site trivially single-shot.
func (n *Network) getPacket() *packet.Packet {
	if i := len(n.pktFree) - 1; i >= 0 {
		p := n.pktFree[i]
		n.pktFree = n.pktFree[:i]
		return p
	}
	return new(packet.Packet)
}

// putPacket recycles a packet whose lifetime has ended. Completion
// callbacks (OnReadComplete, OnWriteComplete, OnInject) must not retain
// the packet past their return.
func (n *Network) putPacket(p *packet.Packet) {
	n.pktFree = append(n.pktFree, p)
}

// ModuleFor maps a physical address to its home module.
func (n *Network) ModuleFor(addr uint64) int {
	var m uint64
	if n.Cfg.Interleave {
		m = (addr / n.Cfg.PageBytes) % uint64(n.Topo.N())
	} else {
		m = addr / n.Cfg.ChunkBytes
	}
	if m >= uint64(n.Topo.N()) {
		m = uint64(n.Topo.N()) - 1
	}
	return int(m)
}

// CapacityBytes is the address space covered by the network.
func (n *Network) CapacityBytes() uint64 {
	return n.Cfg.ChunkBytes * uint64(n.Topo.N())
}

// InjectRead enters a read request into the network on the processor's
// request link.
func (n *Network) InjectRead(addr uint64, core int) { n.InjectReadID(addr, core) }

// InjectReadID is InjectRead returning the request's packet ID, so the
// issuer can correlate it with the completion (Packet.Req on responses)
// in an outstanding-request table.
func (n *Network) InjectReadID(addr uint64, core int) uint64 {
	p := n.getPacket()
	*p = packet.Packet{
		ID:     n.nextID(),
		Kind:   packet.ReadReq,
		Src:    packet.ProcessorID,
		Dst:    n.ModuleFor(addr),
		Addr:   addr,
		Issued: n.Kernel.Now(),
		Core:   core,
	}
	n.injReads++
	if n.OnInject != nil {
		n.OnInject(p)
	}
	n.inject(p)
	return p.ID
}

// InjectWrite enters a (posted) write request.
func (n *Network) InjectWrite(addr uint64, core int) { n.InjectWriteID(addr, core) }

// InjectWriteID is InjectWrite returning the request's packet ID.
func (n *Network) InjectWriteID(addr uint64, core int) uint64 {
	p := n.getPacket()
	*p = packet.Packet{
		ID:     n.nextID(),
		Kind:   packet.WriteReq,
		Src:    packet.ProcessorID,
		Dst:    n.ModuleFor(addr),
		Addr:   addr,
		Issued: n.Kernel.Now(),
		Core:   core,
	}
	n.injWrites++
	if n.OnInject != nil {
		n.OnInject(p)
	}
	n.inject(p)
	return p.ID
}

// inject places a fresh request on the processor's request link, or — if
// that link is down — completes it immediately as an error. The error
// completion is deferred one event so the issuer's bookkeeping for the
// request is in place before the completion callback fires.
func (n *Network) inject(p *packet.Packet) {
	root := n.Modules[0].UpReq
	if root.Failed() {
		n.recordFault(fmt.Errorf("%w: processor request link, rejecting %v", ErrLinkFailed, p))
		errp := n.errorFor(p, packet.ProcessorID)
		n.Kernel.After(0, func() { n.completeUpstream(errp) })
		return
	}
	root.Enqueue(p)
}

// receiveDownstream handles a packet arriving at m over its request link.
// Link delivery already includes this module's router latency. A routing
// failure — no route, or the next hop's link is dead — is not a panic:
// the router completes the request back toward the processor as an error
// response.
func (m *Module) receiveDownstream(p *packet.Packet) {
	m.flitsRouted += uint64(p.Flits())
	if p.Dst == m.ID {
		m.accessDRAM(p)
		return
	}
	if err := m.route(p); err != nil {
		m.net.recordFault(err)
		m.sendError(p)
	}
}

// route forwards p one hop toward its destination, returning a wrapped
// ErrUnroutable/ErrLinkFailed instead of panicking when it cannot.
func (m *Module) route(p *packet.Packet) error {
	next := m.net.Topo.NextHop(m.ID, p.Dst)
	if next < 0 {
		m.net.routingErrs++
		return fmt.Errorf("%w: module %d has no route for %v", ErrUnroutable, m.ID, p)
	}
	nl := m.net.Modules[next].UpReq
	if nl.Failed() {
		return fmt.Errorf("%w: request link %d->%d carrying %v", ErrLinkFailed, m.ID, next, p)
	}
	nl.Enqueue(p)
	return nil
}

// receiveUpstream handles a packet arriving from m at its upstream
// neighbour: either the processor or the parent module's router.
func (m *Module) receiveUpstream(p *packet.Packet) {
	n := m.net
	parent := n.Topo.Parent(m.ID)
	if parent == packet.ProcessorID {
		n.completeUpstream(p)
		return
	}
	pm := n.Modules[parent]
	pm.flitsRouted += uint64(p.Flits())
	pm.UpResp.Enqueue(p)
}

// accessDRAM dispatches p to the module's DRAM, buffering when the target
// vault queue is full.
func (m *Module) accessDRAM(p *packet.Packet) {
	if !m.tryDRAM(p) {
		m.pendingDRAM = append(m.pendingDRAM, p)
	}
}

func (m *Module) tryDRAM(p *packet.Packet) bool {
	var dd *dramDone
	if n := len(m.doneFree); n > 0 {
		dd, m.doneFree = m.doneFree[n-1], m.doneFree[:n-1]
	} else {
		dd = &dramDone{m: m}
	}
	dd.p, dd.isRead = p, p.Kind == packet.ReadReq
	if !m.DRAM.AccessAction(p.Addr, dd.isRead, dd) {
		dd.p = nil
		m.doneFree = append(m.doneFree, dd)
		return false
	}
	return true
}

// drainPending retries packets that found their vault queue full.
func (m *Module) drainPending() {
	for len(m.pendingDRAM) > 0 {
		if !m.tryDRAM(m.pendingDRAM[0]) {
			return
		}
		copy(m.pendingDRAM, m.pendingDRAM[1:])
		m.pendingDRAM = m.pendingDRAM[:len(m.pendingDRAM)-1]
	}
}

// sendResponse emits the read response toward the processor.
func (m *Module) sendResponse(req *packet.Packet) {
	n := m.net
	resp := n.getPacket()
	*resp = packet.Packet{
		ID:     n.nextID(),
		Kind:   packet.ReadResp,
		Src:    m.ID,
		Dst:    packet.ProcessorID,
		Addr:   req.Addr,
		Issued: req.Issued,
		Hops:   req.Hops, // carry request-leg hops for links/access stats
		Req:    req.ID,
		Core:   req.Core,
	}
	m.flitsRouted += uint64(resp.Flits())
	m.UpResp.Enqueue(resp)
}

// errorFor builds the error response completing req from src's side.
func (n *Network) errorFor(req *packet.Packet, src int) *packet.Packet {
	kind := packet.ReadErr
	if req.Kind == packet.WriteReq || req.Kind == packet.WriteErr {
		kind = packet.WriteErr
	}
	return &packet.Packet{
		ID:     n.nextID(),
		Kind:   kind,
		Src:    src,
		Dst:    packet.ProcessorID,
		Addr:   req.Addr,
		Issued: req.Issued,
		Hops:   req.Hops,
		Req:    req.ID,
		Core:   req.Core,
	}
}

// sendError completes req as an error response originating at m. The
// error packet travels the real upstream path, so it pays link energy
// and latency like any response; if that path is itself severed the drop
// handler accounts the request as terminally lost.
func (m *Module) sendError(req *packet.Packet) {
	errp := m.net.errorFor(req, m.ID)
	m.flitsRouted += uint64(errp.Flits())
	m.UpResp.Enqueue(errp)
}

// completeUpstream retires an upstream packet arriving at the processor.
func (n *Network) completeUpstream(p *packet.Packet) {
	switch p.Kind {
	case packet.ReadResp:
		n.completeRead(p)
		n.putPacket(p)
	case packet.ReadErr:
		n.readsFailed++
		n.failLatSum += n.Kernel.Now() - p.Issued
		if n.OnReadComplete != nil {
			n.OnReadComplete(p)
		}
	case packet.WriteErr:
		n.writesFailed++
		if n.OnWriteComplete != nil {
			n.OnWriteComplete(p)
		}
	}
}

// completeRead retires a successful read at the processor.
func (n *Network) completeRead(p *packet.Packet) {
	n.readsDone++
	n.readHops += uint64(p.Hops)
	lat := n.Kernel.Now() - p.Issued
	n.readLatSum += lat
	n.latHist.Add(lat)
	if n.aud.Sample() {
		n.auditRead(p, lat)
	}
	if n.OnReadComplete != nil {
		n.OnReadComplete(p)
	}
}

// FailLink fails the connectivity link at Links[idx] and marks the
// subtree hanging off it unreachable until the link is repaired. Packets
// stranded on the link are recovered: requests complete as error
// responses generated at the live (upstream) side of the cut, responses
// are accounted as terminally lost so their requests resolve via issuer
// timeouts.
func (n *Network) FailLink(idx int) error {
	if idx < 0 || idx >= len(n.Links) {
		return fmt.Errorf("network: no link %d (have %d)", idx, len(n.Links))
	}
	l := n.Links[idx]
	if l.Failed() {
		return nil
	}
	mod := idx / 2
	n.recordFault(fmt.Errorf("%w: link %d (module %d) failed at %s", ErrLinkFailed, idx, mod, n.Kernel.Now()))
	stranded := l.Fail()
	// Either direction dying severs read round-trips through the module,
	// so the whole subtree is unreachable for new requests.
	n.linkDown[idx] = true
	n.recomputeReachability()
	for _, p := range stranded {
		n.strand(l, p)
	}
	return nil
}

// FailModule fails both connectivity links of module id.
func (n *Network) FailModule(id int) error {
	if id < 0 || id >= len(n.Modules) {
		return fmt.Errorf("network: no module %d (have %d)", id, len(n.Modules))
	}
	if err := n.FailLink(2 * id); err != nil {
		return err
	}
	return n.FailLink(2*id + 1)
}

// RepairLink begins recovery of a failed link: the link retrains (full
// I/O power, no traffic) and, once training completes, rejoins the
// network — linkRetrained clears the down mark and re-admits the subtree
// to routing. Requests that timed out during the outage come back
// through the issuer's bounded retry or stay completed as errors.
// Repairing a live link is a no-op; only an out-of-range index errors.
func (n *Network) RepairLink(idx int) error {
	if idx < 0 || idx >= len(n.Links) {
		return fmt.Errorf("network: no link %d (have %d)", idx, len(n.Links))
	}
	n.Links[idx].Repair()
	return nil
}

// RepairModule repairs both connectivity links of module id and clears
// any injected vault stall, so the module comes back fully operational.
func (n *Network) RepairModule(id int) error {
	if id < 0 || id >= len(n.Modules) {
		return fmt.Errorf("network: no module %d (have %d)", id, len(n.Modules))
	}
	if err := n.RepairLink(2 * id); err != nil {
		return err
	}
	if err := n.RepairLink(2*id + 1); err != nil {
		return err
	}
	n.Modules[id].DRAM.ClearStall()
	return nil
}

// linkRetrained fires when a link finishes retraining. Self-retrains
// from the CRC escalation ladder pause traffic but never severed the
// subtree; only the repair of a down link changes reachability.
func (n *Network) linkRetrained(l *link.Link) {
	if !n.linkDown[l.ID] {
		return
	}
	n.linkDown[l.ID] = false
	n.repaired++
	n.recomputeReachability()
}

// recomputeReachability rederives the unreachable marks from the set of
// down links and feeds the transitions into the availability accounting.
// It is the single mutation point of unreachable, shared by failure and
// repair, so stacked faults resolve correctly: repairing the lower of
// two cuts on one path re-admits nothing until the upper cut heals too.
func (n *Network) recomputeReachability() {
	now := n.Kernel.Now()
	for m := range n.Modules {
		down := false
		for a := m; a != packet.ProcessorID; a = n.Topo.Parent(a) {
			if n.linkDown[2*a] || n.linkDown[2*a+1] {
				down = true
				break
			}
		}
		if down == n.unreachable[m] {
			continue
		}
		n.unreachable[m] = down
		if down {
			n.avail.Down(m, now)
		} else {
			n.avail.Up(m, now)
		}
	}
}

// Unreachable reports whether module id sits below a down link.
func (n *Network) Unreachable(id int) bool { return n.unreachable[id] }

// AvailabilityReport summarizes the per-module up/down accounting since
// the network was built.
func (n *Network) AvailabilityReport() stats.AvailabilityReport {
	now := n.Kernel.Now()
	return n.avail.Report(now-n.buildTime, now)
}

// strand resolves a packet reclaimed from a failing link's queue.
func (n *Network) strand(l *link.Link, p *packet.Packet) {
	n.droppedPkts++
	if !p.Kind.Downstream() {
		n.loseResponse(p)
		return
	}
	// A request caught in the cut: the live side is the upstream end of
	// the failed request link. Deferred one event so a failure injected
	// from inside an issuer's callback cannot complete reentrantly.
	c := l.ID / 2
	parent := n.Topo.Parent(c)
	if parent == packet.ProcessorID {
		errp := n.errorFor(p, packet.ProcessorID)
		n.Kernel.After(0, func() { n.completeUpstream(errp) })
		return
	}
	pm := n.Modules[parent]
	n.Kernel.After(0, func() { pm.sendError(p) })
}

// handleDrop accounts a packet rejected by a failed link's Enqueue.
func (n *Network) handleDrop(l *link.Link, p *packet.Packet) {
	n.droppedPkts++
	n.recordFault(fmt.Errorf("%w: link %d dropped %v", ErrLinkFailed, l.ID, p))
	if p.Kind.Downstream() {
		// Backstop — routing checks link health before forwarding, so a
		// request should never reach a dead link; account it lost so the
		// outstanding count still converges if one does.
		if p.Kind == packet.ReadReq {
			n.lostReads++
		} else {
			n.lostWrites++
		}
		return
	}
	n.loseResponse(p)
}

// loseResponse marks an upstream packet as terminally lost; the request
// it was completing can now only resolve via the issuer's timeout.
func (n *Network) loseResponse(p *packet.Packet) {
	switch p.Kind {
	case packet.ReadResp, packet.ReadErr:
		n.lostReads++
	case packet.WriteErr:
		n.lostWrites++
	}
}

// recordFault appends a diagnostic (bounded) and counts it.
func (n *Network) recordFault(err error) {
	n.faultCount++
	if len(n.faultLog) < maxFaultLog {
		n.faultLog = append(n.faultLog, err)
	}
}

// Faults returns the retained fault diagnostics (bounded to the first
// maxFaultLog) and the total number recorded.
func (n *Network) Faults() ([]error, uint64) { return n.faultLog, n.faultCount }

// FaultStats aggregates the degradation counters.
type FaultStats struct {
	ReadsFailed   uint64 // reads completed as error responses
	WritesFailed  uint64 // writes completed as error responses
	LostReads     uint64 // reads whose response was dropped: issuer must time out
	LostWrites    uint64
	Dropped       uint64 // packets dropped or stranded by failed links
	RoutingErrors uint64 // unroutable packets (would have panicked before)
	FailedLinks   int
	FailLatSum    sim.Duration         // issue-to-error-completion latency of failed reads
	RepairedLinks uint64               // links retrained back into service after a failure
	Escalations   link.EscalationStats // CRC retry-ladder actions summed over links
}

// FaultStats returns a snapshot of the degradation counters.
func (n *Network) FaultStats() FaultStats {
	s := FaultStats{
		ReadsFailed:   n.readsFailed,
		WritesFailed:  n.writesFailed,
		LostReads:     n.lostReads,
		LostWrites:    n.lostWrites,
		Dropped:       n.droppedPkts,
		RoutingErrors: n.routingErrs,
		FailLatSum:    n.failLatSum,
		RepairedLinks: n.repaired,
	}
	for _, l := range n.Links {
		if l.Failed() {
			s.FailedLinks++
		}
		e := l.Escalations()
		s.Escalations.Degrades += e.Degrades
		s.Escalations.Retrains += e.Retrains
		s.Escalations.HardFails += e.HardFails
	}
	return s
}

// Outstanding counts injected requests with no terminal outcome yet
// (data, error response, or accounted loss) — the watchdog's in-flight
// probe.
func (n *Network) Outstanding() int {
	done := n.readsDone + n.readsFailed + n.lostReads +
		n.writesDone + n.writesFailed + n.lostWrites
	return int(n.injReads + n.injWrites - done)
}

// ProgressCount is a monotone counter of terminal request outcomes — the
// watchdog's progress probe.
func (n *Network) ProgressCount() uint64 {
	return n.readsDone + n.readsFailed + n.lostReads +
		n.writesDone + n.writesFailed + n.lostWrites
}

// DumpState renders a deterministic diagnostic snapshot — link states
// and queue depths, outstanding counts, vault backlogs — for watchdog
// reports and post-mortem logs.
func (n *Network) DumpState() string {
	var b strings.Builder
	fmt.Fprintf(&b, "  network: outstanding=%d injected=%d reads=%d/%d failed writes=%d/%d failed lost=%d/%d dropped=%d routing-errors=%d\n",
		n.Outstanding(), n.injReads+n.injWrites,
		n.readsDone, n.readsFailed, n.writesDone, n.writesFailed,
		n.lostReads, n.lostWrites, n.droppedPkts, n.routingErrs)
	for i, m := range n.Modules {
		req, resp := m.UpReq, m.UpResp
		marker := ""
		if n.unreachable[i] {
			marker = " UNREACHABLE"
		}
		fmt.Fprintf(&b, "  module %d%s: req[%s q=%d] resp[%s q=%d] vault-pending=%d dram-outstanding=%d\n",
			i, marker,
			req.State(), req.QueueLen(), resp.State(), resp.QueueLen(),
			len(m.pendingDRAM), m.DRAM.OutstandingReads())
	}
	return b.String()
}

// LatencyHist exposes the end-to-end read latency distribution. Callers
// measuring an interval should Reset it at the interval start.
func (n *Network) LatencyHist() *stats.LatencyHist { return &n.latHist }

// Snapshot captures cumulative counters so an interval (e.g., excluding
// warmup) can be measured by differencing two snapshots.
type Snapshot struct {
	At         sim.Time
	Energy     power.Breakdown // joules since build
	ReadsDone  uint64
	WritesDone uint64
	// ReadsFailed/WritesFailed count requests completed as error
	// responses under degradation (zero on a healthy network).
	ReadsFailed  uint64
	WritesFailed uint64
	ReadHops     uint64
	WriteHops    uint64
	ReadLatSum   sim.Duration
	LinkBusy     []sim.Duration
	LinkBytes    []uint64
	DRAMReads    []uint64
	DRAMWrites   []uint64
}

// TakeSnapshot integrates energy to now and captures all counters.
func (n *Network) TakeSnapshot() Snapshot {
	now := n.Kernel.Now()
	s := Snapshot{
		At:           now,
		Energy:       n.energyToNow(),
		ReadsDone:    n.readsDone,
		WritesDone:   n.writesDone,
		ReadsFailed:  n.readsFailed,
		WritesFailed: n.writesFailed,
		ReadHops:     n.readHops,
		WriteHops:    n.writeHops,
		ReadLatSum:   n.readLatSum,
		LinkBusy:     make([]sim.Duration, len(n.Links)),
		LinkBytes:    make([]uint64, len(n.Links)),
		DRAMReads:    make([]uint64, len(n.Modules)),
		DRAMWrites:   make([]uint64, len(n.Modules)),
	}
	for i, l := range n.Links {
		s.LinkBusy[i] = l.BusyTime()
		s.LinkBytes[i] = l.Bytes()
	}
	for i, m := range n.Modules {
		st := m.DRAM.Stats()
		s.DRAMReads[i] = st.Reads
		s.DRAMWrites[i] = st.Writes
	}
	return s
}

// energyToNow integrates all components from build time to now.
func (n *Network) energyToNow() power.Breakdown {
	now := n.Kernel.Now()
	elapsed := (now - n.buildTime).Seconds()
	var b power.Breakdown
	for _, m := range n.Modules {
		// I/O: the module's two connectivity links.
		for _, l := range []*link.Link{m.UpReq, m.UpResp} {
			l.FinishAccounting()
			idle, active := l.EnergyJoules()
			b.IdleIO += idle
			b.ActiveIO += active
		}
		// DRAM.
		b.DRAMLeak += m.Params.DRAMLeakageWatts() * elapsed
		st := m.DRAM.Stats()
		peakBW := m.DRAM.Config().PeakBandwidthBytesPerSec()
		b.DRAMDyn += m.Params.DRAMDynamicRangeWatts() * float64(st.BytesTransferred) / peakBW
		// Logic.
		b.LogicLeak += m.Params.LogicLeakageWatts() * elapsed
		maxFlitsPerSec := float64(m.Params.UniLinks) / link.FlitTimeFull.Seconds()
		b.LogicDyn += m.Params.LogicDynamicRangeWatts() * float64(m.flitsRouted) / maxFlitsPerSec
	}
	return b
}

// IntervalPower returns the average power breakdown between two snapshots.
func IntervalPower(a, b Snapshot) power.Breakdown {
	dt := (b.At - a.At).Seconds()
	if dt <= 0 {
		return power.Breakdown{}
	}
	diff := b.Energy
	diff.IdleIO -= a.Energy.IdleIO
	diff.ActiveIO -= a.Energy.ActiveIO
	diff.LogicLeak -= a.Energy.LogicLeak
	diff.LogicDyn -= a.Energy.LogicDyn
	diff.DRAMLeak -= a.Energy.DRAMLeak
	diff.DRAMDyn -= a.Energy.DRAMDyn
	return diff.Scale(1 / dt)
}

// ChannelUtilization returns the busier direction's utilization of the
// processor-attached full link over the snapshot interval.
func ChannelUtilization(a, b Snapshot) float64 {
	dt := float64(b.At - a.At)
	if dt <= 0 {
		return 0
	}
	req := float64(b.LinkBusy[0] - a.LinkBusy[0])
	resp := float64(b.LinkBusy[1] - a.LinkBusy[1])
	if req > resp {
		return req / dt
	}
	return resp / dt
}

// AvgLinkUtilization returns the mean utilization across all links over
// the snapshot interval.
func AvgLinkUtilization(a, b Snapshot) float64 {
	dt := float64(b.At - a.At)
	if dt <= 0 || len(b.LinkBusy) == 0 {
		return 0
	}
	var sum float64
	for i := range b.LinkBusy {
		sum += float64(b.LinkBusy[i] - a.LinkBusy[i])
	}
	return sum / dt / float64(len(b.LinkBusy))
}

// LinksPerAccess returns the average number of links traversed per
// completed memory access over the snapshot interval (Fig. 6).
func LinksPerAccess(a, b Snapshot) float64 {
	acc := float64((b.ReadsDone - a.ReadsDone) + (b.WritesDone - a.WritesDone))
	if acc == 0 {
		return 0
	}
	hops := float64((b.ReadHops - a.ReadHops) + (b.WriteHops - a.WriteHops))
	return hops / acc
}

// Throughput returns completed accesses per second over the interval.
func Throughput(a, b Snapshot) float64 {
	dt := (b.At - a.At).Seconds()
	if dt <= 0 {
		return 0
	}
	return float64((b.ReadsDone-a.ReadsDone)+(b.WritesDone-a.WritesDone)) / dt
}

// AvgReadLatency returns the mean end-to-end read latency over the
// interval.
func AvgReadLatency(a, b Snapshot) sim.Duration {
	reads := b.ReadsDone - a.ReadsDone
	if reads == 0 {
		return 0
	}
	return (b.ReadLatSum - a.ReadLatSum) / sim.Duration(reads)
}
