package network

import (
	"errors"
	"testing"

	"memnet/internal/packet"
	"memnet/internal/sim"
	"memnet/internal/topology"
)

// TestFailLinkSeversSubtree kills the mid-chain link on a daisy chain:
// upstream modules must keep serving, requests into the severed subtree
// must complete as counted error responses, and nothing may panic or hang.
func TestFailLinkSeversSubtree(t *testing.T) {
	k, net := buildNet(t, topology.DaisyChain, 4, nil)
	var errKinds []packet.Kind
	net.OnReadComplete = func(p *packet.Packet) {
		if p.Kind.IsError() {
			errKinds = append(errKinds, p.Kind)
		}
	}

	if err := net.FailLink(2 * 1); err != nil { // module 1's request link
		t.Fatal(err)
	}
	for m := 0; m < 4; m++ {
		if want := m >= 1; net.Unreachable(m) != want {
			t.Fatalf("module %d unreachable = %v, want %v", m, !want, want)
		}
	}

	// One read per module; modules 1–3 sit below the cut.
	for m := 0; m < 4; m++ {
		net.InjectRead(uint64(m)*net.Cfg.ChunkBytes, 0)
		k.RunAll()
	}

	if net.readsDone != 1 {
		t.Fatalf("readsDone = %d, want 1 (only module 0 reachable)", net.readsDone)
	}
	fs := net.FaultStats()
	if fs.ReadsFailed != 3 {
		t.Fatalf("ReadsFailed = %d, want 3", fs.ReadsFailed)
	}
	if len(errKinds) != 3 {
		t.Fatalf("OnReadComplete saw %d error responses, want 3", len(errKinds))
	}
	for _, kind := range errKinds {
		if kind != packet.ReadErr {
			t.Fatalf("error completion kind = %v, want ReadErr", kind)
		}
	}
	if fs.FailedLinks != 1 {
		t.Fatalf("FailedLinks = %d, want 1", fs.FailedLinks)
	}
	// Latency of failed reads is accounted, and nothing is left pending.
	if fs.FailLatSum <= 0 {
		t.Fatal("failed reads carried no latency accounting")
	}
	if net.Outstanding() != 0 {
		t.Fatalf("Outstanding = %d after RunAll", net.Outstanding())
	}
}

// TestFailRootLink: with the root request link dead, an injection cannot
// even enter the network; it must still complete as an error response
// (deferred, never reentrant) rather than vanish.
func TestFailRootLink(t *testing.T) {
	k, net := buildNet(t, topology.DaisyChain, 2, nil)
	completions := 0
	net.OnReadComplete = func(p *packet.Packet) {
		completions++
		if !p.Kind.IsError() {
			t.Fatalf("completion kind = %v, want an error", p.Kind)
		}
	}
	if err := net.FailLink(0); err != nil {
		t.Fatal(err)
	}
	id := net.InjectReadID(0, 0)
	if completions != 0 {
		t.Fatal("error completion delivered synchronously from InjectRead")
	}
	k.RunAll()
	if completions != 1 {
		t.Fatalf("completions = %d, want 1", completions)
	}
	if fs := net.FaultStats(); fs.ReadsFailed != 1 {
		t.Fatalf("ReadsFailed = %d, want 1", fs.ReadsFailed)
	}
	_ = id
}

// TestFailModuleStrandsInflight fails a module while traffic to it is in
// flight: stranded packets must resurface as error completions, not leak.
func TestFailModuleStrandsInflight(t *testing.T) {
	k, net := buildNet(t, topology.DaisyChain, 3, nil)
	reads, errs := 0, 0
	net.OnReadComplete = func(p *packet.Packet) {
		reads++
		if p.Kind.IsError() {
			errs++
		}
	}
	// Aim a burst at module 2 (the chain tail), then cut module 1 while
	// the packets are still traversing module 0/1 queues.
	for i := 0; i < 4; i++ {
		net.InjectRead(2*net.Cfg.ChunkBytes+uint64(i)*64, 0)
	}
	k.After(2*sim.Nanosecond, func() {
		if err := net.FailModule(1); err != nil {
			t.Error(err)
		}
	})
	k.RunAll()

	fs := net.FaultStats()
	if got := fs.ReadsFailed + fs.LostReads; got != 4 {
		t.Fatalf("failed+lost = %d (failed=%d lost=%d), want all 4", got, fs.ReadsFailed, fs.LostReads)
	}
	if reads != int(fs.ReadsFailed) {
		t.Fatalf("completions = %d, want %d error completions", reads, fs.ReadsFailed)
	}
	if net.Outstanding() != 0 {
		t.Fatalf("Outstanding = %d, want 0 (lost responses are terminal here)", net.Outstanding())
	}
}

// TestFailResponseLinkLosesResponse cuts only the response link after the
// request went through: the response is dropped on the dead link and
// counted lost — the frontend-timeout layer's job, not the network's.
func TestFailResponseLinkLosesResponse(t *testing.T) {
	k, net := buildNet(t, topology.DaisyChain, 2, nil)
	net.OnReadComplete = func(p *packet.Packet) { t.Fatalf("completion %v crossed a dead response link", p) }
	net.InjectRead(0, 0)
	// Request reaches module 0 in ~4.4 ns; DRAM access takes far longer.
	k.After(6*sim.Nanosecond, func() {
		if err := net.FailLink(1); err != nil { // module 0's response link
			t.Error(err)
		}
	})
	k.RunAll()
	fs := net.FaultStats()
	if fs.LostReads != 1 {
		t.Fatalf("LostReads = %d, want 1", fs.LostReads)
	}
	if net.Outstanding() != 0 {
		t.Fatalf("Outstanding = %d, want 0", net.Outstanding())
	}
}

// TestRouteReturnsErrorNotPanic locks in the panic→error conversion for
// unroutable packets (the old code crashed the whole simulation).
func TestRouteReturnsErrorNotPanic(t *testing.T) {
	_, net := buildNet(t, topology.DaisyChain, 3, nil)
	// Destination 0 is not strictly below module 1 — unroutable from there.
	err := net.Modules[1].route(&packet.Packet{ID: 1, Kind: packet.ReadReq, Dst: 0})
	if !errors.Is(err, ErrUnroutable) {
		t.Fatalf("route error = %v, want ErrUnroutable", err)
	}
	if fs := net.FaultStats(); fs.RoutingErrors != 1 {
		t.Fatalf("RoutingErrors = %d, want 1", fs.RoutingErrors)
	}
}

// TestErrorResponsesPayEnergy: degradation is not free — the error
// response generated below a cut travels the surviving links and its
// flits show up in the energy/traffic accounting.
func TestErrorResponsesPayEnergy(t *testing.T) {
	k, net := buildNet(t, topology.DaisyChain, 3, nil)
	// Cut module 2's request link: errors for dst=2 originate at module 1
	// and must cross module 1's and module 0's response links.
	if err := net.FailLink(2 * 2); err != nil {
		t.Fatal(err)
	}
	k.RunAll() // settle the failure itself
	resp0Busy := net.Links[1].BusyTime()
	flits0 := net.Modules[1].FlitsRouted()

	net.InjectRead(2*net.Cfg.ChunkBytes, 0)
	k.RunAll()

	if fs := net.FaultStats(); fs.ReadsFailed != 1 {
		t.Fatalf("ReadsFailed = %d, want 1", fs.ReadsFailed)
	}
	if net.Links[1].BusyTime() <= resp0Busy {
		t.Fatal("error response crossed module 0's response link without busy time")
	}
	if net.Modules[1].FlitsRouted() <= flits0 {
		t.Fatal("error response flits not accounted in routed traffic")
	}
}

// TestFailLinkValidation covers the error paths of the injection API.
func TestFailLinkValidation(t *testing.T) {
	_, net := buildNet(t, topology.DaisyChain, 2, nil)
	if err := net.FailLink(-1); err == nil {
		t.Fatal("FailLink(-1) accepted")
	}
	if err := net.FailLink(len(net.Links)); err == nil {
		t.Fatal("FailLink(out of range) accepted")
	}
	if err := net.FailLink(0); err != nil {
		t.Fatal(err)
	}
	if err := net.FailLink(0); err != nil {
		t.Fatalf("re-failing a dead link should be a no-op, got %v", err)
	}
	if fs := net.FaultStats(); fs.FailedLinks != 1 {
		t.Fatalf("FailedLinks = %d, want 1", fs.FailedLinks)
	}
}

// TestDumpStateMentionsFailure: the watchdog's diagnostic dump must make
// a severed subtree visible at a glance.
func TestDumpStateMentionsFailure(t *testing.T) {
	_, net := buildNet(t, topology.DaisyChain, 3, nil)
	if err := net.FailLink(2); err != nil {
		t.Fatal(err)
	}
	dump := net.DumpState()
	if dump == "" {
		t.Fatal("empty dump")
	}
	if !containsAll(dump, "UNREACHABLE", "failed") {
		t.Fatalf("dump does not surface the failure:\n%s", dump)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
