package network_test

import (
	"testing"

	"memnet/internal/core"
	"memnet/internal/link"
	"memnet/internal/network"
	"memnet/internal/packet"
	"memnet/internal/power"
	"memnet/internal/sim"
	"memnet/internal/topology"
)

// TestGlobalInvariantsUnderRandomTraffic drives random traffic through
// random topologies/mechanisms/policies and asserts the conservation
// properties that must hold regardless of configuration:
//
//  1. no packet loss: every injected read completes, every write retires
//     (after the network drains);
//  2. utilizations lie in [0, 1];
//  3. link energy is bounded by full power × time below and off power ×
//     time above;
//  4. the energy breakdown components are non-negative and the I/O share
//     equals the per-link sums;
//  5. hop counts equal twice the destination depth for reads.
func TestGlobalInvariantsUnderRandomTraffic(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		rng := sim.NewRNG(uint64(1000 + trial))
		kind := topology.Kinds[trial%len(topology.Kinds)]
		n := 2 + rng.Intn(12)
		mech := []link.Mechanism{link.MechNone, link.MechVWL, link.MechDVFS}[trial%3]
		roo := trial%2 == 0
		policy := []core.PolicyKind{core.PolicyNone, core.PolicyUnaware, core.PolicyAware}[trial%3]

		k := sim.NewKernel()
		topo, err := topology.Build(kind, n)
		if err != nil {
			t.Fatal(err)
		}
		cfg := network.DefaultConfig()
		cfg.Mechanism = mech
		cfg.ROO = roo
		net := network.New(k, topo, cfg)
		core.Attach(k, net, core.DefaultConfig(policy, 0.05))

		var issuedReads, issuedWrites uint64
		var hopErrs int
		net.OnReadComplete = func(p *packet.Packet) {
			// The completion packet is the response: Src is the module
			// that served the read.
			if p.Hops != 2*topo.Depth(p.Src) {
				hopErrs++
			}
		}
		horizon := 250 * sim.Microsecond
		var inject func()
		inject = func() {
			if k.Now() >= horizon {
				return
			}
			addr := uint64(rng.Intn(n))*cfg.ChunkBytes + uint64(rng.Intn(1<<20))*64
			if rng.Float64() < 0.7 {
				issuedReads++
				net.InjectRead(addr, -1)
			} else {
				issuedWrites++
				net.InjectWrite(addr, -1)
			}
			k.After(sim.Duration(rng.Intn(3000))*sim.Nanosecond, inject)
		}
		// A few concurrent injection chains.
		for i := 0; i < 4; i++ {
			inject()
		}
		k.Run(horizon)
		// Drain: run past the horizon with no new injections. Managed
		// networks re-arm epoch events forever, so run to a deadline.
		k.Run(horizon + 100*sim.Microsecond)

		label := func() string {
			return kind.String() + "/" + mech.String() + "/" + policy.String()
		}
		snap := net.TakeSnapshot()
		if snap.ReadsDone != issuedReads || snap.WritesDone != issuedWrites {
			t.Fatalf("%s: packet loss: reads %d/%d writes %d/%d",
				label(), snap.ReadsDone, issuedReads, snap.WritesDone, issuedWrites)
		}
		if hopErrs > 0 {
			t.Fatalf("%s: %d reads with wrong hop counts", label(), hopErrs)
		}
		elapsed := snap.At.Seconds()
		for _, l := range net.Links {
			u := float64(l.BusyTime()) / float64(snap.At)
			if u < 0 || u > 1 {
				t.Fatalf("%s: %v utilization %v", label(), l, u)
			}
			idle, active := l.EnergyJoules()
			total := idle + active
			// 1% headroom: ISP/grant control messages are charged on top
			// of the time-integrated link power.
			maxE := l.Config().FullWatts * elapsed * 1.01
			minE := l.Config().FullWatts * power.OffLinkFraction * elapsed * 0.9999
			if total > maxE || total < minE {
				t.Fatalf("%s: %v energy %v outside [%v, %v]", label(), l, total, minE, maxE)
			}
		}
		e := snap.Energy
		for name, v := range map[string]float64{
			"idleIO": e.IdleIO, "activeIO": e.ActiveIO,
			"logicLeak": e.LogicLeak, "logicDyn": e.LogicDyn,
			"dramLeak": e.DRAMLeak, "dramDyn": e.DRAMDyn,
		} {
			if v < 0 {
				t.Fatalf("%s: negative %s energy %v", label(), name, v)
			}
		}
	}
}

// TestReadsNeverLostUnderVaultPressure floods a single module beyond its
// vault queues from several chains and checks full completion.
func TestReadsNeverLostUnderVaultPressure(t *testing.T) {
	k := sim.NewKernel()
	topo, _ := topology.Build(topology.DaisyChain, 1)
	net := network.New(k, topo, network.DefaultConfig())
	const total = 2000
	issued := 0
	var inject func()
	inject = func() {
		if issued >= total {
			return
		}
		issued++
		net.InjectRead(uint64(issued%8)*64, -1) // 8 hot vaults
		k.After(1*sim.Nanosecond, inject)
	}
	for i := 0; i < 4; i++ {
		inject()
	}
	k.RunAll()
	if got := net.TakeSnapshot().ReadsDone; got != total {
		t.Fatalf("completed %d of %d reads", got, total)
	}
}

// TestEnergyMonotone checks that cumulative energy never decreases across
// snapshots.
func TestEnergyMonotone(t *testing.T) {
	k := sim.NewKernel()
	topo, _ := topology.Build(topology.Star, 4)
	cfg := network.DefaultConfig()
	cfg.Mechanism = link.MechVWL
	cfg.ROO = true
	net := network.New(k, topo, cfg)
	core.Attach(k, net, core.DefaultConfig(core.PolicyAware, 0.05))
	rng := sim.NewRNG(77)
	prev := net.TakeSnapshot()
	for step := 0; step < 10; step++ {
		for i := 0; i < 50; i++ {
			net.InjectRead(uint64(rng.Intn(4))*cfg.ChunkBytes+uint64(rng.Intn(4096))*64, -1)
		}
		k.Run(k.Now() + 50*sim.Microsecond)
		snap := net.TakeSnapshot()
		if snap.Energy.Total() < prev.Energy.Total() {
			t.Fatalf("energy decreased at step %d: %v -> %v",
				step, prev.Energy.Total(), snap.Energy.Total())
		}
		prev = snap
	}
}
