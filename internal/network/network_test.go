package network

import (
	"math"
	"testing"

	"memnet/internal/link"
	"memnet/internal/packet"
	"memnet/internal/sim"
	"memnet/internal/topology"
)

func buildNet(t *testing.T, kind topology.Kind, n int, mutate func(*Config)) (*sim.Kernel, *Network) {
	t.Helper()
	k := sim.NewKernel()
	topo, err := topology.Build(kind, n)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	return k, New(k, topo, cfg)
}

// unloadedReadLatency is the analytic end-to-end latency of a read to a
// module at the given hop depth on an idle full-power network.
func unloadedReadLatency(depth int, dramLat sim.Duration) sim.Duration {
	perHopReq := link.FlitTimeFull + link.SERDESBase + link.RouterLatency()
	perHopResp := 5*link.FlitTimeFull + link.SERDESBase + link.RouterLatency()
	// The response pays one extra router (origin module) and one
	// processor-side delivery router in this model.
	return sim.Duration(depth)*(perHopReq+perHopResp) + dramLat
}

func TestUnloadedReadLatencyDepth1(t *testing.T) {
	k, net := buildNet(t, topology.DaisyChain, 1, nil)
	var done sim.Time = -1
	net.OnReadComplete = func(p *packet.Packet) { done = k.Now() }
	net.InjectRead(0, 0)
	k.RunAll()
	want := unloadedReadLatency(1, net.Cfg.DRAM.NominalReadLatency())
	if done != want {
		t.Fatalf("read completed at %v, want %v", done, want)
	}
}

func TestUnloadedReadLatencyScalesWithDepth(t *testing.T) {
	k, net := buildNet(t, topology.DaisyChain, 4, nil)
	var times []sim.Time
	net.OnReadComplete = func(p *packet.Packet) { times = append(times, k.Now()-p.Issued) }
	for d := 0; d < 4; d++ {
		net.InjectRead(uint64(d)*net.Cfg.ChunkBytes, 0)
		k.RunAll()
	}
	dram := net.Cfg.DRAM.NominalReadLatency()
	for d := 0; d < 4; d++ {
		want := unloadedReadLatency(d+1, dram)
		if times[d] != want {
			t.Fatalf("depth %d latency = %v, want %v", d+1, times[d], want)
		}
	}
}

func TestRoutingReachesEveryModule(t *testing.T) {
	for _, kind := range topology.Kinds {
		k, net := buildNet(t, kind, 9, nil)
		got := map[int]bool{}
		for m := 0; m < 9; m++ {
			m := m
			mod := net.Modules[m]
			stats0 := mod.DRAM.Stats().Reads
			net.InjectRead(uint64(m)*net.Cfg.ChunkBytes+12345*64, 0)
			k.RunAll()
			if net.Modules[m].DRAM.Stats().Reads != stats0+1 {
				t.Fatalf("%v: read for module %d did not reach its DRAM", kind, m)
			}
			got[m] = true
		}
		if net.readsDone != 9 {
			t.Fatalf("%v: %d reads completed", kind, net.readsDone)
		}
	}
}

func TestHopsCountsRoundTrip(t *testing.T) {
	k, net := buildNet(t, topology.DaisyChain, 3, nil)
	var hops int
	net.OnReadComplete = func(p *packet.Packet) { hops = p.Hops }
	net.InjectRead(2*net.Cfg.ChunkBytes, 0) // deepest module, depth 3
	k.RunAll()
	if hops != 6 {
		t.Fatalf("hops = %d, want 6 (3 down + 3 up)", hops)
	}
	snapA := Snapshot{}
	snapB := net.TakeSnapshot()
	if got := LinksPerAccess(snapA, snapB); got != 6 {
		t.Fatalf("links/access = %v, want 6", got)
	}
}

func TestWriteCompletion(t *testing.T) {
	k, net := buildNet(t, topology.Star, 4, nil)
	var completed *packet.Packet
	net.OnWriteComplete = func(p *packet.Packet) { completed = p }
	net.InjectWrite(3*net.Cfg.ChunkBytes, 7)
	k.RunAll()
	if completed == nil || completed.Core != 7 {
		t.Fatal("write completion not delivered")
	}
	if net.writesDone != 1 {
		t.Fatalf("writesDone = %d", net.writesDone)
	}
}

func TestAddressMapping(t *testing.T) {
	_, net := buildNet(t, topology.DaisyChain, 4, nil)
	if net.ModuleFor(0) != 0 || net.ModuleFor(net.Cfg.ChunkBytes) != 1 ||
		net.ModuleFor(3*net.Cfg.ChunkBytes+5) != 3 {
		t.Fatal("contiguous mapping broken")
	}
	// Out-of-range clamps to the last module.
	if net.ModuleFor(100*net.Cfg.ChunkBytes) != 3 {
		t.Fatal("clamp broken")
	}
	if net.CapacityBytes() != 4*net.Cfg.ChunkBytes {
		t.Fatal("capacity wrong")
	}
}

func TestInterleavedMapping(t *testing.T) {
	_, net := buildNet(t, topology.DaisyChain, 4, func(c *Config) {
		c.Interleave = true
		c.PageBytes = 4096
	})
	if net.ModuleFor(0) != 0 || net.ModuleFor(4096) != 1 ||
		net.ModuleFor(2*4096) != 2 || net.ModuleFor(4*4096) != 0 {
		t.Fatal("page interleaving broken")
	}
}

func TestEnergyBreakdownComponents(t *testing.T) {
	k, net := buildNet(t, topology.DaisyChain, 2, nil)
	for i := 0; i < 100; i++ {
		net.InjectRead(uint64(i%2)*net.Cfg.ChunkBytes, 0)
		k.RunAll()
	}
	k.Run(k.Now() + 100*sim.Microsecond)
	snap := net.TakeSnapshot()
	e := snap.Energy
	if e.IdleIO <= 0 || e.ActiveIO <= 0 || e.LogicLeak <= 0 || e.LogicDyn <= 0 ||
		e.DRAMLeak <= 0 || e.DRAMDyn <= 0 {
		t.Fatalf("missing energy components: %+v", e)
	}
	// I/O energy must equal the sum over links.
	var linkE float64
	for _, l := range net.Links {
		idle, active := l.EnergyJoules()
		linkE += idle + active
	}
	if math.Abs(linkE-e.IO())/linkE > 1e-9 {
		t.Fatalf("I/O energy mismatch: links %v vs breakdown %v", linkE, e.IO())
	}
	// Leakage matches watts × time.
	elapsed := snap.At.Seconds()
	wantLeak := 2 * net.Modules[0].Params.DRAMLeakageWatts() * elapsed
	if math.Abs(e.DRAMLeak-wantLeak)/wantLeak > 1e-9 {
		t.Fatalf("DRAM leak = %v, want %v", e.DRAMLeak, wantLeak)
	}
}

func TestFullPowerIdleNetworkPower(t *testing.T) {
	// A completely idle full-power network must draw exactly leakage +
	// idle I/O: per low-radix module 2 × 0.586 W links + DRAM and logic
	// leakage.
	k, net := buildNet(t, topology.DaisyChain, 3, nil)
	k.Run(1 * sim.Millisecond)
	a := Snapshot{}
	b := net.TakeSnapshot()
	p := IntervalPower(a, b)
	params := net.Modules[0].Params
	wantPerHMC := 2*params.LinkFullWatts() + params.DRAMLeakageWatts() + params.LogicLeakageWatts()
	got := p.Total() / 3
	if math.Abs(got-wantPerHMC) > 1e-6 {
		t.Fatalf("idle power per HMC = %v, want %v", got, wantPerHMC)
	}
	if p.ActiveIO != 0 || p.DRAMDyn != 0 || p.LogicDyn != 0 {
		t.Fatalf("idle network has dynamic power: %+v", p)
	}
}

func TestSnapshotIntervalMetrics(t *testing.T) {
	k, net := buildNet(t, topology.DaisyChain, 2, nil)
	warm := net.TakeSnapshot()
	n := 200
	done := 0
	var issue func()
	issue = func() {
		if done >= n {
			return
		}
		net.InjectRead(uint64(done%2)*net.Cfg.ChunkBytes, 0)
	}
	net.OnReadComplete = func(*packet.Packet) { done++; issue() }
	issue()
	k.RunAll()
	end := net.TakeSnapshot()
	if got := Throughput(warm, end); got <= 0 {
		t.Fatal("zero throughput")
	}
	if got := AvgReadLatency(warm, end); got < 30*sim.Nanosecond {
		t.Fatalf("avg latency = %v", got)
	}
	if got := ChannelUtilization(warm, end); got <= 0 || got > 1 {
		t.Fatalf("channel util = %v", got)
	}
	if got := AvgLinkUtilization(warm, end); got <= 0 || got > 1 {
		t.Fatalf("link util = %v", got)
	}
}

func TestVaultOverflowRetries(t *testing.T) {
	// Flood one vault of one module far past its 16-entry queue: all
	// reads must eventually complete via the pending-retry path.
	k, net := buildNet(t, topology.DaisyChain, 1, nil)
	const n = 100
	for i := 0; i < n; i++ {
		net.InjectRead(0, 0) // same line, same vault
	}
	k.RunAll()
	if net.readsDone != n {
		t.Fatalf("completed %d of %d reads", net.readsDone, n)
	}
}

func TestProactiveRespWakeWiring(t *testing.T) {
	k, net := buildNet(t, topology.DaisyChain, 1, func(c *Config) { c.ROO = true })
	l := net.Modules[0].UpResp
	l.SetROOMode(0)
	// Let the response link turn off, then issue a read: the wake must
	// begin when the DRAM read starts, not when the response arrives.
	net.InjectRead(0, 0)
	k.RunAll()
	if l.State() != link.StateOff {
		t.Fatalf("response link state = %v, want off", l.State())
	}
	var wakeAt sim.Time = -1
	l.OnWakeStart = func() { wakeAt = k.Now() }
	start := k.Now()
	net.InjectRead(64, 0)
	k.RunAll()
	// The request link (also ROO, 2048 ns mode) is off by now too, so the
	// request first pays its wakeup before serializing.
	reqArrive := start + net.Cfg.Wakeup + link.FlitTimeFull + link.SERDESBase + link.RouterLatency()
	if wakeAt != reqArrive {
		t.Fatalf("wake began at %v, want %v (DRAM read start)", wakeAt, reqArrive)
	}
}

func TestIntervalHelpersZeroWidth(t *testing.T) {
	k, net := buildNet(t, topology.DaisyChain, 1, nil)
	_ = k
	s := net.TakeSnapshot()
	if network := IntervalPower(s, s); network.Total() != 0 {
		t.Fatal("zero-width interval power")
	}
	if Throughput(s, s) != 0 || ChannelUtilization(s, s) != 0 ||
		AvgLinkUtilization(s, s) != 0 || LinksPerAccess(s, s) != 0 ||
		AvgReadLatency(s, s) != 0 {
		t.Fatal("zero-width interval metrics not zero")
	}
}

func TestLatencyHistResetAtWarmup(t *testing.T) {
	k, net := buildNet(t, topology.DaisyChain, 1, nil)
	net.InjectRead(0, 0)
	k.RunAll()
	if net.LatencyHist().Count() != 1 {
		t.Fatal("histogram missed a read")
	}
	net.LatencyHist().Reset()
	net.InjectRead(64, 0)
	k.RunAll()
	if net.LatencyHist().Count() != 1 {
		t.Fatal("reset did not isolate the interval")
	}
}
