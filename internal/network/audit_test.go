package network_test

import (
	"testing"

	"memnet/internal/audit"
	"memnet/internal/core"
	"memnet/internal/link"
	"memnet/internal/network"
	"memnet/internal/sim"
	"memnet/internal/topology"
)

// driveAudited builds an audited managed network on kind, drives random
// traffic (optionally failing a random link mid-run), drains it, and
// returns the auditor and network for the caller's assertions.
func driveAudited(t *testing.T, kind topology.Kind, seed uint64, failLink bool) (*audit.Auditor, *network.Network) {
	t.Helper()
	rng := sim.NewRNG(seed)
	n := 2 + rng.Intn(10)
	k := sim.NewKernel()
	topo, err := topology.Build(kind, n)
	if err != nil {
		t.Fatal(err)
	}
	cfg := network.DefaultConfig()
	cfg.Mechanism = link.MechVWL
	cfg.ROO = true
	net := network.New(k, topo, cfg)
	core.Attach(k, net, core.DefaultConfig(core.PolicyAware, 0.05))
	a := audit.New(audit.Config{SampleEvery: 1, SweepEvery: 1024}, k.Now)
	net.AttachAudit(a)

	horizon := 150 * sim.Microsecond
	var inject func()
	inject = func() {
		if k.Now() >= horizon {
			return
		}
		addr := uint64(rng.Intn(n))*cfg.ChunkBytes + uint64(rng.Intn(1<<20))*64
		if rng.Float64() < 0.7 {
			net.InjectRead(addr, -1)
		} else {
			net.InjectWrite(addr, -1)
		}
		k.After(sim.Duration(rng.Intn(3000))*sim.Nanosecond, inject)
	}
	for i := 0; i < 4; i++ {
		inject()
	}
	if failLink {
		k.Schedule(horizon/2, func() {
			if err := net.FailLink(rng.Intn(len(net.Links))); err != nil {
				t.Errorf("FailLink: %v", err)
			}
		})
	}
	k.Run(horizon)
	k.Run(horizon + 100*sim.Microsecond) // drain with no new injections
	a.RunSweeps()
	return a, net
}

// TestAuditCleanOnAllTopologies runs the full-rate auditor over random
// managed traffic on every topology and requires zero violations plus a
// fully quiesced network after the drain.
func TestAuditCleanOnAllTopologies(t *testing.T) {
	for i, kind := range topology.Kinds {
		a, net := driveAudited(t, kind, uint64(2000+i), false)
		if a.Count() != 0 {
			t.Errorf("%v: %d violations: %v", kind, a.Count(), a.Violations())
		}
		if a.Observations() == 0 {
			t.Errorf("%v: auditor observed nothing — hooks not wired", kind)
		}
		if err := net.CheckQuiesced(); err != nil {
			t.Errorf("%v: %v", kind, err)
		}
	}
}

// TestAuditCleanUnderLinkFailure repeats the property with a random link
// killed mid-run: graceful degradation (error responses, accounted
// losses) must still satisfy every audited invariant, and the quiesce
// check must hold because losses are terminal outcomes.
func TestAuditCleanUnderLinkFailure(t *testing.T) {
	for i, kind := range topology.Kinds {
		a, net := driveAudited(t, kind, uint64(3000+i), true)
		if a.Count() != 0 {
			t.Errorf("%v: %d violations under link failure: %v", kind, a.Count(), a.Violations())
		}
		if err := net.CheckQuiesced(); err != nil {
			t.Errorf("%v: %v", kind, err)
		}
	}
}

// TestCheckQuiescedDetectsInFlight pins the quiesce check itself: a
// request injected but not yet completed is in flight.
func TestCheckQuiescedDetectsInFlight(t *testing.T) {
	k := sim.NewKernel()
	topo, _ := topology.Build(topology.Star, 2)
	net := network.New(k, topo, network.DefaultConfig())
	net.InjectRead(64, -1)
	if err := net.CheckQuiesced(); err == nil {
		t.Fatal("in-flight request not detected")
	}
	k.RunAll()
	if err := net.CheckQuiesced(); err != nil {
		t.Fatalf("drained network reported: %v", err)
	}
}
