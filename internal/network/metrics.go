package network

import (
	"memnet/internal/link"
	"memnet/internal/metrics"
	"memnet/internal/stats"
)

// AttachMetrics registers the network's time-series on reg, fanning out
// over links and DRAMs the same way AttachAudit does for invariants. All
// samplers are read-only pulls over counters the simulation already
// maintains — attaching a nil registry (the disabled path) registers
// nothing, and an attached registry schedules nothing until Start.
//
// The link residency series answer the paper's central time-resolved
// question — what fraction of link time is spent off/waking versus
// powered — while the queue and latency series localize where wakeup
// cascades and management slowdowns buffer traffic.
func (n *Network) AttachMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	// Per-power-state link residency, summed over all links, as
	// picoseconds of residency gained per sampling interval.
	for s := 0; s < link.NumStates; s++ {
		s := s
		reg.Counter("link.residency."+link.State(s).String()+"_ps", func() float64 {
			total := 0.0
			for _, l := range n.Links {
				total += float64(l.StateTimes(n.Kernel.Now())[s])
			}
			return total
		})
	}
	reg.Counter("link.crc_retries", func() float64 {
		var total uint64
		for _, l := range n.Links {
			total += l.Retries()
		}
		return float64(total)
	})
	reg.Gauge("link.buffer_occupancy", func() float64 {
		total := 0
		for _, l := range n.Links {
			total += l.QueueLen()
		}
		return float64(total)
	})
	reg.Gauge("network.in_flight", func() float64 { return float64(n.Outstanding()) })
	reg.Counter("network.reads_completed", func() float64 { return float64(n.readsDone) })
	reg.Counter("network.read_latency_ps", func() float64 { return float64(n.readLatSum) })
	reg.Counter("network.read_hops", func() float64 { return float64(n.readHops) })
	reg.HistogramSeries("network.read_latency_hist", latencyBounds(), func(cum []uint64) {
		n.latHist.CopyBuckets(cum)
	})
	reg.Gauge("dram.vault_queue_depth", func() float64 {
		total := 0
		for _, m := range n.Modules {
			total += m.DRAM.QueuedRequests()
		}
		return float64(total)
	})
	reg.Gauge("dram.outstanding_reads", func() float64 {
		total := 0
		for _, m := range n.Modules {
			total += m.DRAM.OutstandingReads()
		}
		return float64(total)
	})
}

// latencyBounds mirrors stats.LatencyHist's log₂ layout: bucket i counts
// read latencies of bit length i, so its inclusive upper edge is
// 2^i − 1 picoseconds.
func latencyBounds() []float64 {
	bounds := make([]float64, stats.NumBuckets)
	for i := range bounds {
		bounds[i] = float64(uint64(1)<<uint(i) - 1)
	}
	return bounds
}
