package metrics

import (
	"bytes"
	"strings"
	"testing"

	"memnet/internal/sim"
)

func exportFixture() []Entry {
	d := &Dump{
		Interval: 10 * sim.Microsecond,
		Ticks:    3,
		Dropped:  1,
		Series: []SeriesDump{
			{Name: "c", Kind: "counter", Samples: []float64{1.5, 2}},
			{Name: "h", Kind: "histogram", Bounds: []float64{10, 100},
				Hist: [][]uint64{{0, 3}, {1, 0}}},
		},
	}
	return []Entry{{Key: "cell-a", Dump: d}, {Key: "skip", Dump: nil}, {Key: "cell-b", Dump: d}}
}

func TestWriteJSONL(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, exportFixture()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 { // 2 series × 2 live entries; nil dump skipped
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), buf.String())
	}
	want := `{"key":"cell-a","series":"c","kind":"counter","interval_ps":10000000,"start_ps":0,"first_tick":2,"samples":[1.5,2]}`
	if lines[0] != want {
		t.Errorf("line 0:\n got %s\nwant %s", lines[0], want)
	}
	if !strings.Contains(lines[1], `"bounds":[10,100]`) || !strings.Contains(lines[1], `"hist":[[0,3],[1,0]]`) {
		t.Errorf("histogram line missing bounds/hist: %s", lines[1])
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, exportFixture()); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	wantLines := []string{
		"key,series,kind,tick,time_ps,bucket_le,value",
		"cell-a,c,counter,2,20000000,,1.5",
		"cell-a,c,counter,3,30000000,,2",
		"cell-a,h,histogram,2,20000000,100,3", // zero buckets omitted
		"cell-a,h,histogram,3,30000000,10,1",
	}
	for _, w := range wantLines {
		if !strings.Contains(got, w+"\n") {
			t.Errorf("CSV missing line %q in:\n%s", w, got)
		}
	}
	if strings.Contains(got, ",0\n") {
		t.Errorf("CSV contains a zero histogram bucket row:\n%s", got)
	}
}

func TestCSVQuoting(t *testing.T) {
	d := &Dump{Interval: 1, Series: []SeriesDump{{Name: "c", Kind: "counter", Samples: []float64{1}}}}
	var buf bytes.Buffer
	key := `mix|f={"seed":1,"x":"a,b"}`
	if err := WriteCSV(&buf, []Entry{{Key: key, Dump: d}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"mix|f={""seed"":1,""x"":""a,b""}"`) {
		t.Errorf("fault-scenario key not CSV-quoted:\n%s", buf.String())
	}
}

// TestExportDeterminism: identical entries produce identical bytes —
// the foundation of the -jobs 1 vs -jobs 8 export guarantee.
func TestExportDeterminism(t *testing.T) {
	var a, b, ca, cb bytes.Buffer
	if err := WriteJSONL(&a, exportFixture()); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&b, exportFixture()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("JSONL export not byte-deterministic")
	}
	if err := WriteCSV(&ca, exportFixture()); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&cb, exportFixture()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca.Bytes(), cb.Bytes()) {
		t.Error("CSV export not byte-deterministic")
	}
}
