// JSON-lines and CSV exporters. Both walk entries in slice order and
// series in registration order, so the bytes written are a pure function
// of the dumps — the sweep executor collects dumps in sweep order, which
// makes the exported file identical at any -jobs value.
package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Entry pairs one run's identity (its spec key) with its dump.
type Entry struct {
	Key  string
	Dump *Dump
}

// jsonlLine is one exported line: a single series of a single run.
type jsonlLine struct {
	Key        string `json:"key"`
	Series     string `json:"series"`
	Kind       string `json:"kind"`
	IntervalPS int64  `json:"interval_ps"`
	StartPS    int64  `json:"start_ps"`
	// FirstTick is the 1-based tick index of Samples[0]/Hist[0]
	// (greater than 1 when the ring wrapped and early ticks dropped).
	FirstTick int        `json:"first_tick"`
	Samples   []float64  `json:"samples,omitempty"`
	Bounds    []float64  `json:"bounds,omitempty"`
	Hist      [][]uint64 `json:"hist,omitempty"`
}

// WriteJSONL emits one JSON object per line per (run, series), in entry
// then registration order. Nil dumps (disabled runs) are skipped.
func WriteJSONL(w io.Writer, entries []Entry) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range entries {
		if e.Dump == nil {
			continue
		}
		for _, s := range e.Dump.Series {
			line := jsonlLine{
				Key:        e.Key,
				Series:     s.Name,
				Kind:       s.Kind,
				IntervalPS: int64(e.Dump.Interval),
				StartPS:    int64(e.Dump.Start),
				FirstTick:  e.Dump.Dropped + 1,
				Samples:    s.Samples,
				Bounds:     s.Bounds,
				Hist:       s.Hist,
			}
			if err := enc.Encode(line); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteCSV emits a long-format table: one row per retained sample for
// counters/gauges, one row per non-zero bucket per retained sample for
// histograms. time_ps is the end of the sample's interval. Nil dumps
// are skipped.
func WriteCSV(w io.Writer, entries []Entry) error {
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, "key,series,kind,tick,time_ps,bucket_le,value\n"); err != nil {
		return err
	}
	for _, e := range entries {
		if e.Dump == nil {
			continue
		}
		d := e.Dump
		key := csvQuote(e.Key)
		tickTime := func(j int) int64 {
			return int64(d.Start) + int64(d.Dropped+j+1)*int64(d.Interval)
		}
		for _, s := range d.Series {
			for j, v := range s.Samples {
				fmt.Fprintf(bw, "%s,%s,%s,%d,%d,,%s\n",
					key, s.Name, s.Kind, d.Dropped+j+1, tickTime(j), formatFloat(v))
			}
			for j, row := range s.Hist {
				for b, c := range row {
					if c == 0 {
						continue
					}
					fmt.Fprintf(bw, "%s,%s,%s,%d,%d,%s,%d\n",
						key, s.Name, s.Kind, d.Dropped+j+1, tickTime(j),
						formatFloat(s.Bounds[b]), c)
				}
			}
		}
	}
	return bw.Flush()
}

// formatFloat renders v the way encoding/json does (shortest round-trip
// form), keeping the two exporters' numbers byte-compatible.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// csvQuote wraps a field in quotes when it contains CSV metacharacters
// (spec keys contain no commas today, but fault-scenario keys embed
// JSON).
func csvQuote(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
