// Package metrics is the epoch-resolution time-series subsystem: named
// counters, gauges and fixed-bucket histograms registered per component,
// sampled by a kernel-driven ticker into preallocated ring buffers. The
// paper's core claims are time-resolved — idle I/O dominance, wakeup
// cascades, per-epoch slack — and this package records how those
// quantities evolve over a run instead of only reporting end-of-run
// aggregates.
//
// Design rules, in priority order:
//
//   - Disabled must be free. A nil *Registry is a valid receiver for
//     every method; components hold the nil handle and pay one branch.
//     No ticker events are scheduled, so the kernel event sequence — and
//     therefore every simulation result — is byte-identical to a build
//     without metrics (the golden CLI tests pin this).
//   - Sampling is pull-based and allocation-free. Components register
//     closures over counters they already maintain; a tick reads them
//     into rings preallocated at Start (TestObserveZeroAllocs asserts 0
//     allocs/tick). The sampler never mutates simulation state.
//   - Everything is deterministic. Series iterate in registration order
//     (component build order), ticks fire at fixed kernel times, and the
//     exported dump of a sweep cell is a pure function of its spec — so
//     a -jobs 8 sweep exports byte-identical metrics to -jobs 1.
//
// Ring buffers hold the last Capacity samples per series; earlier
// samples fall off the front and are reported via Dump.Dropped rather
// than silently lost.
package metrics

import (
	"fmt"

	"memnet/internal/sim"
)

// Kind discriminates how a series is sampled and stored.
type Kind uint8

const (
	// Counter samples a cumulative, monotone value; the ring stores the
	// per-tick delta (rate × interval).
	Counter Kind = iota
	// Gauge samples an instantaneous value; the ring stores it as-is.
	Gauge
	// Histogram samples cumulative fixed-bucket counts; the ring stores
	// per-tick bucket deltas.
	Histogram
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Counter:
		return "counter"
	case Gauge:
		return "gauge"
	case Histogram:
		return "histogram"
	}
	return fmt.Sprintf("kind(%d)", k)
}

// Defaults. The interval is finer than the 100 µs management epoch so a
// run resolves intra-epoch structure (wakeup cascades, queue spikes);
// the capacity covers 10 ms of simulated time at the default interval —
// the paper's own measurement window — before the ring wraps.
const (
	DefaultCapacity = 1024
)

// DefaultInterval is the sampling period when none is configured.
var DefaultInterval = 10 * sim.Microsecond

// Config parameterizes a Registry.
type Config struct {
	// Interval is the sampling period (0 = DefaultInterval).
	Interval sim.Duration
	// Capacity is the per-series ring size in samples (0 =
	// DefaultCapacity). When a run outlasts the ring, the oldest samples
	// are dropped and counted in Dump.Dropped.
	Capacity int
}

// series is one registered time-series.
type series struct {
	name    string
	kind    Kind
	sample  func() float64     // Counter, Gauge
	sampleH func(cum []uint64) // Histogram: fill cumulative bucket counts
	bounds  []float64          // Histogram: inclusive upper bucket edges
	prev    float64            // Counter: previous cumulative sample
	prevH   []uint64           // Histogram: previous cumulative buckets
	curH    []uint64           // Histogram: scratch for the current pull
	ring    []float64          // Counter/Gauge ring, len == capacity
	ringH   []uint64           // Histogram ring, len == capacity × len(bounds)
}

// Registry owns the series of one simulation run and drives the ticker.
// The zero registry pointer (nil) is inert: every method is a no-op.
type Registry struct {
	kernel   *sim.Kernel
	interval sim.Duration
	capacity int
	start    sim.Time // kernel time of Start (tick k fires at start + k·interval)
	ticks    int      // completed ticks
	series   []*series
	started  bool
}

// New builds a registry bound to k. Components register series before
// Start arms the ticker.
func New(k *sim.Kernel, cfg Config) *Registry {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	return &Registry{kernel: k, interval: cfg.Interval, capacity: cfg.Capacity}
}

// NewManual builds a registry with no kernel and no ticker: the owner
// calls Observe explicitly after StartManual. This is the wall-clock
// variant used outside a simulation — the distributed sweep coordinator
// samples its lease/completion gauges this way — so Dump.Interval is a
// nominal label, not a sampling guarantee: samples land whenever the
// owner observes. The owner must also serialize Observe/Dump calls; the
// registry itself is not goroutine-safe.
func NewManual(cfg Config) *Registry {
	return New(nil, cfg)
}

// Interval returns the sampling period (0 on a nil registry).
func (r *Registry) Interval() sim.Duration {
	if r == nil {
		return 0
	}
	return r.interval
}

// Counter registers a cumulative series; sample must be monotone
// non-decreasing (the ring stores per-tick deltas). Nil-safe.
func (r *Registry) Counter(name string, sample func() float64) {
	if r == nil {
		return
	}
	r.add(&series{name: name, kind: Counter, sample: sample})
}

// Gauge registers an instantaneous series. Nil-safe.
func (r *Registry) Gauge(name string, sample func() float64) {
	if r == nil {
		return
	}
	r.add(&series{name: name, kind: Gauge, sample: sample})
}

// HistogramSeries registers a fixed-bucket histogram series: bounds are
// the inclusive upper edges of len(bounds) buckets, and sample must fill
// cum (len(bounds) long) with cumulative counts. The ring stores
// per-tick deltas per bucket. Nil-safe.
func (r *Registry) HistogramSeries(name string, bounds []float64, sample func(cum []uint64)) {
	if r == nil {
		return
	}
	b := len(bounds)
	r.add(&series{
		name:    name,
		kind:    Histogram,
		sampleH: sample,
		bounds:  append([]float64(nil), bounds...),
		prevH:   make([]uint64, b),
		curH:    make([]uint64, b),
	})
}

func (r *Registry) add(s *series) {
	if r.started {
		panic("metrics: registration after Start")
	}
	for _, have := range r.series {
		if have.name == s.name {
			panic("metrics: duplicate series " + s.name)
		}
	}
	r.series = append(r.series, s)
}

// Start preallocates every ring and schedules sampling ticks at fixed
// kernel times now+i, now+2i, … up to and including until. Nil-safe.
// Without Start no events are scheduled and the registry stays silent.
// On a manual (kernel-less) registry it is StartManual.
func (r *Registry) Start(until sim.Time) {
	if r == nil || r.started {
		return
	}
	r.begin()
	if r.kernel != nil {
		r.scheduleTick(until)
	}
}

// StartManual preallocates every ring and takes the baseline pull
// without scheduling any ticker: subsequent samples come from explicit
// Observe calls. Nil-safe. Use with NewManual.
func (r *Registry) StartManual() {
	if r == nil || r.started {
		return
	}
	r.begin()
}

// begin is the shared arming path: mark started, record the start time,
// preallocate rings, and take the baseline pull so the first sample's
// counter deltas cover exactly one interval even when counters advanced
// before Start (e.g. warmup).
func (r *Registry) begin() {
	r.started = true
	if r.kernel != nil {
		r.start = r.kernel.Now()
	}
	for _, s := range r.series {
		if s.kind == Histogram {
			s.ringH = make([]uint64, r.capacity*len(s.bounds))
		} else {
			s.ring = make([]float64, r.capacity)
		}
	}
	for _, s := range r.series {
		switch s.kind {
		case Counter:
			s.prev = s.sample()
		case Histogram:
			s.sampleH(s.prevH)
			copy(s.curH, s.prevH)
		}
	}
}

func (r *Registry) scheduleTick(until sim.Time) {
	next := r.kernel.Now() + sim.Time(r.interval)
	if next > until {
		return
	}
	r.kernel.Schedule(next, func() {
		r.Observe()
		r.scheduleTick(until)
	})
}

// Observe takes one sample of every series. It is the ticker's body,
// exported for benchmarks and the zero-alloc test; callers normally
// never invoke it directly. Nil-safe.
func (r *Registry) Observe() {
	if r == nil || !r.started {
		return
	}
	slot := r.ticks % r.capacity
	for _, s := range r.series {
		switch s.kind {
		case Counter:
			cur := s.sample()
			s.ring[slot] = cur - s.prev
			s.prev = cur
		case Gauge:
			s.ring[slot] = s.sample()
		case Histogram:
			s.sampleH(s.curH)
			row := s.ringH[slot*len(s.bounds) : (slot+1)*len(s.bounds)]
			for i, c := range s.curH {
				row[i] = c - s.prevH[i]
			}
			copy(s.prevH, s.curH)
		}
	}
	r.ticks++
}

// Ticks returns the number of completed sampling ticks. Nil-safe.
func (r *Registry) Ticks() int {
	if r == nil {
		return 0
	}
	return r.ticks
}

// Dump freezes the registry into an exportable, JSON-friendly snapshot.
// Samples are returned in chronological order; when the ring wrapped,
// the oldest retained sample is tick Dropped+1. Returns nil on a nil
// registry (the disabled path). Nil-safe.
func (r *Registry) Dump() *Dump {
	if r == nil {
		return nil
	}
	n := r.ticks
	if n > r.capacity {
		n = r.capacity
	}
	d := &Dump{
		Interval: r.interval,
		Start:    r.start,
		Ticks:    r.ticks,
		Dropped:  r.ticks - n,
		Series:   make([]SeriesDump, 0, len(r.series)),
	}
	first := r.ticks - n // ring index of the oldest retained sample
	for _, s := range r.series {
		sd := SeriesDump{Name: s.name, Kind: s.kind.String()}
		if s.kind == Histogram {
			b := len(s.bounds)
			sd.Bounds = append([]float64(nil), s.bounds...)
			sd.Hist = make([][]uint64, n)
			for j := 0; j < n; j++ {
				slot := (first + j) % r.capacity
				sd.Hist[j] = append([]uint64(nil), s.ringH[slot*b:(slot+1)*b]...)
			}
		} else {
			sd.Samples = make([]float64, n)
			for j := 0; j < n; j++ {
				sd.Samples[j] = s.ring[(first+j)%r.capacity]
			}
		}
		d.Series = append(d.Series, sd)
	}
	return d
}

// Dump is the frozen, exportable form of a registry.
type Dump struct {
	// Interval is the sampling period; retained sample j (0-based)
	// covers simulated time Start + (Dropped+j)·Interval .. + Interval.
	Interval sim.Duration `json:"interval_ps"`
	// Start is the kernel time sampling began.
	Start sim.Time `json:"start_ps"`
	// Ticks counts every sample taken; Dropped counts those lost to ring
	// wraparound (oldest first).
	Ticks   int          `json:"ticks"`
	Dropped int          `json:"dropped,omitempty"`
	Series  []SeriesDump `json:"series"`
}

// SeriesDump is one frozen series.
type SeriesDump struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Samples holds counter deltas or gauge values, oldest first.
	Samples []float64 `json:"samples,omitempty"`
	// Bounds and Hist carry histogram series: Hist[j][i] is the count
	// added to bucket i (upper edge Bounds[i]) during retained tick j.
	Bounds []float64  `json:"bounds,omitempty"`
	Hist   [][]uint64 `json:"hist,omitempty"`
}

// Merge combines dumps with identical schemas (same interval, same
// series names/kinds/bounds in the same order) into one aggregate:
// counters, gauges and histogram buckets sum element-wise, and shorter
// dumps zero-pad to the longest. Summation runs in argument order, so
// callers that pass dumps in sweep order get bit-identical aggregates
// regardless of how many workers produced them. Nil dumps are skipped;
// merging zero dumps returns nil.
func Merge(dumps ...*Dump) (*Dump, error) {
	var live []*Dump
	for _, d := range dumps {
		if d != nil {
			live = append(live, d)
		}
	}
	if len(live) == 0 {
		return nil, nil
	}
	base := live[0]
	out := &Dump{
		Interval: base.Interval,
		Start:    base.Start,
		Series:   make([]SeriesDump, len(base.Series)),
	}
	for i, s := range base.Series {
		out.Series[i] = SeriesDump{Name: s.Name, Kind: s.Kind, Bounds: append([]float64(nil), s.Bounds...)}
	}
	for _, d := range live {
		if d.Interval != base.Interval {
			return nil, fmt.Errorf("metrics: merge interval mismatch: %s vs %s",
				base.Interval, d.Interval)
		}
		if len(d.Series) != len(base.Series) {
			return nil, fmt.Errorf("metrics: merge series count mismatch: %d vs %d",
				len(base.Series), len(d.Series))
		}
		if d.Ticks > out.Ticks {
			out.Ticks = d.Ticks
		}
		if d.Dropped > out.Dropped {
			out.Dropped = d.Dropped
		}
		for i := range d.Series {
			src, dst := &d.Series[i], &out.Series[i]
			if src.Name != dst.Name || src.Kind != dst.Kind || len(src.Bounds) != len(dst.Bounds) {
				return nil, fmt.Errorf("metrics: merge schema mismatch at series %d: %s/%s vs %s/%s",
					i, dst.Name, dst.Kind, src.Name, src.Kind)
			}
			for len(dst.Samples) < len(src.Samples) {
				dst.Samples = append(dst.Samples, 0)
			}
			for j, v := range src.Samples {
				dst.Samples[j] += v
			}
			for len(dst.Hist) < len(src.Hist) {
				dst.Hist = append(dst.Hist, make([]uint64, len(dst.Bounds)))
			}
			for j, row := range src.Hist {
				for b, c := range row {
					dst.Hist[j][b] += c
				}
			}
		}
	}
	return out, nil
}
