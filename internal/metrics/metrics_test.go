package metrics

import (
	"reflect"
	"testing"

	"memnet/internal/sim"
)

// tickerFixture builds a registry over a live kernel with one counter,
// one gauge and one 3-bucket histogram driven by plain variables.
type tickerFixture struct {
	kernel *sim.Kernel
	reg    *Registry
	cum    float64
	gauge  float64
	hist   [3]uint64
}

func newFixture(cfg Config) *tickerFixture {
	f := &tickerFixture{kernel: sim.NewKernel()}
	f.reg = New(f.kernel, cfg)
	f.reg.Counter("c", func() float64 { return f.cum })
	f.reg.Gauge("g", func() float64 { return f.gauge })
	f.reg.HistogramSeries("h", []float64{10, 100, 1000}, func(cum []uint64) {
		copy(cum, f.hist[:])
	})
	return f
}

func TestTickerSamplesAtFixedTimes(t *testing.T) {
	f := newFixture(Config{Interval: 10 * sim.Microsecond})
	until := sim.Time(55 * sim.Microsecond)
	// Drive the instrumented values from kernel events between ticks.
	for i := 1; i <= 5; i++ {
		i := i
		f.kernel.Schedule(sim.Time(i*10-5)*sim.Time(sim.Microsecond), func() {
			f.cum += float64(i) // counter delta i in tick i
			f.gauge = float64(10 * i)
			f.hist[i%3]++
		})
	}
	f.reg.Start(until)
	f.kernel.Run(until)

	d := f.reg.Dump()
	if d.Ticks != 5 || d.Dropped != 0 {
		t.Fatalf("ticks=%d dropped=%d, want 5/0", d.Ticks, d.Dropped)
	}
	wantC := []float64{1, 2, 3, 4, 5}
	if !reflect.DeepEqual(d.Series[0].Samples, wantC) {
		t.Errorf("counter deltas = %v, want %v", d.Series[0].Samples, wantC)
	}
	wantG := []float64{10, 20, 30, 40, 50}
	if !reflect.DeepEqual(d.Series[1].Samples, wantG) {
		t.Errorf("gauge samples = %v, want %v", d.Series[1].Samples, wantG)
	}
	wantH := [][]uint64{{0, 1, 0}, {0, 0, 1}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	if !reflect.DeepEqual(d.Series[2].Hist, wantH) {
		t.Errorf("hist deltas = %v, want %v", d.Series[2].Hist, wantH)
	}
}

// TestStartBaseline: counters that advanced before Start (warmup) must
// not leak into the first tick's delta.
func TestStartBaseline(t *testing.T) {
	f := newFixture(Config{Interval: sim.Duration(sim.Microsecond)})
	f.cum = 1000
	f.hist[0] = 7
	f.reg.Start(sim.Time(2 * sim.Microsecond))
	f.kernel.Run(sim.Time(2 * sim.Microsecond))
	d := f.reg.Dump()
	if got := d.Series[0].Samples[0]; got != 0 {
		t.Errorf("first counter delta = %g, want 0 (pre-Start cum excluded)", got)
	}
	if got := d.Series[2].Hist[0][0]; got != 0 {
		t.Errorf("first hist delta = %d, want 0", got)
	}
}

// TestRingWraparound: table-driven coverage of the ring keeping exactly
// the last Capacity samples with Dropped accounting the rest.
func TestRingWraparound(t *testing.T) {
	cases := []struct {
		name        string
		capacity    int
		ticks       int
		wantKept    int
		wantDropped int
		wantFirst   float64 // oldest retained counter delta (deltas are 1,2,3,…)
	}{
		{"under capacity", 8, 5, 5, 0, 1},
		{"exactly full", 8, 8, 8, 0, 1},
		{"wrap by one", 8, 9, 8, 1, 2},
		{"wrap full cycle", 4, 8, 4, 4, 5},
		{"wrap many", 4, 11, 4, 7, 8},
		{"capacity one", 1, 6, 1, 5, 6},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := newFixture(Config{Interval: sim.Duration(sim.Microsecond), Capacity: tc.capacity})
			for i := 1; i <= tc.ticks; i++ {
				i := i
				f.kernel.Schedule(sim.Time(i)*sim.Time(sim.Microsecond)-1, func() {
					f.cum += float64(i)
					f.hist[0] += uint64(i)
				})
			}
			until := sim.Time(tc.ticks) * sim.Time(sim.Microsecond)
			f.reg.Start(until)
			f.kernel.Run(until)
			d := f.reg.Dump()
			if d.Ticks != tc.ticks || d.Dropped != tc.wantDropped {
				t.Fatalf("ticks=%d dropped=%d, want %d/%d", d.Ticks, d.Dropped, tc.ticks, tc.wantDropped)
			}
			got := d.Series[0].Samples
			if len(got) != tc.wantKept {
				t.Fatalf("kept %d samples, want %d", len(got), tc.wantKept)
			}
			if got[0] != tc.wantFirst {
				t.Errorf("oldest retained delta = %g, want %g", got[0], tc.wantFirst)
			}
			// Chronological order: deltas must ascend by exactly 1.
			for j := 1; j < len(got); j++ {
				if got[j] != got[j-1]+1 {
					t.Errorf("samples not chronological at %d: %v", j, got)
					break
				}
			}
			// Histogram ring wraps in lockstep with the scalar ring.
			h := d.Series[2].Hist
			if len(h) != tc.wantKept {
				t.Fatalf("hist kept %d rows, want %d", len(h), tc.wantKept)
			}
			if h[0][0] != uint64(tc.wantFirst) {
				t.Errorf("oldest hist delta = %d, want %g", h[0][0], tc.wantFirst)
			}
		})
	}
}

// TestMerge: table-driven coverage of the deterministic cross-cell merge.
func TestMerge(t *testing.T) {
	mk := func(ticks int, scale float64) *Dump {
		d := &Dump{Interval: sim.Duration(sim.Microsecond), Ticks: ticks, Series: []SeriesDump{
			{Name: "c", Kind: "counter"},
			{Name: "h", Kind: "histogram", Bounds: []float64{1, 2}},
		}}
		for j := 1; j <= ticks; j++ {
			d.Series[0].Samples = append(d.Series[0].Samples, scale*float64(j))
			d.Series[1].Hist = append(d.Series[1].Hist, []uint64{uint64(j), uint64(scale)})
		}
		return d
	}
	t.Run("element-wise sum", func(t *testing.T) {
		m, err := Merge(mk(3, 1), mk(3, 10))
		if err != nil {
			t.Fatal(err)
		}
		want := []float64{11, 22, 33}
		if !reflect.DeepEqual(m.Series[0].Samples, want) {
			t.Errorf("merged samples = %v, want %v", m.Series[0].Samples, want)
		}
		wantH := [][]uint64{{2, 11}, {4, 11}, {6, 11}}
		if !reflect.DeepEqual(m.Series[1].Hist, wantH) {
			t.Errorf("merged hist = %v, want %v", m.Series[1].Hist, wantH)
		}
	})
	t.Run("length mismatch zero-pads", func(t *testing.T) {
		m, err := Merge(mk(2, 1), mk(4, 1))
		if err != nil {
			t.Fatal(err)
		}
		want := []float64{2, 4, 3, 4}
		if !reflect.DeepEqual(m.Series[0].Samples, want) {
			t.Errorf("merged samples = %v, want %v", m.Series[0].Samples, want)
		}
		if m.Ticks != 4 {
			t.Errorf("merged ticks = %d, want 4", m.Ticks)
		}
	})
	t.Run("nil dumps skipped", func(t *testing.T) {
		m, err := Merge(nil, mk(1, 1), nil)
		if err != nil || m == nil || m.Series[0].Samples[0] != 1 {
			t.Errorf("merge with nils = %v, %v", m, err)
		}
		if m2, err := Merge(nil, nil); m2 != nil || err != nil {
			t.Errorf("all-nil merge = %v, %v, want nil, nil", m2, err)
		}
	})
	t.Run("schema mismatch rejected", func(t *testing.T) {
		bad := mk(1, 1)
		bad.Series[0].Name = "other"
		if _, err := Merge(mk(1, 1), bad); err == nil {
			t.Error("mismatched series name accepted")
		}
		short := mk(1, 1)
		short.Series = short.Series[:1]
		if _, err := Merge(mk(1, 1), short); err == nil {
			t.Error("mismatched series count accepted")
		}
		iv := mk(1, 1)
		iv.Interval *= 2
		if _, err := Merge(mk(1, 1), iv); err == nil {
			t.Error("mismatched interval accepted")
		}
	})
	t.Run("argument order is the sum order", func(t *testing.T) {
		// Same multiset of dumps, same order => identical bits. This is
		// the property the sweep exporter relies on for -jobs N
		// determinism (it always merges in sweep order).
		a, _ := Merge(mk(2, 0.1), mk(2, 0.3), mk(2, 0.7))
		b, _ := Merge(mk(2, 0.1), mk(2, 0.3), mk(2, 0.7))
		if !reflect.DeepEqual(a, b) {
			t.Error("repeated merge not bit-identical")
		}
	})
}

// TestNilRegistryInert: the disabled path must be safe and silent.
func TestNilRegistryInert(t *testing.T) {
	var r *Registry
	r.Counter("c", nil)
	r.Gauge("g", nil)
	r.HistogramSeries("h", []float64{1}, nil)
	r.Start(100)
	r.Observe()
	if r.Dump() != nil || r.Ticks() != 0 || r.Interval() != 0 {
		t.Error("nil registry not inert")
	}
}

func TestDuplicateAndLateRegistrationPanic(t *testing.T) {
	f := newFixture(Config{})
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("duplicate", func() { f.reg.Counter("c", func() float64 { return 0 }) })
	f.reg.Start(sim.Time(sim.Microsecond))
	mustPanic("late registration", func() { f.reg.Gauge("late", func() float64 { return 0 }) })
}

// TestObserveZeroAllocs pins the allocation-free sampling budget: the
// rings are preallocated at Start, so a tick allocates nothing.
func TestObserveZeroAllocs(t *testing.T) {
	f := newFixture(Config{Interval: sim.Duration(sim.Microsecond), Capacity: 16})
	f.reg.Start(1 << 40)
	allocs := testing.AllocsPerRun(100, func() {
		f.cum++
		f.hist[1]++
		f.reg.Observe()
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %.1f objects/tick, want 0", allocs)
	}
}

func BenchmarkObserve(b *testing.B) {
	f := newFixture(Config{Interval: sim.Duration(sim.Microsecond), Capacity: 1024})
	f.reg.Start(1 << 40)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.cum++
		f.reg.Observe()
	}
}
