package serve

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestStoreRoundTrip(t *testing.T) {
	s, err := NewStore(t.TempDir() + "/store")
	if err != nil {
		t.Fatal(err)
	}
	key := "mixG/8GB|star|small|FP|full-power|0|0|20000|5000|false|false|0"
	if _, ok, err := s.Get(key); err != nil || ok {
		t.Fatalf("empty store Get = ok=%v err=%v", ok, err)
	}
	want := json.RawMessage(`{"Events":42,"Throughput":1.5}`)
	if err := s.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(key)
	if err != nil || !ok {
		t.Fatalf("Get after Put: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("stored bytes diverged: %s vs %s", got, want)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	// Re-put is idempotent.
	if err := s.Put(key, want); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len after re-put = %d, want 1", s.Len())
	}
}

// TestStoreKeyMismatch pins the verification contract: a file whose
// embedded key does not match the requested key is an error, not a hit.
func TestStoreKeyMismatch(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("key-a", json.RawMessage(`{}`)); err != nil {
		t.Fatal(err)
	}
	// Graft key-a's file onto key-b's address.
	data, err := os.ReadFile(s.path("key-a"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path("key-b"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get("key-b"); err == nil {
		t.Fatal("mismatched entry served as a hit")
	}
}

// TestStoreCorruptEntry pins that a torn file is reported, not served.
func TestStoreCorruptEntry(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path("k"), []byte(`{"key":"k","resu`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get("k"); err == nil {
		t.Fatal("corrupt entry served as a hit")
	}
}

// TestStoreAtomicWriteLeavesNoTemp pins that Put cleans its temp files.
func TestStoreAtomicWriteLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Put("k", json.RawMessage(`{"Events":1}`)); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if filepath.Ext(e.Name()) != ".json" {
			t.Fatalf("leftover non-entry file %s", e.Name())
		}
	}
}
