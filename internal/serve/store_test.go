package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func mustLen(t *testing.T, s *Store) int {
	t.Helper()
	n, err := s.Len()
	if err != nil {
		t.Fatalf("Len: %v", err)
	}
	return n
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := NewStore(t.TempDir() + "/store")
	if err != nil {
		t.Fatal(err)
	}
	key := "mixG/8GB|star|small|FP|full-power|0|0|20000|5000|false|false|0"
	if _, ok, err := s.Get(key); err != nil || ok {
		t.Fatalf("empty store Get = ok=%v err=%v", ok, err)
	}
	want := json.RawMessage(`{"Events":42,"Throughput":1.5}`)
	if err := s.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(key)
	if err != nil || !ok {
		t.Fatalf("Get after Put: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("stored bytes diverged: %s vs %s", got, want)
	}
	if n := mustLen(t, s); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
	// Re-put is idempotent.
	if err := s.Put(key, want); err != nil {
		t.Fatal(err)
	}
	if n := mustLen(t, s); n != 1 {
		t.Fatalf("Len after re-put = %d, want 1", n)
	}
}

// TestStoreLenSurfacesScanError pins the fixed contract: an unreadable
// store directory is an error, not a phantom empty store.
func TestStoreLenSurfacesScanError(t *testing.T) {
	ffs := NewFaultFS(nil)
	s, err := NewStoreFS(t.TempDir(), ffs)
	if err != nil {
		t.Fatal(err)
	}
	ffs.Fail(FaultRule{Op: OpReadDir, Err: errors.New("injected EIO"), Count: -1})
	if _, err := s.Len(); err == nil {
		t.Fatal("Len swallowed the ReadDir error")
	}
	if _, _, err := s.Scan(); err == nil {
		t.Fatal("Scan swallowed the ReadDir error")
	}
}

// TestStoreKeyMismatchQuarantines pins the verification contract: a file
// whose embedded key does not match the requested key is quarantined and
// reported as a miss wrapped in ErrCorrupt — never served.
func TestStoreKeyMismatchQuarantines(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("key-a", json.RawMessage(`{}`)); err != nil {
		t.Fatal(err)
	}
	// Graft key-a's file onto key-b's address.
	data, err := os.ReadFile(s.path("key-a"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path("key-b"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, ok, err := s.Get("key-b")
	if ok || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mismatched entry: ok=%v err=%v, want miss + ErrCorrupt", ok, err)
	}
	if _, err := os.Stat(s.path("key-b")); !os.IsNotExist(err) {
		t.Fatal("mismatched entry still at its address after Get")
	}
	qpath := filepath.Join(dir, QuarantineDir, filepath.Base(s.path("key-b")))
	if _, err := os.Stat(qpath); err != nil {
		t.Fatalf("mismatched entry not quarantined: %v", err)
	}
	if s.Quarantined() != 1 {
		t.Fatalf("Quarantined = %d, want 1", s.Quarantined())
	}
	// The slot is reusable: a fresh Put repairs the address.
	if err := s.Put("key-b", json.RawMessage(`{"fresh":true}`)); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get("key-b"); err != nil || !ok {
		t.Fatalf("Get after repair: ok=%v err=%v", ok, err)
	}
}

// TestStoreCorruptEntryQuarantines pins that a torn or bit-rotted file
// is quarantined and reported as a miss, not served and not a hard error.
func TestStoreCorruptEntryQuarantines(t *testing.T) {
	for name, mutate := range map[string]func(data []byte) []byte{
		"torn-envelope": func(data []byte) []byte { return data[:len(data)/2] },
		"payload-flip": func(data []byte) []byte {
			// Flip a byte inside the result payload without breaking JSON:
			// 42 → 43 defeats the checksum, not the decoder.
			return bytes.Replace(data, []byte(`42`), []byte(`43`), 1)
		},
		"no-sum-no-payload": func(data []byte) []byte {
			// No checksum AND no payload: not a plausible pre-checksum
			// entry (those always carry a result), so no migration —
			// quarantine.
			return []byte(`{"key":"k"}`)
		},
	} {
		t.Run(name, func(t *testing.T) {
			s, err := NewStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Put("k", json.RawMessage(`{"Events":42}`)); err != nil {
				t.Fatal(err)
			}
			data, err := os.ReadFile(s.path("k"))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(s.path("k"), mutate(data), 0o644); err != nil {
				t.Fatal(err)
			}
			_, ok, err := s.Get("k")
			if ok || !errors.Is(err, ErrCorrupt) {
				t.Fatalf("corrupt entry: ok=%v err=%v, want miss + ErrCorrupt", ok, err)
			}
			if s.Quarantined() != 1 {
				t.Fatalf("Quarantined = %d, want 1", s.Quarantined())
			}
		})
	}
}

// TestStoreLegacyEntryMigratesOnGet pins the upgrade path: an entry
// written by a pre-checksum daemon (intact envelope and key, no Sum) is
// served as a hit — not quarantined, which would throw away the whole
// pre-upgrade cache — and the read backfills the checksum in place so
// the entry verifies fully from then on.
func TestStoreLegacyEntryMigratesOnGet(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := json.RawMessage(`{"Events":42}`)
	legacy := fmt.Sprintf(`{"key":%q,"result":%s}`, "k", payload)
	if err := os.WriteFile(s.path("k"), []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get("k")
	if err != nil || !ok {
		t.Fatalf("legacy Get: ok=%v err=%v, want served hit", ok, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("legacy payload diverged: %s", got)
	}
	if s.Quarantined() != 0 {
		t.Fatalf("legacy entry quarantined (%d), want migrated", s.Quarantined())
	}
	// The rewrite backfilled the checksum.
	data, err := os.ReadFile(s.path("k"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"sum":"`)) || bytes.Contains(data, []byte(`"sum":""`)) {
		t.Fatalf("checksum not backfilled:\n%s", data)
	}
	if _, ok, err := s.Get("k"); err != nil || !ok {
		t.Fatalf("Get after migration: ok=%v err=%v", ok, err)
	}
	// A legacy entry under the wrong key is still a mismatch, never a
	// migration target.
	if err := os.WriteFile(s.path("other"), []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get("other"); ok || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mismatched legacy entry: ok=%v err=%v, want quarantine", ok, err)
	}
}

// TestStoreFsckMigratesLegacyEntries pins the same upgrade path at
// startup: fsck rewrites pre-checksum entries instead of quarantining
// them, counts them, and is idempotent afterwards.
func TestStoreFsckMigratesLegacyEntries(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("modern", json.RawMessage(`{"Events":1}`)); err != nil {
		t.Fatal(err)
	}
	legacy := []byte(`{"key":"old","result":{"Events":2}}`)
	if err := os.WriteFile(s.path("old"), legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Entries != 2 || rep.Migrated != 1 || rep.Quarantined != 0 {
		t.Fatalf("fsck report %+v, want 2 entries / 1 migrated / 0 quarantined", rep)
	}
	got, ok, err := s.Get("old")
	if err != nil || !ok || !bytes.Equal(got, []byte(`{"Events":2}`)) {
		t.Fatalf("migrated entry: ok=%v err=%v got=%s", ok, err, got)
	}
	rep2, err := s.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Migrated != 0 || rep2.Entries != 2 {
		t.Fatalf("second fsck not idempotent: %+v", rep2)
	}
}

// TestStorePutNonCompactPayload pins checksum/storage consistency:
// marshaling the envelope compacts the payload, so Put must checksum
// the compacted form. A spaced-but-valid JSON payload (e.g. a migrated
// legacy entry written by another tool) must round-trip as a hit, not
// produce an entry that quarantines itself on the first Get.
func TestStorePutNonCompactPayload(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", json.RawMessage(`{ "Events": 42 ,  "X": [1, 2] }`)); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get("k")
	if err != nil || !ok {
		t.Fatalf("Get after spaced Put: ok=%v err=%v (entry failed its own checksum)", ok, err)
	}
	if !bytes.Equal(got, []byte(`{"Events":42,"X":[1,2]}`)) {
		t.Fatalf("stored payload = %s", got)
	}
	if s.Quarantined() != 0 {
		t.Fatalf("self-inconsistent entry quarantined (%d)", s.Quarantined())
	}
	// Invalid JSON is rejected up front, never stored.
	if err := s.Put("bad", json.RawMessage(`{"torn`)); err == nil {
		t.Fatal("Put accepted invalid JSON")
	}
}

// TestStoreCachedScan pins the scan cache: an unchanged store answers
// from cache (no filesystem work), and any mutation invalidates it
// immediately. The fault seam proves both halves deterministically: a
// ReadDir fault injected behind a warm cache stays invisible until a
// Put dirties the store, at which point the next CachedScan really
// scans and surfaces the error.
func TestStoreCachedScan(t *testing.T) {
	ffs := NewFaultFS(nil)
	s, err := NewStoreFS(t.TempDir(), ffs)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", json.RawMessage(`{"Events":1}`)); err != nil {
		t.Fatal(err)
	}
	n, bytes1, err := s.CachedScan()
	if err != nil || n != 1 || bytes1 <= 0 {
		t.Fatalf("CachedScan = %d, %d, %v", n, bytes1, err)
	}
	// Warm cache: a ReadDir fault is not even reached.
	ffs.Fail(FaultRule{Op: OpReadDir, Err: errors.New("injected EIO"), Count: -1})
	if n, _, err := s.CachedScan(); err != nil || n != 1 {
		t.Fatalf("warm CachedScan hit the filesystem: %d, %v", n, err)
	}
	// A mutation invalidates: the next call scans for real and surfaces
	// the error instead of serving stale figures.
	if err := s.Put("b", json.RawMessage(`{"Events":2}`)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.CachedScan(); err == nil {
		t.Fatal("CachedScan served a stale result across a mutation")
	}
	// Errors are never cached: clearing the fault heals the next call.
	ffs.Clear()
	if n, _, err := s.CachedScan(); err != nil || n != 2 {
		t.Fatalf("CachedScan after fault cleared = %d, %v", n, err)
	}
}

// TestStoreFsck pins the startup pass: clean entries kept, corrupt and
// misfiled ones quarantined, stale .put-* temps swept, foreign files
// (accept journal) untouched.
func TestStoreFsck(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("good", json.RawMessage(`{"Events":1}`)); err != nil {
		t.Fatal(err)
	}
	// A misfiled entry: valid envelope filed under the wrong name.
	data, _ := os.ReadFile(s.path("good"))
	if err := os.WriteFile(filepath.Join(dir, "deadbeef.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	// A corrupt entry and a crash-leaked temp file.
	if err := os.WriteFile(s.path("bad"), []byte(`{"key":"bad","resu`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ".put-12345"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A foreign non-.json file sharing the directory must survive.
	if err := os.WriteFile(filepath.Join(dir, "accept.wal"), []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := s.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Entries != 1 || rep.Quarantined != 2 || rep.TempsRemoved != 1 {
		t.Fatalf("fsck report %+v, want 1 entry / 2 quarantined / 1 temp", rep)
	}
	if rep.Bytes <= 0 {
		t.Fatalf("fsck bytes = %d", rep.Bytes)
	}
	if _, ok, err := s.Get("good"); err != nil || !ok {
		t.Fatalf("clean entry lost by fsck: ok=%v err=%v", ok, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "accept.wal")); err != nil {
		t.Fatal("fsck touched a foreign file")
	}
	qents, err := os.ReadDir(filepath.Join(dir, QuarantineDir))
	if err != nil || len(qents) != 2 {
		t.Fatalf("quarantine holds %d files (err %v), want 2", len(qents), err)
	}
	// Idempotent: a second pass finds nothing to do.
	rep2, err := s.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Entries != 1 || rep2.Quarantined != 0 || rep2.TempsRemoved != 0 {
		t.Fatalf("second fsck not idempotent: %+v", rep2)
	}
}

// TestStoreGC covers the eviction policies and their edge cases: empty
// store, all entries pinned, and a byte cap smaller than one entry.
func TestStoreGC(t *testing.T) {
	newStore := func(t *testing.T) *Store {
		s, err := NewStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	put := func(t *testing.T, s *Store, key string) {
		t.Helper()
		if err := s.Put(key, json.RawMessage(fmt.Sprintf(`{"k":%q}`, key))); err != nil {
			t.Fatal(err)
		}
	}
	age := func(t *testing.T, s *Store, key string, d time.Duration) {
		t.Helper()
		old := time.Now().Add(-d)
		if err := os.Chtimes(s.path(key), old, old); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("disabled-is-noop", func(t *testing.T) {
		s := newStore(t)
		put(t, s, "a")
		n, err := s.GC(GCConfig{})
		if err != nil || n != 0 {
			t.Fatalf("GC = %d, %v", n, err)
		}
	})
	t.Run("empty-store", func(t *testing.T) {
		s := newStore(t)
		n, err := s.GC(GCConfig{MaxBytes: 1, MaxAge: time.Nanosecond})
		if err != nil || n != 0 {
			t.Fatalf("GC on empty store = %d, %v", n, err)
		}
	})
	t.Run("age-evicts-stale-only", func(t *testing.T) {
		s := newStore(t)
		put(t, s, "old")
		put(t, s, "fresh")
		age(t, s, "old", time.Hour)
		n, err := s.GC(GCConfig{MaxAge: time.Minute})
		if err != nil || n != 1 {
			t.Fatalf("GC = %d, %v, want 1 eviction", n, err)
		}
		if _, ok, _ := s.Get("fresh"); !ok {
			t.Fatal("fresh entry evicted")
		}
		if _, ok, _ := s.Get("old"); ok {
			t.Fatal("stale entry survived")
		}
		if s.Evictions() != 1 {
			t.Fatalf("Evictions = %d", s.Evictions())
		}
	})
	t.Run("get-refreshes-last-hit", func(t *testing.T) {
		s := newStore(t)
		put(t, s, "touched")
		age(t, s, "touched", time.Hour)
		if _, ok, err := s.Get("touched"); !ok || err != nil {
			t.Fatalf("Get: ok=%v err=%v", ok, err)
		}
		n, err := s.GC(GCConfig{MaxAge: time.Minute})
		if err != nil || n != 0 {
			t.Fatalf("GC evicted a just-hit entry: %d, %v", n, err)
		}
	})
	t.Run("bytes-evicts-lru-first", func(t *testing.T) {
		s := newStore(t)
		put(t, s, "oldest")
		put(t, s, "middle")
		put(t, s, "newest")
		age(t, s, "oldest", 3*time.Hour)
		age(t, s, "middle", 2*time.Hour)
		_, total, err := s.Scan()
		if err != nil {
			t.Fatal(err)
		}
		// Cap just under the total: exactly one eviction, the LRU entry.
		if _, err := s.GC(GCConfig{MaxBytes: total - 1}); err != nil {
			t.Fatal(err)
		}
		if _, ok, _ := s.Get("oldest"); ok {
			t.Fatal("LRU entry survived a byte-cap GC")
		}
		for _, k := range []string{"middle", "newest"} {
			if _, ok, _ := s.Get(k); !ok {
				t.Fatalf("entry %s evicted out of LRU order", k)
			}
		}
	})
	t.Run("pinned-never-evicted", func(t *testing.T) {
		s := newStore(t)
		put(t, s, "pinned")
		age(t, s, "pinned", time.Hour)
		n, err := s.GC(GCConfig{
			MaxBytes: 1, MaxAge: time.Minute,
			Pinned: map[string]bool{"pinned": true},
		})
		if err != nil || n != 0 {
			t.Fatalf("GC evicted a pinned entry: %d, %v", n, err)
		}
		if _, ok, _ := s.Get("pinned"); !ok {
			t.Fatal("pinned entry gone")
		}
	})
	t.Run("cap-smaller-than-one-entry", func(t *testing.T) {
		s := newStore(t)
		put(t, s, "a")
		put(t, s, "b")
		n, err := s.GC(GCConfig{MaxBytes: 1})
		if err != nil || n != 2 {
			t.Fatalf("GC = %d, %v, want both unpinned entries evicted", n, err)
		}
		if remaining := mustLen(t, s); remaining != 0 {
			t.Fatalf("store holds %d entries after cap-1 GC", remaining)
		}
	})
}

// TestStoreAtomicWriteLeavesNoTemp pins that Put cleans its temp files.
func TestStoreAtomicWriteLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Put("k", json.RawMessage(`{"Events":1}`)); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if filepath.Ext(e.Name()) != ".json" {
			t.Fatalf("leftover non-entry file %s", e.Name())
		}
	}
}

// TestStorePutFaults drives Put through injected write/sync/rename
// failures (the ENOSPC family): every failure surfaces as an error, no
// torn entry becomes visible at the final address, and the store keeps
// working once the fault clears.
func TestStorePutFaults(t *testing.T) {
	for _, op := range []FaultOp{OpCreate, OpWrite, OpSync, OpRename} {
		t.Run(string(op), func(t *testing.T) {
			ffs := NewFaultFS(nil)
			s, err := NewStoreFS(t.TempDir(), ffs)
			if err != nil {
				t.Fatal(err)
			}
			ffs.Fail(FaultRule{Op: op, Err: errENOSPC, Count: 1})
			if err := s.Put("k", json.RawMessage(`{"Events":7}`)); err == nil {
				t.Fatalf("Put survived injected %s failure", op)
			}
			if ffs.Trips() == 0 {
				t.Fatal("fault never fired; test is vacuous")
			}
			// The failed Put left no visible entry...
			if _, ok, err := s.Get("k"); ok || err != nil {
				t.Fatalf("Get after failed Put: ok=%v err=%v", ok, err)
			}
			// ...and the store recovers the moment the disk does.
			if err := s.Put("k", json.RawMessage(`{"Events":7}`)); err != nil {
				t.Fatalf("Put after fault cleared: %v", err)
			}
			if _, ok, err := s.Get("k"); !ok || err != nil {
				t.Fatalf("Get after recovery: ok=%v err=%v", ok, err)
			}
		})
	}
}
