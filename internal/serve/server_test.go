package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newTestServer builds a server + HTTP front end with test-friendly
// defaults; mutate cfg via mod before it starts.
func newTestServer(t *testing.T, mod func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	store, err := NewStore(t.TempDir() + "/store")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Store:      store,
		QueueDepth: 4,
		Runners:    2,
		Logf:       t.Logf,
	}
	if mod != nil {
		mod(&cfg)
	}
	s := New(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
		hs.Close()
	})
	return s, hs
}

// tinyBody is a one-cell submission cheap enough for unit tests.
func tinyBody(simtime string, salt int) string {
	// SeedSalt is not in SpecJSON; vary alpha-free fields via wakeup_ns
	// to get distinct cache keys when needed.
	return fmt.Sprintf(`{"runs":[{"workload":"mixG","simtime":%q,"warmup":"5us","wakeup_ns":%d}]}`,
		simtime, 14+salt)
}

func submit(t *testing.T, base, body string) SubmitResponse {
	t.Helper()
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: %s: %s", resp.Status, msg)
	}
	var sr SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

// waitTerminal polls the job until it leaves the running states.
func waitTerminal(t *testing.T, base, id string, timeout time.Duration) Status {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch st.State {
		case StateDone, StateFailed, StateCanceled:
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, st.State, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func fetchResult(t *testing.T, base, id string) []json.RawMessage {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %s", resp.Status)
	}
	var out struct {
		Status  Status            `json:"status"`
		Results []json.RawMessage `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Results
}

// TestSubmitRunCacheHit is the content-addressed-store acceptance test:
// the same spec submitted twice simulates once, and the cached delivery
// is byte-identical to the fresh one.
func TestSubmitRunCacheHit(t *testing.T) {
	s, hs := newTestServer(t, nil)
	sr1 := submit(t, hs.URL, tinyBody("20us", 0))
	st1 := waitTerminal(t, hs.URL, sr1.ID, 60*time.Second)
	if st1.State != StateDone || st1.CacheHits != 0 {
		t.Fatalf("first run: %+v", st1)
	}
	fresh := fetchResult(t, hs.URL, sr1.ID)

	sr2 := submit(t, hs.URL, tinyBody("20us", 0))
	st2 := waitTerminal(t, hs.URL, sr2.ID, 10*time.Second)
	if st2.State != StateDone || st2.CacheHits != 1 {
		t.Fatalf("second run should be a cache hit: %+v", st2)
	}
	cached := fetchResult(t, hs.URL, sr2.ID)
	if len(fresh) != 1 || len(cached) != 1 {
		t.Fatalf("results = %d/%d cells, want 1/1", len(fresh), len(cached))
	}
	if !bytes.Equal(fresh[0], cached[0]) {
		t.Fatal("cached result is not byte-identical to the fresh run")
	}
	if stats := s.Stats(); stats.CellsRun != 1 || stats.CacheHits != 1 {
		t.Fatalf("stats: %+v", stats)
	}
}

// TestSubmitValidation pins the 400 paths: malformed JSON, unknown
// fields, empty batches, bad specs — all rejected before admission.
func TestSubmitValidation(t *testing.T) {
	_, hs := newTestServer(t, nil)
	for name, body := range map[string]string{
		"malformed":     `{"runs": [`,
		"unknown-field": `{"runs":[],"bogus":1}`,
		"no-runs":       `{"runs":[]}`,
		"bad-workload":  `{"runs":[{"workload":"no-such-workload"}]}`,
		"bad-interval":  `{"runs":[{"workload":"mixG"}],"metrics_interval":"not-a-duration"}`,
	} {
		resp, err := http.Post(hs.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	resp, err := http.Get(hs.URL + "/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

// TestBackpressure429 fills the queue behind a slow job and pins the
// 429 + Retry-After overload contract.
func TestBackpressure429(t *testing.T) {
	s, hs := newTestServer(t, func(c *Config) {
		c.Runners = 1
		c.QueueDepth = 1
	})
	// One slow job occupies the single runner; one more fills the queue.
	slow := submit(t, hs.URL, tinyBody("5ms", 0))
	submit(t, hs.URL, tinyBody("20us", 1))
	var got429 bool
	for i := 0; i < 10; i++ {
		resp, err := http.Post(hs.URL+"/jobs", "application/json",
			strings.NewReader(tinyBody("20us", 2+i)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
			got429 = true
			break
		}
	}
	if !got429 {
		t.Fatal("queue never pushed back with 429")
	}
	if s.Stats().Rejected == 0 {
		t.Fatal("rejection not counted")
	}
	// Unblock the cleanup drain promptly.
	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/jobs/"+slow.ID, nil)
	http.DefaultClient.Do(req)
}

// TestCancelStopsJob pins DELETE /jobs/{id}: a long job goes terminal
// promptly — the kernel check aborts within one interval, far sooner
// than the simulation would finish.
func TestCancelStopsJob(t *testing.T) {
	_, hs := newTestServer(t, nil)
	sr := submit(t, hs.URL, tinyBody("500ms", 0)) // would run for minutes
	time.Sleep(100 * time.Millisecond)            // let it enter the kernel
	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/jobs/"+sr.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	start := time.Now()
	st := waitTerminal(t, hs.URL, sr.ID, 10*time.Second)
	if st.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", st.State)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancellation took %v; kernel check did not abort promptly", d)
	}
}

// TestStreamDisconnectCancels pins the end-to-end cancellation path: a
// streaming submit whose client disconnects mid-run must cancel the
// simulation.
func TestStreamDisconnectCancels(t *testing.T) {
	s, hs := newTestServer(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, hs.URL+"/jobs?stream=1",
		strings.NewReader(tinyBody("500ms", 0)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read the first event, then drop the connection mid-stream.
	buf := make([]byte, 1)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatal(err)
	}
	cancel()
	resp.Body.Close()

	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Canceled == 0 {
		if time.Now().After(deadline) {
			t.Fatal("disconnected stream job never canceled")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestStreamReplayAndMetrics runs a metrics-armed job to completion,
// then subscribes late: the replay must contain the full event history —
// status, result, the epoch-metrics dump, and done.
func TestStreamReplayAndMetrics(t *testing.T) {
	_, hs := newTestServer(t, nil)
	body := `{"runs":[{"workload":"mixG","simtime":"50us","warmup":"5us"}],"metrics_interval":"10us"}`
	sr := submit(t, hs.URL, body)
	waitTerminal(t, hs.URL, sr.ID, 60*time.Second)

	resp, err := http.Get(hs.URL + "/jobs/" + sr.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	data, err := io.ReadAll(resp.Body) // terminal job: replay then EOF
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{"event: status", "event: result", "event: metrics", "event: done"} {
		if !strings.Contains(text, want) {
			t.Errorf("replay missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(text, `"samples"`) && !strings.Contains(text, `"series"`) {
		t.Errorf("metrics event carries no time-series dump:\n%s", text)
	}
}

// TestEventBudgetFailsJob pins the per-job event budget: a budget far
// below the cell's event count fails the job with a budget error.
func TestEventBudgetFailsJob(t *testing.T) {
	_, hs := newTestServer(t, nil)
	body := `{"runs":[{"workload":"mixG","simtime":"20us","warmup":"5us"}],"event_budget":1000}`
	sr := submit(t, hs.URL, body)
	st := waitTerminal(t, hs.URL, sr.ID, 30*time.Second)
	if st.State != StateFailed {
		t.Fatalf("state = %s, want failed", st.State)
	}
	if len(st.CellErrs) == 0 || !strings.Contains(st.CellErrs[0], "budget") {
		t.Fatalf("cell errors carry no budget diagnosis: %+v", st.CellErrs)
	}
}

// TestReadyzDrainTransitions pins the health surface: ready before
// drain, 503 during and after, submissions refused while draining.
func TestReadyzDrainTransitions(t *testing.T) {
	s, hs := newTestServer(t, nil)
	get := func(path string) int {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if c := get("/healthz"); c != http.StatusOK {
		t.Fatalf("healthz = %d", c)
	}
	if c := get("/readyz"); c != http.StatusOK {
		t.Fatalf("readyz before drain = %d", c)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if c := get("/readyz"); c != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain = %d, want 503", c)
	}
	if c := get("/healthz"); c != http.StatusOK {
		t.Fatalf("healthz after drain = %d (liveness must survive drain)", c)
	}
	resp, err := http.Post(hs.URL+"/jobs", "application/json", strings.NewReader(tinyBody("20us", 0)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", resp.StatusCode)
	}
}

// TestMetricsz pins the daemon gauges endpoint.
func TestMetricsz(t *testing.T) {
	s, hs := newTestServer(t, nil)
	sr := submit(t, hs.URL, tinyBody("20us", 0))
	waitTerminal(t, hs.URL, sr.ID, 60*time.Second)
	resp, err := http.Get(hs.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	for _, want := range []string{"serve.jobs.submitted", "serve.cells.run", "serve.queue.depth"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("metricsz missing series %q", want)
		}
	}
	if s.Stats().Submitted != 1 {
		t.Fatalf("stats: %+v", s.Stats())
	}
}
