package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestCrashRestartSoak is the durability acceptance test: several
// process "lives" share one store and accept journal. Each life
// recovers its predecessor's unfinished jobs, takes new submissions
// under injected disk faults (ENOSPC on store puts, failing journal
// writes, one torn temp write), and then crashes — a near-zero drain
// deadline, the in-process equivalent of SIGKILL mid-run. The final
// life must recover everything, run it to completion, leave a clean
// store (fsck), and compact the journal to empty: no submission is
// ever lost, no fault ever surfaces as a 500.
func TestCrashRestartSoak(t *testing.T) {
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "store")
	walPath := filepath.Join(storeDir, "accept.wal") // daemon default location
	ffs := NewFaultFS(nil)

	// A small spec pool: duplicates become cache hits across lives, the
	// slow spec keeps work genuinely in flight at each crash.
	body := func(i int) string {
		if i%3 == 2 {
			return fmt.Sprintf(`{"runs":[{"workload":"mixG","simtime":"10ms","warmup":"5us","wakeup_ns":%d}]}`, 900+i)
		}
		return fmt.Sprintf(`{"runs":[{"workload":"mixG","simtime":"20us","warmup":"5us","wakeup_ns":%d}]}`, 14+i%2)
	}

	accepted := map[string]bool{}
	totalRecovered := 0
	const lives = 3
	for life := 0; life < lives; life++ {
		store, err := NewStoreFS(storeDir, ffs)
		if err != nil {
			t.Fatalf("life %d: %v", life, err)
		}
		if _, err := store.Fsck(); err != nil {
			t.Fatalf("life %d: fsck: %v", life, err)
		}
		a, pending, err := OpenAcceptLog(walPath, ffs)
		if err != nil {
			t.Fatalf("life %d: %v", life, err)
		}
		s := New(Config{Store: store, Accepts: a, QueueDepth: 16, Runners: 2, Logf: t.Logf})
		totalRecovered += s.Recover(pending)
		hs := httptest.NewServer(s.Handler())

		// Transient faults mid-life: full disk for store puts, a failing
		// journal append, one torn temp write. All must degrade, not 500.
		ffs.Fail(FaultRule{Op: OpWrite, Path: ".put-", Err: errENOSPC, Count: 2})
		ffs.Fail(FaultRule{Op: OpWrite, Path: ".put-", Err: errENOSPC, Count: 1, Short: 7})
		ffs.Fail(FaultRule{Op: OpSync, Path: "accept.wal", Err: errENOSPC, Count: 1})

		for i := 0; i < 4; i++ {
			resp, err := http.Post(hs.URL+"/jobs", "application/json",
				strings.NewReader(body(life*4+i)))
			if err != nil {
				t.Fatalf("life %d: submit: %v", life, err)
			}
			var sr SubmitResponse
			if resp.StatusCode == http.StatusAccepted {
				if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
					t.Fatal(err)
				}
				accepted[sr.ID] = true
			} else if resp.StatusCode != http.StatusTooManyRequests {
				t.Fatalf("life %d: submit returned %d", life, resp.StatusCode)
			}
			resp.Body.Close()
		}
		time.Sleep(50 * time.Millisecond) // let runners engage the slow jobs

		// Crash: a ~zero drain deadline cancels everything in flight
		// without tombstoning it, then the flock is released.
		dctx, dcancel := context.WithTimeout(context.Background(), time.Millisecond)
		s.Drain(dctx)
		dcancel()
		hs.Close()
		a.Close()
		ffs.Clear()
		t.Logf("life %d: crashed with stats %+v", life, s.Stats())
	}
	if totalRecovered == 0 {
		t.Fatal("no life recovered anything; the crashes never caught live jobs")
	}

	// Final life: plain filesystem, recover the full backlog, run it dry.
	store, err := NewStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := store.Fsck()
	if err != nil {
		t.Fatalf("final fsck: %v", err)
	}
	t.Logf("final fsck: %+v", rep)
	a, pending, err := OpenAcceptLog(walPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Store: store, Accepts: a, QueueDepth: 16, Runners: 4, Logf: t.Logf})
	recovered := s.Recover(pending)
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	// One more duplicate of a pool spec: it must be a cache hit or a
	// clean fresh run, never an error, even after all that abuse.
	sr := submit(t, hs.URL, body(0))
	accepted[sr.ID] = true

	dctx, dcancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("final drain hit its deadline: %v (stats %+v)", err, s.Stats())
	}
	a.Close()
	t.Logf("final life: recovered %d, stats %+v", recovered, s.Stats())

	// Every job the final life owned is done — nothing failed, nothing
	// was left hanging.
	for id := range accepted {
		s.jobMu.Lock()
		j := s.jobs[id]
		s.jobMu.Unlock()
		if j == nil {
			continue // finished and tombstoned in an earlier life
		}
		if st := j.status(false); st.State != StateDone {
			t.Errorf("job %s ended %s: %+v", id, st.State, st)
		}
	}

	// The journal owes nothing: a further life would recover zero jobs,
	// and the drained file compacted to empty.
	a2, pending, err := OpenAcceptLog(walPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	if len(pending) != 0 {
		t.Fatalf("journal still owes %d job(s) after a clean drain: %+v", len(pending), pending)
	}
}
