// Package serve is the memnetd daemon core: an overload-tolerant HTTP
// front end over the exp harness. Submissions are JSON batches of
// declarative specs (the same SpecJSON shape `memnetsim -config` reads);
// admitted jobs run on a bounded worker pool with per-job wall/event
// budgets and per-cell panic containment, stream their progress and
// epoch metrics over SSE, and persist every fresh result in a
// content-addressed store so duplicate submissions are cache hits served
// without simulation.
//
// Robustness contracts, in priority order:
//
//   - Overload degrades, never topples. Admission is a bounded queue;
//     when it is full the daemon answers 429 with Retry-After instead of
//     queueing unboundedly, and when it is draining it answers 503.
//   - Abandonment is cheap. Every job runs under a context; a canceled
//     job (client disconnect on a streaming submit, DELETE, or drain
//     timeout) stops consuming CPU within one kernel check interval.
//   - A poisoned cell fails alone. Panics inside a simulation come back
//     as exp.PanicError per cell; the job reports the failure and the
//     daemon keeps serving.
//   - Results survive the process. Fresh results are stored atomically
//     (and journaled when a journal is attached) before the job
//     completes, so a crash never re-simulates finished work.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"memnet/internal/exp"
	"memnet/internal/metrics"
)

// Defaults.
const (
	DefaultQueueDepth = 16
	DefaultRunners    = 1
	DefaultMaxBody    = 1 << 20
	DefaultRetryAfter = 2 * time.Second
)

// Config parameterizes a Server.
type Config struct {
	// Store persists results content-addressed by spec key (nil = no
	// persistence, every submission simulates).
	Store *Store
	// Journal, when non-nil, receives every fresh result (exp JSONL
	// format), so daemon results merge with CLI sweeps and survive
	// crashes. The journal's flock guarantees no CLI can interleave.
	Journal *exp.Journal
	// QueueDepth bounds admitted-but-not-running jobs (0 =
	// DefaultQueueDepth). A full queue rejects with 429 + Retry-After.
	QueueDepth int
	// Runners is the number of concurrent job executors (0 =
	// DefaultRunners). Cells within a job run sequentially.
	Runners int
	// WallBudget caps a job's wall-clock runtime (0 = unlimited); the
	// job is canceled mid-kernel when it expires.
	WallBudget time.Duration
	// EventBudget caps a job's total simulated events across its cells
	// (0 = unlimited); exceeding it fails the job with a BudgetError.
	EventBudget uint64
	// CheckEvery is the kernel cancellation-check stride in events
	// (0 = sim.DefaultCheckEvery).
	CheckEvery uint64
	// MaxBodyBytes bounds a submission body (0 = DefaultMaxBody).
	MaxBodyBytes int64
	// RetryAfter is the backpressure hint on 429 responses
	// (0 = DefaultRetryAfter).
	RetryAfter time.Duration
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// Server owns the admission queue, the job table and the runner pool.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	runWG sync.WaitGroup

	// admitMu serializes admission against drain: queue sends hold the
	// read side so Drain can close the queue without racing a send.
	admitMu  sync.RWMutex
	queue    chan *job
	draining atomic.Bool

	jobMu  sync.Mutex
	jobs   map[string]*job
	nextID atomic.Uint64

	// Daemon-level gauges/counters, sampled by the manual metrics
	// registry and reported raw on /statusz.
	submitted atomic.Uint64 // jobs admitted
	rejected  atomic.Uint64 // 429s issued
	cacheHits atomic.Uint64 // cells served from the store
	cellsRun  atomic.Uint64 // cells simulated fresh
	canceled  atomic.Uint64 // jobs canceled
	inFlight  atomic.Int64  // jobs currently running

	regMu sync.Mutex
	reg   *metrics.Registry
}

// New builds a server and starts its runner pool. Callers must Drain
// before discarding it, or the runners leak.
func New(cfg Config) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.Runners <= 0 {
		cfg.Runners = DefaultRunners
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBody
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &Server{
		cfg:   cfg,
		queue: make(chan *job, cfg.QueueDepth),
		jobs:  map[string]*job{},
	}
	s.initMetrics()
	s.initMux()
	for i := 0; i < cfg.Runners; i++ {
		s.runWG.Add(1)
		go s.runner()
	}
	return s
}

// initMetrics registers the daemon gauges on a manual (wall-clock)
// registry, mirroring the dist coordinator's style.
func (s *Server) initMetrics() {
	s.reg = metrics.NewManual(metrics.Config{})
	s.reg.Counter("serve.jobs.submitted", func() float64 { return float64(s.submitted.Load()) })
	s.reg.Counter("serve.jobs.rejected", func() float64 { return float64(s.rejected.Load()) })
	s.reg.Counter("serve.jobs.canceled", func() float64 { return float64(s.canceled.Load()) })
	s.reg.Counter("serve.cells.cache_hits", func() float64 { return float64(s.cacheHits.Load()) })
	s.reg.Counter("serve.cells.run", func() float64 { return float64(s.cellsRun.Load()) })
	s.reg.Gauge("serve.queue.depth", func() float64 { return float64(len(s.queue)) })
	s.reg.Gauge("serve.jobs.in_flight", func() float64 { return float64(s.inFlight.Load()) })
	s.reg.StartManual()
}

// Stats is the /statusz payload.
type Stats struct {
	Submitted uint64 `json:"submitted"`
	Rejected  uint64 `json:"rejected"`
	Canceled  uint64 `json:"canceled"`
	CacheHits uint64 `json:"cache_hits"`
	CellsRun  uint64 `json:"cells_run"`
	QueueLen  int    `json:"queue_len"`
	InFlight  int64  `json:"in_flight"`
	Draining  bool   `json:"draining"`
}

// Stats snapshots the daemon counters.
func (s *Server) Stats() Stats {
	return Stats{
		Submitted: s.submitted.Load(),
		Rejected:  s.rejected.Load(),
		Canceled:  s.canceled.Load(),
		CacheHits: s.cacheHits.Load(),
		CellsRun:  s.cellsRun.Load(),
		QueueLen:  len(s.queue),
		InFlight:  s.inFlight.Load(),
		Draining:  s.draining.Load(),
	}
}

// Handler returns the daemon's HTTP mux.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) initMux() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	s.mux.HandleFunc("GET /statusz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	s.mux.HandleFunc("GET /metricsz", s.handleMetrics)
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
}

// SubmitRequest is the POST /jobs body: the same declarative runs a
// memnetsim config file holds, plus optional per-job budget overrides
// (each capped by the server's own configured budget).
type SubmitRequest struct {
	Runs         []exp.SpecJSON `json:"runs"`
	WallBudgetMS int64          `json:"wall_budget_ms,omitempty"`
	EventBudget  uint64         `json:"event_budget,omitempty"`
	// MetricsInterval ("10us"-style) arms the epoch-resolution sampler
	// on every run; each fresh cell then emits a "metrics" stream event
	// with its time-series dump. It participates in the spec key, so
	// metrics-armed and plain submissions cache separately (exactly the
	// exp.Spec contract).
	MetricsInterval string `json:"metrics_interval,omitempty"`
}

// SubmitResponse acknowledges an admitted job.
type SubmitResponse struct {
	ID    string   `json:"id"`
	State string   `json:"state"`
	Keys  []string `json:"keys"`
}

// handleSubmit admits one job. With ?stream=1 the job is bound to the
// request: the response is the job's SSE stream and a client disconnect
// cancels the simulation (the end-to-end cancellation path).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining: not admitting jobs", http.StatusServiceUnavailable)
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	var req SubmitRequest
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad submission: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Runs) == 0 {
		http.Error(w, "bad submission: no runs", http.StatusBadRequest)
		return
	}
	metricsInterval, err := exp.ParseSimDuration(req.MetricsInterval)
	if err != nil {
		http.Error(w, "bad submission: metrics_interval: "+err.Error(), http.StatusBadRequest)
		return
	}
	specs := make([]exp.Spec, len(req.Runs))
	keys := make([]string, len(req.Runs))
	for i, sj := range req.Runs {
		spec, err := sj.ToSpec()
		if err != nil {
			http.Error(w, fmt.Sprintf("bad submission: run %d: %v", i, err), http.StatusBadRequest)
			return
		}
		spec.MetricsInterval = metricsInterval
		specs[i] = spec
		keys[i] = spec.Key()
	}

	stream := r.URL.Query().Get("stream") == "1"
	base := context.Background()
	if stream {
		// Bind the job to the request: a dropped client cancels the
		// simulation within one kernel check interval.
		base = r.Context()
	}
	wall := s.cfg.WallBudget
	if req.WallBudgetMS > 0 {
		reqWall := time.Duration(req.WallBudgetMS) * time.Millisecond
		if wall == 0 || reqWall < wall {
			wall = reqWall
		}
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if wall > 0 {
		ctx, cancel = context.WithTimeout(base, wall)
	} else {
		ctx, cancel = context.WithCancel(base)
	}
	id := fmt.Sprintf("j%d", s.nextID.Add(1))
	j := newJob(id, keys, ctx, cancel)
	j.specs = specs
	j.eventBudget = s.cfg.EventBudget
	if req.EventBudget > 0 && (j.eventBudget == 0 || req.EventBudget < j.eventBudget) {
		j.eventBudget = req.EventBudget
	}

	// Admission: non-blocking send into the bounded queue under the
	// read lock (Drain holds the write lock while closing the channel).
	s.admitMu.RLock()
	admitted := false
	if !s.draining.Load() {
		select {
		case s.queue <- j:
			admitted = true
		default:
		}
	}
	s.admitMu.RUnlock()
	if !admitted {
		cancel()
		if s.draining.Load() {
			http.Error(w, "draining: not admitting jobs", http.StatusServiceUnavailable)
			return
		}
		s.rejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter/time.Second)))
		http.Error(w, "queue full: retry later", http.StatusTooManyRequests)
		return
	}
	s.jobMu.Lock()
	s.jobs[id] = j
	s.jobMu.Unlock()
	s.submitted.Add(1)
	s.cfg.Logf("serve: admitted %s (%d cells, stream=%v)", id, len(keys), stream)
	j.publish("status", j.status(false))

	if !stream {
		writeJSON(w, http.StatusAccepted, SubmitResponse{ID: id, State: StateQueued, Keys: keys})
		return
	}
	s.streamJob(w, r, j)
}

// lookup resolves {id} or answers 404.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *job {
	s.jobMu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.jobMu.Unlock()
	if j == nil {
		http.Error(w, "unknown job", http.StatusNotFound)
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.lookup(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.status(true))
	}
}

// handleResult serves the job's per-cell results — the exact stored
// bytes, so cached and fresh deliveries are byte-identical — once the
// job is terminal; before that it answers 202 with the status.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	state := j.state
	results := append([]json.RawMessage(nil), j.results...)
	j.mu.Unlock()
	if state != StateDone && state != StateFailed && state != StateCanceled {
		writeJSON(w, http.StatusAccepted, j.status(false))
		return
	}
	out := struct {
		Status  Status            `json:"status"`
		Results []json.RawMessage `json:"results"`
	}{Status: j.status(true), Results: results}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if j := s.lookup(w, r); j != nil {
		s.streamJob(w, r, j)
	}
}

// handleCancel cancels a job; idempotent, 200 either way.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	s.cancelJob(j, "canceled by client")
	writeJSON(w, http.StatusOK, j.status(false))
}

// cancelJob cancels j's context and, if j had not started, finishes it
// immediately so it cannot occupy a runner.
func (s *Server) cancelJob(j *job, why string) {
	j.cancel()
	if j.setStateIf(StateQueued, StateCanceled) {
		s.canceled.Add(1)
		j.finish(StateCanceled, why, j.status(false))
	}
}

// streamJob writes the job's event log as SSE until the job finishes or
// the client goes away.
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request, j *job) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	replay, live := j.subscribe()
	defer j.unsubscribe(live)
	for _, ev := range replay {
		writeSSE(w, ev)
	}
	fl.Flush()
	if live == nil {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-live:
			if !ok {
				return
			}
			writeSSE(w, ev)
			fl.Flush()
		}
	}
}

func writeSSE(w http.ResponseWriter, ev Event) {
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, ev.Data)
}

// handleMetrics dumps the daemon registry as JSON after taking one
// fresh observation (manual registries sample on demand).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.regMu.Lock()
	s.reg.Observe()
	d := s.reg.Dump()
	s.regMu.Unlock()
	writeJSON(w, http.StatusOK, d)
}

// runner drains the admission queue until Drain closes it.
func (s *Server) runner() {
	defer s.runWG.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// cellResult is the payload of "result" stream events.
type cellResult struct {
	Index  int    `json:"index"`
	Key    string `json:"key"`
	Cached bool   `json:"cached"`
	Error  string `json:"error,omitempty"`
}

// metricsEvent is the payload of "metrics" stream events: the epoch
// time-series of one freshly simulated, metrics-armed cell.
type metricsEvent struct {
	Index int             `json:"index"`
	Key   string          `json:"key"`
	Dump  json.RawMessage `json:"dump"`
}

// runJob executes one job's cells sequentially: store lookup first
// (cache hits never simulate), then a budgeted, cancelable, panic-
// contained simulation; fresh results are persisted and journaled
// before the next cell starts.
func (s *Server) runJob(j *job) {
	if !j.setStateIf(StateQueued, StateRunning) {
		return // canceled while queued
	}
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	j.publish("status", j.status(false))
	remaining := j.eventBudget
	failed := false
	for i, spec := range j.specs {
		if err := j.ctx.Err(); err != nil {
			s.canceled.Add(1)
			j.finish(StateCanceled, err.Error(), j.status(false))
			return
		}
		key := j.keys[i]
		if s.cfg.Store != nil {
			raw, hit, err := s.cfg.Store.Get(key)
			if err != nil {
				s.cfg.Logf("serve: %s: store read for %s: %v", j.id, key, err)
			} else if hit {
				s.cacheHits.Add(1)
				j.completeCell(i, raw, "", true)
				continue
			}
		}
		budget := exp.Budget{CheckEvery: s.cfg.CheckEvery}
		if j.eventBudget > 0 {
			if remaining == 0 {
				j.completeCell(i, nil, "event budget exhausted", false)
				failed = true
				continue
			}
			budget.MaxEvents = remaining
		}
		res, err := exp.RunCellBudgeted(j.ctx, spec, budget)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				s.canceled.Add(1)
				why := "canceled"
				if errors.Is(err, context.DeadlineExceeded) {
					why = "wall budget exhausted"
				}
				j.finish(StateCanceled, why, j.status(false))
				return
			}
			// Budget overruns, audit violations and contained panics fail
			// this cell only; the job carries on so independent cells
			// still complete (mirroring the sweep pool's contract).
			s.cfg.Logf("serve: %s: cell %s failed: %v", j.id, key, err)
			j.completeCell(i, nil, err.Error(), false)
			failed = true
			continue
		}
		s.cellsRun.Add(1)
		if j.eventBudget > 0 {
			if res.Events >= remaining {
				remaining = 0
			} else {
				remaining -= res.Events
			}
		}
		raw, merr := json.Marshal(res)
		if merr != nil {
			j.completeCell(i, nil, "result not encodable: "+merr.Error(), false)
			failed = true
			continue
		}
		if s.cfg.Store != nil {
			if err := s.cfg.Store.Put(key, raw); err != nil {
				s.cfg.Logf("serve: %s: store write for %s: %v", j.id, key, err)
			}
		}
		if s.cfg.Journal != nil {
			if err := s.cfg.Journal.Append(key, res); err != nil {
				s.cfg.Logf("serve: %s: journal append for %s: %v", j.id, key, err)
			}
		}
		j.completeCell(i, raw, "", false)
		if res.Metrics != nil {
			if md, err := json.Marshal(res.Metrics); err == nil {
				j.publish("metrics", metricsEvent{Index: i, Key: key, Dump: md})
			}
		}
	}
	if failed {
		j.finish(StateFailed, "one or more cells failed", j.status(true))
	} else {
		j.finish(StateDone, "", j.status(false))
	}
}

// Drain stops admission and waits for queued and running jobs to
// finish. When ctx expires first, every remaining job is canceled and
// the wait resumes until the runners exit (cancellation aborts each
// kernel within one check interval, so this is prompt). Drain is
// idempotent; it returns ctx's error when the deadline forced
// cancellation.
func (s *Server) Drain(ctx context.Context) error {
	if s.draining.Swap(true) {
		<-s.drained()
		return nil
	}
	s.cfg.Logf("serve: draining: admission stopped")
	// Close the queue so idle runners exit; in-flight sends are excluded
	// by the write lock.
	s.admitMu.Lock()
	close(s.queue)
	s.admitMu.Unlock()

	select {
	case <-s.drained():
		return nil
	case <-ctx.Done():
	}
	s.cfg.Logf("serve: drain deadline hit: canceling remaining jobs")
	s.jobMu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.jobMu.Unlock()
	for _, j := range jobs {
		s.cancelJob(j, "canceled by drain deadline")
	}
	<-s.drained()
	return ctx.Err()
}

// drained returns a channel closed when every runner has exited.
func (s *Server) drained() <-chan struct{} {
	ch := make(chan struct{})
	go func() {
		s.runWG.Wait()
		close(ch)
	}()
	return ch
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}
