// Package serve is the memnetd daemon core: an overload-tolerant HTTP
// front end over the exp harness. Submissions are JSON batches of
// declarative specs (the same SpecJSON shape `memnetsim -config` reads);
// admitted jobs run on a bounded worker pool with per-job wall/event
// budgets and per-cell panic containment, stream their progress and
// epoch metrics over SSE, and persist every fresh result in a
// content-addressed store so duplicate submissions are cache hits served
// without simulation.
//
// Robustness contracts, in priority order:
//
//   - Overload degrades, never topples. Admission is a bounded queue;
//     when it is full the daemon answers 429 with Retry-After instead of
//     queueing unboundedly, and when it is draining it answers 503.
//   - Abandonment is cheap. Every job runs under a context; a canceled
//     job (client disconnect on a streaming submit, DELETE, or drain
//     timeout) stops consuming CPU within one kernel check interval.
//   - A poisoned cell fails alone. Panics inside a simulation come back
//     as exp.PanicError per cell; the job reports the failure and the
//     daemon keeps serving.
//   - Results survive the process. Fresh results are stored atomically
//     (and journaled when a journal is attached) before the job
//     completes, so a crash never re-simulates finished work.
package serve

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"memnet/internal/exp"
	"memnet/internal/metrics"
)

// Defaults.
const (
	DefaultQueueDepth = 16
	DefaultRunners    = 1
	DefaultMaxBody    = 1 << 20
	DefaultRetryAfter = 2 * time.Second
)

// Config parameterizes a Server.
type Config struct {
	// Store persists results content-addressed by spec key (nil = no
	// persistence, every submission simulates).
	Store *Store
	// Journal, when non-nil, receives every fresh result (exp JSONL
	// format), so daemon results merge with CLI sweeps and survive
	// crashes. The journal's flock guarantees no CLI can interleave.
	Journal *exp.Journal
	// Accepts, when non-nil, is the write-ahead accept journal: every
	// admitted job is fsynced to it before the 202 goes out and
	// tombstoned when it finishes, so Recover can re-enqueue whatever a
	// crashed daemon still owed. An append failure (full disk) degrades
	// to a counter — the job still runs, it just is not durable.
	Accepts *AcceptLog
	// AuthToken, when non-empty, gates the mutating endpoints (POST
	// /jobs, DELETE /jobs/{id}) behind "Authorization: Bearer <token>"
	// with a constant-time compare; everything else stays open so load
	// balancers and dashboards keep working.
	AuthToken string
	// StoreMaxBytes and StoreMaxAge arm the store GC, which runs after
	// every fresh Put with in-flight job keys pinned. Zero disables the
	// corresponding policy.
	StoreMaxBytes int64
	StoreMaxAge   time.Duration
	// QueueDepth bounds admitted-but-not-running jobs (0 =
	// DefaultQueueDepth). A full queue rejects with 429 + Retry-After.
	QueueDepth int
	// Runners is the number of concurrent job executors (0 =
	// DefaultRunners). Cells within a job run sequentially.
	Runners int
	// WallBudget caps a job's wall-clock runtime (0 = unlimited); the
	// job is canceled mid-kernel when it expires.
	WallBudget time.Duration
	// EventBudget caps a job's total simulated events across its cells
	// (0 = unlimited); exceeding it fails the job with a BudgetError.
	EventBudget uint64
	// CheckEvery is the kernel cancellation-check stride in events
	// (0 = sim.DefaultCheckEvery).
	CheckEvery uint64
	// MaxBodyBytes bounds a submission body (0 = DefaultMaxBody).
	MaxBodyBytes int64
	// RetryAfter is the backpressure hint on 429 responses
	// (0 = DefaultRetryAfter).
	RetryAfter time.Duration
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// Server owns the admission queue, the job table and the runner pool.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	runWG sync.WaitGroup

	// admitMu serializes admission against drain: queue sends hold the
	// read side so Drain can close the queue without racing a send.
	admitMu  sync.RWMutex
	queue    chan *job
	draining atomic.Bool

	jobMu  sync.Mutex
	jobs   map[string]*job
	nextID atomic.Uint64

	// Daemon-level gauges/counters, sampled by the manual metrics
	// registry and reported raw on /statusz.
	submitted atomic.Uint64 // jobs admitted
	rejected  atomic.Uint64 // 429s issued
	cacheHits atomic.Uint64 // cells served from the store
	cellsRun  atomic.Uint64 // cells simulated fresh
	canceled  atomic.Uint64 // jobs canceled
	inFlight  atomic.Int64  // jobs currently running
	recovered atomic.Uint64 // jobs replayed from the accept journal
	unauth    atomic.Uint64 // 401s issued
	putErrors atomic.Uint64 // store writes that failed (disk full, ...)
	walErrors atomic.Uint64 // accept-journal appends that failed

	regMu sync.Mutex
	reg   *metrics.Registry
}

// New builds a server and starts its runner pool. Callers must Drain
// before discarding it, or the runners leak.
func New(cfg Config) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.Runners <= 0 {
		cfg.Runners = DefaultRunners
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBody
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &Server{
		cfg:   cfg,
		queue: make(chan *job, cfg.QueueDepth),
		jobs:  map[string]*job{},
	}
	if cfg.Accepts != nil {
		// Start the id counter past every id the accept journal has ever
		// seen — tombstones included, not just pending jobs. Reusing a
		// tombstoned id would let its stale "done" line cancel the new
		// job's accept record on the next replay, silently dropping an
		// acked submission.
		s.nextID.Store(cfg.Accepts.MaxSeenID())
	}
	s.initMetrics()
	s.initMux()
	for i := 0; i < cfg.Runners; i++ {
		s.runWG.Add(1)
		go s.runner()
	}
	return s
}

// initMetrics registers the daemon gauges on a manual (wall-clock)
// registry, mirroring the dist coordinator's style.
func (s *Server) initMetrics() {
	s.reg = metrics.NewManual(metrics.Config{})
	s.reg.Counter("serve.jobs.submitted", func() float64 { return float64(s.submitted.Load()) })
	s.reg.Counter("serve.jobs.rejected", func() float64 { return float64(s.rejected.Load()) })
	s.reg.Counter("serve.jobs.canceled", func() float64 { return float64(s.canceled.Load()) })
	s.reg.Counter("serve.cells.cache_hits", func() float64 { return float64(s.cacheHits.Load()) })
	s.reg.Counter("serve.cells.run", func() float64 { return float64(s.cellsRun.Load()) })
	s.reg.Gauge("serve.queue.depth", func() float64 { return float64(len(s.queue)) })
	s.reg.Gauge("serve.jobs.in_flight", func() float64 { return float64(s.inFlight.Load()) })
	s.reg.Counter("serve.jobs.recovered", func() float64 { return float64(s.recovered.Load()) })
	s.reg.Counter("serve.jobs.unauthorized", func() float64 { return float64(s.unauth.Load()) })
	s.reg.Counter("serve.store.put_errors", func() float64 { return float64(s.putErrors.Load()) })
	s.reg.Counter("serve.accept_journal.errors", func() float64 { return float64(s.walErrors.Load()) })
	if s.cfg.Store != nil {
		st := s.cfg.Store
		s.reg.Counter("serve.store.quarantined", func() float64 { return float64(st.Quarantined()) })
		s.reg.Counter("serve.store.evictions", func() float64 { return float64(st.Evictions()) })
		// Cached directory scan: frequent scrapes cost O(1) filesystem
		// work (the cache invalidates on every store mutation and after
		// ScanCacheTTL). A scan failure reports -1, never a phantom 0.
		s.reg.Gauge("serve.store.bytes", func() float64 {
			_, bytes, err := st.CachedScan()
			if err != nil {
				return -1
			}
			return float64(bytes)
		})
	}
	s.reg.StartManual()
}

// Stats is the /statusz payload. The store block reports a cached scan
// (fresh within ScanCacheTTL of any store mutation): entry count, total
// bytes, lifetime quarantine/eviction counters, and — crucially — the
// scan error itself when the store directory cannot be read, instead of
// silently claiming an empty store.
type Stats struct {
	Submitted      uint64 `json:"submitted"`
	Recovered      uint64 `json:"recovered"`
	Rejected       uint64 `json:"rejected"`
	Unauthorized   uint64 `json:"unauthorized"`
	Canceled       uint64 `json:"canceled"`
	CacheHits      uint64 `json:"cache_hits"`
	CellsRun       uint64 `json:"cells_run"`
	QueueLen       int    `json:"queue_len"`
	InFlight       int64  `json:"in_flight"`
	Draining       bool   `json:"draining"`
	StoreEntries   int    `json:"store_entries"`
	StoreBytes     int64  `json:"store_bytes"`
	StorePutErrors uint64 `json:"store_put_errors"`
	Quarantined    uint64 `json:"quarantined"`
	Evictions      uint64 `json:"evictions"`
	AcceptErrors   uint64 `json:"accept_journal_errors"`
	StoreScanError string `json:"store_scan_error,omitempty"`
}

// Stats snapshots the daemon counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Submitted:      s.submitted.Load(),
		Recovered:      s.recovered.Load(),
		Rejected:       s.rejected.Load(),
		Unauthorized:   s.unauth.Load(),
		Canceled:       s.canceled.Load(),
		CacheHits:      s.cacheHits.Load(),
		CellsRun:       s.cellsRun.Load(),
		QueueLen:       len(s.queue),
		InFlight:       s.inFlight.Load(),
		Draining:       s.draining.Load(),
		StorePutErrors: s.putErrors.Load(),
		AcceptErrors:   s.walErrors.Load(),
	}
	if s.cfg.Store != nil {
		entries, bytes, err := s.cfg.Store.CachedScan()
		st.StoreEntries = entries
		st.StoreBytes = bytes
		if err != nil {
			st.StoreScanError = err.Error()
		}
		st.Quarantined = s.cfg.Store.Quarantined()
		st.Evictions = s.cfg.Store.Evictions()
	}
	return st
}

// Handler returns the daemon's HTTP mux.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) initMux() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	s.mux.HandleFunc("GET /statusz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	s.mux.HandleFunc("GET /metricsz", s.handleMetrics)
	s.mux.HandleFunc("POST /jobs", s.authed(s.handleSubmit))
	s.mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("DELETE /jobs/{id}", s.authed(s.handleCancel))
}

// authed wraps a mutating handler behind the optional shared-secret
// check: "Authorization: Bearer <token>", compared in constant time so
// the 401 latency leaks nothing about how much of the token matched.
func (s *Server) authed(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.AuthToken != "" {
			got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
			if !ok || subtle.ConstantTimeCompare([]byte(got), []byte(s.cfg.AuthToken)) != 1 {
				s.unauth.Add(1)
				w.Header().Set("WWW-Authenticate", "Bearer")
				http.Error(w, "missing or invalid bearer token", http.StatusUnauthorized)
				return
			}
		}
		h(w, r)
	}
}

// SubmitRequest is the POST /jobs body: the same declarative runs a
// memnetsim config file holds, plus optional per-job budget overrides
// (each capped by the server's own configured budget).
type SubmitRequest struct {
	Runs         []exp.SpecJSON `json:"runs"`
	WallBudgetMS int64          `json:"wall_budget_ms,omitempty"`
	EventBudget  uint64         `json:"event_budget,omitempty"`
	// MetricsInterval ("10us"-style) arms the epoch-resolution sampler
	// on every run; each fresh cell then emits a "metrics" stream event
	// with its time-series dump. It participates in the spec key, so
	// metrics-armed and plain submissions cache separately (exactly the
	// exp.Spec contract).
	MetricsInterval string `json:"metrics_interval,omitempty"`
}

// SubmitResponse acknowledges an admitted job. Durable reports whether
// the accept record reached stable storage before this ack: false means
// the job runs but will not survive a crash (no accept journal, or the
// append failed on a full disk) — clients that need the durability
// guarantee must check it rather than trust the 202 alone.
type SubmitResponse struct {
	ID      string   `json:"id"`
	State   string   `json:"state"`
	Keys    []string `json:"keys"`
	Durable bool     `json:"durable"`
}

// DurableHeader is set on every submit response ("true"/"false"),
// mirroring SubmitResponse.Durable for streaming submissions whose body
// is the SSE event stream rather than the JSON ack.
const DurableHeader = "X-Memnetd-Durable"

// handleSubmit admits one job. With ?stream=1 the job is bound to the
// request: the response is the job's SSE stream and a client disconnect
// cancels the simulation (the end-to-end cancellation path).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining: not admitting jobs", http.StatusServiceUnavailable)
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	var req SubmitRequest
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad submission: "+err.Error(), http.StatusBadRequest)
		return
	}
	specs, keys, err := specsFromAccepted(AcceptedJob{
		Runs:            req.Runs,
		MetricsInterval: req.MetricsInterval,
	})
	if err != nil {
		http.Error(w, "bad submission: "+err.Error(), http.StatusBadRequest)
		return
	}

	stream := r.URL.Query().Get("stream") == "1"
	base := context.Background()
	if stream {
		// Bind the job to the request: a dropped client cancels the
		// simulation within one kernel check interval.
		base = r.Context()
	}
	id := fmt.Sprintf("j%d", s.nextID.Add(1))
	j := s.buildJob(id, specs, keys, base, req.WallBudgetMS, req.EventBudget)

	// Admission: non-blocking send into the bounded queue under the
	// read lock (Drain holds the write lock while closing the channel).
	s.admitMu.RLock()
	admitted := false
	if !s.draining.Load() {
		select {
		case s.queue <- j:
			admitted = true
		default:
		}
	}
	s.admitMu.RUnlock()
	if !admitted {
		j.cancel()
		if s.draining.Load() {
			http.Error(w, "draining: not admitting jobs", http.StatusServiceUnavailable)
			return
		}
		s.rejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter/time.Second)))
		http.Error(w, "queue full: retry later", http.StatusTooManyRequests)
		return
	}
	// Write-ahead: the accept record must be on disk before the client
	// is acked. A failed append (full disk) degrades rather than failing
	// the job — but the degradation is told to the client (Durable:false
	// in the ack and the X-Memnetd-Durable header), not just counted, so
	// a caller that needs crash-survival can resubmit elsewhere instead
	// of trusting a 202 that only looks durable.
	durable := false
	if s.cfg.Accepts != nil {
		rec := AcceptedJob{
			ID:              id,
			Runs:            req.Runs,
			WallBudgetMS:    req.WallBudgetMS,
			EventBudget:     req.EventBudget,
			MetricsInterval: req.MetricsInterval,
		}
		if err := s.cfg.Accepts.Accept(rec); err != nil {
			s.walErrors.Add(1)
			s.cfg.Logf("serve: accept journal append for %s: %v", id, err)
		} else {
			durable = true
		}
	}
	w.Header().Set(DurableHeader, strconv.FormatBool(durable))
	s.jobMu.Lock()
	s.jobs[id] = j
	s.jobMu.Unlock()
	s.submitted.Add(1)
	s.cfg.Logf("serve: admitted %s (%d cells, stream=%v)", id, len(keys), stream)
	j.publish("status", j.status(false))

	if !stream {
		writeJSON(w, http.StatusAccepted, SubmitResponse{ID: id, State: StateQueued, Keys: keys, Durable: durable})
		return
	}
	s.streamJob(w, r, j)
}

// specsFromAccepted rebuilds runnable specs and their cache keys from a
// submission's durable form — the one parse path both fresh submissions
// and crash recovery go through, so a recovered job is bit-identical to
// its original admission.
func specsFromAccepted(aj AcceptedJob) ([]exp.Spec, []string, error) {
	if len(aj.Runs) == 0 {
		return nil, nil, errors.New("no runs")
	}
	metricsInterval, err := exp.ParseSimDuration(aj.MetricsInterval)
	if err != nil {
		return nil, nil, fmt.Errorf("metrics_interval: %w", err)
	}
	specs := make([]exp.Spec, len(aj.Runs))
	keys := make([]string, len(aj.Runs))
	for i, sj := range aj.Runs {
		spec, err := sj.ToSpec()
		if err != nil {
			return nil, nil, fmt.Errorf("run %d: %w", i, err)
		}
		spec.MetricsInterval = metricsInterval
		specs[i] = spec
		keys[i] = spec.Key()
	}
	return specs, keys, nil
}

// buildJob assembles a runnable job: per-job contexts and budget
// overrides, each capped by the server's own configured budget.
func (s *Server) buildJob(id string, specs []exp.Spec, keys []string, base context.Context, wallMS int64, eventBudget uint64) *job {
	wall := s.cfg.WallBudget
	if wallMS > 0 {
		reqWall := time.Duration(wallMS) * time.Millisecond
		if wall == 0 || reqWall < wall {
			wall = reqWall
		}
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if wall > 0 {
		ctx, cancel = context.WithTimeout(base, wall)
	} else {
		ctx, cancel = context.WithCancel(base)
	}
	j := newJob(id, keys, ctx, cancel)
	j.specs = specs
	j.eventBudget = s.cfg.EventBudget
	if eventBudget > 0 && (j.eventBudget == 0 || eventBudget < j.eventBudget) {
		j.eventBudget = eventBudget
	}
	return j
}

// Recover re-enqueues every job a previous process life accepted but
// never finished — the replay half of the write-ahead accept journal.
// Cells whose results already reached the store come back as cache
// hits, so only genuinely lost compute re-runs. Call it once, after New
// and before serving traffic; it blocks until everything is enqueued
// (the runner pool drains the queue underneath it, so pending sets
// larger than the queue depth recover fine). It returns the number of
// jobs re-enqueued.
func (s *Server) Recover(pending []AcceptedJob) int {
	n := 0
	for _, aj := range pending {
		specs, keys, err := specsFromAccepted(aj)
		if err != nil || aj.ID == "" {
			// A record that cannot be rebuilt (version drift, hand-edited
			// journal) would otherwise replay forever: tombstone it.
			s.cfg.Logf("serve: recover %q: unreplayable (%v); tombstoning", aj.ID, err)
			if s.cfg.Accepts != nil && aj.ID != "" {
				if ferr := s.cfg.Accepts.Finish(aj.ID); ferr != nil {
					s.walErrors.Add(1)
				}
			}
			continue
		}
		s.bumpID(aj.ID)
		j := s.buildJob(aj.ID, specs, keys, context.Background(), aj.WallBudgetMS, aj.EventBudget)
		s.admitMu.RLock()
		if s.draining.Load() {
			s.admitMu.RUnlock()
			j.cancel()
			break
		}
		s.queue <- j
		s.admitMu.RUnlock()
		s.jobMu.Lock()
		s.jobs[aj.ID] = j
		s.jobMu.Unlock()
		s.recovered.Add(1)
		n++
		s.cfg.Logf("serve: recovered %s (%d cells)", aj.ID, len(keys))
		j.publish("status", j.status(false))
	}
	return n
}

// bumpID raises the id counter to at least the numeric part of a
// recovered id, so fresh admissions never collide with replayed jobs.
func (s *Server) bumpID(id string) {
	n, ok := jobIDNum(id)
	if !ok {
		return
	}
	for {
		cur := s.nextID.Load()
		if cur >= n || s.nextID.CompareAndSwap(cur, n) {
			return
		}
	}
}

// lookup resolves {id} or answers 404.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *job {
	s.jobMu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.jobMu.Unlock()
	if j == nil {
		http.Error(w, "unknown job", http.StatusNotFound)
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.lookup(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.status(true))
	}
}

// handleResult serves the job's per-cell results — the exact stored
// bytes, so cached and fresh deliveries are byte-identical — once the
// job is terminal; before that it answers 202 with the status.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	state := j.state
	results := append([]json.RawMessage(nil), j.results...)
	j.mu.Unlock()
	if state != StateDone && state != StateFailed && state != StateCanceled {
		writeJSON(w, http.StatusAccepted, j.status(false))
		return
	}
	out := struct {
		Status  Status            `json:"status"`
		Results []json.RawMessage `json:"results"`
	}{Status: j.status(true), Results: results}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if j := s.lookup(w, r); j != nil {
		s.streamJob(w, r, j)
	}
}

// handleCancel cancels a job; idempotent, 200 either way.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	s.cancelJob(j, "canceled by client")
	writeJSON(w, http.StatusOK, j.status(false))
}

// cancelJob cancels j's context and, if j had not started, finishes it
// immediately so it cannot occupy a runner.
func (s *Server) cancelJob(j *job, why string) {
	j.cancel()
	j.mu.Lock()
	queued := j.state == StateQueued
	j.mu.Unlock()
	if queued {
		// Losing the race to a runner is fine: the canceled context
		// bounces the job straight back through runJob's finish path.
		s.finishJob(j, StateCanceled, why, j.status(false))
	}
}

// finishJob moves j to a terminal state and, when this call performed
// the transition, updates the cancel counter and tombstones the job in
// the accept journal. Drain-canceled jobs skip the tombstone on
// purpose: they are the jobs the next process life must resume.
func (s *Server) finishJob(j *job, state, errMsg string, summary any) bool {
	if !j.finish(state, errMsg, summary) {
		return false
	}
	if state == StateCanceled {
		s.canceled.Add(1)
	}
	skip := state == StateCanceled && j.skipTombstone.Load()
	if s.cfg.Accepts != nil && !skip {
		if err := s.cfg.Accepts.Finish(j.id); err != nil {
			s.walErrors.Add(1)
			s.cfg.Logf("serve: accept journal tombstone for %s: %v", j.id, err)
		}
	}
	return true
}

// streamJob writes the job's event log as SSE until the job finishes or
// the client goes away.
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request, j *job) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	replay, live := j.subscribe()
	defer j.unsubscribe(live)
	for _, ev := range replay {
		writeSSE(w, ev)
	}
	fl.Flush()
	if live == nil {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-live:
			if !ok {
				return
			}
			writeSSE(w, ev)
			fl.Flush()
		}
	}
}

func writeSSE(w http.ResponseWriter, ev Event) {
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, ev.Data)
}

// handleMetrics dumps the daemon registry as JSON after taking one
// fresh observation (manual registries sample on demand).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.regMu.Lock()
	s.reg.Observe()
	d := s.reg.Dump()
	s.regMu.Unlock()
	writeJSON(w, http.StatusOK, d)
}

// runner drains the admission queue until Drain closes it.
func (s *Server) runner() {
	defer s.runWG.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// cellResult is the payload of "result" stream events.
type cellResult struct {
	Index  int    `json:"index"`
	Key    string `json:"key"`
	Cached bool   `json:"cached"`
	Error  string `json:"error,omitempty"`
}

// metricsEvent is the payload of "metrics" stream events: the epoch
// time-series of one freshly simulated, metrics-armed cell.
type metricsEvent struct {
	Index int             `json:"index"`
	Key   string          `json:"key"`
	Dump  json.RawMessage `json:"dump"`
}

// runJob executes one job's cells sequentially: store lookup first
// (cache hits never simulate), then a budgeted, cancelable, panic-
// contained simulation; fresh results are persisted and journaled
// before the next cell starts.
func (s *Server) runJob(j *job) {
	if !j.setStateIf(StateQueued, StateRunning) {
		return // canceled while queued
	}
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	j.publish("status", j.status(false))
	remaining := j.eventBudget
	failed := false
	for i, spec := range j.specs {
		if err := j.ctx.Err(); err != nil {
			s.finishJob(j, StateCanceled, err.Error(), j.status(false))
			return
		}
		key := j.keys[i]
		if s.cfg.Store != nil {
			raw, hit, err := s.cfg.Store.Get(key)
			if err != nil {
				// ErrCorrupt means the entry was quarantined and this is
				// now a cache miss; either way the cell re-simulates —
				// corrupt bytes are never served and never a 500.
				s.cfg.Logf("serve: %s: store read for %s: %v", j.id, key, err)
			} else if hit {
				s.cacheHits.Add(1)
				j.completeCell(i, raw, "", true)
				continue
			}
		}
		budget := exp.Budget{CheckEvery: s.cfg.CheckEvery}
		if j.eventBudget > 0 {
			if remaining == 0 {
				j.completeCell(i, nil, "event budget exhausted", false)
				failed = true
				continue
			}
			budget.MaxEvents = remaining
		}
		res, err := exp.RunCellBudgeted(j.ctx, spec, budget)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				why := "canceled"
				if errors.Is(err, context.DeadlineExceeded) {
					why = "wall budget exhausted"
				}
				s.finishJob(j, StateCanceled, why, j.status(false))
				return
			}
			// Budget overruns, audit violations and contained panics fail
			// this cell only; the job carries on so independent cells
			// still complete (mirroring the sweep pool's contract).
			s.cfg.Logf("serve: %s: cell %s failed: %v", j.id, key, err)
			j.completeCell(i, nil, err.Error(), false)
			failed = true
			continue
		}
		s.cellsRun.Add(1)
		if j.eventBudget > 0 {
			if res.Events >= remaining {
				remaining = 0
			} else {
				remaining -= res.Events
			}
		}
		raw, merr := json.Marshal(res)
		if merr != nil {
			j.completeCell(i, nil, "result not encodable: "+merr.Error(), false)
			failed = true
			continue
		}
		if s.cfg.Store != nil {
			if err := s.cfg.Store.Put(key, raw); err != nil {
				// Disk-full degradation: the fresh result still goes to
				// the client; only the cache misses out.
				s.putErrors.Add(1)
				s.cfg.Logf("serve: %s: store write for %s: %v", j.id, key, err)
			} else if s.cfg.StoreMaxBytes > 0 || s.cfg.StoreMaxAge > 0 {
				gcCfg := GCConfig{
					MaxBytes: s.cfg.StoreMaxBytes,
					MaxAge:   s.cfg.StoreMaxAge,
					Pinned:   s.pinnedKeys(),
				}
				if _, gerr := s.cfg.Store.GC(gcCfg); gerr != nil {
					s.cfg.Logf("serve: store gc: %v", gerr)
				}
			}
		}
		if s.cfg.Journal != nil {
			if err := s.cfg.Journal.Append(key, res); err != nil {
				s.cfg.Logf("serve: %s: journal append for %s: %v", j.id, key, err)
			}
		}
		j.completeCell(i, raw, "", false)
		if res.Metrics != nil {
			if md, err := json.Marshal(res.Metrics); err == nil {
				j.publish("metrics", metricsEvent{Index: i, Key: key, Dump: md})
			}
		}
	}
	if failed {
		s.finishJob(j, StateFailed, "one or more cells failed", j.status(true))
	} else {
		s.finishJob(j, StateDone, "", j.status(false))
	}
}

// pinnedKeys snapshots the spec keys of every non-terminal job so GC
// never evicts an entry an in-flight job just wrote or is about to hit.
func (s *Server) pinnedKeys() map[string]bool {
	pinned := map[string]bool{}
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	for _, j := range s.jobs {
		j.mu.Lock()
		if j.state == StateQueued || j.state == StateRunning {
			for _, k := range j.keys {
				pinned[k] = true
			}
		}
		j.mu.Unlock()
	}
	return pinned
}

// Drain stops admission and waits for queued and running jobs to
// finish. When ctx expires first, every remaining job is canceled and
// the wait resumes until the runners exit (cancellation aborts each
// kernel within one check interval, so this is prompt). Drain is
// idempotent; it returns ctx's error when the deadline forced
// cancellation.
func (s *Server) Drain(ctx context.Context) error {
	if s.draining.Swap(true) {
		<-s.drained()
		return nil
	}
	s.cfg.Logf("serve: draining: admission stopped")
	// Close the queue so idle runners exit; in-flight sends are excluded
	// by the write lock.
	s.admitMu.Lock()
	close(s.queue)
	s.admitMu.Unlock()

	select {
	case <-s.drained():
		return nil
	case <-ctx.Done():
	}
	s.cfg.Logf("serve: drain deadline hit: canceling remaining jobs")
	s.jobMu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.jobMu.Unlock()
	for _, j := range jobs {
		// A drain-deadline cancel is the one terminal state that must NOT
		// tombstone the accept journal: the job was admitted and never
		// served, so the next process life owes it a replay.
		j.skipTombstone.Store(true)
		s.cancelJob(j, "canceled by drain deadline")
	}
	<-s.drained()
	return ctx.Err()
}

// drained returns a channel closed when every runner has exited.
func (s *Server) drained() <-chan struct{} {
	ch := make(chan struct{})
	go func() {
		s.runWG.Wait()
		close(ch)
	}()
	return ch
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}
