// Filesystem seam for the daemon's durable state. The store and the
// accept journal perform every disk operation through FS/File instead
// of calling the os package directly, so tests can inject the failures
// a long-lived deployment actually meets — ENOSPC mid-append, a torn
// write under a crash, an unreadable entry — deterministically and
// without root or loop devices. Production code always runs on OSFS,
// which delegates 1:1 to the os package.
package serve

import (
	"io"
	"io/fs"
	"os"
	"time"
)

// FS is the set of filesystem operations the store and accept journal
// need. Implementations must be safe for concurrent use.
type FS interface {
	MkdirAll(path string, perm fs.FileMode) error
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]fs.DirEntry, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Stat(name string) (fs.FileInfo, error)
	Chtimes(name string, atime, mtime time.Time) error
}

// File is the open-file surface the durable paths use: sequential
// reads for replay, appends, fsync, tail truncation, and the raw fd
// for the advisory flock.
type File interface {
	io.ReadWriteCloser
	Name() string
	Sync() error
	Truncate(size int64) error
	Seek(offset int64, whence int) (int64, error)
	Fd() uintptr
}

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

func (OSFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OSFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OSFS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (OSFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (OSFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (OSFS) Remove(name string) error                   { return os.Remove(name) }
func (OSFS) Stat(name string) (fs.FileInfo, error)      { return os.Stat(name) }
func (OSFS) Chtimes(name string, a, m time.Time) error  { return os.Chtimes(name, a, m) }
