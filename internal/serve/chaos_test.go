package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"memnet/internal/exp"
)

// TestChaosSoak is the daemon-lifecycle acceptance test: concurrent
// submissions (some overlapping, some duplicates, some streaming with
// mid-stream client disconnects), then a drain with a deadline while
// jobs are still in flight — the in-process equivalent of SIGTERM,
// which cmd/memnetd wires to exactly this Drain call. Asserts:
//
//   - the daemon never wedges: every admitted job reaches a terminal
//     state and every rejected submission got a clean 429/503;
//   - duplicate submissions are served from the content-addressed store
//     byte-identical to the fresh run;
//   - the journal survives the churn: it re-opens cleanly (no torn
//     tail) and holds only complete entries;
//   - no goroutine leaks after the drain;
//   - canceled jobs go terminal promptly (the kernel check aborts
//     within one interval, not at simulation end).
func TestChaosSoak(t *testing.T) {
	baseline := runtime.NumGoroutine()

	dir := t.TempDir()
	store, err := NewStore(dir + "/store")
	if err != nil {
		t.Fatal(err)
	}
	journal, _, err := exp.OpenJournal(dir + "/journal.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{
		Store:      store,
		Journal:    journal,
		QueueDepth: 4,
		Runners:    2,
		Logf:       t.Logf,
	})
	hs := httptest.NewServer(s.Handler())

	rng := rand.New(rand.NewSource(42))
	body := func(salt int) string {
		// A small pool of distinct specs guarantees duplicate submissions
		// (cache hits) alongside fresh work.
		return fmt.Sprintf(`{"runs":[{"workload":"mixG","simtime":"20us","warmup":"5us","wakeup_ns":%d}]}`,
			14+salt%3)
	}
	// Slow bodies keep work genuinely in flight so disconnects land on
	// running kernels and the drain deadline catches live jobs. Distinct
	// wakeups keep them from ever being cache hits.
	slowBody := func(salt int) string {
		return fmt.Sprintf(`{"runs":[{"workload":"mixG","simtime":"10ms","warmup":"5us","wakeup_ns":%d}]}`,
			1000+salt)
	}

	const clients = 6
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		accepted []string
		statuses = map[int]int{}
	)
	seeds := make([]int64, clients)
	for i := range seeds {
		seeds[i] = rng.Int63()
	}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			crng := rand.New(rand.NewSource(seeds[c]))
			for i := 0; i < 4; i++ {
				if crng.Intn(3) == 0 {
					// Streaming submit, disconnected mid-stream: the job
					// must cancel, not run to completion unattended.
					ctx, cancel := context.WithCancel(context.Background())
					req, _ := http.NewRequestWithContext(ctx, http.MethodPost,
						hs.URL+"/jobs?stream=1", strings.NewReader(slowBody(c*7+i)))
					req.Header.Set("Content-Type", "application/json")
					resp, err := http.DefaultClient.Do(req)
					if err == nil {
						buf := make([]byte, 1)
						resp.Body.Read(buf)
						cancel()
						resp.Body.Close()
						mu.Lock()
						statuses[resp.StatusCode]++
						mu.Unlock()
					}
					cancel()
					continue
				}
				// The last submission per client is slow, so the drain
				// deadline below catches genuinely in-flight jobs.
				b := body(c + i)
				if i == 3 {
					b = slowBody(100 + c)
				}
				resp, err := http.Post(hs.URL+"/jobs", "application/json",
					strings.NewReader(b))
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				var sr SubmitResponse
				code := resp.StatusCode
				if code == http.StatusAccepted {
					json.NewDecoder(resp.Body).Decode(&sr)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				mu.Lock()
				statuses[code]++
				if sr.ID != "" {
					accepted = append(accepted, sr.ID)
				}
				mu.Unlock()
				switch code {
				case http.StatusAccepted, http.StatusTooManyRequests, http.StatusServiceUnavailable:
				default:
					t.Errorf("client %d: unexpected status %d", c, code)
				}
			}
		}(c)
	}
	wg.Wait()

	// Drain while work may still be in flight — the SIGTERM moment. The
	// short deadline forces cancellation of anything still running, which
	// must go terminal promptly via the kernel check.
	drainStart := time.Now()
	dctx, dcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer dcancel()
	s.Drain(dctx)
	if d := time.Since(drainStart); d > 20*time.Second {
		t.Fatalf("drain took %v; canceled jobs did not abort promptly", d)
	}

	// Every accepted job is terminal.
	mu.Lock()
	ids := append([]string(nil), accepted...)
	counts := fmt.Sprintf("%v", statuses)
	mu.Unlock()
	t.Logf("soak: %d accepted, statuses %s, stats %+v", len(ids), counts, s.Stats())
	if len(ids) == 0 {
		t.Fatal("soak admitted nothing; test is vacuous")
	}
	if s.Stats().Canceled == 0 {
		t.Error("soak canceled nothing; disconnects/drain never hit a live job")
	}
	for _, id := range ids {
		resp, err := http.Get(hs.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st Status
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		switch st.State {
		case StateDone, StateFailed, StateCanceled:
		default:
			t.Errorf("job %s still %q after drain", id, st.State)
		}
	}

	// Byte-identical duplicate: submit the first spec again on a fresh
	// server sharing the store — it must be a pure cache hit.
	journal.Close()
	s2 := New(Config{Store: store, QueueDepth: 2, Runners: 1, Logf: t.Logf})
	hs2 := httptest.NewServer(s2.Handler())
	sr1 := submit(t, hs2.URL, body(0))
	st1 := waitTerminal(t, hs2.URL, sr1.ID, 60*time.Second)
	sr2 := submit(t, hs2.URL, body(0))
	st2 := waitTerminal(t, hs2.URL, sr2.ID, 10*time.Second)
	if st2.CacheHits != 1 {
		t.Fatalf("duplicate submission was not a cache hit: %+v then %+v", st1, st2)
	}
	r1 := fetchResult(t, hs2.URL, sr1.ID)
	r2 := fetchResult(t, hs2.URL, sr2.ID)
	if len(r1) != 1 || len(r2) != 1 || !bytes.Equal(r1[0], r2[0]) {
		t.Fatal("cached result is not byte-identical to the stored run")
	}
	dctx2, dcancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel2()
	s2.Drain(dctx2)
	hs2.Close()
	hs.Close()

	// The journal survived: re-opens with no error (flock released, no
	// torn tail) and every loaded entry re-marshals.
	j2, loaded, err := exp.OpenJournal(dir + "/journal.jsonl")
	if err != nil {
		t.Fatalf("journal did not survive the soak: %v", err)
	}
	for k, res := range loaded {
		if _, err := json.Marshal(res); err != nil {
			t.Fatalf("journal entry %s is torn: %v", k, err)
		}
	}
	j2.Close()
	t.Logf("soak: journal holds %d complete entries", len(loaded))

	// No goroutine leaks once HTTP idle connections wind down.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestCancelStopsCPUWithinCheckInterval is the acceptance bound in its
// sharpest form: a job whose simulation would run for minutes is
// canceled, and the runner must come back within seconds — i.e. the
// kernel noticed within one check interval, not at the horizon.
func TestCancelStopsCPUWithinCheckInterval(t *testing.T) {
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Store: store, QueueDepth: 1, Runners: 1, Logf: t.Logf})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	// ~1s of simulated time is minutes of wall time on this machine.
	sr := submit(t, hs.URL, `{"runs":[{"workload":"mixG","simtime":"1s","warmup":"5us"}]}`)
	time.Sleep(200 * time.Millisecond) // let the kernel get going
	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/jobs/"+sr.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	start := time.Now()
	st := waitTerminal(t, hs.URL, sr.ID, 15*time.Second)
	if st.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", st.State)
	}
	took := time.Since(start)
	t.Logf("cancel-to-terminal latency: %v", took)
	if took > 5*time.Second {
		t.Fatalf("cancellation latency %v; the kernel check is not aborting within one interval", took)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s.Drain(ctx)
}
