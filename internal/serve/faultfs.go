// FaultFS is the injectable-fault half of the fs seam: it wraps a real
// FS and fails selected operations on demand — a persistent ENOSPC, a
// one-shot read error, a torn write that persists only a prefix before
// failing (the on-disk signature of a crash mid-append). Rules are
// matched deterministically (first added, first matched), so soak tests
// replay byte-identically under a fixed seed.
//
// It lives in the package proper rather than a _test file so the chaos
// soak, the unit tests, and any future fault-injection CLI share one
// implementation; production binaries never construct one.
package serve

import (
	"io/fs"
	"strings"
	"sync"
	"time"
)

// FaultOp names an interceptable filesystem operation.
type FaultOp string

const (
	OpMkdir   FaultOp = "mkdir"
	OpOpen    FaultOp = "open"
	OpCreate  FaultOp = "create"
	OpRead    FaultOp = "read" // ReadFile and File.Read
	OpReadDir FaultOp = "readdir"
	OpRename  FaultOp = "rename"
	OpRemove  FaultOp = "remove"
	OpStat    FaultOp = "stat"
	OpWrite   FaultOp = "write"
	OpSync    FaultOp = "sync"
	OpChtimes FaultOp = "chtimes"
)

// FaultRule arms one failure. A zero Op or Path matches every
// operation or path; Path matches by substring so callers can target
// "accept.wal" or ".put-" without knowing temp-file suffixes.
type FaultRule struct {
	Op   FaultOp
	Path string
	// Err is returned from the matched operation.
	Err error
	// Count is how many times the rule fires before disarming;
	// Count < 0 fires forever (a full disk stays full).
	Count int
	// Short, for OpWrite rules, persists the first Short bytes of the
	// buffer before failing — a torn write. Short = 0 fails cleanly.
	Short int
}

// FaultFS wraps an FS with a mutable rule table.
type FaultFS struct {
	inner FS

	mu    sync.Mutex
	rules []*FaultRule
	trips int
}

// NewFaultFS wraps inner (nil = the real filesystem).
func NewFaultFS(inner FS) *FaultFS {
	if inner == nil {
		inner = OSFS{}
	}
	return &FaultFS{inner: inner}
}

// Fail arms a rule. Safe to call while the FS is in use.
func (f *FaultFS) Fail(r FaultRule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	rule := r
	f.rules = append(f.rules, &rule)
}

// Clear disarms every rule.
func (f *FaultFS) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = nil
}

// Trips reports how many operations have been failed so far — tests
// assert the fault actually landed instead of passing vacuously.
func (f *FaultFS) Trips() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.trips
}

// match consumes and returns the first armed rule matching (op, path).
func (f *FaultFS) match(op FaultOp, path string) *FaultRule {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range f.rules {
		if r.Count == 0 {
			continue
		}
		if r.Op != "" && r.Op != op {
			continue
		}
		if r.Path != "" && !strings.Contains(path, r.Path) {
			continue
		}
		if r.Count > 0 {
			r.Count--
		}
		f.trips++
		return r
	}
	return nil
}

func (f *FaultFS) MkdirAll(path string, perm fs.FileMode) error {
	if r := f.match(OpMkdir, path); r != nil {
		return r.Err
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *FaultFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if r := f.match(OpOpen, name); r != nil {
		return nil, r.Err
	}
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	if r := f.match(OpCreate, dir); r != nil {
		return nil, r.Err
	}
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if r := f.match(OpRead, name); r != nil {
		return nil, r.Err
	}
	return f.inner.ReadFile(name)
}

func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) {
	if r := f.match(OpReadDir, name); r != nil {
		return nil, r.Err
	}
	return f.inner.ReadDir(name)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if r := f.match(OpRename, newpath); r != nil {
		return r.Err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if r := f.match(OpRemove, name); r != nil {
		return r.Err
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) Stat(name string) (fs.FileInfo, error) {
	if r := f.match(OpStat, name); r != nil {
		return nil, r.Err
	}
	return f.inner.Stat(name)
}

func (f *FaultFS) Chtimes(name string, atime, mtime time.Time) error {
	if r := f.match(OpChtimes, name); r != nil {
		return r.Err
	}
	return f.inner.Chtimes(name, atime, mtime)
}

// faultFile applies write/sync/read rules to one open file.
type faultFile struct {
	fs    *FaultFS
	inner File
}

func (ff *faultFile) Read(p []byte) (int, error) {
	if r := ff.fs.match(OpRead, ff.inner.Name()); r != nil {
		return 0, r.Err
	}
	return ff.inner.Read(p)
}

// Write applies torn-write rules: a rule with Short > 0 persists that
// prefix through the real file before failing, leaving the partial
// bytes on disk exactly as an interrupted kernel write would.
func (ff *faultFile) Write(p []byte) (int, error) {
	if r := ff.fs.match(OpWrite, ff.inner.Name()); r != nil {
		n := 0
		if r.Short > 0 {
			short := r.Short
			if short > len(p) {
				short = len(p)
			}
			n, _ = ff.inner.Write(p[:short])
		}
		return n, r.Err
	}
	return ff.inner.Write(p)
}

func (ff *faultFile) Sync() error {
	if r := ff.fs.match(OpSync, ff.inner.Name()); r != nil {
		return r.Err
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Close() error              { return ff.inner.Close() }
func (ff *faultFile) Name() string              { return ff.inner.Name() }
func (ff *faultFile) Truncate(size int64) error { return ff.inner.Truncate(size) }
func (ff *faultFile) Fd() uintptr               { return ff.inner.Fd() }
func (ff *faultFile) Seek(off int64, whence int) (int64, error) {
	return ff.inner.Seek(off, whence)
}
