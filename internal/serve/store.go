// Content-addressed result store. Results are keyed by the canonical
// exp.Spec.Key() and stored one file per cell under sha256(key), so a
// duplicate submission — same spec, any order, any client — is a cache
// hit served without simulation, byte-identical to the fresh run because
// the store holds the exact JSON bytes the fresh run produced.
//
// Writes are atomic (tmp file + fsync + rename) so a daemon killed
// mid-write leaves either the old entry or the new one, never a torn
// file. Every entry embeds its spec key and a sha256 of its payload;
// Get re-verifies both, and an entry that fails — bit-rot, a torn
// envelope, a hand-edited payload, a hash collision — is moved to the
// quarantine/ subdirectory and reported as a cache miss, never served
// and never a 500. Entries written by a pre-checksum daemon (intact
// envelope and key, no Sum field) are not failures: Get and Fsck
// migrate them by backfilling the checksum through Put, so an upgrade
// keeps the existing cache instead of quarantining all of it. Fsck
// runs the same verification over the whole store at startup and
// sweeps the stale .put-* temp files a crash mid-Put can leak; GC
// bounds the store by total bytes and by entry age (last hit, tracked
// via mtime), never evicting entries pinned by in-flight jobs.
package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// QuarantineDir is the subdirectory of the store root that corrupt or
// mismatched entries are moved into. Quarantined files are kept, not
// deleted — they are the forensic record of a disk or software fault.
const QuarantineDir = "quarantine"

// ErrCorrupt wraps every verification failure Get detects. The failing
// entry has already been quarantined when Get returns it; callers treat
// the read as a cache miss.
var ErrCorrupt = errors.New("serve: store entry corrupt")

// ScanCacheTTL bounds how stale CachedScan's entry/byte figures may be
// when nothing has mutated the store. Mutations (Put, GC, quarantine,
// Fsck sweeps) invalidate the cache immediately, so the TTL only covers
// changes made behind the store's back.
const ScanCacheTTL = 500 * time.Millisecond

// Store is a directory of content-addressed simulation results.
type Store struct {
	dir string
	fs  FS

	quarantined atomic.Uint64 // entries moved to quarantine/ (Get + Fsck)
	evictions   atomic.Uint64 // entries removed by GC

	// Scan cache: metrics scrapes and /statusz polls hit CachedScan,
	// which answers from the last successful Scan while gen is unchanged
	// and the TTL holds, so frequent polling costs O(1) filesystem work
	// instead of a ReadDir + per-entry Stat per request.
	gen         atomic.Uint64 // bumped by every mutating store operation
	scanMu      sync.Mutex
	scanValid   bool
	scanGen     uint64
	scanAt      time.Time
	scanEntries int
	scanBytes   int64
}

// markDirty invalidates the scan cache; every operation that changes
// the directory's contents calls it.
func (s *Store) markDirty() { s.gen.Add(1) }

// storeEntry is the on-disk envelope: the key rides along so Get can
// verify the file really belongs to the requested spec, and Sum is the
// hex sha256 of Result so bit-rot inside the payload is detected too.
type storeEntry struct {
	Key    string          `json:"key"`
	Sum    string          `json:"sum"`
	Result json.RawMessage `json:"result"`
}

// NewStore opens (creating if needed) a store rooted at dir on the real
// filesystem.
func NewStore(dir string) (*Store, error) { return NewStoreFS(dir, nil) }

// NewStoreFS opens a store on an injectable filesystem (nil = real).
func NewStoreFS(dir string, fsys FS) (*Store, error) {
	if fsys == nil {
		fsys = OSFS{}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: store dir: %w", err)
	}
	return &Store{dir: dir, fs: fsys}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Quarantined reports how many entries this store has quarantined.
func (s *Store) Quarantined() uint64 { return s.quarantined.Load() }

// Evictions reports how many entries GC has removed.
func (s *Store) Evictions() uint64 { return s.evictions.Load() }

// path maps a spec key to its file. Keys are free-form strings (they
// embed workload names and '|' separators), so the filename is the hex
// sha256 of the key, never the key itself.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, s.fileName(key))
}

// fileName is the basename path uses; GC uses it to map pinned spec
// keys onto directory entries without re-deriving the digest scheme.
func (s *Store) fileName(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:]) + ".json"
}

// payloadSum is the checksum stored in the Sum field.
func payloadSum(result json.RawMessage) string {
	sum := sha256.Sum256(result)
	return hex.EncodeToString(sum[:])
}

// verifyEntry parses and verifies one on-disk entry against the key it
// is filed under. wantKey == "" skips the key comparison (Fsck trusts
// the embedded key and checks the filename instead). legacy reports an
// entry written by a pre-checksum daemon: envelope and key intact but
// no Sum field to verify the payload against. Such entries are valid
// (err == nil) — quarantining them would throw away the whole cache on
// the first post-upgrade startup — and callers backfill the checksum by
// rewriting them through Put.
func verifyEntry(data []byte, wantKey string) (e storeEntry, legacy bool, err error) {
	if err := json.Unmarshal(data, &e); err != nil {
		return e, false, fmt.Errorf("undecodable envelope: %w", err)
	}
	if wantKey != "" && e.Key != wantKey {
		return e, false, fmt.Errorf("key mismatch: have %q, want %q", e.Key, wantKey)
	}
	if e.Sum == "" {
		if e.Key == "" || len(e.Result) == 0 {
			// Not a plausible pre-checksum entry: nothing to migrate.
			return e, false, errors.New("no payload checksum and no payload (truncated envelope)")
		}
		return e, true, nil
	}
	if got := payloadSum(e.Result); got != e.Sum {
		return e, false, fmt.Errorf("payload checksum mismatch: have %s, want %s", got, e.Sum)
	}
	return e, false, nil
}

// quarantine moves path into the quarantine subdirectory (same
// basename; a repeat offender overwrites its previous capture). The
// move is best-effort: if it fails the caller still treats the entry
// as a miss, and a later Put simply replaces the bad file in place.
func (s *Store) quarantine(path string) {
	qdir := filepath.Join(s.dir, QuarantineDir)
	if err := s.fs.MkdirAll(qdir, 0o755); err != nil {
		return
	}
	if err := s.fs.Rename(path, filepath.Join(qdir, filepath.Base(path))); err != nil {
		return
	}
	s.quarantined.Add(1)
	s.markDirty()
}

// Get returns the stored result bytes for key, or ok=false when the key
// has never been stored. An entry that fails verification is moved to
// quarantine/ and reported as a miss wrapped in ErrCorrupt — the caller
// re-simulates; corrupt bytes are never served. A hit refreshes the
// file's mtime, which is the last-hit clock GC's age policy reads.
func (s *Store) Get(key string) (json.RawMessage, bool, error) {
	p := s.path(key)
	data, err := s.fs.ReadFile(p)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	e, legacy, verr := verifyEntry(data, key)
	if verr != nil {
		s.quarantine(p)
		return nil, false, fmt.Errorf("%w: %s: %v", ErrCorrupt, key, verr)
	}
	if legacy {
		// Pre-checksum entry: serve it and backfill the checksum by
		// rewriting in place (Put's tmp+rename atomically replaces the
		// old envelope). Best-effort — a full disk leaves the entry
		// legacy, retried on the next hit or fsck.
		s.Put(key, e.Result)
		return e.Result, true, nil
	}
	now := time.Now()
	s.fs.Chtimes(p, now, now) // best-effort last-hit bump
	return e.Result, true, nil
}

// Put stores the result bytes for key atomically: tmp file in the same
// directory, fsync, rename. A concurrent Put of the same key is safe —
// last rename wins and both carry identical content.
func (s *Store) Put(key string, result json.RawMessage) error {
	// Checksum the bytes as they will be stored: marshaling the envelope
	// compacts the RawMessage, so a non-compact payload summed verbatim
	// would produce an entry that fails its own verification on the
	// first Get. Compacting is a no-op for the daemon's own (already
	// compact) results, so stored bytes stay byte-identical to the
	// fresh delivery.
	var compact bytes.Buffer
	if err := json.Compact(&compact, result); err != nil {
		return fmt.Errorf("serve: store put %s: payload not valid JSON: %w", key, err)
	}
	result = json.RawMessage(compact.Bytes())
	data, err := json.Marshal(storeEntry{Key: key, Sum: payloadSum(result), Result: result})
	if err != nil {
		return err
	}
	final := s.path(key)
	tmp, err := s.fs.CreateTemp(s.dir, ".put-*")
	if err != nil {
		return err
	}
	defer s.fs.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := s.fs.Rename(tmp.Name(), final); err != nil {
		return err
	}
	s.markDirty()
	return nil
}

// Scan walks the store and reports entry count and total bytes. Scan
// errors surface — an unreadable store must not masquerade as empty.
func (s *Store) Scan() (entries int, bytes int64, err error) {
	ents, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return 0, 0, fmt.Errorf("serve: store scan: %w", err)
	}
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		info, ierr := e.Info()
		if ierr != nil {
			return 0, 0, fmt.Errorf("serve: store scan: %w", ierr)
		}
		entries++
		bytes += info.Size()
	}
	return entries, bytes, nil
}

// CachedScan is Scan behind a small cache: while no store operation has
// mutated the directory and the last successful scan is younger than
// ScanCacheTTL, it answers without touching the filesystem. Errors are
// never cached — a failed scan is retried on the next call — so an
// unreadable store surfaces within one TTL at worst, immediately after
// any mutation. This is the variant the metrics gauge and /statusz use;
// anything needing exact point-in-time figures calls Scan directly.
func (s *Store) CachedScan() (entries int, bytes int64, err error) {
	gen := s.gen.Load() // before the scan: a racing mutation forces a rescan
	s.scanMu.Lock()
	defer s.scanMu.Unlock()
	if s.scanValid && s.scanGen == gen && time.Since(s.scanAt) < ScanCacheTTL {
		return s.scanEntries, s.scanBytes, nil
	}
	entries, bytes, err = s.Scan()
	if err != nil {
		s.scanValid = false
		return 0, 0, err
	}
	s.scanValid = true
	s.scanGen = gen
	s.scanAt = time.Now()
	s.scanEntries, s.scanBytes = entries, bytes
	return entries, bytes, nil
}

// Len counts stored entries. The error is the scan error — callers must
// not conflate "empty" with "unreadable".
func (s *Store) Len() (int, error) {
	n, _, err := s.Scan()
	return n, err
}

// FsckReport summarizes a startup verification pass.
type FsckReport struct {
	Entries      int   // entries that verified clean (migrated ones included)
	Bytes        int64 // their total size
	Quarantined  int   // entries moved to quarantine/ this pass
	TempsRemoved int   // stale .put-* files swept
	Migrated     int   // pre-checksum entries rewritten with a backfilled Sum
}

// Fsck verifies every entry in the store — envelope decodes, filename
// matches the embedded key, payload checksum holds — moving failures to
// quarantine/, and removes stale .put-* temp files leaked by a crash
// mid-Put. It is cheap enough to run at every daemon startup: one read
// per entry, no writes for clean files.
func (s *Store) Fsck() (FsckReport, error) {
	var rep FsckReport
	ents, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return rep, fmt.Errorf("serve: fsck: %w", err)
	}
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() {
			continue
		}
		if strings.HasPrefix(name, ".put-") {
			if err := s.fs.Remove(filepath.Join(s.dir, name)); err == nil {
				rep.TempsRemoved++
				s.markDirty()
			}
			continue
		}
		if filepath.Ext(name) != ".json" {
			continue // accept journal, exp journal, whatever else shares the dir
		}
		p := filepath.Join(s.dir, name)
		data, err := s.fs.ReadFile(p)
		if err != nil {
			return rep, fmt.Errorf("serve: fsck: %s: %w", name, err)
		}
		e, legacy, verr := verifyEntry(data, "")
		if verr == nil && s.fileName(e.Key) != name {
			verr = fmt.Errorf("filed under %s but key hashes to %s", name, s.fileName(e.Key))
		}
		if verr != nil {
			s.quarantine(p)
			rep.Quarantined++
			continue
		}
		if legacy {
			// Pre-checksum entry in the right slot: backfill the checksum
			// via Put instead of losing the whole pre-upgrade cache to
			// quarantine. On a write failure the entry stays legacy and
			// the next fsck retries.
			if err := s.Put(e.Key, e.Result); err == nil {
				rep.Migrated++
			}
		}
		rep.Entries++
		rep.Bytes += int64(len(data))
	}
	return rep, nil
}

// GCConfig bounds the store. Zero values disable the corresponding
// policy; a zero-valued config makes GC a no-op.
type GCConfig struct {
	// MaxBytes caps the total size of stored entries; least-recently-hit
	// entries are evicted until the store fits.
	MaxBytes int64
	// MaxAge evicts entries not hit (or written) for longer than this.
	MaxAge time.Duration
	// Pinned holds the spec keys of in-flight jobs; their entries are
	// never evicted, even when that leaves the store over MaxBytes.
	Pinned map[string]bool
}

// GC applies the age policy then the size policy, oldest-hit first.
// It returns how many entries it evicted.
func (s *Store) GC(cfg GCConfig) (int, error) {
	if cfg.MaxBytes <= 0 && cfg.MaxAge <= 0 {
		return 0, nil
	}
	ents, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("serve: gc: %w", err)
	}
	pinned := make(map[string]bool, len(cfg.Pinned))
	for key := range cfg.Pinned {
		pinned[s.fileName(key)] = true
	}
	type entry struct {
		name  string
		size  int64
		mtime time.Time
	}
	var files []entry
	var total int64
	for _, ent := range ents {
		if ent.IsDir() || filepath.Ext(ent.Name()) != ".json" {
			continue
		}
		info, ierr := ent.Info()
		if ierr != nil {
			return 0, fmt.Errorf("serve: gc: %w", ierr)
		}
		files = append(files, entry{ent.Name(), info.Size(), info.ModTime()})
		total += info.Size()
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })

	evicted := 0
	now := time.Now()
	evict := func(e entry) bool {
		if pinned[e.name] {
			return false
		}
		if err := s.fs.Remove(filepath.Join(s.dir, e.name)); err != nil {
			return false
		}
		total -= e.size
		evicted++
		s.evictions.Add(1)
		s.markDirty()
		return true
	}
	remaining := files[:0]
	for _, e := range files {
		if cfg.MaxAge > 0 && now.Sub(e.mtime) > cfg.MaxAge && evict(e) {
			continue
		}
		remaining = append(remaining, e)
	}
	if cfg.MaxBytes > 0 {
		for _, e := range remaining {
			if total <= cfg.MaxBytes {
				break
			}
			evict(e)
		}
	}
	return evicted, nil
}
