// Content-addressed result store. Results are keyed by the canonical
// exp.Spec.Key() and stored one file per cell under sha256(key), so a
// duplicate submission — same spec, any order, any client — is a cache
// hit served without simulation, byte-identical to the fresh run because
// the store holds the exact JSON bytes the fresh run produced.
//
// Writes are atomic (tmp file + fsync + rename) so a daemon killed
// mid-write leaves either the old entry or the new one, never a torn
// file; Get re-verifies the embedded key so a hash collision or a
// hand-edited file is detected instead of served.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Store is a directory of content-addressed simulation results.
type Store struct {
	dir string
}

// storeEntry is the on-disk envelope: the key rides along so Get can
// verify the file really belongs to the requested spec.
type storeEntry struct {
	Key    string          `json:"key"`
	Result json.RawMessage `json:"result"`
}

// NewStore opens (creating if needed) a store rooted at dir.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: store dir: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path maps a spec key to its file. Keys are free-form strings (they
// embed workload names and '|' separators), so the filename is the hex
// sha256 of the key, never the key itself.
func (s *Store) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:])+".json")
}

// Get returns the stored result bytes for key, or ok=false when the key
// has never been stored. A torn or mismatched file is reported as an
// error, not silently served.
func (s *Store) Get(key string) (json.RawMessage, bool, error) {
	data, err := os.ReadFile(s.path(key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	var e storeEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, false, fmt.Errorf("serve: store entry for %s is corrupt: %w", key, err)
	}
	if e.Key != key {
		return nil, false, fmt.Errorf("serve: store entry key mismatch: have %q, want %q", e.Key, key)
	}
	return e.Result, true, nil
}

// Put stores the result bytes for key atomically: tmp file in the same
// directory, fsync, rename. A concurrent Put of the same key is safe —
// last rename wins and both carry identical content.
func (s *Store) Put(key string, result json.RawMessage) error {
	data, err := json.Marshal(storeEntry{Key: key, Result: result})
	if err != nil {
		return err
	}
	final := s.path(key)
	tmp, err := os.CreateTemp(s.dir, ".put-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), final)
}

// Len counts stored entries (test and statusz helper).
func (s *Store) Len() int {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".json" {
			n++
		}
	}
	return n
}
