package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"memnet/internal/exp"
)

// errENOSPC is the canonical full-disk error the fault tests inject.
var errENOSPC = syscall.ENOSPC

func openAcceptLog(t *testing.T, path string, fsys FS) (*AcceptLog, []AcceptedJob) {
	t.Helper()
	a, pending, err := OpenAcceptLog(path, fsys)
	if err != nil {
		t.Fatal(err)
	}
	return a, pending
}

func acceptedJob(id string, salt int) AcceptedJob {
	return AcceptedJob{
		ID: id,
		Runs: []exp.SpecJSON{{
			Workload: "mixG", SimTime: "20us", Warmup: "5us", WakeupNS: 14 + salt,
		}},
	}
}

// TestAcceptLogRoundTrip pins the WAL contract: accepted jobs are
// pending until tombstoned, order is preserved, and a fully drained
// file compacts to empty on the next open.
func TestAcceptLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "accept.wal")
	a, pending := openAcceptLog(t, path, nil)
	if len(pending) != 0 {
		t.Fatalf("fresh log holds %d pending jobs", len(pending))
	}
	for i, id := range []string{"j1", "j2", "j3"} {
		if err := a.Accept(acceptedJob(id, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Finish("j2"); err != nil {
		t.Fatal(err)
	}
	a.Close()

	a2, pending := openAcceptLog(t, path, nil)
	if len(pending) != 2 || pending[0].ID != "j1" || pending[1].ID != "j3" {
		t.Fatalf("pending = %+v, want j1 then j3", pending)
	}
	if err := a2.Finish("j1"); err != nil {
		t.Fatal(err)
	}
	if err := a2.Finish("j3"); err != nil {
		t.Fatal(err)
	}
	a2.Close()

	// Fully drained: the file compacts to zero bytes on open.
	a3, pending := openAcceptLog(t, path, nil)
	if len(pending) != 0 {
		t.Fatalf("drained log still pending: %+v", pending)
	}
	a3.Close()
	if info, err := os.Stat(path); err != nil || info.Size() != 0 {
		t.Fatalf("drained log not compacted: size=%d err=%v", info.Size(), err)
	}
}

// TestAcceptLogTombstoneBeforeAccept pins replay resolution: a runner
// can finish a job before its accept record lands, so the tombstone may
// precede the accept line. The job must still count as finished.
func TestAcceptLogTombstoneBeforeAccept(t *testing.T) {
	path := filepath.Join(t.TempDir(), "accept.wal")
	a, _ := openAcceptLog(t, path, nil)
	if err := a.Finish("j1"); err != nil {
		t.Fatal(err)
	}
	if err := a.Accept(acceptedJob("j1", 0)); err != nil {
		t.Fatal(err)
	}
	if err := a.Accept(acceptedJob("j2", 1)); err != nil {
		t.Fatal(err)
	}
	a.Close()
	a2, pending := openAcceptLog(t, path, nil)
	defer a2.Close()
	if len(pending) != 1 || pending[0].ID != "j2" {
		t.Fatalf("pending = %+v, want exactly j2", pending)
	}
}

// TestAcceptLogTornTailReplay pins crash-mid-append handling: a torn
// final line (injected through the fs seam as a short write) is
// truncated away and everything before it replays intact.
func TestAcceptLogTornTailReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "accept.wal")
	ffs := NewFaultFS(nil)
	a, _ := openAcceptLog(t, path, ffs)
	if err := a.Accept(acceptedJob("j1", 0)); err != nil {
		t.Fatal(err)
	}
	// The next append persists 9 bytes and then "crashes".
	ffs.Fail(FaultRule{Op: OpWrite, Path: "accept.wal", Err: errENOSPC, Count: 1, Short: 9})
	if err := a.Accept(acceptedJob("j2", 1)); err == nil {
		t.Fatal("torn append reported success")
	}
	a.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`{"job":{"`)) || bytes.Count(data, []byte("\n")) != 1 {
		t.Fatalf("disk state not one full line + torn tail:\n%s", data)
	}

	a2, pending := openAcceptLog(t, path, nil)
	if len(pending) != 1 || pending[0].ID != "j1" {
		t.Fatalf("pending after torn tail = %+v, want exactly j1", pending)
	}
	// The truncated file accepts appends again.
	if err := a2.Accept(acceptedJob("j3", 2)); err != nil {
		t.Fatal(err)
	}
	a2.Close()
	a3, pending := openAcceptLog(t, path, nil)
	defer a3.Close()
	if len(pending) != 2 || pending[1].ID != "j3" {
		t.Fatalf("pending after repair = %+v, want j1 then j3", pending)
	}
}

// TestAcceptLogFlockConflict pins the single-writer lock: a second open
// of a live accept journal fails fast instead of interleaving appends.
func TestAcceptLogFlockConflict(t *testing.T) {
	path := filepath.Join(t.TempDir(), "accept.wal")
	a, _ := openAcceptLog(t, path, nil)
	defer a.Close()
	if _, _, err := OpenAcceptLog(path, nil); err == nil {
		t.Fatal("second open of a locked accept journal succeeded")
	}
}

// TestRecoverReenqueues is the crash-recovery acceptance test at the
// package level: jobs accepted by a "previous life" (written straight
// to the WAL) are re-enqueued by Recover, cells already in the store
// come back as cache hits without re-simulation, and completed jobs are
// tombstoned so the next life owes nothing.
func TestRecoverReenqueues(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir + "/store")
	if err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, "accept.wal")

	// Previous life: two jobs accepted; the first's only cell reached the
	// store (raw marshaled result, as runJob writes it), the second's did
	// not — the daemon "died" mid-run.
	a, _ := openAcceptLog(t, walPath, nil)
	storedJob, lostJob := acceptedJob("j1", 0), acceptedJob("j2", 1)
	specs, keys, err := specsFromAccepted(storedJob)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.RunCell(specs[0])
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := json.Marshal(res)
	if err := store.Put(keys[0], raw); err != nil {
		t.Fatal(err)
	}
	if err := a.Accept(storedJob); err != nil {
		t.Fatal(err)
	}
	if err := a.Accept(lostJob); err != nil {
		t.Fatal(err)
	}
	a.Close()

	// Next life: open, recover, and let the runners drain the backlog.
	a2, pending := openAcceptLog(t, walPath, nil)
	if len(pending) != 2 {
		t.Fatalf("pending = %d jobs, want 2", len(pending))
	}
	s := New(Config{Store: store, Accepts: a2, QueueDepth: 1, Runners: 1, Logf: t.Logf})
	if n := s.Recover(pending); n != 2 {
		t.Fatalf("Recover = %d, want 2", n)
	}
	for _, id := range []string{"j1", "j2"} {
		j := func() *job {
			s.jobMu.Lock()
			defer s.jobMu.Unlock()
			return s.jobs[id]
		}()
		if j == nil {
			t.Fatalf("recovered job %s not registered", id)
		}
		select {
		case <-j.done:
		case <-time.After(2 * time.Minute):
			t.Fatalf("recovered job %s never finished", id)
		}
		if st := j.status(false); st.State != StateDone {
			t.Fatalf("recovered job %s ended %s: %+v", id, st.State, st)
		}
	}
	st := s.Stats()
	if st.Recovered != 2 {
		t.Fatalf("Recovered = %d, want 2", st.Recovered)
	}
	// j1's cell was in the store: exactly one cache hit, one fresh run.
	if st.CacheHits != 1 || st.CellsRun != 1 {
		t.Fatalf("cache hits %d / cells run %d, want 1 / 1 (no duplicate simulation)", st.CacheHits, st.CellsRun)
	}
	// Fresh ids must not collide with recovered ones.
	if id := fmt.Sprintf("j%d", s.nextID.Add(1)); id != "j3" {
		t.Fatalf("next fresh id = %s, want j3", id)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s.Drain(ctx)
	a2.Close()

	// Both jobs tombstoned: a third life owes nothing.
	a3, pending := openAcceptLog(t, walPath, nil)
	defer a3.Close()
	if len(pending) != 0 {
		t.Fatalf("third life still owes %+v", pending)
	}
}

// TestAcceptLogMaxSeenID pins the id floor the WAL reports: the highest
// numeric id across accepts AND tombstones, with non-conforming ids
// ignored. Tombstones must count — a non-compacted file keeps them, and
// a fresh job reusing a tombstoned id would be resolved as already done
// on the next replay.
func TestAcceptLogMaxSeenID(t *testing.T) {
	path := filepath.Join(t.TempDir(), "accept.wal")
	a, _ := openAcceptLog(t, path, nil)
	if a.MaxSeenID() != 0 {
		t.Fatalf("fresh log MaxSeenID = %d", a.MaxSeenID())
	}
	if err := a.Accept(acceptedJob("j1", 0)); err != nil {
		t.Fatal(err)
	}
	if err := a.Accept(acceptedJob("j7", 1)); err != nil {
		t.Fatal(err)
	}
	if err := a.Finish("j7"); err != nil {
		t.Fatal(err)
	}
	// A tombstone with no surviving accept record (its accept line was
	// lost to a torn tail in a previous life) still raises the floor.
	if err := a.Finish("j9"); err != nil {
		t.Fatal(err)
	}
	// Hand-edited ids never parse and never collide with generated ones.
	if err := a.Accept(acceptedJob("weird-id", 2)); err != nil {
		t.Fatal(err)
	}
	a.Close()
	a2, _ := openAcceptLog(t, path, nil)
	defer a2.Close()
	if a2.MaxSeenID() != 9 {
		t.Fatalf("MaxSeenID = %d, want 9 (tombstones included)", a2.MaxSeenID())
	}
}

// TestFreshIDsSkipTombstonedWAL is the regression test for id reuse
// against a non-compacted accept journal. Previous life: j1 pending
// (blocks compaction), j2 finished — its tombstone stays in the file.
// The next life's first fresh submission must get j3: if it reused j2,
// the stale "done j2" line would resolve the new accept record as
// already finished on the following replay and silently drop an acked
// submission.
func TestFreshIDsSkipTombstonedWAL(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir + "/store")
	if err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, "accept.wal")
	a, _ := openAcceptLog(t, walPath, nil)
	if err := a.Accept(acceptedJob("j1", 0)); err != nil {
		t.Fatal(err)
	}
	if err := a.Accept(acceptedJob("j2", 1)); err != nil {
		t.Fatal(err)
	}
	if err := a.Finish("j2"); err != nil {
		t.Fatal(err)
	}
	a.Close() // crash with j1 pending: the file keeps j2's tombstone

	a2, pending := openAcceptLog(t, walPath, nil)
	if len(pending) != 1 || pending[0].ID != "j1" {
		t.Fatalf("pending = %+v, want exactly j1", pending)
	}
	s := New(Config{Store: store, Accepts: a2, QueueDepth: 4, Runners: 1, Logf: t.Logf})
	hs := newHTTPServer(t, s)
	if n := s.Recover(pending); n != 1 {
		t.Fatalf("Recover = %d, want 1", n)
	}
	sr := submit(t, hs, tinyBody("20us", 5))
	if sr.ID == "j2" {
		t.Fatal("fresh submission reused tombstoned id j2: its accept record would be dropped on the next replay")
	}
	if sr.ID != "j3" {
		t.Fatalf("fresh id = %s, want j3 (floor set by the tombstoned j2)", sr.ID)
	}
	if !sr.Durable {
		t.Fatal("accept append succeeded but the ack claims durable=false")
	}
	if st := waitTerminal(t, hs, sr.ID, 2*time.Minute); st.State != StateDone {
		t.Fatalf("fresh job ended %s", st.State)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s.Drain(ctx)
	a2.Close()

	// Third life: every acked submission is accounted for.
	a3, pending := openAcceptLog(t, walPath, nil)
	defer a3.Close()
	if len(pending) != 0 {
		t.Fatalf("third life still owes %+v — an acked submission was lost to id reuse", pending)
	}
}

// TestRecoverTombstonesUnreplayable pins the poison-record path: an
// accept record that cannot be rebuilt is tombstoned, not replayed
// forever.
func TestRecoverTombstonesUnreplayable(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir + "/store")
	if err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, "accept.wal")
	a, _ := openAcceptLog(t, walPath, nil)
	bad := AcceptedJob{ID: "j1", Runs: []exp.SpecJSON{{Workload: "no-such-workload"}}}
	if err := a.Accept(bad); err != nil {
		t.Fatal(err)
	}
	a.Close()

	a2, pending := openAcceptLog(t, walPath, nil)
	s := New(Config{Store: store, Accepts: a2, QueueDepth: 1, Runners: 1, Logf: t.Logf})
	if n := s.Recover(pending); n != 0 {
		t.Fatalf("Recover replayed %d unreplayable job(s)", n)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s.Drain(ctx)
	a2.Close()
	a3, pending := openAcceptLog(t, walPath, nil)
	defer a3.Close()
	if len(pending) != 0 {
		t.Fatalf("poison record still pending: %+v", pending)
	}
}

// TestDrainCancelStaysPending pins the tombstone split: a job canceled
// by the drain deadline stays in the accept journal (the next life must
// resume it), while a client DELETE tombstones its job for good.
func TestDrainCancelStaysPending(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir + "/store")
	if err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, "accept.wal")
	a, _ := openAcceptLog(t, walPath, nil)
	s := New(Config{Store: store, Accepts: a, QueueDepth: 4, Runners: 1, Logf: t.Logf})
	hs := newHTTPServer(t, s)

	// Two long jobs: one runs (and will be drain-canceled), one queued
	// behind it gets DELETEd by the client.
	running := submit(t, hs, `{"runs":[{"workload":"mixG","simtime":"500ms","warmup":"5us"}]}`)
	deleted := submit(t, hs, `{"runs":[{"workload":"mixG","simtime":"500ms","warmup":"5us","wakeup_ns":20}]}`)
	time.Sleep(200 * time.Millisecond) // let the first enter the kernel
	req, _ := http.NewRequest(http.MethodDelete, hs+"/jobs/"+deleted.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	dctx, dcancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer dcancel()
	s.Drain(dctx) // deadline fires immediately: running job drain-canceled
	a.Close()

	a2, pending := openAcceptLog(t, walPath, nil)
	defer a2.Close()
	if len(pending) != 1 || pending[0].ID != running.ID {
		t.Fatalf("pending after drain = %+v, want exactly the drain-canceled %s", pending, running.ID)
	}
}

// TestPutENOSPCDegrades pins full-disk degradation end to end: with
// every store write failing ENOSPC, a submission still completes and
// returns its fresh result (no 500 anywhere), the failure is counted,
// and the same spec resubmitted simulates again — cache-miss behavior,
// not an error.
func TestPutENOSPCDegrades(t *testing.T) {
	ffs := NewFaultFS(nil)
	store, err := NewStoreFS(t.TempDir(), ffs)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Store: store, QueueDepth: 4, Runners: 1, Logf: t.Logf})
	hs := newHTTPServer(t, s)
	drainServer(t, s)
	ffs.Fail(FaultRule{Op: OpWrite, Path: ".put-", Err: errENOSPC, Count: -1})

	sr := submit(t, hs, tinyBody("20us", 0))
	st := waitTerminal(t, hs, sr.ID, 2*time.Minute)
	if st.State != StateDone {
		t.Fatalf("job under ENOSPC ended %s: %+v", st.State, st)
	}
	if res := fetchResult(t, hs, sr.ID); len(res) != 1 || len(res[0]) == 0 {
		t.Fatalf("fresh result not delivered under ENOSPC: %v", res)
	}
	stats := s.Stats()
	if stats.StorePutErrors == 0 {
		t.Fatal("store put failure not counted")
	}
	// Resubmission: a cache miss (nothing was stored), simulated again.
	sr2 := submit(t, hs, tinyBody("20us", 0))
	st2 := waitTerminal(t, hs, sr2.ID, 2*time.Minute)
	if st2.State != StateDone || st2.CacheHits != 0 {
		t.Fatalf("resubmission under ENOSPC: %+v, want fresh done run", st2)
	}
	if got := s.Stats().CellsRun; got != 2 {
		t.Fatalf("cells run = %d, want 2 (degraded to cache-miss)", got)
	}
}

// TestAcceptAppendFailureDegrades pins WAL degradation: when the accept
// journal cannot be written, submissions still run — durability
// downgrades to a counter, availability does not.
func TestAcceptAppendFailureDegrades(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir + "/store")
	if err != nil {
		t.Fatal(err)
	}
	ffs := NewFaultFS(nil)
	a, _ := openAcceptLog(t, filepath.Join(dir, "accept.wal"), ffs)
	defer a.Close()
	s := New(Config{Store: store, Accepts: a, QueueDepth: 4, Runners: 1, Logf: t.Logf})
	hs := newHTTPServer(t, s)
	drainServer(t, s)
	ffs.Fail(FaultRule{Op: OpWrite, Path: "accept.wal", Err: errENOSPC, Count: -1})

	sr := submit(t, hs, tinyBody("20us", 0))
	// The degradation is visible to the client, not just a counter: the
	// ack carries durable=false.
	if sr.Durable {
		t.Fatal("ack claims durability with a failing accept journal")
	}
	st := waitTerminal(t, hs, sr.ID, 2*time.Minute)
	if st.State != StateDone {
		t.Fatalf("job ended %s with a failing accept journal", st.State)
	}
	if s.Stats().AcceptErrors == 0 {
		t.Fatal("accept journal failure not counted")
	}

	// With the disk healed, the same submission acks durable again (the
	// header mirrors the field for streaming clients).
	ffs.Clear()
	resp, err := http.Post(hs+"/jobs", "application/json", strings.NewReader(tinyBody("20us", 1)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr2 SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr2); err != nil {
		t.Fatal(err)
	}
	if !sr2.Durable || resp.Header.Get(DurableHeader) != "true" {
		t.Fatalf("healed submission not durable: durable=%v header=%q", sr2.Durable, resp.Header.Get(DurableHeader))
	}
	waitTerminal(t, hs, sr2.ID, 2*time.Minute)
}

// TestQuarantinedEntryResimulates pins the bit-rot path end to end: a
// corrupted store entry is quarantined on read, the job re-simulates
// and completes, and /statusz reports the quarantine — zero 500s.
func TestQuarantinedEntryResimulates(t *testing.T) {
	storeDir := t.TempDir()
	store, err := NewStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Store: store, QueueDepth: 4, Runners: 1, Logf: t.Logf})
	hs := newHTTPServer(t, s)
	drainServer(t, s)

	sr := submit(t, hs, tinyBody("20us", 0))
	waitTerminal(t, hs, sr.ID, 2*time.Minute)
	fresh := fetchResult(t, hs, sr.ID)

	// Rot the stored payload without breaking its JSON.
	ents, err := os.ReadDir(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	rotted := 0
	for _, e := range ents {
		if filepath.Ext(e.Name()) != ".json" {
			continue
		}
		p := filepath.Join(storeDir, e.Name())
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, bytes.Replace(data, []byte(`"result":{"`), []byte(`"result":{" `), 1), 0o644); err != nil {
			t.Fatal(err)
		}
		rotted++
	}
	if rotted != 1 {
		t.Fatalf("rotted %d entries, want 1", rotted)
	}

	sr2 := submit(t, hs, tinyBody("20us", 0))
	st2 := waitTerminal(t, hs, sr2.ID, 2*time.Minute)
	if st2.State != StateDone || st2.CacheHits != 0 {
		t.Fatalf("rot resubmission: %+v, want fresh done run", st2)
	}
	// The re-simulated result matches the original bytes (determinism).
	if again := fetchResult(t, hs, sr2.ID); !bytes.Equal(fresh[0], again[0]) {
		t.Fatal("re-simulated result diverged from the original")
	}
	stats := s.Stats()
	if stats.Quarantined != 1 {
		t.Fatalf("statusz quarantined = %d, want 1", stats.Quarantined)
	}
	if stats.StoreScanError != "" {
		t.Fatalf("unexpected scan error: %s", stats.StoreScanError)
	}
}

// TestStatuszSurfacesScanError pins the Len-fix satellite at the HTTP
// surface: when the store directory is unreadable, /statusz reports the
// scan error instead of a phantom empty store.
func TestStatuszSurfacesScanError(t *testing.T) {
	ffs := NewFaultFS(nil)
	store, err := NewStoreFS(t.TempDir(), ffs)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Store: store, QueueDepth: 1, Runners: 1, Logf: t.Logf})
	hs := newHTTPServer(t, s)
	drainServer(t, s)
	ffs.Fail(FaultRule{Op: OpReadDir, Err: errors.New("injected EIO"), Count: -1})
	// Dirty the store so the scan cache (warmed by the metrics baseline
	// pull at New) cannot mask the injected fault.
	if err := store.Put("k", json.RawMessage(`{"Events":1}`)); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(hs + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.StoreScanError == "" || !strings.Contains(st.StoreScanError, "injected EIO") {
		t.Fatalf("statusz hides the scan error: %+v", st)
	}
}

// TestGCAfterPut pins server-driven eviction: with a byte cap smaller
// than one entry, each fresh Put triggers a GC pass that evicts prior
// entries — but never the running job's own pinned key mid-flight.
func TestGCAfterPut(t *testing.T) {
	s, hs := newTestServer(t, func(c *Config) { c.StoreMaxBytes = 1 })
	sr1 := submit(t, hs.URL, tinyBody("20us", 0))
	if st := waitTerminal(t, hs.URL, sr1.ID, 2*time.Minute); st.State != StateDone {
		t.Fatalf("first job ended %s", st.State)
	}
	sr2 := submit(t, hs.URL, tinyBody("20us", 1))
	if st := waitTerminal(t, hs.URL, sr2.ID, 2*time.Minute); st.State != StateDone {
		t.Fatalf("second job ended %s", st.State)
	}
	// The second Put's GC pass saw the first entry unpinned and over cap.
	if evicted := s.Stats().Evictions; evicted == 0 {
		t.Fatal("byte cap below one entry evicted nothing")
	}
	// Results were still delivered despite the evictions.
	if res := fetchResult(t, hs.URL, sr2.ID); len(res) != 1 || len(res[0]) == 0 {
		t.Fatal("result lost to eviction")
	}
}

// TestAuthToken pins the shared-secret gate: mutating endpoints demand
// the bearer token, read endpoints stay open.
func TestAuthToken(t *testing.T) {
	const token = "s3cret"
	s, hs := newTestServer(t, func(c *Config) { c.AuthToken = token })

	do := func(method, path, auth string) int {
		t.Helper()
		req, err := http.NewRequest(method, hs.URL+path, strings.NewReader(tinyBody("20us", 0)))
		if err != nil {
			t.Fatal(err)
		}
		if auth != "" {
			req.Header.Set("Authorization", auth)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if c := do(http.MethodPost, "/jobs", ""); c != http.StatusUnauthorized {
		t.Fatalf("no token: %d, want 401", c)
	}
	if c := do(http.MethodPost, "/jobs", "Bearer wrong"); c != http.StatusUnauthorized {
		t.Fatalf("wrong token: %d, want 401", c)
	}
	if c := do(http.MethodPost, "/jobs", "Basic "+token); c != http.StatusUnauthorized {
		t.Fatalf("wrong scheme: %d, want 401", c)
	}
	if c := do(http.MethodDelete, "/jobs/j1", ""); c != http.StatusUnauthorized {
		t.Fatalf("unauthenticated DELETE: %d, want 401", c)
	}
	// Reads stay open.
	for _, path := range []string{"/healthz", "/readyz", "/statusz", "/metricsz"} {
		if c := do(http.MethodGet, path, ""); c != http.StatusOK {
			t.Fatalf("GET %s without token: %d, want 200", path, c)
		}
	}
	if s.Stats().Unauthorized != 4 {
		t.Fatalf("Unauthorized = %d, want 4", s.Stats().Unauthorized)
	}
	// The right token works end to end.
	if c := do(http.MethodPost, "/jobs", "Bearer "+token); c != http.StatusAccepted {
		t.Fatalf("valid token: %d, want 202", c)
	}
}

// newHTTPServer wraps a Server in an httptest server without the
// drain-on-cleanup of newTestServer (these tests drain explicitly).
func newHTTPServer(t *testing.T, s *Server) string {
	t.Helper()
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return hs.URL
}

// drainServer registers a cleanup drain for servers built directly.
func drainServer(t *testing.T, s *Server) {
	t.Helper()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
}
