// Write-ahead accept journal: the durable record of every submission
// the daemon has acknowledged. One JSON line is fsynced per admitted
// job *before* the 202 goes out, and one tombstone line when the job
// reaches a terminal state, so after a SIGKILL the set
// "accepted minus tombstoned" is exactly the work still owed. Startup
// replays that set and re-enqueues it; cells whose results already
// reached the store come back as cache hits, so a crash loses at most
// in-flight compute, never a submission.
//
// Format notes, in the style of exp.Journal (whose flock protocol this
// file reuses via exp.LockFile):
//
//   - A crash mid-append leaves at most one partial final line;
//     OpenAcceptLog truncates the torn tail and keeps everything before
//     it. Accept/tombstone pairs may appear in either order (the runner
//     can finish a job before its accept record hits the disk), so
//     replay resolves the whole file before deciding what is pending.
//   - The file is compacted only when it is fully drained (no pending
//     jobs): then a truncate-to-zero is trivially crash-safe. A file
//     with pending records is never rewritten in place — the journal
//     grows until its jobs finish, then resets on the next open.
//   - Jobs whose tombstone append failed (full disk) are replayed and
//     re-enqueued; re-running a finished job is all cache hits, so the
//     degradation costs a store read per cell, not a simulation.
package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"

	"memnet/internal/exp"
)

// AcceptedJob is the durable form of one admitted submission: enough to
// rebuild the job's specs, budgets and id bit-exactly on restart.
type AcceptedJob struct {
	ID              string         `json:"id"`
	Runs            []exp.SpecJSON `json:"runs"`
	WallBudgetMS    int64          `json:"wall_budget_ms,omitempty"`
	EventBudget     uint64         `json:"event_budget,omitempty"`
	MetricsInterval string         `json:"metrics_interval,omitempty"`
}

// acceptRecord is one line of the file: an accept (Job != nil) or a
// tombstone (Done != "").
type acceptRecord struct {
	Job  *AcceptedJob `json:"job,omitempty"`
	Done string       `json:"done,omitempty"`
}

// AcceptLog appends accept records and tombstones to a JSON-lines file.
type AcceptLog struct {
	mu      sync.Mutex
	f       File
	fs      FS
	path    string
	maxSeen uint64
}

// jobIDNum extracts the numeric part of a "j<n>" job id. Non-conforming
// ids (hand-edited journals) report ok=false and never collide with
// generated ids, which are always pure "j<n>".
func jobIDNum(id string) (uint64, bool) {
	rest, ok := strings.CutPrefix(id, "j")
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseUint(rest, 10, 64)
	return n, err == nil
}

// OpenAcceptLog opens (creating if needed) the accept journal at path,
// takes the single-writer flock, truncates any torn tail, and returns
// the jobs accepted but not yet finished — in acceptance order, ready
// for Server.Recover. When the file holds no pending work it is
// compacted to empty. fsys nil means the real filesystem.
func OpenAcceptLog(path string, fsys FS) (*AcceptLog, []AcceptedJob, error) {
	if fsys == nil {
		fsys = OSFS{}
	}
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("accept journal %s: %w", path, err)
	}
	if err := exp.LockFile(f.Fd()); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("accept journal %s: already locked by another process (flock: %w); "+
			"two daemons appending to one accept journal would corrupt it — "+
			"stop the other daemon or use a different path", path, err)
	}
	var (
		order   []string
		jobs    = map[string]AcceptedJob{}
		done    = map[string]bool{}
		good    int64 // offset just past the last fully parsed line
		off     int64
		maxSeen uint64
	)
	// Every id in the file raises the floor for fresh ids — tombstones
	// included. A non-compacted file keeps tombstones of finished jobs;
	// if a new process life reused one of those ids, the stale "done"
	// line would resolve against the new job's accept record on the next
	// replay and silently drop an acked submission.
	seeID := func(id string) {
		if n, ok := jobIDNum(id); ok && n > maxSeen {
			maxSeen = n
		}
	}
	rd := bufio.NewReader(f)
	for {
		line, err := rd.ReadBytes('\n')
		off += int64(len(line))
		complete := err == nil // a line without trailing \n is a torn write
		if len(line) > 0 && complete {
			var rec acceptRecord
			if jerr := json.Unmarshal(line, &rec); jerr != nil || (rec.Job == nil && rec.Done == "") {
				// Corrupt interior line: everything after it is suspect
				// too, so stop here and truncate.
				break
			}
			switch {
			case rec.Job != nil && rec.Job.ID != "":
				if _, seen := jobs[rec.Job.ID]; !seen {
					order = append(order, rec.Job.ID)
				}
				jobs[rec.Job.ID] = *rec.Job
				seeID(rec.Job.ID)
			case rec.Done != "":
				done[rec.Done] = true
				seeID(rec.Done)
			}
			good = off
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("accept journal %s: %w", path, err)
		}
	}
	var pending []AcceptedJob
	for _, id := range order {
		if !done[id] {
			pending = append(pending, jobs[id])
		}
	}
	end := good
	if len(pending) == 0 {
		end = 0 // fully drained: compact (safe — nothing to lose)
	}
	if err := f.Truncate(end); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("accept journal %s: truncate: %w", path, err)
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("accept journal %s: %w", path, err)
	}
	return &AcceptLog{f: f, fs: fsys, path: path, maxSeen: maxSeen}, pending, nil
}

// MaxSeenID reports the highest numeric job id across every record the
// file held at open — accepts and tombstones alike. The server raises
// its id counter past it so a fresh admission can never reuse an id
// whose stale tombstone still sits in a non-compacted journal.
func (a *AcceptLog) MaxSeenID() uint64 { return a.maxSeen }

// append marshals one record, writes it and syncs it to stable storage.
func (a *AcceptLog) append(rec acceptRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, err := a.f.Write(b); err != nil {
		return err
	}
	return a.f.Sync()
}

// Accept records one admitted job. It must complete before the client
// is acked — it is the write-ahead half of the durability contract.
func (a *AcceptLog) Accept(job AcceptedJob) error {
	return a.append(acceptRecord{Job: &job})
}

// Finish records that a job reached a terminal state and owes no more
// work. Skipped for drain-canceled jobs, which must be recovered.
func (a *AcceptLog) Finish(id string) error {
	return a.append(acceptRecord{Done: id})
}

// Path returns the journal's file path.
func (a *AcceptLog) Path() string { return a.path }

// Close releases the file (and with it the flock).
func (a *AcceptLog) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.f.Close()
}
