package serve

import (
	"context"
	"encoding/json"
	"sync"
	"sync/atomic"

	"memnet/internal/exp"
)

// Job states. A job moves queued → running → one of the terminal
// states; canceled can also be entered straight from queued (client
// cancel or drain before a runner picked it up).
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Event is one server-sent event of a job's stream: a state change, a
// completed cell, a cell's epoch metrics, or the final summary. Events
// are recorded in order and replayed to late subscribers, so a client
// that connects after cells completed still sees the full history.
type Event struct {
	// Type is the SSE event name: "status", "result", "metrics", "done".
	Type string `json:"-"`
	// Data is the marshaled payload written on the data: line.
	Data json.RawMessage `json:"data"`
}

// subCap bounds a subscriber's buffer. A subscriber that stops reading
// for subCap events is dropped (its channel closed) rather than allowed
// to block the simulation's publisher.
const subCap = 256

// job is one admitted submission.
type job struct {
	id          string
	keys        []string
	specs       []exp.Spec
	eventBudget uint64 // total simulated events across cells (0 = unlimited)

	ctx    context.Context
	cancel context.CancelFunc

	// skipTombstone marks a drain-deadline cancellation: the job stays
	// un-tombstoned in the accept journal so the next process life
	// recovers it instead of forgetting it.
	skipTombstone atomic.Bool

	// done is closed when the job reaches a terminal state.
	done chan struct{}

	mu       sync.Mutex
	state    string
	cells    int
	finished int      // cells completed (cached, fresh, or failed)
	hits     int      // cells served from the content-addressed store
	cellErrs []string // non-empty entries align with keys
	results  []json.RawMessage
	events   []Event
	subs     map[chan Event]struct{}
	errMsg   string // terminal failure summary
}

func newJob(id string, keys []string, ctx context.Context, cancel context.CancelFunc) *job {
	return &job{
		id:       id,
		keys:     keys,
		ctx:      ctx,
		cancel:   cancel,
		done:     make(chan struct{}),
		state:    StateQueued,
		cells:    len(keys),
		cellErrs: make([]string, len(keys)),
		results:  make([]json.RawMessage, len(keys)),
		subs:     map[chan Event]struct{}{},
	}
}

// publish appends an event to the replay log and fans it out. A
// subscriber whose buffer is full is closed and dropped — a stalled
// reader must not stall the job.
func (j *job) publish(typ string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		data = json.RawMessage(`{"error":"event payload not encodable"}`)
	}
	ev := Event{Type: typ, Data: data}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.events = append(j.events, ev)
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
			delete(j.subs, ch)
			close(ch)
		}
	}
}

// finish moves the job to a terminal state, publishes the final "done"
// event, closes every subscriber and releases waiters. It reports
// whether this call performed the transition — the caller that wins
// owns the follow-up bookkeeping (counters, accept-journal tombstone).
func (j *job) finish(state, errMsg string, summary any) bool {
	j.mu.Lock()
	if j.state == StateDone || j.state == StateFailed || j.state == StateCanceled {
		j.mu.Unlock()
		return false
	}
	j.state = state
	j.errMsg = errMsg
	j.mu.Unlock()

	j.publish("done", summary)

	j.mu.Lock()
	for ch := range j.subs {
		delete(j.subs, ch)
		close(ch)
	}
	j.mu.Unlock()
	j.cancel()
	close(j.done)
	return true
}

// subscribe returns the replay of everything published so far plus a
// live channel for what follows. The channel is closed when the job
// finishes or the subscriber lags; the caller must drain it and then
// call unsubscribe (idempotent) on early exit.
func (j *job) subscribe() ([]Event, chan Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	replay := append([]Event(nil), j.events...)
	if j.state == StateDone || j.state == StateFailed || j.state == StateCanceled {
		return replay, nil
	}
	ch := make(chan Event, subCap)
	j.subs[ch] = struct{}{}
	return replay, ch
}

// unsubscribe detaches a live channel (no-op if already dropped).
func (j *job) unsubscribe(ch chan Event) {
	if ch == nil {
		return
	}
	j.mu.Lock()
	if _, ok := j.subs[ch]; ok {
		delete(j.subs, ch)
		close(ch)
	}
	j.mu.Unlock()
}

// Status is the JSON shape of GET /jobs/{id} and of "status"/"done"
// stream events.
type Status struct {
	ID        string   `json:"id"`
	State     string   `json:"state"`
	Cells     int      `json:"cells"`
	Finished  int      `json:"finished"`
	CacheHits int      `json:"cache_hits"`
	Keys      []string `json:"keys,omitempty"`
	CellErrs  []string `json:"cell_errors,omitempty"`
	Error     string   `json:"error,omitempty"`
}

// status snapshots the job under its lock.
func (j *job) status(withKeys bool) Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:        j.id,
		State:     j.state,
		Cells:     j.cells,
		Finished:  j.finished,
		CacheHits: j.hits,
		Error:     j.errMsg,
	}
	if withKeys {
		st.Keys = append([]string(nil), j.keys...)
		for i, e := range j.cellErrs {
			if e != "" {
				st.CellErrs = append(st.CellErrs, j.keys[i]+": "+e)
			}
		}
	}
	return st
}

// setStateIf transitions from → to atomically, reporting whether the
// transition happened. It is how a runner claims a queued job (losing
// the race against a cancel leaves the job terminal).
func (j *job) setStateIf(from, to string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != from {
		return false
	}
	j.state = to
	return true
}

// completeCell records one finished cell — cached, fresh, or failed —
// and publishes its "result" event.
func (j *job) completeCell(i int, raw json.RawMessage, errMsg string, cached bool) {
	j.mu.Lock()
	j.results[i] = raw
	j.cellErrs[i] = errMsg
	j.finished++
	if cached {
		j.hits++
	}
	j.mu.Unlock()
	j.publish("result", cellResult{Index: i, Key: j.keys[i], Cached: cached, Error: errMsg})
}
