package trace

import (
	"fmt"

	"memnet/internal/network"
	"memnet/internal/packet"
	"memnet/internal/sim"
)

// Recorder taps a network's injection stream into a Writer.
type Recorder struct {
	w   *Writer
	err error
}

// AttachRecorder installs a recorder on net (chaining any existing
// OnInject hook). Call Err after the run, and Flush the writer.
func AttachRecorder(net *network.Network, w *Writer) *Recorder {
	rec := &Recorder{w: w}
	prev := net.OnInject
	net.OnInject = func(p *packet.Packet) {
		if rec.err == nil {
			rec.err = w.Write(Record{
				At:   p.Issued,
				Addr: p.Addr - p.Addr%LineBytes,
				Read: p.Kind == packet.ReadReq,
			})
		}
		if prev != nil {
			prev(p)
		}
	}
	return rec
}

// Err returns the first write error, if any.
func (r *Recorder) Err() error { return r.err }

// Player replays a trace into a network, open-loop, preserving recorded
// inter-arrival times (optionally scaled). Replay is paced through the
// event queue in batches so arbitrarily long traces don't materialize as
// one giant event backlog.
type Player struct {
	kernel  *sim.Kernel
	net     *network.Network
	records []Record
	scale   float64
	offset  sim.Time
	next    int

	injected uint64
}

// NewPlayer prepares a replay of records starting at the kernel's current
// time. timeScale stretches (>1) or compresses (<1) inter-arrival times;
// 0 means 1.0.
func NewPlayer(k *sim.Kernel, net *network.Network, records []Record, timeScale float64) (*Player, error) {
	if timeScale == 0 {
		timeScale = 1
	}
	if timeScale < 0 {
		return nil, fmt.Errorf("trace: negative time scale %v", timeScale)
	}
	p := &Player{kernel: k, net: net, records: records, scale: timeScale}
	if len(records) > 0 {
		p.offset = k.Now() - p.when(0)
	}
	return p, nil
}

// when maps record i's timestamp through the time scale.
func (p *Player) when(i int) sim.Time {
	base := p.records[0].At
	return base + sim.Time(float64(p.records[i].At-base)*p.scale)
}

// Start begins the replay.
func (p *Player) Start() {
	p.pump()
}

// pump injects due records and schedules the next batch boundary.
const pumpBatch = 256

func (p *Player) pump() {
	for n := 0; p.next < len(p.records) && n < pumpBatch; n++ {
		rec := p.records[p.next]
		at := p.when(p.next) + p.offset
		now := p.kernel.Now()
		if at > now {
			p.kernel.Schedule(at, p.pump)
			return
		}
		if rec.Read {
			p.net.InjectRead(rec.Addr, -1)
		} else {
			p.net.InjectWrite(rec.Addr, -1)
		}
		p.injected++
		p.next++
	}
	if p.next < len(p.records) {
		// Batch boundary: yield to the event queue before continuing.
		p.kernel.After(0, p.pump)
	}
}

// Injected returns how many records have been replayed so far.
func (p *Player) Injected() uint64 { return p.injected }

// Done reports whether the whole trace has been injected.
func (p *Player) Done() bool { return p.next >= len(p.records) }
