package trace

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"memnet/internal/network"
	"memnet/internal/packet"
	"memnet/internal/sim"
	"memnet/internal/topology"
	"memnet/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	want := []Record{
		{At: 0, Addr: 0, Read: true},
		{At: 1000, Addr: 64, Read: false},
		{At: 1000, Addr: 128, Read: true}, // equal timestamps allowed
		{At: 5 * sim.Microsecond, Addr: 1 << 33, Read: true},
	}
	for _, r := range want {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	if err := quick.Check(func(deltas []uint32, lines []uint16, flags []bool) bool {
		n := len(deltas)
		if len(lines) < n {
			n = len(lines)
		}
		if len(flags) < n {
			n = len(flags)
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		var recs []Record
		var at sim.Time
		for i := 0; i < n; i++ {
			at += sim.Time(deltas[i])
			recs = append(recs, Record{At: at, Addr: uint64(lines[i]) * LineBytes, Read: flags[i]})
			if w.Write(recs[i]) != nil {
				return false
			}
		}
		if w.Flush() != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := r.ReadAll()
		if err != nil || len(got) != n {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWriterRejectsBadRecords(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	if err := w.Write(Record{At: 100, Addr: 0, Read: true}); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Record{At: 50, Addr: 0, Read: true}); err == nil {
		t.Error("backwards timestamp accepted")
	}
	if err := w.Write(Record{At: 200, Addr: 7, Read: true}); err == nil {
		t.Error("unaligned address accepted")
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a trace file"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
	// Truncated record after a valid header.
	var buf bytes.Buffer
	buf.WriteString(Magic)
	buf.WriteByte(0x80) // incomplete varint
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err == nil || err == io.EOF {
		t.Error("corrupt record not detected")
	}
}

func TestSummarize(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Write(Record{At: 1000, Addr: 64, Read: true})
	w.Write(Record{At: 3000, Addr: 256, Read: false})
	w.Write(Record{At: 9000, Addr: 128, Read: true})
	w.Flush()
	s, err := Summarize(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s.Records != 3 || s.Reads != 2 || s.Writes != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Span != 8000 || s.FirstAt != 1000 || s.MaxAddr != 256 {
		t.Fatalf("summary = %+v", s)
	}
}

func buildNet(t *testing.T) (*sim.Kernel, *network.Network) {
	t.Helper()
	k := sim.NewKernel()
	topo, err := topology.Build(topology.DaisyChain, 2)
	if err != nil {
		t.Fatal(err)
	}
	return k, network.New(k, topo, network.DefaultConfig())
}

func TestRecorderCapturesInjections(t *testing.T) {
	k, net := buildNet(t)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	rec := AttachRecorder(net, w)
	k.Run(100 * sim.Nanosecond)
	net.InjectRead(64, 0)
	k.Run(200 * sim.Nanosecond)
	net.InjectWrite(4096, 0)
	k.RunAll()
	if rec.Err() != nil {
		t.Fatal(rec.Err())
	}
	w.Flush()
	r, _ := NewReader(&buf)
	got, _ := r.ReadAll()
	if len(got) != 2 {
		t.Fatalf("recorded %d", len(got))
	}
	if got[0] != (Record{At: 100 * sim.Nanosecond, Addr: 64, Read: true}) {
		t.Fatalf("first record %+v", got[0])
	}
	if got[1] != (Record{At: 200 * sim.Nanosecond, Addr: 4096, Read: false}) {
		t.Fatalf("second record %+v", got[1])
	}
}

func TestPlayerReplaysAtRecordedTimes(t *testing.T) {
	k, net := buildNet(t)
	recs := []Record{
		{At: 10 * sim.Nanosecond, Addr: 0, Read: true},
		{At: 500 * sim.Nanosecond, Addr: 64, Read: true},
		{At: 900 * sim.Nanosecond, Addr: 4<<30 + 64, Read: false},
	}
	var injected []sim.Time
	net.OnInject = func(p *packet.Packet) { injected = append(injected, k.Now()) }
	p, err := NewPlayer(k, net, recs, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	k.RunAll()
	if !p.Done() || p.Injected() != 3 {
		t.Fatalf("player state: done=%v injected=%d", p.Done(), p.Injected())
	}
	// Replay starts at kernel time 0 preserving inter-arrival gaps.
	if injected[1]-injected[0] != 490*sim.Nanosecond {
		t.Fatalf("gap = %v", injected[1]-injected[0])
	}
	if injected[2]-injected[1] != 400*sim.Nanosecond {
		t.Fatalf("gap = %v", injected[2]-injected[1])
	}
}

func TestPlayerTimeScale(t *testing.T) {
	k, net := buildNet(t)
	recs := []Record{
		{At: 0, Addr: 0, Read: true},
		{At: 1000 * sim.Nanosecond, Addr: 64, Read: true},
	}
	var times []sim.Time
	net.OnInject = func(p *packet.Packet) { times = append(times, k.Now()) }
	p, err := NewPlayer(k, net, recs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	k.RunAll()
	if times[1]-times[0] != 500*sim.Nanosecond {
		t.Fatalf("scaled gap = %v", times[1]-times[0])
	}
	if _, err := NewPlayer(k, net, recs, -1); err == nil {
		t.Error("negative scale accepted")
	}
}

func TestPlayerLargeTraceBatches(t *testing.T) {
	k, net := buildNet(t)
	var recs []Record
	for i := 0; i < 3000; i++ {
		recs = append(recs, Record{At: sim.Time(i) * 10 * sim.Nanosecond, Addr: uint64(i%512) * 64, Read: i%4 != 0})
	}
	p, err := NewPlayer(k, net, recs, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	k.RunAll()
	if !p.Done() || p.Injected() != 3000 {
		t.Fatalf("injected %d of 3000", p.Injected())
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := r.ReadAll()
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty trace: %v, %d records", err, len(recs))
	}
	k, net := buildNet(t)
	p, err := NewPlayer(k, net, nil, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	k.RunAll()
	if !p.Done() {
		t.Fatal("empty replay not done")
	}
}

// TestRecordReplayFidelity records a real front-end run and replays it
// against an identical network: the replay must complete the same number
// of accesses with similar throughput.
func TestRecordReplayFidelity(t *testing.T) {
	build := func() (*sim.Kernel, *network.Network) {
		k := sim.NewKernel()
		topo, err := topology.Build(topology.Star, 2)
		if err != nil {
			t.Fatal(err)
		}
		return k, network.New(k, topo, network.DefaultConfig())
	}

	// Record.
	k1, net1 := build()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	rec := AttachRecorder(net1, w)
	p, err := workload.ByName("mixG")
	if err != nil {
		t.Fatal(err)
	}
	fe, err := workload.NewFrontEnd(k1, net1, p, workload.DefaultFrontEndConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	fe.Start()
	k1.Run(100 * sim.Microsecond)
	if rec.Err() != nil {
		t.Fatal(rec.Err())
	}
	w.Flush()
	recorded := w.Count()
	if recorded == 0 {
		t.Fatal("nothing recorded")
	}

	// Replay.
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	records, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	k2, net2 := build()
	player, err := NewPlayer(k2, net2, records, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	player.Start()
	k2.Run(150 * sim.Microsecond)
	if player.Injected() != recorded {
		t.Fatalf("replayed %d of %d", player.Injected(), recorded)
	}
	snap := net2.TakeSnapshot()
	done := snap.ReadsDone + snap.WritesDone
	if done != recorded {
		t.Fatalf("completed %d of %d replayed accesses", done, recorded)
	}
}
