// Package trace records and replays memory access traces. The paper's
// methodology is trace-ish (fixed fast-forward, then a measured window);
// capturing the synthetic front end's access stream to a file makes runs
// reproducible across configurations and lets external traces drive the
// simulator.
//
// Format (little-endian, varint-packed, ~4-8 bytes per record):
//
//	magic "MNTRC1\n"
//	records: uvarint(deltaPicoseconds<<1 | isWrite) uvarint(addr/64)
//
// Line-aligned addresses and monotone timestamps are enforced on write.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"memnet/internal/sim"
)

// Magic identifies a trace stream.
const Magic = "MNTRC1\n"

// LineBytes is the address granularity stored in traces.
const LineBytes = 64

// Record is one memory access.
type Record struct {
	At   sim.Time
	Addr uint64
	Read bool
}

// Writer streams records to an io.Writer.
type Writer struct {
	w      *bufio.Writer
	last   sim.Time
	count  uint64
	header bool
	buf    [2 * binary.MaxVarintLen64]byte
}

// NewWriter wraps w. The header is emitted lazily on the first record (or
// Flush), so an unused writer produces no bytes.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

func (tw *Writer) ensureHeader() error {
	if tw.header {
		return nil
	}
	tw.header = true
	_, err := tw.w.WriteString(Magic)
	return err
}

// Write appends one record. Timestamps must be non-decreasing and
// addresses line-aligned.
func (tw *Writer) Write(r Record) error {
	if err := tw.ensureHeader(); err != nil {
		return err
	}
	if r.At < tw.last {
		return fmt.Errorf("trace: timestamp %v before %v", r.At, tw.last)
	}
	if r.Addr%LineBytes != 0 {
		return fmt.Errorf("trace: address %#x not %d-byte aligned", r.Addr, LineBytes)
	}
	delta := uint64(r.At-tw.last) << 1
	if !r.Read {
		delta |= 1
	}
	n := binary.PutUvarint(tw.buf[:], delta)
	n += binary.PutUvarint(tw.buf[n:], r.Addr/LineBytes)
	if _, err := tw.w.Write(tw.buf[:n]); err != nil {
		return err
	}
	tw.last = r.At
	tw.count++
	return nil
}

// Count returns records written so far.
func (tw *Writer) Count() uint64 { return tw.count }

// Flush writes buffered data (and the header, for empty traces).
func (tw *Writer) Flush() error {
	if err := tw.ensureHeader(); err != nil {
		return err
	}
	return tw.w.Flush()
}

// Reader streams records from an io.Reader.
type Reader struct {
	r    *bufio.Reader
	last sim.Time
}

// NewReader validates the magic and returns a reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(head) != Magic {
		return nil, errors.New("trace: bad magic; not a memnet trace")
	}
	return &Reader{r: br}, nil
}

// Read returns the next record, or io.EOF at the end of the stream.
func (tr *Reader) Read() (Record, error) {
	delta, err := binary.ReadUvarint(tr.r)
	if err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("trace: corrupt delta: %w", err)
	}
	line, err := binary.ReadUvarint(tr.r)
	if err != nil {
		return Record{}, fmt.Errorf("trace: truncated record: %w", err)
	}
	tr.last += sim.Time(delta >> 1)
	return Record{
		At:   tr.last,
		Addr: line * LineBytes,
		Read: delta&1 == 0,
	}, nil
}

// ReadAll drains the stream.
func (tr *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := tr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

// Summary aggregates trace statistics (cmd/memnettrace info).
type Summary struct {
	Records uint64
	Reads   uint64
	Writes  uint64
	Span    sim.Duration
	MaxAddr uint64
	FirstAt sim.Time
}

// Summarize scans a stream.
func Summarize(r io.Reader) (Summary, error) {
	tr, err := NewReader(r)
	if err != nil {
		return Summary{}, err
	}
	var s Summary
	first := true
	var lastAt sim.Time
	for {
		rec, err := tr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return s, err
		}
		if first {
			s.FirstAt = rec.At
			first = false
		}
		lastAt = rec.At
		s.Records++
		if rec.Read {
			s.Reads++
		} else {
			s.Writes++
		}
		if rec.Addr > s.MaxAddr {
			s.MaxAddr = rec.Addr
		}
	}
	if !first {
		s.Span = lastAt - s.FirstAt
	}
	return s, nil
}
