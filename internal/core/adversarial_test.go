package core

import (
	"testing"

	"memnet/internal/link"
	"memnet/internal/network"
	"memnet/internal/packet"
	"memnet/internal/sim"
	"memnet/internal/topology"
)

// Failure-injection tests (DESIGN.md §6): traffic patterns engineered to
// defeat the FLO predictors, checking the violation machinery keeps the
// damage bounded rather than letting a wrong prediction run all epoch.

// adversarialRun drives a pathological injector against a policy and
// returns the completed accesses relative to a full-power run of the same
// injector.
func adversarialRun(t *testing.T, policy PolicyKind, alpha float64,
	injector func(k *sim.Kernel, net *network.Network, until sim.Time)) float64 {
	t.Helper()
	run := func(p PolicyKind) float64 {
		k := sim.NewKernel()
		topo, err := topology.Build(topology.DaisyChain, 2)
		if err != nil {
			t.Fatal(err)
		}
		cfg := network.DefaultConfig()
		cfg.Mechanism = link.MechVWL
		cfg.ROO = true
		net := network.New(k, topo, cfg)
		Attach(k, net, DefaultConfig(p, alpha))
		until := 8 * epoch
		done := 0
		// Injectors may install their own completion hook; chain the
		// counter around whatever they set up.
		injector(k, net, until)
		inner := net.OnReadComplete
		net.OnReadComplete = func(pkt *packet.Packet) {
			done++
			if inner != nil {
				inner(pkt)
			}
		}
		k.Run(until + 50*sim.Microsecond)
		return float64(done)
	}
	fp := run(PolicyNone)
	managed := run(policy)
	if fp == 0 {
		t.Fatal("no traffic completed under full power")
	}
	return managed / fp
}

// TestThresholdStraddlingBursts alternates idle gaps just above and below
// the ROO thresholds so the idle-interval histogram keeps mispredicting;
// throughput must stay within a loose bound of full power.
func TestThresholdStraddlingBursts(t *testing.T) {
	for _, policy := range []PolicyKind{PolicyUnaware, PolicyAware} {
		ratio := adversarialRun(t, policy, 0.05, func(k *sim.Kernel, net *network.Network, until sim.Time) {
			rng := sim.NewRNG(5)
			gaps := []sim.Duration{
				30 * sim.Nanosecond, 40 * sim.Nanosecond,
				120 * sim.Nanosecond, 140 * sim.Nanosecond,
				500 * sim.Nanosecond, 530 * sim.Nanosecond,
				2000 * sim.Nanosecond, 2100 * sim.Nanosecond,
			}
			var inject func()
			i := 0
			inject = func() {
				if k.Now() >= until {
					return
				}
				burst := 1 + rng.Intn(6)
				for b := 0; b < burst; b++ {
					net.InjectRead(uint64(rng.Intn(2))*uint64(net.Cfg.ChunkBytes)+uint64(rng.Intn(997))*64, -1)
				}
				k.After(gaps[i%len(gaps)], inject)
				i++
			}
			inject()
		})
		// The violation machinery cannot recover everything (detection is
		// periodic), but must prevent collapse.
		if ratio < 0.85 {
			t.Fatalf("%v: threshold-straddling bursts collapsed throughput to %.0f%% of FP",
				policy, 100*ratio)
		}
	}
}

// TestPhaseFlipTraffic switches abruptly between a long-idle phase (which
// trains the policies into deep low-power modes) and saturation.
func TestPhaseFlipTraffic(t *testing.T) {
	for _, policy := range []PolicyKind{PolicyUnaware, PolicyAware} {
		ratio := adversarialRun(t, policy, 0.05, func(k *sim.Kernel, net *network.Network, until sim.Time) {
			inFlight := 0
			phaseBusy := false
			// Closed-loop saturation during busy phases.
			net.OnReadComplete = func(*packet.Packet) {
				inFlight--
				if phaseBusy && k.Now() < until {
					inFlight++
					net.InjectRead(uint64(k.Now())%997*64, -1)
				}
			}
			var flip func()
			flip = func() {
				if k.Now() >= until {
					return
				}
				phaseBusy = !phaseBusy
				if phaseBusy {
					for inFlight < 24 {
						inFlight++
						net.InjectRead(uint64(net.Cfg.ChunkBytes)+uint64(inFlight)*64, -1)
					}
				}
				k.After(150*sim.Microsecond, flip)
			}
			flip()
		})
		// Saturating bursts against links trained slow by the idle phase
		// are the worst case for epoch-granularity management: each flip
		// costs until violations fire. Bounded degradation (not the
		// ~50%+ a saturated half-bandwidth link would imply) is the
		// property under test.
		if ratio < 0.75 {
			t.Fatalf("%v: phase flips collapsed throughput to %.0f%% of FP", policy, 100*ratio)
		}
	}
}

// TestSingleHotModuleStarvation sends everything to the deepest module:
// upstream links must not end up in modes that starve it.
func TestSingleHotModuleStarvation(t *testing.T) {
	for _, policy := range []PolicyKind{PolicyUnaware, PolicyAware} {
		ratio := adversarialRun(t, policy, 0.05, func(k *sim.Kernel, net *network.Network, until sim.Time) {
			// Closed loop of 16 slots, all to module 1.
			count := 0
			net.OnReadComplete = func(p *packet.Packet) {
				if k.Now() < until {
					count++
					net.InjectRead(uint64(net.Cfg.ChunkBytes)+uint64(count%997)*64, p.Core)
				}
			}
			for s := 0; s < 16; s++ {
				net.InjectRead(uint64(net.Cfg.ChunkBytes)+uint64(s)*64, s)
			}
		})
		if ratio < 0.90 {
			t.Fatalf("%v: hot module throughput %.0f%% of FP", policy, 100*ratio)
		}
	}
}
