package core

import (
	"testing"

	"memnet/internal/link"
	"memnet/internal/network"
	"memnet/internal/packet"
	"memnet/internal/sim"
	"memnet/internal/topology"
)

// testNet assembles a network + manager for policy integration tests.
func testNet(t *testing.T, kind topology.Kind, n int, mech link.Mechanism, roo bool,
	policy PolicyKind, alpha float64) (*sim.Kernel, *network.Network, *Manager) {
	t.Helper()
	k := sim.NewKernel()
	topo, err := topology.Build(kind, n)
	if err != nil {
		t.Fatal(err)
	}
	cfg := network.DefaultConfig()
	cfg.Mechanism = mech
	cfg.ROO = roo
	net := network.New(k, topo, cfg)
	mgr := Attach(k, net, DefaultConfig(policy, alpha))
	return k, net, mgr
}

// driveClosedLoop keeps `slots` reads outstanding to module-selection
// function pick until the kernel reaches until.
func driveClosedLoop(k *sim.Kernel, net *network.Network, slots int,
	pick func(i int) uint64, until sim.Time) {
	count := 0
	net.OnReadComplete = func(p *packet.Packet) {
		if k.Now() < until {
			count++
			net.InjectRead(pick(count), p.Core)
		}
	}
	for s := 0; s < slots; s++ {
		net.InjectRead(pick(s), s)
	}
	k.Run(until)
}

const epoch = 100 * sim.Microsecond

func TestUnawareIdleNetworkDropsToLowestMode(t *testing.T) {
	k, net, mgr := testNet(t, topology.DaisyChain, 2, link.MechVWL, false, PolicyUnaware, 0.05)
	k.Run(3 * epoch)
	if mgr.Epochs() != 3 {
		t.Fatalf("epochs = %d", mgr.Epochs())
	}
	for _, l := range net.Links {
		if l.BWTarget() != 3 {
			t.Fatalf("%v bw=%d, want 3 (idle network, zero FLO everywhere)", l, l.BWTarget())
		}
	}
}

func TestUnawareBusyLinkStaysNearFullPower(t *testing.T) {
	// Saturating traffic to the deepest module with a tiny alpha: the
	// response path cannot afford narrow modes.
	k, net, _ := testNet(t, topology.DaisyChain, 2, link.MechVWL, false, PolicyUnaware, 0.01)
	driveClosedLoop(k, net, 32, func(i int) uint64 {
		return uint64(i%997) * 64 // module 0, spread over vaults
	}, 5*epoch)
	// Module 0's response link carries 5-flit responses at high rate.
	l := net.Modules[0].UpResp
	if l.BWTarget() > 1 {
		t.Fatalf("saturated response link at bw=%d", l.BWTarget())
	}
}

func TestUnawareViolationForcesFullPower(t *testing.T) {
	// Epoch 1-2 idle (policy drops everything to 1 lane), then a heavy
	// burst arrives: the violation sweep must force full power.
	k, net, mgr := testNet(t, topology.DaisyChain, 2, link.MechVWL, false, PolicyUnaware, 0.025)
	k.Run(2 * epoch)
	for _, l := range net.Links {
		if l.BWTarget() != 3 {
			t.Fatalf("precondition: %v bw=%d, want 3", l, l.BWTarget())
		}
	}
	driveClosedLoop(k, net, 64, func(i int) uint64 {
		return uint64(net.Cfg.ChunkBytes) + uint64(i%997)*64 // module 1
	}, 3*epoch)
	viol, _ := mgr.Violations()
	if viol == 0 {
		t.Fatal("no violations recorded despite saturating burst on 1-lane links")
	}
	forced := false
	for _, l := range net.Links {
		if l.Forced() || l.BWTarget() == 0 {
			forced = true
		}
	}
	if !forced {
		t.Fatal("no link was forced to full power")
	}
}

func TestUnawareRespectsAlphaUnderLoad(t *testing.T) {
	// End-to-end: managed throughput within a few α of full power.
	run := func(policy PolicyKind) float64 {
		k, net, _ := testNet(t, topology.DaisyChain, 3, link.MechVWL, true, policy, 0.05)
		rng := sim.NewRNG(11)
		pick := func(i int) uint64 {
			return uint64(rng.Intn(3))*uint64(net.Cfg.ChunkBytes) + uint64(rng.Intn(4096))*64
		}
		completed := 0
		until := 6 * epoch
		net.OnReadComplete = func(p *packet.Packet) {
			if k.Now() < until {
				completed++
				net.InjectRead(pick(completed), p.Core)
			}
		}
		for s := 0; s < 24; s++ {
			net.InjectRead(pick(s), s)
		}
		k.Run(until)
		return float64(completed)
	}
	fp := run(PolicyNone)
	un := run(PolicyUnaware)
	deg := 1 - un/fp
	if deg > 0.12 {
		t.Fatalf("unaware degradation = %.1f%%, far beyond alpha", 100*deg)
	}
}

func TestAwareMonotonicityInvariant(t *testing.T) {
	// Traffic concentrated on module 0 leaves deep links idle; after ISP
	// an upstream link must never be at a lower-bandwidth mode index than
	// any downstream link of the same type.
	k, net, _ := testNet(t, topology.DaisyChain, 4, link.MechVWL, false, PolicyAware, 0.05)
	driveClosedLoop(k, net, 16, func(i int) uint64 {
		return uint64(i%997) * 64 // all to module 0
	}, 5*epoch)
	topo := net.Topo
	for m := 0; m < topo.N(); m++ {
		for _, c := range topo.Children(m) {
			for off := 0; off < 2; off++ {
				up := net.Links[2*m+off]
				down := net.Links[2*c+off]
				if up.BWTarget() > down.BWTarget() {
					t.Fatalf("monotonicity violated: %v bw=%d above %v bw=%d",
						up, up.BWTarget(), down, down.BWTarget())
				}
			}
		}
	}
}

func TestAwareIdleNetworkUsesLowestModes(t *testing.T) {
	k, net, mgr := testNet(t, topology.Star, 4, link.MechVWL, true, PolicyAware, 0.05)
	k.Run(3 * epoch)
	for _, l := range net.Links {
		if l.BWTarget() != 3 {
			t.Fatalf("%v bw=%d, want 3", l, l.BWTarget())
		}
	}
	if mgr.Pool() < 0 {
		t.Fatal("negative leftover pool")
	}
}

func TestAwareROOResponseLinksPinnedAggressive(t *testing.T) {
	// §VI-B: with hidden wakeups, response links take the most
	// aggressive threshold and are not slowdown candidates.
	k, net, _ := testNet(t, topology.DaisyChain, 2, link.MechNone, true, PolicyAware, 0.05)
	driveClosedLoop(k, net, 4, func(i int) uint64 {
		return uint64(i%2)*uint64(net.Cfg.ChunkBytes) + uint64(i%97)*64
	}, 3*epoch)
	for _, m := range net.Modules {
		if m.UpResp.ROOMode() != 0 {
			t.Fatalf("response link ROO mode = %d, want 0", m.UpResp.ROOMode())
		}
	}
}

func TestWakeCascadeHidesResponseWakeups(t *testing.T) {
	// §VI-B ablation: sparse reads to the deepest module of a cold
	// 4-chain pay one 14 ns wakeup per upstream response hop unless the
	// cascade pre-wakes the path. Same policy, same budgets; only the
	// cascade differs.
	run := func(disableCascade bool) sim.Duration {
		k := sim.NewKernel()
		topo, err := topology.Build(topology.DaisyChain, 4)
		if err != nil {
			t.Fatal(err)
		}
		ncfg := network.DefaultConfig()
		ncfg.ROO = true
		net := network.New(k, topo, ncfg)
		mcfg := DefaultConfig(PolicyAware, 2.0)
		mcfg.DisableWakeCascade = disableCascade
		Attach(k, net, mcfg)
		var total sim.Duration
		reads := 0
		net.OnReadComplete = func(p *packet.Packet) {
			if reads >= 100 { // skip the first epochs while modes settle
				total += k.Now() - p.Issued
			}
			reads++
		}
		for i := 0; i < 300; i++ {
			k.Run(k.Now() + 3*sim.Microsecond)
			net.InjectRead(3*uint64(net.Cfg.ChunkBytes)+uint64(i)*64, 0)
		}
		k.Run(k.Now() + 10*sim.Microsecond)
		if reads < 300 {
			t.Fatalf("only %d reads completed", reads)
		}
		return total / sim.Duration(reads-100)
	}
	with := run(false)
	without := run(true)
	// Three upstream response hops × 14 ns wakeup should be hidden.
	saved := without - with
	if saved < 30*sim.Nanosecond {
		t.Fatalf("cascade saved only %v (with=%v without=%v), want ≥30ns", saved, with, without)
	}
}

func TestAwareGrantsAbsorbViolations(t *testing.T) {
	k, net, mgr := testNet(t, topology.DaisyChain, 2, link.MechVWL, false, PolicyAware, 0.05)
	// Alternate idle and bursty epochs so some violations occur.
	rng := sim.NewRNG(3)
	until := 8 * epoch
	var inject func()
	inject = func() {
		if k.Now() >= until {
			return
		}
		burst := 1 + rng.Intn(30)
		for i := 0; i < burst; i++ {
			net.InjectRead(uint64(rng.Intn(2))*uint64(net.Cfg.ChunkBytes)+uint64(rng.Intn(997))*64, -1)
		}
		k.After(sim.Duration(rng.Intn(20000))*sim.Nanosecond, inject)
	}
	inject()
	k.Run(until)
	viol, granted := mgr.Violations()
	if viol > 0 && granted == 0 {
		t.Logf("violations=%d granted=%d (grants possible but not required)", viol, granted)
	}
	if granted > viol {
		t.Fatalf("granted %d > violations %d", granted, viol)
	}
}

func TestStaticDaisyChainModes(t *testing.T) {
	// §VII-A formula on a 4-deep chain: link at depth d gets
	// (1 − (d−1)/4) of max bandwidth, raised to the nearest option:
	// d1→16 lanes, d2 (0.75)→16, d3 (0.5)→8, d4 (0.25)→4.
	_, net, _ := testNet(t, topology.DaisyChain, 4, link.MechVWL, false, PolicyStatic, 0)
	want := []int{0, 0, 1, 2}
	for i, w := range want {
		m := net.Modules[i]
		if m.UpReq.BWTarget() != w || m.UpResp.BWTarget() != w {
			t.Fatalf("depth %d: modes %d/%d, want %d", i+1,
				m.UpReq.BWTarget(), m.UpResp.BWTarget(), w)
		}
	}
}

func TestStaticTernaryTreeModes(t *testing.T) {
	// 13-module ternary tree: depth 1 carries everything (16 lanes);
	// depth 2 links carry 12/13 ÷ 3 ≈ 0.31 → 8 lanes; depth 3 links
	// carry 9/13 ÷ 9 ≈ 0.077 → 4 lanes (raised from 1/16 = 0.0625 < want).
	_, net, _ := testNet(t, topology.TernaryTree, 13, link.MechVWL, false, PolicyStatic, 0)
	byDepth := map[int]int{}
	for i, m := range net.Modules {
		byDepth[net.Topo.Depth(i)] = m.UpReq.BWTarget()
	}
	if byDepth[1] != 0 || byDepth[2] != 1 || byDepth[3] != 2 {
		t.Fatalf("static tree modes by depth = %v", byDepth)
	}
}

func TestStaticNoopForROOOnly(t *testing.T) {
	_, net, _ := testNet(t, topology.DaisyChain, 3, link.MechNone, true, PolicyStatic, 0)
	for _, l := range net.Links {
		if l.BWTarget() != 0 {
			t.Fatal("static selection touched a bandwidth-less link")
		}
	}
}

func TestPolicyNoneKeepsFullPower(t *testing.T) {
	k, net, mgr := testNet(t, topology.Star, 4, link.MechVWL, true, PolicyNone, 0)
	k.Run(3 * epoch)
	if mgr.Epochs() != 0 {
		t.Fatal("FP manager ran epochs")
	}
	for _, l := range net.Links {
		if l.BWTarget() != 0 {
			t.Fatal("FP link left full bandwidth")
		}
	}
}

func TestManagerLinkHourHistogram(t *testing.T) {
	k, net, mgr := testNet(t, topology.DaisyChain, 2, link.MechVWL, false, PolicyUnaware, 0.05)
	driveClosedLoop(k, net, 8, func(i int) uint64 { return uint64(i%97) * 64 }, 3*epoch)
	if mgr.Hist.Total <= 0 {
		t.Fatal("no link hours collected")
	}
}

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig(PolicyAware, 0.05)
	if c.Epoch != 100*sim.Microsecond || c.ISPIterations != 3 ||
		c.GrantFraction != 1.0/16 || c.MaxGrants != 4 || c.SRCFraction != 0.25 ||
		c.RequestShare != 0.75 {
		t.Fatalf("defaults = %+v", c)
	}
}

func TestPolicyKindStrings(t *testing.T) {
	for p, want := range map[PolicyKind]string{
		PolicyNone: "full-power", PolicyUnaware: "network-unaware",
		PolicyAware: "network-aware", PolicyStatic: "static",
	} {
		if p.String() != want {
			t.Errorf("%d.String() = %q", int(p), p.String())
		}
	}
}

type recordingPolicy struct{ calls int }

func (p *recordingPolicy) Name() string { return "recording" }
func (p *recordingPolicy) Reconfigure(m *Manager, e *EpochData) []sim.Duration {
	p.calls++
	if len(e.Counters) != len(m.Net.Links) || len(e.FLO) != len(e.Counters) {
		panic("epoch data inconsistent")
	}
	out := make([]sim.Duration, len(m.Net.Links))
	for i := range out {
		out[i] = sim.Duration(1) << 50
	}
	return out
}

func TestCustomPolicyHook(t *testing.T) {
	k := sim.NewKernel()
	topo, _ := topology.Build(topology.DaisyChain, 2)
	cfg := network.DefaultConfig()
	cfg.Mechanism = link.MechVWL
	net := network.New(k, topo, cfg)
	p := &recordingPolicy{}
	mc := DefaultConfig(PolicyUnaware, 0.05)
	mc.Custom = p
	mgr := Attach(k, net, mc)
	k.Run(4 * epoch)
	if p.calls != 4 {
		t.Fatalf("custom policy called %d times, want 4", p.calls)
	}
	if mgr.Policy().Name() != "recording" {
		t.Fatal("custom policy not installed")
	}
}

func TestStaticStarModes(t *testing.T) {
	// Star n=7: hub at depth 1 carries all traffic (full width); ring 1
	// links carry 6/7 over 3 links = 0.286 -> 8 lanes; ring 2 carry 3/7
	// over 3 = 0.143 -> 4 lanes.
	_, net, _ := testNet(t, topology.Star, 7, link.MechVWL, false, PolicyStatic, 0)
	want := map[int]int{1: 0, 2: 1, 3: 2}
	for i, m := range net.Modules {
		d := net.Topo.Depth(i)
		if m.UpReq.BWTarget() != want[d] {
			t.Fatalf("depth %d: mode %d, want %d", d, m.UpReq.BWTarget(), want[d])
		}
	}
}

func TestStaticInterleaveMapping(t *testing.T) {
	// §VII-A pairs static selection with page-interleaved mapping; check
	// the mapping spreads consecutive pages across modules.
	k := sim.NewKernel()
	topo, _ := topology.Build(topology.DaisyChain, 4)
	cfg := network.DefaultConfig()
	cfg.Mechanism = link.MechVWL
	cfg.Interleave = true
	net := network.New(k, topo, cfg)
	Attach(k, net, DefaultConfig(PolicyStatic, 0))
	seen := map[int]bool{}
	for p := uint64(0); p < 8; p++ {
		seen[net.ModuleFor(p*cfg.PageBytes)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("interleaving touched %d modules, want 4", len(seen))
	}
}
