// Package core implements the paper's power-management policies — the
// primary contribution of the work:
//
//   - network-unaware management (§V): each module independently converts
//     its allowable memory slowdown (AMS, Eq. 1) into per-link power-mode
//     choices using per-mode delay monitors ([20]), idle-interval
//     histograms ([21]), proactive response wakeup ([22]) and violation
//     feedback ([23]);
//   - network-aware management (§VI): Iterative Slowdown Propagation (ISP)
//     redistributes the network-level AMS so busier links never run at
//     lower power modes than less busy ones, hides response-path wakeups
//     with a cascade, and discounts downstream latency that upstream
//     congestion would have absorbed (QD/QF);
//   - the static fat/tapered-tree baseline of §VII-A.
package core

import (
	"math"

	"memnet/internal/link"
	"memnet/internal/sim"
)

// Mode is one combined power mode: a bandwidth mode index (VWL lanes or
// DVFS operating point; 0 = full) and a ROO idleness-threshold index
// (ROOFullMode = least aggressive).
type Mode struct {
	BW  int
	ROO int
}

// FullMode is the highest-power mode.
var FullMode = Mode{BW: 0, ROO: link.ROOFullMode}

// floTable holds one link's per-mode future-latency-overhead estimates and
// power scores for the epoch being planned, derived from the previous
// epoch's counters.
type floTable struct {
	mech    link.Mechanism
	roo     bool
	bwFLO   []sim.Duration // indexed by BW mode
	rooFLO  [link.NumROOModes]sim.Duration
	offFrac [link.NumROOModes]float64 // predicted off-time fraction per threshold
}

// buildFLOTable derives the table from an epoch's counters.
//
// Bandwidth FLO is the delay-monitor difference: the virtual aggregate
// read latency under mode m minus under full power ([20]); for DVFS the
// virtual queues already include the slower SERDES.
//
// ROO FLO follows [21]: (number of idle intervals longer than the mode's
// threshold) × (estimated latency per wakeup), where the per-wakeup cost
// is wakeup + wakeup×E[read arrivals during a wakeup]; request links add a
// further wakeup×E[arrivals] because delayed requests inflate into 5×
// larger response packets downstream (§V-B).
func buildFLOTable(l *link.Link, ec *link.EpochCounters, epochLen sim.Duration) floTable {
	cfg := l.Config()
	t := floTable{mech: cfg.Mechanism, roo: cfg.ROO}
	n := link.NumModes(cfg.Mechanism)
	t.bwFLO = make([]sim.Duration, n)
	for m := 1; m < n; m++ {
		d := ec.VirtualReadLatency[m] - ec.VirtualReadLatency[0]
		if d < 0 {
			d = 0
		}
		t.bwFLO[m] = d
	}
	if cfg.ROO {
		avgArr := ec.AvgWakeupArrivals()
		perWake := float64(cfg.Wakeup) * (1 + avgArr)
		if l.Dir == link.DirRequest {
			perWake += float64(cfg.Wakeup) * avgArr
		}
		for i := 0; i < link.NumROOModes; i++ {
			t.rooFLO[i] = sim.Duration(float64(ec.IdleOverCount[i]) * perWake)
			if epochLen > 0 {
				f := float64(ec.IdleOverTime[i]) / float64(epochLen)
				if f > 1 {
					f = 1
				}
				t.offFrac[i] = f
			}
		}
	}
	return t
}

// flo returns the combined FLO of mode m.
func (t *floTable) flo(m Mode) sim.Duration {
	f := t.bwFLO[m.BW]
	if t.roo {
		f += t.rooFLO[m.ROO]
	}
	return f
}

// score estimates the mode's average power as a fraction of full link
// power: the bandwidth mode's power factor, discounted by the predicted
// off-time under the ROO threshold. Lower is better.
func (t *floTable) score(m Mode) float64 {
	s := link.PowerFactor(t.mech, m.BW)
	if t.roo {
		off := t.offFrac[m.ROO]
		s *= (1 - off) + off*link.OffPowerFraction
	}
	return s
}

// modes enumerates the link's mode space. ROO-disabled links only vary the
// bandwidth dimension; MechNone links only the ROO dimension.
func (t *floTable) modes() []Mode {
	nBW := len(t.bwFLO)
	if !t.roo {
		out := make([]Mode, 0, nBW)
		for b := 0; b < nBW; b++ {
			out = append(out, Mode{BW: b, ROO: link.ROOFullMode})
		}
		return out
	}
	out := make([]Mode, 0, nBW*link.NumROOModes)
	for b := 0; b < nBW; b++ {
		for r := 0; r < link.NumROOModes; r++ {
			out = append(out, Mode{BW: b, ROO: r})
		}
	}
	return out
}

// selectMode returns the lowest-power mode whose FLO fits within ams,
// falling back to full power. Ties break toward lower FLO, then full
// bandwidth, for determinism.
func (t *floTable) selectMode(ams sim.Duration) Mode {
	best := FullMode
	bestScore := t.score(best)
	bestFLO := t.flo(best)
	for _, m := range t.modes() {
		f := t.flo(m)
		if f > ams {
			continue
		}
		s := t.score(m)
		switch {
		case s < bestScore-1e-12,
			math.Abs(s-bestScore) <= 1e-12 && f < bestFLO,
			math.Abs(s-bestScore) <= 1e-12 && f == bestFLO && m.BW < best.BW:
			best, bestScore, bestFLO = m, s, f
		}
	}
	return best
}

// nextCheaper returns the highest-power mode strictly cheaper than m and
// whether one exists (the ISP slowdown-receiving-candidate test needs its
// FLO).
func (t *floTable) nextCheaper(m Mode) (Mode, bool) {
	cur := t.score(m)
	found := false
	var best Mode
	bestScore := -1.0
	for _, c := range t.modes() {
		s := t.score(c)
		if s < cur-1e-12 && s > bestScore {
			best, bestScore, found = c, s, true
		}
	}
	return best, found
}

// isLowest reports whether no cheaper mode exists.
func (t *floTable) isLowest(m Mode) bool {
	_, ok := t.nextCheaper(m)
	return !ok
}

// apply programs the link with mode m.
func applyMode(l *link.Link, m Mode) {
	l.SetBWMode(m.BW)
	if l.Config().ROO {
		l.SetROOMode(m.ROO)
	}
}
