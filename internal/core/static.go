package core

import (
	"memnet/internal/link"
	"memnet/internal/network"
)

// applyStatic programs §VII-A's static fat/tapered-tree bandwidth
// selection: with S(x) links at hop distance x and T total links, a link
// at hop distance d gets
//
//	1/S(d) · (1 − Σ_{i<d} S(i)/T)
//
// of maximum bandwidth, raised to the nearest available bandwidth option.
// The rationale: if traffic is spread evenly over the modules (the paper
// pairs this with page-interleaved mapping), the fraction of traffic
// crossing depth d is the share of modules at depth ≥ d, divided evenly
// over the S(d) links that carry it. Static selection has no feedback, no
// epochs, and no ROO modes.
func applyStatic(net *network.Network) {
	mech := net.Cfg.Mechanism
	if mech == link.MechNone {
		return
	}
	topo := net.Topo
	s := topo.LinksAtDepth()
	total := float64(topo.N())
	// below[d] = fraction of modules at depth >= d.
	maxD := topo.MaxDepth()
	below := make([]float64, maxD+2)
	for d := maxD; d >= 1; d-- {
		below[d] = below[d+1] + float64(s[d])/total
	}
	for i := 0; i < topo.N(); i++ {
		d := topo.Depth(i)
		want := below[d] / float64(s[d])
		mode := nearestBWMode(mech, want)
		net.Modules[i].UpReq.SetBWMode(mode)
		net.Modules[i].UpResp.SetBWMode(mode)
	}
}

// nearestBWMode returns the least-bandwidth mode still providing at least
// the requested fraction ("raised to the nearest available option").
func nearestBWMode(mech link.Mechanism, want float64) int {
	best := 0
	for m := 0; m < link.NumModes(mech); m++ {
		if link.BWFactor(mech, m) >= want {
			best = m
		}
	}
	return best
}
