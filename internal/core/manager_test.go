package core

import (
	"testing"

	"memnet/internal/link"
	"memnet/internal/network"
	"memnet/internal/sim"
	"memnet/internal/topology"
)

// attachWith builds a 2-module daisy chain with a customized manager
// config.
func attachWith(t *testing.T, mutate func(*Config)) (*sim.Kernel, *network.Network, *Manager) {
	t.Helper()
	k := sim.NewKernel()
	topo, err := topology.Build(topology.DaisyChain, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := network.DefaultConfig()
	cfg.Mechanism = link.MechVWL
	cfg.ROO = true
	net := network.New(k, topo, cfg)
	mcfg := DefaultConfig(PolicyAware, 0.05)
	if mutate != nil {
		mutate(&mcfg)
	}
	return k, net, Attach(k, net, mcfg)
}

func TestChargeControlAddsEnergy(t *testing.T) {
	run := func(charge bool) float64 {
		k, net, _ := attachWith(t, func(c *Config) { c.ChargeControl = charge })
		driveClosedLoop(k, net, 8, func(i int) uint64 {
			return uint64(i%2)*uint64(net.Cfg.ChunkBytes) + uint64(i%97)*64
		}, 4*epoch)
		var total float64
		for _, l := range net.Links {
			l.FinishAccounting()
			idle, active := l.EnergyJoules()
			total += idle + active
		}
		return total
	}
	with := run(true)
	without := run(false)
	if with <= without {
		t.Fatalf("ISP control energy not charged: with=%v without=%v", with, without)
	}
	// The overhead must stay tiny (the paper treats it as negligible).
	if (with-without)/without > 0.01 {
		t.Fatalf("control energy suspiciously large: %.3f%%", 100*(with-without)/without)
	}
}

func TestGrantCapPerLink(t *testing.T) {
	k, net, mgr := attachWith(t, nil)
	_ = net
	// Give the manager a pool and exhaust grants for link 0.
	mgr.SetPool(1600 * sim.Nanosecond)
	l := net.Links[0]
	granted := 0
	for i := 0; i < 10; i++ {
		if mgr.tryGrant(0, l) {
			granted++
		}
	}
	if granted != mgr.Cfg.MaxGrants {
		t.Fatalf("granted %d, want cap %d", granted, mgr.Cfg.MaxGrants)
	}
	_ = k
}

func TestGrantPoolExhaustion(t *testing.T) {
	_, net, mgr := attachWith(t, nil)
	// Pool smaller than one grant unit after a few grants.
	mgr.SetPool(32 * sim.Nanosecond) // unit = 2 ns
	grants := 0
	for li := range net.Links {
		for mgr.tryGrant(li, net.Links[li]) {
			grants++
		}
	}
	if grants == 0 {
		t.Fatal("no grants from a non-empty pool")
	}
	if mgr.Pool() < 0 {
		t.Fatalf("pool went negative: %v", mgr.Pool())
	}
	if mgr.tryGrant(0, net.Links[0]) {
		t.Fatal("grant from exhausted state")
	}
}

func TestProportionalLinkSplit(t *testing.T) {
	// With proportional split enabled and one-sided traffic, the busy
	// link must receive (nearly) the whole module budget.
	k := sim.NewKernel()
	topo, _ := topology.Build(topology.DaisyChain, 1)
	ncfg := network.DefaultConfig()
	ncfg.Mechanism = link.MechVWL
	net := network.New(k, topo, ncfg)
	mcfg := DefaultConfig(PolicyUnaware, 0.05)
	mcfg.ProportionalLinkSplit = true
	mgr := Attach(k, net, mcfg)
	driveClosedLoop(k, net, 8, func(i int) uint64 { return uint64(i%97) * 64 }, 3*epoch)
	if mgr.Epochs() < 2 {
		t.Fatal("no epochs ran")
	}
	// Reads traverse both links (request + response) equally here, so
	// proportional ≈ equal; the functional check is that it runs and
	// budgets remain sane.
	if mgr.CumFEL[0] <= 0 {
		t.Fatal("no FEL accumulated")
	}
}

func TestEpochDataIntegrity(t *testing.T) {
	var got *EpochData
	probe := &probePolicy{capture: func(e *EpochData) { got = e }}
	k := sim.NewKernel()
	topo, _ := topology.Build(topology.Star, 4)
	ncfg := network.DefaultConfig()
	ncfg.Mechanism = link.MechVWL
	net := network.New(k, topo, ncfg)
	mcfg := DefaultConfig(PolicyUnaware, 0.05)
	mcfg.Custom = probe
	Attach(k, net, mcfg)
	driveClosedLoop(k, net, 8, func(i int) uint64 {
		return uint64(i%4)*uint64(ncfg.ChunkBytes) + uint64(i%97)*64
	}, 2*epoch)
	if got == nil {
		t.Fatal("policy never called")
	}
	if len(got.Counters) != 8 || len(got.FLO) != 8 || len(got.ModuleFEL) != 4 {
		t.Fatalf("epoch data shapes: %d/%d/%d", len(got.Counters), len(got.FLO), len(got.ModuleFEL))
	}
	var reads uint64
	for _, r := range got.DRAMReads {
		reads += r
	}
	if reads == 0 {
		t.Fatal("no DRAM reads recorded")
	}
	for m := 0; m < 4; m++ {
		if got.ModuleAEL[m] < 0 || got.ModuleFEL[m] < 0 {
			t.Fatalf("negative epoch latencies at module %d", m)
		}
	}
	if got.EpochLen != epoch {
		t.Fatalf("epoch len %v", got.EpochLen)
	}
}

type probePolicy struct {
	capture func(*EpochData)
}

func (p *probePolicy) Name() string { return "probe" }
func (p *probePolicy) Reconfigure(m *Manager, e *EpochData) []sim.Duration {
	p.capture(e)
	out := make([]sim.Duration, len(m.Net.Links))
	for i := range out {
		out[i] = sim.Duration(1) << 50
	}
	return out
}

func TestDisableQDQFIsMoreConservative(t *testing.T) {
	// Without the §VI-C discount the head sees more accumulated overhead,
	// so the pool can only be smaller or equal.
	run := func(disable bool) sim.Duration {
		k, net, mgr := attachWith(t, func(c *Config) { c.DisableQDQF = disable })
		driveClosedLoop(k, net, 24, func(i int) uint64 {
			return uint64(net.Cfg.ChunkBytes) + uint64(i%997)*64 // all to module 1
		}, 4*epoch)
		_ = net
		return mgr.CumOverNet
	}
	with := run(false)
	without := run(true)
	if with > without {
		t.Fatalf("QD/QF discount increased accumulated overhead: %v > %v", with, without)
	}
}
