package core

import (
	"testing"

	"memnet/internal/metrics"
	"memnet/internal/sim"
)

// TestManagerAttachMetrics: the management series must agree with the
// manager's own accessors — epochs sampled as deltas sum to Epochs(),
// violations/grants match Violations() — and the slack gauge must start
// at zero (no traffic, no FEL accumulated) and stay finite.
func TestManagerAttachMetrics(t *testing.T) {
	k, net, m := attachWith(t, nil)
	m.AttachMetrics(nil) // disabled path registers nothing
	reg := metrics.New(k, metrics.Config{Interval: epoch})
	m.AttachMetrics(reg)
	reg.Start(sim.Time(4 * epoch))
	driveClosedLoop(k, net, 8, func(i int) uint64 {
		return uint64(i%2)*uint64(net.Cfg.ChunkBytes) + uint64(i%97)*64
	}, 4*epoch)
	d := reg.Dump()
	if d == nil || d.Ticks == 0 {
		t.Fatalf("no samples: %+v", d)
	}
	var epochs, viol, grants float64
	var slack []float64
	for _, s := range d.Series {
		switch s.Name {
		case "core.epochs":
			for _, v := range s.Samples {
				epochs += v
			}
		case "core.violations":
			for _, v := range s.Samples {
				viol += v
			}
		case "core.grants":
			for _, v := range s.Samples {
				grants += v
			}
		case "core.epoch_slack_ps":
			slack = s.Samples
		}
	}
	if epochs != float64(m.Epochs()) {
		t.Errorf("epoch deltas sum to %v, Epochs() = %d", epochs, m.Epochs())
	}
	wantViol, wantGrant := m.Violations()
	if viol != float64(wantViol) || grants != float64(wantGrant) {
		t.Errorf("violations/grants = %v/%v, want %d/%d", viol, grants, wantViol, wantGrant)
	}
	if len(slack) == 0 {
		t.Fatal("slack gauge missing")
	}
	// Slack is α·ΣFEL − Σover: with traffic flowing it must move off
	// zero eventually and never be NaN.
	moved := false
	for _, v := range slack {
		if v != v {
			t.Fatal("slack gauge is NaN")
		}
		if v != 0 {
			moved = true
		}
	}
	if !moved {
		t.Error("slack gauge never moved under closed-loop traffic")
	}
}
