package core

import (
	"testing"

	"memnet/internal/link"
	"memnet/internal/packet"
	"memnet/internal/sim"
)

// feedLink runs a synthetic arrival pattern through a fresh link and
// returns its epoch counters and FLO table.
func feedLink(t *testing.T, cfg link.Config, dir link.Direction, gaps []sim.Duration) (*link.Link, link.EpochCounters, floTable) {
	t.Helper()
	k := sim.NewKernel()
	if cfg.FullWatts == 0 {
		cfg.FullWatts = 0.586
	}
	l := link.New(k, cfg, 0, dir, 0, packet.ProcessorID, 0, 1)
	l.Deliver = func(*packet.Packet) {}
	kind := packet.ReadResp
	if dir == link.DirRequest {
		kind = packet.ReadReq
	}
	for i, g := range gaps {
		k.Run(k.Now() + g)
		l.Enqueue(&packet.Packet{ID: uint64(i), Kind: kind})
	}
	k.RunAll()
	ec := l.Mon().SnapshotAndReset(k.Now())
	return l, ec, buildFLOTable(l, &ec, 100*sim.Microsecond)
}

func denseGaps(n int, gap sim.Duration) []sim.Duration {
	out := make([]sim.Duration, n)
	for i := range out {
		out[i] = gap
	}
	return out
}

func TestBWFLOMonotone(t *testing.T) {
	_, _, tab := feedLink(t, link.Config{Mechanism: link.MechVWL}, link.DirResponse,
		denseGaps(200, 10*sim.Nanosecond))
	for m := 1; m < len(tab.bwFLO); m++ {
		if tab.bwFLO[m] < tab.bwFLO[m-1] {
			t.Fatalf("bwFLO not monotone: %v", tab.bwFLO)
		}
	}
	if tab.bwFLO[3] == 0 {
		t.Fatal("1-lane FLO should be positive under dense traffic")
	}
}

func TestROOFLOFromHistogram(t *testing.T) {
	// Long gaps (~1 µs) between packets: thresholds 32/128/512 all see a
	// wakeup per gap; 2048 sees none.
	l, ec, tab := feedLink(t, link.Config{ROO: true, Wakeup: 14 * sim.Nanosecond},
		link.DirResponse, denseGaps(50, sim.Microsecond))
	_ = l
	if ec.IdleOverCount[0] == 0 || ec.IdleOverCount[3] != 0 {
		t.Fatalf("histogram: %v", ec.IdleOverCount)
	}
	// Sparse arrivals: no sampled wakeup-window arrivals, so per-wakeup
	// cost = wakeup latency exactly.
	want := sim.Duration(ec.IdleOverCount[0]) * 14 * sim.Nanosecond
	if tab.rooFLO[0] != want {
		t.Fatalf("rooFLO[0] = %v, want %v", tab.rooFLO[0], want)
	}
	if tab.rooFLO[3] != 0 {
		t.Fatalf("rooFLO[2048] = %v, want 0", tab.rooFLO[3])
	}
	// Off-fraction must decrease with threshold.
	for i := 1; i < link.NumROOModes; i++ {
		if tab.offFrac[i] > tab.offFrac[i-1] {
			t.Fatalf("offFrac not monotone: %v", tab.offFrac)
		}
	}
}

func TestRequestLinkROOPenaltyDoubled(t *testing.T) {
	// §V-B: request links add an extra wakeup×arrivals term because
	// delayed requests inflate into 5× larger responses. With dense
	// bursts after each gap the penalty must exceed the response link's.
	burst := func() []sim.Duration {
		var gaps []sim.Duration
		for i := 0; i < 40; i++ {
			gaps = append(gaps, sim.Microsecond)
			for j := 0; j < 10; j++ {
				gaps = append(gaps, sim.Nanosecond)
			}
		}
		return gaps
	}
	_, _, reqTab := feedLink(t, link.Config{ROO: true}, link.DirRequest, burst())
	_, _, respTab := feedLink(t, link.Config{ROO: true}, link.DirResponse, burst())
	if reqTab.rooFLO[0] <= respTab.rooFLO[0] {
		t.Fatalf("request rooFLO %v not above response %v", reqTab.rooFLO[0], respTab.rooFLO[0])
	}
}

func TestSelectModeRespectsBudget(t *testing.T) {
	tab := floTable{
		mech:  link.MechVWL,
		bwFLO: []sim.Duration{0, 100, 200, 400},
	}
	// Budget 150: modes 0 and 1 feasible; mode 1 has lower power.
	if got := tab.selectMode(150); got.BW != 1 {
		t.Fatalf("selectMode(150) = %+v, want BW 1", got)
	}
	// Budget 1000: everything feasible; 1-lane wins.
	if got := tab.selectMode(1000); got.BW != 3 {
		t.Fatalf("selectMode(1000) = %+v, want BW 3", got)
	}
	// Budget 0: full power only.
	if got := tab.selectMode(0); got != FullMode {
		t.Fatalf("selectMode(0) = %+v, want full", got)
	}
}

func TestSelectModeCombined(t *testing.T) {
	tab := floTable{
		mech:    link.MechVWL,
		roo:     true,
		bwFLO:   []sim.Duration{0, 100, 200, 400},
		rooFLO:  [link.NumROOModes]sim.Duration{80, 40, 10, 0},
		offFrac: [link.NumROOModes]float64{0.9, 0.5, 0.2, 0},
	}
	// Budget 140: {BW0 + ROO0} costs 80 and scores 1×(0.1+0.9×0.01) ≈
	// 0.109 — sleeping 90% of the time at full width beats any narrower
	// always-on mode within budget.
	got := tab.selectMode(140)
	if got.BW != 0 || got.ROO != 0 {
		t.Fatalf("selectMode(140) = %+v, want {0,0}", got)
	}
	// Unlimited: lowest score = 1 lane + most aggressive ROO.
	got = tab.selectMode(1 << 50)
	if got.BW != 3 || got.ROO != 0 {
		t.Fatalf("selectMode(inf) = %+v, want {3,0}", got)
	}
}

func TestNextCheaperAndIsLowest(t *testing.T) {
	tab := floTable{mech: link.MechVWL, bwFLO: []sim.Duration{0, 1, 2, 3}}
	nc, ok := tab.nextCheaper(Mode{BW: 0, ROO: link.ROOFullMode})
	if !ok || nc.BW != 1 {
		t.Fatalf("nextCheaper(full) = %+v, %v", nc, ok)
	}
	if tab.isLowest(Mode{BW: 0, ROO: link.ROOFullMode}) {
		t.Fatal("full mode reported lowest")
	}
	if !tab.isLowest(Mode{BW: 3, ROO: link.ROOFullMode}) {
		t.Fatal("1-lane mode not lowest")
	}
}

func TestScoreOrdering(t *testing.T) {
	tab := floTable{
		mech:    link.MechVWL,
		roo:     true,
		bwFLO:   []sim.Duration{0, 0, 0, 0},
		offFrac: [link.NumROOModes]float64{0.8, 0.4, 0.1, 0},
	}
	// More aggressive ROO must score lower at equal bandwidth.
	for r := 1; r < link.NumROOModes; r++ {
		a := tab.score(Mode{BW: 0, ROO: r - 1})
		b := tab.score(Mode{BW: 0, ROO: r})
		if a >= b {
			t.Fatalf("score not increasing with threshold: %v vs %v", a, b)
		}
	}
	// Fewer lanes must score lower at equal ROO.
	for bw := 1; bw < link.NumBWModes; bw++ {
		if tab.score(Mode{BW: bw, ROO: 3}) >= tab.score(Mode{BW: bw - 1, ROO: 3}) {
			t.Fatal("score not decreasing with narrower links")
		}
	}
}

func TestApplyMode(t *testing.T) {
	k := sim.NewKernel()
	l := link.New(k, link.Config{Mechanism: link.MechVWL, ROO: true, FullWatts: 1}, 0,
		link.DirRequest, 0, packet.ProcessorID, 0, 1)
	applyMode(l, Mode{BW: 2, ROO: 1})
	if l.BWTarget() != 2 || l.ROOMode() != 1 {
		t.Fatalf("applyMode: bw=%d roo=%d", l.BWTarget(), l.ROOMode())
	}
}
