package core

import (
	"fmt"

	"memnet/internal/link"
	"memnet/internal/metrics"
	"memnet/internal/network"
	"memnet/internal/packet"
	"memnet/internal/sim"
	"memnet/internal/stats"
)

// PolicyKind selects a built-in management policy.
type PolicyKind int

const (
	// PolicyNone leaves every link at full power (the FP baseline).
	PolicyNone PolicyKind = iota
	// PolicyUnaware is §V's network-unaware management.
	PolicyUnaware
	// PolicyAware is §VI's network-aware management (ISP).
	PolicyAware
	// PolicyStatic is §VII-A's static fat/tapered-tree bandwidth
	// selection (bandwidth mechanisms only; no epochs, no feedback).
	PolicyStatic
)

// String implements fmt.Stringer.
func (p PolicyKind) String() string {
	switch p {
	case PolicyNone:
		return "full-power"
	case PolicyUnaware:
		return "network-unaware"
	case PolicyAware:
		return "network-aware"
	case PolicyStatic:
		return "static"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(p))
	}
}

// Config tunes the management machinery. Zero values take the paper's
// settings via DefaultConfig.
type Config struct {
	// Policy selects the built-in policy; Custom overrides it.
	Policy PolicyKind
	// Custom, if non-nil, replaces the built-in reconfiguration step
	// (see the custom_policy example).
	Custom Policy
	// Epoch is the management interval (100 µs, like [20]).
	Epoch sim.Duration
	// Alpha is the user-tunable slowdown factor α (e.g., 0.025, 0.05).
	Alpha float64
	// ISPIterations caps ISP rounds (the paper uses 3).
	ISPIterations int
	// GrantFraction is the share of the leftover-AMS pool granted per
	// violation request (1/16), MaxGrants the per-link per-epoch cap (4).
	GrantFraction float64
	MaxGrants     int
	// SRCFraction is the "big fraction" (25%) of the next-cheaper mode's
	// FLO a link must be able to fund to stay a slowdown-receiving
	// candidate.
	SRCFraction float64
	// RequestShare is the fraction of the pool assigned to request links
	// when both link types are candidates (3/4 for VWL/DVFS+ROO).
	RequestShare float64
	// ViolationChecksPerEpoch sets how often links compare their running
	// overhead against their AMS.
	ViolationChecksPerEpoch int
	// ChargeControl charges ISP/grant message energy to the links.
	ChargeControl bool
	// DisableWakeCascade turns off the §VI-B response-path wakeup
	// cascade (ablation; see bench_test.go).
	DisableWakeCascade bool
	// DisableQDQF turns off the §VI-C congestion discount (ablation).
	DisableQDQF bool
	// ProportionalLinkSplit makes the unaware policy divide a module's
	// AMS between its two connectivity links in proportion to their read
	// traffic instead of equally (ablation; the paper prescribes equal).
	ProportionalLinkSplit bool
	// CollectLinkHours accumulates the Fig. 13 histogram.
	CollectLinkHours bool
}

// DefaultConfig returns the paper's settings for a policy.
func DefaultConfig(policy PolicyKind, alpha float64) Config {
	return Config{
		Policy:                  policy,
		Epoch:                   100 * sim.Microsecond,
		Alpha:                   alpha,
		ISPIterations:           3,
		GrantFraction:           1.0 / 16,
		MaxGrants:               4,
		SRCFraction:             0.25,
		RequestShare:            0.75,
		ViolationChecksPerEpoch: 10,
		ChargeControl:           true,
		CollectLinkHours:        true,
	}
}

// Policy is the per-epoch reconfiguration hook. Built-in policies and the
// custom_policy example implement it.
type Policy interface {
	// Name labels the policy in reports.
	Name() string
	// Reconfigure inspects the finished epoch and programs every link's
	// power mode for the next one, returning each link's AMS budget for
	// violation monitoring (indexed like Manager.Links).
	Reconfigure(m *Manager, e *EpochData) []sim.Duration
}

// EpochData is everything a policy sees at an epoch boundary.
type EpochData struct {
	// Counters[i] are link i's counters for the finished epoch (indexed
	// like network.Network.Links: 2m = module m's UpReq, 2m+1 = UpResp).
	Counters []link.EpochCounters
	// FLO[i] is link i's per-mode overhead table for the next epoch.
	FLO []floTable
	// DRAMReads[m] counts module m's DRAM reads in the epoch.
	DRAMReads []uint64
	// ModuleFEL and ModuleAEL are Eq. 1's per-module epoch latencies.
	ModuleFEL, ModuleAEL []sim.Duration
	// EpochLen is the epoch duration.
	EpochLen sim.Duration
}

// Manager drives epochs, maintains Eq. 1's cumulative sums, runs violation
// sweeps, and carries the shared state both policies use.
type Manager struct {
	Kernel *sim.Kernel
	Net    *network.Network
	Cfg    Config

	policy Policy

	// Per-module cumulative Σ FEL and Σ (AEL − FEL) (Eq. 1).
	CumFEL  []sim.Duration
	CumOver []sim.Duration
	// Network-wide cumulative sums (kept by the head module in §VI).
	CumFELNet  sim.Duration
	CumOverNet sim.Duration

	// Violation state for the running epoch.
	linkAMS    []sim.Duration
	grants     []int
	pool       sim.Duration
	grantUnit  sim.Duration
	violations uint64
	granted    uint64

	prevDRAMReads []uint64
	epochs        uint64
	Hist          *stats.LinkHourHist
}

// Attach wires a manager to net and starts its epoch machinery. For
// PolicyNone it only keeps links at full power (no epochs). For
// PolicyStatic it programs the static modes once.
func Attach(k *sim.Kernel, net *network.Network, cfg Config) *Manager {
	if cfg.Epoch <= 0 {
		cfg.Epoch = 100 * sim.Microsecond
	}
	if cfg.ViolationChecksPerEpoch <= 0 {
		cfg.ViolationChecksPerEpoch = 10
	}
	m := &Manager{
		Kernel:        k,
		Net:           net,
		Cfg:           cfg,
		CumFEL:        make([]sim.Duration, net.Topo.N()),
		CumOver:       make([]sim.Duration, net.Topo.N()),
		linkAMS:       make([]sim.Duration, len(net.Links)),
		grants:        make([]int, len(net.Links)),
		prevDRAMReads: make([]uint64, net.Topo.N()),
		Hist:          &stats.LinkHourHist{},
	}
	switch {
	case cfg.Custom != nil:
		m.policy = cfg.Custom
	case cfg.Policy == PolicyUnaware:
		m.policy = &UnawarePolicy{}
	case cfg.Policy == PolicyAware:
		p := &AwarePolicy{}
		m.policy = p
		p.install(m)
	case cfg.Policy == PolicyStatic:
		applyStatic(net)
		return m
	default:
		return m // PolicyNone: nothing to do
	}

	// Unlimited AMS until the first epoch completes (no counters yet).
	for i := range m.linkAMS {
		m.linkAMS[i] = sim.Duration(1) << 60
	}
	m.scheduleEpoch()
	m.scheduleViolationSweeps()
	return m
}

// AttachMetrics registers the management-layer time-series on reg
// (nil-safe). Slack is Eq. 1's remaining slowdown budget,
// α·ΣFEL − Σ(AEL−FEL), network-wide: positive means the network may keep
// saving power, negative means the policy is violating its bound and
// must force links back to full power. Violations and grants count those
// slowdown decisions.
func (m *Manager) AttachMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	reg.Gauge("core.epoch_slack_ps", func() float64 {
		return m.Cfg.Alpha*float64(m.CumFELNet) - float64(m.CumOverNet)
	})
	reg.Counter("core.epochs", func() float64 { return float64(m.epochs) })
	reg.Counter("core.violations", func() float64 { return float64(m.violations) })
	reg.Counter("core.grants", func() float64 { return float64(m.granted) })
}

// Policy returns the active policy (nil for FP/static).
func (m *Manager) Policy() Policy { return m.policy }

// Epochs returns the number of completed epochs.
func (m *Manager) Epochs() uint64 { return m.epochs }

// Violations returns how many link-epoch AMS violations occurred; Granted
// counts how many were absorbed by leftover-AMS grants.
func (m *Manager) Violations() (total, granted uint64) { return m.violations, m.granted }

// Links returns the managed links (aliases network ordering).
func (m *Manager) Links() []*link.Link { return m.Net.Links }

func (m *Manager) scheduleEpoch() {
	m.Kernel.After(m.Cfg.Epoch, func() {
		m.endEpoch()
		m.scheduleEpoch()
	})
}

// endEpoch snapshots counters, maintains Eq. 1's sums, and lets the policy
// program the next epoch.
func (m *Manager) endEpoch() {
	now := m.Kernel.Now()
	net := m.Net
	n := net.Topo.N()
	e := &EpochData{
		Counters:  make([]link.EpochCounters, len(net.Links)),
		FLO:       make([]floTable, len(net.Links)),
		DRAMReads: make([]uint64, n),
		ModuleFEL: make([]sim.Duration, n),
		ModuleAEL: make([]sim.Duration, n),
		EpochLen:  m.Cfg.Epoch,
	}
	for i, l := range net.Links {
		l.ClearForce()
		e.Counters[i] = l.Mon().SnapshotAndReset(now)
		e.FLO[i] = buildFLOTable(l, &e.Counters[i], m.Cfg.Epoch)
		if m.Cfg.CollectLinkHours {
			util := float64(e.Counters[i].BusyTime) / float64(m.Cfg.Epoch)
			m.Hist.Add(util, e.Counters[i].TimeInBWMode)
		}
	}
	nominal := net.Cfg.DRAM.NominalReadLatency()
	for i := 0; i < n; i++ {
		mod := net.Modules[i]
		reads := mod.DRAM.Stats().Reads
		e.DRAMReads[i] = reads - m.prevDRAMReads[i]
		m.prevDRAMReads[i] = reads
		dramLat := sim.Duration(e.DRAMReads[i]) * nominal
		req := &e.Counters[2*i]
		resp := &e.Counters[2*i+1]
		e.ModuleFEL[i] = dramLat + req.VirtualReadLatency[0] + resp.VirtualReadLatency[0]
		e.ModuleAEL[i] = dramLat + req.ActualReadLatency + resp.ActualReadLatency
	}

	m.epochs++
	for i := range m.grants {
		m.grants[i] = 0
	}
	ams := m.policy.Reconfigure(m, e)
	copy(m.linkAMS, ams)
}

// scheduleViolationSweeps periodically compares each link's running
// latency overhead against its AMS ([23]); violators either receive a
// grant from the leftover pool (network-aware) or go to full power.
func (m *Manager) scheduleViolationSweeps() {
	interval := m.Cfg.Epoch / sim.Duration(m.Cfg.ViolationChecksPerEpoch)
	var sweep func()
	sweep = func() {
		for i, l := range m.Net.Links {
			// Failed links are out of the management domain: no traffic,
			// no modes to force, no claim on violation grants.
			if l.Forced() || l.Failed() {
				continue
			}
			ec := l.Mon().Peek()
			over := ec.ActualReadLatency - ec.VirtualReadLatency[0]
			if over <= m.linkAMS[i] {
				continue
			}
			m.violations++
			if m.tryGrant(i, l) {
				m.granted++
				continue
			}
			l.ForceFullPower()
		}
		m.Kernel.After(interval, sweep)
	}
	m.Kernel.After(interval, sweep)
}

// tryGrant implements §VI-A3: a violating link asks the head module for a
// 1/16 slice of the leftover AMS, up to 4 requests per epoch.
func (m *Manager) tryGrant(i int, l *link.Link) bool {
	if m.pool <= 0 || m.grantUnit <= 0 || m.grants[i] >= m.Cfg.MaxGrants {
		return false
	}
	// A link below a severed cut cannot reach the head module to ask.
	if m.Net.Unreachable(l.Owner) {
		return false
	}
	if m.pool < m.grantUnit {
		return false
	}
	m.pool -= m.grantUnit
	m.linkAMS[i] += m.grantUnit
	m.grants[i]++
	if m.Cfg.ChargeControl {
		// Request travels up to the head, grant travels back.
		m.chargePath(l.Owner)
	}
	return true
}

// chargePath charges one control packet on each link between module and
// the processor, both directions.
func (m *Manager) chargePath(module int) {
	flits := packet.Control.Flits()
	for mod := module; mod != packet.ProcessorID; mod = m.Net.Topo.Parent(mod) {
		if req := m.Net.Modules[mod].UpReq; !req.Failed() {
			req.ChargeControlFlits(flits)
		}
		if resp := m.Net.Modules[mod].UpResp; !resp.Failed() {
			resp.ChargeControlFlits(flits)
		}
	}
}

// chargeISP charges the per-iteration ISP message energy: each module
// sends one 64 B packet upstream during gather and receives one during
// scatter (§VI-A2).
func (m *Manager) chargeISP(iterations int) {
	if !m.Cfg.ChargeControl {
		return
	}
	flits := packet.Control.Flits() * iterations
	for _, mod := range m.Net.Modules {
		if !mod.UpReq.Failed() {
			mod.UpReq.ChargeControlFlits(flits)
		}
		if !mod.UpResp.Failed() {
			mod.UpResp.ChargeControlFlits(flits)
		}
	}
}

// Pool returns the leftover-AMS pool remaining for violation grants this
// epoch.
func (m *Manager) Pool() sim.Duration { return m.pool }

// SetPool installs the post-ISP leftover-AMS pool for the running epoch.
func (m *Manager) SetPool(pool sim.Duration) {
	m.pool = pool
	m.grantUnit = sim.Duration(float64(pool) * m.Cfg.GrantFraction)
}
