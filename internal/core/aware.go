package core

import (
	"memnet/internal/link"
	"memnet/internal/packet"
	"memnet/internal/sim"
)

// AwarePolicy is §VI's network-aware management. It reuses the unaware
// scheme's counters and Eq. 1 but redistributes the *network-level* AMS
// with Iterative Slowdown Propagation (ISP) so that busier links always
// operate at a power mode no lower than less busy links; it hides the
// wakeup latency of the whole response path with a wake cascade (§VI-B);
// and it discounts downstream latency overhead that congested upstream
// response links would have absorbed anyway (QD/QF, §VI-C). Leftover AMS
// pools at the head module and is granted in 1/16 slices to links that
// would otherwise violate (§VI-A3).
type AwarePolicy struct {
	mgr *Manager
}

// Name implements Policy.
func (*AwarePolicy) Name() string { return "network-aware" }

// install wires the §VI-B response-path wakeup cascade. For every module:
// its response link may only turn off when its DRAM has no outstanding
// reads and every immediate downstream response link is off; it starts
// waking when its DRAM begins a read (wired by the network layer) or when
// a downstream response link starts waking plus a wait interval covering
// the downstream router, SERDES and transmission latencies.
func (p *AwarePolicy) install(m *Manager) {
	p.mgr = m
	if !m.Net.Cfg.ROO || m.Cfg.DisableWakeCascade {
		return
	}
	topo := m.Net.Topo
	for i := range m.Net.Modules {
		mod := m.Net.Modules[i]
		children := topo.Children(i)
		net := m.Net
		mod.UpResp.HoldOn = func() bool {
			if mod.DRAM.OutstandingReads() > 0 {
				return true
			}
			for _, c := range children {
				// A failed downstream link counts as off: it will never
				// turn off again, and holding the parent on for it would
				// pin the whole upstream path at full power forever.
				if st := net.Modules[c].UpResp.State(); st != link.StateOff && st != link.StateFailed {
					return true
				}
			}
			return false
		}
		parent := topo.Parent(i)
		if parent == packet.ProcessorID {
			continue
		}
		parentResp := m.Net.Modules[parent].UpResp
		resp := mod.UpResp
		mech := resp.Config().Mechanism
		resp.OnWakeStart = func() {
			// Wait interval: router latency + the downstream link's
			// current SERDES and (response packet) transmission
			// latencies — constants within an epoch (§VI-B).
			mode := resp.BWTarget()
			bw := link.BWFactor(mech, mode)
			tx := sim.Duration(float64(5*link.FlitTimeFull)/bw + 0.5)
			wait := link.RouterLatency() + link.SERDESLatency(mech, mode) + tx
			m.Kernel.After(wait, parentResp.Wake)
		}
		resp.OnEnqueue = func() {
			// A response is about to travel upstream; pre-wake the next
			// hop if it is off.
			if parentResp.State() == link.StateOff {
				parentResp.Wake()
			}
		}
		resp.OnTurnOff = func() {
			// The upstream response link may now satisfy its own
			// turn-off condition.
			parentResp.MaybeTurnOff()
		}
	}
}

// Reconfigure implements Policy: Eq. 1 at network scope (the "first ISP
// gather"), then up to ISPIterations scatter/gather rounds, a final
// monotonicity gather, and the leftover pool for violation grants.
func (p *AwarePolicy) Reconfigure(m *Manager, e *EpochData) []sim.Duration {
	net := m.Net
	topo := net.Topo
	nLinks := len(net.Links)
	hasBW := net.Cfg.Mechanism != link.MechNone
	hasROO := net.Cfg.ROO

	// §VI-B: response-link wakeups are fully hidden, so their ROO
	// dimension costs nothing and is pinned to the most aggressive
	// threshold by the score function.
	if hasROO {
		for i := 0; i < topo.N(); i++ {
			t := &e.FLO[2*i+1]
			for r := range t.rooFLO {
				t.rooFLO[r] = 0
			}
		}
	}

	// --- First gather: network-level AMS (Eq. 1) with the §VI-C QD/QF
	// discount applied as overhead is reduced up the response path. ---
	overhead := make([]sim.Duration, nLinks)
	for i := range overhead {
		overhead[i] = e.Counters[i].ActualReadLatency - e.Counters[i].VirtualReadLatency[0]
	}
	var subtreeOver func(mod int) sim.Duration
	subtreeOver = func(mod int) sim.Duration {
		own := overhead[2*mod] + overhead[2*mod+1]
		var down sim.Duration
		for _, c := range topo.Children(mod) {
			down += subtreeOver(c)
		}
		if hasBW && down > 0 && !m.Cfg.DisableQDQF {
			resp := &e.Counters[2*mod+1]
			disc := sim.Duration(float64(down) * resp.QF())
			if resp.QD < disc {
				disc = resp.QD
			}
			down -= disc
		}
		return own + down
	}
	var totalFEL sim.Duration
	for i := 0; i < topo.N(); i++ {
		totalFEL += e.ModuleFEL[i]
		// Keep the per-module sums warm too, so diagnostics and custom
		// policies can compare the two accountings.
		m.CumFEL[i] += e.ModuleFEL[i]
		m.CumOver[i] += e.ModuleAEL[i] - e.ModuleFEL[i]
	}
	m.CumFELNet += totalFEL
	m.CumOverNet += subtreeOver(0)
	pool := sim.Duration(m.Cfg.Alpha*float64(m.CumFELNet)) - m.CumOverNet
	if pool < 0 {
		pool = 0
	}

	// --- ISP state ---
	sel := make([]Mode, nLinks)
	amsL := make([]sim.Duration, nLinks)
	isSRC := make([]bool, nLinks)
	for i := range sel {
		sel[i] = FullMode
	}
	for i := 0; i < topo.N(); i++ {
		// Request links are always candidates; response links only when
		// a bandwidth mechanism exists (for ROO-only networks their
		// wakeups are hidden and they need no slowdown budget). Failed
		// links leave the slack-distribution domain entirely.
		isSRC[2*i] = (hasBW || hasROO) && !net.Links[2*i].Failed()
		isSRC[2*i+1] = hasBW && !net.Links[2*i+1].Failed()
	}

	// dsrc[li]: SRC links strictly below li in its same-type tree.
	dsrc := make([]int, nLinks)
	var computeDSRC func(mod, off int) int // off 0=request, 1=response
	computeDSRC = func(mod, off int) int {
		li := 2*mod + off
		below := 0
		for _, c := range topo.Children(mod) {
			below += computeDSRC(c, off)
		}
		dsrc[li] = below
		if isSRC[li] {
			below++
		}
		return below
	}

	countSRC := func() (req, resp int) {
		for i := 0; i < topo.N(); i++ {
			if isSRC[2*i] {
				req++
			}
			if isSRC[2*i+1] {
				resp++
			}
		}
		return req, resp
	}

	// scatter walks one link-type tree distributing per-candidate
	// slowdown (PCS) and selecting modes; leftovers with no downstream
	// candidates pool for the next gather.
	var leafPool sim.Duration
	var scatter func(mod, off int, pcs sim.Duration)
	scatter = func(mod, off int, pcs sim.Duration) {
		li := 2*mod + off
		next := pcs
		if isSRC[li] {
			t := &e.FLO[li]
			amsL[li] += pcs
			mode := t.selectMode(amsL[li])
			flo := t.flo(mode)
			leftover := amsL[li] - flo
			if dsrc[li] > 0 {
				next = pcs + leftover/sim.Duration(dsrc[li])
			} else if leftover > 0 {
				leafPool += leftover
			}
			sel[li] = mode
			amsL[li] = flo
			// Stay a candidate only if not already at the cheapest mode
			// and the budget seen this round could fund a meaningful
			// fraction of the next cheaper mode's FLO.
			if nc, ok := t.nextCheaper(mode); ok {
				need := sim.Duration(m.Cfg.SRCFraction * float64(t.flo(nc)))
				isSRC[li] = pcs+amsL[li] >= need
			} else {
				isSRC[li] = false
			}
		}
		for _, c := range topo.Children(mod) {
			scatter(c, off, next)
		}
	}

	// gather enforces that an upstream link runs at a power mode no lower
	// than any downstream link of its type, releasing the FLO difference
	// upstream as unused AMS; it returns the subtree's max selected score
	// and mode.
	var releasePool sim.Duration
	var gatherMono func(mod, off int) (float64, Mode, bool)
	gatherMono = func(mod, off int) (float64, Mode, bool) {
		li := 2*mod + off
		t := &e.FLO[li]
		var maxScore float64
		var maxMode Mode
		have := false
		for _, c := range topo.Children(mod) {
			s, md, ok := gatherMono(c, off)
			if ok && (!have || s > maxScore) {
				maxScore, maxMode, have = s, md, true
			}
		}
		myScore := t.score(sel[li])
		if have && myScore < maxScore-1e-12 {
			released := t.flo(sel[li]) - t.flo(maxMode)
			if released > 0 {
				releasePool += released
			}
			sel[li] = maxMode
			amsL[li] = t.flo(maxMode)
			myScore = t.score(maxMode)
		}
		if !have || myScore > maxScore {
			return myScore, sel[li], true
		}
		return maxScore, maxMode, true
	}

	iterations := 0
	for iter := 0; iter < m.Cfg.ISPIterations; iter++ {
		nReq, nResp := countSRC()
		// Even with an empty pool the first scatter must run: modes with
		// zero FLO (idle links) are free and still need selecting.
		if nReq+nResp == 0 || (pool <= 0 && iter > 0) {
			break
		}
		if pool < 0 {
			pool = 0
		}
		iterations++
		computeDSRC(0, 0)
		computeDSRC(0, 1)
		var pcsReq, pcsResp sim.Duration
		switch {
		case nResp == 0:
			if nReq > 0 {
				pcsReq = pool / sim.Duration(nReq)
			}
		case nReq == 0:
			pcsResp = pool / sim.Duration(nResp)
		case hasBW && hasROO:
			// §VI-B: with combined mechanisms the head assigns 3/4 of
			// the unused AMS to request links.
			pcsReq = sim.Duration(m.Cfg.RequestShare*float64(pool)) / sim.Duration(nReq)
			pcsResp = sim.Duration((1-m.Cfg.RequestShare)*float64(pool)) / sim.Duration(nResp)
		default:
			per := pool / sim.Duration(nReq+nResp)
			pcsReq, pcsResp = per, per
		}
		leafPool, releasePool = 0, 0
		if nReq > 0 {
			scatter(0, 0, pcsReq)
		}
		if nResp > 0 {
			scatter(0, 1, pcsResp)
		}
		gatherMono(0, 0)
		gatherMono(0, 1)
		pool = leafPool + releasePool
	}
	// A final monotonicity pass covers the degenerate no-iteration case.
	if iterations == 0 {
		releasePool = 0
		gatherMono(0, 0)
		gatherMono(0, 1)
		pool += releasePool
	}

	ams := make([]sim.Duration, nLinks)
	for li, l := range net.Links {
		if l.Failed() {
			// Dead links draw no power and serve no reads; exempt them
			// from violation monitoring instead of flagging a zero budget.
			ams[li] = sim.Duration(1) << 60
			continue
		}
		if hasROO && l.Dir == link.DirResponse {
			// §VI-B: response-link wakeups are hidden by the cascade, so
			// their ROO dimension is pinned to the most aggressive
			// threshold regardless of budget.
			sel[li].ROO = 0
		}
		applyMode(l, sel[li])
		ams[li] = amsL[li]
		if !hasBW && l.Dir == link.DirResponse {
			// ROO-only response links carry no budget: their wakeups
			// are hidden by the cascade, so they are exempt from
			// violation monitoring rather than perpetually "violating"
			// a zero budget.
			ams[li] = sim.Duration(1) << 60
		}
	}
	m.SetPool(pool)
	m.chargeISP(iterations)
	return ams
}
