package core

import "memnet/internal/sim"

// UnawarePolicy is §V's network-unaware management: each module
// independently turns its own history into next-epoch link power modes.
//
// Per epoch, module m updates its cumulative Σ FEL and Σ (AEL − FEL)
// counters and computes its allowable memory slowdown
//
//	AMS_M(m, t+1) = α · Σ_t FEL(m,t) − Σ_t (AEL(m,t) − FEL(m,t))
//
// (one summand of Eq. 1). The module splits its AMS equally between its
// two connectivity links; each link controller then picks the lowest-power
// mode whose predicted future latency overhead (FLO) fits its share.
// Violation feedback ([23]) is handled by the Manager's sweeps against the
// returned per-link AMS budgets.
type UnawarePolicy struct{}

// Name implements Policy.
func (*UnawarePolicy) Name() string { return "network-unaware" }

// Reconfigure implements Policy.
func (*UnawarePolicy) Reconfigure(m *Manager, e *EpochData) []sim.Duration {
	n := m.Net.Topo.N()
	ams := make([]sim.Duration, 2*n)
	for i := 0; i < n; i++ {
		m.CumFEL[i] += e.ModuleFEL[i]
		m.CumOver[i] += e.ModuleAEL[i] - e.ModuleFEL[i]
		amsM := sim.Duration(m.Cfg.Alpha*float64(m.CumFEL[i])) - m.CumOver[i]
		if amsM < 0 {
			amsM = 0
		}
		// Each connectivity link receives an equal portion (§V-A), or a
		// traffic-proportional one under the ablation config.
		shares := [2]sim.Duration{amsM / 2, amsM / 2}
		if m.Cfg.ProportionalLinkSplit {
			reqReads := e.Counters[2*i].ReadPackets
			respReads := e.Counters[2*i+1].ReadPackets
			if total := reqReads + respReads; total > 0 {
				shares[0] = amsM * sim.Duration(reqReads) / sim.Duration(total)
				shares[1] = amsM - shares[0]
			}
		}
		for j, li := range []int{2 * i, 2*i + 1} {
			if m.Net.Links[li].Failed() {
				// Dead links leave the management domain: no mode to
				// program, and exempt from violation monitoring.
				ams[li] = sim.Duration(1) << 60
				continue
			}
			mode := e.FLO[li].selectMode(shares[j])
			applyMode(m.Net.Links[li], mode)
			ams[li] = shares[j]
		}
	}
	return ams
}
