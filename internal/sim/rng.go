package sim

import "math"

// RNG is a small, fast, deterministic random number generator
// (xoshiro256** seeded via splitmix64). The simulator never uses
// math/rand's global state so runs are reproducible regardless of what
// test order or other packages do.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via splitmix64, so that
// nearby seeds produce unrelated streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// Avoid the all-zero state, which xoshiro cannot escape.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Exp returns an exponentially distributed value with the given mean.
// It is used for inter-arrival times in the workload generator.
func (r *RNG) Exp(mean float64) float64 {
	// Inverse transform; 1-u is in (0, 1] so the log is finite.
	return -mean * math.Log(1-r.Float64())
}
