// Package sim provides the discrete-event simulation kernel used by every
// other part of the memory-network simulator: a deterministic event queue,
// an integer-picosecond clock, and a seedable random number generator.
//
// The kernel is intentionally minimal. Components schedule closures at
// absolute simulated times; the kernel executes them in (time, insertion
// order) order. All simulator state changes happen inside events, so a run
// is fully deterministic for a given seed and configuration.
package sim

import "fmt"

// Time is an absolute simulated time in picoseconds. Picoseconds are the
// base unit because the flit transfer time of a full-width link (0.64 ns)
// and the router clock are sub-nanosecond; an int64 of picoseconds covers
// over 100 days of simulated time, far beyond any experiment here.
type Time int64

// Duration is a span of simulated time in picoseconds.
type Duration = Time

// Common durations.
const (
	Picosecond  Duration = 1
	Nanosecond  Duration = 1000
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Nanoseconds converts t to nanoseconds as a float64 (for reporting).
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Seconds converts t to seconds as a float64 (for rates and power math).
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit for readability.
func (t Time) String() string {
	switch {
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.2fns", t.Nanoseconds())
	case t < Millisecond:
		return fmt.Sprintf("%.2fus", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.4fs", t.Seconds())
	}
}

// FromNanos builds a Duration from a floating-point nanosecond count,
// rounding to the nearest picosecond.
func FromNanos(ns float64) Duration {
	if ns < 0 {
		panic("sim: negative duration")
	}
	return Duration(ns*1000 + 0.5)
}
