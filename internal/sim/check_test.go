package sim

import (
	"strings"
	"testing"
)

func TestCheckInvariantsCleanQueue(t *testing.T) {
	k := NewKernel()
	for i := 20; i > 0; i-- {
		k.Schedule(Time(i)*Microsecond, func() {})
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatalf("clean queue: %v", err)
	}
	for i := 0; i < 10; i++ {
		k.Step()
		if err := k.CheckInvariants(); err != nil {
			t.Fatalf("after %d steps: %v", i+1, err)
		}
	}
}

func TestCheckInvariantsDetectsHeapCorruption(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 16; i++ {
		k.Schedule(Time(i)*Microsecond, func() {})
	}
	// Corrupt the overflow heap the way a buggy sift would: a child
	// earlier than its parent.
	k.overflow[0].at, k.overflow[5].at = k.overflow[5].at, k.overflow[0].at
	err := k.CheckInvariants()
	if err == nil || !strings.Contains(err.Error(), "heap order") {
		t.Fatalf("corrupted heap not detected: %v", err)
	}
}

func TestCheckInvariantsDetectsStaleHead(t *testing.T) {
	k := NewKernel()
	k.Schedule(5*Microsecond, func() {})
	k.now = 10 * Microsecond // simulate clock corruption
	err := k.CheckInvariants()
	if err == nil || !strings.Contains(err.Error(), "precedes now") {
		t.Fatalf("stale head not detected: %v", err)
	}
}
