package sim

import (
	"fmt"
	"strings"
)

// WatchdogConfig tunes the no-progress detector.
type WatchdogConfig struct {
	// Interval is the simulated time between progress checks.
	Interval Duration
	// StallChecks is how many consecutive no-progress checks (while
	// requests are outstanding) declare a stall.
	StallChecks int
}

// DefaultWatchdogConfig returns a detector that fires after ~30 µs of
// simulated quiescence, well past any legitimate wakeup/retry/refresh
// stall in the modelled network.
func DefaultWatchdogConfig() WatchdogConfig {
	return WatchdogConfig{Interval: 10 * Microsecond, StallChecks: 3}
}

// Watchdog detects a simulation that has stopped making progress while
// requests are still outstanding — the hang mode a severed link or lost
// wakeup produces — and captures a diagnostic report instead of letting
// the run hang or finish silently. It is driven entirely by simulated
// time, so arming it never perturbs determinism across runs with the
// same configuration.
//
// Two probes define progress: outstanding() is the number of requests in
// flight, progress() a monotone completion counter. A stall is declared
// when progress() is frozen for StallChecks consecutive intervals while
// outstanding() > 0. CheckDrained covers the complementary hang: the
// event queue drained (simulation "finished") with requests still in
// flight.
type Watchdog struct {
	k           *Kernel
	cfg         WatchdogConfig
	outstanding func() int
	progress    func() uint64
	dump        func() string

	// OnStall, if set, fires once with the report when a stall is
	// detected.
	OnStall func(report string)

	lastProgress uint64
	frozen       int
	stalled      bool
	report       string
	stopped      bool
	started      bool
	ownPending   int // watchdog events in the kernel queue (for CheckDrained)
}

// NewWatchdog builds a watchdog over k. outstanding and progress are
// required; dump may be nil.
func NewWatchdog(k *Kernel, cfg WatchdogConfig, outstanding func() int, progress func() uint64, dump func() string) *Watchdog {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultWatchdogConfig().Interval
	}
	if cfg.StallChecks <= 0 {
		cfg.StallChecks = DefaultWatchdogConfig().StallChecks
	}
	if outstanding == nil || progress == nil {
		panic("sim: watchdog needs outstanding and progress probes")
	}
	return &Watchdog{k: k, cfg: cfg, outstanding: outstanding, progress: progress, dump: dump}
}

// Start arms the periodic checks. The watchdog reschedules itself until
// Stop is called or a stall is detected, so use it with Kernel.Run (a
// bounded horizon); with RunAll an armed watchdog would keep the queue
// non-empty forever.
func (w *Watchdog) Start() {
	if w.started {
		return
	}
	w.started = true
	w.lastProgress = w.progress()
	w.schedule()
}

// Stop disarms the watchdog; any already-queued check becomes a no-op.
func (w *Watchdog) Stop() { w.stopped = true }

// Stalled reports whether a stall has been detected.
func (w *Watchdog) Stalled() bool { return w.stalled }

// Report returns the diagnostic captured at stall time ("" if none).
func (w *Watchdog) Report() string { return w.report }

func (w *Watchdog) schedule() {
	w.ownPending++
	w.k.After(w.cfg.Interval, func() {
		w.ownPending--
		if w.stopped || w.stalled {
			return
		}
		w.check()
		if !w.stalled {
			w.schedule()
		}
	})
}

// check runs one progress comparison.
func (w *Watchdog) check() {
	cur := w.progress()
	switch {
	case cur != w.lastProgress:
		w.lastProgress = cur
		w.frozen = 0
	case w.outstanding() > 0:
		w.frozen++
		if w.frozen >= w.cfg.StallChecks {
			w.declareStall("no progress for " +
				(Duration(w.frozen) * w.cfg.Interval).String() +
				" with requests outstanding")
		}
	default:
		w.frozen = 0 // quiescent but idle: nothing owed
	}
}

// CheckDrained declares a stall if the event queue has drained (ignoring
// the watchdog's own queued checks) while requests are outstanding — the
// "silently finishing" hang mode. Call it after the run returns.
func (w *Watchdog) CheckDrained() bool {
	if w.stalled {
		return true
	}
	if w.k.Pending()-w.ownPending <= 0 && w.outstanding() > 0 {
		w.declareStall("event queue drained with requests outstanding")
	}
	return w.stalled
}

func (w *Watchdog) declareStall(cause string) {
	w.stalled = true
	var b strings.Builder
	fmt.Fprintf(&b, "watchdog: %s\n", cause)
	fmt.Fprintf(&b, "  t=%s outstanding=%d progress=%d pending-events=%d\n",
		w.k.Now(), w.outstanding(), w.progress(), w.k.Pending())
	if w.dump != nil {
		b.WriteString(w.dump())
	}
	w.report = b.String()
	if w.OnStall != nil {
		w.OnStall(w.report)
	}
}
