package sim

import (
	"strings"
	"testing"
)

// wdProbes is a mutable pair of probe values the watchdog samples.
type wdProbes struct {
	outstanding int
	progress    uint64
}

func newTestWatchdog(k *Kernel, p *wdProbes) *Watchdog {
	cfg := WatchdogConfig{Interval: 10 * Microsecond, StallChecks: 3}
	return NewWatchdog(k, cfg,
		func() int { return p.outstanding },
		func() uint64 { return p.progress },
		func() string { return "dump-marker" })
}

func TestWatchdogDetectsFrozenProgress(t *testing.T) {
	k := NewKernel()
	p := &wdProbes{outstanding: 4, progress: 100}
	w := newTestWatchdog(k, p)
	w.Start()
	// Keep the kernel alive long enough for the stall to be declared;
	// progress never moves while work is outstanding.
	k.Run(200 * Microsecond)
	if !w.Stalled() {
		t.Fatal("watchdog missed a frozen simulation")
	}
	r := w.Report()
	for _, want := range []string{"no progress", "outstanding=4", "progress=100", "dump-marker"} {
		if !strings.Contains(r, want) {
			t.Errorf("report %q missing %q", r, want)
		}
	}
	// Once stalled, the watchdog stops rescheduling itself.
	if k.Pending() != 0 {
		k.RunAll()
	}
	if !w.Stalled() {
		t.Fatal("stall verdict did not stick")
	}
}

func TestWatchdogToleratesSlowProgress(t *testing.T) {
	k := NewKernel()
	p := &wdProbes{outstanding: 4, progress: 0}
	w := newTestWatchdog(k, p)
	w.Start()
	// Bump progress every 25 µs — slower than the check interval, but
	// never frozen for StallChecks consecutive checks.
	for i := 1; i <= 12; i++ {
		at := Time(i) * 25 * Microsecond
		k.Schedule(at, func() { p.progress++ })
	}
	k.Run(300 * Microsecond)
	w.Stop()
	k.RunAll()
	if w.Stalled() {
		t.Fatalf("false stall on a slow but live run:\n%s", w.Report())
	}
}

func TestWatchdogIgnoresIdleSystem(t *testing.T) {
	k := NewKernel()
	p := &wdProbes{outstanding: 0, progress: 7}
	w := newTestWatchdog(k, p)
	w.Start()
	k.Run(500 * Microsecond)
	if w.Stalled() {
		t.Fatal("stall declared with nothing outstanding")
	}
	w.Stop()
	k.RunAll()
}

func TestWatchdogCheckDrained(t *testing.T) {
	k := NewKernel()
	p := &wdProbes{outstanding: 2, progress: 0}
	w := newTestWatchdog(k, p)
	w.Start()
	// One check fires, then the event queue drains with work still
	// outstanding: only the watchdog's own timer remains, which
	// CheckDrained must discount.
	k.Run(15 * Microsecond)
	w.CheckDrained()
	if !w.Stalled() {
		t.Fatal("CheckDrained missed an empty queue with outstanding work")
	}

	// Same shape but fully completed: no stall.
	k2 := NewKernel()
	p2 := &wdProbes{outstanding: 0, progress: 9}
	w2 := newTestWatchdog(k2, p2)
	w2.Start()
	k2.Run(15 * Microsecond)
	w2.CheckDrained()
	if w2.Stalled() {
		t.Fatal("CheckDrained flagged a cleanly drained run")
	}
}

func TestWatchdogStopDisarms(t *testing.T) {
	k := NewKernel()
	p := &wdProbes{outstanding: 3, progress: 0}
	w := newTestWatchdog(k, p)
	w.Start()
	k.Run(15 * Microsecond) // one check elapses
	w.Stop()
	k.Run(500 * Microsecond)
	if w.Stalled() {
		t.Fatal("stopped watchdog still declared a stall")
	}
}

func TestWatchdogOnStallHook(t *testing.T) {
	k := NewKernel()
	p := &wdProbes{outstanding: 1, progress: 0}
	w := newTestWatchdog(k, p)
	var hooked string
	w.OnStall = func(report string) { hooked = report }
	w.Start()
	k.Run(200 * Microsecond)
	if !w.Stalled() || hooked == "" {
		t.Fatal("OnStall hook not invoked")
	}
	if hooked != w.Report() {
		t.Fatal("hook saw a different report")
	}
}
