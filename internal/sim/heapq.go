package sim

// heapArity is the fan-out of the overflow queue's d-ary heap. Four keeps
// the tree half as deep as a binary heap for the same size, so the
// pop-side sift-down — where every level is a round of dependent loads —
// touches fewer cache lines, while the push-side sift-up still compares
// against a single parent per level.
const heapArity = 4

// heapQ is a monomorphic heapArity-ary min-heap over events ordered by
// (at, seq). It was the kernel's whole event queue before the timing
// wheel; it remains as the wheel's spill-over for events beyond the
// horizon, as the oracle the wheel's ordering property tests compare
// against, and as the baseline for the heap-vs-wheel microbenchmarks.
type heapQ []event

// push appends e and restores the heap by sifting it up.
func (h *heapQ) push(e event) {
	q := append(*h, e)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / heapArity
		if !q[i].before(&q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
	*h = q
}

// pop removes and returns the minimum event. The vacated slot at the old
// tail is zeroed so the retired action — and everything it captures — is
// collectable immediately instead of being pinned by the backing array
// for the rest of the run (the container/heap-era implementation leaked
// every popped fn this way).
func (h *heapQ) pop() event {
	q := *h
	e := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{}
	q = q[:n]
	i := 0
	for {
		c := i*heapArity + 1
		if c >= n {
			break
		}
		end := c + heapArity
		if end > n {
			end = n
		}
		min := c
		for j := c + 1; j < end; j++ {
			if q[j].before(&q[min]) {
				min = j
			}
		}
		if !q[min].before(&q[i]) {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	*h = q
	return e
}
