package sim

import (
	"testing"
)

// TestWheelMatchesHeapOrdering is the differential property test for the
// timing wheel: a Kernel (wheel + overflow) and a bare heapQ oracle are
// driven with the same randomized schedule/pop script — deltas straddling
// slot boundaries, the wheel horizon, and far-future spill-over, plus
// same-instant ties — and must fire every event in the same (at, seq)
// order.
func TestWheelMatchesHeapOrdering(t *testing.T) {
	// Deltas are picked to hit the interesting edges: zero (same-instant
	// tie), sub-slot, exact slot width, hop/DRAM-scale, one slot under
	// and over the 262 ns horizon, and far-future timers.
	deltas := []Time{0, 1, 63, 64, 640, 3200, 40_000,
		numSlots<<granularityBits - 1, numSlots << granularityBits,
		numSlots<<granularityBits + 64, 1_000_000, 100_000_000}
	for trial := uint64(0); trial < 10; trial++ {
		rng := NewRNG(100 + trial)
		k := NewKernel()
		var h heapQ
		var hnow Time
		var hseq uint64
		var got, want []int
		id := 0
		for op := 0; op < 5000; op++ {
			if rng.Intn(3) > 0 {
				d := deltas[rng.Intn(len(deltas))]
				if rng.Intn(4) == 0 {
					d += Time(rng.Intn(1000))
				}
				myID := id
				id++
				k.Schedule(k.Now()+d, func() { got = append(got, myID) })
				hseq++
				h.push(event{at: hnow + d, seq: hseq,
					act: funcAction(func() { want = append(want, myID) })})
			} else {
				k.Step()
				if len(h) > 0 {
					e := h.pop()
					hnow = e.at
					e.act.Act()
				}
			}
		}
		k.RunAll()
		for len(h) > 0 {
			e := h.pop()
			hnow = e.at
			e.act.Act()
		}
		if len(got) != id || len(want) != id {
			t.Fatalf("trial %d: fired %d/%d events, oracle %d", trial, len(got), id, len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: order diverges from heap oracle at %d: wheel fired #%d, heap #%d",
					trial, i, got[i], want[i])
			}
		}
		if k.Now() != hnow {
			t.Fatalf("trial %d: clocks diverged: wheel %s, heap %s", trial, k.Now(), hnow)
		}
	}
}

// TestWheelOverflowSeqTieAtSameInstant pins the subtle ordering case the
// two-structure design must get right: an event that spilled to the
// overflow heap (scheduled far ahead, small seq) and a wheel-resident
// event at the exact same instant (scheduled late, large seq) must still
// fire in seq order — overflow first.
func TestWheelOverflowSeqTieAtSameInstant(t *testing.T) {
	k := NewKernel()
	var got []int
	at := Time(1_000_000_000) // 1 ms: far past the horizon at schedule time
	k.Schedule(at, func() { got = append(got, 1) })
	k.Run(at - 10*Nanosecond)
	// Now within the horizon: this lands in the wheel with a larger seq.
	k.Schedule(at, func() { got = append(got, 2) })
	k.Schedule(at+1, func() { got = append(got, 3) })
	k.RunAll()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("overflow/wheel same-instant ordering wrong: %v", got)
	}
}

// TestWheelFarFutureTimers exercises the spill-over path end to end:
// timers far past the horizon fire in order and interleave correctly
// with dense near-future traffic.
func TestWheelFarFutureTimers(t *testing.T) {
	k := NewKernel()
	var fired []Time
	for _, at := range []Time{100 * Microsecond, 10 * Microsecond, Millisecond, 500} {
		at := at
		k.Schedule(at, func() { fired = append(fired, at) })
	}
	hops := 0
	var hop func()
	hop = func() {
		hops++
		if hops < 10000 {
			k.After(640, hop) // flit-scale events throughout
		}
	}
	k.Schedule(0, hop)
	k.RunAll()
	if hops != 10000 {
		t.Fatalf("hops = %d, want 10000", hops)
	}
	wantOrder := []Time{500, 10 * Microsecond, 100 * Microsecond, Millisecond}
	if len(fired) != len(wantOrder) {
		t.Fatalf("fired %d timers, want %d", len(fired), len(wantOrder))
	}
	for i, at := range wantOrder {
		if fired[i] != at {
			t.Fatalf("timer order: fired[%d] = %s, want %s", i, fired[i], at)
		}
	}
}

// countAction is a pooled Action for the zero-alloc scheduling tests.
type countAction struct{ n int }

func (c *countAction) Act() { c.n++ }

// TestKernelScheduleActionZeroAllocs proves the pooled-action path the
// simulation layer's hot events use: scheduling a reusable Action value
// allocates nothing at all, even before the queue has warmed up.
func TestKernelScheduleActionZeroAllocs(t *testing.T) {
	k := NewKernel()
	act := &countAction{}
	// Warm every wheel slot's backing array — one event per slot across a
	// full revolution: steady state begins once every slot has grown.
	for i := 0; i < numSlots; i++ {
		k.AfterAction(Duration(i)<<granularityBits, act)
	}
	k.RunAll()
	allocs := testing.AllocsPerRun(1000, func() {
		k.AfterAction(100, act)
		k.Step()
	})
	if allocs != 0 {
		t.Fatalf("AfterAction+Step allocates %.1f objects/op, want 0", allocs)
	}
	if act.n == 0 {
		t.Fatal("pooled action never ran")
	}
}

// TestKernelOverflowScheduleStepZeroAllocs extends the steady-state
// zero-alloc contract to the spill-over heap: once grown, far-future
// scheduling is allocation-free too.
func TestKernelOverflowScheduleStepZeroAllocs(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 512; i++ {
		k.Schedule(Time(i)*Microsecond, nop)
	}
	allocs := testing.AllocsPerRun(400, func() {
		k.Schedule(k.Now()+Millisecond, nop)
		k.Step()
	})
	if allocs != 0 {
		t.Fatalf("far-future schedule+step allocates %.1f objects/op, want 0", allocs)
	}
}

// TestCheckInvariantsOnPopulatedWheel drives a mixed near/far queue and
// audits it at every step, then corrupts the structure and checks the
// audit notices.
func TestCheckInvariantsOnPopulatedWheel(t *testing.T) {
	k := NewKernel()
	rng := NewRNG(3)
	for i := 0; i < 300; i++ {
		d := Time(rng.Intn(200_000))
		if rng.Intn(10) == 0 {
			d += 10 * Microsecond
		}
		k.Schedule(k.Now()+d, nop)
		if err := k.CheckInvariants(); err != nil {
			t.Fatalf("invariants after schedule %d: %v", i, err)
		}
		if rng.Intn(3) == 0 {
			k.Step()
			if err := k.CheckInvariants(); err != nil {
				t.Fatalf("invariants after step %d: %v", i, err)
			}
		}
	}

	// Corruption 1: an event filed past the horizon.
	k2 := NewKernel()
	k2.Schedule(100, nop)
	k2.wheel[((100)>>granularityBits)&slotMask].ev[0].at = Time(numSlots<<granularityBits) * 10
	if err := k2.CheckInvariants(); err == nil {
		t.Error("horizon violation not detected")
	}
	// Corruption 2: occupancy bit cleared under a pending event.
	k3 := NewKernel()
	k3.Schedule(100, nop)
	idx := (100 >> granularityBits) & slotMask
	k3.occupied[idx>>6] &^= 1 << uint(idx&63)
	if err := k3.CheckInvariants(); err == nil {
		t.Error("occupancy desync not detected")
	}
	// Corruption 3: overflow heap order broken.
	k4 := NewKernel()
	for i := 1; i <= 8; i++ {
		k4.Schedule(Time(i)*Millisecond, nop)
	}
	k4.overflow[0], k4.overflow[len(k4.overflow)-1] = k4.overflow[len(k4.overflow)-1], k4.overflow[0]
	if err := k4.CheckInvariants(); err == nil {
		t.Error("overflow heap disorder not detected")
	}
}
