package sim_test

import (
	"fmt"

	"memnet/internal/sim"
)

// Example shows the event kernel's scheduling primitives.
func Example() {
	k := sim.NewKernel()
	k.Schedule(10*sim.Nanosecond, func() {
		fmt.Println("second at", k.Now())
	})
	k.Schedule(3*sim.Nanosecond, func() {
		fmt.Println("first at", k.Now())
		k.After(20*sim.Nanosecond, func() {
			fmt.Println("chained at", k.Now())
		})
	})
	k.RunAll()
	// Output:
	// first at 3.00ns
	// second at 10.00ns
	// chained at 23.00ns
}

// ExampleKernel_Run shows bounded execution: the clock advances to the
// boundary even when the queue still holds later events.
func ExampleKernel_Run() {
	k := sim.NewKernel()
	k.Schedule(5*sim.Microsecond, func() { fmt.Println("ran") })
	k.Schedule(15*sim.Microsecond, func() { fmt.Println("never (within this Run)") })
	k.Run(10 * sim.Microsecond)
	fmt.Println("clock:", k.Now(), "pending:", k.Pending())
	// Output:
	// ran
	// clock: 10.00us pending: 1
}
