package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKernelRunsEventsInTimeOrder(t *testing.T) {
	k := NewKernel()
	var got []int
	k.Schedule(30, func() { got = append(got, 3) })
	k.Schedule(10, func() { got = append(got, 1) })
	k.Schedule(20, func() { got = append(got, 2) })
	k.RunAll()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if k.Now() != 30 {
		t.Fatalf("clock = %v, want 30", k.Now())
	}
}

func TestKernelSameTimeEventsRunInInsertionOrder(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(100, func() { got = append(got, i) })
	}
	k.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("insertion order violated at %d: %v", i, got)
		}
	}
}

func TestKernelEventsCanScheduleEvents(t *testing.T) {
	k := NewKernel()
	depth := 0
	var chain func()
	chain = func() {
		depth++
		if depth < 5 {
			k.After(10, chain)
		}
	}
	k.Schedule(0, chain)
	k.RunAll()
	if depth != 5 {
		t.Fatalf("chained depth = %d, want 5", depth)
	}
	if k.Now() != 40 {
		t.Fatalf("clock = %v, want 40", k.Now())
	}
}

func TestKernelRunStopsAtBoundary(t *testing.T) {
	k := NewKernel()
	ran := map[Time]bool{}
	for _, at := range []Time{10, 20, 30} {
		at := at
		k.Schedule(at, func() { ran[at] = true })
	}
	k.Run(20)
	if !ran[10] || !ran[20] || ran[30] {
		t.Fatalf("boundary semantics wrong: %v", ran)
	}
	if k.Now() != 20 {
		t.Fatalf("clock = %v, want 20", k.Now())
	}
	if k.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", k.Pending())
	}
}

func TestKernelAdvancesClockToRunBoundaryWhenIdle(t *testing.T) {
	k := NewKernel()
	k.Run(500)
	if k.Now() != 500 {
		t.Fatalf("idle clock = %v, want 500", k.Now())
	}
}

func TestKernelPanicsOnPastEvent(t *testing.T) {
	k := NewKernel()
	k.Schedule(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.Schedule(50, func() {})
	})
	k.RunAll()
}

func TestKernelProcessedCount(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 7; i++ {
		k.Schedule(Time(i), func() {})
	}
	k.RunAll()
	if k.Processed() != 7 {
		t.Fatalf("processed = %d, want 7", k.Processed())
	}
}

func TestKernelDeterminism(t *testing.T) {
	run := func() []int {
		k := NewKernel()
		rng := NewRNG(7)
		var order []int
		for i := 0; i < 200; i++ {
			i := i
			k.Schedule(Time(rng.Intn(50)), func() { order = append(order, i) })
		}
		k.RunAll()
		return order
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestKernelRandomOrderMatchesSort drives the event queue with random
// schedule/step interleavings and checks events fire in nondecreasing time
// with insertion order preserved within an instant — the full ordering
// contract, against an oracle.
func TestKernelRandomOrderMatchesSort(t *testing.T) {
	k := NewKernel()
	rng := NewRNG(11)
	type stamp struct {
		at  Time
		idx int
	}
	var fired []stamp
	for i := 0; i < 500; i++ {
		i := i
		at := k.Now() + Time(rng.Intn(200))
		k.Schedule(at, func() { fired = append(fired, stamp{at, i}) })
		if rng.Intn(3) == 0 {
			k.Step() // interleave pops so the heap shrinks and regrows
		}
	}
	k.RunAll()
	if len(fired) != 500 {
		t.Fatalf("fired %d events, want 500", len(fired))
	}
	for i := 1; i < len(fired); i++ {
		a, b := fired[i-1], fired[i]
		if b.at < a.at {
			t.Fatalf("time order violated at %d: %v after %v", i, b.at, a.at)
		}
		if b.at == a.at && b.idx < a.idx {
			t.Fatalf("insertion order violated at %d: #%d after #%d", i, b.idx, a.idx)
		}
	}
}

// TestKernelStepClearsRetiredSlots is the regression test for the
// container/heap-era leak where eventHeap.Pop left the popped slot's fn
// alive in the backing array, pinning every retired closure's captured
// state for the life of the run. Both queue halves — wheel slots and the
// overflow heap — must zero vacated entries on pop.
func TestKernelStepClearsRetiredSlots(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 64; i++ {
		payload := make([]byte, 1<<10) // captured state the slot would pin
		k.Schedule(Time(i%7), func() { payload[0]++ })
	}
	for i := 0; i < 16; i++ {
		payload := make([]byte, 1<<10)
		// Far past the wheel horizon: exercises the overflow heap.
		k.Schedule(Time(i)*Microsecond, func() { payload[0]++ })
	}
	k.RunAll()
	for idx := range k.wheel {
		spare := k.wheel[idx].ev[:cap(k.wheel[idx].ev)]
		for i := range spare {
			if spare[i].act != nil || spare[i].at != 0 {
				t.Fatalf("retired wheel slot %d entry %d still populated (at=%v act=%v)",
					idx, i, spare[i].at, spare[i].act != nil)
			}
		}
	}
	spare := k.overflow[:cap(k.overflow)]
	for i := range spare {
		if spare[i].act != nil || spare[i].at != 0 || spare[i].seq != 0 {
			t.Fatalf("retired overflow slot %d still populated (at=%v seq=%d act=%v)",
				i, spare[i].at, spare[i].seq, spare[i].act != nil)
		}
	}
}

func nop() {}

// TestKernelScheduleStepZeroAllocs proves the queue's headline property:
// once the wheel slots and overflow heap have grown, a schedule+step
// cycle allocates nothing — no interface boxing, no container/heap
// indirection.
func TestKernelScheduleStepZeroAllocs(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 4096; i++ {
		k.Schedule(Time(i), nop) // deep steady-state queue
	}
	allocs := testing.AllocsPerRun(1000, func() {
		k.Schedule(k.Now()+100, nop)
		k.Step()
	})
	if allocs != 0 {
		t.Fatalf("schedule+step allocates %.1f objects/op, want 0", allocs)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ps"},
		{1500, "1.50ns"},
		{2 * Microsecond, "2.00us"},
		{3 * Millisecond, "3.000ms"},
		{2 * Second, "2.0000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if got := (1500 * Nanosecond).Nanoseconds(); got != 1500 {
		t.Errorf("Nanoseconds = %v", got)
	}
	if got := (250 * Millisecond).Seconds(); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("Seconds = %v", got)
	}
	if got := FromNanos(0.64); got != 640 {
		t.Errorf("FromNanos(0.64) = %v, want 640", got)
	}
	if got := FromNanos(3.2); got != 3200 {
		t.Errorf("FromNanos(3.2) = %v, want 3200", got)
	}
}

func TestFromNanosPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FromNanos(-1) did not panic")
		}
	}()
	FromNanos(-1)
}

func TestRNGDeterministicPerSeed(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(100)
	same := 0
	a = NewRNG(99)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide too often: %d/100", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(1)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(5)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) covered only %d values", len(seen))
	}
}

func TestRNGIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(2)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Exp(40)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-40) > 1 {
		t.Fatalf("Exp mean = %v, want ~40", mean)
	}
}
