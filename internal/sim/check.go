package sim

import "fmt"

// CheckInvariants verifies the event queue's structural invariants: every
// wheel-resident event lies within one revolution of now with its slot
// sorted by at unless the slot is marked dirty (inserts are append-only
// and a dirty slot is re-sorted when it reaches the head of the wheel),
// the occupancy bitmap and event count agree with the slots, the
// overflow heap keeps its d-ary ordering, and no pending event precedes
// the current time. It is O(pending) and read-only — meant
// for the audit layer's periodic sweeps, not the hot loop. A violation
// here means the queue has been corrupted and every later event could run
// out of order.
func (k *Kernel) CheckInvariants() error {
	nowSlot := k.now >> granularityBits
	resident := 0
	for idx := range k.wheel {
		s := &k.wheel[idx]
		occupied := k.occupied[idx>>6]&(1<<uint(idx&63)) != 0
		if occupied != (int(s.head) < len(s.ev)) {
			return fmt.Errorf("sim: slot %d occupancy bit %v disagrees with %d pending events",
				idx, occupied, len(s.ev)-int(s.head))
		}
		for i := int(s.head); i < len(s.ev); i++ {
			e := &s.ev[i]
			if e.at < k.now {
				return fmt.Errorf("sim: slot %d event (at=%s) precedes now %s",
					idx, e.at, k.now)
			}
			if slotDelta := (e.at >> granularityBits) - nowSlot; slotDelta >= numSlots {
				return fmt.Errorf("sim: slot %d event (at=%s) lies %d slots past the wheel horizon",
					idx, e.at, slotDelta-numSlots+1)
			}
			if int((e.at>>granularityBits)&slotMask) != idx {
				return fmt.Errorf("sim: event (at=%s) filed in slot %d, belongs in %d",
					e.at, idx, (e.at>>granularityBits)&slotMask)
			}
			if !s.dirty && i > int(s.head) && e.at < s.ev[i-1].at {
				return fmt.Errorf("sim: slot %d order violated at %d (at=%s) vs (at=%s)",
					idx, i, e.at, s.ev[i-1].at)
			}
		}
		resident += len(s.ev) - int(s.head)
	}
	if resident != k.wheelCount {
		return fmt.Errorf("sim: wheel holds %d events but count says %d", resident, k.wheelCount)
	}
	n := len(k.overflow)
	if n > 0 && k.overflow[0].at < k.now {
		return fmt.Errorf("sim: overflow head event at %s precedes now %s", k.overflow[0].at, k.now)
	}
	for i := 1; i < n; i++ {
		p := (i - 1) / heapArity
		if k.overflow[i].before(&k.overflow[p]) {
			return fmt.Errorf("sim: overflow heap order violated at index %d (at=%s seq=%d) vs parent %d (at=%s seq=%d)",
				i, k.overflow[i].at, k.overflow[i].seq, p, k.overflow[p].at, k.overflow[p].seq)
		}
	}
	return nil
}
