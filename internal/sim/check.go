package sim

import "fmt"

// CheckInvariants verifies the event queue's structural invariants: the
// d-ary heap ordering over (at, seq) and that no pending event precedes
// the current time. It is O(pending) and read-only — meant for the audit
// layer's periodic sweeps, not the hot loop. A violation here means the
// queue has been corrupted and every later event could run out of order.
func (k *Kernel) CheckInvariants() error {
	n := len(k.events)
	if n > 0 && k.events[0].at < k.now {
		return fmt.Errorf("sim: head event at %s precedes now %s", k.events[0].at, k.now)
	}
	for i := 1; i < n; i++ {
		p := (i - 1) / heapArity
		if k.before(i, p) {
			return fmt.Errorf("sim: heap order violated at index %d (at=%s seq=%d) vs parent %d (at=%s seq=%d)",
				i, k.events[i].at, k.events[i].seq, p, k.events[p].at, k.events[p].seq)
		}
	}
	return nil
}
