package sim

import (
	"errors"
	"testing"
)

// chain schedules a self-perpetuating event chain so Run(until) always
// has work: each event re-schedules itself one nanosecond later.
func chain(k *Kernel) {
	var step func()
	step = func() { k.After(Nanosecond, step) }
	k.After(Nanosecond, step)
}

func TestSetCheckStopsRun(t *testing.T) {
	k := NewKernel()
	chain(k)
	stop := errors.New("stop requested")
	var calls int
	k.SetCheck(64, func() error {
		calls++
		if k.Processed() >= 200 {
			return stop
		}
		return nil
	})
	k.Run(Time(Millisecond))
	if err := k.Err(); !errors.Is(err, stop) {
		t.Fatalf("Err() = %v, want %v", err, stop)
	}
	if calls == 0 {
		t.Fatal("check never called")
	}
	// The stop must land within one check interval of the threshold.
	if got := k.Processed(); got < 200 || got > 200+64 {
		t.Fatalf("stopped after %d events, want within one 64-event interval past 200", got)
	}
	if k.Now() >= Time(Millisecond) {
		t.Fatalf("clock advanced to the horizon (%v) despite the stop", k.Now())
	}
	// A stopped kernel re-checks immediately on the next Run and stays
	// stopped while the check still fails.
	before := k.Processed()
	k.Run(Time(Millisecond))
	if k.Processed() != before {
		t.Fatalf("stopped kernel ran %d more events", k.Processed()-before)
	}
}

func TestSetCheckNilDisarms(t *testing.T) {
	k := NewKernel()
	chain(k)
	k.SetCheck(1, func() error { return errors.New("boom") })
	k.SetCheck(0, nil)
	k.Run(Time(100 * Nanosecond))
	if err := k.Err(); err != nil {
		t.Fatalf("disarmed kernel stopped: %v", err)
	}
	if k.Now() != Time(100*Nanosecond) {
		t.Fatalf("clock = %v, want the full horizon", k.Now())
	}
}

func TestSetCheckStrideRoundsUp(t *testing.T) {
	k := NewKernel()
	chain(k)
	var calls int
	k.SetCheck(100, func() error { // rounds up to 128
		calls++
		return nil
	})
	k.Run(Time(1000 * Nanosecond)) // 1000 events
	// Events 0, 128, 256, ... 896 plus the final aligned probe windows:
	// calls must be about processed/128, never per-event.
	if calls < 5 || calls > 12 {
		t.Fatalf("check ran %d times over %d events; want ~%d", calls, k.Processed(), k.Processed()/128)
	}
}

// TestSetCheckDeterminism pins that an armed-but-passing check changes
// nothing about the simulation: same events, same clock.
func TestSetCheckDeterminism(t *testing.T) {
	run := func(armed bool) (uint64, Time) {
		k := NewKernel()
		chain(k)
		if armed {
			k.SetCheck(0, func() error { return nil })
		}
		k.Run(Time(10 * Microsecond))
		return k.Processed(), k.Now()
	}
	n0, t0 := run(false)
	n1, t1 := run(true)
	if n0 != n1 || t0 != t1 {
		t.Fatalf("armed check perturbed the run: %d/%v vs %d/%v", n0, t0, n1, t1)
	}
}
