package sim

import "container/heap"

// event is a scheduled closure. seq breaks ties so that events scheduled
// for the same instant run in insertion order, keeping runs deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event simulation engine. The zero value is ready to
// use; Schedule events and call Run.
type Kernel struct {
	events eventHeap
	now    Time
	seq    uint64
	count  uint64
}

// NewKernel returns a kernel with some event capacity preallocated.
func NewKernel() *Kernel {
	return &Kernel{events: make(eventHeap, 0, 1024)}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Processed returns the number of events executed so far (for reporting
// simulator throughput).
func (k *Kernel) Processed() uint64 { return k.count }

// Pending returns the number of events still queued.
func (k *Kernel) Pending() int { return len(k.events) }

// Schedule runs fn at absolute time at. Scheduling in the past panics:
// that is always a simulator bug, never a recoverable condition.
func (k *Kernel) Schedule(at Time, fn func()) {
	if at < k.now {
		panic("sim: scheduling event in the past")
	}
	k.seq++
	heap.Push(&k.events, event{at: at, seq: k.seq, fn: fn})
}

// After runs fn d picoseconds from now.
func (k *Kernel) After(d Duration, fn func()) { k.Schedule(k.now+d, fn) }

// Step executes the earliest pending event. It reports false if the queue
// is empty.
func (k *Kernel) Step() bool {
	if len(k.events) == 0 {
		return false
	}
	e := heap.Pop(&k.events).(event)
	k.now = e.at
	k.count++
	e.fn()
	return true
}

// Run executes events until the queue is exhausted or the next event lies
// strictly after until; the clock is then advanced to until. Events at
// exactly until are executed.
func (k *Kernel) Run(until Time) {
	for len(k.events) > 0 && k.events[0].at <= until {
		k.Step()
	}
	if k.now < until {
		k.now = until
	}
}

// RunAll executes every pending event, including events scheduled by other
// events, until the queue drains.
func (k *Kernel) RunAll() {
	for k.Step() {
	}
}
