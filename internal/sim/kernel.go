package sim

import "math/bits"

// Action is a unit of work the kernel can schedule without allocating: a
// pointer-shaped value (pointer, func) converts to this interface with no
// heap allocation, so hot paths schedule pooled Action structs where a
// fresh closure would cost an allocation per event.
type Action interface {
	// Act runs the scheduled work. The kernel has already advanced its
	// clock to the event's time when Act is called.
	Act()
}

// funcAction adapts a plain closure to Action. Func values are
// pointer-shaped, so the conversion does not allocate — Schedule(at, fn)
// costs exactly what it did when the queue stored bare func()s.
type funcAction func()

func (f funcAction) Act() { f() }

// event is a scheduled action. seq breaks ties so that events scheduled
// for the same instant run in insertion order, keeping runs deterministic.
type event struct {
	at  Time
	seq uint64
	act Action
}

// before reports whether e must run before o: earlier time first,
// insertion order within the same instant.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Timing-wheel geometry. Most simulation events are short fixed-latency
// hops — flit times (640 ps), SERDES/router latencies (a few ns), DRAM
// timings and think jitter (tens of ns), plus the ROO off-check
// thresholds (32 ns – 2.05 us) — so the wheel's horizon has to cover
// that whole cluster: 1024 slots of 2048 ps span 2.1 us. Events past the
// horizon (epoch ticks, burst phases, timeouts, watchdogs) go to a
// spill-over min-heap; see DESIGN.md §12 for the determinism argument.
const (
	// granularityBits sets the slot width to 2^11 = 2048 ps. Wider slots
	// mean a few distinct instants share a slot (the stable insert loop
	// shifts them into place), but they shrink the slot-header array to
	// 1024 entries — small enough to stay cache-resident, which matters
	// more than shift-free inserts because inserts hash to effectively
	// random slots.
	granularityBits = 11
	// slotBits sets the wheel size to 2^10 = 1024 slots: with 2048 ps
	// slots the horizon is 2.1 us, wide enough that the longest ROO
	// off-check (2048 ns) still files into the wheel instead of the
	// spill-over heap.
	slotBits = 10
	numSlots = 1 << slotBits
	slotMask = numSlots - 1
	// bitmapWords is the occupancy bitmap size: one bit per slot.
	bitmapWords = numSlots / 64
	// slotCap is each slot's inline event capacity. Steady-state
	// occupancy is a couple of events per occupied slot, so 4 covers
	// almost every slot for the life of the run.
	slotCap = 4
	// spillCap is the capacity a slot jumps to when it outgrows its
	// inline buffer. Pile-ups past slotCap are routine (a burst of
	// same-window completions), and letting append ratchet 8 → 16 → 32
	// as rare coincidences set new per-slot records kept a slow trickle
	// of allocations going for the whole run; jumping straight to a
	// depth records essentially never pass makes the spill a one-time
	// warmup cost per slot (TestRunSteadyStateZeroAllocs holds the
	// simulation to ~0 mallocs once warmed).
	spillCap = 64
)

// wev is a wheel-resident event. Unlike the overflow heap's entries it
// carries no sequence number: inserts are appended in schedule order and
// the within-slot sort is stable on at, so slot order IS seq order — and
// a wheel/overflow tie at the same instant always resolves to the
// overflow side (see next), so no cross-structure seq comparison is ever
// needed. Dropping the field cuts each entry to 24 bytes, which matters
// because inserts hash to effectively random slots and the entry write
// is usually a cache miss.
type wev struct {
	at  Time
	act Action
}

// wheelSlot is one slot's pending events. Inserts are pure appends; the
// dirty flag records whether an append broke at order, and next sorts
// ev[head:] (stable, so same-instant events keep schedule order) the
// moment the slot becomes the drain candidate. Deferring the sort moves
// the shifting work from insert time — when the slot is a random, cold
// cache line — to drain time, when the slot is about to be walked
// anyway, and slots that fill in time order (the common case) never sort
// at all. Retired entries before head are zeroed; the slice resets to
// its start once drained, so steady state reuses each slot's backing
// array with no allocation.
//
// ev initially aliases the inline buf, so the header and the entries an
// insert touches share adjacent cache lines — inserts hash to
// effectively random slots, and colocating storage with the header is
// the difference between one cache miss and two on the hottest write in
// the simulator. The rare slot that outgrows buf reallocates
// independently and never returns. head is an int32 so the header packs
// into the pad before buf, keeping the struct at two entries' worth of
// header per four entries of storage.
type wheelSlot struct {
	ev    []wev
	head  int32
	dirty bool
	buf   [slotCap]wev
}

// sortPending restores at order over the unread tail of the slot with a
// stable binary-insertion sort. Stability is what carries the
// determinism contract: array order among equal-at entries is schedule
// (seq) order — appends arrive in seq order and a stable sort preserves
// relative order — so no wheel entry ever needs a seq field.
func (s *wheelSlot) sortPending() {
	ev := s.ev
	for i := int(s.head) + 1; i < len(ev); i++ {
		e := ev[i]
		j := i
		for j > int(s.head) && ev[j-1].at > e.at {
			ev[j] = ev[j-1]
			j--
		}
		ev[j] = e
	}
	s.dirty = false
}

// Kernel is a discrete-event simulation engine. The zero value is ready to
// use; Schedule events and call Run.
//
// The queue is a hierarchical timing wheel: near-future events (within
// numSlots slot widths of now) hash into wheel[at>>granularityBits &
// slotMask], far-future events spill into a monomorphic 4-ary min-heap.
// An event's slot position is unambiguous — the insert window is exactly
// one revolution, so two resident events can never collide a lap apart —
// and the next event is min(first occupied slot's head, heap head) with
// same-instant ties resolving to the heap (see next), which preserves
// the exact (at, seq) total order the deterministic-replay tests pin. Steady-state Schedule+Step performs
// zero heap allocations (see TestKernelScheduleStepZeroAllocs and
// BenchmarkKernelScheduleStep).
type Kernel struct {
	now   Time
	seq   uint64
	count uint64

	// Cooperative cancellation: when check is armed (non-nil), Run calls
	// it once every checkMask+1 processed events and stops — recording
	// the error in stopErr — the moment it returns non-nil. Run slices
	// its loop on the stride (see runSlice), so arming costs the hot
	// path nothing per event; the amortized check cost is well under 1%
	// of event throughput (CancelOverhead in BENCH_sweep.json, budgeted
	// by cmd/benchdiff).
	checkMask uint64
	check     func() error
	stopErr   error

	// wheelCount is the number of events resident in the wheel; it
	// short-circuits the bitmap scan when the wheel is empty.
	wheelCount int
	// overflow holds events at or beyond the wheel horizon. They are
	// popped straight from the heap when their time comes — never
	// migrated — so ordering needs no cascade step.
	overflow heapQ
	// occupied has one bit per slot, set while the slot holds events, so
	// finding the next occupied slot is a word scan, not a slot walk.
	occupied [bitmapWords]uint64
	wheel    [numSlots]wheelSlot
}

// NewKernel returns a kernel with some overflow capacity preallocated
// and every wheel slot's ev aliasing its inline buffer — without that,
// each slot's first events cost a growth chain of small allocations
// (numSlots of them, per kernel), which dominated warmup in profiles.
func NewKernel() *Kernel {
	k := &Kernel{overflow: make(heapQ, 0, 256)}
	for i := range k.wheel {
		s := &k.wheel[i]
		s.ev = s.buf[:0:slotCap]
	}
	return k
}

// DefaultCheckEvery is SetCheck's stride when none is given: frequent
// enough that an abandoned run stops within a few milliseconds of wall
// time at the simulator's measured throughput, rare enough that the
// check function's cost amortizes to nothing.
const DefaultCheckEvery = 1 << 14

// SetCheck arms cooperative cancellation: Run calls fn about once every
// `every` processed events (rounded up to a power of two; 0 means
// DefaultCheckEvery) and stops early when fn returns a non-nil error,
// which Err then reports. Callers poll a context, a budget, or a
// deadline from fn — the kernel only knows how to stop. A nil fn
// disarms. Step and RunAll never check: they are the fine-grained
// drivers whose callers already own the loop.
func (k *Kernel) SetCheck(every uint64, fn func() error) {
	if fn == nil {
		k.check = nil
		return
	}
	if every == 0 {
		every = DefaultCheckEvery
	}
	mask := uint64(1)
	for mask < every {
		mask <<= 1
	}
	k.checkMask = mask - 1
	k.check = fn
}

// Err reports the error that stopped Run early via an armed check, or
// nil for a run that has never been interrupted.
func (k *Kernel) Err() error { return k.stopErr }

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Processed returns the number of events executed so far (for reporting
// simulator throughput).
func (k *Kernel) Processed() uint64 { return k.count }

// Pending returns the number of events still queued.
func (k *Kernel) Pending() int { return k.wheelCount + len(k.overflow) }

// Schedule runs fn at absolute time at. Scheduling in the past panics:
// that is always a simulator bug, never a recoverable condition.
func (k *Kernel) Schedule(at Time, fn func()) { k.ScheduleAction(at, funcAction(fn)) }

// After runs fn d picoseconds from now.
func (k *Kernel) After(d Duration, fn func()) { k.ScheduleAction(k.now+d, funcAction(fn)) }

// AfterAction schedules a d picoseconds from now.
func (k *Kernel) AfterAction(d Duration, a Action) { k.ScheduleAction(k.now+d, a) }

// ScheduleAction runs a at absolute time at. Hot paths pass pooled
// Action values here to keep steady state allocation-free; Schedule's
// closure form wraps to the same path at no extra cost.
func (k *Kernel) ScheduleAction(at Time, a Action) {
	if at < k.now {
		panic("sim: scheduling event in the past")
	}
	k.seq++
	if (at>>granularityBits)-(k.now>>granularityBits) < numSlots {
		k.wheelInsert(at, a)
	} else {
		k.overflow.push(event{at: at, seq: k.seq, act: a})
	}
}

// wheelInsert files the event into its slot. The slot is append-only:
// an out-of-order arrival — possible only when two distinct instants
// share a slot — just marks the slot dirty, and sortPending restores at
// order when the slot reaches the head of the wheel. Same-instant events
// keep schedule order without storing seq because appends arrive in seq
// order and the deferred sort is stable.
func (k *Kernel) wheelInsert(at Time, a Action) {
	idx := int((at >> granularityBits) & slotMask)
	s := &k.wheel[idx]
	n := len(s.ev)
	if int(s.head) == n {
		// Fully drained: rewind so the backing array is reused in place.
		s.ev = s.ev[:0]
		s.head = 0
		s.dirty = false
		n = 0
	}
	if n == cap(s.ev) {
		newCap := 2 * n
		if newCap < spillCap {
			newCap = spillCap
		}
		grown := make([]wev, n, newCap)
		copy(grown, s.ev)
		s.ev = grown
	}
	s.ev = append(s.ev, wev{at: at, act: a})
	if n > int(s.head) && at < s.ev[n-1].at {
		s.dirty = true
	}
	k.occupied[idx>>6] |= 1 << uint(idx&63)
	k.wheelCount++
}

// wheelMinSlot returns the index of the occupied slot holding the
// earliest wheel event. Every resident event lies within one revolution
// ahead of now, so scanning the occupancy bitmap circularly from now's
// slot visits slots in absolute-time order. Must not be called with an
// empty wheel.
func (k *Kernel) wheelMinSlot() int {
	start := int((k.now >> granularityBits) & slotMask)
	w0 := start >> 6
	if word := k.occupied[w0] &^ (1<<uint(start&63) - 1); word != 0 {
		return w0<<6 + bits.TrailingZeros64(word)
	}
	for i := 1; i < bitmapWords; i++ {
		w := (w0 + i) & (bitmapWords - 1)
		if word := k.occupied[w]; word != 0 {
			return w<<6 + bits.TrailingZeros64(word)
		}
	}
	// Wrapped a full revolution: the earliest event is in the start
	// word's low bits (slots just under one horizon ahead).
	word := k.occupied[w0] & (1<<uint(start&63) - 1)
	return w0<<6 + bits.TrailingZeros64(word)
}

// next locates the earliest pending event without removing it. slot is
// the wheel slot index, or -1 when the minimum sits in the overflow heap.
// A wheel/overflow tie at the same instant resolves to the overflow side:
// an event only spills when its instant lies past the horizon, and the
// horizon moves monotonically forward, so every overflow-resident event
// at instant T was scheduled — and sequenced — before every wheel-resident
// event at T. Locate and removal are split so Run can bounds-check the
// next event with a single min-scan instead of a peek-then-pop pair.
func (k *Kernel) next() (at Time, slot int, ok bool) {
	if k.wheelCount == 0 {
		if len(k.overflow) == 0 {
			return 0, -1, false
		}
		return k.overflow[0].at, -1, true
	}
	idx := k.wheelMinSlot()
	s := &k.wheel[idx]
	if s.dirty {
		s.sortPending()
	}
	at = s.ev[s.head].at
	if len(k.overflow) > 0 && k.overflow[0].at <= at {
		return k.overflow[0].at, -1, true
	}
	return at, idx, true
}

// take removes and returns the action of the event next located. The
// vacated entry is zeroed so the retired action — and everything it
// captures — is collectable immediately instead of being pinned by the
// backing array for the rest of the run.
func (k *Kernel) take(slot int) Action {
	if slot < 0 {
		return k.overflow.pop().act
	}
	s := &k.wheel[slot]
	we := &s.ev[s.head]
	a := we.act
	*we = wev{}
	s.head++
	if int(s.head) == len(s.ev) {
		s.ev = s.ev[:0]
		s.head = 0
		s.dirty = false
		k.occupied[slot>>6] &^= 1 << uint(slot&63)
	}
	k.wheelCount--
	return a
}

// Step executes the earliest pending event. It reports false if the queue
// is empty.
func (k *Kernel) Step() bool {
	at, slot, ok := k.next()
	if !ok {
		return false
	}
	a := k.take(slot)
	k.now = at
	k.count++
	a.Act()
	return true
}

// Run executes events until the queue is exhausted or the next event lies
// strictly after until; the clock is then advanced to until. Events at
// exactly until are executed.
// A stopped run leaves the clock at the last executed event rather than
// advancing it to until, so the caller can observe how far it got.
//
// An armed check (SetCheck) runs at slice boundaries: the loop processes
// up to one stride of events between polls, so the per-event cost of
// being cancelable is a register countdown, not loads of the check
// state — measured within noise of the unarmed loop (CancelOverhead in
// BENCH_sweep.json; an earlier per-event `count&mask` probe cost ~4% on
// the benchmark sweep).
func (k *Kernel) Run(until Time) {
	if k.check != nil {
		for {
			if err := k.check(); err != nil {
				k.stopErr = err
				return
			}
			if !k.runSlice(until, k.checkMask+1) {
				break
			}
		}
	} else {
		k.runSlice(until, ^uint64(0))
	}
	if k.now < until {
		k.now = until
	}
}

// runSlice executes at most max events with timestamps at or before
// until. It reports true when the slice was used up with the horizon
// not yet reached (more events may remain), false when the queue
// drained or the next event lies beyond until.
func (k *Kernel) runSlice(until Time, max uint64) bool {
	for ; max > 0; max-- {
		at, slot, ok := k.next()
		if !ok || at > until {
			return false
		}
		a := k.take(slot)
		k.now = at
		k.count++
		a.Act()
	}
	return true
}

// RunAll executes every pending event, including events scheduled by other
// events, until the queue drains.
func (k *Kernel) RunAll() {
	for k.Step() {
	}
}
