package sim

// event is a scheduled closure. seq breaks ties so that events scheduled
// for the same instant run in insertion order, keeping runs deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// heapArity is the fan-out of the event queue's d-ary heap. Four keeps the
// tree half as deep as a binary heap for the same size, so the pop-side
// sift-down — the expensive half of a discrete-event loop, where every
// level is a round of dependent loads — touches fewer cache lines, while
// the push-side sift-up still compares against a single parent per level.
const heapArity = 4

// Kernel is a discrete-event simulation engine. The zero value is ready to
// use; Schedule events and call Run.
//
// The queue is a monomorphic heapArity-ary min-heap over []event ordered
// by (at, seq). Keeping it concrete — rather than container/heap — removes
// the interface boxing and virtual Push/Pop calls from the hottest path in
// the simulator: steady-state Schedule+Step performs zero heap allocations
// (see TestKernelScheduleStepZeroAllocs and BenchmarkKernelScheduleStep).
type Kernel struct {
	events []event
	now    Time
	seq    uint64
	count  uint64
}

// NewKernel returns a kernel with some event capacity preallocated.
func NewKernel() *Kernel {
	return &Kernel{events: make([]event, 0, 1024)}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Processed returns the number of events executed so far (for reporting
// simulator throughput).
func (k *Kernel) Processed() uint64 { return k.count }

// Pending returns the number of events still queued.
func (k *Kernel) Pending() int { return len(k.events) }

// before reports whether the event at index i must run before the one at
// index j: earlier time first, insertion order within the same instant.
func (k *Kernel) before(i, j int) bool {
	a, b := &k.events[i], &k.events[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push appends e and restores the heap by sifting it up.
func (k *Kernel) push(e event) {
	k.events = append(k.events, e)
	i := len(k.events) - 1
	for i > 0 {
		p := (i - 1) / heapArity
		if !k.before(i, p) {
			break
		}
		k.events[i], k.events[p] = k.events[p], k.events[i]
		i = p
	}
}

// pop removes and returns the minimum event. The vacated slot at the old
// tail is zeroed so the retired closure — and everything it captures — is
// collectable immediately instead of being pinned by the backing array for
// the rest of the run (the container/heap-era implementation leaked every
// popped fn this way).
func (k *Kernel) pop() event {
	e := k.events[0]
	n := len(k.events) - 1
	k.events[0] = k.events[n]
	k.events[n] = event{}
	k.events = k.events[:n]
	i := 0
	for {
		c := i*heapArity + 1
		if c >= n {
			break
		}
		end := c + heapArity
		if end > n {
			end = n
		}
		min := c
		for j := c + 1; j < end; j++ {
			if k.before(j, min) {
				min = j
			}
		}
		if !k.before(min, i) {
			break
		}
		k.events[i], k.events[min] = k.events[min], k.events[i]
		i = min
	}
	return e
}

// Schedule runs fn at absolute time at. Scheduling in the past panics:
// that is always a simulator bug, never a recoverable condition.
func (k *Kernel) Schedule(at Time, fn func()) {
	if at < k.now {
		panic("sim: scheduling event in the past")
	}
	k.seq++
	k.push(event{at: at, seq: k.seq, fn: fn})
}

// After runs fn d picoseconds from now.
func (k *Kernel) After(d Duration, fn func()) { k.Schedule(k.now+d, fn) }

// Step executes the earliest pending event. It reports false if the queue
// is empty.
func (k *Kernel) Step() bool {
	if len(k.events) == 0 {
		return false
	}
	e := k.pop()
	k.now = e.at
	k.count++
	e.fn()
	return true
}

// Run executes events until the queue is exhausted or the next event lies
// strictly after until; the clock is then advanced to until. Events at
// exactly until are executed.
func (k *Kernel) Run(until Time) {
	for len(k.events) > 0 && k.events[0].at <= until {
		k.Step()
	}
	if k.now < until {
		k.now = until
	}
}

// RunAll executes every pending event, including events scheduled by other
// events, until the queue drains.
func (k *Kernel) RunAll() {
	for k.Step() {
	}
}
