package sim

import (
	"testing"
)

// realisticDelta draws an event delta from the distribution a sweep
// actually produces, so heap-vs-wheel comparisons are honest rather than
// uniform-random: the mass sits on sub-ns flit/serialization times and
// few-to-tens-of-ns SERDES/router/DRAM latencies and think jitter, with
// a thin tail of ROO off-checks and far-future management timers.
func realisticDelta(rng *RNG) Time {
	switch p := rng.Intn(1000); {
	case p < 450: // flit serialization / router cycles: 0.64–3.2 ns
		return Time(640 + 640*rng.Intn(5))
	case p < 700: // SERDES, DRAM timing params: 3–30 ns
		return Time(3_000 + rng.Intn(27_000))
	case p < 900: // think jitter: exponential, ~5 ns mean
		return FromNanos(rng.Exp(5))
	case p < 960: // wakeups, CRC retries: 14–32 ns
		return Time(14_000 + rng.Intn(18_000))
	case p < 995: // ROO off-checks: 32–2048 ns thresholds
		return Time(32_000 << uint(2*rng.Intn(4)))
	default: // epoch/burst/timeout timers: 1–100 us
		return Time(1_000_000 * (1 + rng.Intn(100)))
	}
}

// benchActs keeps the scheduled work identical across queue benchmarks.
var benchAct Action = funcAction(func() {})

// BenchmarkQueueRealisticWheel measures steady-state schedule+step on the
// timing-wheel kernel under the realistic delta distribution with a deep
// in-flight queue (the shape of a running sweep).
func BenchmarkQueueRealisticWheel(b *testing.B) {
	k := NewKernel()
	rng := NewRNG(7)
	for i := 0; i < 4096; i++ {
		k.ScheduleAction(k.Now()+realisticDelta(rng), benchAct)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.ScheduleAction(k.Now()+realisticDelta(rng), benchAct)
		k.Step()
	}
}

// BenchmarkQueueRealisticHeap is the identical workload on the bare 4-ary
// heap (the pre-wheel event queue, still used as the wheel's spill-over),
// including the same dispatch call, so the two benchmarks differ only in
// queue structure.
func BenchmarkQueueRealisticHeap(b *testing.B) {
	var h heapQ
	var now Time
	var seq uint64
	rng := NewRNG(7)
	push := func(at Time) {
		seq++
		h.push(event{at: at, seq: seq, act: benchAct})
	}
	for i := 0; i < 4096; i++ {
		push(now + realisticDelta(rng))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		push(now + realisticDelta(rng))
		e := h.pop()
		now = e.at
		e.act.Act()
	}
}

// BenchmarkQueueUniformWheel / Heap keep the old uniform-random
// comparison for contrast: uniform deltas are the heap's best case
// relative to its real workload, and the wheel should still win.
func BenchmarkQueueUniformWheel(b *testing.B) {
	k := NewKernel()
	rng := NewRNG(9)
	for i := 0; i < 4096; i++ {
		k.ScheduleAction(k.Now()+Time(rng.Intn(200_000)), benchAct)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.ScheduleAction(k.Now()+Time(rng.Intn(200_000)), benchAct)
		k.Step()
	}
}

func BenchmarkQueueUniformHeap(b *testing.B) {
	var h heapQ
	var now Time
	var seq uint64
	rng := NewRNG(9)
	push := func(at Time) {
		seq++
		h.push(event{at: at, seq: seq, act: benchAct})
	}
	for i := 0; i < 4096; i++ {
		push(now + Time(rng.Intn(200_000)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		push(now + Time(rng.Intn(200_000)))
		e := h.pop()
		now = e.at
		e.act.Act()
	}
}
