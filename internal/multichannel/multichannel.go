// Package multichannel explores the paper's explicitly deferred axis
// (§III-C: "we leave the exploration of power implication of any potential
// inter-channel interactions to future work"): several physically
// independent memory-network channels behind one processor, with physical
// pages interleaved across channels, each channel running its own
// management instance.
package multichannel

import (
	"fmt"

	"memnet/internal/core"
	"memnet/internal/network"
	"memnet/internal/power"
	"memnet/internal/sim"
	"memnet/internal/topology"
	"memnet/internal/workload"
)

// Config builds a multi-channel system.
type Config struct {
	// Channels is the number of independent networks (≥1).
	Channels int
	// PageBytes is the cross-channel interleaving grain (default 4 KiB),
	// the standard channel-interleaving the paper cites from [13].
	PageBytes uint64
	// Topology and ModulesPerChannel shape each channel.
	Topology          topology.Kind
	ModulesPerChannel int
	// Network configures each channel's links and DRAM.
	Network network.Config
	// Management configures each channel's (independent) manager.
	Management core.Config
}

// System is a set of channels sharing one physical address space.
type System struct {
	Kernel   *sim.Kernel
	Cfg      Config
	Channels []*network.Network
	Managers []*core.Manager
}

// New builds and wires the system.
func New(k *sim.Kernel, cfg Config) (*System, error) {
	if cfg.Channels < 1 {
		return nil, fmt.Errorf("multichannel: need at least one channel, got %d", cfg.Channels)
	}
	if cfg.PageBytes == 0 {
		cfg.PageBytes = 4 << 10
	}
	if cfg.ModulesPerChannel < 1 {
		return nil, fmt.Errorf("multichannel: need at least one module per channel")
	}
	s := &System{Kernel: k, Cfg: cfg}
	for c := 0; c < cfg.Channels; c++ {
		topo, err := topology.Build(cfg.Topology, cfg.ModulesPerChannel)
		if err != nil {
			return nil, err
		}
		net := network.New(k, topo, cfg.Network)
		s.Channels = append(s.Channels, net)
		s.Managers = append(s.Managers, core.Attach(k, net, cfg.Management))
	}
	return s, nil
}

// route splits a global physical address into (channel, channel-local
// address): pages rotate across channels, and each channel sees a dense
// local address space.
func (s *System) route(addr uint64) (int, uint64) {
	n := uint64(len(s.Channels))
	page := addr / s.Cfg.PageBytes
	offset := addr % s.Cfg.PageBytes
	ch := page % n
	local := (page/n)*s.Cfg.PageBytes + offset
	return int(ch), local
}

// InjectRead implements workload.Injector.
func (s *System) InjectRead(addr uint64, corein int) {
	ch, local := s.route(addr)
	s.Channels[ch].InjectRead(local, corein)
}

// InjectWrite implements workload.Injector.
func (s *System) InjectWrite(addr uint64, corein int) {
	ch, local := s.route(addr)
	s.Channels[ch].InjectWrite(local, corein)
}

// CapacityBytes is the combined address space.
func (s *System) CapacityBytes() uint64 {
	var total uint64
	for _, c := range s.Channels {
		total += c.CapacityBytes()
	}
	return total
}

// AttachFrontEnd calibrates a front end over all channels (aggregate
// bandwidth = channels × one link direction) and wires completions.
func (s *System) AttachFrontEnd(p *workload.Profile, cfg workload.FrontEndConfig) (*workload.FrontEnd, error) {
	est := workload.EstimateReadLatency(s.Channels[0], p)
	bw := float64(len(s.Channels)) * workload.ChannelBandwidthBytesPerSec()
	fe, err := workload.NewFrontEndOver(s.Kernel, s, p, cfg, est, bw)
	if err != nil {
		return nil, err
	}
	for _, c := range s.Channels {
		c.OnReadComplete = fe.HandleReadComplete
		c.OnWriteComplete = fe.HandleWriteComplete
	}
	return fe, nil
}

// Snapshot captures every channel.
type Snapshot struct {
	Channels []network.Snapshot
}

// TakeSnapshot snapshots all channels at the current instant.
func (s *System) TakeSnapshot() Snapshot {
	out := Snapshot{Channels: make([]network.Snapshot, len(s.Channels))}
	for i, c := range s.Channels {
		out.Channels[i] = c.TakeSnapshot()
	}
	return out
}

// IntervalPower sums average power across channels between snapshots.
func IntervalPower(a, b Snapshot) power.Breakdown {
	var sum power.Breakdown
	for i := range a.Channels {
		sum.Add(network.IntervalPower(a.Channels[i], b.Channels[i]))
	}
	return sum
}

// Throughput sums completed accesses per second across channels.
func Throughput(a, b Snapshot) float64 {
	var sum float64
	for i := range a.Channels {
		sum += network.Throughput(a.Channels[i], b.Channels[i])
	}
	return sum
}

// ChannelUtilizations returns each channel's processor-link utilization
// over the interval — the balance check for the interleaving.
func ChannelUtilizations(a, b Snapshot) []float64 {
	out := make([]float64, len(a.Channels))
	for i := range a.Channels {
		out[i] = network.ChannelUtilization(a.Channels[i], b.Channels[i])
	}
	return out
}

// Modules returns the total module count.
func (s *System) Modules() int {
	n := 0
	for _, c := range s.Channels {
		n += c.Topo.N()
	}
	return n
}
