package multichannel

import (
	"math"
	"testing"

	"memnet/internal/core"
	"memnet/internal/link"
	"memnet/internal/network"
	"memnet/internal/sim"
	"memnet/internal/topology"
	"memnet/internal/workload"
)

func testConfig(channels, modules int) Config {
	return Config{
		Channels:          channels,
		Topology:          topology.Star,
		ModulesPerChannel: modules,
		Network:           network.DefaultConfig(),
		Management:        core.DefaultConfig(core.PolicyNone, 0),
	}
}

func TestNewValidates(t *testing.T) {
	k := sim.NewKernel()
	if _, err := New(k, testConfig(0, 2)); err == nil {
		t.Error("zero channels accepted")
	}
	if _, err := New(k, testConfig(2, 0)); err == nil {
		t.Error("zero modules accepted")
	}
	s, err := New(k, testConfig(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Channels) != 2 || s.Modules() != 6 {
		t.Fatalf("system shape: %d channels, %d modules", len(s.Channels), s.Modules())
	}
}

func TestRouting(t *testing.T) {
	k := sim.NewKernel()
	s, err := New(k, testConfig(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	page := s.Cfg.PageBytes
	// Page p goes to channel p%4 at local page p/4.
	for p := uint64(0); p < 16; p++ {
		ch, local := s.route(p*page + 100)
		if ch != int(p%4) {
			t.Fatalf("page %d routed to channel %d", p, ch)
		}
		wantLocal := (p/4)*page + 100
		if local != wantLocal {
			t.Fatalf("page %d local addr %#x, want %#x", p, local, wantLocal)
		}
	}
}

func TestRoundRobinBalance(t *testing.T) {
	// Uniform pages spread evenly: inject a page-stride scan and confirm
	// every channel sees the same number of accesses.
	k := sim.NewKernel()
	s, err := New(k, testConfig(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		s.InjectRead(uint64(i)*s.Cfg.PageBytes, -1)
	}
	k.RunAll()
	for i, c := range s.Channels {
		snap := c.TakeSnapshot()
		if snap.ReadsDone != 100 {
			t.Fatalf("channel %d completed %d reads, want 100", i, snap.ReadsDone)
		}
	}
}

func TestFrontEndOverChannels(t *testing.T) {
	k := sim.NewKernel()
	cfg := testConfig(2, 2)
	s, err := New(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := workload.ByName("mixG") // 8 GB fits 2×2×4GB
	if err != nil {
		t.Fatal(err)
	}
	fe, err := s.AttachFrontEnd(p, workload.DefaultFrontEndConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	fe.Start()
	k.Run(50 * sim.Microsecond)
	warm := s.TakeSnapshot()
	k.Run(200 * sim.Microsecond)
	end := s.TakeSnapshot()

	thr := Throughput(warm, end)
	if thr <= 0 {
		t.Fatal("no throughput")
	}
	// Both channels carry comparable load (page interleaving).
	utils := ChannelUtilizations(warm, end)
	if len(utils) != 2 || utils[0] <= 0 || utils[1] <= 0 {
		t.Fatalf("utils = %v", utils)
	}
	ratio := utils[0] / utils[1]
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("channel imbalance: %v", utils)
	}
	pw := IntervalPower(warm, end)
	if pw.Total() <= 0 || pw.IdleIO <= 0 {
		t.Fatalf("power = %+v", pw)
	}
}

func TestTwoChannelsHalveLoadPerChannel(t *testing.T) {
	// The same workload over 2 channels should produce roughly half the
	// per-channel utilization of a 1-channel run — and therefore more
	// idle I/O headroom, the paper's motivation for studying the axis.
	p, err := workload.ByName("mixG")
	if err != nil {
		t.Fatal(err)
	}
	run := func(channels int) float64 {
		k := sim.NewKernel()
		cfg := testConfig(channels, 2)
		s, err := New(k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Keep total issue capacity identical across runs.
		fecfg := workload.DefaultFrontEndConfig(9)
		fecfg.SlotsOverride = 24
		fe, err := s.AttachFrontEnd(p, fecfg)
		if err != nil {
			t.Fatal(err)
		}
		fe.Start()
		k.Run(50 * sim.Microsecond)
		warm := s.TakeSnapshot()
		k.Run(200 * sim.Microsecond)
		end := s.TakeSnapshot()
		us := ChannelUtilizations(warm, end)
		var sum float64
		for _, u := range us {
			sum += u
		}
		return sum / float64(len(us))
	}
	one := run(1)
	two := run(2)
	if two >= one*0.8 {
		t.Fatalf("per-channel util did not drop: 1ch=%.2f 2ch=%.2f", one, two)
	}
	if math.IsNaN(one) || math.IsNaN(two) {
		t.Fatal("NaN utilization")
	}
}

func TestManagedChannels(t *testing.T) {
	// Each channel runs its own aware manager; power must drop vs FP.
	p, err := workload.ByName("mixG")
	if err != nil {
		t.Fatal(err)
	}
	run := func(policy core.PolicyKind) float64 {
		k := sim.NewKernel()
		cfg := testConfig(2, 2)
		cfg.Network.Mechanism = link.MechVWL
		cfg.Network.ROO = true
		cfg.Management = core.DefaultConfig(policy, 0.05)
		s, err := New(k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		fe, err := s.AttachFrontEnd(p, workload.DefaultFrontEndConfig(9))
		if err != nil {
			t.Fatal(err)
		}
		fe.Start()
		k.Run(100 * sim.Microsecond)
		warm := s.TakeSnapshot()
		k.Run(400 * sim.Microsecond)
		end := s.TakeSnapshot()
		return IntervalPower(warm, end).Total()
	}
	fp := run(core.PolicyNone)
	aware := run(core.PolicyAware)
	if aware >= fp {
		t.Fatalf("aware management saved nothing across channels: %v vs %v", aware, fp)
	}
}
