package fault

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzParseScenario: any byte string either fails to parse with an error
// (never a panic), or parses to a scenario whose own JSON encoding is a
// fixed point — encode, re-parse, re-encode must give identical bytes
// and an identical Key(). That fixed point is what makes scenario keys
// safe as journal/memo identities.
func FuzzParseScenario(f *testing.F) {
	for _, seed := range []string{
		`{}`,
		`{"seed":7,"events":[]}`,
		`{"seed":1,"events":[{"at":"50us","kind":"link-fail","link":3}]}`,
		`{"seed":2,"events":[{"at":"10us","kind":"corrupt-burst","link":-1,"duration":"2us","ber":0.001}]}`,
		`{"seed":3,"events":[{"at":123,"kind":"wake-fault","link":0,"drop":true},` +
			`{"at":"80us","kind":"module-repair","module":1}]}`,
		`{"seed":4,"events":[{"at":"1us","kind":"vault-stall","module":-1,"duration":999}]}`,
		`{"events":[{"at":"bogus","kind":"link-fail"}]}`,
		`{"unknown_field":1}`,
		`[]`,
		`{"seed":`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := ParseScenario(data)
		if err != nil {
			return
		}
		enc, err := json.Marshal(sc)
		if err != nil {
			t.Fatalf("parsed scenario does not re-encode: %v", err)
		}
		back, err := ParseScenario(enc)
		if err != nil {
			t.Fatalf("own encoding does not re-parse: %v\n%s", err, enc)
		}
		enc2, err := json.Marshal(back)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Errorf("encoding is not a fixed point:\n%s\nvs\n%s", enc, enc2)
		}
		if sc.Key() != back.Key() {
			t.Errorf("Key changed across a round trip: %q vs %q", sc.Key(), back.Key())
		}
	})
}
