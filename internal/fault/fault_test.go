package fault_test

import (
	"strings"
	"testing"

	"memnet/internal/core"
	"memnet/internal/exp"
	"memnet/internal/fault"
	"memnet/internal/network"
	"memnet/internal/sim"
	"memnet/internal/topology"
	"memnet/internal/workload"
)

// midChainKill is the acceptance scenario: a 4-module daisy chain loses
// module 1's response link (Links[3]) at t = 1 µs. Cutting the response
// direction is the nastiest failure: requests still flow downstream and
// get served, but every response from modules 1–3 dies on the dead link,
// so no error can ever come back — only deadlines or a watchdog notice.
func midChainKill() fault.Scenario {
	return fault.Scenario{
		Seed: 1,
		Events: []fault.Event{
			{At: fault.Duration(sim.Microsecond), Kind: fault.LinkFail, Link: 3},
		},
	}
}

func midChainSpec(t *testing.T) exp.Spec {
	t.Helper()
	wl, err := workload.ByName("mixA") // 4 modules at 4 GB/module
	if err != nil {
		t.Fatal(err)
	}
	return exp.Spec{
		Workload: wl,
		Topology: topology.DaisyChain,
		Size:     exp.Small,
		Mech:     exp.MechVWLROO,
		Policy:   core.PolicyAware,
		Alpha:    0.05,
		SimTime:  150 * sim.Microsecond,
		Warmup:   0,
		Faults:   midChainKill(),
	}
}

// TestMidChainKillDegradesGracefully is the headline acceptance test:
// with timeouts and the watchdog armed, killing a mid-chain module must
// leave a run that completes, keeps serving the surviving module, and
// converts every severed request into a counted error or timeout — no
// panic, no hang, no silent loss.
func TestMidChainKillDegradesGracefully(t *testing.T) {
	spec := midChainSpec(t)
	spec.RequestTimeout = 2 * sim.Microsecond
	spec.MaxRetries = 2
	spec.Watchdog = true

	res, err := exp.Run(spec)
	if err != nil {
		t.Fatalf("degraded run failed: %v", err)
	}
	if res.FaultsInjected.LinkFails != 1 {
		t.Fatalf("LinkFails = %d, want 1", res.FaultsInjected.LinkFails)
	}
	if res.Faults.FailedLinks != 1 {
		t.Fatalf("FailedLinks = %d, want 1", res.Faults.FailedLinks)
	}
	// The cut is real: responses from the severed subtree are lost on the
	// dead link...
	if res.Faults.LostReads == 0 {
		t.Fatal("no responses were lost below the cut")
	}
	// ...and the frontend's deadline machinery both fired, retried, and
	// gave up within its budget instead of stranding slots.
	fe := res.FrontEndFaults
	if fe.ReadTimeouts == 0 || fe.Retries == 0 || fe.Abandoned == 0 {
		t.Fatalf("timeout path idle: %+v", fe)
	}
	if len(res.TimedOutIDs) == 0 {
		t.Fatal("no timed-out request IDs recorded")
	}
	// The surviving module kept the network productive.
	if res.Throughput == 0 {
		t.Fatal("throughput collapsed to zero despite a surviving module")
	}
}

// TestMidChainKillHangsWithoutRecovery is the load-bearing counterpart:
// the identical scenario with timeouts and watchdog disabled wedges the
// frontend — progress freezes with requests outstanding, which is
// exactly the failure mode the recovery layer exists to prevent.
func TestMidChainKillHangsWithoutRecovery(t *testing.T) {
	wl, err := workload.ByName("mixA")
	if err != nil {
		t.Fatal(err)
	}
	kernel := sim.NewKernel()
	topo, err := topology.Build(topology.DaisyChain, wl.Modules(4))
	if err != nil {
		t.Fatal(err)
	}
	net := network.New(kernel, topo, network.DefaultConfig())
	fe, err := workload.NewFrontEnd(kernel, net, wl, workload.DefaultFrontEndConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fault.Attach(net, midChainKill()); err != nil {
		t.Fatal(err)
	}
	fe.Start()

	kernel.Run(150 * sim.Microsecond)
	p1 := fe.Progress()
	kernel.Run(300 * sim.Microsecond)
	p2 := fe.Progress()
	if p2 != p1 {
		t.Fatalf("progress advanced %d -> %d; expected the frontend to wedge without timeouts", p1, p2)
	}
	if fe.Outstanding() == 0 {
		t.Fatal("nothing outstanding — the hang this subsystem guards against did not occur")
	}
}

// TestWatchdogReportsTheHang: watchdog armed but timeouts still off —
// the run must fail loudly with the diagnostic dump instead of
// finishing as if healthy.
func TestWatchdogReportsTheHang(t *testing.T) {
	spec := midChainSpec(t)
	spec.Watchdog = true // no RequestTimeout: nothing can recover

	_, err := exp.Run(spec)
	if err == nil {
		t.Fatal("hung run reported success")
	}
	msg := err.Error()
	if !strings.Contains(msg, "stalled") || !strings.Contains(msg, "UNREACHABLE") {
		t.Fatalf("stall error lacks the diagnostic dump:\n%s", msg)
	}
}

// TestFaultRunDeterminism: same seed, same scenario — byte-identical
// outcome, down to event counts, energy, fault tallies, and the exact
// set and order of timed-out request IDs.
func TestFaultRunDeterminism(t *testing.T) {
	run := func() exp.Result {
		spec := midChainSpec(t)
		spec.RequestTimeout = 2 * sim.Microsecond
		spec.MaxRetries = 2
		spec.Watchdog = true
		res, err := exp.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Events != b.Events {
		t.Fatalf("event counts differ: %d vs %d", a.Events, b.Events)
	}
	if a.Power.Total() != b.Power.Total() {
		t.Fatalf("energy differs: %v vs %v", a.Power.Total(), b.Power.Total())
	}
	if a.Faults != b.Faults {
		t.Fatalf("fault stats differ: %+v vs %+v", a.Faults, b.Faults)
	}
	if a.FrontEndFaults != b.FrontEndFaults {
		t.Fatalf("frontend fault stats differ: %+v vs %+v", a.FrontEndFaults, b.FrontEndFaults)
	}
	if len(a.TimedOutIDs) != len(b.TimedOutIDs) {
		t.Fatalf("timed-out sets differ in size: %d vs %d", len(a.TimedOutIDs), len(b.TimedOutIDs))
	}
	for i := range a.TimedOutIDs {
		if a.TimedOutIDs[i] != b.TimedOutIDs[i] {
			t.Fatalf("timed-out ID %d differs: %d vs %d", i, a.TimedOutIDs[i], b.TimedOutIDs[i])
		}
	}
}

// TestRandomTargetsAreSeedDeterministic: events with Link/Module = -1
// resolve their targets from the scenario seed at Attach time, so two
// networks see the same fault sequence.
func TestRandomTargetsAreSeedDeterministic(t *testing.T) {
	sc := fault.Scenario{
		Seed: 99,
		Events: []fault.Event{
			{At: fault.Duration(sim.Microsecond), Kind: fault.CorruptBurst, Link: -1,
				BER: 1e-6, Duration: fault.Duration(5 * sim.Microsecond)},
			{At: fault.Duration(2 * sim.Microsecond), Kind: fault.WakeFault, Link: -1, Drop: true},
			{At: fault.Duration(3 * sim.Microsecond), Kind: fault.VaultStall, Module: -1,
				Duration: fault.Duration(sim.Microsecond)},
		},
	}
	trace := func() []string {
		k := sim.NewKernel()
		topo, err := topology.Build(topology.TernaryTree, 9)
		if err != nil {
			t.Fatal(err)
		}
		net := network.New(k, topo, network.DefaultConfig())
		inj, err := fault.Attach(net, sc)
		if err != nil {
			t.Fatal(err)
		}
		k.Run(10 * sim.Microsecond)
		if inj.Counts().Total() != 3 {
			t.Fatalf("applied %d faults, want 3", inj.Counts().Total())
		}
		return inj.Log()
	}
	a, b := trace(), trace()
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Fatalf("fault traces diverge:\n%v\nvs\n%v", a, b)
	}
}

// TestOverlappingBurstsKeepLatestBER is the burst-overlap regression: a
// second corrupt-burst that starts while an earlier one is still active
// takes over the link, and the earlier burst's expiry must NOT clear it
// — only the newest burst's own expiry restores a clean link.
func TestOverlappingBurstsKeepLatestBER(t *testing.T) {
	k := sim.NewKernel()
	topo, err := topology.Build(topology.DaisyChain, 4)
	if err != nil {
		t.Fatal(err)
	}
	net := network.New(k, topo, network.DefaultConfig())
	sc := fault.Scenario{Events: []fault.Event{
		{At: fault.Duration(1 * sim.Microsecond), Kind: fault.CorruptBurst, Link: 0,
			BER: 1e-3, Duration: fault.Duration(5 * sim.Microsecond)},
		{At: fault.Duration(3 * sim.Microsecond), Kind: fault.CorruptBurst, Link: 0,
			BER: 1e-4, Duration: fault.Duration(10 * sim.Microsecond)},
	}}
	if _, err := fault.Attach(net, sc); err != nil {
		t.Fatal(err)
	}
	ber := func() float64 { return net.Links[0].Config().BER }

	k.Run(2 * sim.Microsecond)
	if got := ber(); got != 1e-3 {
		t.Fatalf("BER = %g during the first burst, want 1e-3", got)
	}
	k.Run(4 * sim.Microsecond)
	if got := ber(); got != 1e-4 {
		t.Fatalf("BER = %g after the second burst starts, want 1e-4", got)
	}
	// t = 6 µs is the first burst's expiry: it must see that a newer
	// burst owns the link and leave the BER alone.
	k.Run(7 * sim.Microsecond)
	if got := ber(); got != 1e-4 {
		t.Fatalf("BER = %g after the stale expiry fired, want 1e-4 (first burst clobbered the second)", got)
	}
	k.Run(14 * sim.Microsecond)
	if got := ber(); got != 0 {
		t.Fatalf("BER = %g after the second burst's expiry, want 0", got)
	}
}

// TestScenarioJSON covers the wire format: duration strings, raw
// picoseconds, and the round trip through Key().
func TestScenarioJSON(t *testing.T) {
	sc, err := fault.ParseScenario([]byte(`{
		"seed": 7,
		"events": [
			{"at": "1us", "kind": "module-fail", "module": 1},
			{"at": 2500000, "kind": "corrupt-burst", "link": 3, "ber": 1e-9, "duration": "10us"},
			{"at": "5us", "kind": "wake-fault", "link": -1, "drop": true},
			{"at": "6us", "kind": "vault-stall", "module": 0, "duration": "500ns"}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Seed != 7 || len(sc.Events) != 4 {
		t.Fatalf("parsed %+v", sc)
	}
	if sim.Duration(sc.Events[0].At) != sim.Microsecond {
		t.Fatalf("string duration parsed as %v", sim.Duration(sc.Events[0].At))
	}
	if sim.Duration(sc.Events[1].At) != 2500*sim.Nanosecond {
		t.Fatalf("picosecond duration parsed as %v", sim.Duration(sc.Events[1].At))
	}
	if sc.Events[2].Link != -1 || !sc.Events[2].Drop {
		t.Fatalf("wake-fault parsed as %+v", sc.Events[2])
	}
	if sc.Key() == "" || sc.Key() != sc.Key() {
		t.Fatal("scenario key is not stable")
	}
	if (fault.Scenario{}).Key() != "" {
		t.Fatal("empty scenario must have an empty key")
	}
}

// TestAttachValidation: malformed scenarios are rejected up front, with
// the offending event identified — never half-scheduled.
func TestAttachValidation(t *testing.T) {
	k := sim.NewKernel()
	topo, err := topology.Build(topology.DaisyChain, 2)
	if err != nil {
		t.Fatal(err)
	}
	net := network.New(k, topo, network.DefaultConfig())
	k.Schedule(2*sim.Microsecond, func() {})
	k.RunAll() // now = 2 µs: past events must be rejected

	for name, sc := range map[string]fault.Scenario{
		"unknown kind": {Events: []fault.Event{
			{At: fault.Duration(5 * sim.Microsecond), Kind: "meltdown"}}},
		"link out of range": {Events: []fault.Event{
			{At: fault.Duration(5 * sim.Microsecond), Kind: fault.LinkFail, Link: 99}}},
		"module out of range": {Events: []fault.Event{
			{At: fault.Duration(5 * sim.Microsecond), Kind: fault.ModuleFail, Module: 5}}},
		"bad ber": {Events: []fault.Event{
			{At: fault.Duration(5 * sim.Microsecond), Kind: fault.CorruptBurst, Link: 0,
				BER: 2, Duration: fault.Duration(sim.Microsecond)}}},
		"burst without duration": {Events: []fault.Event{
			{At: fault.Duration(5 * sim.Microsecond), Kind: fault.CorruptBurst, Link: 0, BER: 1e-9}}},
		"wake-fault without effect": {Events: []fault.Event{
			{At: fault.Duration(5 * sim.Microsecond), Kind: fault.WakeFault, Link: 0}}},
		"stall without duration": {Events: []fault.Event{
			{At: fault.Duration(5 * sim.Microsecond), Kind: fault.VaultStall, Module: 0}}},
		"event in the past": {Events: []fault.Event{
			{At: fault.Duration(sim.Microsecond), Kind: fault.LinkFail, Link: 0}}},
	} {
		if _, err := fault.Attach(net, sc); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
