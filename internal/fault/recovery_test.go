package fault_test

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"math/rand"

	"memnet/internal/audit"
	"memnet/internal/core"
	"memnet/internal/exp"
	"memnet/internal/fault"
	"memnet/internal/link"
	"memnet/internal/network"
	"memnet/internal/sim"
	"memnet/internal/topology"
	"memnet/internal/workload"
)

// TestKillRepairReturnsToHealthy is the recovery acceptance test: on
// every topology, killing module 1 and repairing it mid-run must leave a
// healthy steady state — no failed links, the outage closed (MTTR > 0,
// availability < 1, nothing still open), traffic flowing — under a
// full-rate audit and an armed watchdog, so a stall or any conservation
// violation fails the run outright.
func TestKillRepairReturnsToHealthy(t *testing.T) {
	wl, err := workload.ByName("mixA")
	if err != nil {
		t.Fatal(err)
	}
	for _, topo := range topology.Kinds {
		t.Run(topo.String(), func(t *testing.T) {
			spec := exp.Spec{
				Workload:       wl,
				Topology:       topo,
				Size:           exp.Small,
				Mech:           exp.MechVWLROO,
				Policy:         core.PolicyAware,
				Alpha:          0.05,
				SimTime:        300 * sim.Microsecond,
				Warmup:         0,
				AuditEvery:     1,
				RequestTimeout: 2 * sim.Microsecond,
				MaxRetries:     4,
				Watchdog:       true,
				Faults: fault.Scenario{Events: []fault.Event{
					{At: fault.Duration(50 * sim.Microsecond), Kind: fault.ModuleFail, Module: 1},
					{At: fault.Duration(90 * sim.Microsecond), Kind: fault.ModuleRepair, Module: 1},
				}},
			}
			res, err := exp.Run(spec)
			if err != nil {
				t.Fatalf("kill->repair run failed: %v", err)
			}
			if res.Faults.FailedLinks != 0 {
				t.Fatalf("FailedLinks = %d after repair, want 0", res.Faults.FailedLinks)
			}
			// A module repair retrains both of its links.
			if res.Faults.RepairedLinks < 2 {
				t.Fatalf("RepairedLinks = %d, want >= 2", res.Faults.RepairedLinks)
			}
			a := res.Availability
			if a.Outages == 0 {
				t.Fatal("no outage recorded for the module kill")
			}
			if a.OpenOutages != 0 {
				t.Fatalf("%d outage(s) still open at end of run", a.OpenOutages)
			}
			if a.MTTR <= 0 {
				t.Fatalf("MTTR = %v, want > 0", a.MTTR)
			}
			if a.Availability <= 0 || a.Availability >= 1 {
				t.Fatalf("availability = %v, want in (0, 1)", a.Availability)
			}
			if res.Throughput == 0 {
				t.Fatal("throughput collapsed to zero despite the repair")
			}
		})
	}
}

// chaosScenario builds a seeded random fault schedule: link and module
// kills (each with a paired repair), corrupt bursts, wake faults, and
// vault stalls, all inside [5 µs, 160 µs]. A terminal repair wave at
// 220 µs revives anything still dead — including links the CRC
// escalation ladder hard-failed on its own — so the end state must be
// healthy regardless of what the random schedule did.
func chaosScenario(seed int64, nLinks, nModules int) fault.Scenario {
	rng := rand.New(rand.NewSource(seed))
	at := func(us int) fault.Duration { return fault.Duration(sim.Duration(us) * sim.Microsecond) }
	var evs []fault.Event
	for i := 0; i < 10; i++ {
		start := 5 + rng.Intn(120)
		switch rng.Intn(5) {
		case 0:
			li := rng.Intn(nLinks)
			evs = append(evs,
				fault.Event{At: at(start), Kind: fault.LinkFail, Link: li},
				fault.Event{At: at(start + 5 + rng.Intn(25)), Kind: fault.LinkRepair, Link: li})
		case 1:
			m := rng.Intn(nModules)
			evs = append(evs,
				fault.Event{At: at(start), Kind: fault.ModuleFail, Module: m},
				fault.Event{At: at(start + 5 + rng.Intn(25)), Kind: fault.ModuleRepair, Module: m})
		case 2:
			bers := []float64{1e-6, 1e-4, 0.2}
			evs = append(evs, fault.Event{At: at(start), Kind: fault.CorruptBurst,
				Link: rng.Intn(nLinks), BER: bers[rng.Intn(len(bers))],
				Duration: at(1 + rng.Intn(30))})
		case 3:
			ev := fault.Event{At: at(start), Kind: fault.WakeFault, Link: rng.Intn(nLinks)}
			if rng.Intn(2) == 0 {
				ev.Drop = true
			} else {
				ev.Duration = fault.Duration(sim.Duration(10+rng.Intn(90)) * sim.Nanosecond)
			}
			evs = append(evs, ev)
		case 4:
			evs = append(evs, fault.Event{At: at(start), Kind: fault.VaultStall,
				Module: rng.Intn(nModules), Duration: at(1 + rng.Intn(8))})
		}
	}
	for li := 0; li < nLinks; li++ {
		evs = append(evs, fault.Event{At: at(220), Kind: fault.LinkRepair, Link: li})
	}
	return fault.Scenario{Seed: uint64(seed), Events: evs}
}

// soakRun executes one chaos soak: 300 µs of traffic under the seeded
// schedule with timeouts armed and a full-rate auditor attached, then a
// drained cooldown. It fails the test unless the network quiesces fully
// healthy with zero audit violations, and returns a fingerprint of every
// fault-path counter for the byte-identical replay check.
func soakRun(t *testing.T, kind topology.Kind, seed int64) string {
	t.Helper()
	k := sim.NewKernel()
	wl, err := workload.ByName("mixA")
	if err != nil {
		t.Fatal(err)
	}
	topo, err := topology.Build(kind, wl.Modules(4))
	if err != nil {
		t.Fatal(err)
	}
	cfg := network.DefaultConfig()
	cfg.Mechanism = link.MechVWL
	cfg.ROO = true
	cfg.Wakeup = link.WakeupDefault
	cfg.Retrain = 200 * sim.Nanosecond
	cfg.MaxCRCRetries = 3 // tight budget so high-BER bursts climb the ladder
	net := network.New(k, topo, cfg)
	aud := audit.New(audit.Config{SampleEvery: 1, SweepEvery: 1024}, k.Now)
	net.AttachAudit(aud)
	fecfg := workload.DefaultFrontEndConfig(42)
	fecfg.Timeout = 2 * sim.Microsecond
	fecfg.MaxRetries = 3
	fe, err := workload.NewFrontEnd(k, net, wl, fecfg)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := fault.Attach(net, chaosScenario(seed, len(net.Links), topo.N()))
	if err != nil {
		t.Fatal(err)
	}
	fe.Start()
	k.Run(300 * sim.Microsecond)
	fe.Stop()
	// Cooldown: nothing new is issued; stragglers complete or time out.
	k.Run(500 * sim.Microsecond)

	for m := 0; m < topo.N(); m++ {
		if net.Unreachable(m) {
			t.Errorf("module %d unreachable after the repair wave", m)
		}
	}
	if err := net.CheckQuiesced(); err != nil {
		t.Errorf("network not quiesced: %v", err)
	}
	if out := fe.Outstanding(); out != 0 {
		t.Errorf("%d request(s) still outstanding after cooldown", out)
	}
	aud.RunSweeps()
	if vs := aud.Violations(); len(vs) != 0 {
		t.Fatalf("audit violations:\n%v", vs)
	}
	rep := net.AvailabilityReport()
	if rep.OpenOutages != 0 {
		t.Errorf("%d outage(s) still open after the repair wave", rep.OpenOutages)
	}
	return fmt.Sprintf("net=%+v fe=%+v inj=%+v avail=%+v events=%d",
		net.FaultStats(), fe.FaultStats(), inj.Counts(), rep, k.Processed())
}

// soakSeeds returns the chaos seeds: {1, 2, 3} by default, overridable
// with MEMNET_SOAK_SEEDS (comma-separated) for longer campaigns — which
// is what `make soak` relies on.
func soakSeeds(t *testing.T) []int64 {
	env := os.Getenv("MEMNET_SOAK_SEEDS")
	if env == "" {
		return []int64{1, 2, 3}
	}
	var seeds []int64
	for _, f := range strings.Split(env, ",") {
		s, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			t.Fatalf("bad MEMNET_SOAK_SEEDS entry %q: %v", f, err)
		}
		seeds = append(seeds, s)
	}
	return seeds
}

// TestChaosSoak is the deterministic chaos campaign: every topology ×
// every seed runs the random fail/burst/wake-fault/stall + repair
// schedule twice and must converge to a healthy, quiesced, audit-clean
// network with byte-identical fault-path fingerprints.
func TestChaosSoak(t *testing.T) {
	for _, kind := range topology.Kinds {
		for _, seed := range soakSeeds(t) {
			t.Run(fmt.Sprintf("%s/seed%d", kind, seed), func(t *testing.T) {
				a := soakRun(t, kind, seed)
				b := soakRun(t, kind, seed)
				if a != b {
					t.Fatalf("replay diverged for seed %d:\n%s\nvs\n%s", seed, a, b)
				}
			})
		}
	}
}
