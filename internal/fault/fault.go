// Package fault is the deterministic fault-injection subsystem: it turns
// a scenario specification (JSON or programmatic) into scheduled fault
// events against a live network — link and module failures and their
// repairs (retraining links back into service), transient corruption
// bursts driving the CRC/retry path, delayed or lost ROO wakeups, and
// vault stalls. All randomness (picking targets with
// Link/Module = -1) comes from the scenario's seed through the
// simulator's own RNG, so the same seed and scenario always produce the
// same faults, event counts, and energy totals.
package fault

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"memnet/internal/network"
	"memnet/internal/sim"
)

// Duration is a sim.Duration that unmarshals from JSON as either a Go
// duration string ("1us", "250ns") or an integer picosecond count.
type Duration sim.Duration

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		td, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("fault: bad duration %q: %w", s, err)
		}
		*d = Duration(sim.Duration(td.Nanoseconds()) * sim.Nanosecond)
		return nil
	}
	var ps int64
	if err := json.Unmarshal(b, &ps); err != nil {
		return fmt.Errorf("fault: duration must be a string or picoseconds: %s", b)
	}
	*d = Duration(ps)
	return nil
}

// MarshalJSON emits the integer-picosecond form. The pretty string form
// ("10.00us") is lossy and — below a nanosecond — not even parseable by
// UnmarshalJSON, so encoding a scenario and parsing it back would change
// it; picoseconds round-trip exactly, which Key() depends on.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(int64(d))
}

// Kind identifies a fault event type.
type Kind string

const (
	// LinkFail permanently fails one connectivity link (Links[Link]).
	LinkFail Kind = "link-fail"
	// ModuleFail permanently fails both connectivity links of a module,
	// severing its whole subtree.
	ModuleFail Kind = "module-fail"
	// CorruptBurst raises the link's bit-error rate to BER for Duration,
	// driving the existing CRC/RetryDelay retransmission path.
	CorruptBurst Kind = "corrupt-burst"
	// WakeFault perturbs the link's next ROO wakeup: delayed by Duration,
	// or lost entirely (Drop), forcing a wake retry.
	WakeFault Kind = "wake-fault"
	// VaultStall blocks a module's DRAM from starting accesses for
	// Duration (thermal/maintenance stall model).
	VaultStall Kind = "vault-stall"
	// LinkRepair begins recovery of a failed link: it retrains (full I/O
	// power, no traffic) and rejoins the network once training completes,
	// re-admitting its subtree to routing. A no-op on a live link.
	LinkRepair Kind = "link-repair"
	// ModuleRepair repairs both connectivity links of a module and clears
	// any injected vault stall.
	ModuleRepair Kind = "module-repair"
)

// Event is one scheduled fault.
type Event struct {
	// At is the simulated time the fault fires.
	At Duration `json:"at"`
	// Kind selects the fault type.
	Kind Kind `json:"kind"`
	// Link is the target link index for link-fail/corrupt-burst/
	// wake-fault; -1 picks one with the scenario RNG.
	Link int `json:"link,omitempty"`
	// Module is the target module for module-fail/vault-stall; -1 picks
	// one with the scenario RNG.
	Module int `json:"module,omitempty"`
	// Duration is the burst/stall length or wake delay.
	Duration Duration `json:"duration,omitempty"`
	// BER is the corrupt-burst bit-error rate per flit attempt.
	BER float64 `json:"ber,omitempty"`
	// Drop makes a wake-fault lose the wakeup instead of delaying it.
	Drop bool `json:"drop,omitempty"`
}

// Scenario is a complete fault schedule.
type Scenario struct {
	// Seed drives target selection for events with Link/Module = -1.
	Seed uint64 `json:"seed"`
	// Events fire in time order regardless of slice order.
	Events []Event `json:"events"`
}

// ParseScenario decodes a JSON scenario, rejecting unknown fields.
func ParseScenario(data []byte) (Scenario, error) {
	var sc Scenario
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return Scenario{}, fmt.Errorf("fault: parsing scenario: %w", err)
	}
	return sc, nil
}

// LoadScenario reads and decodes a JSON scenario file.
func LoadScenario(path string) (Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, fmt.Errorf("fault: reading scenario: %w", err)
	}
	return ParseScenario(data)
}

// Key returns a stable identity string for memoization keys: same
// scenario, same key.
func (sc Scenario) Key() string {
	if len(sc.Events) == 0 {
		return ""
	}
	b, err := json.Marshal(sc)
	if err != nil {
		return fmt.Sprintf("unkeyable-%d-%d", sc.Seed, len(sc.Events))
	}
	return string(b)
}

// Counts tallies applied faults by kind.
type Counts struct {
	LinkFails     int
	ModuleFails   int
	CorruptBursts int
	WakeFaults    int
	VaultStalls   int
	LinkRepairs   int
	ModuleRepairs int
}

// Total sums all applied faults.
func (c Counts) Total() int {
	return c.LinkFails + c.ModuleFails + c.CorruptBursts + c.WakeFaults + c.VaultStalls +
		c.LinkRepairs + c.ModuleRepairs
}

// Injector schedules a scenario's faults against one network.
type Injector struct {
	net    *network.Network
	rng    *sim.RNG
	counts Counts
	log    []string
	// burstGen guards corrupt-burst expiry per link: an expiring burst
	// only clears the BER if no newer burst has started on that link.
	burstGen map[int]uint64
}

// Attach validates sc against net and pre-schedules every event on the
// network's kernel. Target selection for random events happens here, in
// event order, so it is a pure function of the scenario seed.
func Attach(net *network.Network, sc Scenario) (*Injector, error) {
	inj := &Injector{net: net, rng: sim.NewRNG(sc.Seed ^ 0xfa017), burstGen: make(map[int]uint64)}
	events := make([]Event, len(sc.Events))
	copy(events, sc.Events)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	now := net.Kernel.Now()
	for i := range events {
		ev := events[i]
		if sim.Time(ev.At) < now {
			return nil, fmt.Errorf("fault: event %d at %s is in the past (now %s)", i, sim.Duration(ev.At), now)
		}
		if err := inj.resolve(&ev); err != nil {
			return nil, fmt.Errorf("fault: event %d: %w", i, err)
		}
		resolved := ev
		net.Kernel.Schedule(sim.Time(ev.At), func() { inj.apply(resolved) })
	}
	return inj, nil
}

// resolve validates ev and pins its random targets.
func (inj *Injector) resolve(ev *Event) error {
	nLinks := len(inj.net.Links)
	nMods := len(inj.net.Modules)
	pickLink := func() error {
		if ev.Link == -1 {
			ev.Link = int(inj.rng.Uint64() % uint64(nLinks))
		}
		if ev.Link < 0 || ev.Link >= nLinks {
			return fmt.Errorf("link %d out of range [0,%d)", ev.Link, nLinks)
		}
		return nil
	}
	pickModule := func() error {
		if ev.Module == -1 {
			ev.Module = int(inj.rng.Uint64() % uint64(nMods))
		}
		if ev.Module < 0 || ev.Module >= nMods {
			return fmt.Errorf("module %d out of range [0,%d)", ev.Module, nMods)
		}
		return nil
	}
	switch ev.Kind {
	case LinkFail, LinkRepair:
		return pickLink()
	case ModuleFail, ModuleRepair:
		return pickModule()
	case CorruptBurst:
		if ev.BER <= 0 || ev.BER > 1 {
			return fmt.Errorf("corrupt-burst needs ber in (0,1], got %g", ev.BER)
		}
		if ev.Duration <= 0 {
			return fmt.Errorf("corrupt-burst needs a positive duration")
		}
		return pickLink()
	case WakeFault:
		if !ev.Drop && ev.Duration <= 0 {
			return fmt.Errorf("wake-fault needs a positive delay or drop=true")
		}
		return pickLink()
	case VaultStall:
		if ev.Duration <= 0 {
			return fmt.Errorf("vault-stall needs a positive duration")
		}
		return pickModule()
	default:
		return fmt.Errorf("unknown fault kind %q", ev.Kind)
	}
}

// apply fires one resolved event.
func (inj *Injector) apply(ev Event) {
	now := inj.net.Kernel.Now()
	switch ev.Kind {
	case LinkFail:
		inj.counts.LinkFails++
		inj.logf("%s link-fail link=%d", now, ev.Link)
		inj.net.FailLink(ev.Link)
	case ModuleFail:
		inj.counts.ModuleFails++
		inj.logf("%s module-fail module=%d", now, ev.Module)
		inj.net.FailModule(ev.Module)
	case CorruptBurst:
		inj.counts.CorruptBursts++
		inj.logf("%s corrupt-burst link=%d ber=%g for %s", now, ev.Link, ev.BER, sim.Duration(ev.Duration))
		l := inj.net.Links[ev.Link]
		l.SetBER(ev.BER)
		// Generation-guard the expiry: if a newer burst starts on this
		// link before this one ends, the stale expiry must not clear it.
		inj.burstGen[ev.Link]++
		gen := inj.burstGen[ev.Link]
		inj.net.Kernel.After(sim.Duration(ev.Duration), func() {
			if inj.burstGen[ev.Link] == gen {
				l.SetBER(0)
			}
		})
	case WakeFault:
		inj.counts.WakeFaults++
		inj.logf("%s wake-fault link=%d delay=%s drop=%v", now, ev.Link, sim.Duration(ev.Duration), ev.Drop)
		inj.net.Links[ev.Link].InjectWakeFault(sim.Duration(ev.Duration), ev.Drop)
	case VaultStall:
		inj.counts.VaultStalls++
		inj.logf("%s vault-stall module=%d for %s", now, ev.Module, sim.Duration(ev.Duration))
		inj.net.Modules[ev.Module].DRAM.Stall(sim.Duration(ev.Duration))
	case LinkRepair:
		inj.counts.LinkRepairs++
		inj.logf("%s link-repair link=%d", now, ev.Link)
		inj.net.RepairLink(ev.Link)
	case ModuleRepair:
		inj.counts.ModuleRepairs++
		inj.logf("%s module-repair module=%d", now, ev.Module)
		inj.net.RepairModule(ev.Module)
	}
}

func (inj *Injector) logf(format string, args ...any) {
	inj.log = append(inj.log, fmt.Sprintf(format, args...))
}

// Counts returns the faults applied so far.
func (inj *Injector) Counts() Counts { return inj.counts }

// Log returns the applied-fault trace in firing order.
func (inj *Injector) Log() []string { return inj.log }
