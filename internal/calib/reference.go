// Package calib validates the simulator's physical model against
// independent ground truth: the published Table I DRAM timings, the [12]
// HMC power split, and the paper's derived operating points (Eq. 1
// latency floor, per-radix idle watts). It keeps those numbers *verified
// inputs* rather than trusted constants, three ways:
//
//  1. Differential ground-truth rows — a machine-readable reference table
//     (reference.json) checked against both the static configs
//     (dram.DefaultConfig, the power model) and closed-form predictions
//     vs. tiny deterministic simulations.
//  2. Parameter-sensitivity sweeps — each timing/power parameter is
//     perturbed ±10% around a fixed operating point and the measured
//     elasticity must stay inside a declared band (an elasticity of ~0
//     where the model says the parameter must matter is a wiring bug).
//  3. A pinned accuracy report — Evaluate renders a per-quantity table of
//     simulated vs. published values; the committed results/calibration.txt
//     golden makes CI fail when model error moves.
package calib

import (
	"bytes"
	_ "embed"
	"encoding/json"
	"fmt"
	"math"
	"sync"
)

//go:embed reference.json
var referenceJSON []byte

// Row is one published quantity the model must reproduce. Value is in
// the row's Unit; TolRel is the admissible relative error (0 = exact).
// For rows whose published value is 0, TolRel bounds the absolute error
// instead (relative error is undefined at zero).
type Row struct {
	Name     string  `json:"name"`
	Source   string  `json:"source"`
	Quantity string  `json:"quantity"`
	Value    float64 `json:"value"`
	Unit     string  `json:"unit"`
	TolRel   float64 `json:"tol_rel"`
}

// Band declares the admissible elasticity range of one model output with
// respect to one swept parameter: d(ln output)/d(ln param) measured over
// the ±10% perturbation must land inside [Min, Max]. A band that excludes
// zero also catches dead parameters — a perturbation the simulation does
// not feel at all.
type Band struct {
	Name   string  `json:"name"`
	Param  string  `json:"param"`
	Output string  `json:"output"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// Reference is the full machine-readable ground-truth table.
type Reference struct {
	Rows  []Row  `json:"rows"`
	Bands []Band `json:"bands"`
}

// Parse decodes a reference table strictly: unknown fields, trailing
// data, and semantically invalid tables (duplicate names, negative
// tolerances, inverted bands, non-finite numbers) are all errors.
func Parse(data []byte) (*Reference, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var ref Reference
	if err := dec.Decode(&ref); err != nil {
		return nil, fmt.Errorf("calib: parse reference table: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("calib: trailing data after reference table")
	}
	if err := ref.Validate(); err != nil {
		return nil, err
	}
	return &ref, nil
}

// Validate checks the table's internal consistency.
func (r *Reference) Validate() error {
	finite := func(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
	names := make(map[string]bool, len(r.Rows)+len(r.Bands))
	for i, row := range r.Rows {
		switch {
		case row.Name == "":
			return fmt.Errorf("calib: row %d has no name", i)
		case names[row.Name]:
			return fmt.Errorf("calib: duplicate row name %q", row.Name)
		case !finite(row.Value) || !finite(row.TolRel):
			return fmt.Errorf("calib: row %q has a non-finite value or tolerance", row.Name)
		case row.TolRel < 0:
			return fmt.Errorf("calib: row %q has a negative tolerance %g", row.Name, row.TolRel)
		}
		names[row.Name] = true
	}
	for i, b := range r.Bands {
		switch {
		case b.Name == "":
			return fmt.Errorf("calib: band %d has no name", i)
		case names[b.Name]:
			return fmt.Errorf("calib: duplicate band name %q", b.Name)
		case b.Param == "" || b.Output == "":
			return fmt.Errorf("calib: band %q needs both a param and an output", b.Name)
		case b.Output != "latency" && b.Output != "power":
			return fmt.Errorf("calib: band %q output %q is not latency or power", b.Name, b.Output)
		case !finite(b.Min) || !finite(b.Max):
			return fmt.Errorf("calib: band %q has a non-finite bound", b.Name)
		case b.Min > b.Max:
			return fmt.Errorf("calib: band %q bounds inverted: [%g, %g]", b.Name, b.Min, b.Max)
		}
		names[b.Name] = true
	}
	return nil
}

// Row returns the named row, if present.
func (r *Reference) Row(name string) (Row, bool) {
	for _, row := range r.Rows {
		if row.Name == name {
			return row, true
		}
	}
	return Row{}, false
}

var (
	defaultOnce sync.Once
	defaultRef  *Reference
	defaultErr  error
)

// Default returns the embedded reference table. The fixture is part of
// the build, so a parse failure is a programming error and panics.
func Default() *Reference {
	defaultOnce.Do(func() { defaultRef, defaultErr = Parse(referenceJSON) })
	if defaultErr != nil {
		panic(defaultErr)
	}
	return defaultRef
}
