// Closed-form predictors for the quantities the differential rows check.
// Each one mirrors the corresponding simulation arithmetic exactly — same
// constants, same accumulation order — so the ground-truth comparisons can
// demand equality down to the picosecond (latency) or the last bit
// (zero-traffic energy) rather than hiding model drift inside a loose
// tolerance.

package calib

import (
	"memnet/internal/dram"
	"memnet/internal/link"
	"memnet/internal/packet"
	"memnet/internal/power"
	"memnet/internal/sim"
)

// HopLatency is the closed-form latency of one packet hop at full link
// width: serialization of every flit, SERDES, then the router pipeline.
func HopLatency(kind packet.Kind) sim.Duration {
	ser := sim.Duration(float64(int64(link.FlitTimeFull)*int64(kind.Flits())) + 0.5)
	return ser + link.SERDESBase + link.RouterLatency()
}

// PredictReadLatency is the closed-form unloaded read latency of a module
// at the given topology depth: the request and response each traverse
// depth links, and the DRAM adds its Eq. 1 floor (tRCD + tCL + burst).
func PredictReadLatency(cfg dram.Config, depth int) sim.Duration {
	perHop := HopLatency(packet.ReadReq) + HopLatency(packet.ReadResp)
	return sim.Duration(depth)*perHop + cfg.NominalReadLatency()
}

// IdleFloorEnergy is the closed-form energy a zero-traffic network of the
// given module classes consumes over elapsed seconds: every link at full
// idle power plus the DRAM and logic leakage floors. The accumulation
// order mirrors network.energyToNow exactly (per module: both links, then
// DRAM leak, then logic leak), so on a zero-traffic run the measured
// breakdown must equal this one bit for bit.
func IdleFloorEnergy(pm power.Model, highRadix []bool, elapsed float64) power.Breakdown {
	var b power.Breakdown
	for _, hr := range highRadix {
		p := pm.ParamsForRadix(hr)
		w := p.LinkFullWatts()
		b.IdleIO += w * elapsed
		b.IdleIO += w * elapsed
		b.DRAMLeak += p.DRAMLeakageWatts() * elapsed
		b.LogicLeak += p.LogicLeakageWatts() * elapsed
	}
	return b
}

// IdleFloorWatts is the zero-traffic power floor of the given module
// classes (two connectivity links per module).
func IdleFloorWatts(pm power.Model, highRadix []bool) float64 {
	return IdleFloorEnergy(pm, highRadix, 1).Total()
}
