package calib

import (
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzCalibReference checks the reference-table loader on arbitrary
// bytes: it must either reject the input or produce a validated table
// that is a fixed point of marshal→reparse (no field lost, no value
// mutated, nothing accepted that re-validation would reject).
func FuzzCalibReference(f *testing.F) {
	f.Add([]byte(referenceJSON))
	f.Add([]byte(`{"rows": [{"name": "a", "source": "s", "quantity": "q", "value": 1.5, "unit": "ns", "tol_rel": 0.01}]}`))
	f.Add([]byte(`{"bands": [{"name": "b", "param": "p", "output": "power", "min": -1, "max": 1}]}`))
	f.Add([]byte(`{"rows": [{"name": "a", "value": 1, "typo": 2}]}`))
	f.Add([]byte(`]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		ref, err := Parse(data)
		if err != nil {
			return
		}
		out, err := json.Marshal(ref)
		if err != nil {
			t.Fatalf("accepted table does not marshal: %v", err)
		}
		again, err := Parse(out)
		if err != nil {
			t.Fatalf("marshaled form of an accepted table was rejected: %v\n%s", err, out)
		}
		if !reflect.DeepEqual(ref, again) {
			t.Fatalf("marshal/reparse is not a fixed point:\n%+v\n%+v", ref, again)
		}
	})
}
