// Plain-text rendering of a calibration pass: the pinned accuracy report
// committed at results/calibration.txt. Everything printed here is a
// deterministic function of the model and the reference table — no wall
// time, no host details — so the golden is byte-stable across machines
// and -jobs values.

package calib

import (
	"fmt"
	"strings"

	"memnet/internal/exp"
	"memnet/internal/viz"
)

// gaugeWidth sizes the elasticity position gauges in the band table.
const gaugeWidth = 12

// Render formats the full accuracy report.
func (r *Report) Render() string {
	var b strings.Builder
	b.WriteString("model calibration report\n")
	b.WriteString("========================\n\n")

	rows := exp.NewTable(
		fmt.Sprintf("reference rows (%d): published ground truth vs. this model", len(r.Rows)),
		"row", "source", "published", "simulated", "rel err", "tol", "verdict")
	for _, row := range r.Rows {
		rows.Row(row.Row.Name, row.Row.Source,
			valUnit(row.Row.Value, row.Row.Unit), valUnit(row.Got, row.Row.Unit),
			fmtErr(row.Err), fmtErr(row.Row.TolRel), verdict(row.OK))
	}
	b.WriteString(rows.String())
	b.WriteByte('\n')

	if r.SensSkipped {
		b.WriteString("sensitivity sweep: skipped\n")
	} else {
		bands := exp.NewTable(
			fmt.Sprintf("sensitivity bands (%d): elasticity d(ln out)/d(ln param) over a +/-10%% sweep at %s/%s warmup",
				len(r.Bands), r.SimTime, r.Warmup),
			"band", "axis", "y(x0.90)", "y(x1.00)", "y(x1.10)", "elasticity", "allowed", "position", "verdict")
		for _, br := range r.Bands {
			bands.Row(br.Band.Name, br.Band.Param+" -> "+br.Band.Output,
				fmt.Sprintf("%.6g", br.Ys[0]), fmt.Sprintf("%.6g", br.Ys[len(br.Ys)/2]),
				fmt.Sprintf("%.6g", br.Ys[len(br.Ys)-1]),
				fmt.Sprintf("%.3f", br.Elasticity),
				fmt.Sprintf("[%g, %g]", br.Band.Min, br.Band.Max),
				viz.BandGauge(br.Band.Min, br.Band.Max, br.Elasticity, gaugeWidth),
				verdict(br.OK))
		}
		b.WriteString(bands.String())
		b.WriteByte('\n')
		b.WriteString(r.Figure)
	}

	rowsOK, bandsOK := 0, 0
	for _, row := range r.Rows {
		if row.OK {
			rowsOK++
		}
	}
	for _, br := range r.Bands {
		if br.OK {
			bandsOK++
		}
	}
	b.WriteByte('\n')
	overall := "PASS"
	if !r.Pass() {
		overall = "FAIL"
	}
	fmt.Fprintf(&b, "verdict: %s (%d/%d rows within tolerance", overall, rowsOK, len(r.Rows))
	if r.SensSkipped {
		b.WriteString(", sensitivity skipped)\n")
	} else {
		fmt.Fprintf(&b, ", %d/%d bands in range)\n", bandsOK, len(r.Bands))
	}
	return b.String()
}

// valUnit formats a quantity with its unit, if any.
func valUnit(v float64, unit string) string {
	s := fmt.Sprintf("%.6g", v)
	if unit != "" {
		s += " " + unit
	}
	return s
}

// fmtErr formats an error or tolerance compactly; exact zero prints as 0.
func fmtErr(e float64) string {
	if e == 0 {
		return "0"
	}
	return fmt.Sprintf("%.2e", e)
}

func verdict(ok bool) string {
	if ok {
		return "ok"
	}
	return "FAIL"
}
