package calib

import (
	"fmt"
	"math"

	"memnet/internal/dram"
	"memnet/internal/link"
	"memnet/internal/network"
	"memnet/internal/packet"
	"memnet/internal/power"
	"memnet/internal/sim"
	"memnet/internal/topology"
)

// Options configures one calibration pass. The zero value validates the
// shipped model (Table I DRAM config, [12] power model) against the
// embedded reference table, sensitivity sweep included.
type Options struct {
	// Ref is the ground-truth table (nil = the embedded Default).
	Ref *Reference
	// DRAM and Power select the model under test (nil = the published
	// defaults). Perturbing either is how the harness proves to itself
	// that drift is detected — see TestPerturbationDetected.
	DRAM  *dram.Config
	Power *power.Model
	// Jobs is the sensitivity sweep's worker count (0 = GOMAXPROCS). The
	// report is byte-identical at any value.
	Jobs int
	// SimTime and Warmup size the sensitivity operating point
	// (0 = 150us / 40us).
	SimTime, Warmup sim.Duration
	// SkipSensitivity restricts the pass to the static and differential
	// rows — the cheap mode unit tests and the pinning suite use.
	SkipSensitivity bool
}

// RowResult is one reference row's outcome.
type RowResult struct {
	Row Row
	Got float64
	// Err is the relative error against Row.Value (absolute when the
	// published value is 0, where relative error is undefined).
	Err float64
	OK  bool
}

// BandResult is one sensitivity band's outcome.
type BandResult struct {
	Band Band
	// Ys is the measured output at each sweep step (×0.90 … ×1.10).
	Ys         []float64
	Elasticity float64
	OK         bool
}

// Report is a full calibration pass.
type Report struct {
	Rows  []RowResult
	Bands []BandResult
	// Figure is the sensitivity sweep rendered through
	// viz.RenderTimeSeries (one series per band, one tick per step).
	Figure          string
	SimTime, Warmup sim.Duration
	SensSkipped     bool
}

// Pass reports whether every row and band is within its declared range.
func (r *Report) Pass() bool {
	for _, row := range r.Rows {
		if !row.OK {
			return false
		}
	}
	for _, b := range r.Bands {
		if !b.OK {
			return false
		}
	}
	return true
}

// model is the configuration under test, shared by every evaluator.
type model struct {
	dram dram.Config
	pm   power.Model
}

// Evaluate runs a calibration pass: every reference row is measured
// against the model under test, and (unless skipped) every declared
// sensitivity band is swept. A returned error means the harness itself
// could not run — a row outside tolerance is a failed Report, not an
// error.
func Evaluate(opts Options) (*Report, error) {
	ref := opts.Ref
	if ref == nil {
		ref = Default()
	}
	m := &model{dram: dram.DefaultConfig(), pm: power.DefaultModel()}
	if opts.DRAM != nil {
		m.dram = *opts.DRAM
	}
	if opts.Power != nil {
		m.pm = *opts.Power
	}
	if err := m.dram.Validate(); err != nil {
		return nil, err
	}
	rep := &Report{SimTime: opts.SimTime, Warmup: opts.Warmup, SensSkipped: opts.SkipSensitivity}
	if rep.SimTime <= 0 {
		rep.SimTime = DefaultSensSimTime
	}
	if rep.Warmup <= 0 {
		rep.Warmup = DefaultSensWarmup
	}
	for _, row := range ref.Rows {
		eval, ok := evaluators[row.Name]
		if !ok {
			return nil, fmt.Errorf("calib: reference row %q has no evaluator", row.Name)
		}
		got, err := eval(m)
		if err != nil {
			return nil, fmt.Errorf("calib: row %q: %w", row.Name, err)
		}
		rep.Rows = append(rep.Rows, scoreRow(row, got))
	}
	if !opts.SkipSensitivity {
		bands, figure, err := runSensitivity(ref.Bands, m, opts.Jobs, rep.SimTime, rep.Warmup)
		if err != nil {
			return nil, err
		}
		rep.Bands, rep.Figure = bands, figure
	}
	return rep, nil
}

// scoreRow computes the error of got against the published row.
func scoreRow(row Row, got float64) RowResult {
	e := math.Abs(got - row.Value)
	if row.Value != 0 {
		e /= math.Abs(row.Value)
	}
	return RowResult{Row: row, Got: got, Err: e, OK: e <= row.TolRel}
}

// evaluators maps every reference row to the code that measures it from
// the model under test. Static rows read the configuration; differential
// rows run closed forms and tiny deterministic simulations. The set must
// match reference.json exactly — Evaluate fails on a row without an
// evaluator, and TestEvaluatorsMatchReference fails on an evaluator
// without a row.
var evaluators = map[string]func(*model) (float64, error){
	// Static DRAM configuration (Table I).
	"dram.vaults":      func(m *model) (float64, error) { return float64(m.dram.Vaults), nil },
	"dram.banks":       func(m *model) (float64, error) { return float64(m.dram.Banks), nil },
	"dram.queue-depth": func(m *model) (float64, error) { return float64(m.dram.QueueDepth), nil },
	"dram.line-bytes":  func(m *model) (float64, error) { return float64(m.dram.LineBytes), nil },
	"dram.bus-bits":    func(m *model) (float64, error) { return float64(m.dram.BusBits), nil },
	"dram.bus-gbps":    func(m *model) (float64, error) { return m.dram.BusGbps, nil },
	"dram.tCL":         func(m *model) (float64, error) { return ns(m.dram.TCL), nil },
	"dram.tRCD":        func(m *model) (float64, error) { return ns(m.dram.TRCD), nil },
	"dram.tRAS":        func(m *model) (float64, error) { return ns(m.dram.TRAS), nil },
	"dram.tRP":         func(m *model) (float64, error) { return ns(m.dram.TRP), nil },
	"dram.tRRD":        func(m *model) (float64, error) { return ns(m.dram.TRRD), nil },
	"dram.tWR":         func(m *model) (float64, error) { return ns(m.dram.TWR), nil },
	"dram.tREFI":       func(m *model) (float64, error) { return ns(m.dram.TREFI), nil },
	"dram.tRFC":        func(m *model) (float64, error) { return ns(m.dram.TRFC), nil },
	"dram.page-policy": func(m *model) (float64, error) { return float64(m.dram.Page), nil },
	"dram.row-bytes":   func(m *model) (float64, error) { return float64(m.dram.RowBytes), nil },

	// Static power model ([12] §III-B).
	"power.peak-high": func(m *model) (float64, error) { return m.pm.ParamsForRadix(true).PeakWatts, nil },
	"power.peak-low":  func(m *model) (float64, error) { return m.pm.ParamsForRadix(false).PeakWatts, nil },
	"power.frac-dram": func(m *model) (float64, error) { return m.pm.DRAMFraction, nil },
	"power.frac-logic": func(m *model) (float64, error) {
		return m.pm.LogicFraction, nil
	},
	"power.frac-io":    func(m *model) (float64, error) { return m.pm.IOFraction, nil },
	"power.idle-dram":  func(m *model) (float64, error) { return m.pm.DRAMIdleFraction, nil },
	"power.idle-logic": func(m *model) (float64, error) { return m.pm.LogicIdleFraction, nil },
	"power.off-link":   func(m *model) (float64, error) { return power.OffLinkFraction, nil },
	"link.off-power":   func(m *model) (float64, error) { return link.OffPowerFraction, nil },
	"power.link-watts-high": func(m *model) (float64, error) {
		return m.pm.ParamsForRadix(true).LinkFullWatts(), nil
	},
	"power.link-watts-low": func(m *model) (float64, error) {
		return m.pm.ParamsForRadix(false).LinkFullWatts(), nil
	},

	// Static link constants (§III-B, §IV-A).
	"link.lane-gbps":      func(m *model) (float64, error) { return link.LaneRateGbps, nil },
	"link.lanes":          func(m *model) (float64, error) { return link.LanesPerLink, nil },
	"link.buffer-entries": func(m *model) (float64, error) { return link.BufferEntries, nil },
	"link.flit-time":      func(m *model) (float64, error) { return ns(link.FlitTimeFull), nil },
	"link.serdes":         func(m *model) (float64, error) { return ns(link.SERDESBase), nil },
	"link.router-hop":     func(m *model) (float64, error) { return ns(link.RouterLatency()), nil },
	"link.wakeup":         func(m *model) (float64, error) { return ns(link.WakeupDefault), nil },
	"link.retrain":        func(m *model) (float64, error) { return ns(link.RetrainDefault), nil },

	// Differential ground truth: closed forms of the config under test.
	"dram.burst":     func(m *model) (float64, error) { return ns(m.dram.BurstTime()), nil },
	"eq1.read-floor": func(m *model) (float64, error) { return ns(m.dram.NominalReadLatency()), nil },
	"dram.peak-bw":   func(m *model) (float64, error) { return m.dram.PeakBandwidthBytesPerSec() / 1e9, nil },

	// Differential ground truth: tiny deterministic simulations.
	"sim.read-latency-d1": func(m *model) (float64, error) { return measureReadLatency(m, 1) },
	"sim.read-latency-d2": func(m *model) (float64, error) { return measureReadLatency(m, 2) },
	"sim.read-latency-d4": func(m *model) (float64, error) { return measureReadLatency(m, 4) },
	"idle.watts-high": func(m *model) (float64, error) {
		return measureIdleWatts(m, topology.TernaryTree)
	},
	"idle.watts-low": func(m *model) (float64, error) {
		return measureIdleWatts(m, topology.DaisyChain)
	},
	"roo.residency-ratio": measureResidencyRatio,
}

// ns converts a simulated duration to float nanoseconds.
func ns(d sim.Duration) float64 { return sim.Time(d).Nanoseconds() }

// netFor builds a network of n modules under the model under test.
func netFor(m *model, kind topology.Kind, n int, roo bool) (*sim.Kernel, *network.Network, error) {
	k := sim.NewKernel()
	topo, err := topology.Build(kind, n)
	if err != nil {
		return nil, nil, err
	}
	cfg := network.DefaultConfig()
	cfg.DRAM = m.dram
	pm := m.pm
	cfg.Power = &pm
	cfg.ROO = roo
	return k, network.New(k, topo, cfg), nil
}

// measureReadLatency injects a single read to the far module of a
// depth-module daisy chain at t=0 and returns its measured end-to-end
// latency in nanoseconds. With no competing traffic the result must equal
// PredictReadLatency to the picosecond.
func measureReadLatency(m *model, depth int) (float64, error) {
	k, net, err := netFor(m, topology.DaisyChain, depth, false)
	if err != nil {
		return 0, err
	}
	done := sim.Time(-1)
	var kind packet.Kind
	net.OnReadComplete = func(p *packet.Packet) { done, kind = k.Now(), p.Kind }
	net.InjectRead(uint64(depth-1)*net.Cfg.ChunkBytes, 0)
	k.RunAll()
	if done < 0 {
		return 0, fmt.Errorf("read to depth-%d module never completed", depth)
	}
	if kind != packet.ReadResp {
		return 0, fmt.Errorf("read to depth-%d module completed as %v", depth, kind)
	}
	return ns(sim.Duration(done)), nil
}

// idleWindow is the zero-traffic integration interval. Any positive value
// measures the same floor; 10us keeps the refresh-free invariant trivial
// (refresh is analytic and adds no events either way).
const idleWindow = 10 * sim.Microsecond

// measureIdleWatts integrates a single idle module (high radix under
// TernaryTree, low under DaisyChain) for idleWindow and returns the
// average total power.
func measureIdleWatts(m *model, kind topology.Kind) (float64, error) {
	k, net, err := netFor(m, kind, 1, false)
	if err != nil {
		return 0, err
	}
	s0 := net.TakeSnapshot()
	k.Run(sim.Time(idleWindow))
	s1 := net.TakeSnapshot()
	return network.IntervalPower(s0, s1).Total(), nil
}

// measureResidencyRatio cross-checks the two independent I/O energy
// views on an ROO run with sparse traffic: the link's own idle+active
// integration against the state-residency vector exported via
// link.StateTimes (on/waking/retraining at full watts, off at the 1%
// floor). The ratio must be 1 up to floating-point accumulation order.
func measureResidencyRatio(m *model) (float64, error) {
	k, net, err := netFor(m, topology.DaisyChain, 2, true)
	if err != nil {
		return 0, err
	}
	net.OnReadComplete = func(*packet.Packet) {}
	// Sparse injections: every 2us gap clears the 2048ns full-mode ROO
	// threshold, so links cycle on -> off -> waking -> on repeatedly.
	for i := 0; i < 8; i++ {
		k.Run(sim.Time(i) * 2 * sim.Microsecond)
		net.InjectRead(uint64(i%2)*net.Cfg.ChunkBytes+uint64(i*m.dram.LineBytes), 0)
	}
	k.RunAll()
	end := k.Now() + sim.Time(sim.Microsecond)
	k.Run(end)
	snap := net.TakeSnapshot()
	accounted := snap.Energy.IdleIO + snap.Energy.ActiveIO
	var predicted float64
	for i, mod := range net.Modules {
		full := mod.Params.LinkFullWatts()
		for _, l := range []*link.Link{net.Links[2*i], net.Links[2*i+1]} {
			st := l.StateTimes(end)
			on := st[link.StateOn] + st[link.StateWaking] + st[link.StateRetraining]
			predicted += full*sim.Time(on).Seconds() +
				full*link.OffPowerFraction*sim.Time(st[link.StateOff]).Seconds()
		}
	}
	if predicted == 0 {
		return 0, fmt.Errorf("residency integral is zero")
	}
	return accounted / predicted, nil
}
