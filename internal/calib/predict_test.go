package calib

import (
	"testing"

	"memnet/internal/dram"
	"memnet/internal/power"
	"memnet/internal/sim"
	"memnet/internal/topology"
)

// The closed-form latency must respond strictly monotonically to every
// timing parameter it depends on: longer tCL/tRCD can only slow a read,
// a faster vault bus can only speed it up.
func TestPredictedLatencyMonotone(t *testing.T) {
	base := dram.DefaultConfig()
	factors := []float64{0.5, 0.8, 1.0, 1.3, 2.0}
	for _, param := range []string{"tCL", "tRCD"} {
		prev := sim.Duration(-1)
		for _, f := range factors {
			cfg, err := base.Scaled(param, f)
			if err != nil {
				t.Fatal(err)
			}
			lat := PredictReadLatency(cfg, 2)
			if lat <= prev {
				t.Fatalf("%s x%g: latency %s not increasing (prev %s)", param, f, lat, prev)
			}
			prev = lat
		}
	}
	prev := sim.Duration(1 << 62)
	for _, f := range factors {
		cfg, err := base.Scaled("busGbps", f)
		if err != nil {
			t.Fatal(err)
		}
		lat := PredictReadLatency(cfg, 2)
		if lat >= prev {
			t.Fatalf("busGbps x%g: latency %s not decreasing (prev %s)", f, lat, prev)
		}
		prev = lat
	}
	// Deeper chains can only add hops.
	for depth := 2; depth <= 5; depth++ {
		if PredictReadLatency(base, depth) <= PredictReadLatency(base, depth-1) {
			t.Fatalf("latency not increasing in depth at %d", depth)
		}
	}
}

// The simulated unloaded read latency must match the closed form to the
// picosecond — for the published config and for perturbed ones.
func TestMeasuredLatencyEqualsClosedForm(t *testing.T) {
	scaled := func(param string, f float64) dram.Config {
		cfg, err := dram.DefaultConfig().Scaled(param, f)
		if err != nil {
			t.Fatal(err)
		}
		return cfg
	}
	configs := map[string]dram.Config{
		"published":    dram.DefaultConfig(),
		"tCL x1.5":     scaled("tCL", 1.5),
		"tRCD x0.7":    scaled("tRCD", 0.7),
		"busGbps x2":   scaled("busGbps", 2),
		"busGbps x0.5": scaled("busGbps", 0.5),
	}
	for name, cfg := range configs {
		m := &model{dram: cfg, pm: power.DefaultModel()}
		for depth := 1; depth <= 4; depth++ {
			got, err := measureReadLatency(m, depth)
			if err != nil {
				t.Fatalf("%s depth %d: %v", name, depth, err)
			}
			want := PredictReadLatency(cfg, depth).Nanoseconds()
			if got != want {
				t.Errorf("%s depth %d: simulated %.6f ns, closed form %.6f ns", name, depth, got, want)
			}
		}
	}
}

// The idle floor must be non-decreasing in every power-model watt figure.
func TestIdleFloorMonotoneInWatts(t *testing.T) {
	classes := []bool{true, false, true}
	prev := -1.0
	for _, w := range []float64{1, 6.7, 13.4, 20, 100} {
		pm := power.DefaultModel()
		pm.PeakWatts = w
		v := IdleFloorWatts(pm, classes)
		if v <= prev {
			t.Fatalf("PeakWatts %g: floor %g not increasing (prev %g)", w, v, prev)
		}
		prev = v
	}
	// Raising any idle fraction raises the floor too.
	for name, bump := range map[string]func(*power.Model){
		"DRAMIdleFraction":  func(m *power.Model) { m.DRAMIdleFraction *= 2 },
		"LogicIdleFraction": func(m *power.Model) { m.LogicIdleFraction *= 2 },
		"IOFraction":        func(m *power.Model) { m.IOFraction *= 1.5 },
	} {
		pm := power.DefaultModel()
		base := IdleFloorWatts(pm, classes)
		bump(&pm)
		if got := IdleFloorWatts(pm, classes); got <= base {
			t.Errorf("raising %s did not raise the idle floor: %g -> %g", name, base, got)
		}
	}
}

// A zero-traffic simulation must consume EXACTLY the closed-form idle
// floor — bit-for-bit equality of the whole breakdown, not a tolerance.
// The predictor mirrors the network's accumulation order to make that
// possible; this test is what pins that mirror.
func TestZeroTrafficEnergyExactlyIdleFloor(t *testing.T) {
	cases := []struct {
		kind topology.Kind
		n    int
	}{
		{topology.DaisyChain, 1},
		{topology.DaisyChain, 3},
		{topology.TernaryTree, 4},
		{topology.Star, 5},
	}
	const elapsed = 37 * sim.Microsecond // deliberately not round
	for _, tc := range cases {
		m := &model{dram: dram.DefaultConfig(), pm: power.DefaultModel()}
		k, net, err := netFor(m, tc.kind, tc.n, false)
		if err != nil {
			t.Fatal(err)
		}
		k.Run(sim.Time(elapsed))
		snap := net.TakeSnapshot()
		hr := make([]bool, tc.n)
		for i := range hr {
			hr[i] = net.Topo.Radix(i) == topology.HighRadix
		}
		want := IdleFloorEnergy(m.pm, hr, sim.Time(elapsed).Seconds())
		if snap.Energy != want {
			t.Errorf("%v n=%d: zero-traffic energy %+v != closed form %+v", tc.kind, tc.n, snap.Energy, want)
		}
		if snap.Energy.ActiveIO != 0 || snap.Energy.DRAMDyn != 0 || snap.Energy.LogicDyn != 0 {
			t.Errorf("%v n=%d: zero-traffic run has dynamic energy: %+v", tc.kind, tc.n, snap.Energy)
		}
	}
}
