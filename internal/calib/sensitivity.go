// Parameter-sensitivity sweeps: perturb each declared parameter ±10%
// around a fixed operating point, measure the output elasticity
// d(ln output)/d(ln param), and check it against the band the reference
// table declares. An elasticity of ~0 where the band demands otherwise
// means the parameter is dead — the config knob exists but the
// simulation never feels it.

package calib

import (
	"fmt"
	"math"
	"strings"

	"memnet/internal/core"
	"memnet/internal/dram"
	"memnet/internal/exp"
	"memnet/internal/link"
	"memnet/internal/metrics"
	"memnet/internal/power"
	"memnet/internal/sim"
	"memnet/internal/topology"
	"memnet/internal/viz"
	"memnet/internal/workload"
)

// The sweep's operating point durations. These are calibration defaults,
// independent of the experiment CLI's.
const (
	DefaultSensSimTime = 150 * sim.Microsecond
	DefaultSensWarmup  = 40 * sim.Microsecond
)

// sensProfile is the sweep's synthetic workload: an all-read ON/OFF
// burst train whose OFF gap (~3.9 us) clears the 2048 ns full-ROO idle
// threshold, so the links sleep between bursts and every burst's requests
// queue behind one wakeup. With PolicyNone there is no per-epoch mode
// controller to re-absorb a perturbed wakeup latency (the adaptive
// policies compensate by picking a different ROO mode, flattening the
// response), so the wakeup axis stays smoothly observable in average
// latency — under the paper's denser continuous mixes its signal drowns
// in queueing noise and a dead wakeup parameter would go undetected.
var sensProfile = &workload.Profile{
	Name:              "calib.sparse",
	Class:             "cloud",
	Apps:              "synthetic sparse calibration trace",
	FootprintGB:       8,
	AccessCDF:         []workload.CDFPoint{{GB: 8, Cum: 1}},
	ReadFraction:      1.0,
	TargetChannelUtil: 0.05,
	BurstPeriod:       4 * sim.Microsecond,
	BurstDuty:         0.02,
}

// sweepFactors are the perturbation steps applied to each parameter. The
// center cell (×1.00) carries no override at all, so every axis shares
// one cached run of the unperturbed operating point.
var sweepFactors = [5]float64{0.90, 0.95, 1.00, 1.05, 1.10}

// baseSpec is the unperturbed operating point under the model under test.
func baseSpec(m *model, simTime, warmup sim.Duration) (exp.Spec, error) {
	if err := sensProfile.Validate(); err != nil {
		return exp.Spec{}, err
	}
	s := exp.Spec{
		Workload: sensProfile,
		Topology: topology.DaisyChain,
		Size:     exp.Small,
		Mech:     exp.MechROO,
		Policy:   core.PolicyNone,
		SimTime:  simTime,
		Warmup:   warmup,
	}
	// A non-default model under test rides along on every cell, so the
	// sweep perturbs around *its* operating point, not the published one.
	if m.dram.Fingerprint() != dram.DefaultConfig().Fingerprint() {
		cfg := m.dram
		s.DRAM = &cfg
	}
	if def := power.DefaultModel(); m.pm.PeakWatts != def.PeakWatts {
		s.PeakWatts = m.pm.PeakWatts
	}
	return s, nil
}

// applyAxis perturbs one cell of the sweep: the band's parameter scaled
// by factor f, every other knob untouched.
func applyAxis(s *exp.Spec, m *model, param string, f float64) error {
	switch {
	case param == "link.wakeup":
		s.Wakeup = sim.Duration(float64(link.WakeupDefault)*f + 0.5)
	case param == "power.peak":
		s.PeakWatts = m.pm.PeakWatts * f
	case strings.HasPrefix(param, "dram."):
		cfg, err := m.dram.Scaled(strings.TrimPrefix(param, "dram."), f)
		if err != nil {
			return err
		}
		s.DRAM = &cfg
	default:
		return fmt.Errorf("calib: band parameter %q has no sweep axis", param)
	}
	return nil
}

// outputOf extracts a band's observed output from one run.
func outputOf(r exp.Result, output string) float64 {
	if output == "power" {
		return r.Power.Total()
	}
	return r.AvgReadLatency.Nanoseconds()
}

// runSensitivity sweeps every band and renders the error-band figure.
// The cell set is deduplicated: all axes share the single unperturbed
// center run, so b bands cost 4b+1 simulations, executed by exp.RunSpecs
// with deterministic, jobs-independent results.
func runSensitivity(bands []Band, m *model, jobs int, simTime, warmup sim.Duration) ([]BandResult, string, error) {
	if len(bands) == 0 {
		return nil, "", nil
	}
	base, err := baseSpec(m, simTime, warmup)
	if err != nil {
		return nil, "", err
	}
	specs := []exp.Spec{base} // index 0 = shared center cell
	// cell[i][j] indexes the run for band i at sweepFactors[j].
	cell := make([][5]int, len(bands))
	for i, b := range bands {
		for j, f := range sweepFactors {
			if f == 1.0 {
				cell[i][j] = 0
				continue
			}
			s := base
			if err := applyAxis(&s, m, b.Param, f); err != nil {
				return nil, "", err
			}
			cell[i][j] = len(specs)
			specs = append(specs, s)
		}
	}
	results, err := exp.RunSpecs(specs, jobs)
	if err != nil {
		return nil, "", fmt.Errorf("calib: sensitivity sweep: %w", err)
	}
	out := make([]BandResult, len(bands))
	dump := &metrics.Dump{Ticks: len(sweepFactors)}
	for i, b := range bands {
		ys := make([]float64, len(sweepFactors))
		for j := range sweepFactors {
			ys[j] = outputOf(results[cell[i][j]], b.Output)
		}
		e := math.NaN()
		if lo, hi := ys[0], ys[len(ys)-1]; lo > 0 && hi > 0 {
			e = math.Log(hi/lo) / math.Log(sweepFactors[len(sweepFactors)-1]/sweepFactors[0])
		}
		out[i] = BandResult{
			Band:       b,
			Ys:         ys,
			Elasticity: e,
			OK:         !math.IsNaN(e) && e >= b.Min && e <= b.Max,
		}
		dump.Series = append(dump.Series, metrics.SeriesDump{
			Name:    b.Param + " -> " + b.Output,
			Kind:    "gauge",
			Samples: ys,
		})
	}
	figure := "sensitivity figure: each series is the measured output as its parameter\n" +
		"sweeps x0.90, x0.95, x1.00, x1.05, x1.10 (ticks left to right; latency in ns, power in W)\n" +
		viz.RenderTimeSeries(dump)
	return out, figure, nil
}
