package calib

import (
	"strings"
	"testing"
)

func TestDefaultReferenceParses(t *testing.T) {
	ref := Default()
	if len(ref.Rows) == 0 || len(ref.Bands) == 0 {
		t.Fatalf("embedded reference is empty: %d rows, %d bands", len(ref.Rows), len(ref.Bands))
	}
	if _, ok := ref.Row("dram.tCL"); !ok {
		t.Fatal("embedded reference lost the dram.tCL row")
	}
	if _, ok := ref.Row("no-such-row"); ok {
		t.Fatal("Row returned a hit for a name not in the table")
	}
	if same := Default(); same != ref {
		t.Fatal("Default is not memoized")
	}
}

func TestParseRejectsMalformedTables(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"unknown field", `{"rows": [{"name": "a", "value": 1, "typo": true}]}`, "typo"},
		{"trailing data", `{"rows": [{"name": "a", "value": 1}]} {"rows": []}`, "trailing data"},
		{"duplicate row", `{"rows": [{"name": "a", "value": 1}, {"name": "a", "value": 2}]}`, "duplicate row"},
		{"unnamed row", `{"rows": [{"value": 1}]}`, "no name"},
		{"negative tol", `{"rows": [{"name": "a", "value": 1, "tol_rel": -0.5}]}`, "negative tolerance"},
		{"non-finite value", `{"rows": [{"name": "a", "value": 1e999}]}`, "parse"},
		{"band dup vs row", `{"rows": [{"name": "a", "value": 1}], "bands": [{"name": "a", "param": "p", "output": "latency"}]}`, "duplicate"},
		{"band bad output", `{"bands": [{"name": "b", "param": "p", "output": "altitude"}]}`, "not latency or power"},
		{"band no param", `{"bands": [{"name": "b", "output": "latency"}]}`, "needs both"},
		{"band inverted", `{"bands": [{"name": "b", "param": "p", "output": "latency", "min": 2, "max": 1}]}`, "inverted"},
		{"not json", `]`, "parse"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.in))
			if err == nil {
				t.Fatalf("Parse accepted %s", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestParseAcceptsMinimalTable(t *testing.T) {
	ref, err := Parse([]byte(`{"rows": [{"name": "x", "source": "s", "value": 2, "tol_rel": 0.1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	row, ok := ref.Row("x")
	if !ok || row.Value != 2 || row.TolRel != 0.1 {
		t.Fatalf("round-trip lost the row: %+v (ok=%v)", row, ok)
	}
}
