package calib

import (
	"math"
	"strings"
	"testing"

	"memnet/internal/dram"
	"memnet/internal/power"
)

// Harness misuse must be an error, not a silently-empty report.
func TestEvaluateRejectsBrokenInput(t *testing.T) {
	bad := dram.Config{}
	if _, err := Evaluate(Options{DRAM: &bad, SkipSensitivity: true}); err == nil {
		t.Error("invalid DRAM config accepted")
	}

	ref := &Reference{Rows: []Row{{Name: "no.such.quantity", Source: "x", Value: 1}}}
	if _, err := Evaluate(Options{Ref: ref, SkipSensitivity: true}); err == nil ||
		!strings.Contains(err.Error(), "no evaluator") {
		t.Errorf("unknown reference row not rejected (err=%v)", err)
	}

	ref = &Reference{Bands: []Band{{Name: "b", Param: "dram.bogus", Output: "latency", Min: 0, Max: 1}}}
	if _, err := Evaluate(Options{Ref: ref}); err == nil ||
		!strings.Contains(err.Error(), "unknown scalable parameter") {
		t.Errorf("unknown sweep axis not rejected (err=%v)", err)
	}
}

// A sweep of a perturbed model must carry the perturbation into every
// cell: with the model under test at non-published tCL and PeakWatts,
// the power.peak axis still has elasticity exactly 1 (all watt figures
// scale together), which only holds if the overrides actually rode
// along on each sweep cell.
func TestSweepCarriesModelOverrides(t *testing.T) {
	if testing.Short() {
		t.Skip("sensitivity sweep in -short mode")
	}
	cfg, err := dram.DefaultConfig().Scaled("tCL", 1.5)
	if err != nil {
		t.Fatal(err)
	}
	pm := power.DefaultModel()
	pm.PeakWatts = 10
	ref := &Reference{Bands: []Band{{Name: "peak", Param: "power.peak", Output: "power", Min: 0.999, Max: 1.001}}}
	rep, err := Evaluate(Options{Ref: ref, DRAM: &cfg, Power: &pm})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Bands) != 1 {
		t.Fatalf("got %d bands, want 1", len(rep.Bands))
	}
	b := rep.Bands[0]
	if !b.OK || math.Abs(b.Elasticity-1) > 1e-6 {
		t.Fatalf("power.peak elasticity %.6f under overridden model, want 1", b.Elasticity)
	}
	if rep.Figure == "" {
		t.Error("sweep produced no figure")
	}
}

// A failing report must say FAIL on the offending row and band and in
// the verdict — the calibrate CLI's exit code hangs off this rendering.
func TestRenderFailingReport(t *testing.T) {
	rep := &Report{
		SimTime: DefaultSensSimTime,
		Warmup:  DefaultSensWarmup,
		Rows: []RowResult{
			{Row: Row{Name: "good.row", Source: "Table I", Value: 1, Unit: "ns"}, Got: 1, Err: 0, OK: true},
			{Row: Row{Name: "bad.row", Source: "Table I", Value: 1, Unit: "ns", TolRel: 0.01}, Got: 2, Err: 1, OK: false},
		},
		Bands: []BandResult{
			{Band: Band{Name: "bad.band", Param: "dram.tCL", Output: "latency", Min: 0, Max: 0.1},
				Ys: []float64{1, 1, 1, 1, 9}, Elasticity: 7, OK: false},
		},
	}
	if rep.Pass() {
		t.Fatal("report with failures passes")
	}
	out := rep.Render()
	for _, want := range []string{"bad.row", "bad.band", "FAIL", "verdict: FAIL"} {
		if !strings.Contains(out, want) {
			t.Errorf("failing report is missing %q:\n%s", want, out)
		}
	}
}
