package calib

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"memnet/internal/dram"
	"memnet/internal/power"
	"memnet/internal/sim"
)

// defaultModel is the published configuration under test.
func defaultModel() *model {
	return &model{dram: dram.DefaultConfig(), pm: power.DefaultModel()}
}

// dramFieldRows maps every dram.Config field to the reference row that
// pins it. TestDRAMConfigFullyPinned walks the struct by reflection, so
// adding a field without a reference row fails the suite.
var dramFieldRows = map[string]string{
	"Vaults":     "dram.vaults",
	"Banks":      "dram.banks",
	"QueueDepth": "dram.queue-depth",
	"LineBytes":  "dram.line-bytes",
	"BusBits":    "dram.bus-bits",
	"BusGbps":    "dram.bus-gbps",
	"TCL":        "dram.tCL",
	"TRCD":       "dram.tRCD",
	"TRAS":       "dram.tRAS",
	"TRP":        "dram.tRP",
	"TRRD":       "dram.tRRD",
	"TWR":        "dram.tWR",
	"TREFI":      "dram.tREFI",
	"TRFC":       "dram.tRFC",
	"Page":       "dram.page-policy",
	"RowBytes":   "dram.row-bytes",
}

func TestDRAMConfigFullyPinned(t *testing.T) {
	ref := Default()
	typ := reflect.TypeOf(dram.Config{})
	for i := 0; i < typ.NumField(); i++ {
		field := typ.Field(i).Name
		rowName, ok := dramFieldRows[field]
		if !ok {
			t.Errorf("dram.Config field %s has no reference row: add it to reference.json and dramFieldRows", field)
			continue
		}
		if _, ok := ref.Row(rowName); !ok {
			t.Errorf("dram.Config field %s maps to %q, which is not in reference.json", field, rowName)
		}
	}
	if len(dramFieldRows) != typ.NumField() {
		t.Errorf("dramFieldRows has %d entries for %d dram.Config fields (stale mapping?)", len(dramFieldRows), typ.NumField())
	}
}

// Every published constant must pin exactly: the table-driven form of
// "don't edit Table I without the reference noticing". Failure messages
// name the published source row so a drifted constant is traceable.
func TestConstantPinning(t *testing.T) {
	m := defaultModel()
	for _, row := range Default().Rows {
		eval, ok := evaluators[row.Name]
		if !ok {
			t.Errorf("row %q (%s) has no evaluator", row.Name, row.Source)
			continue
		}
		got, err := eval(m)
		if err != nil {
			t.Errorf("row %q (%s): %v", row.Name, row.Source, err)
			continue
		}
		if res := scoreRow(row, got); !res.OK {
			t.Errorf("row %q: simulator value %.10g disagrees with %s published value %.10g (rel err %.3g > tol %.3g)",
				row.Name, got, row.Source, row.Value, res.Err, row.TolRel)
		}
	}
}

// The evaluator set and the reference table must be in bijection.
func TestEvaluatorsMatchReference(t *testing.T) {
	ref := Default()
	for _, row := range ref.Rows {
		if _, ok := evaluators[row.Name]; !ok {
			t.Errorf("reference row %q has no evaluator", row.Name)
		}
	}
	for name := range evaluators {
		if _, ok := ref.Row(name); !ok {
			t.Errorf("evaluator %q has no reference row", name)
		}
	}
}

func TestEvaluatePassesOnPublishedModel(t *testing.T) {
	rep, err := Evaluate(Options{SkipSensitivity: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass() {
		for _, r := range rep.Rows {
			if !r.OK {
				t.Errorf("row %q: got %.10g want %.10g (err %.3g)", r.Row.Name, r.Got, r.Row.Value, r.Err)
			}
		}
		t.Fatal("published model does not pass its own calibration")
	}
	if len(rep.Rows) != len(Default().Rows) {
		t.Fatalf("report has %d rows for %d reference rows", len(rep.Rows), len(Default().Rows))
	}
	if !rep.SensSkipped || len(rep.Bands) != 0 {
		t.Fatal("SkipSensitivity did not skip the sweep")
	}
}

// Perturbing one published timing constant must fail the calibration:
// the pinning row for the constant itself, the Eq. 1 floor derived from
// it, and every simulated end-to-end latency row.
func TestPerturbationDetected(t *testing.T) {
	cfg := dram.DefaultConfig()
	cfg.TCL += sim.Nanosecond
	rep, err := Evaluate(Options{DRAM: &cfg, SkipSensitivity: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass() {
		t.Fatal("calibration passed with tCL perturbed by 1 ns")
	}
	mustFail := []string{"dram.tCL", "eq1.read-floor", "sim.read-latency-d1", "sim.read-latency-d2", "sim.read-latency-d4"}
	failed := map[string]bool{}
	for _, r := range rep.Rows {
		if !r.OK {
			failed[r.Row.Name] = true
		}
	}
	for _, name := range mustFail {
		if !failed[name] {
			t.Errorf("row %q did not fail under tCL+1ns", name)
		}
	}
	for name := range failed {
		found := false
		for _, want := range mustFail {
			if name == want {
				found = true
			}
		}
		if !found {
			t.Errorf("unexpected row %q failed under tCL+1ns", name)
		}
	}
}

// Perturbing the power model must likewise be caught, in the static rows
// and in the simulated idle floors.
func TestPowerPerturbationDetected(t *testing.T) {
	pm := power.DefaultModel()
	pm.PeakWatts = 14.0
	rep, err := Evaluate(Options{Power: &pm, SkipSensitivity: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass() {
		t.Fatal("calibration passed with PeakWatts at 14.0 W")
	}
	failed := map[string]bool{}
	for _, r := range rep.Rows {
		if !r.OK {
			failed[r.Row.Name] = true
		}
	}
	for _, name := range []string{"power.peak-high", "power.peak-low", "idle.watts-high", "idle.watts-low"} {
		if !failed[name] {
			t.Errorf("row %q did not fail under PeakWatts=14", name)
		}
	}
}

// scoreRow's zero-value rule: relative error when the published value is
// nonzero, absolute when it is zero.
func TestScoreRowZeroValue(t *testing.T) {
	r := scoreRow(Row{Value: 0, TolRel: 0.5}, 0.25)
	if !r.OK || r.Err != 0.25 {
		t.Fatalf("zero-value row: err=%g ok=%v, want absolute 0.25 ok", r.Err, r.OK)
	}
	r = scoreRow(Row{Value: 10, TolRel: 0.01}, 10.05)
	if !r.OK || math.Abs(r.Err-0.005) > 1e-12 {
		t.Fatalf("relative row: err=%g ok=%v, want 0.005 ok", r.Err, r.OK)
	}
}

// The rendered report must be a pure function of the model + reference.
func TestRenderDeterministic(t *testing.T) {
	render := func() string {
		rep, err := Evaluate(Options{SkipSensitivity: true})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Render()
	}
	a, b := render(), render()
	if a != b {
		t.Fatal("two identical calibration passes rendered differently")
	}
	for _, want := range []string{"model calibration report", "dram.tCL", "Table I", "verdict: PASS", "sensitivity sweep: skipped"} {
		if !strings.Contains(a, want) {
			t.Errorf("report is missing %q", want)
		}
	}
	if strings.Contains(a, "FAIL") {
		t.Error("passing report contains FAIL")
	}
}

// The full pass (sweep included) must be deterministic at any jobs value
// and pass the declared bands. This is the expensive test of the package
// (~1 s): it runs the 21-cell sweep twice.
func TestEvaluateFullDeterministicAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("sensitivity sweep in -short mode")
	}
	run := func(jobs int) string {
		rep, err := Evaluate(Options{Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Pass() {
			for _, b := range rep.Bands {
				if !b.OK {
					t.Errorf("band %q: elasticity %.4f outside [%g, %g]", b.Band.Name, b.Elasticity, b.Band.Min, b.Band.Max)
				}
			}
			for _, r := range rep.Rows {
				if !r.OK {
					t.Errorf("row %q: got %.10g want %.10g", r.Row.Name, r.Got, r.Row.Value)
				}
			}
			t.Fatal("full calibration failed")
		}
		return rep.Render()
	}
	if a, b := run(1), run(4); a != b {
		t.Fatal("report differs between -jobs 1 and -jobs 4")
	}
}
