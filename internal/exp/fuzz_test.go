package exp

import (
	"bytes"
	"testing"
)

// FuzzLoadBatch: any byte string either fails to parse with an error
// (never a panic), or yields specs whose identity keys are stable — the
// same bytes parsed twice produce the same runnable sweep. Key() touches
// every resolved field, so it doubles as a nil-safety probe on the
// parsed specs.
func FuzzLoadBatch(f *testing.F) {
	for _, seed := range []string{
		`{"runs":[{"workload":"mixB"}]}`,
		`{"runs":[{"workload":"mixA","topology":"daisychain","size":"big",` +
			`"mechanism":"VWL","policy":"unaware","alpha":0.05,` +
			`"simtime":"60us","warmup":"20us","wakeup_ns":20,"interleave":true}]}`,
		`{"runs":[{"workload":"mixB","policy":"aware","alpha":0.02},` +
			`{"workload":"mixC","mechanism":"DVFS+ROO","policy":"none"}]}`,
		`{"runs":[]}`,
		`{"runs":[{"workload":"nosuch"}]}`,
		`{"runs":[{"workload":"mixB","policy":"aware","alpha":0}]}`,
		`{"runs":[{"workload":"mixB","simtime":"-4us"}]}`,
		`{"extra":true}`,
		`{"runs":`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		specs, err := LoadBatch(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(specs) == 0 {
			t.Fatal("LoadBatch returned no specs and no error")
		}
		keys := make([]string, len(specs))
		for i, s := range specs {
			keys[i] = s.Key()
		}
		again, err := LoadBatch(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("second parse of accepted input failed: %v", err)
		}
		if len(again) != len(specs) {
			t.Fatalf("parse is unstable: %d specs then %d", len(specs), len(again))
		}
		for i, s := range again {
			if s.Key() != keys[i] {
				t.Errorf("run %d: key changed across parses: %q vs %q", i, keys[i], s.Key())
			}
		}
	})
}
