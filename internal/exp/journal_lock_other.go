//go:build !unix

package exp

// lockJournal is a no-op where flock is unavailable; the journal then
// relies on the caller not sharing paths across processes.
func lockJournal(fd uintptr) error { return nil }
