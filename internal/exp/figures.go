package exp

import (
	"fmt"
	"strings"

	"memnet/internal/core"
	"memnet/internal/dram"
	"memnet/internal/link"
	"memnet/internal/power"
	"memnet/internal/sim"
	"memnet/internal/stats"
	"memnet/internal/topology"
	"memnet/internal/workload"
)

// Sweep axes shared by the figure generators, in the paper's order.
var (
	Sizes     = []NetworkSize{Small, Big}
	Alphas    = []float64{0.025, 0.05}
	MainMechs = []Mech{MechVWL, MechROO, MechVWLROO}
	SensMechs = []Mech{MechDVFS, MechROO, MechDVFSROO}
)

// profiles returns the workload set figures sweep: Runner.Workloads when
// set (tests use a reduced set), else all 14 paper workloads.
func (r *Runner) profiles() []*workload.Profile {
	if len(r.Workloads) > 0 {
		return r.Workloads
	}
	return workload.Profiles
}

// wlNames lists the swept workloads in figure order.
func (r *Runner) wlNames() []string {
	ps := r.profiles()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// fpSpec builds the full-power spec for one cell of the sweep.
func fpSpec(wl *workload.Profile, topo topology.Kind, size NetworkSize) Spec {
	return Spec{Workload: wl, Topology: topo, Size: size, Mech: MechFP, Policy: core.PolicyNone}
}

// avgOverWorkloads runs f for every swept workload and averages.
func (r *Runner) avgOverWorkloads(f func(wl *workload.Profile) float64) float64 {
	ps := r.profiles()
	var sum float64
	for _, wl := range ps {
		sum += f(wl)
	}
	return sum / float64(len(ps))
}

// TableI prints the DRAM array parameters in use (Table I).
func TableI(r *Runner) string {
	c := dram.DefaultConfig()
	t := NewTable("Table I: HMC DRAM array parameters", "parameter", "value")
	t.Row("Capacity per HMC / vaults per HMC", "4GB / 32")
	t.Row("Vault data rate / IO width / buffer entries",
		fmt.Sprintf("%.0fGbps / x%d / %d", c.BusGbps, c.BusBits, c.QueueDepth))
	t.Row("page policy / line address mapping", "close / interleaved")
	t.Row("tCL/tRCD/tRAS/tRP/tRRD/tWR (ns)",
		fmt.Sprintf("%.0f/%.0f/%.0f/%.0f/%.0f/%.0f",
			c.TCL.Nanoseconds(), c.TRCD.Nanoseconds(), c.TRAS.Nanoseconds(),
			c.TRP.Nanoseconds(), c.TRRD.Nanoseconds(), c.TWR.Nanoseconds()))
	t.Row("nominal read latency", c.NominalReadLatency().String())
	return t.String()
}

// TableII documents the substituted processor front end (Table II).
func TableII(r *Runner) string {
	t := NewTable("Table II: processor model (substituted front end; see DESIGN.md)",
		"parameter", "value")
	t.Row("paper", "16 cores, 3GHz, 2-issue OOO, 64 ROB, 64B lines, 32MB L3")
	t.Row("this repo", "closed-loop limited-MLP issue engine, 16 cores")
	t.Row("issue slots", "calibrated per workload by Little's law to hit")
	t.Row("", "the workload's Fig. 9 channel utilization")
	t.Row("writes", "posted (off the critical path), 2x slot credits")
	for _, wl := range r.profiles() {
		spec := fpSpec(wl, topology.Star, Small)
		res := r.Run(spec)
		t.Row("  slots for "+wl.Name, fmt.Sprintf("%d", res.Slots))
	}
	return t.String()
}

// TableIII prints the mixed workload compositions (Table III).
func TableIII(r *Runner) string {
	t := NewTable("Table III: workload composition", "workload", "class", "composition (substituted profile)")
	for _, wl := range r.profiles() {
		t.Row(wl.Name, wl.Class, wl.Apps)
	}
	return t.String()
}

// Fig4 prints each workload's cumulative access distribution by address
// range, the synthetic counterpart of Fig. 4.
func Fig4(r *Runner) string {
	t := NewTable("Figure 4: cumulative % of memory accesses by address range (GB)",
		append([]string{"GB"}, r.wlNames()...)...)
	for gb := 0; gb <= 40; gb += 4 {
		row := []string{fmt.Sprintf("%d", gb)}
		for _, wl := range r.profiles() {
			row = append(row, pct(wl.CDFAt(float64(gb))))
		}
		t.Row(row...)
	}
	return t.String()
}

// Fig5 prints the average full-power per-HMC power breakdown per topology
// and study size, averaged across workloads (Fig. 5).
func Fig5(r *Runner) string {
	t := NewTable("Figure 5: average power breakdown of an HMC in a full-power network (W)",
		"config", "idleIO", "activeIO", "logicLeak", "logicDyn", "dramLeak", "dramDyn", "total")
	for _, size := range Sizes {
		var avg power.Breakdown
		for _, topo := range topology.Kinds {
			var acc power.Breakdown
			for _, wl := range r.profiles() {
				acc.Add(r.Run(fpSpec(wl, topo, size)).PerHMC)
			}
			acc = acc.Scale(1 / float64(len(r.profiles())))
			avg.Add(acc)
			t.Rowf(fmt.Sprintf("%s:%s", size, topo), "%.2f",
				acc.IdleIO, acc.ActiveIO, acc.LogicLeak, acc.LogicDyn,
				acc.DRAMLeak, acc.DRAMDyn, acc.Total())
		}
		avg = avg.Scale(1 / float64(len(topology.Kinds)))
		t.Rowf(size.String()+":avg", "%.2f",
			avg.IdleIO, avg.ActiveIO, avg.LogicLeak, avg.LogicDyn,
			avg.DRAMLeak, avg.DRAMDyn, avg.Total())
	}
	return t.String()
}

// Fig6 prints the average number of links traversed per memory access.
func Fig6(r *Runner) string {
	cols := []string{"config"}
	cols = append(cols, r.wlNames()...)
	cols = append(cols, "avg")
	t := NewTable("Figure 6: links traversed per memory access", cols...)
	for _, size := range Sizes {
		for _, topo := range topology.Kinds {
			row := []string{fmt.Sprintf("%s:%s", size, topo)}
			var sum float64
			for _, wl := range r.profiles() {
				v := r.Run(fpSpec(wl, topo, size)).LinksPerAccess
				sum += v
				row = append(row, fmt.Sprintf("%.1f", v))
			}
			row = append(row, fmt.Sprintf("%.1f", sum/float64(len(r.profiles()))))
			t.Row(row...)
		}
	}
	return t.String()
}

// Fig8 prints idle I/O power as a fraction of total network power per
// workload under full power.
func Fig8(r *Runner) string {
	cols := []string{"config"}
	cols = append(cols, r.wlNames()...)
	cols = append(cols, "avg")
	t := NewTable("Figure 8: idle I/O power / total network power (full power)", cols...)
	for _, size := range Sizes {
		for _, topo := range topology.Kinds {
			row := []string{fmt.Sprintf("%s:%s", size, topo)}
			var sum float64
			for _, wl := range r.profiles() {
				v := r.Run(fpSpec(wl, topo, size)).IdleIOFraction()
				sum += v
				row = append(row, pct(v))
			}
			row = append(row, pct(sum/float64(len(r.profiles()))))
			t.Row(row...)
		}
	}
	return t.String()
}

// Fig9 prints channel and average link utilization per workload.
func Fig9(r *Runner) string {
	cols := []string{"config"}
	cols = append(cols, r.wlNames()...)
	cols = append(cols, "avg")
	t := NewTable("Figure 9: channel (chan) and average link (link) utilization", cols...)
	for _, kind := range []string{"chan", "link"} {
		for _, size := range Sizes {
			for _, topo := range topology.Kinds {
				row := []string{fmt.Sprintf("%s:%s:%s", kind, size, topo)}
				var sum float64
				for _, wl := range r.profiles() {
					res := r.Run(fpSpec(wl, topo, size))
					v := res.ChannelUtil
					if kind == "link" {
						v = res.LinkUtil
					}
					sum += v
					row = append(row, pct(v))
				}
				row = append(row, pct(sum/float64(len(r.profiles()))))
				t.Row(row...)
			}
		}
	}
	return t.String()
}

// managedSpec builds one managed-run spec.
func managedSpec(wl *workload.Profile, topo topology.Kind, size NetworkSize,
	mech Mech, pol core.PolicyKind, alpha float64) Spec {
	return Spec{Workload: wl, Topology: topo, Size: size, Mech: mech, Policy: pol, Alpha: alpha}
}

// Fig11 prints per-HMC power under network-unaware management (Fig. 11).
func Fig11(r *Runner) string {
	cols := []string{"config", "FP"}
	for _, mech := range MainMechs {
		for _, a := range Alphas {
			cols = append(cols, fmt.Sprintf("%.1f%% %s", 100*a, mech))
		}
	}
	t := NewTable("Figure 11: power per HMC under network-unaware management (W)", cols...)
	for _, size := range Sizes {
		avgRow := make([]float64, len(cols)-1)
		for _, topo := range topology.Kinds {
			vals := []float64{r.avgOverWorkloads(func(wl *workload.Profile) float64 {
				return r.Run(fpSpec(wl, topo, size)).PerHMC.Total()
			})}
			for _, mech := range MainMechs {
				for _, a := range Alphas {
					vals = append(vals, r.avgOverWorkloads(func(wl *workload.Profile) float64 {
						return r.Run(managedSpec(wl, topo, size, mech, core.PolicyUnaware, a)).PerHMC.Total()
					}))
				}
			}
			for i, v := range vals {
				avgRow[i] += v / float64(len(topology.Kinds))
			}
			t.Rowf(fmt.Sprintf("%s:%s", size, topo), "%.2f", vals...)
		}
		t.Rowf(size.String()+":avg", "%.2f", avgRow...)
	}
	return t.String()
}

// degStats returns the average and maximum throughput degradation across
// workloads for one (topo,size,mech,policy,alpha) cell.
func degStats(r *Runner, topo topology.Kind, size NetworkSize, mech Mech,
	pol core.PolicyKind, alpha float64) (avg, max float64) {
	var ds []float64
	for _, wl := range r.profiles() {
		res := r.Run(managedSpec(wl, topo, size, mech, pol, alpha))
		ds = append(ds, r.PerfDegradation(res))
	}
	return stats.Mean(ds), stats.Max(ds)
}

// Fig12 prints average and maximum performance overhead of
// network-unaware management vs full power (Fig. 12).
func Fig12(r *Runner) string {
	t := NewTable("Figure 12: performance degradation of network-unaware management vs full power",
		"config", "alpha", "daisychain", "ternary tree", "star", "DDRx-like", "avg", "max")
	for _, size := range Sizes {
		for _, mech := range MainMechs {
			for _, a := range Alphas {
				row := []string{fmt.Sprintf("%s:%s", size, mech), pct(a)}
				var all, maxAll float64
				for _, topo := range topology.Kinds {
					avg, max := degStats(r, topo, size, mech, core.PolicyUnaware, a)
					row = append(row, pct(avg))
					all += avg / float64(len(topology.Kinds))
					if max > maxAll {
						maxAll = max
					}
				}
				row = append(row, pct(all), pct(maxAll))
				t.Row(row...)
			}
		}
	}
	return t.String()
}

// Fig13 prints the distribution of link hours across VWL modes by link
// utilization, for unaware vs aware management on big networks (Fig. 13).
func Fig13(r *Runner) string {
	var b strings.Builder
	for _, pol := range []core.PolicyKind{core.PolicyUnaware, core.PolicyAware} {
		hist := &stats.LinkHourHist{}
		for _, topo := range topology.Kinds {
			for _, wl := range r.profiles() {
				spec := managedSpec(wl, topo, Big, MechVWL, pol, 0.05)
				spec.CollectLinkHours = true
				hist.Merge(r.Run(spec).Hist)
			}
		}
		fmt.Fprintf(&b, "Figure 13 (%s, big networks, VWL, alpha=5%%): fraction of total link hours\n%s\n",
			pol, hist)
	}
	return b.String()
}

// Fig15 prints the network-wide power reduction of network-aware vs
// network-unaware management (Fig. 15).
func Fig15(r *Runner) string {
	t := NewTable("Figure 15: network-wide power reduction, network-aware vs network-unaware",
		"config", "alpha", "daisychain", "ternary tree", "star", "DDRx-like", "avg")
	for _, size := range Sizes {
		for _, mech := range MainMechs {
			for _, a := range Alphas {
				row := []string{fmt.Sprintf("%s:%s", size, mech), pct(a)}
				var all float64
				for _, topo := range topology.Kinds {
					red := r.avgOverWorkloads(func(wl *workload.Profile) float64 {
						un := r.Run(managedSpec(wl, topo, size, mech, core.PolicyUnaware, a)).Power.Total()
						aw := r.Run(managedSpec(wl, topo, size, mech, core.PolicyAware, a)).Power.Total()
						if un == 0 {
							return 0
						}
						return 1 - aw/un
					})
					row = append(row, pct(red))
					all += red / float64(len(topology.Kinds))
				}
				row = append(row, pct(all))
				t.Row(row...)
			}
		}
	}
	return t.String()
}

// Fig16 prints power reduction vs full power by workload for big networks
// at alpha=5% (Fig. 16).
func Fig16(r *Runner) string {
	cols := []string{"scheme"}
	cols = append(cols, r.wlNames()...)
	cols = append(cols, "avg")
	t := NewTable("Figure 16: network-wide power reduction vs full power (big networks, alpha=5%)", cols...)
	for _, pol := range []core.PolicyKind{core.PolicyUnaware, core.PolicyAware} {
		for _, mech := range MainMechs {
			row := []string{fmt.Sprintf("%s:%s", mech, pol)}
			var sum float64
			for _, wl := range r.profiles() {
				var red float64
				for _, topo := range topology.Kinds {
					fp := r.Run(fpSpec(wl, topo, Big)).Power.Total()
					mg := r.Run(managedSpec(wl, topo, Big, mech, pol, 0.05)).Power.Total()
					if fp > 0 {
						red += (1 - mg/fp) / float64(len(topology.Kinds))
					}
				}
				sum += red
				row = append(row, pct(red))
			}
			row = append(row, pct(sum/float64(len(r.profiles()))))
			t.Row(row...)
		}
	}
	return t.String()
}

// Fig17 prints the average performance overhead of aware vs unaware
// management (left half) and the maximum overhead vs full power (right).
func Fig17(r *Runner) string {
	t := NewTable("Figure 17: performance overhead of network-aware management",
		"config", "alpha", "avg vs unaware", "max vs full power")
	for _, size := range Sizes {
		for _, mech := range MainMechs {
			for _, a := range Alphas {
				var avgDelta, maxFP float64
				for _, topo := range topology.Kinds {
					for _, wl := range r.profiles() {
						aw := r.Run(managedSpec(wl, topo, size, mech, core.PolicyAware, a))
						un := r.Run(managedSpec(wl, topo, size, mech, core.PolicyUnaware, a))
						dAw := r.PerfDegradation(aw)
						dUn := r.PerfDegradation(un)
						avgDelta += (dAw - dUn) / float64(len(topology.Kinds)*len(r.profiles()))
						if dAw > maxFP {
							maxFP = dAw
						}
					}
				}
				t.Row(fmt.Sprintf("%s:%s", size, mech), pct(a), pct(avgDelta), pct(maxFP))
			}
		}
	}
	return t.String()
}

// Fig18 prints the DVFS and 20 ns ROO sensitivity study at alpha=5%:
// power reduction vs full power and performance degradation (Fig. 18).
func Fig18(r *Runner) string {
	t := NewTable("Figure 18: sensitivity (DVFS links, 20ns ROO; alpha=5%)",
		"config", "scheme", "power reduction vs FP", "perf degradation")
	for _, size := range Sizes {
		for _, mech := range SensMechs {
			for _, pol := range []core.PolicyKind{core.PolicyUnaware, core.PolicyAware} {
				var red, deg float64
				for _, topo := range topology.Kinds {
					for _, wl := range r.profiles() {
						spec := managedSpec(wl, topo, size, mech, pol, 0.05)
						spec.Wakeup = link.WakeupSensitivity
						res := r.Run(spec)
						fp := r.FPBaseline(spec)
						if fp.Power.Total() > 0 {
							red += (1 - res.Power.Total()/fp.Power.Total()) /
								float64(len(topology.Kinds)*len(r.profiles()))
						}
						deg += r.PerfDegradation(res) / float64(len(topology.Kinds)*len(r.profiles()))
					}
				}
				name := mech.String()
				if mech.ROO {
					name = strings.Replace(name, "ROO", "ROO20", 1)
				} else if mech.BW == link.MechNone {
					name = "ROO20"
				}
				t.Row(fmt.Sprintf("%s:%s", size, name), pol.String(), pct(red), pct(deg))
			}
		}
	}
	return t.String()
}

// AlphaSweep quantifies §V-C's diminishing-returns argument: sweeping α
// buys rapidly less power for linearly more performance. Four
// representative workloads on star/daisychain, big networks, VWL+ROO.
func AlphaSweep(r *Runner) string {
	alphas := []float64{0.0125, 0.025, 0.05, 0.10, 0.20, 0.30}
	wls := []string{"sp.D", "mixB", "mg.D", "mixC"}
	topos := []topology.Kind{topology.DaisyChain, topology.Star}
	t := NewTable("Alpha sweep (big networks, VWL+ROO, avg of sp.D/mixB/mg.D/mixC on daisychain+star)",
		"alpha", "unaware saving", "unaware deg", "aware saving", "aware deg")
	for _, a := range alphas {
		var saving, deg [2]float64
		n := 0
		for _, name := range wls {
			wl, err := workload.ByName(name)
			if err != nil {
				continue
			}
			for _, topo := range topos {
				for pi, pol := range []core.PolicyKind{core.PolicyUnaware, core.PolicyAware} {
					spec := managedSpec(wl, topo, Big, MechVWLROO, pol, a)
					res := r.Run(spec)
					fp := r.FPBaseline(spec)
					if fp.Power.Total() > 0 {
						saving[pi] += 1 - res.Power.Total()/fp.Power.Total()
					}
					deg[pi] += r.PerfDegradation(res)
				}
				n++
			}
		}
		t.Row(pct(a), pct(saving[0]/float64(n)), pct(deg[0]/float64(n)),
			pct(saving[1]/float64(n)), pct(deg[1]/float64(n)))
	}
	return t.String()
}

// ScalingStudy is an extension: how per-HMC power, hop counts and idle-I/O
// share scale with network size for each topology at a fixed traffic
// profile — the capacity-scaling argument of §I/§II made quantitative.
func ScalingStudy(r *Runner) string {
	wl, err := workload.ByName("is.D") // largest footprint: up to 33 modules big
	if err != nil {
		panic(err)
	}
	t := NewTable("Scaling study (is.D, full power, big mapping): cost of growing each topology",
		"topology", "modules", "maxHops", "links/acc", "W/HMC", "idleIO share")
	for _, kind := range topology.Kinds {
		for _, gb := range []int{4, 12, 22, 33} {
			prof := *wl
			prof.FootprintGB = gb
			// Truncate the CDF at the reduced footprint.
			prof.AccessCDF = []workload.CDFPoint{
				{GB: float64(gb) / 2, Cum: 0.6},
				{GB: float64(gb), Cum: 1},
			}
			topo, err := topology.Build(kind, prof.Modules(1))
			if err != nil {
				panic(err)
			}
			res := r.Run(Spec{Workload: &prof, Topology: kind, Size: Big})
			t.Row(kind.String(), fmt.Sprintf("%d", res.Modules),
				fmt.Sprintf("%d", topo.MaxDepth()),
				fmt.Sprintf("%.1f", res.LinksPerAccess),
				fmt.Sprintf("%.2f", res.PerHMC.Total()),
				pct(res.IdleIOFraction()))
		}
	}
	return t.String()
}

// SeedStudy is a robustness extension: the headline cell re-run under five
// different workload seeds, reporting the spread — evidence the fixed-seed
// methodology isn't cherry-picked.
func SeedStudy(r *Runner) string {
	wl, err := workload.ByName("mg.D")
	if err != nil {
		panic(err)
	}
	t := NewTable("Seed robustness (mg.D, big star, VWL+ROO, aware, alpha=5%)",
		"seed", "power saving vs FP", "perf degradation")
	var savings, degs []float64
	for salt := uint64(0); salt < 5; salt++ {
		spec := managedSpec(wl, topology.Star, Big, MechVWLROO, core.PolicyAware, 0.05)
		spec.SeedSalt = salt
		res := r.Run(spec)
		fp := r.FPBaseline(res.Spec)
		saving := 1 - res.Power.Total()/fp.Power.Total()
		deg := r.PerfDegradation(res)
		savings = append(savings, saving)
		degs = append(degs, deg)
		t.Row(fmt.Sprintf("%d", salt), pct(saving), pct(deg))
	}
	t.Row("spread", pct(stats.Max(savings)-minOf(savings)), pct(stats.Max(degs)-minOf(degs)))
	return t.String()
}

// minOf returns the minimum of a non-empty slice.
func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// StaticStudy reproduces §VII-A: static fat/tapered selection with
// page-interleaved mapping vs network-aware management at alpha=30%, on
// big networks with the VWL model.
func StaticStudy(r *Runner) string {
	var degs, awDegs []float64
	var statPow, awPow, fpPow float64
	n := 0
	for _, topo := range topology.Kinds {
		for _, wl := range r.profiles() {
			stSpec := Spec{Workload: wl, Topology: topo, Size: Big, Mech: MechVWL,
				Policy: core.PolicyStatic, Interleave: true}
			st := r.Run(stSpec)
			aw := r.Run(managedSpec(wl, topo, Big, MechVWL, core.PolicyAware, 0.30))
			fp := r.FPBaseline(stSpec)
			degs = append(degs, r.PerfDegradation(st))
			awDegs = append(awDegs, r.PerfDegradation(aw))
			statPow += st.Power.Total()
			awPow += aw.Power.Total()
			fpPow += fp.Power.Total()
			n++
		}
	}
	t := NewTable("Section VII-A: static fat/tapered+interleave vs network-aware (alpha=30%), big networks, VWL",
		"metric", "static+interleave", "network-aware a=30%")
	t.Row("avg perf overhead", pct(stats.Mean(degs)), pct(stats.Mean(awDegs)))
	t.Row("worst-case perf overhead", pct(stats.Max(degs)), pct(stats.Max(awDegs)))
	t.Row("avg top-quarter worst-case", pct(stats.TopQuartileMean(degs)), pct(stats.TopQuartileMean(awDegs)))
	t.Row("avg network power (W)", watts(statPow/float64(n)), watts(awPow/float64(n)))
	t.Row("power vs static", "-", pct(1-awPow/statPow))
	t.Row("avg full-power power (W)", watts(fpPow/float64(n)), "")
	return t.String()
}

// Summary prints the paper's headline numbers next to the measured ones.
func Summary(r *Runner) string {
	t := NewTable("Headline comparison (paper -> measured)", "metric", "paper", "measured")
	// Idle I/O share of total power at full power.
	for _, size := range Sizes {
		var v float64
		for _, topo := range topology.Kinds {
			v += r.avgOverWorkloads(func(wl *workload.Profile) float64 {
				return r.Run(fpSpec(wl, topo, size)).IdleIOFraction()
			}) / float64(len(topology.Kinds))
		}
		paper := "53%"
		if size == Big {
			paper = "67%"
		}
		t.Row("idle I/O / total power, FP "+size.String(), paper, pct(v))
	}
	// I/O power reduction of unaware vs FP, and aware vs unaware.
	for _, size := range Sizes {
		var unIO, awVsUn float64
		cells := 0
		for _, topo := range topology.Kinds {
			for _, mech := range MainMechs {
				for _, a := range Alphas {
					for _, wl := range r.profiles() {
						fp := r.Run(fpSpec(wl, topo, size)).Power.IO()
						un := r.Run(managedSpec(wl, topo, size, mech, core.PolicyUnaware, a)).Power.IO()
						aw := r.Run(managedSpec(wl, topo, size, mech, core.PolicyAware, a)).Power.IO()
						if fp > 0 {
							unIO += 1 - un/fp
						}
						if un > 0 {
							awVsUn += 1 - aw/un
						}
						cells++
					}
				}
			}
		}
		unIO /= float64(cells)
		awVsUn /= float64(cells)
		paperUn, paperAw := "21%", "17%"
		if size == Big {
			paperUn, paperAw = "32%", "29%"
		}
		t.Row("unaware I/O power reduction, "+size.String(), paperUn, pct(unIO))
		t.Row("aware extra I/O power reduction, "+size.String(), paperAw, pct(awVsUn))
	}
	return t.String()
}

// Fig18 et al. use the sensitivity wakeup; expose the default simulated
// interval in the report header.
func ReportHeader(r *Runner) string {
	return fmt.Sprintf("simulated interval: %s after %s warmup (paper: 10ms; override with -simtime)\n",
		sim.Time(r.SimTime), sim.Time(r.Warmup))
}
