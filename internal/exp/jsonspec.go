package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"memnet/internal/core"
	"memnet/internal/sim"
	"memnet/internal/topology"
	"memnet/internal/workload"
)

// SpecJSON is the declarative (file-friendly) form of a Spec, used by
// `memnetsim -config`. All fields are strings/numbers so configuration
// files stay readable:
//
//	{
//	  "runs": [
//	    {"workload": "mixB", "topology": "star", "size": "small",
//	     "mechanism": "VWL+ROO", "policy": "aware", "alpha": 0.05,
//	     "simtime": "400us", "warmup": "100us"}
//	  ]
//	}
type SpecJSON struct {
	Workload   string  `json:"workload"`
	Topology   string  `json:"topology"`
	Size       string  `json:"size"`
	Mechanism  string  `json:"mechanism"`
	Policy     string  `json:"policy"`
	Alpha      float64 `json:"alpha"`
	WakeupNS   int     `json:"wakeup_ns"`
	SimTime    string  `json:"simtime"`
	Warmup     string  `json:"warmup"`
	Interleave bool    `json:"interleave"`
}

// BatchJSON is a config file: a list of runs.
type BatchJSON struct {
	Runs []SpecJSON `json:"runs"`
}

// ParseMech resolves the paper's mechanism labels.
func ParseMech(s string) (Mech, error) {
	for _, m := range []Mech{MechFP, MechVWL, MechROO, MechVWLROO, MechDVFS, MechDVFSROO} {
		if m.String() == s {
			return m, nil
		}
	}
	return Mech{}, fmt.Errorf("exp: unknown mechanism %q (FP, VWL, ROO, VWL+ROO, DVFS, DVFS+ROO)", s)
}

// ParsePolicy resolves policy labels (short and long forms).
func ParsePolicy(s string) (core.PolicyKind, error) {
	switch s {
	case "none", "fp", "full-power":
		return core.PolicyNone, nil
	case "unaware", "network-unaware":
		return core.PolicyUnaware, nil
	case "aware", "network-aware":
		return core.PolicyAware, nil
	case "static":
		return core.PolicyStatic, nil
	}
	return 0, fmt.Errorf("exp: unknown policy %q (none, unaware, aware, static)", s)
}

// ParseSize resolves the study size.
func ParseSize(s string) (NetworkSize, error) {
	switch s {
	case "small", "":
		return Small, nil
	case "big":
		return Big, nil
	}
	return 0, fmt.Errorf("exp: unknown size %q (small, big)", s)
}

// ParseSimDuration converts "400us"-style strings to simulated time.
func ParseSimDuration(s string) (sim.Duration, error) {
	if s == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	return sim.Duration(d.Nanoseconds()) * sim.Nanosecond, nil
}

// ToSpec resolves the declarative form.
func (sj SpecJSON) ToSpec() (Spec, error) {
	var spec Spec
	wl, err := workload.ByName(sj.Workload)
	if err != nil {
		return spec, err
	}
	spec.Workload = wl
	if sj.Topology == "" {
		sj.Topology = "star"
	}
	if spec.Topology, err = topology.ParseKind(sj.Topology); err != nil {
		return spec, err
	}
	if spec.Size, err = ParseSize(sj.Size); err != nil {
		return spec, err
	}
	if sj.Mechanism == "" {
		sj.Mechanism = "FP"
	}
	if spec.Mech, err = ParseMech(sj.Mechanism); err != nil {
		return spec, err
	}
	if sj.Policy == "" {
		sj.Policy = "none"
	}
	if spec.Policy, err = ParsePolicy(sj.Policy); err != nil {
		return spec, err
	}
	spec.Alpha = sj.Alpha
	spec.Wakeup = sim.Duration(sj.WakeupNS) * sim.Nanosecond
	if spec.SimTime, err = ParseSimDuration(sj.SimTime); err != nil {
		return spec, fmt.Errorf("exp: bad simtime: %w", err)
	}
	if spec.Warmup, err = ParseSimDuration(sj.Warmup); err != nil {
		return spec, fmt.Errorf("exp: bad warmup: %w", err)
	}
	spec.Interleave = sj.Interleave
	if spec.Policy != core.PolicyNone && spec.Policy != core.PolicyStatic && spec.Alpha <= 0 {
		return spec, fmt.Errorf("exp: policy %v needs a positive alpha", spec.Policy)
	}
	return spec, nil
}

// LoadBatch parses a JSON config stream into runnable specs.
func LoadBatch(r io.Reader) ([]Spec, error) {
	var batch BatchJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&batch); err != nil {
		return nil, fmt.Errorf("exp: parsing config: %w", err)
	}
	if len(batch.Runs) == 0 {
		return nil, fmt.Errorf("exp: config has no runs")
	}
	specs := make([]Spec, 0, len(batch.Runs))
	for i, sj := range batch.Runs {
		spec, err := sj.ToSpec()
		if err != nil {
			return nil, fmt.Errorf("exp: run %d: %w", i, err)
		}
		specs = append(specs, spec)
	}
	return specs, nil
}
