package exp

import (
	"strings"
	"testing"

	"memnet/internal/core"
	"memnet/internal/sim"
	"memnet/internal/topology"
)

func TestLoadBatch(t *testing.T) {
	cfg := `{
	  "runs": [
	    {"workload": "mixB", "topology": "star", "size": "small",
	     "mechanism": "VWL+ROO", "policy": "aware", "alpha": 0.05,
	     "simtime": "400us", "warmup": "100us"},
	    {"workload": "sp.D", "topology": "daisychain", "size": "big",
	     "mechanism": "ROO", "policy": "unaware", "alpha": 0.025,
	     "wakeup_ns": 20}
	  ]
	}`
	specs, err := LoadBatch(strings.NewReader(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("%d specs", len(specs))
	}
	s := specs[0]
	if s.Workload.Name != "mixB" || s.Topology != topology.Star || s.Size != Small ||
		s.Mech != MechVWLROO || s.Policy != core.PolicyAware || s.Alpha != 0.05 {
		t.Fatalf("spec 0 = %+v", s)
	}
	if s.SimTime != 400*sim.Microsecond || s.Warmup != 100*sim.Microsecond {
		t.Fatalf("times: %v/%v", s.SimTime, s.Warmup)
	}
	if specs[1].Wakeup != 20*sim.Nanosecond || specs[1].Size != Big {
		t.Fatalf("spec 1 = %+v", specs[1])
	}
}

func TestLoadBatchDefaults(t *testing.T) {
	specs, err := LoadBatch(strings.NewReader(`{"runs":[{"workload":"mixG"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	s := specs[0]
	if s.Topology != topology.Star || s.Mech != MechFP || s.Policy != core.PolicyNone {
		t.Fatalf("defaults = %+v", s)
	}
}

func TestLoadBatchErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`{"runs": []}`,
		`{"runs": [{"workload": "nope"}]}`,
		`{"runs": [{"workload": "mixB", "topology": "mesh"}]}`,
		`{"runs": [{"workload": "mixB", "mechanism": "XXL"}]}`,
		`{"runs": [{"workload": "mixB", "policy": "chaotic"}]}`,
		`{"runs": [{"workload": "mixB", "policy": "aware"}]}`, // alpha missing
		`{"runs": [{"workload": "mixB", "size": "huge"}]}`,
		`{"runs": [{"workload": "mixB", "simtime": "fast"}]}`,
		`{"runs": [{"workload": "mixB", "unknown_field": 1}]}`,
	}
	for i, c := range cases {
		if _, err := LoadBatch(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %s", i, c)
		}
	}
}

func TestParseHelpers(t *testing.T) {
	if _, err := ParseMech("DVFS+ROO"); err != nil {
		t.Error(err)
	}
	if p, err := ParsePolicy("network-aware"); err != nil || p != core.PolicyAware {
		t.Errorf("ParsePolicy long form: %v %v", p, err)
	}
	if d, err := ParseSimDuration(""); err != nil || d != 0 {
		t.Errorf("empty duration: %v %v", d, err)
	}
}
