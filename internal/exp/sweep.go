// Parallel sweep execution. The paper's figures are sweeps over
// {topology × size × workload × mechanism × policy} — dozens of fully
// independent simulations. Each cell builds its own kernel, network and
// workload (see Run), so cells share nothing and fan out cleanly across
// GOMAXPROCS goroutines.
//
// Generate runs an experiment in two passes. The collect pass dry-runs
// the generator with Runner.collecting set: every Runner.Run call
// enqueues its cell instead of simulating, so the generator's own control
// flow enumerates the sweep — there is no second copy of the cell lists
// to drift out of sync. The execute pass fans the recorded cells across
// the worker pool and commits results to the memo cache in sweep order.
// The final render replays the generator against the warm cache, so
// output is byte-identical to the sequential path regardless of job count
// or completion order.
package exp

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// jobs resolves the runner's worker count.
func (r *Runner) jobs() int {
	if r.Jobs > 0 {
		return r.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

// Generate renders one experiment, fanning its simulation cells across
// the runner's worker pool. With Jobs == 1 it is exactly e.Run(r).
func (r *Runner) Generate(e Experiment) string {
	if r.jobs() > 1 {
		r.Prefetch(r.Collect(e.Run))
	}
	return e.Run(r)
}

// Collect dry-runs gen and returns every cell it would simulate, in
// first-use order, deduplicated against each other and the memo cache.
func (r *Runner) Collect(gen func(*Runner) string) []Spec {
	r.collecting = true
	r.pendingKey = map[string]bool{}
	defer func() {
		r.collecting = false
		r.pending = nil
		r.pendingKey = nil
	}()
	gen(r)
	return r.pending
}

// Prefetch executes specs across the worker pool and memoizes the
// results. Progress lines and cache commits happen in sweep order after
// the pool drains, independent of completion order.
func (r *Runner) Prefetch(specs []Spec) {
	var todo []Spec
	for _, s := range specs {
		s = r.normalize(s)
		if _, ok := r.cache[s.key()]; !ok {
			todo = append(todo, s)
		}
	}
	if len(todo) == 0 {
		return
	}
	results, err := RunSpecs(todo, r.jobs())
	if err != nil {
		// Same contract as the sequential path in Runner.Run: figure
		// specs are validated by construction, an error is a harness bug.
		panic(fmt.Sprintf("exp: %v", err))
	}
	for i, res := range results {
		r.cache[todo[i].key()] = res
		if r.Progress != nil {
			r.Progress(fmt.Sprintf("ran %s (%.1fM events)",
				todo[i].key(), float64(res.Events)/1e6))
		}
	}
}

// RunSpecs executes specs with jobs parallel workers (<= 0 means
// runtime.GOMAXPROCS(0)) and returns their results in input order. Each
// job is hermetic — own kernel, network, workload, RNG — so the only
// shared state is the output slot each worker owns. A non-nil error is
// the input-order-first failure; the other results are still returned.
func RunSpecs(specs []Spec, jobs int) ([]Result, error) {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(specs) {
		jobs = len(specs)
	}
	results := make([]Result, len(specs))
	errs := make([]error, len(specs))
	if jobs <= 1 {
		for i, s := range specs {
			results[i], errs[i] = Run(s)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < jobs; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(specs) {
						return
					}
					results[i], errs[i] = Run(specs[i])
				}
			}()
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			desc := "invalid spec"
			if specs[i].Workload != nil {
				desc = specs[i].key()
			}
			return results, fmt.Errorf("run %d (%s): %w", i, desc, err)
		}
	}
	return results, nil
}
