// Parallel sweep execution. The paper's figures are sweeps over
// {topology × size × workload × mechanism × policy} — dozens of fully
// independent simulations. Each cell builds its own kernel, network and
// workload (see Run), so cells share nothing and fan out cleanly across
// GOMAXPROCS goroutines.
//
// Generate runs an experiment in two passes. The collect pass dry-runs
// the generator with Runner.collecting set: every Runner.Run call
// enqueues its cell instead of simulating, so the generator's own control
// flow enumerates the sweep — there is no second copy of the cell lists
// to drift out of sync. The execute pass fans the recorded cells across
// the worker pool and commits results to the memo cache in sweep order.
// The final render replays the generator against the warm cache, so
// output is byte-identical to the sequential path regardless of job count
// or completion order.
package exp

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"memnet/internal/stats"
)

// jobs resolves the runner's worker count.
func (r *Runner) jobs() int {
	if r.Jobs > 0 {
		return r.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

// Generate renders one experiment, fanning its simulation cells across
// the runner's worker pool. With Jobs == 1 it is exactly e.Run(r).
func (r *Runner) Generate(e Experiment) string {
	if r.jobs() > 1 {
		r.Prefetch(r.Collect(e.Run))
	}
	return e.Run(r)
}

// Collect dry-runs gen and returns every cell it would simulate, in
// first-use order, deduplicated against each other and the memo cache.
func (r *Runner) Collect(gen func(*Runner) string) []Spec {
	r.collecting = true
	r.pendingKey = map[string]bool{}
	defer func() {
		r.collecting = false
		r.pending = nil
		r.pendingKey = nil
	}()
	gen(r)
	return r.pending
}

// Prefetch executes specs across the worker pool and memoizes the
// results. Progress lines and cache commits happen in sweep order after
// the pool drains, independent of completion order. Journaled cells are
// restored without simulating; failed cells (errors and recovered
// panics) get placeholder results and are recorded in Failures, so one
// bad cell cannot take down the rest of the sweep.
func (r *Runner) Prefetch(specs []Spec) {
	todo := r.Uncached(specs)
	if len(todo) == 0 {
		return
	}
	results, errs := RunSpecsAllCtx(r.ctx(), todo, r.jobs())
	r.commit(todo, results, errs, true)
}

// Uncached normalizes specs and filters them against the memo cache and
// the attached journal (restored cells are committed on the spot),
// returning only the cells that still need simulating — the work list
// the local pool or the distributed coordinator must actually run.
func (r *Runner) Uncached(specs []Spec) []Spec {
	var todo []Spec
	for _, s := range specs {
		s = r.normalize(s)
		k := s.key()
		if _, ok := r.cache[k]; ok {
			continue
		}
		if res, ok := r.fromJournal(k, s); ok {
			if r.Progress != nil {
				r.Progress(fmt.Sprintf("restored %s from journal", k))
			}
			r.cache[k] = res
			r.recordMetrics(k, res)
			continue
		}
		todo = append(todo, s)
	}
	return todo
}

// Commit stores externally computed sweep results — the distributed
// coordinator's merge — in the memo cache, in sweep order, recording
// failures exactly like the local pool. specs must be the Uncached work
// list the results were computed from. The journal is deliberately not
// appended to: in a distributed run the coordinator owns journaling.
func (r *Runner) Commit(specs []Spec, results []Result, errs []error) {
	r.commit(specs, results, errs, false)
}

// commit is the shared cache-commit loop: sweep order, placeholder
// results for failed cells, optional journal appends for fresh results.
func (r *Runner) commit(specs []Spec, results []Result, errs []error, journal bool) {
	for i, res := range results {
		k := specs[i].key()
		if err := errs[i]; err != nil {
			r.failures = append(r.failures, CellFailure{Key: k, Err: err})
			if r.Progress != nil {
				r.Progress(fmt.Sprintf("FAILED %s: %v", k, err))
			}
			r.cache[k] = Result{Spec: specs[i], Hist: &stats.LinkHourHist{}}
			continue
		}
		r.cache[k] = res
		r.recordMetrics(k, res)
		if r.Progress != nil {
			r.Progress(fmt.Sprintf("ran %s (%.1fM events)", k, float64(res.Events)/1e6))
		}
		if journal && r.journal != nil {
			if err := r.journal.Append(k, res); err != nil {
				r.failures = append(r.failures, CellFailure{Key: k, Err: fmt.Errorf("journal: %w", err)})
			}
		}
	}
}

// PanicError wraps a panic recovered inside a sweep worker, preserving
// the panic value and the goroutine stack at the point of recovery.
type PanicError struct {
	Value any
	Stack string
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("cell panicked: %v\n%s", e.Value, e.Stack)
}

// runImpl is swapped by tests to inject panicking/failing cells.
var runImpl = RunBudgeted

// RunCell executes one sweep cell with the standard panic containment:
// a panic anywhere under Run comes back as a structured *PanicError
// instead of crashing the process. It is the execution entry point for
// distributed workers (internal/dist), which must fail one cell — never
// the whole worker — on a corrupted simulation.
func RunCell(spec Spec) (Result, error) { return runCell(spec) }

// RunCellCtx is RunCell under a context: cancellation aborts the cell
// within one kernel check interval. It is the entry point the daemon
// (internal/serve) and the distributed worker use, so a dead client or
// a dismissed worker stops consuming CPU promptly.
func RunCellCtx(ctx context.Context, spec Spec) (Result, error) {
	return runCellCtx(ctx, spec, Budget{})
}

// RunCellBudgeted is RunCellCtx with a resource budget (see RunBudgeted).
func RunCellBudgeted(ctx context.Context, spec Spec, budget Budget) (Result, error) {
	return runCellCtx(ctx, spec, budget)
}

// runCell executes one sweep cell, converting a panic anywhere under Run
// into a structured *PanicError so a corrupted cell fails alone instead
// of crashing the process (and, in the pool, the whole sweep).
func runCell(spec Spec) (res Result, err error) {
	return runCellCtx(context.Background(), spec, Budget{})
}

// runCellCtx is runCell's context/budget-threading core.
func runCellCtx(ctx context.Context, spec Spec, budget Budget) (res Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: string(debug.Stack())}
		}
	}()
	return runImpl(ctx, spec, budget)
}

// RunSpecsAll executes specs with jobs parallel workers (<= 0 means
// runtime.GOMAXPROCS(0)) and returns results and errors aligned with the
// input. Each job is hermetic — own kernel, network, workload, RNG — so
// the only shared state is the output slot each worker owns. Panics are
// contained per cell (see runCell).
func RunSpecsAll(specs []Spec, jobs int) ([]Result, []error) {
	return RunSpecsAllCtx(context.Background(), specs, jobs)
}

// RunSpecsAllCtx is RunSpecsAll under a context: in-flight cells abort
// within one kernel check interval of cancellation, and cells the pool
// has not started yet fail immediately with ctx's error instead of
// simulating — so an interrupted sweep hands back promptly with every
// completed cell intact and every unfinished slot marked.
func RunSpecsAllCtx(ctx context.Context, specs []Spec, jobs int) ([]Result, []error) {
	return runSpecsAll(ctx, specs, jobs, nil)
}

// runSpecsAll is the shared sweep executor. onDone, when non-nil, is
// called from the worker that ran cell i immediately after it settles —
// the journaled path uses it to persist each result at completion time
// rather than at sweep end, so a crash mid-sweep loses at most the
// in-flight cells. It may rewrite the cell's error (journal failures).
func runSpecsAll(ctx context.Context, specs []Spec, jobs int,
	onDone func(i int, res Result, err error) error) ([]Result, []error) {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(specs) {
		jobs = len(specs)
	}
	results := make([]Result, len(specs))
	errs := make([]error, len(specs))
	runOne := func(i int) {
		if err := ctx.Err(); err != nil {
			errs[i] = err
			return
		}
		results[i], errs[i] = runCellCtx(ctx, specs[i], Budget{})
		if onDone != nil {
			errs[i] = onDone(i, results[i], errs[i])
		}
	}
	if jobs <= 1 {
		for i := range specs {
			runOne(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < jobs; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(specs) {
						return
					}
					runOne(i)
				}
			}()
		}
		wg.Wait()
	}
	return results, errs
}

// RunSpecs executes specs and returns their results in input order. A
// non-nil error is the input-order-first failure; the other results are
// still returned.
func RunSpecs(specs []Spec, jobs int) ([]Result, error) {
	results, errs := RunSpecsAll(specs, jobs)
	for i, err := range errs {
		if err != nil {
			desc := "invalid spec"
			if specs[i].Workload != nil {
				desc = specs[i].key()
			}
			return results, fmt.Errorf("run %d (%s): %w", i, desc, err)
		}
	}
	return results, nil
}

// RunSpecsJournaled is RunSpecs with crash-safe resume: cells whose keys
// appear in loaded are restored (with spec replaced by the caller's
// canonical copy) instead of simulated, and every fresh success is
// appended to j before the function returns. Results stay in input
// order; errs aligns with the input and is nil where the cell succeeded.
func RunSpecsJournaled(specs []Spec, jobs int, j *Journal, loaded map[string]Result) ([]Result, []error) {
	return RunSpecsJournaledCtx(context.Background(), specs, jobs, j, loaded)
}

// RunSpecsJournaledCtx is RunSpecsJournaled under a context. Each fresh
// success is appended (and fsynced) the moment its cell completes, not
// at sweep end, so a crash or interrupt loses at most the cells that
// were still in flight. Canceled cells are not journaled — a resumed
// sweep picks up exactly at the completion frontier.
func RunSpecsJournaledCtx(ctx context.Context, specs []Spec, jobs int, j *Journal, loaded map[string]Result) ([]Result, []error) {
	results := make([]Result, len(specs))
	errs := make([]error, len(specs))
	var todo []Spec
	var todoIdx []int
	for i, s := range specs {
		k := s.key()
		if res, ok := loaded[k]; ok {
			delete(loaded, k)
			results[i] = CanonicalResult(res, s)
			continue
		}
		todo = append(todo, s)
		todoIdx = append(todoIdx, i)
	}
	appendDone := func(t int, res Result, err error) error {
		if err != nil || j == nil {
			return err
		}
		if err := j.Append(todo[t].key(), res); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		return nil
	}
	fresh, ferrs := runSpecsAll(ctx, todo, jobs, appendDone)
	for t, i := range todoIdx {
		results[i], errs[i] = fresh[t], ferrs[t]
	}
	return results, errs
}
