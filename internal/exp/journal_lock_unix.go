//go:build unix

package exp

import "syscall"

// lockJournal takes a non-blocking advisory flock on the journal file.
// A second opener — a stray CLI racing a daemon, or two daemons pointed
// at the same path — gets syscall.EWOULDBLOCK instead of silently
// interleaving appends. The lock lives with the file descriptor and is
// released automatically on Close or process death, so a crashed holder
// never wedges the path.
func lockJournal(fd uintptr) error {
	return syscall.Flock(int(fd), syscall.LOCK_EX|syscall.LOCK_NB)
}
