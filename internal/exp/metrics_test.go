package exp

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"memnet/internal/core"
	"memnet/internal/metrics"
	"memnet/internal/sim"
)

// exportJSONL renders a runner's recorded metrics entries to bytes.
func exportJSONL(t *testing.T, r *Runner) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := metrics.WriteJSONL(&b, r.MetricsEntries()); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestMetricsJobsDeterminism is the export-side determinism guarantee:
// the metrics entries a sweep records — and therefore the exported bytes
// — are identical between -jobs 1 (Run in generator order) and -jobs 8
// (Prefetch commit order), because both follow the collect pass's
// first-use order exactly once per distinct cell.
func TestMetricsJobsDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy generator sweep")
	}
	e, ok := Lookup("fig5")
	if !ok {
		t.Fatal("fig5 not registered")
	}
	seq := tinyRunner()
	seq.Jobs = 1
	seq.Metrics = 10 * sim.Microsecond
	par := tinyRunner()
	par.Jobs = 8
	par.Metrics = 10 * sim.Microsecond
	if out1, out8 := seq.Generate(e), par.Generate(e); out1 != out8 {
		t.Fatalf("figure output differs with metrics armed:\n%s\nvs\n%s", out1, out8)
	}
	b1, b8 := exportJSONL(t, seq), exportJSONL(t, par)
	if len(b1) == 0 {
		t.Fatal("sweep recorded no metrics entries")
	}
	if !bytes.Equal(b1, b8) {
		t.Fatalf("metrics export differs between -jobs 1 (%d bytes) and -jobs 8 (%d bytes)", len(b1), len(b8))
	}
}

// TestMetricsObservational: arming the sampler must not change any
// simulation result — the ticker only reads. Events legitimately grows
// (the ticks themselves are kernel events), so it is excluded.
func TestMetricsObservational(t *testing.T) {
	base, err := Run(tinySpec(core.PolicyAware, MechVWLROO))
	if err != nil {
		t.Fatal(err)
	}
	spec := tinySpec(core.PolicyAware, MechVWLROO)
	spec.MetricsInterval = 10 * sim.Microsecond
	armed, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if base.Metrics != nil {
		t.Error("metrics dump present with MetricsInterval unset")
	}
	if armed.Metrics == nil {
		t.Fatal("metrics dump missing with MetricsInterval set")
	}
	if base.Throughput != armed.Throughput || base.Power != armed.Power ||
		base.P99 != armed.P99 || base.Violations != armed.Violations {
		t.Errorf("sampling perturbed the simulation:\nbase  thr=%v pow=%+v p99=%v viol=%d\narmed thr=%v pow=%+v p99=%v viol=%d",
			base.Throughput, base.Power, base.P99, base.Violations,
			armed.Throughput, armed.Power, armed.P99, armed.Violations)
	}
	// 150us measured at 10us covers ticks at warmup+10us .. warmup+150us.
	if armed.Metrics.Ticks != 15 {
		t.Errorf("ticks = %d, want 15", armed.Metrics.Ticks)
	}
	if armed.Metrics.Start != sim.Time(spec.Warmup) {
		t.Errorf("metrics start = %d, want warmup boundary %d", armed.Metrics.Start, spec.Warmup)
	}
}

// TestMetricsResidencyPartition: per tick, the five link power-state
// residency counters partition time exactly — their sum is (number of
// links) x interval, every tick. This is the cross-component invariant
// that makes the residency series trustworthy for power attribution.
func TestMetricsResidencyPartition(t *testing.T) {
	spec := tinySpec(core.PolicyAware, MechVWLROO)
	spec.MetricsInterval = 10 * sim.Microsecond
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	var resid []metrics.SeriesDump
	for _, s := range res.Metrics.Series {
		if len(s.Name) > 15 && s.Name[:15] == "link.residency." {
			resid = append(resid, s)
		}
	}
	if len(resid) != 5 {
		t.Fatalf("found %d residency series, want 5", len(resid))
	}
	for j := 0; j < res.Metrics.Ticks; j++ {
		sum := 0.0
		for _, s := range resid {
			sum += s.Samples[j]
		}
		if sum <= 0 || int64(sum)%int64(spec.MetricsInterval) != 0 {
			t.Fatalf("tick %d: residency sum %v is not a whole number of link-intervals (%v)",
				j, sum, spec.MetricsInterval)
		}
		if j > 0 {
			prev := 0.0
			for _, s := range resid {
				prev += s.Samples[j-1]
			}
			if sum != prev {
				t.Fatalf("tick %d: residency sum %v != tick %d sum %v (link count is fixed)", j, sum, j-1, prev)
			}
		}
	}
}

// TestMetricsJournalRoundTrip: a Result carrying a metrics dump survives
// the journal's JSON encoding exactly, so restored sweep cells export
// byte-identical metrics.
func TestMetricsJournalRoundTrip(t *testing.T) {
	spec := tinySpec(core.PolicyAware, MechVWLROO)
	spec.SimTime = 30 * sim.Microsecond
	spec.Warmup = 10 * sim.Microsecond
	spec.MetricsInterval = 10 * sim.Microsecond
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(enc, &back); err != nil {
		t.Fatal(err)
	}
	if back.Metrics == nil {
		t.Fatal("metrics dump lost in round trip")
	}
	if !reflect.DeepEqual(res.Metrics, back.Metrics) {
		t.Errorf("metrics dump changed in round trip:\n%+v\nvs\n%+v", res.Metrics, back.Metrics)
	}
}
