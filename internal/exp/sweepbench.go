package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"memnet/internal/audit"
	"memnet/internal/core"
	"memnet/internal/metrics"
	"memnet/internal/sim"
	"memnet/internal/topology"
	"memnet/internal/workload"
)

// SweepBench is the machine-readable record `make bench` writes to
// BENCH_sweep.json so the simulator's performance trajectory — kernel
// event throughput and sweep-executor scaling — is tracked across PRs.
type SweepBench struct {
	// Cells is the number of independent simulations in the sweep.
	Cells int `json:"cells"`
	// Jobs is the parallel worker count measured against -jobs 1.
	Jobs       int `json:"jobs"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// Events is the total simulated events across the sweep (identical
	// for both executions; asserted by MeasureSweep).
	Events     uint64  `json:"events"`
	WallSeqSec float64 `json:"wall_seq_sec"`
	WallParSec float64 `json:"wall_par_sec"`
	// WallAuditSec is a third sequential pass with the invariant auditor
	// at its default sampling stride; AuditOverhead is its slowdown
	// relative to the unaudited sequential pass (0.03 = 3% slower). The
	// ISSUE budget for the default stride is <5%.
	WallAuditSec  float64 `json:"wall_audit_sec"`
	AuditOverhead float64 `json:"audit_overhead"`
	// WallMetricsSec is a fourth sequential pass with the metrics sampler
	// armed at its default interval; MetricsOverhead is its slowdown
	// relative to the plain sequential pass. The ISSUE budget is <5%.
	WallMetricsSec  float64 `json:"wall_metrics_sec"`
	MetricsOverhead float64 `json:"metrics_overhead"`
	EventsPerSec    struct {
		Seq float64 `json:"seq"`
		Par float64 `json:"par"`
	} `json:"events_per_sec"`
	// Speedup is sequential wall time over parallel wall time.
	Speedup float64 `json:"speedup"`
}

// String renders the one-line human summary.
func (b SweepBench) String() string {
	return fmt.Sprintf(
		"sweep: %d cells, %d events; -jobs 1: %.2fs (%.1fM ev/s); -jobs %d: %.2fs (%.1fM ev/s); speedup %.2fx; audit %+.1f%%; metrics %+.1f%% (GOMAXPROCS=%d)",
		b.Cells, b.Events, b.WallSeqSec, b.EventsPerSec.Seq/1e6,
		b.Jobs, b.WallParSec, b.EventsPerSec.Par/1e6, b.Speedup,
		b.AuditOverhead*100, b.MetricsOverhead*100, b.GOMAXPROCS)
}

// BenchSweepSpecs builds the standard benchmark sweep: the representative
// workload subset (bench_test.go's set) crossed with every topology and
// the FP / VWL+ROO extremes — 32 hermetic cells.
func BenchSweepSpecs(simTime, warmup sim.Duration) ([]Spec, error) {
	var specs []Spec
	for _, name := range []string{"sp.D", "mixB", "mg.D", "mixC"} {
		wl, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, topo := range topology.Kinds {
			for _, cfg := range []struct {
				mech Mech
				pol  core.PolicyKind
			}{{MechFP, core.PolicyNone}, {MechVWLROO, core.PolicyAware}} {
				specs = append(specs, Spec{
					Workload: wl, Topology: topo, Size: Big,
					Mech: cfg.mech, Policy: cfg.pol, Alpha: 0.05,
					SimTime: simTime, Warmup: warmup,
				})
			}
		}
	}
	return specs, nil
}

// MeasureSweep runs specs once with one worker and once with jobs
// workers, wall-clocks both, and cross-checks that the parallel execution
// produced identical simulations (same total event count).
func MeasureSweep(specs []Spec, jobs int) (SweepBench, error) {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	seq, err := RunSpecs(specs, 1)
	if err != nil {
		return SweepBench{}, err
	}
	wallSeq := time.Since(start).Seconds()

	start = time.Now()
	par, err := RunSpecs(specs, jobs)
	if err != nil {
		return SweepBench{}, err
	}
	wallPar := time.Since(start).Seconds()

	// Third pass: sequential again but with the invariant auditor at its
	// default sampling stride, to price the audit hooks. The auditor is
	// observational, so every cell must reproduce the unaudited events.
	audited := make([]Spec, len(specs))
	for i, s := range specs {
		s.AuditEvery = audit.DefaultSampleEvery
		audited[i] = s
	}
	start = time.Now()
	audres, err := RunSpecs(audited, 1)
	if err != nil {
		return SweepBench{}, err
	}
	wallAudit := time.Since(start).Seconds()

	// Fourth pass: sequential with the metrics sampler at its default
	// interval, to price the tick events and registry pulls. Sampling is
	// observational but the ticks themselves are kernel events, so the
	// cross-check below compares throughput, not event counts.
	sampled := make([]Spec, len(specs))
	for i, s := range specs {
		s.MetricsInterval = metrics.DefaultInterval
		sampled[i] = s
	}
	start = time.Now()
	metres, err := RunSpecs(sampled, 1)
	if err != nil {
		return SweepBench{}, err
	}
	wallMetrics := time.Since(start).Seconds()

	var b SweepBench
	b.Cells = len(specs)
	b.Jobs = jobs
	b.GOMAXPROCS = runtime.GOMAXPROCS(0)
	for i := range seq {
		if par[i].Events != seq[i].Events || par[i].Throughput != seq[i].Throughput {
			return b, fmt.Errorf("exp: cell %d diverged between -jobs 1 and -jobs %d (%d vs %d events)",
				i, jobs, seq[i].Events, par[i].Events)
		}
		if audres[i].Events != seq[i].Events || audres[i].Throughput != seq[i].Throughput {
			return b, fmt.Errorf("exp: cell %d diverged under -audit (%d vs %d events)",
				i, seq[i].Events, audres[i].Events)
		}
		if metres[i].Throughput != seq[i].Throughput || metres[i].Power != seq[i].Power {
			return b, fmt.Errorf("exp: cell %d diverged under -metrics (thr %v vs %v)",
				i, seq[i].Throughput, metres[i].Throughput)
		}
		b.Events += seq[i].Events
	}
	b.WallSeqSec = wallSeq
	b.WallParSec = wallPar
	b.WallAuditSec = wallAudit
	b.WallMetricsSec = wallMetrics
	if wallSeq > 0 {
		b.AuditOverhead = wallAudit/wallSeq - 1
		b.MetricsOverhead = wallMetrics/wallSeq - 1
	}
	if wallSeq > 0 {
		b.EventsPerSec.Seq = float64(b.Events) / wallSeq
	}
	if wallPar > 0 {
		b.EventsPerSec.Par = float64(b.Events) / wallPar
		b.Speedup = wallSeq / wallPar
	}
	return b, nil
}

// WriteJSON writes the record to path, indented for diffability.
func (b SweepBench) WriteJSON(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
