package exp

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"memnet/internal/audit"
	"memnet/internal/core"
	"memnet/internal/metrics"
	"memnet/internal/sim"
	"memnet/internal/topology"
	"memnet/internal/workload"
)

// SweepBench is the machine-readable record `make bench` writes to
// BENCH_sweep.json so the simulator's performance trajectory — kernel
// event throughput and sweep-executor scaling — is tracked across PRs.
type SweepBench struct {
	// Cells is the number of independent simulations in the sweep.
	Cells int `json:"cells"`
	// Jobs is the parallel worker count measured against -jobs 1.
	Jobs       int `json:"jobs"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// Events is the total simulated events across the sweep (identical
	// for both executions; asserted by MeasureSweep).
	Events     uint64  `json:"events"`
	WallSeqSec float64 `json:"wall_seq_sec"`
	WallParSec float64 `json:"wall_par_sec"`
	// WallAuditSec is a third sequential pass with the invariant auditor
	// at its default sampling stride; AuditOverhead is its slowdown
	// relative to the unaudited sequential pass (0.03 = 3% slower). The
	// budget for the default stride is overheadBudget in cmd/benchdiff.
	WallAuditSec  float64 `json:"wall_audit_sec"`
	AuditOverhead float64 `json:"audit_overhead"`
	// WallMetricsSec is a fourth sequential pass with the metrics sampler
	// armed at its default interval; MetricsOverhead is its slowdown
	// relative to the plain sequential pass, against the same budget.
	WallMetricsSec  float64 `json:"wall_metrics_sec"`
	MetricsOverhead float64 `json:"metrics_overhead"`
	// WallCancelSec is a fifth sequential pass run under a cancelable
	// (but never canceled) context, which arms the kernel's cooperative
	// cancellation check at its default stride — the configuration every
	// memnetd job and every ^C-interruptible CLI batch runs in.
	// CancelOverhead is its slowdown relative to the plain sequential
	// pass; cmd/benchdiff holds it to cancelBudget.
	WallCancelSec  float64 `json:"wall_cancel_sec"`
	CancelOverhead float64 `json:"cancel_overhead"`
	EventsPerSec   struct {
		Seq float64 `json:"seq"`
		Par float64 `json:"par"`
	} `json:"events_per_sec"`
	// Speedup is sequential wall time over parallel wall time.
	Speedup float64 `json:"speedup"`
}

// String renders the one-line human summary.
func (b SweepBench) String() string {
	return fmt.Sprintf(
		"sweep: %d cells, %d events; -jobs 1: %.2fs (%.1fM ev/s); -jobs %d: %.2fs (%.1fM ev/s); speedup %.2fx; audit %+.1f%%; metrics %+.1f%%; cancel %+.1f%% (GOMAXPROCS=%d)",
		b.Cells, b.Events, b.WallSeqSec, b.EventsPerSec.Seq/1e6,
		b.Jobs, b.WallParSec, b.EventsPerSec.Par/1e6, b.Speedup,
		b.AuditOverhead*100, b.MetricsOverhead*100, b.CancelOverhead*100, b.GOMAXPROCS)
}

// BenchSweepSpecs builds the standard benchmark sweep: the representative
// workload subset (bench_test.go's set) crossed with every topology and
// the FP / VWL+ROO extremes — 32 hermetic cells.
func BenchSweepSpecs(simTime, warmup sim.Duration) ([]Spec, error) {
	var specs []Spec
	for _, name := range []string{"sp.D", "mixB", "mg.D", "mixC"} {
		wl, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, topo := range topology.Kinds {
			for _, cfg := range []struct {
				mech Mech
				pol  core.PolicyKind
			}{{MechFP, core.PolicyNone}, {MechVWLROO, core.PolicyAware}} {
				specs = append(specs, Spec{
					Workload: wl, Topology: topo, Size: Big,
					Mech: cfg.mech, Policy: cfg.pol, Alpha: 0.05,
					SimTime: simTime, Warmup: warmup,
				})
			}
		}
	}
	return specs, nil
}

// MeasureSweep runs specs once with one worker and once with jobs
// workers, wall-clocks both, and cross-checks that the parallel execution
// produced identical simulations (same total event count).
//
// The parallel pass only measures scaling when it runs at real
// parallelism: jobs <= 1 re-times the sequential path, and jobs beyond
// the machine measures scheduler churn (the committed record once
// reported a 0.94x "speedup" from a -jobs 4 pass on GOMAXPROCS=1).
// Both degenerate requests are therefore clamped to the full
// runtime.GOMAXPROCS(0); an explicit 1 < jobs <= GOMAXPROCS is honored.
//
// Every measurement is repeated measureRounds times. The ratios the
// record exists for — speedup, audit and metrics overhead — divide
// walls that a naive pass-after-pass sweep measures tens of seconds
// apart, and on shared hardware the clock drifts phase-like on exactly
// that timescale: a single ordered sweep of passes routinely showed
// ±10% "overhead" from an observational subsystem whose true cost is
// ~1%. The four sequential variants are therefore timed cell by cell,
// back to back (plain, audited, sampled, cancel-armed — a fraction of a
// second per tuple, well inside one phase), and each pass keeps its own
// per-cell minimum across rounds, so every overhead ratio divides
// same-phase floors rather than a typical numerator by a lucky
// denominator. The parallel pass overlaps cells across workers, so it
// is timed whole and keeps its per-round minimum.
func MeasureSweep(specs []Spec, jobs int) (SweepBench, error) {
	const measureRounds = 2
	if maxp := runtime.GOMAXPROCS(0); jobs <= 1 || jobs > maxp {
		jobs = maxp
	}

	// Audit pass spec: the invariant auditor at its default sampling
	// stride prices the audit hooks. The auditor is observational, so
	// every cell must reproduce the unaudited events.
	audited := make([]Spec, len(specs))
	for i, s := range specs {
		s.AuditEvery = audit.DefaultSampleEvery
		audited[i] = s
	}
	// Metrics pass spec: the sampler at its default interval prices the
	// tick events and registry pulls. Sampling is observational but the
	// ticks themselves are kernel events, so the cross-check below
	// compares throughput, not event counts.
	sampled := make([]Spec, len(specs))
	for i, s := range specs {
		s.MetricsInterval = metrics.DefaultInterval
		sampled[i] = s
	}

	// Cancel pass context: cancelable but never canceled, which is what
	// arms the kernel's cooperative check — the state every daemon job
	// and interruptible CLI batch simulates in.
	armedCtx, armedCancel := context.WithCancel(context.Background())
	defer armedCancel()

	seq := make([]Result, len(specs))
	audres := make([]Result, len(specs))
	metres := make([]Result, len(specs))
	canres := make([]Result, len(specs))
	seqW := make([]float64, len(specs))
	audW := make([]float64, len(specs))
	metW := make([]float64, len(specs))
	canW := make([]float64, len(specs))
	var par []Result
	var wallPar float64
	timeCell := func(sp []Spec, i int, res []Result) (float64, error) {
		start := time.Now()
		r, err := RunSpecs(sp[i:i+1], 1)
		if err != nil {
			return 0, err
		}
		res[i] = r[0]
		return time.Since(start).Seconds(), nil
	}
	timeCellArmed := func(i int, res []Result) (float64, error) {
		start := time.Now()
		r, err := RunCtx(armedCtx, specs[i])
		if err != nil {
			return 0, err
		}
		res[i] = r
		return time.Since(start).Seconds(), nil
	}
	for round := 0; round < measureRounds; round++ {
		for i := range specs {
			ws, err := timeCell(specs, i, seq)
			if err != nil {
				return SweepBench{}, err
			}
			wa, err := timeCell(audited, i, audres)
			if err != nil {
				return SweepBench{}, err
			}
			wm, err := timeCell(sampled, i, metres)
			if err != nil {
				return SweepBench{}, err
			}
			wc, err := timeCellArmed(i, canres)
			if err != nil {
				return SweepBench{}, err
			}
			// Each pass keeps its own per-cell minimum across rounds.
			// Selecting the whole tuple by the fastest plain cell (the
			// previous scheme) anchored the ratio's denominator at its
			// luckiest sample while the numerators stayed typical, which
			// read as a consistent ~2-4% phantom overhead on every
			// observational pass; independent minima estimate each
			// pass's true floor, and the cells are still timed back to
			// back so all four floors come from the same clock phase.
			if round == 0 || ws < seqW[i] {
				seqW[i] = ws
			}
			if round == 0 || wa < audW[i] {
				audW[i] = wa
			}
			if round == 0 || wm < metW[i] {
				metW[i] = wm
			}
			if round == 0 || wc < canW[i] {
				canW[i] = wc
			}
		}
		start := time.Now()
		p, err := RunSpecs(specs, jobs)
		if err != nil {
			return SweepBench{}, err
		}
		if w := time.Since(start).Seconds(); round == 0 || w < wallPar {
			par, wallPar = p, w
		}
	}
	sum := func(ws []float64) float64 {
		var t float64
		for _, w := range ws {
			t += w
		}
		return t
	}
	wallSeq := sum(seqW)
	wallAudit := sum(audW)
	wallMetrics := sum(metW)
	wallCancel := sum(canW)

	var b SweepBench
	b.Cells = len(specs)
	b.Jobs = jobs
	b.GOMAXPROCS = runtime.GOMAXPROCS(0)
	for i := range seq {
		if par[i].Events != seq[i].Events || par[i].Throughput != seq[i].Throughput {
			return b, fmt.Errorf("exp: cell %d diverged between -jobs 1 and -jobs %d (%d vs %d events)",
				i, jobs, seq[i].Events, par[i].Events)
		}
		if audres[i].Events != seq[i].Events || audres[i].Throughput != seq[i].Throughput {
			return b, fmt.Errorf("exp: cell %d diverged under -audit (%d vs %d events)",
				i, seq[i].Events, audres[i].Events)
		}
		if metres[i].Throughput != seq[i].Throughput || metres[i].Power != seq[i].Power {
			return b, fmt.Errorf("exp: cell %d diverged under -metrics (thr %v vs %v)",
				i, seq[i].Throughput, metres[i].Throughput)
		}
		// The cancellation check is pure observation — no kernel events,
		// no model state — so the armed run must reproduce the plain one
		// exactly.
		if canres[i].Events != seq[i].Events || canres[i].Throughput != seq[i].Throughput {
			return b, fmt.Errorf("exp: cell %d diverged under an armed cancel check (%d vs %d events)",
				i, seq[i].Events, canres[i].Events)
		}
		b.Events += seq[i].Events
	}
	b.WallSeqSec = wallSeq
	b.WallParSec = wallPar
	b.WallAuditSec = wallAudit
	b.WallMetricsSec = wallMetrics
	b.WallCancelSec = wallCancel
	if wallSeq > 0 {
		b.AuditOverhead = wallAudit/wallSeq - 1
		b.MetricsOverhead = wallMetrics/wallSeq - 1
		b.CancelOverhead = wallCancel/wallSeq - 1
	}
	if wallSeq > 0 {
		b.EventsPerSec.Seq = float64(b.Events) / wallSeq
	}
	if wallPar > 0 {
		b.EventsPerSec.Par = float64(b.Events) / wallPar
		b.Speedup = wallSeq / wallPar
	}
	return b, nil
}

// WriteJSON writes the record to path, indented for diffability.
func (b SweepBench) WriteJSON(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
