package exp

import "sort"

// Experiment is one regenerable table or figure.
type Experiment struct {
	Name string
	// What the experiment reproduces.
	Description string
	// Heavy experiments sweep hundreds of simulations.
	Heavy bool
	Run   func(r *Runner) string
}

// Registry maps experiment IDs to generators, covering every table and
// figure in the paper's evaluation (see DESIGN.md §5).
var Registry = []Experiment{
	{"tableI", "Table I: HMC DRAM array parameters", false, TableI},
	{"tableII", "Table II: processor model (substituted front end)", false, TableII},
	{"tableIII", "Table III: workload composition", false, TableIII},
	{"fig4", "Fig. 4: workload access CDFs", false, Fig4},
	{"fig5", "Fig. 5: full-power per-HMC power breakdown", true, Fig5},
	{"fig6", "Fig. 6: links traversed per memory access", true, Fig6},
	{"fig8", "Fig. 8: idle I/O power share by workload", true, Fig8},
	{"fig9", "Fig. 9: channel and link utilization", true, Fig9},
	{"fig11", "Fig. 11: power under network-unaware management", true, Fig11},
	{"fig12", "Fig. 12: perf overhead of network-unaware management", true, Fig12},
	{"fig13", "Fig. 13: link hours by VWL mode and utilization", true, Fig13},
	{"fig15", "Fig. 15: power saving of aware vs unaware", true, Fig15},
	{"fig16", "Fig. 16: power saving by workload (big networks)", true, Fig16},
	{"fig17", "Fig. 17: perf overhead of network-aware management", true, Fig17},
	{"fig18", "Fig. 18: DVFS and 20ns-ROO sensitivity", true, Fig18},
	{"static", "Sec. VII-A: static fat/tapered baseline study", true, StaticStudy},
	{"alphasweep", "Extension: diminishing returns of raising alpha (§V-C)", true, AlphaSweep},
	{"scaling", "Extension: per-HMC cost of growing each topology", true, ScalingStudy},
	{"seeds", "Extension: robustness of the headline cell across seeds", true, SeedStudy},
	{"avail", "Extension: availability/MTTR under a kill -> repair cycle", false, Avail},
	{"summary", "Headline paper-vs-measured comparison", true, Summary},
}

// Lookup finds an experiment by name.
func Lookup(name string) (Experiment, bool) {
	for _, e := range Registry {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// Names returns all experiment IDs, sorted.
func Names() []string {
	out := make([]string, len(Registry))
	for i, e := range Registry {
		out[i] = e.Name
	}
	sort.Strings(out)
	return out
}
