package exp

import (
	"fmt"

	"memnet/internal/core"
	"memnet/internal/fault"
	"memnet/internal/sim"
	"memnet/internal/topology"
)

// Availability-sweep schedule: module 1 dies at 120 µs and is repaired at
// 160 µs, inside even the reduced horizons tests run with. Module 1 is
// the interesting victim — its subtree size differs radically across the
// four topologies (the whole chain suffix on a daisy chain, a single leaf
// on the DDRx-like tree), which is exactly what the sweep contrasts. A
// later vault stall on module 0, longer than the request timeout, drives
// the other recovery path: reads time out, retry, and come back with
// data once the stall clears (RecoveredReads).
var (
	availKillAt   = 120 * sim.Microsecond
	availRepairAt = 160 * sim.Microsecond
	availStallAt  = 180 * sim.Microsecond
	availStallFor = 10 * sim.Microsecond
)

// availScenario is the kill → repair (plus stall → drain) cycle the
// sweep applies per cell.
func availScenario() fault.Scenario {
	return fault.Scenario{Events: []fault.Event{
		{At: fault.Duration(availKillAt), Kind: fault.ModuleFail, Module: 1},
		{At: fault.Duration(availRepairAt), Kind: fault.ModuleRepair, Module: 1},
		{At: fault.Duration(availStallAt), Kind: fault.VaultStall, Module: 0, Duration: fault.Duration(availStallFor)},
	}}
}

// Avail is the availability/MTTR sweep: one module-1 kill → repair cycle
// per topology with timeouts and bounded retry armed, reporting the
// outage window (MTTR, availability) and the requests the recovery path
// saved versus lost. The daisy chain loses the longest module suffix to
// the cut, the DDRx-like tree only the leaf itself, so availability
// orders daisychain < ternary/star < ddrx-like for the same MTTR.
func Avail(r *Runner) string {
	wl := r.profiles()[0]
	t := NewTable(
		fmt.Sprintf("Availability: module-1 outage %s -> %s (%s)", availKillAt, availRepairAt, wl.Name),
		"topology", "modules", "MTTR", "availability", "outages", "recovered", "abandoned", "error reads")
	for _, topo := range topology.Kinds {
		spec := Spec{
			Workload:       wl,
			Topology:       topo,
			Size:           Small,
			Mech:           MechVWLROO,
			Policy:         core.PolicyAware,
			Alpha:          0.05,
			Faults:         availScenario(),
			RequestTimeout: 2 * sim.Microsecond,
			MaxRetries:     4,
		}
		res := r.Run(spec)
		a := res.Availability
		fef := res.FrontEndFaults
		t.Row(topo.String(),
			fmt.Sprintf("%d", res.Modules),
			a.MTTR.String(),
			fmt.Sprintf("%.6f", a.Availability),
			fmt.Sprintf("%d", a.Outages),
			fmt.Sprintf("%d", fef.RecoveredReads),
			fmt.Sprintf("%d", fef.Abandoned),
			fmt.Sprintf("%d", fef.ErrorReads))
	}
	return t.String()
}
