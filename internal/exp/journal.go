// Crash-safe sweep journaling. A Journal is an append-only JSON-lines
// file mapping Spec.key() to its Result. Sweeps append every fresh cell
// as it completes; a killed run restarted with the same journal path
// restores the completed cells and simulates only the remainder, so the
// combined output is byte-identical to an uninterrupted run (results are
// always committed and rendered in sweep order, never in completion
// order).
//
// Robustness over the file format: a crash mid-write leaves at most one
// partial final line. OpenJournal detects the corrupt tail, truncates the
// file back to the last complete entry, and re-runs only the lost cell.
// Restored results do not keep their marshaled Spec — JSON does not
// round-trip every Spec field bit-exactly — the caller's canonical
// normalized spec replaces it (see Runner.fromJournal and
// RunSpecsJournaled).
package exp

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// journalEntry is one line of the file.
type journalEntry struct {
	Key    string `json:"key"`
	Result Result `json:"result"`
}

// Journal appends completed sweep cells to a JSON-lines file.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// OpenJournal opens (creating if needed) the journal at path and returns
// it together with every result recoverable from previous runs, keyed by
// Spec.key(). A trailing partial or corrupt line — the signature of a
// crash mid-append — is truncated away so the file stays valid for
// appending.
func OpenJournal(path string) (*Journal, map[string]Result, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if err := lockJournal(f.Fd()); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal %s: already locked by another process (flock: %w); "+
			"two writers interleaving appends would corrupt the journal — "+
			"stop the other process or use a different journal path", path, err)
	}
	loaded := map[string]Result{}
	var good int64 // offset just past the last fully parsed line
	rd := bufio.NewReader(f)
	var off int64
	for {
		line, err := rd.ReadBytes('\n')
		off += int64(len(line))
		complete := err == nil // a line without trailing \n is a torn write
		if len(line) > 0 && complete {
			var e journalEntry
			if jerr := json.Unmarshal(line, &e); jerr != nil || e.Key == "" {
				// Corrupt interior line: everything after it is suspect
				// too, so stop here and truncate.
				break
			}
			loaded[e.Key] = e.Result
			good = off
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal %s: %w", path, err)
		}
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal %s: truncate torn tail: %w", path, err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal %s: %w", path, err)
	}
	return &Journal{f: f, path: path}, loaded, nil
}

// Append writes one completed cell and syncs it to stable storage.
// Safe for concurrent use.
func (j *Journal) Append(key string, res Result) error {
	b, err := json.Marshal(journalEntry{Key: key, Result: res})
	if err != nil {
		return err
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(b); err != nil {
		return err
	}
	return j.f.Sync()
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// LockFile takes the journal subsystem's advisory single-writer lock on
// an open file descriptor (non-blocking flock on unix, no-op elsewhere).
// Exported so other append-only durable files — the daemon's accept
// journal — share exactly this protocol: the lock dies with the process,
// so a crashed holder never wedges the path.
func LockFile(fd uintptr) error { return lockJournal(fd) }

// Close releases the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
