// Package exp is the experiment harness: it builds a network + workload +
// policy from a declarative spec, runs the simulation with a warmup, and
// measures the quantities the paper's tables and figures report. Figure
// generators (figures.go) compose sweeps of these runs into the same
// rows/series the paper plots.
package exp

import (
	"context"
	"fmt"

	"memnet/internal/audit"
	"memnet/internal/core"
	"memnet/internal/dram"
	"memnet/internal/fault"
	"memnet/internal/link"
	"memnet/internal/metrics"
	"memnet/internal/network"
	"memnet/internal/power"
	"memnet/internal/sim"
	"memnet/internal/stats"
	"memnet/internal/topology"
	"memnet/internal/workload"
)

// NetworkSize selects the paper's two studies: small maps 4 GB of address
// space per module, big maps 1 GB (§III-C).
type NetworkSize int

const (
	// Small is the 4 GB/module study (avg 5 modules).
	Small NetworkSize = iota
	// Big is the 1 GB/module study (avg ~18 modules).
	Big
)

// String implements fmt.Stringer.
func (s NetworkSize) String() string {
	if s == Small {
		return "small"
	}
	return "big"
}

// ChunkGB returns the per-module address chunk.
func (s NetworkSize) ChunkGB() int {
	if s == Small {
		return 4
	}
	return 1
}

// Mech bundles a bandwidth mechanism with the ROO flag, named like the
// paper's series (FP, VWL, ROO, VWL+ROO, DVFS, DVFS+ROO).
type Mech struct {
	BW  link.Mechanism
	ROO bool
}

// The mechanism sets the paper evaluates.
var (
	MechFP      = Mech{link.MechNone, false}
	MechVWL     = Mech{link.MechVWL, false}
	MechROO     = Mech{link.MechNone, true}
	MechVWLROO  = Mech{link.MechVWL, true}
	MechDVFS    = Mech{link.MechDVFS, false}
	MechDVFSROO = Mech{link.MechDVFS, true}
)

// String implements fmt.Stringer.
func (m Mech) String() string {
	switch {
	case m.BW == link.MechNone && !m.ROO:
		return "FP"
	case m.BW == link.MechNone && m.ROO:
		return "ROO"
	case m.ROO:
		return m.BW.String() + "+ROO"
	default:
		return m.BW.String()
	}
}

// Spec declares one simulation run.
type Spec struct {
	Workload *workload.Profile
	Topology topology.Kind
	Size     NetworkSize
	Mech     Mech
	Policy   core.PolicyKind
	Alpha    float64
	Wakeup   sim.Duration // 0 = 14 ns default
	SimTime  sim.Duration // measured interval (after warmup)
	Warmup   sim.Duration
	// Interleave switches to page-interleaved mapping (§VII-A pairing
	// for the static baseline).
	Interleave bool
	// CollectLinkHours enables the Fig. 13 histogram.
	CollectLinkHours bool
	// SeedSalt perturbs the workload seed (0 for the paper runs; used by
	// robustness tests).
	SeedSalt uint64
	// Faults schedules fault injection (empty = fault-free run).
	Faults fault.Scenario
	// RequestTimeout arms the front end's outstanding-request table with
	// this per-request deadline; MaxRetries bounds timeout re-issues.
	// Zero leaves the legacy wait-forever behavior untouched.
	RequestTimeout sim.Duration
	MaxRetries     int
	// RetrainLatency overrides every link's lane-training latency for the
	// repair/escalation path (0 = link.RetrainDefault); CRCRetryLimit
	// bounds consecutive CRC retries per packet before a link escalates
	// (0 = link.DefaultMaxCRCRetries).
	RetrainLatency sim.Duration
	CRCRetryLimit  int
	// Watchdog arms the no-progress detector; a detected stall fails the
	// run with the diagnostic dump instead of hanging or silently
	// finishing short.
	Watchdog bool
	// AuditEvery arms the runtime invariant auditor with this sampling
	// stride (1 = check every observation, the full-rate property-test
	// mode). Zero and negative leave the run unaudited; Runner.normalize
	// resolves zero to the runner's default. Detected violations fail the
	// run with a structured *audit.Error. The auditor is observational —
	// it cannot change a result — so AuditEvery is deliberately excluded
	// from key(): audited and unaudited runs share cache and journal
	// entries.
	AuditEvery int
	// DRAM overrides every module's DRAM configuration (nil = Table I via
	// network.DefaultConfig). The calibration sensitivity sweep perturbs
	// one timing parameter at a time through it. omitempty keeps journal
	// records byte-identical to pre-override ones when unset, matching
	// key()'s only-when-set suffix.
	DRAM *dram.Config `json:",omitempty"`
	// PeakWatts overrides the [12] high-radix peak power (0 = the
	// published 13.4 W; low radix stays half the high-radix value).
	PeakWatts float64 `json:",omitempty"`
	// MetricsInterval arms the epoch-resolution metrics sampler over the
	// measured interval with this sampling period (0 = disabled). The
	// sampler only reads state, so every measured quantity is unchanged,
	// but its ticker schedules kernel events — Result.Events grows — so
	// unlike AuditEvery it participates in key() (appended only when set,
	// keeping old keys and journals intact).
	MetricsInterval sim.Duration
}

// key identifies a spec for memoization. The footprint rides along with
// the workload name because studies that perturb a named profile (e.g. the
// scaling study's truncated is.D) must not collide with the original.
func (s Spec) key() string {
	k := fmt.Sprintf("%s/%dGB|%s|%s|%s|%s|%g|%d|%d|%d|%v|%v|%d",
		s.Workload.Name, s.Workload.FootprintGB, s.Topology, s.Size, s.Mech, s.Policy, s.Alpha,
		s.Wakeup, s.SimTime, s.Warmup, s.Interleave, s.CollectLinkHours, s.SeedSalt)
	if len(s.Faults.Events) > 0 || s.RequestTimeout > 0 || s.Watchdog {
		k += fmt.Sprintf("|f=%s|t=%d|r=%d|w=%v",
			s.Faults.Key(), s.RequestTimeout, s.MaxRetries, s.Watchdog)
	}
	// Recovery knobs append their own block so fault-free keys are
	// unchanged from previous releases (journal compatibility).
	if s.RetrainLatency > 0 || s.CRCRetryLimit > 0 {
		k += fmt.Sprintf("|rt=%d|crc=%d", s.RetrainLatency, s.CRCRetryLimit)
	}
	if s.MetricsInterval > 0 {
		k += fmt.Sprintf("|m=%d", s.MetricsInterval)
	}
	// Model-calibration overrides append last, again only when set, so
	// every key minted before they existed is reproduced verbatim.
	if s.DRAM != nil {
		k += "|dram=" + s.DRAM.Fingerprint()
	}
	if s.PeakWatts > 0 {
		k += fmt.Sprintf("|pw=%g", s.PeakWatts)
	}
	return k
}

// Key returns the spec's stable identity string — the memoization and
// journal key — for labeling exported artifacts (metrics dumps).
func (s Spec) Key() string { return s.key() }

// resolved applies Run's time/wakeup defaults. Fresh results carry the
// resolved spec, so journal restores resolve too — otherwise a restored
// Result.Spec would differ from a recomputed one.
func (s Spec) resolved() Spec {
	if s.SimTime <= 0 {
		s.SimTime = DefaultSimTime
	}
	if s.Warmup < 0 {
		s.Warmup = DefaultWarmup
	}
	if s.Wakeup <= 0 {
		s.Wakeup = link.WakeupDefault
	}
	return s
}

// seed derives the workload seed. It deliberately excludes mechanism,
// policy and α so that comparisons against the FP baseline are paired
// (same arrival process), as in the paper's relative measurements.
func (s Spec) seed() uint64 {
	h := uint64(1469598103934665603)
	mix := func(str string) {
		for i := 0; i < len(str); i++ {
			h ^= uint64(str[i])
			h *= 1099511628211
		}
	}
	mix(s.Workload.Name)
	mix(s.Topology.String())
	mix(s.Size.String())
	h ^= s.SeedSalt
	return h
}

// Result carries every measurement the figures need.
type Result struct {
	Spec    Spec
	Modules int
	// Power is the average power over the measured interval for the
	// whole network; PerHMC divides by the module count (Fig. 5/11).
	Power  power.Breakdown
	PerHMC power.Breakdown
	// Throughput is completed accesses/s (the paper's performance
	// metric for relative comparisons).
	Throughput float64
	// ChannelUtil is the busier direction of the processor link;
	// LinkUtil the mean over all links (Fig. 9).
	ChannelUtil float64
	LinkUtil    float64
	// LinksPerAccess is Fig. 6's metric.
	LinksPerAccess float64
	AvgReadLatency sim.Duration
	// Read-latency tail over the measured interval.
	P50, P95, P99 sim.Duration
	Hist          *stats.LinkHourHist
	Violations    uint64
	Granted       uint64
	Events        uint64
	Slots         int
	// Fault-run measurements (zero values on healthy runs).
	Faults         network.FaultStats
	FrontEndFaults workload.FrontEndFaultStats
	FaultsInjected fault.Counts
	// Availability summarizes per-module up/down accounting over the whole
	// run (Availability == 1 with no outages on healthy runs).
	Availability stats.AvailabilityReport
	// TimedOutIDs lists every read attempt that hit its deadline, in
	// expiry order (the determinism fixture for fault runs).
	TimedOutIDs []uint64
	// Metrics is the frozen time-series of a metrics-armed run (nil when
	// Spec.MetricsInterval is zero). It covers the measured interval:
	// sampling starts at the warmup boundary.
	Metrics *metrics.Dump
}

// IdleIOFraction returns idle I/O power over total network power (Fig. 8).
func (r Result) IdleIOFraction() float64 {
	t := r.Power.Total()
	if t == 0 {
		return 0
	}
	return r.Power.IdleIO / t
}

// DefaultSimTime and DefaultWarmup balance fidelity against the harness
// running every paper sweep on one CPU; the paper's 10 ms windows are
// available via the -simtime flag of cmd/experiments.
var (
	DefaultSimTime = 400 * sim.Microsecond
	DefaultWarmup  = 100 * sim.Microsecond
)

// Budget bounds one run's resource consumption beyond what the spec
// itself implies. The zero Budget is unlimited.
type Budget struct {
	// MaxEvents aborts the run once the kernel has processed this many
	// events (0 = unlimited). The overrun is at most one check interval.
	MaxEvents uint64
	// CheckEvery is the cancellation/budget check stride in kernel events
	// (0 = sim.DefaultCheckEvery). Smaller strides abort faster at a
	// slightly higher per-event cost.
	CheckEvery uint64
}

// BudgetError reports a run aborted for exceeding its event budget.
type BudgetError struct {
	Events    uint64
	MaxEvents uint64
}

// Error implements error.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("event budget exhausted: %d events processed (budget %d)", e.Events, e.MaxEvents)
}

// Run executes one spec.
func Run(spec Spec) (Result, error) { return RunBudgeted(context.Background(), spec, Budget{}) }

// RunCtx executes one spec under ctx: cancellation (client disconnect,
// signal, deadline) stops the simulation within one kernel check
// interval and returns ctx's error, so an abandoned run stops burning
// CPU almost immediately instead of completing into the void.
func RunCtx(ctx context.Context, spec Spec) (Result, error) {
	return RunBudgeted(ctx, spec, Budget{})
}

// RunBudgeted is RunCtx with a resource budget enforced inside the
// kernel's run loop. An aborted run returns an error wrapping ctx.Err()
// or a *BudgetError; errors.Is(err, context.Canceled) therefore
// identifies cancellations through every layer above.
func RunBudgeted(ctx context.Context, spec Spec, budget Budget) (Result, error) {
	if spec.Workload == nil {
		return Result{}, fmt.Errorf("exp: spec needs a workload")
	}
	if err := spec.Workload.Validate(); err != nil {
		return Result{}, err
	}
	spec = spec.resolved()

	kernel := sim.NewKernel()
	// Arm the cooperative check only when there is something to enforce:
	// a cancelable context (ctx.Done() non-nil) or an event budget. The
	// unarmed hot loop pays a single predictable branch, so plain Run
	// callers are unaffected (CancelOverhead in BENCH_sweep.json prices
	// the armed case).
	if ctx.Done() != nil || budget.MaxEvents > 0 {
		kernel.SetCheck(budget.CheckEvery, func() error {
			if err := ctx.Err(); err != nil {
				return err
			}
			if budget.MaxEvents > 0 && kernel.Processed() >= budget.MaxEvents {
				return &BudgetError{Events: kernel.Processed(), MaxEvents: budget.MaxEvents}
			}
			return nil
		})
	}
	nModules := spec.Workload.Modules(spec.Size.ChunkGB())
	topo, err := topology.Build(spec.Topology, nModules)
	if err != nil {
		return Result{}, err
	}

	netCfg := network.DefaultConfig()
	netCfg.Mechanism = spec.Mech.BW
	netCfg.ROO = spec.Mech.ROO
	netCfg.Wakeup = spec.Wakeup
	netCfg.ChunkBytes = uint64(spec.Size.ChunkGB()) << 30
	netCfg.Interleave = spec.Interleave
	netCfg.Retrain = spec.RetrainLatency
	netCfg.MaxCRCRetries = spec.CRCRetryLimit
	if spec.DRAM != nil {
		if err := spec.DRAM.Validate(); err != nil {
			return Result{}, err
		}
		netCfg.DRAM = *spec.DRAM
	}
	if spec.PeakWatts > 0 {
		pm := power.DefaultModel()
		pm.PeakWatts = spec.PeakWatts
		netCfg.Power = &pm
	}
	net := network.New(kernel, topo, netCfg)

	mcfg := core.DefaultConfig(spec.Policy, spec.Alpha)
	mcfg.CollectLinkHours = spec.CollectLinkHours
	mgr := core.Attach(kernel, net, mcfg)

	var aud *audit.Auditor
	if spec.AuditEvery > 0 {
		aud = audit.New(audit.Config{SampleEvery: uint64(spec.AuditEvery)}, kernel.Now)
		net.AttachAudit(aud)
		aud.RegisterSweep(func(now sim.Time, report func(component, rule, detail string)) {
			if err := kernel.CheckInvariants(); err != nil {
				report("kernel", "event-queue", err.Error())
			}
		})
	}

	// The metrics registry attaches before traffic exists but stays
	// silent until Start at the warmup boundary: a disabled run (nil
	// registry) registers nothing and schedules nothing, so its event
	// sequence is byte-identical to builds without metrics.
	var reg *metrics.Registry
	if spec.MetricsInterval > 0 {
		reg = metrics.New(kernel, metrics.Config{Interval: spec.MetricsInterval})
		net.AttachMetrics(reg)
		mgr.AttachMetrics(reg)
	}

	fcfg := workload.DefaultFrontEndConfig(spec.seed())
	fcfg.Timeout = spec.RequestTimeout
	fcfg.MaxRetries = spec.MaxRetries
	fe, err := workload.NewFrontEnd(kernel, net, spec.Workload, fcfg)
	if err != nil {
		return Result{}, err
	}
	fe.AttachMetrics(reg)
	if aud != nil {
		// Flit/request conservation across the front-end boundary: every
		// injected read is either an original issue or a timeout retry, and
		// writes map one-to-one. Holds mid-event because both sides update
		// their counters before anything samplable runs.
		aud.RegisterSweep(func(now sim.Time, report func(component, rule, detail string)) {
			injR, injW := net.Injected()
			issR, issW := fe.Issued()
			if retries := fe.FaultStats().Retries; injR != issR+retries {
				report("frontend", "read-conservation", fmt.Sprintf(
					"injected reads %d != issued %d + retries %d", injR, issR, retries))
			}
			if injW != issW {
				report("frontend", "write-conservation", fmt.Sprintf(
					"injected writes %d != issued %d", injW, issW))
			}
			if out := fe.Outstanding(); out < 0 {
				report("frontend", "outstanding-negative", fmt.Sprintf(
					"outstanding request count %d", out))
			}
		})
	}

	var inj *fault.Injector
	if len(spec.Faults.Events) > 0 {
		inj, err = fault.Attach(net, spec.Faults)
		if err != nil {
			return Result{}, err
		}
	}
	var dog *sim.Watchdog
	if spec.Watchdog {
		dog = sim.NewWatchdog(kernel, sim.DefaultWatchdogConfig(),
			fe.Outstanding, fe.Progress, net.DumpState)
		dog.Start()
	}
	fe.Start()

	kernel.Run(spec.Warmup)
	if err := kernel.Err(); err != nil {
		return Result{}, fmt.Errorf("exp: %s: aborted after %d events: %w", spec.key(), kernel.Processed(), err)
	}
	snap0 := net.TakeSnapshot()
	net.LatencyHist().Reset()
	aud.RunSweeps() // full pass at the warmup boundary (nil-safe)
	// Metrics cover the measured interval only; starting after the
	// latency-histogram reset keeps its cumulative pulls monotone.
	reg.Start(spec.Warmup + spec.SimTime)
	kernel.Run(spec.Warmup + spec.SimTime)
	if err := kernel.Err(); err != nil {
		return Result{}, fmt.Errorf("exp: %s: aborted after %d events: %w", spec.key(), kernel.Processed(), err)
	}
	snap1 := net.TakeSnapshot()
	if dog != nil {
		dog.CheckDrained()
		dog.Stop()
		if dog.Stalled() {
			return Result{}, fmt.Errorf("exp: %s run stalled:\n%s", spec.key(), dog.Report())
		}
	}

	res := Result{
		Spec:           spec,
		Modules:        nModules,
		Power:          network.IntervalPower(snap0, snap1),
		Throughput:     network.Throughput(snap0, snap1),
		ChannelUtil:    network.ChannelUtilization(snap0, snap1),
		LinkUtil:       network.AvgLinkUtilization(snap0, snap1),
		LinksPerAccess: network.LinksPerAccess(snap0, snap1),
		AvgReadLatency: network.AvgReadLatency(snap0, snap1),
		P50:            net.LatencyHist().Percentile(0.50),
		P95:            net.LatencyHist().Percentile(0.95),
		P99:            net.LatencyHist().Percentile(0.99),
		Hist:           mgr.Hist,
		Events:         kernel.Processed(),
		Slots:          fe.Slots(),
	}
	res.PerHMC = res.Power.Scale(1 / float64(nModules))
	res.Violations, res.Granted = mgr.Violations()
	res.Faults = net.FaultStats()
	res.FrontEndFaults = fe.FaultStats()
	res.Availability = net.AvailabilityReport()
	res.TimedOutIDs = append([]uint64(nil), fe.TimedOutIDs()...)
	res.Metrics = reg.Dump() // nil when metrics are disabled
	if inj != nil {
		res.FaultsInjected = inj.Counts()
	}
	if aud != nil {
		// End-of-run audit: a final full sweep over every registered
		// component, then the interval-level energy checks. These read the
		// snapshots (already integrated) rather than live accumulators, so
		// they cannot perturb the accounting they validate.
		aud.RunSweeps()
		if snap1.Energy.Total() < snap0.Energy.Total() {
			aud.Reportf("power", "energy-monotone",
				"interval energy decreased: %g J -> %g J", snap0.Energy.Total(), snap1.Energy.Total())
		}
		if err := snap1.Energy.Check(); err != nil {
			aud.Reportf("power", "cumulative-energy", "%v", err)
		}
		if err := res.Power.Check(); err != nil {
			aud.Reportf("power", "interval-power", "%v", err)
		}
		if err := aud.Err(); err != nil {
			return Result{}, fmt.Errorf("exp: %s: %w", spec.key(), err)
		}
	}
	return res, nil
}

// Runner memoizes runs so figure generators can share FP baselines, and
// centralizes sim-time overrides.
type Runner struct {
	SimTime sim.Duration
	Warmup  sim.Duration
	// Ctx, when non-nil, threads end-to-end cancellation through every
	// cell the runner executes (locally or via the pool): canceling it
	// aborts in-flight simulations within one kernel check interval and
	// fails the remaining cells with the context's error. Nil means
	// context.Background() — the legacy run-to-completion behavior.
	Ctx context.Context
	// Watchdog arms the no-progress detector on every run, so a hung
	// sweep (or benchmark) fails fast with a diagnostic instead of
	// spinning until an external timeout.
	Watchdog bool
	// Jobs is the sweep executor's worker count: 0 means
	// runtime.GOMAXPROCS(0), 1 is the legacy fully sequential path. Any
	// value produces byte-identical figure output (see sweep_test.go);
	// only wall-clock time changes.
	Jobs int
	// Faults, when non-empty, attaches the scenario to every spec that
	// does not carry its own — the whole figure sweep re-run under fault
	// injection.
	Faults fault.Scenario
	// Retrain and CRCRetries apply the recovery knobs (lane-training
	// latency, CRC retry cap) to every spec that does not carry its own.
	Retrain    sim.Duration
	CRCRetries int
	// Workloads restricts figure sweeps to a subset (nil = all 14 paper
	// workloads). Tests use it to exercise the generators cheaply.
	Workloads []*workload.Profile
	// Progress, if non-nil, receives one line per fresh (non-cached) run,
	// always in deterministic sweep order.
	Progress func(string)
	// Audit sets the invariant auditor's sampling stride for every run
	// that does not carry its own: 0 means the default stride
	// (audit.DefaultSampleEvery), negative disables auditing, positive is
	// an explicit stride (1 = full rate).
	Audit int
	// Metrics arms the epoch-resolution sampler on every spec that does
	// not carry its own interval (0 = off). Dumps of metrics-armed cells
	// accumulate in first-use order — identical at any Jobs value — and
	// are read back with MetricsEntries.
	Metrics sim.Duration
	cache   map[string]Result

	// metricsLog collects each metrics-armed cell's frozen time-series,
	// exactly once per distinct cell, in deterministic first-use order.
	metricsLog []metrics.Entry

	// journal, when attached, persists every fresh result as one JSON
	// line so an interrupted sweep resumes without recomputation;
	// journaled holds the results restored from a previous run, consumed
	// (and re-keyed to the caller's canonical spec) on first use.
	journal   *Journal
	journaled map[string]Result
	// failures records cells that errored or panicked; the sweep carries
	// on with placeholder results and the caller decides how loudly to
	// fail (see Failures).
	failures []CellFailure

	// collecting flips Run into cell-recording mode: instead of
	// simulating, Run enqueues the spec and returns a placeholder result.
	// Generate's first pass uses it to discover a generator's sweep cells
	// before fanning them across the worker pool (see sweep.go).
	collecting bool
	pending    []Spec
	pendingKey map[string]bool
}

// NewRunner returns a runner with the package defaults.
func NewRunner() *Runner {
	return &Runner{SimTime: DefaultSimTime, Warmup: DefaultWarmup, cache: map[string]Result{}}
}

// normalize applies the runner's settings to spec. Every path that
// computes a cache key — live runs, the collect pass, and Prefetch — goes
// through it so keys always agree.
func (r *Runner) normalize(spec Spec) Spec {
	if spec.SimTime <= 0 {
		spec.SimTime = r.SimTime
	}
	if spec.Warmup <= 0 {
		spec.Warmup = r.Warmup
	}
	if r.Watchdog {
		spec.Watchdog = true
	}
	if len(spec.Faults.Events) == 0 && len(r.Faults.Events) > 0 {
		spec.Faults = r.Faults
	}
	if spec.RetrainLatency <= 0 && r.Retrain > 0 {
		spec.RetrainLatency = r.Retrain
	}
	if spec.CRCRetryLimit <= 0 && r.CRCRetries > 0 {
		spec.CRCRetryLimit = r.CRCRetries
	}
	if spec.AuditEvery == 0 {
		switch {
		case r.Audit < 0:
			spec.AuditEvery = -1
		case r.Audit == 0:
			spec.AuditEvery = audit.DefaultSampleEvery
		default:
			spec.AuditEvery = r.Audit
		}
	}
	if spec.MetricsInterval <= 0 && r.Metrics > 0 {
		spec.MetricsInterval = r.Metrics
	}
	return spec
}

// recordMetrics logs a committed cell's time-series for MetricsEntries.
// Both commit paths — the sequential Run and the pooled Prefetch — call
// it exactly once per distinct cell, in the generator's first-use order,
// which is what makes the exported metrics identical at any Jobs value.
func (r *Runner) recordMetrics(key string, res Result) {
	if res.Metrics != nil {
		r.metricsLog = append(r.metricsLog, metrics.Entry{Key: key, Dump: res.Metrics})
	}
}

// MetricsEntries returns the frozen time-series of every metrics-armed
// cell committed so far, in deterministic first-use order.
func (r *Runner) MetricsEntries() []metrics.Entry { return r.metricsLog }

// Run executes (or recalls) a spec with the runner's time settings.
func (r *Runner) Run(spec Spec) Result {
	spec = r.normalize(spec)
	k := spec.key()
	if res, ok := r.cache[k]; ok {
		return res
	}
	if r.collecting {
		if !r.pendingKey[k] {
			r.pendingKey[k] = true
			r.pending = append(r.pending, spec)
		}
		// Placeholder carrying just the fields generators dereference
		// while rendering; the collect pass's output is discarded.
		return Result{Spec: spec, Hist: &stats.LinkHourHist{}}
	}
	if res, ok := r.fromJournal(k, spec); ok {
		if r.Progress != nil {
			r.Progress(fmt.Sprintf("restored %s from journal", k))
		}
		r.cache[k] = res
		r.recordMetrics(k, res)
		return res
	}
	res, err := runCellCtx(r.ctx(), spec, Budget{})
	if err != nil {
		// A failed cell (audit violation, stall, or recovered panic) fails
		// gracefully: record it, cache a placeholder so rendering
		// completes, and let the caller inspect Failures().
		r.failures = append(r.failures, CellFailure{Key: k, Err: err})
		if r.Progress != nil {
			r.Progress(fmt.Sprintf("FAILED %s: %v", k, err))
		}
		res = Result{Spec: spec, Hist: &stats.LinkHourHist{}}
		r.cache[k] = res
		return res
	}
	if r.Progress != nil {
		r.Progress(fmt.Sprintf("ran %s (%.1fM events)", k, float64(res.Events)/1e6))
	}
	if r.journal != nil {
		if err := r.journal.Append(k, res); err != nil {
			r.failures = append(r.failures, CellFailure{Key: k, Err: fmt.Errorf("journal: %w", err)})
		}
	}
	r.cache[k] = res
	r.recordMetrics(k, res)
	return res
}

// ctx resolves the runner's context.
func (r *Runner) ctx() context.Context {
	if r.Ctx != nil {
		return r.Ctx
	}
	return context.Background()
}

// CellFailure is one sweep cell that could not produce a result.
type CellFailure struct {
	Key string
	Err error
}

// Failures returns every cell failure recorded so far, in the order the
// cells ran.
func (r *Runner) Failures() []CellFailure { return r.failures }

// AttachJournal directs the runner to restore results from loaded (keyed
// by Spec.key) and to append every fresh result to j.
func (r *Runner) AttachJournal(j *Journal, loaded map[string]Result) {
	r.journal = j
	r.journaled = loaded
}

// fromJournal consumes a restored result for k, if present.
func (r *Runner) fromJournal(k string, spec Spec) (Result, bool) {
	res, ok := r.journaled[k]
	if !ok {
		return Result{}, false
	}
	delete(r.journaled, k)
	return CanonicalResult(res, spec), true
}

// CanonicalResult aligns a result that crossed a serialization boundary
// — a journal restore or the distributed wire — with the caller's
// canonical spec. The marshaled Spec is always replaced: JSON does not
// round-trip every Spec field bit-exactly, and downstream baseline
// lookups re-derive keys from res.Spec. It is the single merge entry
// point shared by journal resume (fromJournal, RunSpecsJournaled) and
// the distributed coordinator (internal/dist), which is what makes a
// merged distributed journal byte-identical to a single-process one.
func CanonicalResult(res Result, spec Spec) Result {
	res.Spec = spec.resolved()
	if res.Hist == nil {
		res.Hist = &stats.LinkHourHist{}
	}
	return res
}

// FPBaseline returns the paired full-power run for spec.
func (r *Runner) FPBaseline(spec Spec) Result {
	spec.Mech = MechFP
	spec.Policy = core.PolicyNone
	spec.Alpha = 0
	spec.Wakeup = 0
	spec.CollectLinkHours = false
	spec.Interleave = false
	return r.Run(spec)
}

// PerfDegradation returns the throughput loss of res vs the paired FP
// baseline (positive = slower).
func (r *Runner) PerfDegradation(res Result) float64 {
	fp := r.FPBaseline(res.Spec)
	if fp.Throughput == 0 {
		return 0
	}
	return 1 - res.Throughput/fp.Throughput
}
