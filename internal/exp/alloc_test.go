package exp

import (
	"runtime"
	"testing"

	"memnet/internal/core"
	"memnet/internal/sim"
	"memnet/internal/topology"
	"memnet/internal/workload"
)

// runMallocs executes one cell and returns the mallocs and simulated
// events it cost the process. Construction allocations are included —
// callers difference two runs of the same spec to isolate the
// steady-state cost.
func runMallocs(t *testing.T, spec Spec) (mallocs, events uint64) {
	t.Helper()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	res, err := Run(spec)
	runtime.ReadMemStats(&after)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return after.Mallocs - before.Mallocs, res.Events
}

// TestRunSteadyStateZeroAllocs is the simulation-level counterpart of
// the kernel's zero-alloc benchmarks: once a cell is warmed up, running
// it LONGER must not allocate. Two runs of the same spec differ only in
// SimTime, so differencing their malloc counts cancels the identical
// construction/warmup cost and isolates what the extra simulated time
// allocated. The pooled event and packet free lists (deliver, off-check,
// DRAM completion, burst, issue, timeout actions; the per-link packet
// pool) plus the timing wheel's in-place slot reuse make that difference
// a handful of runtime-background allocations against hundreds of
// thousands of extra events — 0 allocs/op to three decimal places.
func TestRunSteadyStateZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hundred-microsecond cells")
	}
	for _, tc := range []struct {
		name string
		topo topology.Kind
	}{
		{"daisychain", topology.DaisyChain},
		{"star", topology.Star},
	} {
		t.Run(tc.name, func(t *testing.T) {
			wl, err := workload.ByName("mixB")
			if err != nil {
				t.Fatal(err)
			}
			spec := Spec{
				Workload: wl, Topology: tc.topo, Size: Small,
				Mech: MechFP, Policy: core.PolicyNone, Alpha: 0.05,
				Warmup: 25 * sim.Microsecond, AuditEvery: -1,
			}
			short, long := spec, spec
			short.SimTime = 100 * sim.Microsecond
			long.SimTime = 900 * sim.Microsecond

			// One throwaway run so lazy runtime/test-harness state is
			// initialized before anything is measured.
			if _, err := Run(short); err != nil {
				t.Fatal(err)
			}

			mShort, evShort := runMallocs(t, short)
			mLong, evLong := runMallocs(t, long)
			extraEv := evLong - evShort
			if extraEv < 100_000 {
				t.Fatalf("extension added only %d events; spec too small to measure", extraEv)
			}
			var extra uint64
			if mLong > mShort {
				extra = mLong - mShort
			}
			// The budget absorbs runtime background noise (GC worker
			// wakeups, timer churn), not simulation allocations: even 64
			// mallocs over ~10^5-10^6 extra events rounds to 0.000/op.
			const budget = 64
			t.Logf("%s: +%d events cost %d mallocs (%.6f/op)",
				tc.name, extraEv, extra, float64(extra)/float64(extraEv))
			if extra > budget {
				t.Fatalf("steady state allocates: %d extra mallocs over %d extra events (%.6f/op, budget %d total)",
					extra, extraEv, float64(extra)/float64(extraEv), budget)
			}
		})
	}
}
