package exp

import (
	"fmt"
	"strings"
)

// Table is a minimal fixed-width text table for experiment reports.
type Table struct {
	Title  string
	header []string
	rows   [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, cols ...string) *Table {
	return &Table{Title: title, header: cols}
}

// Row appends one row; missing cells render empty.
func (t *Table) Row(cells ...string) {
	t.rows = append(t.rows, cells)
}

// Rowf appends a row whose first cell is a label and remaining cells are
// formatted values.
func (t *Table) Rowf(label string, format string, vals ...float64) {
	row := []string{label}
	for _, v := range vals {
		row = append(row, fmt.Sprintf(format, v))
	}
	t.Row(row...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, w := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", w, c)
			} else {
				fmt.Fprintf(&b, "  %*s", w, c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.header)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (for plotting scripts).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// pct formats a fraction as a percentage.
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// watts formats a power value.
func watts(x float64) string { return fmt.Sprintf("%.2fW", x) }
