package exp

import (
	"strings"
	"testing"

	"memnet/internal/sim"
	"memnet/internal/workload"
)

// tinyRunner sweeps a single fast workload with microscopic sim windows so
// every generator's full control flow runs in test time.
func tinyRunner() *Runner {
	r := NewRunner()
	r.SimTime = 30 * sim.Microsecond
	r.Warmup = 10 * sim.Microsecond
	small := tinyProfile()
	small.Name = "tiny" // 2 modules small, 8 big
	r.Workloads = []*workload.Profile{small}
	return r
}

// TestEveryGeneratorRenders runs every registered experiment end to end on
// the reduced sweep and checks the output is a plausible table.
func TestEveryGeneratorRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy generator sweep")
	}
	r := tinyRunner()
	for _, e := range Registry {
		if e.Name == "alphasweep" || e.Name == "scaling" || e.Name == "seeds" {
			continue // fixed workload lists; covered separately
		}
		out := e.Run(r)
		if len(out) < 40 || !strings.Contains(out, "\n") {
			t.Errorf("%s rendered %d bytes", e.Name, len(out))
		}
	}
}

// TestAlphaSweepRenders covers the fixed-workload alpha sweep.
func TestAlphaSweepRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy generator sweep")
	}
	r := NewRunner()
	r.SimTime = 20 * sim.Microsecond
	r.Warmup = 5 * sim.Microsecond
	out := AlphaSweep(r)
	if !strings.Contains(out, "alpha") || strings.Count(out, "\n") < 6 {
		t.Errorf("alpha sweep output:\n%s", out)
	}
}

// TestExtensionGeneratorsRender covers the fixed-workload extensions.
func TestExtensionGeneratorsRender(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy generator sweep")
	}
	r := NewRunner()
	r.SimTime = 20 * sim.Microsecond
	r.Warmup = 5 * sim.Microsecond
	for _, name := range []string{"scaling", "seeds"} {
		e, _ := Lookup(name)
		out := e.Run(r)
		if strings.Count(out, "\n") < 4 {
			t.Errorf("%s output:\n%s", name, out)
		}
	}
}

func TestReportHeader(t *testing.T) {
	r := NewRunner()
	if !strings.Contains(ReportHeader(r), "warmup") {
		t.Fatal("header missing warmup")
	}
}
