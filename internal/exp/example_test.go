package exp_test

import (
	"fmt"

	"memnet/internal/core"
	"memnet/internal/exp"
	"memnet/internal/sim"
	"memnet/internal/topology"
	"memnet/internal/workload"
)

// Example runs one managed simulation through the harness and prints
// derived quantities. (Power and throughput vary with the model, so the
// example prints only structural facts.)
func Example() {
	wl, _ := workload.ByName("mixG")
	res, err := exp.Run(exp.Spec{
		Workload: wl,
		Topology: topology.Star,
		Size:     exp.Small,
		Mech:     exp.MechVWLROO,
		Policy:   core.PolicyAware,
		Alpha:    0.05,
		SimTime:  100 * sim.Microsecond,
		Warmup:   20 * sim.Microsecond,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("modules:", res.Modules)
	fmt.Println("has power:", res.Power.Total() > 0)
	fmt.Println("has throughput:", res.Throughput > 0)
	// Output:
	// modules: 2
	// has power: true
	// has throughput: true
}
