package exp

import (
	"strings"
	"testing"

	"memnet/internal/core"
	"memnet/internal/sim"
	"memnet/internal/topology"
	"memnet/internal/workload"
)

// tinyProfile keeps harness tests fast: small footprint, modest rate.
func tinyProfile() *workload.Profile {
	return &workload.Profile{
		Name: "tiny", Class: "test", Apps: "synthetic",
		FootprintGB: 8, ReadFraction: 0.7, TargetChannelUtil: 0.3,
		BurstPeriod: 4 * sim.Microsecond, BurstDuty: 0.7,
		AccessCDF: []workload.CDFPoint{{GB: 4, Cum: 0.7}, {GB: 8, Cum: 1}},
	}
}

func tinySpec(pol core.PolicyKind, mech Mech) Spec {
	return Spec{
		Workload: tinyProfile(),
		Topology: topology.Star,
		Size:     Small,
		Mech:     mech,
		Policy:   pol,
		Alpha:    0.05,
		SimTime:  150 * sim.Microsecond,
		Warmup:   50 * sim.Microsecond,
	}
}

func TestRunProducesCompleteResult(t *testing.T) {
	res, err := Run(tinySpec(core.PolicyNone, MechFP))
	if err != nil {
		t.Fatal(err)
	}
	if res.Modules != 2 {
		t.Fatalf("modules = %d, want 2 (8GB/4GB)", res.Modules)
	}
	if res.Throughput <= 0 || res.ChannelUtil <= 0 || res.LinkUtil <= 0 {
		t.Fatalf("empty metrics: %+v", res)
	}
	if res.Power.Total() <= 0 || res.PerHMC.Total() <= 0 {
		t.Fatal("no power measured")
	}
	if res.LinksPerAccess < 1 {
		t.Fatalf("links/access = %v", res.LinksPerAccess)
	}
	if res.AvgReadLatency < 30*sim.Nanosecond {
		t.Fatalf("latency = %v", res.AvgReadLatency)
	}
	if res.IdleIOFraction() <= 0 || res.IdleIOFraction() >= 1 {
		t.Fatalf("idle fraction = %v", res.IdleIOFraction())
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(tinySpec(core.PolicyAware, MechVWLROO))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tinySpec(core.PolicyAware, MechVWLROO))
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput != b.Throughput || a.Power.Total() != b.Power.Total() ||
		a.Events != b.Events {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestSeedIndependentOfPolicy(t *testing.T) {
	// Paired comparisons need identical arrival processes across
	// policies.
	a := tinySpec(core.PolicyNone, MechFP)
	b := tinySpec(core.PolicyAware, MechVWLROO)
	if a.seed() != b.seed() {
		t.Fatal("seed depends on policy/mechanism")
	}
	c := b
	c.Size = Big
	if c.seed() == b.seed() {
		t.Fatal("seed ignores size")
	}
}

func TestManagementSavesPowerWithinAlpha(t *testing.T) {
	r := NewRunner()
	r.SimTime = 150 * sim.Microsecond
	r.Warmup = 50 * sim.Microsecond
	spec := tinySpec(core.PolicyUnaware, MechVWLROO)
	res := r.Run(spec)
	fp := r.FPBaseline(spec)
	if res.Power.Total() >= fp.Power.Total() {
		t.Fatalf("management saved nothing: %v vs %v", res.Power.Total(), fp.Power.Total())
	}
	if deg := r.PerfDegradation(res); deg > 0.12 {
		t.Fatalf("degradation %.1f%% far beyond alpha", 100*deg)
	}
}

func TestRunnerCaches(t *testing.T) {
	r := NewRunner()
	r.SimTime = 100 * sim.Microsecond
	r.Warmup = 20 * sim.Microsecond
	fresh := 0
	r.Progress = func(string) { fresh++ }
	spec := tinySpec(core.PolicyNone, MechFP)
	r.Run(spec)
	r.Run(spec)
	if fresh != 1 {
		t.Fatalf("fresh runs = %d, want 1 (cache)", fresh)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Spec{}); err == nil {
		t.Fatal("nil workload accepted")
	}
	bad := tinySpec(core.PolicyNone, MechFP)
	bad.Workload = &workload.Profile{Name: "broken"}
	if _, err := Run(bad); err == nil {
		t.Fatal("invalid workload accepted")
	}
}

func TestMechStrings(t *testing.T) {
	for m, want := range map[Mech]string{
		MechFP: "FP", MechVWL: "VWL", MechROO: "ROO",
		MechVWLROO: "VWL+ROO", MechDVFS: "DVFS", MechDVFSROO: "DVFS+ROO",
	} {
		if m.String() != want {
			t.Errorf("%+v.String() = %q, want %q", m, m.String(), want)
		}
	}
}

func TestSizes(t *testing.T) {
	if Small.ChunkGB() != 4 || Big.ChunkGB() != 1 {
		t.Fatal("chunk sizes wrong")
	}
	if Small.String() != "small" || Big.String() != "big" {
		t.Fatal("size names wrong")
	}
}

func TestRegistryCoversEveryEvaluationArtifact(t *testing.T) {
	// The paper's evaluation artifacts: tables I-III, figures 4-18
	// (excluding schematics 7, 10, 14), §VII-A, plus the summary.
	want := []string{"tableI", "tableII", "tableIII", "fig4", "fig5", "fig6",
		"fig8", "fig9", "fig11", "fig12", "fig13", "fig15", "fig16", "fig17",
		"fig18", "static", "alphasweep", "scaling", "seeds", "avail", "summary"}
	for _, name := range want {
		if _, ok := Lookup(name); !ok {
			t.Errorf("experiment %q missing", name)
		}
	}
	if len(Registry) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(Registry), len(want))
	}
	seen := map[string]bool{}
	for _, n := range Names() {
		if seen[n] {
			t.Errorf("duplicate experiment %q", n)
		}
		seen[n] = true
	}
}

func TestLightExperimentsRender(t *testing.T) {
	r := NewRunner()
	r.SimTime = 100 * sim.Microsecond
	r.Warmup = 20 * sim.Microsecond
	for _, name := range []string{"tableI", "tableIII", "fig4"} {
		e, _ := Lookup(name)
		out := e.Run(r)
		if !strings.Contains(out, ":") || len(out) < 50 {
			t.Errorf("%s rendered %q", name, out)
		}
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := NewTable("T", "a", "bb")
	tbl.Row("x", "1")
	tbl.Rowf("y", "%.1f", 2.0)
	out := tbl.String()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "x") || !strings.Contains(out, "2.0") {
		t.Fatalf("table output:\n%s", out)
	}
	if pct(0.125) != "12.5%" || watts(1.234) != "1.23W" {
		t.Fatal("formatters broken")
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("T", "a", "b")
	tbl.Row("x,y", "1")
	tbl.Row(`quote"d`, "2")
	csv := tbl.CSV()
	want := "a,b\n\"x,y\",1\n\"quote\"\"d\",2\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestResultLatencyPercentiles(t *testing.T) {
	res, err := Run(tinySpec(core.PolicyNone, MechFP))
	if err != nil {
		t.Fatal(err)
	}
	if res.P50 <= 0 || res.P95 < res.P50 || res.P99 < res.P95 {
		t.Fatalf("percentiles broken: p50=%v p95=%v p99=%v", res.P50, res.P95, res.P99)
	}
	if res.P50 < 30*sim.Nanosecond {
		t.Fatalf("p50 = %v below DRAM latency", res.P50)
	}
}
