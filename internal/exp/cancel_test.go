package exp

import (
	"context"
	"errors"
	"strings"
	"testing"

	"memnet/internal/core"
)

// TestRunCtxCanceledAborts pins the end-to-end cancellation path: a
// pre-canceled context must abort the cell inside the kernel run loop
// (check stride 1 here, so immediately) and surface context.Canceled.
func TestRunCtxCanceledAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := tinySpec(core.PolicyNone, MechFP)
	_, err := RunBudgeted(ctx, spec, Budget{CheckEvery: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "aborted after") {
		t.Fatalf("error should report the abort point: %v", err)
	}
}

// TestRunBudgetedEventBudget pins that the event budget stops the run
// within one check interval of the threshold and reports a *BudgetError.
func TestRunBudgetedEventBudget(t *testing.T) {
	spec := tinySpec(core.PolicyNone, MechFP)
	const maxEvents, stride = 5000, 64
	_, err := RunBudgeted(context.Background(), spec, Budget{MaxEvents: maxEvents, CheckEvery: stride})
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BudgetError", err)
	}
	if be.MaxEvents != maxEvents {
		t.Fatalf("MaxEvents = %d, want %d", be.MaxEvents, maxEvents)
	}
	if be.Events < maxEvents || be.Events > maxEvents+stride {
		t.Fatalf("stopped at %d events, want within one %d-event interval past %d",
			be.Events, stride, maxEvents)
	}
}

// TestRunCtxBackgroundUnarmed pins that RunCtx with a background context
// and no budget never arms the kernel check: a plain Run and a
// background RunCtx produce identical results.
func TestRunCtxBackgroundUnarmed(t *testing.T) {
	spec := tinySpec(core.PolicyNone, MechFP)
	plain, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := RunCtx(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Events != ctxed.Events || plain.Throughput != ctxed.Throughput {
		t.Fatalf("RunCtx(Background) diverged from Run: %d/%v vs %d/%v",
			plain.Events, plain.Throughput, ctxed.Events, ctxed.Throughput)
	}
}

// TestRunSpecsAllCtxCanceled pins the pool-level contract: with a
// canceled context every unstarted cell fails fast with ctx.Err() and
// nothing simulates.
func TestRunSpecsAllCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	specs := []Spec{
		tinySpec(core.PolicyNone, MechFP),
		tinySpec(core.PolicyNone, MechVWL),
		tinySpec(core.PolicyUnaware, MechFP),
	}
	_, errs := RunSpecsAllCtx(ctx, specs, 2)
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cell %d: err = %v, want context.Canceled", i, err)
		}
	}
}

// TestRunnerCtxThreadsToCells pins that a Runner with a canceled Ctx
// records every sweep cell as a failure instead of simulating it.
func TestRunnerCtxThreadsToCells(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := NewRunner()
	r.Ctx = ctx
	r.Jobs = 2
	r.Prefetch([]Spec{
		tinySpec(core.PolicyNone, MechFP),
		tinySpec(core.PolicyNone, MechVWL),
	})
	fails := r.Failures()
	if len(fails) != 2 {
		t.Fatalf("failures = %d, want 2: %+v", len(fails), fails)
	}
	for _, f := range fails {
		if !errors.Is(f.Err, context.Canceled) {
			t.Fatalf("failure %s: %v, want context.Canceled", f.Key, f.Err)
		}
	}
}
