package exp

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"memnet/internal/audit"
	"memnet/internal/core"
	"memnet/internal/sim"
	"memnet/internal/topology"
)

// TestAuditChangesNothing is the core guarantee the auditor advertises:
// it is observational, so a fully audited run (stride 1) and an unaudited
// run produce identical Results field for field.
func TestAuditChangesNothing(t *testing.T) {
	for _, cfg := range []struct {
		pol  core.PolicyKind
		mech Mech
	}{
		{core.PolicyNone, MechFP},
		{core.PolicyAware, MechVWLROO},
		{core.PolicyUnaware, MechDVFSROO},
	} {
		plain := tinySpec(cfg.pol, cfg.mech)
		plain.AuditEvery = -1
		audited := tinySpec(cfg.pol, cfg.mech)
		audited.AuditEvery = 1
		a, err := Run(plain)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(audited)
		if err != nil {
			t.Fatalf("%s/%s audited run failed: %v", cfg.pol, cfg.mech, err)
		}
		a.Spec.AuditEvery, b.Spec.AuditEvery = 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s/%s: audited run diverged from unaudited:\nplain:   %+v\naudited: %+v",
				cfg.pol, cfg.mech, a, b)
		}
	}
}

// TestAuditKeyInsensitive pins that AuditEvery is excluded from the memo/
// journal key: audited and unaudited runs of the same cell must share
// cache entries (the auditor cannot change the result).
func TestAuditKeyInsensitive(t *testing.T) {
	a := tinySpec(core.PolicyNone, MechFP)
	b := a
	b.AuditEvery = 1
	if a.key() != b.key() {
		t.Fatalf("AuditEvery leaked into the spec key:\n%s\n%s", a.key(), b.key())
	}
}

// TestAuditPropertyAllTopologies is the full-rate property test: random
// traffic plus the standard fault scenario (RNG-targeted corruption burst
// and permanent link failure) with timeouts and retries, audited at
// stride 1, on every topology. A violation anywhere — conservation,
// buffer bounds, state lattice, latency floors, energy accounting — fails
// the run.
func TestAuditPropertyAllTopologies(t *testing.T) {
	for _, topo := range topology.Kinds {
		for salt := uint64(0); salt < 2; salt++ {
			spec := tinySpec(core.PolicyAware, MechVWLROO)
			spec.Topology = topo
			spec.SeedSalt = salt
			spec.AuditEvery = 1
			spec.Faults = sweepScenario()
			spec.RequestTimeout = 2 * sim.Microsecond
			spec.MaxRetries = 1
			if _, err := Run(spec); err != nil {
				t.Errorf("%v salt %d: %v", topo, salt, err)
			}
		}
	}
}

// TestAuditPropertyHealthyFullSweep audits the whole mechanism matrix at
// full rate on fault-free traffic.
func TestAuditPropertyHealthyFullSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy full-rate audit sweep")
	}
	for _, topo := range topology.Kinds {
		for _, m := range []Mech{MechFP, MechVWL, MechROO, MechVWLROO, MechDVFS, MechDVFSROO} {
			spec := tinySpec(core.PolicyAware, m)
			spec.Topology = topo
			spec.AuditEvery = 1
			if _, err := Run(spec); err != nil {
				t.Errorf("%v/%s: %v", topo, m, err)
			}
		}
	}
}

// TestAuditedFiguresByteIdentical renders the determinism figure subset
// with the auditor at full rate and compares bytes against the unaudited
// render — the figure-level version of TestAuditChangesNothing.
func TestAuditedFiguresByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy generator sweep")
	}
	off := tinyRunner()
	off.Audit = -1
	on := tinyRunner()
	on.Audit = 1
	a, b := renderFigures(off), renderFigures(on)
	if a != b {
		t.Fatalf("audited figure output differs from unaudited:\n--- off ---\n%s\n--- on ---\n%s", a, b)
	}
}

// TestAuditViolationFailsCellGracefully injects a violation through the
// test seam and checks the runner records a structured failure for that
// cell only, while the sweep completes.
func TestAuditViolationFailsCellGracefully(t *testing.T) {
	bad := tinySpec(core.PolicyNone, MechFP)
	badKey := bad.key()
	orig := runImpl
	runImpl = func(_ context.Context, s Spec, _ Budget) (Result, error) {
		if s.key() == badKey && s.Mech == MechFP && s.Policy == core.PolicyNone {
			e := &audit.Error{Total: 1, Violations: []audit.Violation{
				{Component: "link[0]", Rule: "buffer-bound", Time: 5 * sim.Microsecond, Detail: "synthetic"},
			}}
			return Result{}, e
		}
		return Run(s)
	}
	defer func() { runImpl = orig }()

	r := tinyRunner()
	r.Jobs = 1
	res := r.Run(bad)
	if res.Hist == nil {
		t.Fatal("failed cell returned nil Hist placeholder")
	}
	fails := r.Failures()
	if len(fails) != 1 {
		t.Fatalf("recorded %d failures, want 1", len(fails))
	}
	var ae *audit.Error
	if !errors.As(fails[0].Err, &ae) || ae.Total != 1 {
		t.Fatalf("failure did not preserve the audit error: %v", fails[0].Err)
	}
	good := tinySpec(core.PolicyAware, MechVWLROO)
	if res := r.Run(good); res.Throughput <= 0 {
		t.Fatal("healthy cell did not run after the failed one")
	}
}
