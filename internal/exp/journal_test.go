package exp

import (
	"context"
	"errors"
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"

	"memnet/internal/core"
)

// TestJournalRoundTrip appends results and reloads them through
// OpenJournal.
func TestJournalRoundTrip(t *testing.T) {
	path := t.TempDir() + "/sweep.jsonl"
	j, loaded, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 0 {
		t.Fatalf("fresh journal loaded %d entries", len(loaded))
	}
	spec := tinySpec(core.PolicyNone, MechFP)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(spec.key(), res); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, loaded, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := loaded[spec.key()]
	if !ok {
		t.Fatalf("journal lost the entry; loaded keys: %v", loaded)
	}
	// The spec is replaced by the caller on restore; compare the rest.
	got.Spec = res.Spec
	if !reflect.DeepEqual(got, res) {
		t.Fatalf("journal round trip diverged:\nwrote: %+v\nread:  %+v", res, got)
	}
}

// TestJournalTornTailRecovery simulates a crash mid-append: a partial
// final line must be truncated away, keeping every complete entry and an
// appendable file.
func TestJournalTornTailRecovery(t *testing.T) {
	path := t.TempDir() + "/sweep.jsonl"
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	spec := tinySpec(core.PolicyNone, MechFP)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(spec.key(), res); err != nil {
		t.Fatal(err)
	}
	j.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"torn-mid-wr`)
	f.Close()

	j2, loaded, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 1 {
		t.Fatalf("recovered %d entries, want 1", len(loaded))
	}
	// The file must be appendable again: a new entry after recovery must
	// survive the next load.
	spec2 := tinySpec(core.PolicyAware, MechVWLROO)
	if err := j2.Append(spec2.key(), res); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, loaded, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 2 {
		t.Fatalf("post-recovery append lost data: %d entries, want 2", len(loaded))
	}
	data, _ := os.ReadFile(path)
	if strings.Contains(string(data), "torn-mid-wr") {
		t.Fatal("torn tail survived recovery")
	}
}

// TestJournalTornTailReopenCycle loses power during resume, repeatedly:
// each round re-opens a journal whose tail was torn mid-append,
// immediately appends a fresh entry, and is torn again before the next
// round. Every complete entry must survive every round, the recovered
// file must be appendable at once (the truncation and the append race a
// crash window), and no round may resurrect torn bytes.
func TestJournalTornTailReopenCycle(t *testing.T) {
	path := t.TempDir() + "/sweep.jsonl"
	res, err := Run(tinySpec(core.PolicyNone, MechFP))
	if err != nil {
		t.Fatal(err)
	}
	tear := func(frag string) {
		f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY|os.O_CREATE, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString(frag); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	for round := 0; round < 3; round++ {
		j, loaded, err := OpenJournal(path)
		if err != nil {
			t.Fatalf("round %d: re-open after tear: %v", round, err)
		}
		if len(loaded) != round {
			t.Fatalf("round %d: recovered %d entries, want %d", round, len(loaded), round)
		}
		// The power comes back mid-resume: append immediately after the
		// torn-tail truncation, then lose the next write too.
		if err := j.Append(fmt.Sprintf("cycle-key-%d", round), res); err != nil {
			t.Fatalf("round %d: append after recovery: %v", round, err)
		}
		j.Close()
		tear(fmt.Sprintf(`{"key":"torn-%d","result":{"Spe`, round))
	}
	_, loaded, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 3 {
		t.Fatalf("final load recovered %d entries, want 3", len(loaded))
	}
	data, _ := os.ReadFile(path)
	if strings.Contains(string(data), "torn-") {
		t.Fatalf("a torn tail survived the re-open cycle:\n%s", data)
	}
}

// TestJournalResumeByteIdentical is the crash-safety acceptance test: run
// a figure sweep with a journal, truncate the journal to its first half
// (simulating a kill partway through), re-render with a fresh runner, and
// require byte-identical output with only the missing cells re-simulated.
func TestJournalResumeByteIdentical(t *testing.T) {
	testResume(t, false)
}

// TestJournalResumeByteIdenticalWithFaults repeats the resume check with
// the standard fault scenario on every cell, covering the lossy
// fault-spec JSON round trip (restored specs are replaced by canonical
// ones).
func TestJournalResumeByteIdenticalWithFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy generator sweep")
	}
	testResume(t, true)
}

func testResume(t *testing.T, faults bool) {
	t.Helper()
	dir := t.TempDir()
	mk := func() *Runner {
		r := tinyRunner()
		r.Jobs = 4
		if faults {
			r.Faults = sweepScenario()
		}
		return r
	}

	// Uninterrupted reference run, journaling as it goes.
	r1 := mk()
	j1, loaded, err := OpenJournal(dir + "/ref.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	r1.AttachJournal(j1, loaded)
	want := renderFigures(r1)
	j1.Close()

	// Simulate a crash partway: keep only the first half of the journal
	// lines (plus a torn tail for good measure).
	data, err := os.ReadFile(dir + "/ref.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	total := 0
	for _, l := range lines {
		if strings.TrimSpace(l) != "" {
			total++
		}
	}
	if total < 4 {
		t.Fatalf("journal too small to truncate meaningfully: %d entries", total)
	}
	keep := strings.Join(lines[:total/2], "") + `{"key":"torn`
	if err := os.WriteFile(dir+"/resume.jsonl", []byte(keep), 0o644); err != nil {
		t.Fatal(err)
	}

	r2 := mk()
	fresh := 0
	restored := 0
	r2.Progress = func(s string) {
		switch {
		case strings.HasPrefix(s, "ran "):
			fresh++
		case strings.HasPrefix(s, "restored "):
			restored++
		}
	}
	j2, loaded, err := OpenJournal(dir + "/resume.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != total/2 {
		t.Fatalf("resume loaded %d cells, want %d", len(loaded), total/2)
	}
	r2.AttachJournal(j2, loaded)
	got := renderFigures(r2)
	j2.Close()

	if got != want {
		t.Fatalf("resumed output differs from uninterrupted run:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	if restored != total/2 {
		t.Errorf("restored %d cells, want %d", restored, total/2)
	}
	if fresh != total-total/2 {
		t.Errorf("re-simulated %d cells, want %d", fresh, total-total/2)
	}
	if len(r2.Failures()) != 0 {
		t.Errorf("resume recorded failures: %v", r2.Failures())
	}
	// The resumed journal must now be complete: a third run is all cache.
	r3 := mk()
	fresh3 := 0
	r3.Progress = func(s string) {
		if strings.HasPrefix(s, "ran ") {
			fresh3++
		}
	}
	j3, loaded, err := OpenJournal(dir + "/resume.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	r3.AttachJournal(j3, loaded)
	if got3 := renderFigures(r3); got3 != want {
		t.Error("third (fully journaled) render diverged")
	}
	j3.Close()
	if fresh3 != 0 {
		t.Errorf("fully journaled render re-simulated %d cells", fresh3)
	}
}

// TestRunSpecsJournaled covers the batch path: a journaled batch re-run
// restores every cell and produces deeply equal results.
func TestRunSpecsJournaled(t *testing.T) {
	path := t.TempDir() + "/batch.jsonl"
	var specs []Spec
	for salt := uint64(0); salt < 3; salt++ {
		s := tinySpec(core.PolicyAware, MechVWLROO)
		s.SeedSalt = salt
		specs = append(specs, s)
	}
	j, loaded, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	first, errs := RunSpecsJournaled(specs, 2, j, loaded)
	for i, e := range errs {
		if e != nil {
			t.Fatalf("cell %d: %v", i, e)
		}
	}
	j.Close()

	j, loaded, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(specs) {
		t.Fatalf("journal holds %d cells, want %d", len(loaded), len(specs))
	}
	second, errs := RunSpecsJournaled(specs, 2, j, loaded)
	j.Close()
	for i := range specs {
		if errs[i] != nil {
			t.Fatalf("restored cell %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(first[i], second[i]) {
			t.Errorf("cell %d diverged after journal restore:\nfirst:  %+v\nsecond: %+v",
				i, first[i], second[i])
		}
	}
}

// TestRunSpecsAllContainsPanics injects a panicking cell through the test
// seam and checks it fails alone: aligned error slot, structured
// *PanicError with a stack, and untouched neighbors.
func TestRunSpecsAllContainsPanics(t *testing.T) {
	orig := runImpl
	runImpl = func(_ context.Context, s Spec, _ Budget) (Result, error) {
		if s.SeedSalt == 1 {
			panic("injected cell corruption")
		}
		return Run(s)
	}
	defer func() { runImpl = orig }()

	var specs []Spec
	for salt := uint64(0); salt < 3; salt++ {
		s := tinySpec(core.PolicyNone, MechFP)
		s.SeedSalt = salt
		specs = append(specs, s)
	}
	results, errs := RunSpecsAll(specs, 3)
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("healthy cells failed: %v / %v", errs[0], errs[2])
	}
	if results[0].Throughput <= 0 || results[2].Throughput <= 0 {
		t.Fatal("healthy cells produced empty results")
	}
	var pe *PanicError
	if !errors.As(errs[1], &pe) {
		t.Fatalf("errs[1] = %v, want *PanicError", errs[1])
	}
	if pe.Value != "injected cell corruption" || !strings.Contains(pe.Stack, "runCell") {
		t.Fatalf("panic not preserved: value=%v stack has runCell=%v", pe.Value, strings.Contains(pe.Stack, "runCell"))
	}
}

// TestPrefetchSurvivesPanickingCell checks the sweep path: one panicking
// cell becomes a recorded failure with a placeholder result, and the
// figure render still completes.
func TestPrefetchSurvivesPanickingCell(t *testing.T) {
	orig := runImpl
	var poisoned string
	runImpl = func(_ context.Context, s Spec, _ Budget) (Result, error) {
		if s.key() == poisoned {
			panic("poisoned cell")
		}
		return Run(s)
	}
	defer func() { runImpl = orig }()

	r := tinyRunner()
	r.Jobs = 4
	e, _ := Lookup("fig5")
	specs := r.Collect(e.Run)
	if len(specs) == 0 {
		t.Fatal("no cells collected")
	}
	poisoned = specs[len(specs)/2].key()
	out := r.Generate(e)
	if len(out) < 40 {
		t.Fatalf("render did not complete: %q", out)
	}
	fails := r.Failures()
	if len(fails) != 1 || fails[0].Key != poisoned {
		t.Fatalf("failures = %+v, want exactly the poisoned cell", fails)
	}
	var pe *PanicError
	if !errors.As(fails[0].Err, &pe) {
		t.Fatalf("failure error = %v, want *PanicError", fails[0].Err)
	}
}

// TestOpenJournalFlockConflict pins the advisory-lock contract: while a
// journal is open, a second OpenJournal on the same path — even from the
// same process, since flock follows the open file description — must
// fail with a clear message instead of interleaving appends.
func TestOpenJournalFlockConflict(t *testing.T) {
	path := t.TempDir() + "/locked.jsonl"
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if _, _, err := OpenJournal(path); err == nil {
		t.Fatal("second OpenJournal succeeded; want flock conflict")
	} else if !strings.Contains(err.Error(), "already locked") {
		t.Fatalf("conflict error should name the lock: %v", err)
	}
	// Closing the first journal releases the lock and the path is
	// reusable immediately.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, _, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	j2.Close()
}
