package exp

import (
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"memnet/internal/core"
	"memnet/internal/fault"
	"memnet/internal/sim"
)

// sweepFigures is the generator subset the determinism tests render: it
// covers plain sweeps (fig5), FP-baseline pairing (fig11, fig16), the
// link-hour histogram merge (fig13) and result-dependent rows (tableII).
var sweepFigures = []string{"tableII", "fig5", "fig11", "fig13", "fig16"}

// renderFigures renders sweepFigures through the parallel executor and
// concatenates the output.
func renderFigures(r *Runner) string {
	var b strings.Builder
	for _, name := range sweepFigures {
		e, ok := Lookup(name)
		if !ok {
			panic("unknown experiment " + name)
		}
		b.WriteString(r.Generate(e))
		b.WriteString("\n")
	}
	return b.String()
}

// TestGenerateByteIdenticalAcrossJobs is the determinism guarantee the
// sweep executor advertises: -jobs 1 (legacy sequential) and -jobs 8
// produce byte-identical table/figure output.
func TestGenerateByteIdenticalAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy generator sweep")
	}
	seq := tinyRunner()
	seq.Jobs = 1
	par := tinyRunner()
	par.Jobs = 8
	a, b := renderFigures(seq), renderFigures(par)
	if a != b {
		t.Fatalf("figure output differs between -jobs 1 and -jobs 8:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", a, b)
	}
	if len(a) < 200 {
		t.Fatalf("suspiciously small figure output (%d bytes)", len(a))
	}
}

// sweepScenario exercises every nondeterminism-prone fault path: RNG
// target selection (Link/Module = -1), a CRC corruption burst, and a
// permanent link failure.
func sweepScenario() fault.Scenario {
	return fault.Scenario{
		Seed: 7,
		Events: []fault.Event{
			{At: fault.Duration(15 * sim.Microsecond), Kind: fault.CorruptBurst,
				Link: -1, BER: 1e-4, Duration: fault.Duration(5 * sim.Microsecond)},
			{At: fault.Duration(25 * sim.Microsecond), Kind: fault.LinkFail, Link: -1},
		},
	}
}

// TestGenerateByteIdenticalAcrossJobsWithFaults re-runs the figure-output
// determinism check with a fault scenario attached to every cell — the
// guard that PR 1's seeded-fault reproducibility survives the pool.
func TestGenerateByteIdenticalAcrossJobsWithFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy generator sweep")
	}
	make := func(jobs int) *Runner {
		r := tinyRunner()
		r.Jobs = jobs
		r.Faults = sweepScenario()
		return r
	}
	a, b := renderFigures(make(1)), renderFigures(make(8))
	if a != b {
		t.Fatalf("faulted figure output differs between -jobs 1 and -jobs 8:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", a, b)
	}
}

// TestRunSpecsFaultDeterminism compares full Result structs — including
// the timeout-expiry-order fixture TimedOutIDs and injected-fault counts —
// between sequential and parallel execution of a faulted, timed-out batch.
func TestRunSpecsFaultDeterminism(t *testing.T) {
	var specs []Spec
	for salt := uint64(0); salt < 4; salt++ {
		spec := tinySpec(core.PolicyAware, MechVWLROO)
		spec.SeedSalt = salt
		spec.Faults = sweepScenario()
		spec.RequestTimeout = 2 * sim.Microsecond
		spec.MaxRetries = 1
		specs = append(specs, spec)
	}
	seq, err := RunSpecs(specs, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunSpecs(specs, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if !reflect.DeepEqual(seq[i], par[i]) {
			t.Errorf("cell %d diverged:\nseq: %+v\npar: %+v", i, seq[i], par[i])
		}
	}
}

// TestRunSpecsPreservesOrder checks results land at their input index, not
// in completion order.
func TestRunSpecsPreservesOrder(t *testing.T) {
	var specs []Spec
	for salt := uint64(0); salt < 6; salt++ {
		spec := tinySpec(core.PolicyNone, MechFP)
		spec.SeedSalt = salt
		specs = append(specs, spec)
	}
	results, err := RunSpecs(specs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(specs) {
		t.Fatalf("got %d results for %d specs", len(results), len(specs))
	}
	for i, res := range results {
		if res.Spec.SeedSalt != specs[i].SeedSalt {
			t.Fatalf("result %d carries salt %d, want %d", i, res.Spec.SeedSalt, specs[i].SeedSalt)
		}
	}
}

// TestRunSpecsReportsFirstErrorInOrder checks the error contract: the
// input-order-first failure is reported even when later cells also fail.
func TestRunSpecsReportsFirstErrorInOrder(t *testing.T) {
	good := tinySpec(core.PolicyNone, MechFP)
	specs := []Spec{good, {}, {}} // nil workloads fail validation
	_, err := RunSpecs(specs, 4)
	if err == nil || !strings.Contains(err.Error(), "run 1") {
		t.Fatalf("err = %v, want first failure at run 1", err)
	}
}

// TestCollectEnumeratesWithoutSimulating checks the collect pass records
// every distinct cell a generator sweeps while running zero simulations.
func TestCollectEnumeratesWithoutSimulating(t *testing.T) {
	r := tinyRunner()
	fresh := 0
	r.Progress = func(string) { fresh++ }
	e, _ := Lookup("fig5")
	specs := r.Collect(e.Run)
	if fresh != 0 {
		t.Fatalf("collect pass ran %d simulations", fresh)
	}
	// fig5 with one workload: 2 sizes x 4 topologies, FP only.
	if len(specs) != 8 {
		t.Fatalf("collected %d cells, want 8", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.key()] {
			t.Fatalf("duplicate cell %s", s.key())
		}
		seen[s.key()] = true
		if s.SimTime != r.SimTime || s.Warmup != r.Warmup {
			t.Fatalf("collected cell not normalized: %+v", s)
		}
	}
}

// TestPrefetchWarmsCacheInSweepOrder checks Prefetch commits results and
// progress lines in sweep order, and that the following render is pure
// cache hits.
func TestPrefetchWarmsCacheInSweepOrder(t *testing.T) {
	r := tinyRunner()
	r.Jobs = 4
	var lines []string
	r.Progress = func(s string) { lines = append(lines, s) }
	e, _ := Lookup("fig5")
	specs := r.Collect(e.Run)
	r.Prefetch(specs)
	if len(lines) != len(specs) {
		t.Fatalf("progress reported %d runs, want %d", len(lines), len(specs))
	}
	for i, s := range specs {
		if !strings.Contains(lines[i], s.key()) {
			t.Fatalf("progress line %d = %q, want spec %s", i, lines[i], s.key())
		}
	}
	lines = nil
	_ = e.Run(r)
	if len(lines) != 0 {
		t.Fatalf("render after prefetch ran %d fresh simulations", len(lines))
	}
}

// TestGenerateMatchesSequentialExperimentRun pins Generate's contract for
// every registered generator shape that the reduced sweep supports.
func TestGenerateMatchesSequentialExperimentRun(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy generator sweep")
	}
	for _, name := range []string{"fig6", "fig12", "summary"} {
		e, _ := Lookup(name)
		seq := tinyRunner()
		seq.Jobs = 1
		par := tinyRunner()
		par.Jobs = 8
		if a, b := seq.Generate(e), par.Generate(e); a != b {
			t.Errorf("%s differs between -jobs 1 and -jobs 8:\n%s\nvs\n%s", name, a, b)
		}
	}
}

// TestMeasureSweep smoke-tests the BENCH_sweep.json pipeline on a
// miniature sweep and checks the JSON round-trips.
func TestMeasureSweep(t *testing.T) {
	var specs []Spec
	for salt := uint64(0); salt < 3; salt++ {
		spec := tinySpec(core.PolicyNone, MechFP)
		spec.SimTime = 40 * sim.Microsecond
		spec.Warmup = 10 * sim.Microsecond
		spec.SeedSalt = salt
		specs = append(specs, spec)
	}
	b, err := MeasureSweep(specs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b.Cells != 3 || b.Events == 0 || b.WallSeqSec <= 0 || b.WallParSec <= 0 {
		t.Fatalf("incomplete measurement: %+v", b)
	}
	path := t.TempDir() + "/BENCH_sweep.json"
	if err := b.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "speedup") {
		t.Fatalf("summary missing speedup: %s", b)
	}
}

// TestSweepSpeedup is the wall-clock acceptance criterion: the standard
// sweep at -jobs 4 must run at least 2x faster than -jobs 1. Cells are
// hermetic and equal-weight, so anything below 2x on four real cores
// means the executor is serializing somewhere. Skipped on smaller
// machines, where the criterion is unmeasurable.
func TestSweepSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second wall-clock measurement")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs for the speedup criterion, have %d", runtime.NumCPU())
	}
	specs, err := BenchSweepSpecs(100*sim.Microsecond, 25*sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasureSweep(specs, 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(b)
	if b.Speedup < 2 {
		t.Errorf("-jobs 4 speedup = %.2fx, want >= 2x", b.Speedup)
	}
}

// TestBenchSweepSpecs pins the standard benchmark sweep's shape.
func TestBenchSweepSpecs(t *testing.T) {
	specs, err := BenchSweepSpecs(100*sim.Microsecond, 25*sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 32 {
		t.Fatalf("standard sweep has %d cells, want 32 (4 wl x 4 topo x 2 mech)", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		k := s.key()
		if seen[k] {
			t.Fatalf("duplicate cell %s", k)
		}
		seen[k] = true
	}
}

// ExampleRunner_Generate shows the parallel figure path end to end.
func ExampleRunner_Generate() {
	r := tinyRunner()
	r.Jobs = 4
	e, _ := Lookup("tableIII")
	out := r.Generate(e)
	fmt.Println(strings.Count(out, "\n") > 1)
	// Output: true
}
