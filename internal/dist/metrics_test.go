package dist

import (
	"testing"
	"time"

	"memnet/internal/metrics"
	"memnet/internal/sim"
)

// TestAttachMetrics: the coordinator's wall-clock gauges ride a manual
// (kernel-less) registry — every state change Observes a sample, and the
// dump reflects the live lease counters.
func TestAttachMetrics(t *testing.T) {
	fc := newFakeClock()
	c := NewCoordinator(clockCfg(fc, time.Second))
	reg := metrics.NewManual(metrics.Config{Interval: sim.Microsecond})
	c.AttachMetrics(reg)
	reg.StartManual()

	specs := testSpecs(t, 2)
	c.Submit(specs)
	cl := c.claim("alice")
	if cl.Status != StatusCell {
		t.Fatalf("claim: %+v", cl)
	}
	// Expire alice's lease, reclaim, and complete.
	fc.Advance(2 * time.Second)
	cl2 := c.claim("bob")
	if cl2.Status != StatusCell || cl2.ID != cl.ID {
		t.Fatalf("reclaim: %+v", cl2)
	}
	ack := c.result(ResultRequest{Worker: "bob", ID: cl2.ID, Key: cl2.Key, Result: fakeResult(t, specs[0])})
	if !ack.Accepted {
		t.Fatalf("result: %+v", ack)
	}

	dump := reg.Dump()
	last := map[string]float64{}
	for _, s := range dump.Series {
		if len(s.Samples) == 0 {
			t.Fatalf("series %s has no samples — Observe never ran", s.Name)
		}
		last[s.Name] = s.Samples[len(s.Samples)-1]
	}
	want := map[string]float64{
		"dist.cells":             2,
		"dist.done":              1,
		"dist.claimed":           0,
		"dist.leases_expired":    1,
		"dist.duplicate_results": 0,
	}
	for name, v := range want {
		got, ok := last[name]
		if !ok {
			t.Fatalf("gauge %s missing from dump; have %v", name, last)
		}
		if got != v {
			t.Errorf("gauge %s = %g, want %g", name, got, v)
		}
	}
}
