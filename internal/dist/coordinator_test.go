package dist

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"memnet/internal/exp"
	"memnet/internal/sim"
	"memnet/internal/workload"
)

// fakeClock is a manually advanced clock for deterministic lease tests.
type fakeClock struct{ now time.Time }

func (f *fakeClock) Now() time.Time          { return f.now }
func (f *fakeClock) Advance(d time.Duration) { f.now = f.now.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{now: time.Unix(1000, 0)} }
func clockCfg(f *fakeClock, ttl time.Duration) Config {
	return Config{LeaseTTL: ttl, Clock: f.Now}
}

// testSpecs returns n cheap, distinct, runnable cells.
func testSpecs(t *testing.T, n int) []exp.Spec {
	t.Helper()
	wl, err := workload.ByName("mixG")
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]exp.Spec, n)
	for i := range specs {
		specs[i] = exp.Spec{
			Workload: wl,
			Mech:     exp.MechFP,
			SimTime:  20 * sim.Microsecond,
			Warmup:   5 * sim.Microsecond,
			SeedSalt: uint64(i + 1),
			// Keep unit tests about lease mechanics, not invariants.
			AuditEvery: -1,
		}
	}
	return specs
}

// fakeResult fabricates a wire result body for spec — enough for lease
// tests that never compare journal bytes.
func fakeResult(t *testing.T, spec exp.Spec) json.RawMessage {
	t.Helper()
	raw, err := json.Marshal(exp.Result{Spec: spec, Events: 1})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestLeaseExpiryReassignment: a silent worker's lease expires, the cell
// is reassigned, the original worker's completion still lands (late,
// accepted — cells are deterministic), and the new assignee's becomes an
// idempotent duplicate.
func TestLeaseExpiryReassignment(t *testing.T) {
	fc := newFakeClock()
	c := NewCoordinator(clockCfg(fc, time.Second))
	specs := testSpecs(t, 1)
	b := c.Submit(specs)
	c.Close()

	ca := c.claim("alice")
	if ca.Status != StatusCell {
		t.Fatalf("alice claim: got %q, want cell", ca.Status)
	}
	// Alice goes silent past the TTL; the cell must requeue to Bob.
	fc.Advance(time.Second + time.Millisecond)
	cb := c.claim("bob")
	if cb.Status != StatusCell || cb.ID != ca.ID {
		t.Fatalf("bob claim after expiry: got %+v, want cell %d", cb, ca.ID)
	}
	if got := c.Stats().LeasesExpired; got != 1 {
		t.Fatalf("LeasesExpired = %d, want 1", got)
	}

	// Alice finishes anyway: a worker completing a cell whose lease it
	// lost. The result is accepted and counted late.
	ra := c.result(ResultRequest{Worker: "alice", ID: ca.ID, Key: ca.Key, Result: fakeResult(t, specs[0])})
	if !ra.Accepted || ra.Duplicate {
		t.Fatalf("alice late result: got %+v, want accepted non-duplicate", ra)
	}
	if got := c.Stats().LateResults; got != 1 {
		t.Fatalf("LateResults = %d, want 1", got)
	}

	// Bob's completion after reassignment is an idempotent duplicate.
	rb := c.result(ResultRequest{Worker: "bob", ID: cb.ID, Key: cb.Key, Result: fakeResult(t, specs[0])})
	if !rb.Accepted || !rb.Duplicate {
		t.Fatalf("bob duplicate result: got %+v, want accepted duplicate", rb)
	}
	if got := c.Stats().DuplicateResults; got != 1 {
		t.Fatalf("DuplicateResults = %d, want 1", got)
	}

	results, errs, err := b.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if errs[0] != nil {
		t.Fatalf("cell error: %v", errs[0])
	}
	if results[0].Events != 1 {
		t.Fatalf("merged result lost payload: %+v", results[0])
	}
	// The sweep is closed and complete: the next claim drains workers.
	if got := c.claim("carol").Status; got != StatusDone {
		t.Fatalf("claim after completion: got %q, want done", got)
	}
}

// TestHeartbeatAtTTLBoundary: a heartbeat arriving exactly at the TTL is
// already late — the lease is expired, the renewal is rejected, and the
// cell is back in the queue. One tick earlier it renews.
func TestHeartbeatAtTTLBoundary(t *testing.T) {
	fc := newFakeClock()
	c := NewCoordinator(clockCfg(fc, time.Second))
	c.Submit(testSpecs(t, 1))

	cl := c.claim("alice")
	hb := HeartbeatRequest{Worker: "alice", ID: cl.ID, Key: cl.Key}

	// Just inside the TTL: renewed, expiry pushed out.
	fc.Advance(time.Second - time.Nanosecond)
	if got := c.heartbeat(hb); !got.OK {
		t.Fatalf("heartbeat inside TTL rejected: %+v", got)
	}
	// Exactly at the (renewed) TTL: expired, rejected, requeued.
	fc.Advance(time.Second)
	if got := c.heartbeat(hb); got.OK {
		t.Fatalf("heartbeat exactly at TTL accepted: %+v", got)
	}
	st := c.Stats()
	if st.LeasesExpired != 1 || st.Claimed != 0 {
		t.Fatalf("after boundary heartbeat: %+v, want 1 expiry and 0 claimed", st)
	}
	// The requeued cell is claimable again.
	if got := c.claim("bob"); got.Status != StatusCell {
		t.Fatalf("reclaim after boundary expiry: got %q, want cell", got.Status)
	}
}

// TestHeartbeatWrongOwner: renewals from a worker that does not hold the
// lease (or names the wrong key) must not extend it.
func TestHeartbeatWrongOwner(t *testing.T) {
	fc := newFakeClock()
	c := NewCoordinator(clockCfg(fc, time.Second))
	c.Submit(testSpecs(t, 1))
	cl := c.claim("alice")
	if got := c.heartbeat(HeartbeatRequest{Worker: "mallory", ID: cl.ID, Key: cl.Key}); got.OK {
		t.Fatal("foreign heartbeat renewed the lease")
	}
	if got := c.heartbeat(HeartbeatRequest{Worker: "alice", ID: cl.ID, Key: "bogus"}); got.OK {
		t.Fatal("mismatched-key heartbeat renewed the lease")
	}
	if got := c.heartbeat(HeartbeatRequest{Worker: "alice", ID: 99, Key: cl.Key}); got.OK {
		t.Fatal("out-of-range heartbeat renewed the lease")
	}
	// The real owner is untouched by the failed renewals.
	if got := c.heartbeat(HeartbeatRequest{Worker: "alice", ID: cl.ID, Key: cl.Key}); !got.OK {
		t.Fatalf("owner heartbeat rejected: %+v", got)
	}
}

// TestResultRejections: completions naming unknown cells or carrying
// undecodable payloads are bounced without mutating lease state, and a
// bounced torn payload can be retried successfully.
func TestResultRejections(t *testing.T) {
	fc := newFakeClock()
	c := NewCoordinator(clockCfg(fc, time.Second))
	specs := testSpecs(t, 1)
	c.Submit(specs)
	cl := c.claim("alice")

	if got := c.result(ResultRequest{Worker: "alice", ID: 5, Key: cl.Key, Error: "x"}); got.Accepted {
		t.Fatal("unknown cell id accepted")
	}
	if got := c.result(ResultRequest{Worker: "alice", ID: cl.ID, Key: "bogus", Error: "x"}); got.Accepted {
		t.Fatal("mismatched key accepted")
	}
	// Torn result body: rejected, lease intact, delivery retryable.
	if got := c.result(ResultRequest{Worker: "alice", ID: cl.ID, Key: cl.Key, Result: json.RawMessage(`{"Spec":`)}); got.Accepted {
		t.Fatal("torn result body accepted")
	}
	if st := c.Stats(); st.Claimed != 1 || st.Done != 0 {
		t.Fatalf("state mutated by rejected results: %+v", st)
	}
	if got := c.result(ResultRequest{Worker: "alice", ID: cl.ID, Key: cl.Key, Result: fakeResult(t, specs[0])}); !got.Accepted {
		t.Fatalf("retried delivery after torn payload rejected: %+v", got)
	}
}

// TestJournalSweepOrder: completions landing out of sweep order are
// journaled behind the watermark, so the journal file is byte-identical
// to a sequential `-jobs 1` run over the same specs.
func TestJournalSweepOrder(t *testing.T) {
	specs := testSpecs(t, 3)

	// Sequential reference.
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.jsonl")
	jr, loaded, err := exp.OpenJournal(refPath)
	if err != nil {
		t.Fatal(err)
	}
	refResults, refErrs := exp.RunSpecsJournaled(specs, 1, jr, loaded)
	for i, e := range refErrs {
		if e != nil {
			t.Fatalf("reference cell %d: %v", i, e)
		}
	}
	jr.Close()

	// Distributed: claim all three, complete in order 2, 0, 1.
	distPath := filepath.Join(dir, "dist.jsonl")
	jd, loadedD, err := exp.OpenJournal(distPath)
	if err != nil {
		t.Fatal(err)
	}
	fc := newFakeClock()
	cfg := clockCfg(fc, time.Minute)
	cfg.Journal = jd
	cfg.Loaded = loadedD
	c := NewCoordinator(cfg)
	b := c.Submit(specs)
	c.Close()

	claims := make([]ClaimResponse, 3)
	for i := range claims {
		claims[i] = c.claim("w")
		if claims[i].Status != StatusCell {
			t.Fatalf("claim %d: %+v", i, claims[i])
		}
	}
	for _, i := range []int{2, 0, 1} {
		res, err := exp.RunCell(specs[i])
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		raw, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		ack := c.result(ResultRequest{Worker: "w", ID: claims[i].ID, Key: claims[i].Key, Result: raw})
		if !ack.Accepted {
			t.Fatalf("cell %d result rejected: %+v", i, ack)
		}
	}
	results, errs, err := b.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("merged cell %d: %v", i, errs[i])
		}
		if results[i].Events != refResults[i].Events {
			t.Fatalf("merged cell %d events %d != reference %d", i, results[i].Events, refResults[i].Events)
		}
	}
	jd.Close()
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}

	ref, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(distPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(ref) != string(got) {
		t.Fatalf("distributed journal differs from sequential:\n--- sequential ---\n%s--- distributed ---\n%s", ref, got)
	}
}

// TestJournalRestore: cells present in Loaded are marked done at Submit,
// never handed to workers, and never re-appended — mirroring journal
// resume in the sequential path.
func TestJournalRestore(t *testing.T) {
	specs := testSpecs(t, 2)
	res0, err := exp.RunCell(specs[0])
	if err != nil {
		t.Fatal(err)
	}
	fc := newFakeClock()
	cfg := clockCfg(fc, time.Minute)
	cfg.Loaded = map[string]exp.Result{specs[0].Key(): res0}
	c := NewCoordinator(cfg)
	b := c.Submit(specs)
	c.Close()

	cl := c.claim("w")
	if cl.Status != StatusCell || cl.Key != specs[1].Key() {
		t.Fatalf("restored cell was handed out: %+v", cl)
	}
	if st := c.Stats(); st.Restored != 1 || st.Done != 1 {
		t.Fatalf("restore stats: %+v", st)
	}
	ack := c.result(ResultRequest{Worker: "w", ID: cl.ID, Key: cl.Key, Result: fakeResult(t, specs[1])})
	if !ack.Accepted {
		t.Fatalf("fresh cell rejected: %+v", ack)
	}
	results, errs, err := b.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("merged errors: %v %v", errs[0], errs[1])
	}
	if results[0].Events != res0.Events {
		t.Fatalf("restored result mangled: got %d events, want %d", results[0].Events, res0.Events)
	}
}

// TestDuplicateKeySlots: a batch containing the same spec twice keeps
// two slots; one execution completes both, and each fresh slot journals
// its own line — byte-identical to the sequential path running the
// duplicate twice.
func TestDuplicateKeySlots(t *testing.T) {
	base := testSpecs(t, 1)
	specs := []exp.Spec{base[0], base[0]}

	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.jsonl")
	jr, loaded, err := exp.OpenJournal(refPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, errs := exp.RunSpecsJournaled(specs, 1, jr, loaded); errs[0] != nil || errs[1] != nil {
		t.Fatalf("reference: %v %v", errs[0], errs[1])
	}
	jr.Close()

	distPath := filepath.Join(dir, "dist.jsonl")
	jd, loadedD, err := exp.OpenJournal(distPath)
	if err != nil {
		t.Fatal(err)
	}
	fc := newFakeClock()
	cfg := clockCfg(fc, time.Minute)
	cfg.Journal = jd
	cfg.Loaded = loadedD
	c := NewCoordinator(cfg)
	b := c.Submit(specs)
	c.Close()

	cl := c.claim("w")
	if cl.Status != StatusCell {
		t.Fatalf("claim: %+v", cl)
	}
	res, err := exp.RunCell(specs[0])
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := json.Marshal(res)
	if ack := c.result(ResultRequest{Worker: "w", ID: cl.ID, Key: cl.Key, Result: raw}); !ack.Accepted {
		t.Fatalf("result rejected: %+v", ack)
	}
	// The sibling slot completed by copy: nothing left to claim.
	if got := c.claim("w").Status; got != StatusDone {
		t.Fatalf("after completing duplicate-key cell: claim %q, want done", got)
	}
	if _, errs, err := b.Wait(context.Background()); err != nil || errs[0] != nil || errs[1] != nil {
		t.Fatalf("wait: %v %v %v", err, errs, err)
	}
	jd.Close()

	ref, _ := os.ReadFile(refPath)
	got, _ := os.ReadFile(distPath)
	if string(ref) != string(got) {
		t.Fatalf("duplicate-slot journal differs:\n--- sequential ---\n%s--- distributed ---\n%s", ref, got)
	}
}

// TestRemoteCellError: a worker-reported terminal failure marks the cell
// failed (not retried, not journaled) and surfaces as *RemoteCellError,
// while later cells still flush past it in order.
func TestRemoteCellError(t *testing.T) {
	specs := testSpecs(t, 2)
	dir := t.TempDir()
	jd, loaded, err := exp.OpenJournal(filepath.Join(dir, "j.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	fc := newFakeClock()
	cfg := clockCfg(fc, time.Minute)
	cfg.Journal = jd
	cfg.Loaded = loaded
	c := NewCoordinator(cfg)
	b := c.Submit(specs)
	c.Close()

	c0 := c.claim("w")
	c1 := c.claim("w")
	if ack := c.result(ResultRequest{Worker: "w", ID: c0.ID, Key: c0.Key, Error: "cell panicked: boom"}); !ack.Accepted {
		t.Fatalf("error report rejected: %+v", ack)
	}
	if ack := c.result(ResultRequest{Worker: "w", ID: c1.ID, Key: c1.Key, Result: fakeResult(t, specs[1])}); !ack.Accepted {
		t.Fatalf("success report rejected: %+v", ack)
	}
	_, errs, err := b.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var rce *RemoteCellError
	if !errors.As(errs[0], &rce) {
		t.Fatalf("cell 0 error = %v, want *RemoteCellError", errs[0])
	}
	if errs[1] != nil {
		t.Fatalf("cell 1 error = %v", errs[1])
	}
	if st := c.Stats(); st.Failed != 1 || st.Done != 2 {
		t.Fatalf("stats after failure: %+v", st)
	}
}
