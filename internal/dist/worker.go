package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"time"

	"memnet/internal/exp"
)

// Worker defaults. RPC bounds are deliberately tight relative to the
// lease TTL: a worker that cannot reach the coordinator for ~30 s of
// backed-off retries has almost certainly lost its leases anyway, and
// exiting non-zero beats wedging.
const (
	DefaultRequestTimeout = 10 * time.Second
	DefaultRetries        = 6
	DefaultBackoff        = 100 * time.Millisecond
	maxBackoff            = 5 * time.Second
	// fallbackPoll is the wait-state re-poll delay when the coordinator
	// does not hint one.
	fallbackPoll = 500 * time.Millisecond
)

// WorkerConfig parameterizes one claim-run-report loop.
type WorkerConfig struct {
	// Coordinator is the base URL, e.g. "http://127.0.0.1:9731".
	Coordinator string
	// Name identifies this worker in leases and logs
	// (default "worker-<pid>").
	Name string
	// Client issues the RPCs (default: a client bound by RequestTimeout).
	Client *http.Client
	// RequestTimeout bounds each RPC attempt (0 = DefaultRequestTimeout).
	RequestTimeout time.Duration
	// Retries bounds re-attempts per RPC beyond the first try
	// (0 = DefaultRetries; transport errors and 5xx retry with jittered
	// exponential backoff, protocol rejections never do).
	Retries int
	// Backoff is the first retry delay (0 = DefaultBackoff); it doubles
	// per attempt, capped at 5 s, with ±50% jitter so a worker herd that
	// lost its coordinator does not reconnect in lockstep.
	Backoff time.Duration
	// Fallback, when non-nil, receives any completed result the worker
	// could not deliver before exiting — the local salvage journal. It
	// may be shared by several workers (Journal.Append locks).
	Fallback *exp.Journal
	// Run executes one cell (default exp.RunCellCtx; tests substitute
	// instrumented runners). The context is the worker's own: when the
	// worker is killed mid-cell the simulation aborts within one kernel
	// check interval instead of burning CPU on a lease nobody holds.
	Run func(context.Context, exp.Spec) (exp.Result, error)
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// WorkerStats summarizes one RunWorker call.
type WorkerStats struct {
	// CellsRun counts cells executed; CellsDelivered counts results the
	// coordinator acknowledged (duplicates included).
	CellsRun       int
	CellsDelivered int
	// Salvaged counts undeliverable results appended to the fallback
	// journal; RPCRetries counts individual re-attempts.
	Salvaged   int
	RPCRetries int
}

// RunWorker claims, executes and reports cells until the coordinator
// declares the sweep done (nil error), ctx is canceled (ctx.Err()), or
// the coordinator becomes unreachable — in which case the worker drains:
// it stops claiming, salvages its undelivered result to the fallback
// journal, and returns the delivery error so the process exits non-zero
// instead of wedging.
func RunWorker(ctx context.Context, cfg WorkerConfig) (WorkerStats, error) {
	w, err := newWorker(cfg)
	if err != nil {
		return WorkerStats{}, err
	}
	for {
		if err := ctx.Err(); err != nil {
			return w.stats, err
		}
		var claim ClaimResponse
		if err := w.post(ctx, PathClaim, ClaimRequest{Worker: w.name}, &claim); err != nil {
			return w.stats, fmt.Errorf("dist: claim from %s: %w", w.base, err)
		}
		switch claim.Status {
		case StatusDone:
			w.logf("dist: %s: sweep done, exiting", w.name)
			return w.stats, nil
		case StatusWait:
			poll := time.Duration(claim.PollMS) * time.Millisecond
			if poll <= 0 {
				poll = fallbackPoll
			}
			if !sleepCtx(ctx, poll) {
				return w.stats, ctx.Err()
			}
		case StatusCell:
			if err := w.runCell(ctx, claim); err != nil {
				return w.stats, err
			}
		default:
			return w.stats, fmt.Errorf("dist: coordinator answered unknown claim status %q", claim.Status)
		}
	}
}

// worker is the resolved config plus running stats.
type worker struct {
	base    string
	name    string
	client  *http.Client
	timeout time.Duration
	retries int
	backoff time.Duration
	fb      *exp.Journal
	run     func(context.Context, exp.Spec) (exp.Result, error)
	logf    func(string, ...any)
	rng     *rand.Rand
	stats   WorkerStats
}

func newWorker(cfg WorkerConfig) (*worker, error) {
	if cfg.Coordinator == "" {
		return nil, fmt.Errorf("dist: worker needs a coordinator URL")
	}
	w := &worker{
		base:    cfg.Coordinator,
		name:    cfg.Name,
		client:  cfg.Client,
		timeout: cfg.RequestTimeout,
		retries: cfg.Retries,
		backoff: cfg.Backoff,
		fb:      cfg.Fallback,
		run:     cfg.Run,
		logf:    cfg.Logf,
		rng:     rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	if w.name == "" {
		w.name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	if w.timeout <= 0 {
		w.timeout = DefaultRequestTimeout
	}
	if w.client == nil {
		w.client = &http.Client{Timeout: w.timeout}
	}
	if w.retries <= 0 {
		w.retries = DefaultRetries
	}
	if w.backoff <= 0 {
		w.backoff = DefaultBackoff
	}
	if w.run == nil {
		w.run = exp.RunCellCtx
	}
	if w.logf == nil {
		w.logf = func(string, ...any) {}
	}
	return w, nil
}

// runCell executes one leased cell end to end: heartbeats renew the
// lease while the simulation runs, the result (or terminal cell error)
// is delivered with bounded retry, and an undeliverable result is
// salvaged to the fallback journal before the error propagates.
func (w *worker) runCell(ctx context.Context, claim ClaimResponse) error {
	var spec exp.Spec
	if err := json.Unmarshal(claim.Spec, &spec); err != nil {
		// A spec this worker cannot decode will fail on every retry of the
		// lease; report it as a terminal cell error so the sweep moves on.
		w.logf("dist: %s: cell %s spec does not decode: %v", w.name, claim.Key, err)
		return w.deliver(ctx, claim, exp.Result{}, fmt.Errorf("spec does not decode: %v", err))
	}
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	go w.heartbeatLoop(hbCtx, claim)
	w.logf("dist: %s: running cell %d (%s)", w.name, claim.ID, claim.Key)
	res, runErr := w.run(ctx, spec)
	stopHB()
	w.stats.CellsRun++
	if err := ctx.Err(); err != nil {
		// Killed mid-cell: die silently, as a real SIGKILL would — the
		// lease expires and the cell is reassigned.
		return err
	}
	return w.deliver(ctx, claim, res, runErr)
}

// deliver posts a completion, salvaging to the fallback journal when the
// coordinator is unreachable.
func (w *worker) deliver(ctx context.Context, claim ClaimResponse, res exp.Result, runErr error) error {
	req := ResultRequest{Worker: w.name, ID: claim.ID, Key: claim.Key}
	if runErr != nil {
		req.Error = runErr.Error()
	} else {
		raw, err := json.Marshal(res)
		if err != nil {
			req.Error = fmt.Sprintf("result not wire-encodable: %v", err)
		} else {
			req.Result = raw
		}
	}
	var ack ResultResponse
	if err := w.post(ctx, PathResult, req, &ack); err != nil {
		if runErr == nil && w.fb != nil {
			if jerr := w.fb.Append(claim.Key, res); jerr != nil {
				w.logf("dist: %s: salvage of %s failed: %v", w.name, claim.Key, jerr)
			} else {
				w.stats.Salvaged++
				w.logf("dist: %s: salvaged undelivered %s to local journal", w.name, claim.Key)
			}
		}
		return fmt.Errorf("dist: deliver %s: %w", claim.Key, err)
	}
	if !ack.Accepted {
		// Terminal protocol rejection (unknown cell, torn payload the
		// coordinator bounced). The cell's lease will expire and the cell
		// will be re-run; this worker moves on.
		w.logf("dist: %s: result for %s rejected: %s", w.name, claim.Key, ack.Reason)
		return nil
	}
	w.stats.CellsDelivered++
	if ack.Duplicate {
		w.logf("dist: %s: result for %s was a duplicate", w.name, claim.Key)
	}
	return nil
}

// heartbeatLoop renews the lease at a third of its TTL until the cell
// finishes or ctx dies. Each beat is a single attempt — the next tick is
// the retry — and a lost lease is only logged: the result delivery is
// authoritative and duplicates are idempotent.
func (w *worker) heartbeatLoop(ctx context.Context, claim ClaimResponse) {
	ttl := time.Duration(claim.LeaseMS) * time.Millisecond
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	t := time.NewTicker(ttl / 3)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		var hb HeartbeatResponse
		err := w.postOnce(ctx, PathHeartbeat, HeartbeatRequest{Worker: w.name, ID: claim.ID, Key: claim.Key}, &hb)
		if err == nil && !hb.OK {
			w.logf("dist: %s: lease on %s lost; finishing anyway", w.name, claim.Key)
		}
	}
}

// post issues one RPC with bounded retry and jittered exponential
// backoff. Transport failures and 5xx retry; 4xx protocol rejections are
// terminal immediately.
func (w *worker) post(ctx context.Context, path string, req, resp any) error {
	var lastErr error
	for attempt := 0; attempt <= w.retries; attempt++ {
		if attempt > 0 {
			w.stats.RPCRetries++
			if !sleepCtx(ctx, w.jitteredBackoff(attempt)) {
				return ctx.Err()
			}
		}
		lastErr = w.postOnce(ctx, path, req, resp)
		if lastErr == nil {
			return nil
		}
		var term *terminalError
		if errors.As(lastErr, &term) {
			return lastErr
		}
		w.logf("dist: %s: %s attempt %d failed: %v", w.name, path, attempt+1, lastErr)
	}
	return fmt.Errorf("after %d attempts: %w", w.retries+1, lastErr)
}

// terminalError marks a coordinator verdict that retrying cannot change.
type terminalError struct{ msg string }

func (e *terminalError) Error() string { return e.msg }

// postOnce issues a single RPC attempt.
func (w *worker) postOnce(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return &terminalError{msg: fmt.Sprintf("encode %s request: %v", path, err)}
	}
	rctx, cancel := context.WithTimeout(ctx, w.timeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(rctx, http.MethodPost, w.base+path, bytes.NewReader(body))
	if err != nil {
		return &terminalError{msg: fmt.Sprintf("build %s request: %v", path, err)}
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := w.client.Do(hreq)
	if err != nil {
		return err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode >= 400 && hresp.StatusCode < 500 {
		msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 512))
		return &terminalError{msg: fmt.Sprintf("%s rejected: %s: %s", path, hresp.Status, bytes.TrimSpace(msg))}
	}
	if hresp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", path, hresp.Status)
	}
	if err := json.NewDecoder(hresp.Body).Decode(resp); err != nil {
		return fmt.Errorf("%s: decoding response: %w", path, err)
	}
	return nil
}

// jitteredBackoff is base·2^(attempt-1) capped at maxBackoff, ±50%.
func (w *worker) jitteredBackoff(attempt int) time.Duration {
	d := w.backoff << (attempt - 1)
	if d > maxBackoff || d <= 0 {
		d = maxBackoff
	}
	half := d / 2
	return half + time.Duration(w.rng.Int63n(int64(d)))
}

// sleepCtx waits d or until ctx dies; false means ctx died.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}
