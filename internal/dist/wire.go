// Package dist fans sweep execution out across processes and machines.
// A coordinator publishes the cell set of a sweep — keyed by the same
// canonical Spec.key() the memo cache and journal use — and hands out
// lease-based claims over plain HTTP+JSON; workers run cells with the
// standard panic containment and stream results back. The coordinator
// merges completions into the append-only journal in sweep order, so the
// merged journal and every rendered figure are byte-identical to a
// single-process `-jobs 1` run regardless of worker count, completion
// order, or churn (workers dying, hanging, and rejoining mid-sweep).
//
// Robustness contract, in priority order:
//
//   - Correctness under churn. A claim is a lease with a TTL; a worker
//     renews it by heartbeat while the cell runs. A silent worker (died,
//     hung, partitioned) loses the lease and the cell returns to the
//     queue. Completions are idempotent by cell: duplicate and late
//     results — a worker finishing a cell whose lease it lost — are
//     accepted or ignored without corrupting the merge, because cells
//     are deterministic functions of their spec.
//   - Determinism of the merge. Results are journaled strictly in sweep
//     order behind a watermark (a completed cell waits for its
//     predecessors), and every result that crossed the wire is re-keyed
//     to the coordinator's canonical spec via exp.CanonicalResult — the
//     same entry point journal resume uses.
//   - Graceful degradation. Workers bound every coordinator RPC with a
//     timeout and retry transport failures with jittered exponential
//     backoff; a worker that exhausts retries drains, salvages its
//     undelivered result to a local journal, and exits non-zero rather
//     than wedging. The coordinator never blocks on a worker.
package dist

import (
	"encoding/json"
	"fmt"
	"io"
)

// Endpoint paths of the coordinator's wire protocol.
const (
	PathClaim     = "/claim"
	PathHeartbeat = "/heartbeat"
	PathResult    = "/result"
	PathStatus    = "/status"
)

// ClaimRequest asks the coordinator for one cell to execute.
type ClaimRequest struct {
	// Worker identifies the claimant; leases and heartbeats are checked
	// against it.
	Worker string `json:"worker"`
}

// Validate reports protocol violations.
func (r ClaimRequest) Validate() error {
	if r.Worker == "" {
		return fmt.Errorf("dist: claim needs a worker name")
	}
	return nil
}

// Claim response statuses.
const (
	// StatusCell carries a leased cell to run.
	StatusCell = "cell"
	// StatusWait means no cell is currently available (all claimed or a
	// later batch may still be submitted); poll again after PollMS.
	StatusWait = "wait"
	// StatusDone means the sweep is complete and closed; the worker
	// should exit cleanly.
	StatusDone = "done"
)

// ClaimResponse answers a claim.
type ClaimResponse struct {
	Status string `json:"status"`
	// ID is the cell's slot in the coordinator's sweep-ordered list;
	// heartbeats and results echo it (status "cell" only).
	ID int `json:"id,omitempty"`
	// Key is the cell's canonical Spec.key().
	Key string `json:"key,omitempty"`
	// Spec is the JSON-marshaled exp.Spec to execute.
	Spec json.RawMessage `json:"spec,omitempty"`
	// LeaseMS is the lease TTL granted; the worker must heartbeat well
	// inside it (a heartbeat landing exactly at the TTL is already late).
	LeaseMS int64 `json:"lease_ms,omitempty"`
	// PollMS is the suggested re-poll delay (status "wait" only).
	PollMS int64 `json:"poll_ms,omitempty"`
}

// HeartbeatRequest renews the lease on a running cell.
type HeartbeatRequest struct {
	Worker string `json:"worker"`
	ID     int    `json:"id"`
	Key    string `json:"key"`
}

// Validate reports protocol violations.
func (r HeartbeatRequest) Validate() error {
	switch {
	case r.Worker == "":
		return fmt.Errorf("dist: heartbeat needs a worker name")
	case r.ID < 0:
		return fmt.Errorf("dist: heartbeat cell id %d is negative", r.ID)
	case r.Key == "":
		return fmt.Errorf("dist: heartbeat needs a cell key")
	}
	return nil
}

// HeartbeatResponse answers a renewal. OK false means the lease is gone
// — expired or reassigned. The worker may still finish and report the
// cell (the result is accepted idempotently), but it should expect the
// completion to be marked late or duplicate.
type HeartbeatResponse struct {
	OK      bool  `json:"ok"`
	LeaseMS int64 `json:"lease_ms,omitempty"`
}

// ResultRequest delivers a completed cell: exactly one of Result (the
// JSON-marshaled exp.Result) or Error (a terminal cell failure — audit
// violation, stall, contained panic) is set.
type ResultRequest struct {
	Worker string          `json:"worker"`
	ID     int             `json:"id"`
	Key    string          `json:"key"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// Validate reports protocol violations.
func (r ResultRequest) Validate() error {
	switch {
	case r.Worker == "":
		return fmt.Errorf("dist: result needs a worker name")
	case r.ID < 0:
		return fmt.Errorf("dist: result cell id %d is negative", r.ID)
	case r.Key == "":
		return fmt.Errorf("dist: result needs a cell key")
	case len(r.Result) == 0 && r.Error == "":
		return fmt.Errorf("dist: result carries neither a result nor an error")
	case len(r.Result) > 0 && r.Error != "":
		return fmt.Errorf("dist: result carries both a result and an error")
	}
	return nil
}

// ResultResponse acknowledges a delivery. Accepted false means the
// message was malformed or named an unknown cell — the worker should not
// retry it. Duplicate marks an idempotent re-delivery of an already
// completed cell.
type ResultResponse struct {
	Accepted  bool   `json:"accepted"`
	Duplicate bool   `json:"duplicate,omitempty"`
	Reason    string `json:"reason,omitempty"`
}

// decodeStrict parses one JSON wire message, rejecting unknown fields
// and trailing garbage — a torn or concatenated stream must fail loudly,
// not half-apply.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("dist: parsing message: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("dist: trailing data after message")
	}
	return nil
}
