package dist

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"memnet/internal/exp"
	"memnet/internal/fault"
	"memnet/internal/sim"
	"memnet/internal/workload"
)

// churnSpecs is the soak's cell set: several healthy cells plus one
// fault-scenario cell (fail + repair mid-run), so the merge determinism
// claim is exercised on the self-healing path too.
func churnSpecs(t *testing.T) []exp.Spec {
	t.Helper()
	wl, err := workload.ByName("mixG")
	if err != nil {
		t.Fatal(err)
	}
	var specs []exp.Spec
	for i := 0; i < 4; i++ {
		specs = append(specs, exp.Spec{
			Workload: wl,
			Mech:     exp.MechFP,
			SimTime:  20 * sim.Microsecond,
			Warmup:   5 * sim.Microsecond,
			SeedSalt: uint64(i + 1),
		})
	}
	specs = append(specs, exp.Spec{
		Workload:       wl,
		Mech:           exp.MechVWL,
		SimTime:        30 * sim.Microsecond,
		Warmup:         5 * sim.Microsecond,
		RequestTimeout: 2 * sim.Microsecond,
		Faults: fault.Scenario{
			Seed: 7,
			Events: []fault.Event{
				{At: fault.Duration(8 * sim.Microsecond), Kind: fault.LinkFail, Link: 1},
				{At: fault.Duration(14 * sim.Microsecond), Kind: fault.LinkRepair, Link: 1},
			},
		},
	})
	return specs
}

// TestChurnSoak is the acceptance backbone for the distributed path: a
// coordinator over real HTTP, three in-process workers, and seeded
// worker kills mid-sweep (a killed worker drops its completed result on
// the floor exactly as SIGKILL would, its lease expires, and the cell is
// reassigned to a replacement). The merged journal must be
// byte-identical to a single-process `-jobs 1` run of the same specs,
// for every seed. The whole soak runs under a watchdog context so a
// coordinator deadlock on lease expiry fails the test instead of hanging
// it.
func TestChurnSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("churn soak skipped in -short mode")
	}
	specs := churnSpecs(t)

	// Single-process reference journal.
	refPath := filepath.Join(t.TempDir(), "ref.jsonl")
	jr, loaded, err := exp.OpenJournal(refPath)
	if err != nil {
		t.Fatal(err)
	}
	refResults, refErrs := exp.RunSpecsJournaled(specs, 1, jr, loaded)
	for i, e := range refErrs {
		if e != nil {
			t.Fatalf("reference cell %d: %v", i, e)
		}
	}
	jr.Close()
	ref, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}

	for _, seed := range []int64{1, 2} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runChurnSweep(t, specs, refResults, ref, seed)
		})
	}
}

func runChurnSweep(t *testing.T, specs []exp.Spec, refResults []exp.Result, ref []byte, seed int64) {
	// Watchdog: if the coordinator ever deadlocks (lease expiry, flush,
	// Wait), this context expires and the test fails loudly.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	distPath := filepath.Join(t.TempDir(), "dist.jsonl")
	jd, loadedD, err := exp.OpenJournal(distPath)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCoordinator(Config{
		LeaseTTL: 250 * time.Millisecond,
		Journal:  jd,
		Loaded:   loadedD,
		Logf:     t.Logf,
	})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	batch := c.Submit(specs)
	c.Close()

	// Seeded churn plan: each worker slot gets a kill quota — how many
	// cells it completes (and silently discards) before dying. A dead
	// worker is replaced until the kill budget is spent; afterwards
	// workers run to completion.
	rng := rand.New(rand.NewSource(seed))
	var kills atomic.Int64
	kills.Store(3)

	const slots = 3
	var wg sync.WaitGroup
	for slot := 0; slot < slots; slot++ {
		quota := 1 + rng.Intn(2)
		wg.Add(1)
		go func(slot, quota int) {
			defer wg.Done()
			incarnation := 0
			for {
				incarnation++
				wctx, die := context.WithCancel(ctx)
				ran := 0
				run := func(ctx context.Context, s exp.Spec) (exp.Result, error) {
					res, err := exp.RunCell(s)
					ran++
					if ran >= quota && kills.Add(-1) >= 0 {
						// Die between finishing the simulation and
						// delivering the result — the worst spot: the
						// work is done but the coordinator never hears.
						die()
					}
					return res, err
				}
				_, err := RunWorker(wctx, WorkerConfig{
					Coordinator:    srv.URL,
					Name:           fmt.Sprintf("w%d.%d", slot, incarnation),
					Run:            run,
					RequestTimeout: 2 * time.Second,
					Retries:        2,
					Backoff:        20 * time.Millisecond,
					Logf:           t.Logf,
				})
				die()
				if err == nil {
					return // sweep done
				}
				if ctx.Err() != nil {
					return // watchdog fired; the main goroutine reports
				}
				// Killed mid-sweep: restart as a fresh incarnation.
			}
		}(slot, quota)
	}

	results, errs, err := batch.Wait(ctx)
	if err != nil {
		t.Fatalf("watchdog or wait failure: %v", err)
	}
	wg.Wait()
	for i, e := range errs {
		if e != nil {
			t.Fatalf("distributed cell %d: %v", i, e)
		}
	}
	jd.Close()
	if err := c.Err(); err != nil {
		t.Fatalf("journal flush: %v", err)
	}

	got, err := os.ReadFile(distPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(ref) {
		t.Fatalf("seed %d: merged journal differs from single-process run\n--- single-process (%d bytes) ---\n%s--- distributed (%d bytes) ---\n%s",
			seed, len(ref), ref, len(got), got)
	}
	for i := range results {
		if results[i].Events != refResults[i].Events || results[i].Throughput != refResults[i].Throughput {
			t.Fatalf("seed %d: merged result %d differs: events %d vs %d, throughput %g vs %g",
				seed, i, results[i].Events, refResults[i].Events, results[i].Throughput, refResults[i].Throughput)
		}
	}
	st := c.Stats()
	t.Logf("seed %d: stats %+v", seed, st)
	if st.Done != len(specs) {
		t.Fatalf("seed %d: %d cells done, want %d", seed, st.Done, len(specs))
	}
	if st.LeasesExpired == 0 {
		t.Fatalf("seed %d: churn soak saw no lease expiry — kills did not bite", seed)
	}
}

// TestWorkerDrainOnCoordinatorLoss: a worker whose coordinator vanishes
// mid-delivery salvages the finished result to its local fallback
// journal and returns an error (the CLI exits non-zero), rather than
// retrying forever or dropping the work.
func TestWorkerDrainOnCoordinatorLoss(t *testing.T) {
	specs := testSpecs(t, 1)
	c := NewCoordinator(Config{LeaseTTL: time.Minute})
	srv := httptest.NewServer(c.Handler())
	c.Submit(specs)
	c.Close()

	fbPath := filepath.Join(t.TempDir(), "salvage.jsonl")
	fb, _, err := exp.OpenJournal(fbPath)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()

	res0, err := exp.RunCell(specs[0])
	if err != nil {
		t.Fatal(err)
	}
	stats, werr := RunWorker(context.Background(), WorkerConfig{
		Coordinator: srv.URL,
		Name:        "lonely",
		Fallback:    fb,
		Run: func(_ context.Context, s exp.Spec) (exp.Result, error) {
			// The coordinator dies while the cell runs.
			srv.Close()
			return res0, nil
		},
		RequestTimeout: 200 * time.Millisecond,
		Retries:        1,
		Backoff:        10 * time.Millisecond,
		Logf:           t.Logf,
	})
	if werr == nil {
		t.Fatal("worker returned nil after losing its coordinator")
	}
	if stats.Salvaged != 1 {
		t.Fatalf("salvaged = %d, want 1; stats %+v", stats.Salvaged, stats)
	}
	// The salvage journal is a valid journal holding the finished cell.
	// Close first: the journal flock (held per open handle) would reject
	// a second opener while the worker's handle is live.
	fb.Close()
	_, loaded, err := exp.OpenJournal(fbPath)
	if err != nil {
		t.Fatalf("re-opening salvage journal: %v", err)
	}
	if _, ok := loaded[specs[0].Key()]; !ok {
		t.Fatalf("salvage journal is missing %s; has %d entries", specs[0].Key(), len(loaded))
	}
}

// TestWorkerEndToEnd: the plain no-churn path — two workers over HTTP
// drain a batch and the coordinator's journal matches the sequential
// run. Also asserts worker stats add up.
func TestWorkerEndToEnd(t *testing.T) {
	specs := testSpecs(t, 3)

	refPath := filepath.Join(t.TempDir(), "ref.jsonl")
	jr, loaded, err := exp.OpenJournal(refPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, errs := exp.RunSpecsJournaled(specs, 1, jr, loaded); errs[0] != nil || errs[1] != nil || errs[2] != nil {
		t.Fatalf("reference errors: %v", errs)
	}
	jr.Close()

	distPath := filepath.Join(t.TempDir(), "dist.jsonl")
	jd, loadedD, err := exp.OpenJournal(distPath)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCoordinator(Config{LeaseTTL: 2 * time.Second, Journal: jd, Loaded: loadedD, Logf: t.Logf})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	batch := c.Submit(specs)
	c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	delivered := make([]WorkerStats, 2)
	for i := range delivered {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := RunWorker(ctx, WorkerConfig{Coordinator: srv.URL, Name: fmt.Sprintf("w%d", i), Logf: t.Logf})
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
			delivered[i] = st
		}(i)
	}
	if _, errs, err := batch.Wait(ctx); err != nil {
		t.Fatal(err)
	} else {
		for i, e := range errs {
			if e != nil {
				t.Fatalf("cell %d: %v", i, e)
			}
		}
	}
	wg.Wait()
	jd.Close()

	ref, _ := os.ReadFile(refPath)
	got, _ := os.ReadFile(distPath)
	if string(ref) != string(got) {
		t.Fatalf("journal differs:\n--- sequential ---\n%s--- distributed ---\n%s", ref, got)
	}
	if n := delivered[0].CellsDelivered + delivered[1].CellsDelivered; n != len(specs) {
		t.Fatalf("workers delivered %d cells, want %d", n, len(specs))
	}
}
