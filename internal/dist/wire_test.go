package dist

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"memnet/internal/exp"
)

// TestValidateMessages pins the protocol-violation verdicts for every
// request type.
func TestValidateMessages(t *testing.T) {
	cases := []struct {
		name string
		err  bool
		v    interface{ Validate() error }
	}{
		{"claim ok", false, ClaimRequest{Worker: "w"}},
		{"claim anonymous", true, ClaimRequest{}},
		{"heartbeat ok", false, HeartbeatRequest{Worker: "w", ID: 0, Key: "k"}},
		{"heartbeat anonymous", true, HeartbeatRequest{ID: 0, Key: "k"}},
		{"heartbeat negative id", true, HeartbeatRequest{Worker: "w", ID: -1, Key: "k"}},
		{"heartbeat keyless", true, HeartbeatRequest{Worker: "w", ID: 0}},
		{"result ok", false, ResultRequest{Worker: "w", ID: 0, Key: "k", Result: json.RawMessage(`{}`)}},
		{"result error ok", false, ResultRequest{Worker: "w", ID: 0, Key: "k", Error: "boom"}},
		{"result anonymous", true, ResultRequest{ID: 0, Key: "k", Error: "boom"}},
		{"result negative id", true, ResultRequest{Worker: "w", ID: -1, Key: "k", Error: "boom"}},
		{"result keyless", true, ResultRequest{Worker: "w", ID: 0, Error: "boom"}},
		{"result empty", true, ResultRequest{Worker: "w", ID: 0, Key: "k"}},
		{"result both", true, ResultRequest{Worker: "w", ID: 0, Key: "k", Result: json.RawMessage(`{}`), Error: "x"}},
	}
	for _, tc := range cases {
		if got := tc.v.Validate(); (got != nil) != tc.err {
			t.Errorf("%s: Validate() = %v, want error=%v", tc.name, got, tc.err)
		}
	}
}

// TestErrorStrings: the error types name their actors.
func TestErrorStrings(t *testing.T) {
	rce := &RemoteCellError{Worker: "w7", Msg: "audit violation"}
	if s := rce.Error(); !strings.Contains(s, "w7") || !strings.Contains(s, "audit violation") {
		t.Errorf("RemoteCellError message dropped context: %q", s)
	}
	te := &terminalError{msg: "rejected"}
	if te.Error() != "rejected" {
		t.Errorf("terminalError message = %q", te.Error())
	}
}

// TestDrainWorkers: an orderly worker (told done) drains immediately; a
// worker that was seen but never dismissed holds the drain open until
// the timeout.
func TestDrainWorkers(t *testing.T) {
	c := NewCoordinator(Config{LeaseTTL: time.Minute})
	c.Submit(testSpecs(t, 1))
	cl := c.claim("orderly")
	c.Close()
	if ok := c.DrainWorkers(50 * time.Millisecond); ok {
		t.Fatal("drained while a worker was still known and undismissed")
	}
	if ack := c.result(ResultRequest{Worker: "orderly", ID: cl.ID, Key: cl.Key, Result: fakeResult(t, testSpecs(t, 1)[0])}); !ack.Accepted {
		t.Fatalf("result: %+v", ack)
	}
	if got := c.claim("orderly").Status; got != StatusDone {
		t.Fatalf("claim after completion: %q", got)
	}
	if ok := c.DrainWorkers(time.Second); !ok {
		t.Fatal("orderly worker was dismissed but drain still timed out")
	}
}

// TestWaitCanceled: Wait honors its context even when cells never
// finish.
func TestWaitCanceled(t *testing.T) {
	c := NewCoordinator(Config{LeaseTTL: time.Minute})
	b := c.Submit(testSpecs(t, 1))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := b.Wait(ctx); err == nil {
		t.Fatal("Wait returned nil on a canceled context")
	}
}

// TestWorkerHeartbeatsUnderShortLease: a cell that outlives its lease
// TTL several times over survives because the worker's heartbeat loop
// keeps renewing — no expiry, no duplicate execution.
func TestWorkerHeartbeatsUnderShortLease(t *testing.T) {
	specs := testSpecs(t, 1)
	c := NewCoordinator(Config{LeaseTTL: 500 * time.Millisecond, Logf: t.Logf})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	b := c.Submit(specs)
	c.Close()

	res0, err := exp.RunCell(specs[0])
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	stats, werr := RunWorker(ctx, WorkerConfig{
		Coordinator: srv.URL,
		Name:        "slow",
		Run: func(_ context.Context, s exp.Spec) (exp.Result, error) {
			time.Sleep(1200 * time.Millisecond) // several heartbeat intervals past the TTL
			return res0, nil
		},
		Logf: t.Logf,
	})
	if werr != nil {
		t.Fatalf("worker: %v", werr)
	}
	if stats.CellsRun != 1 || stats.CellsDelivered != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	if _, errs, err := b.Wait(ctx); err != nil || errs[0] != nil {
		t.Fatalf("wait: %v %v", err, errs)
	}
	if st := c.Stats(); st.LeasesExpired != 0 {
		t.Fatalf("lease expired despite heartbeats: %+v", st)
	}
}

// TestWorkerTerminalRejection: a coordinator that answers 400 is a
// protocol verdict — the worker does not retry the request.
func TestWorkerTerminalRejection(t *testing.T) {
	var calls int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		http.Error(w, "dist: claim needs a worker name", http.StatusBadRequest)
	}))
	defer srv.Close()
	_, err := RunWorker(context.Background(), WorkerConfig{
		Coordinator: srv.URL,
		Name:        "w",
		Retries:     5,
		Backoff:     time.Millisecond,
		Logf:        t.Logf,
	})
	if err == nil {
		t.Fatal("worker accepted a 400 verdict")
	}
	if calls != 1 {
		t.Fatalf("worker retried a terminal rejection: %d calls", calls)
	}
	var term *terminalError
	if !errors.As(err, &term) {
		t.Fatalf("error is not terminal: %v", err)
	}
}
