package dist

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"memnet/internal/exp"
	"memnet/internal/sim"
	"memnet/internal/workload"
)

// fuzzSpecs builds two cheap cells without *testing.T (the fuzz engine
// owns the test handle).
func fuzzSpecs(f *testing.F) []exp.Spec {
	wl, err := workload.ByName("mixG")
	if err != nil {
		f.Fatal(err)
	}
	mk := func(salt uint64) exp.Spec {
		return exp.Spec{
			Workload: wl,
			Mech:     exp.MechFP,
			SimTime:  20 * sim.Microsecond,
			Warmup:   5 * sim.Microsecond,
			SeedSalt: salt,
		}
	}
	return []exp.Spec{mk(1), mk(2)}
}

// FuzzWire throws arbitrary bytes at every coordinator endpoint: no
// input may panic the handler or corrupt the lease state machine, and
// every 200 response must be a stable JSON document (decode → marshal →
// decode is a fixed point — what a worker reads is what the coordinator
// meant). which selects the endpoint so the fuzzer mutates the pairing
// too.
func FuzzWire(f *testing.F) {
	specs := fuzzSpecs(f)
	for _, seed := range []struct {
		which byte
		body  string
	}{
		{0, `{"worker":"w1"}`},
		{0, `{"worker":""}`},
		{0, `{"worker":"w1","extra":1}`},
		{1, `{"worker":"w1","id":0,"key":"k"}`},
		{1, `{"worker":"w1","id":-1,"key":"k"}`},
		{1, `{"worker":"w1","id":99999,"key":"k"}`},
		{2, `{"worker":"w1","id":0,"key":"k","result":{"Spec":{}}}`},
		{2, `{"worker":"w1","id":0,"key":"k","error":"cell panicked: boom"}`},
		{2, `{"worker":"w1","id":0,"key":"k","result":{"Spec":,}}`},
		{2, `{"worker":"w1","id":0,"key":"k"}`},
		{2, `{"worker":"w1","id":0,"key":"k","result":{},"error":"both"}`},
		{3, ``},
		{0, `{"worker":"w1"}{"worker":"w2"}`},
		{2, `[1,2,3]`},
		{1, "\x00\xff"},
	} {
		f.Add(seed.which, []byte(seed.body))
	}
	f.Fuzz(func(t *testing.T, which byte, body []byte) {
		// A small live sweep: two cells, the first leased to "held".
		c := NewCoordinator(Config{LeaseTTL: time.Hour})
		c.Submit(specs)
		if cl := c.claim("held"); cl.Status != StatusCell {
			t.Fatalf("setup claim: %+v", cl)
		}
		h := c.Handler()

		paths := []string{PathClaim, PathHeartbeat, PathResult, PathStatus}
		path := paths[int(which)%len(paths)]
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)

		switch {
		case rec.Code == http.StatusOK:
			// Every OK response is one stable JSON document.
			var doc any
			dec := json.NewDecoder(bytes.NewReader(rec.Body.Bytes()))
			if err := dec.Decode(&doc); err != nil {
				t.Fatalf("%s answered 200 with undecodable body %q: %v", path, rec.Body.Bytes(), err)
			}
			first, err := json.Marshal(doc)
			if err != nil {
				t.Fatalf("%s response does not re-marshal: %v", path, err)
			}
			var again any
			if err := json.Unmarshal(first, &again); err != nil {
				t.Fatalf("%s response is not a marshal fixed point: %v", path, err)
			}
			second, err := json.Marshal(again)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first, second) {
				t.Fatalf("%s response unstable across round trips:\n%s\n%s", path, first, second)
			}
		case rec.Code == http.StatusBadRequest:
			// Protocol rejection: fine, but it must carry a reason.
			if rec.Body.Len() == 0 {
				t.Fatalf("%s answered 400 with no reason", path)
			}
		default:
			t.Fatalf("%s answered unexpected status %d", path, rec.Code)
		}

		// The lease state machine must stay coherent no matter what landed.
		st := c.Stats()
		if st.Done < 0 || st.Done > st.Cells {
			t.Fatalf("stats corrupted: %+v", st)
		}
		if st.Failed > st.Done {
			t.Fatalf("more failures than completions: %+v", st)
		}
		if st.Claimed > st.Cells-st.Done {
			t.Fatalf("more leases than open cells: %+v", st)
		}
	})
}

// FuzzWireRequests: any bytes a coordinator accepts as a wire request
// must survive a marshal round trip unchanged in meaning — the strict
// decoder and the struct tags agree on one canonical form.
func FuzzWireRequests(f *testing.F) {
	for _, seed := range []string{
		`{"worker":"w","id":3,"key":"a|b|c","result":{"Spec":{}}}`,
		`{"worker":"w","id":0,"key":"k","error":"boom"}`,
		`{"worker":"w"}`,
		`{"worker":"w","id":1,"key":"k"}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var req ResultRequest
		if err := decodeStrict(bytes.NewReader(data), &req); err != nil {
			return
		}
		if req.Validate() != nil {
			return
		}
		out, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("accepted request does not marshal: %v", err)
		}
		var again ResultRequest
		if err := decodeStrict(bytes.NewReader(out), &again); err != nil {
			t.Fatalf("marshaled request does not decode strictly: %v\n%s", err, out)
		}
		out2, err := json.Marshal(again)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("request not a marshal fixed point:\n%s\n%s", out, out2)
		}
	})
}
