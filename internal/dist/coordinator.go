package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"memnet/internal/exp"
	"memnet/internal/metrics"
)

// Defaults. The lease TTL is generous against real-world scheduling
// hiccups (a worker must merely heartbeat, not finish, inside it); tests
// shrink it to force expiry quickly.
const (
	DefaultLeaseTTL = 10 * time.Second
)

// Config parameterizes a Coordinator.
type Config struct {
	// LeaseTTL is how long a claim stays valid without a heartbeat
	// (0 = DefaultLeaseTTL). A lease whose expiry instant has been
	// reached is already expired: a heartbeat arriving exactly at the
	// TTL is rejected and the cell returns to the queue.
	LeaseTTL time.Duration
	// Poll is the re-poll hint handed to workers when no cell is
	// available (0 = LeaseTTL/4).
	Poll time.Duration
	// Journal, when non-nil, receives every fresh successful cell in
	// sweep order behind the completion watermark; Loaded seeds the
	// coordinator with results restored from a previous run (consumed by
	// key on Submit, exactly like RunSpecsJournaled).
	Journal *exp.Journal
	Loaded  map[string]exp.Result
	// Logf, when non-nil, receives progress lines (lease grants,
	// expiries, completions).
	Logf func(format string, args ...any)
	// Clock overrides time.Now for lease arithmetic (tests).
	Clock func() time.Time
}

// cellState is the lease state machine: pending -> claimed -> done, with
// claimed -> pending on lease expiry. done is terminal and idempotent.
type cellState uint8

const (
	cellPending cellState = iota
	cellClaimed
	cellDone
)

// cell is one sweep slot. Slots with duplicate keys are distinct cells
// (mirroring RunSpecsJournaled, which journals each slot), but only the
// first executes remotely — completions copy to same-key siblings.
type cell struct {
	spec   exp.Spec
	key    string
	state  cellState
	owner  string
	expiry time.Time
	res    exp.Result
	err    error
	// fresh cells (not journal-restored) are appended to the journal
	// when the watermark passes them.
	fresh bool
	batch *Batch
}

// Stats is a consistent snapshot of the coordinator's gauges, exposed on
// /status and mirrored into an attached metrics registry.
type Stats struct {
	Cells    int `json:"cells"`
	Done     int `json:"done"`
	Failed   int `json:"failed"`
	Restored int `json:"restored"`
	// Claimed counts leases currently held.
	Claimed int `json:"claimed"`
	// Workers counts distinct workers seen within the last two TTLs.
	Workers          int    `json:"workers"`
	LeasesGranted    uint64 `json:"leases_granted"`
	LeasesExpired    uint64 `json:"leases_expired"`
	DuplicateResults uint64 `json:"duplicate_results"`
	// LateResults counts completions accepted from a worker that no
	// longer held the cell's lease (expired or reassigned).
	LateResults uint64 `json:"late_results"`
	Closed      bool   `json:"closed"`
}

// Coordinator owns the cell set of a distributed sweep. All state lives
// behind one mutex; every handler expires stale leases lazily on entry,
// so lease bookkeeping cannot deadlock — there is no background goroutine
// to stall.
type Coordinator struct {
	mu   sync.Mutex
	cond *sync.Cond

	ttl    time.Duration
	poll   time.Duration
	clock  func() time.Time
	logf   func(string, ...any)
	jnl    *exp.Journal
	loaded map[string]exp.Result

	cells    []*cell
	byKey    map[string][]int // slots per key, in submit order
	restored int
	done     int
	failed   int
	closed   bool
	// watermark is the journal flush frontier: cells[:watermark] are done
	// and, when fresh and successful, appended in slot order.
	watermark int
	flushErr  error

	lastSeen map[string]time.Time
	granted  uint64
	expired  uint64
	dups     uint64
	late     uint64

	reg *metrics.Registry
}

// NewCoordinator builds an empty coordinator; Submit adds cells.
func NewCoordinator(cfg Config) *Coordinator {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.Poll <= 0 {
		cfg.Poll = cfg.LeaseTTL / 4
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	c := &Coordinator{
		ttl:      cfg.LeaseTTL,
		poll:     cfg.Poll,
		clock:    cfg.Clock,
		logf:     cfg.Logf,
		jnl:      cfg.Journal,
		loaded:   cfg.Loaded,
		byKey:    map[string][]int{},
		lastSeen: map[string]time.Time{},
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// AttachMetrics registers the coordinator's gauges on reg (nil-safe) and
// samples them on every state change. Call before reg.StartManual; the
// coordinator serializes every Observe under its own mutex.
func (c *Coordinator) AttachMetrics(reg *metrics.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reg = reg
	reg.Gauge("dist.cells", func() float64 { return float64(len(c.cells)) })
	reg.Gauge("dist.done", func() float64 { return float64(c.done) })
	reg.Gauge("dist.claimed", func() float64 { return float64(c.claimedLocked()) })
	reg.Gauge("dist.workers", func() float64 { return float64(c.workersLocked(c.clock())) })
	reg.Gauge("dist.leases_expired", func() float64 { return float64(c.expired) })
	reg.Gauge("dist.duplicate_results", func() float64 { return float64(c.dups) })
}

// Batch is one Submit's slice of the sweep; Wait blocks for its cells.
type Batch struct {
	c     *Coordinator
	cells []*cell
}

// Submit appends specs to the sweep as new cells, in order, consuming
// journal restores by key (first undone slot wins, like
// RunSpecsJournaled). Panics after Close — the shutdown handshake with
// workers depends on "closed" being final.
func (c *Coordinator) Submit(specs []exp.Spec) *Batch {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		panic("dist: Submit after Close")
	}
	b := &Batch{c: c}
	for _, s := range specs {
		cl := &cell{spec: s, key: s.Key(), batch: b}
		if res, ok := c.loaded[cl.key]; ok {
			delete(c.loaded, cl.key)
			cl.state = cellDone
			cl.res = exp.CanonicalResult(res, s)
			c.restored++
			c.done++
		}
		c.byKey[cl.key] = append(c.byKey[cl.key], len(c.cells))
		c.cells = append(c.cells, cl)
		b.cells = append(b.cells, cl)
	}
	c.flushLocked()
	c.observeLocked()
	c.cond.Broadcast()
	return b
}

// Close marks the sweep final: once every cell is done, claims answer
// StatusDone and workers drain. No further Submit is allowed.
func (c *Coordinator) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	c.cond.Broadcast()
}

// DrainWorkers blocks after Close until every recently seen worker has
// claimed once more and been told the sweep is done — so an embedding
// CLI can keep the listener up long enough for workers to exit cleanly
// instead of dying on a connection refused — or until timeout elapses
// (<= 0 picks a default covering one poll round plus the 2×TTL age-out
// of silently dead workers, capped at 10 s). Reports whether the drain
// completed.
func (c *Coordinator) DrainWorkers(timeout time.Duration) bool {
	if timeout <= 0 {
		timeout = 2*c.ttl + c.poll
		if timeout > 10*time.Second {
			timeout = 10 * time.Second
		}
	}
	deadline := time.Now().Add(timeout)
	for {
		c.mu.Lock()
		n := c.workersLocked(c.clock())
		c.mu.Unlock()
		if n == 0 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Err reports the first journal-append failure, if any. The sweep keeps
// running past one — losing the journal must not lose the results — but
// callers should surface it.
func (c *Coordinator) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushErr
}

// Stats snapshots the gauges.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock()
	c.expireLocked(now)
	return Stats{
		Cells:            len(c.cells),
		Done:             c.done,
		Failed:           c.failed,
		Restored:         c.restored,
		Claimed:          c.claimedLocked(),
		Workers:          c.workersLocked(now),
		LeasesGranted:    c.granted,
		LeasesExpired:    c.expired,
		DuplicateResults: c.dups,
		LateResults:      c.late,
		Closed:           c.closed,
	}
}

func (c *Coordinator) claimedLocked() int {
	n := 0
	for _, cl := range c.cells {
		if cl.state == cellClaimed {
			n++
		}
	}
	return n
}

func (c *Coordinator) workersLocked(now time.Time) int {
	n := 0
	for _, seen := range c.lastSeen {
		if now.Sub(seen) <= 2*c.ttl {
			n++
		}
	}
	return n
}

// expireLocked returns expired leases to the queue. Expiry is lazy —
// checked on every request and snapshot under the same mutex — so there
// is no reaper goroutine to race or deadlock with.
func (c *Coordinator) expireLocked(now time.Time) {
	for i, cl := range c.cells {
		if cl.state == cellClaimed && !now.Before(cl.expiry) {
			c.logf("dist: lease on cell %d (%s) held by %s expired; requeued", i, cl.key, cl.owner)
			cl.state = cellPending
			cl.owner = ""
			c.expired++
		}
	}
}

// observeLocked mirrors the gauges into the attached registry.
func (c *Coordinator) observeLocked() {
	c.reg.Observe() // nil-safe
}

// completeLocked finishes cell i and copies the completion to same-key
// sibling slots (each fresh sibling still journals its own line, exactly
// like the sequential path running a duplicate spec twice). res must
// already be canonical for cells[i].
func (c *Coordinator) completeLocked(i int, res exp.Result, err error) {
	cl := c.cells[i]
	for _, j := range c.byKey[cl.key] {
		sib := c.cells[j]
		if sib.state == cellDone {
			continue
		}
		sib.state = cellDone
		sib.owner = ""
		sib.err = err
		sib.fresh = true
		if err == nil {
			sib.res = exp.CanonicalResult(res, sib.spec)
		}
		c.done++
		if err != nil {
			c.failed++
		}
	}
	c.flushLocked()
	c.observeLocked()
	c.cond.Broadcast()
}

// flushLocked advances the journal watermark: a completed cell is
// appended only once every earlier slot is done, so the journal grows in
// sweep order and matches a `-jobs 1` run byte for byte. Failed cells
// and journal-restored cells advance the watermark without appending.
func (c *Coordinator) flushLocked() {
	for c.watermark < len(c.cells) {
		cl := c.cells[c.watermark]
		if cl.state != cellDone {
			return
		}
		if cl.fresh && cl.err == nil && c.jnl != nil {
			if err := c.jnl.Append(cl.key, cl.res); err != nil {
				c.logf("dist: journal append for %s failed: %v", cl.key, err)
				if c.flushErr == nil {
					c.flushErr = fmt.Errorf("dist: journal: %w", err)
				}
			}
		}
		c.watermark++
	}
}

// doneLocked reports whether every cell of b is finished.
func (b *Batch) doneLocked() bool {
	for _, cl := range b.cells {
		if cl.state != cellDone {
			return false
		}
	}
	return true
}

// Wait blocks until every cell of the batch is done and returns results
// and errors aligned with the submitted specs (the same contract as
// RunSpecsJournaled). A worker-reported cell failure is a
// *RemoteCellError; Wait itself only fails when ctx does.
func (b *Batch) Wait(ctx context.Context) ([]exp.Result, []error, error) {
	stop := context.AfterFunc(ctx, func() {
		b.c.mu.Lock()
		b.c.cond.Broadcast()
		b.c.mu.Unlock()
	})
	defer stop()
	b.c.mu.Lock()
	defer b.c.mu.Unlock()
	for !b.doneLocked() && ctx.Err() == nil {
		b.c.cond.Wait()
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	results := make([]exp.Result, len(b.cells))
	errs := make([]error, len(b.cells))
	for i, cl := range b.cells {
		results[i], errs[i] = cl.res, cl.err
	}
	return results, errs, nil
}

// RemoteCellError is a terminal cell failure reported by a worker: the
// cell ran to a deterministic error (audit violation, stall, contained
// panic) and must not be retried.
type RemoteCellError struct {
	Worker string
	Msg    string
}

// Error implements error.
func (e *RemoteCellError) Error() string {
	return fmt.Sprintf("remote cell failed on %s: %s", e.Worker, e.Msg)
}

// Handler returns the coordinator's HTTP surface.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathClaim, c.handleClaim)
	mux.HandleFunc(PathHeartbeat, c.handleHeartbeat)
	mux.HandleFunc(PathResult, c.handleResult)
	mux.HandleFunc(PathStatus, c.handleStatus)
	return mux
}

// reply writes v as JSON; encoding of our own response types cannot fail.
func reply(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (c *Coordinator) handleClaim(w http.ResponseWriter, r *http.Request) {
	var req ClaimRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := req.Validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	reply(w, c.claim(req.Worker))
}

// claim hands out the first pending cell, or a wait/done verdict.
func (c *Coordinator) claim(worker string) ClaimResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock()
	c.lastSeen[worker] = now
	c.expireLocked(now)
	for i, cl := range c.cells {
		if cl.state != cellPending {
			continue
		}
		raw, err := json.Marshal(cl.spec)
		if err != nil {
			// A spec the wire cannot carry is a deterministic cell failure,
			// exactly as if the cell itself had errored.
			c.logf("dist: cell %d (%s) is not wire-encodable: %v", i, cl.key, err)
			c.completeLocked(i, exp.Result{}, fmt.Errorf("dist: spec not wire-encodable: %w", err))
			continue
		}
		cl.state = cellClaimed
		cl.owner = worker
		cl.expiry = now.Add(c.ttl)
		c.granted++
		c.logf("dist: leased cell %d (%s) to %s", i, cl.key, worker)
		c.observeLocked()
		return ClaimResponse{
			Status:  StatusCell,
			ID:      i,
			Key:     cl.key,
			Spec:    raw,
			LeaseMS: c.ttl.Milliseconds(),
		}
	}
	if c.closed && c.done == len(c.cells) {
		// The worker is leaving: forget it so DrainWorkers can tell an
		// orderly shutdown from an abandoned one.
		delete(c.lastSeen, worker)
		c.cond.Broadcast()
		return ClaimResponse{Status: StatusDone}
	}
	// Nothing pending right now, but leases may expire or batches may
	// still be submitted: poll again.
	return ClaimResponse{Status: StatusWait, PollMS: c.poll.Milliseconds()}
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := req.Validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	reply(w, c.heartbeat(req))
}

// heartbeat renews a live lease; anything else — expired, reassigned,
// unknown cell, finished cell — answers OK false without mutating state.
func (c *Coordinator) heartbeat(req HeartbeatRequest) HeartbeatResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock()
	c.lastSeen[req.Worker] = now
	c.expireLocked(now)
	if req.ID >= len(c.cells) {
		return HeartbeatResponse{}
	}
	cl := c.cells[req.ID]
	if cl.state != cellClaimed || cl.owner != req.Worker || cl.key != req.Key {
		return HeartbeatResponse{}
	}
	cl.expiry = now.Add(c.ttl)
	return HeartbeatResponse{OK: true, LeaseMS: c.ttl.Milliseconds()}
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var req ResultRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := req.Validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	reply(w, c.result(req))
}

// result merges one completion. Unknown or mismatched cells are rejected
// terminally (the worker must not retry); duplicates are acknowledged
// idempotently; late results — the lease expired or moved — are accepted,
// because cells are deterministic and a correct result is a correct
// result no matter who computed it.
func (c *Coordinator) result(req ResultRequest) ResultResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock()
	c.lastSeen[req.Worker] = now
	c.expireLocked(now)
	if req.ID >= len(c.cells) {
		return ResultResponse{Reason: fmt.Sprintf("unknown cell id %d", req.ID)}
	}
	cl := c.cells[req.ID]
	if cl.key != req.Key {
		return ResultResponse{Reason: fmt.Sprintf("cell %d key mismatch", req.ID)}
	}
	if cl.state == cellDone {
		c.dups++
		c.observeLocked()
		return ResultResponse{Accepted: true, Duplicate: true}
	}
	if cl.state != cellClaimed || cl.owner != req.Worker {
		c.late++
		c.logf("dist: late result for cell %d (%s) from %s accepted", req.ID, cl.key, req.Worker)
	}
	if req.Error != "" {
		c.logf("dist: cell %d (%s) failed on %s: %s", req.ID, cl.key, req.Worker, req.Error)
		c.completeLocked(req.ID, exp.Result{}, &RemoteCellError{Worker: req.Worker, Msg: req.Error})
		return ResultResponse{Accepted: true}
	}
	var res exp.Result
	if err := json.Unmarshal(req.Result, &res); err != nil {
		// A result body that does not decode is a torn stream, not a cell
		// verdict: reject it and leave the lease as-is so the worker can
		// retry the delivery (or the lease can expire).
		return ResultResponse{Reason: fmt.Sprintf("result does not decode: %v", err)}
	}
	c.logf("dist: cell %d (%s) completed by %s", req.ID, cl.key, req.Worker)
	c.completeLocked(req.ID, exp.CanonicalResult(res, cl.spec), nil)
	return ResultResponse{Accepted: true}
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	reply(w, c.Stats())
}
