package audit

import (
	"strings"
	"testing"

	"memnet/internal/sim"
)

func fixedClock(t sim.Time) func() sim.Time { return func() sim.Time { return t } }

func TestNilAuditorIsInert(t *testing.T) {
	var a *Auditor
	if a.Sample() {
		t.Fatal("nil auditor sampled")
	}
	a.Reportf("x", "y", "z")
	a.RegisterSweep(func(sim.Time, func(string, string, string)) { t.Fatal("sweep ran") })
	a.RunSweeps()
	if a.Err() != nil || a.Count() != 0 || a.Violations() != nil || a.Observations() != 0 {
		t.Fatal("nil auditor retained state")
	}
}

func TestSamplingCadence(t *testing.T) {
	a := New(Config{SampleEvery: 4}, fixedClock(0))
	var hits []uint64
	for i := 1; i <= 12; i++ {
		if a.Sample() {
			hits = append(hits, a.Observations())
		}
	}
	want := []uint64{4, 8, 12}
	if len(hits) != len(want) {
		t.Fatalf("sampled at %v, want %v", hits, want)
	}
	for i := range want {
		if hits[i] != want[i] {
			t.Fatalf("sampled at %v, want %v", hits, want)
		}
	}
}

func TestPeriodicSweeps(t *testing.T) {
	a := New(Config{SampleEvery: 1, SweepEvery: 8}, fixedClock(42))
	runs := 0
	a.RegisterSweep(func(now sim.Time, report func(string, string, string)) {
		runs++
		if now != 42 {
			t.Fatalf("sweep clock = %v, want 42", now)
		}
	})
	for i := 0; i < 24; i++ {
		a.Sample()
	}
	if runs != 3 {
		t.Fatalf("sweeps ran %d times over 24 obs with stride 8, want 3", runs)
	}
}

func TestReportLimitAndError(t *testing.T) {
	a := New(Config{Limit: 2}, fixedClock(7))
	for i := 0; i < 5; i++ {
		a.Reportf("link[3]", "state-lattice", "violation %d", i)
	}
	if a.Count() != 5 {
		t.Fatalf("count = %d, want 5", a.Count())
	}
	if len(a.Violations()) != 2 {
		t.Fatalf("retained %d, want 2", len(a.Violations()))
	}
	err := a.Err()
	if err == nil {
		t.Fatal("Err() = nil with violations recorded")
	}
	msg := err.Error()
	for _, frag := range []string{"5 invariant violation", "link[3]", "state-lattice", "3 more"} {
		if !strings.Contains(msg, frag) {
			t.Fatalf("error %q missing %q", msg, frag)
		}
	}
	var ae *Error
	if !asError(err, &ae) || ae.Total != 5 {
		t.Fatalf("not a structured *Error: %v", err)
	}
}

// asError is a local errors.As to keep the test's imports minimal.
func asError(err error, target **Error) bool {
	e, ok := err.(*Error)
	if ok {
		*target = e
	}
	return ok
}

func TestSweepReportStampsSweepTime(t *testing.T) {
	a := New(Config{}, fixedClock(99))
	a.RegisterSweep(func(now sim.Time, report func(string, string, string)) {
		report("network", "conservation", "imbalance")
	})
	a.RunSweeps()
	vs := a.Violations()
	if len(vs) != 1 || vs[0].Time != 99 || vs[0].Component != "network" {
		t.Fatalf("violations = %v", vs)
	}
	if a.Err() == nil {
		t.Fatal("sweep violation not surfaced by Err")
	}
}

func TestSweepReentrancyGuard(t *testing.T) {
	a := New(Config{SampleEvery: 1, SweepEvery: 1}, fixedClock(0))
	depth := 0
	a.RegisterSweep(func(sim.Time, func(string, string, string)) {
		depth++
		if depth > 1 {
			t.Fatal("sweep reentered")
		}
		a.Sample() // a sweep whose reads trip an observation must not recurse
		depth--
	})
	a.Sample()
}

func TestCleanRunHasNilErr(t *testing.T) {
	a := New(Config{}, fixedClock(0))
	a.RegisterSweep(func(sim.Time, func(string, string, string)) {})
	for i := 0; i < 1000; i++ {
		a.Sample()
	}
	a.RunSweeps()
	if err := a.Err(); err != nil {
		t.Fatalf("clean run Err() = %v", err)
	}
}
