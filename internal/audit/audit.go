// Package audit is the runtime invariant auditor: a pluggable, sampled
// self-check layer that components (kernel, network, links, DRAM vaults,
// power accounting) hook so conservation, bound, lattice and monotonicity
// invariants are enforced during every run — not just in tests.
//
// The auditor is strictly observational. It never schedules kernel
// events and never mutates component state, so an audited run executes
// the exact same event sequence as an unaudited one: enabling or
// disabling the auditor (or changing its sampling rate) cannot change a
// simulation result, only detect that one is wrong.
//
// Two kinds of checks hang off an Auditor:
//
//   - sampled per-observation checks: hot paths call Sample() and run
//     their (cheap) assertions only when it returns true — every
//     SampleEvery-th observation, so full-rate property tests set 1 and
//     production sweeps amortize the cost;
//   - registered sweeps: whole-component walks (queue bounds, energy
//     monotonicity, heap order) that the auditor runs periodically —
//     every SweepEvery observations — and that the harness runs
//     explicitly at the warmup boundary and at the end of the run.
//
// A failed check produces a Violation (component, rule, sim time,
// counters snapshot). Violations accumulate; the harness converts a
// non-zero count into a structured *Error that fails the cell gracefully
// instead of corrupting results or panicking the process.
package audit

import (
	"fmt"
	"strings"

	"memnet/internal/sim"
)

// Violation is one detected invariant breach.
type Violation struct {
	// Component identifies the checked entity, e.g. "link[5]", "dram[2]",
	// "network", "kernel", "power".
	Component string
	// Rule names the invariant, e.g. "state-lattice", "vault-queue-bound".
	Rule string
	// Time is the simulated time of detection.
	Time sim.Time
	// Detail is a human-readable snapshot of the counters involved.
	Detail string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("%s: %s at %s: %s", v.Component, v.Rule, v.Time, v.Detail)
}

// Error is the structured outcome of an audited run that detected
// violations. The harness returns it from the run so the cell fails
// gracefully with the retained diagnostics attached.
type Error struct {
	// Total counts every violation, including ones past the retention
	// limit.
	Total uint64
	// Violations holds the retained diagnostics (bounded by Config.Limit).
	Violations []Violation
}

// Error implements the error interface.
func (e *Error) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "audit: %d invariant violation(s)", e.Total)
	for _, v := range e.Violations {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	if n := int(e.Total) - len(e.Violations); n > 0 {
		fmt.Fprintf(&b, "\n  ... and %d more (retention limit)", n)
	}
	return b.String()
}

// Defaults for Config's zero values.
const (
	// DefaultSampleEvery is the production sampling stride: per-observation
	// checks run on every 64th observation, keeping the auditor's hot-path
	// cost to a counter increment on the other 63.
	DefaultSampleEvery = 64
	// DefaultSweepEvery is how many observations pass between periodic
	// whole-component sweeps.
	DefaultSweepEvery = 1 << 16
	// DefaultLimit bounds retained violations; the total keeps counting.
	DefaultLimit = 16
)

// Config tunes an Auditor. The zero value selects the defaults above.
type Config struct {
	// SampleEvery is the per-observation check stride (1 = every
	// observation, the full-rate mode property tests use).
	SampleEvery uint64
	// SweepEvery is the observation stride between periodic sweeps.
	SweepEvery uint64
	// Limit bounds the retained Violation diagnostics.
	Limit int
}

// Sweep is a registered whole-component invariant walk. It must only read
// component state; report records a violation.
type Sweep func(now sim.Time, report func(component, rule, detail string))

// Auditor accumulates observations, runs checks, and retains violations.
// All methods are safe on a nil *Auditor (they do nothing and Sample
// reports false), so components guard their hooks with a plain field.
type Auditor struct {
	sampleEvery uint64
	sweepEvery  uint64
	limit       int
	clock       func() sim.Time

	obs        uint64
	count      uint64
	violations []Violation
	sweeps     []Sweep
	inSweep    bool
}

// New builds an auditor; clock supplies the simulated time stamped on
// violations (typically Kernel.Now).
func New(cfg Config, clock func() sim.Time) *Auditor {
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = DefaultSampleEvery
	}
	if cfg.SweepEvery == 0 {
		cfg.SweepEvery = DefaultSweepEvery
	}
	if cfg.Limit <= 0 {
		cfg.Limit = DefaultLimit
	}
	return &Auditor{
		sampleEvery: cfg.SampleEvery,
		sweepEvery:  cfg.SweepEvery,
		limit:       cfg.Limit,
		clock:       clock,
	}
}

// Sample counts one observation and reports whether its per-observation
// checks should run. Every SweepEvery observations it also runs the
// registered sweeps, so long runs are audited throughout, not only at
// interval boundaries.
func (a *Auditor) Sample() bool {
	if a == nil {
		return false
	}
	a.obs++
	if a.obs%a.sweepEvery == 0 {
		a.RunSweeps()
	}
	return a.obs%a.sampleEvery == 0
}

// Observations returns the number of Sample calls so far.
func (a *Auditor) Observations() uint64 {
	if a == nil {
		return 0
	}
	return a.obs
}

// Reportf records a violation at the current simulated time. The detail
// is formatted lazily — only violations pay for it.
func (a *Auditor) Reportf(component, rule, format string, args ...any) {
	if a == nil {
		return
	}
	a.count++
	if len(a.violations) < a.limit {
		a.violations = append(a.violations, Violation{
			Component: component,
			Rule:      rule,
			Time:      a.clock(),
			Detail:    fmt.Sprintf(format, args...),
		})
	}
}

// RegisterSweep adds a whole-component walk to the periodic sweep set.
func (a *Auditor) RegisterSweep(s Sweep) {
	if a == nil {
		return
	}
	a.sweeps = append(a.sweeps, s)
}

// RunSweeps runs every registered sweep now. The harness calls it at the
// warmup boundary and at the end of the run; Sample triggers it
// periodically in between. Reentrant calls (a sweep whose reads trip
// another Sample) are ignored.
func (a *Auditor) RunSweeps() {
	if a == nil || a.inSweep {
		return
	}
	a.inSweep = true
	defer func() { a.inSweep = false }()
	now := a.clock()
	report := func(component, rule, detail string) {
		a.count++
		if len(a.violations) < a.limit {
			a.violations = append(a.violations, Violation{
				Component: component, Rule: rule, Time: now, Detail: detail,
			})
		}
	}
	for _, s := range a.sweeps {
		s(now, report)
	}
}

// Count returns the total number of violations detected.
func (a *Auditor) Count() uint64 {
	if a == nil {
		return 0
	}
	return a.count
}

// Violations returns the retained diagnostics.
func (a *Auditor) Violations() []Violation {
	if a == nil {
		return nil
	}
	return a.violations
}

// Err returns nil for a clean run, or a structured *Error carrying the
// count and retained violations.
func (a *Auditor) Err() error {
	if a == nil || a.count == 0 {
		return nil
	}
	return &Error{Total: a.count, Violations: append([]Violation(nil), a.violations...)}
}
