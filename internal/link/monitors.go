package link

import (
	"memnet/internal/packet"
	"memnet/internal/sim"
)

// virtQueue is one delay monitor ([20]): a causal replay of the link's
// arrival stream against a hypothetical bandwidth mode, with the same
// read-over-write priority as the real link controller. Because every
// read on a given link has the same size (1-flit requests downstream,
// 5-flit responses upstream) and every write is 5 flits, the queue only
// needs class counts, not per-packet state.
type virtQueue struct {
	svcEnd   sim.Time // when the in-service packet finishes (<= now: idle)
	rq, wq   int      // queued (not in-service) reads and writes
	readSvc  sim.Duration
	writeSvc sim.Duration
}

// advance drains completed service up to now. Queued packets start
// back-to-back, reads first, matching the real controller.
func (q *virtQueue) advance(now sim.Time) {
	for q.svcEnd <= now && (q.rq > 0 || q.wq > 0) {
		if q.rq > 0 {
			q.svcEnd += q.readSvc
			q.rq--
		} else {
			q.svcEnd += q.writeSvc
			q.wq--
		}
	}
}

// occupancy counts packets in the virtual system at now.
func (q *virtQueue) occupancy(now sim.Time) int {
	n := q.rq + q.wq
	if q.svcEnd > now {
		n++
	}
	return n
}

// arriveRead records a read arrival and returns its queueing delay and
// departure (end of serialization).
func (q *virtQueue) arriveRead(now sim.Time, svc sim.Duration) (wait sim.Duration, depart sim.Time) {
	q.readSvc = svc
	q.advance(now)
	if q.svcEnd <= now {
		q.svcEnd = now + svc
		return 0, q.svcEnd
	}
	depart = q.svcEnd + sim.Duration(q.rq)*q.readSvc + svc
	q.rq++
	return depart - svc - now, depart
}

// arriveWrite records a write arrival (no latency accounting: writes are
// off the critical path).
func (q *virtQueue) arriveWrite(now sim.Time, svc sim.Duration) {
	q.writeSvc = svc
	q.advance(now)
	if q.svcEnd <= now {
		q.svcEnd = now + svc
		return
	}
	q.wq++
}

// Monitors implements the per-link hardware counters the management
// schemes rely on:
//
//   - a "delay monitor and delay counter" per bandwidth mode ([20]): a
//     virtual queue that replays the real arrival stream against each
//     candidate bandwidth to estimate what the aggregate read-packet
//     latency would have been; mode 0 doubles as the full-power estimator
//     that produces the link's contribution to FEL;
//   - an idle-interval histogram ([21]) predicting ROO wakeup counts and
//     off-time per idleness threshold;
//   - a sampler estimating the average number of read packets that arrive
//     during one wakeup latency (the paper's per-wakeup overhead model);
//   - the actual aggregate read latency (AEL contribution) and, for the
//     network-aware scheme, cumulative queuing delay (QD) and queued
//     fraction (QF) judged against the full-power delay monitor.
//
// All counters are per-epoch; the policy snapshots and resets them at each
// epoch boundary.
type Monitors struct {
	mech   Mechanism
	wakeup sim.Duration
	nModes int
	virt   []virtQueue

	// svcShort/svcLong[m] cache serializeTime for the two packet sizes
	// the protocol has (1-flit headers, 5-flit data), and serdes[m]
	// caches SERDESLatency — all three are pure functions of the mode,
	// re-derived per arrival per virtual queue before, which made the
	// float divide in serializeTime one of the hottest lines in the
	// whole simulator.
	svcShort [NumBWModes]sim.Duration
	svcLong  [NumBWModes]sim.Duration
	serdes   [NumBWModes]sim.Duration

	epoch EpochCounters

	// Wakeup-arrival sampling state.
	sampleEvery     int
	sinceSample     int
	sampleOpen      bool
	sampleOpenUntil sim.Time
	sampleArrivals  int
}

// EpochCounters is the per-epoch snapshot the policies consume.
type EpochCounters struct {
	// ReadPackets counts read request/response packets that entered the
	// link this epoch; AllPackets counts every packet.
	ReadPackets int
	AllPackets  int
	// ActualReadLatency is the measured aggregate read latency (last-flit
	// departure + SERDES − arrival), the AEL link contribution.
	ActualReadLatency sim.Duration
	// VirtualReadLatency[m] is the delay-monitor estimate of aggregate
	// read latency had the link run in bandwidth mode m all epoch;
	// VirtualReadLatency[0] is the full-power estimate (FEL contribution).
	VirtualReadLatency []sim.Duration
	// IdleOverCount[i] is the number of idle intervals longer than ROO
	// threshold i; IdleOverTime[i] is the total time the link would have
	// spent off under threshold i (sum of interval−threshold).
	IdleOverCount [NumROOModes]int
	IdleOverTime  [NumROOModes]sim.Duration
	// Wakeups counts actual off→on transitions this epoch.
	Wakeups int
	// SampledWakeupArrivals/SampleWindows estimate the average number of
	// read packets arriving during one wakeup latency.
	SampledWakeupArrivals int
	SampleWindows         int
	// QD is the cumulative (full-power-monitor) queuing delay of queued
	// read packets; QueuedReads of ReadPackets arrived behind ≥3 older
	// packets (§VI-C).
	QD          sim.Duration
	QueuedReads int
	// BusyTime is time spent serializing flits this epoch (utilization).
	BusyTime sim.Duration
	// TimeInBWMode[m] is the time spent with bandwidth mode m effective
	// this epoch (Fig. 13's link-hour accounting).
	TimeInBWMode [NumBWModes]sim.Duration
	// OffTime and WakingTime partition the epoch's ROO states.
	OffTime, WakingTime sim.Duration
	// RetrainTime is time spent in lane training (repair or CRC
	// escalation) this epoch — full power, zero bandwidth.
	RetrainTime sim.Duration
	// Retrains counts completed retrainings this epoch.
	Retrains int
}

// AvgWakeupArrivals returns the sampled estimate of read arrivals per
// wakeup window (0 when nothing was sampled).
func (e *EpochCounters) AvgWakeupArrivals() float64 {
	if e.SampleWindows == 0 {
		return 0
	}
	return float64(e.SampledWakeupArrivals) / float64(e.SampleWindows)
}

// QF returns the queued fraction of read packets.
func (e *EpochCounters) QF() float64 {
	if e.ReadPackets == 0 {
		return 0
	}
	return float64(e.QueuedReads) / float64(e.ReadPackets)
}

func newMonitors(mech Mechanism, wakeup sim.Duration) *Monitors {
	n := NumModes(mech)
	m := &Monitors{
		mech:        mech,
		wakeup:      wakeup,
		nModes:      n,
		virt:        make([]virtQueue, n),
		sampleEvery: 32,
	}
	m.epoch.VirtualReadLatency = make([]sim.Duration, n)
	for mode := 0; mode < n; mode++ {
		m.svcShort[mode] = serializeFlits(1, mech, mode)
		m.svcLong[mode] = serializeFlits(1+packet.LineBytes/packet.FlitBytes, mech, mode)
		m.serdes[mode] = SERDESLatency(mech, mode)
	}
	return m
}

// serializeFlits is the time a packet of the given flit count occupies
// the link in mode m. SERDES is pipeline latency, paid once per packet,
// never occupancy.
func serializeFlits(flits int, mech Mechanism, mode int) sim.Duration {
	return sim.Duration(float64(int64(FlitTimeFull)*int64(flits))/BWFactor(mech, mode) + 0.5)
}

// observeArrival replays the arrival into every virtual queue and updates
// the QD/QF and sampling state. It must be called once per packet, at
// queue-insertion time.
func (mn *Monitors) observeArrival(now sim.Time, p *packet.Packet) {
	isRead := p.Kind.IsRead()
	mn.epoch.AllPackets++
	if isRead {
		mn.epoch.ReadPackets++
	}

	svcTab := &mn.svcLong
	if p.Flits() == 1 {
		svcTab = &mn.svcShort
	}
	for m := 0; m < mn.nModes; m++ {
		q := &mn.virt[m]
		svc := svcTab[m]
		if !isRead {
			q.arriveWrite(now, svc)
			continue
		}
		occ := q.occupancy(now)
		wait, depart := q.arriveRead(now, svc)
		// Latency = queueing + serialization + SERDES pipeline delay.
		mn.epoch.VirtualReadLatency[m] += depart - now + mn.serdes[m]
		if m == 0 && occ >= 3 {
			mn.epoch.QueuedReads++
			mn.epoch.QD += wait
		}
	}

	// Wakeup-arrival sampling: periodically pick a read packet and count
	// how many further reads arrive within one wakeup latency.
	if isRead {
		if mn.sampleOpen {
			if now <= mn.sampleOpenUntil {
				mn.sampleArrivals++
			} else {
				mn.closeSample()
			}
		}
		if !mn.sampleOpen {
			mn.sinceSample++
			if mn.sinceSample >= mn.sampleEvery {
				mn.sinceSample = 0
				mn.sampleOpen = true
				mn.sampleOpenUntil = now + mn.wakeup
				mn.sampleArrivals = 0
			}
		}
	}
}

func (mn *Monitors) closeSample() {
	mn.epoch.SampledWakeupArrivals += mn.sampleArrivals
	mn.epoch.SampleWindows++
	mn.sampleOpen = false
}

// observeDeparture records the measured latency of a read packet.
func (mn *Monitors) observeDeparture(p *packet.Packet, latency sim.Duration) {
	if p.Kind.IsRead() {
		mn.epoch.ActualReadLatency += latency
	}
}

// observeIdleEnd records a completed link idle interval.
func (mn *Monitors) observeIdleEnd(interval sim.Duration) {
	for i, th := range ROOThresholds {
		if interval > th {
			mn.epoch.IdleOverCount[i]++
			mn.epoch.IdleOverTime[i] += interval - th
		}
	}
}

// SnapshotAndReset returns this epoch's counters and clears them. Virtual
// queue backlog carries across the boundary (in-flight virtual work was
// already attributed to the epoch its packet arrived in).
func (mn *Monitors) SnapshotAndReset(now sim.Time) EpochCounters {
	if mn.sampleOpen && now > mn.sampleOpenUntil {
		mn.closeSample()
	}
	out := mn.epoch
	out.VirtualReadLatency = append([]sim.Duration(nil), mn.epoch.VirtualReadLatency...)
	mn.epoch = EpochCounters{VirtualReadLatency: mn.epoch.VirtualReadLatency}
	for i := range mn.epoch.VirtualReadLatency {
		mn.epoch.VirtualReadLatency[i] = 0
	}
	return out
}

// Peek returns the live counters without resetting (violation checks).
func (mn *Monitors) Peek() *EpochCounters { return &mn.epoch }
