package link_test

import (
	"fmt"

	"memnet/internal/link"
	"memnet/internal/packet"
	"memnet/internal/sim"
)

// Example transmits one read response over a full-power link and prints
// the timing components.
func Example() {
	k := sim.NewKernel()
	l := link.New(k, link.Config{FullWatts: 0.586}, 0, link.DirResponse, 0, 0, packet.ProcessorID, 1)
	l.Deliver = func(p *packet.Packet) {
		fmt.Printf("delivered %v at %v\n", p.Kind, k.Now())
	}
	l.Enqueue(&packet.Packet{ID: 1, Kind: packet.ReadResp})
	k.RunAll()
	fmt.Println("serialization:", 5*link.FlitTimeFull)
	fmt.Println("SERDES:       ", link.SERDESBase)
	fmt.Println("router:       ", link.RouterLatency())
	// Output:
	// delivered ReadResp at 8.96ns
	// serialization: 3.20ns
	// SERDES:        3.20ns
	// router:        2.56ns
}

// ExamplePowerFactor prints the paper's VWL power model: (lanes+1)/17.
func ExamplePowerFactor() {
	for m := 0; m < link.NumBWModes; m++ {
		fmt.Printf("%2d lanes: %.3f of full power, %.4f of full bandwidth\n",
			link.Lanes(m), link.PowerFactor(link.MechVWL, m), link.BWFactor(link.MechVWL, m))
	}
	// Output:
	// 16 lanes: 1.000 of full power, 1.0000 of full bandwidth
	//  8 lanes: 0.529 of full power, 0.5000 of full bandwidth
	//  4 lanes: 0.294 of full power, 0.2500 of full bandwidth
	//  1 lanes: 0.118 of full power, 0.0625 of full bandwidth
}
