package link

import (
	"testing"
	"testing/quick"

	"memnet/internal/packet"
	"memnet/internal/sim"
)

func respPkt(id uint64) *packet.Packet {
	return &packet.Packet{ID: id, Kind: packet.ReadResp, Src: 0, Dst: packet.ProcessorID}
}

func writePkt(id uint64) *packet.Packet {
	return &packet.Packet{ID: id, Kind: packet.WriteReq, Src: packet.ProcessorID, Dst: 0}
}

func TestVirtualFullPowerMatchesRealFullPower(t *testing.T) {
	// At full power, the delay-monitor estimate must equal the measured
	// aggregate latency — the property that makes AEL−FEL ≈ 0 for
	// unmanaged links.
	k, l, _ := testLink(t, Config{Mechanism: MechVWL})
	for i := 0; i < 50; i++ {
		l.Enqueue(respPkt(uint64(i)))
		k.Run(k.Now() + sim.Duration(i%7)*sim.Nanosecond)
	}
	k.RunAll()
	ec := l.Mon().Peek()
	if ec.ReadPackets != 50 {
		t.Fatalf("read packets = %d", ec.ReadPackets)
	}
	if ec.ActualReadLatency != ec.VirtualReadLatency[0] {
		t.Fatalf("actual %v != virtual full power %v", ec.ActualReadLatency, ec.VirtualReadLatency[0])
	}
}

func TestVirtualLatencyMonotoneInBandwidth(t *testing.T) {
	// Less bandwidth can never reduce estimated latency.
	if err := quick.Check(func(gaps []uint8) bool {
		k, l, _ := testLink(t, Config{Mechanism: MechVWL})
		for i, g := range gaps {
			if i > 100 {
				break
			}
			l.Enqueue(respPkt(uint64(i)))
			k.Run(k.Now() + sim.Duration(g)*sim.Nanosecond/4)
		}
		k.RunAll()
		ec := l.Mon().Peek()
		for m := 1; m < NumBWModes; m++ {
			if ec.VirtualReadLatency[m] < ec.VirtualReadLatency[m-1] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestVirtualQueuePriority(t *testing.T) {
	// A read arriving behind queued writes must see only the in-service
	// residual in the virtual queue, like the real controller.
	k, l, _ := testLink(t, Config{})
	// Three writes back-to-back at t=0: one in service, two queued.
	l.Enqueue(writePkt(1))
	l.Enqueue(writePkt(2))
	l.Enqueue(writePkt(3))
	l.Enqueue(respPkt(4))
	k.RunAll()
	ec := l.Mon().Peek()
	// Virtual: read waits for write 1 (3.2 ns), then serializes 3.2 ns,
	// plus SERDES. Actual matches (read priority in the real queue).
	want := 2*5*FlitTimeFull + SERDESBase
	if ec.VirtualReadLatency[0] != want {
		t.Fatalf("virtual read latency = %v, want %v", ec.VirtualReadLatency[0], want)
	}
	if ec.ActualReadLatency != want {
		t.Fatalf("actual read latency = %v, want %v", ec.ActualReadLatency, want)
	}
}

func TestDVFSVirtualIncludesSERDESPenalty(t *testing.T) {
	k, l, _ := testLink(t, Config{Mechanism: MechDVFS})
	l.Enqueue(respPkt(1))
	k.RunAll()
	ec := l.Mon().Peek()
	// Unloaded: mode m latency = 5 flits/bw + serdes/bw.
	for m := 0; m < NumBWModes; m++ {
		ser := sim.Duration(float64(5*FlitTimeFull)/dvfsBW[m] + 0.5)
		want := ser + SERDESLatency(MechDVFS, m)
		if ec.VirtualReadLatency[m] != want {
			t.Fatalf("mode %d virtual = %v, want %v", m, ec.VirtualReadLatency[m], want)
		}
	}
}

func TestIdleIntervalHistogram(t *testing.T) {
	k, l, _ := testLink(t, Config{})
	send := func(gap sim.Duration) {
		k.Run(k.Now() + gap)
		l.Enqueue(respPkt(1))
		k.Run(k.Now() + 5*FlitTimeFull + SERDESBase + RouterLatency())
	}
	send(0)
	send(50 * sim.Nanosecond)   // > 32
	send(200 * sim.Nanosecond)  // > 32, > 128
	send(600 * sim.Nanosecond)  // > 32, 128, 512
	send(3000 * sim.Nanosecond) // > all
	ec := l.Mon().Peek()
	want := [NumROOModes]int{4, 3, 2, 1}
	if ec.IdleOverCount != want {
		t.Fatalf("idle-over counts = %v, want %v", ec.IdleOverCount, want)
	}
	// Off-time under the 512 ns threshold: each idle interval is the gap
	// plus the SERDES+router tail (idle starts at serialization end, the
	// next arrival lands after the previous delivery).
	tail := SERDESBase + RouterLatency()
	wantOff := (600-512)*sim.Nanosecond + tail + (3000-512)*sim.Nanosecond + tail
	if ec.IdleOverTime[2] != wantOff {
		t.Fatalf("off time = %v, want %v", ec.IdleOverTime[2], wantOff)
	}
}

func TestQDQFCountsQueuedReads(t *testing.T) {
	k, l, _ := testLink(t, Config{})
	// Six reads at the same instant: the 4th, 5th, 6th arrive behind >= 3
	// older packets.
	for i := 0; i < 6; i++ {
		l.Enqueue(respPkt(uint64(i)))
	}
	k.RunAll()
	ec := l.Mon().Peek()
	if ec.QueuedReads != 3 {
		t.Fatalf("queued reads = %d, want 3", ec.QueuedReads)
	}
	if qf := ec.QF(); qf != 0.5 {
		t.Fatalf("QF = %v, want 0.5", qf)
	}
	// QD: 4th waits 3 services, 5th 4, 6th 5 (×3.2 ns each).
	wantQD := (3 + 4 + 5) * 5 * FlitTimeFull
	if ec.QD != wantQD {
		t.Fatalf("QD = %v, want %v", ec.QD, wantQD)
	}
}

func TestSnapshotAndReset(t *testing.T) {
	k, l, _ := testLink(t, Config{})
	l.Enqueue(respPkt(1))
	k.RunAll()
	ec := l.Mon().SnapshotAndReset(k.Now())
	if ec.ReadPackets != 1 || ec.ActualReadLatency == 0 {
		t.Fatalf("snapshot lost data: %+v", ec)
	}
	if l.Mon().Peek().ReadPackets != 0 || l.Mon().Peek().ActualReadLatency != 0 {
		t.Fatal("counters not reset")
	}
	// Virtual backlog must carry over: a second epoch still works.
	l.Enqueue(respPkt(2))
	k.RunAll()
	if l.Mon().Peek().ReadPackets != 1 {
		t.Fatal("post-reset accounting broken")
	}
}

func TestWakeupArrivalSampling(t *testing.T) {
	k, l, _ := testLink(t, Config{ROO: true, Wakeup: 14 * sim.Nanosecond})
	// Dense burst: many reads 1 ns apart; sampler should observe several
	// arrivals per 14 ns window.
	for i := 0; i < 200; i++ {
		l.Enqueue(respPkt(uint64(i)))
		k.Run(k.Now() + 1*sim.Nanosecond)
	}
	k.RunAll()
	ec := l.Mon().SnapshotAndReset(k.Now())
	if ec.SampleWindows == 0 {
		t.Fatal("no sample windows closed")
	}
	avg := ec.AvgWakeupArrivals()
	if avg < 5 || avg > 14 {
		t.Fatalf("avg wakeup arrivals = %v, want ~13 for 1ns spacing", avg)
	}
}

func TestTimeInBWModeAccounting(t *testing.T) {
	k, l, _ := testLink(t, Config{Mechanism: MechVWL})
	k.Run(10 * sim.Microsecond)
	l.SetBWMode(2)
	k.Run(20 * sim.Microsecond)
	l.FinishAccounting()
	ec := l.Mon().Peek()
	// 10 µs at mode 0, 1 µs transitioning (labelled mode 2, the slower),
	// 9 µs at mode 2.
	if ec.TimeInBWMode[0] != 10*sim.Microsecond {
		t.Fatalf("mode0 time = %v", ec.TimeInBWMode[0])
	}
	if ec.TimeInBWMode[2] != 10*sim.Microsecond {
		t.Fatalf("mode2 time = %v", ec.TimeInBWMode[2])
	}
}

func TestOffAndWakingTimeAccounting(t *testing.T) {
	k, l, _ := testLink(t, Config{ROO: true})
	l.SetROOMode(0)
	l.Enqueue(respPkt(1))
	k.RunAll() // off at busy end + 32 ns
	offAt := k.Now()
	k.Run(offAt + 500*sim.Nanosecond)
	l.Enqueue(respPkt(2)) // wakes
	k.RunAll()
	k.Run(k.Now() + 10*sim.Nanosecond)
	l.FinishAccounting()
	ec := l.Mon().Peek()
	if ec.OffTime < 500*sim.Nanosecond {
		t.Fatalf("off time = %v, want >= 500ns", ec.OffTime)
	}
	if ec.WakingTime != WakeupDefault {
		t.Fatalf("waking time = %v, want %v", ec.WakingTime, WakeupDefault)
	}
}
