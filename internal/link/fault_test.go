package link

import (
	"testing"

	"memnet/internal/packet"
	"memnet/internal/sim"
)

// TestBERRetrySurvivesROO is the BER × ROO regression: a link must not
// power off while a corrupted packet awaits its retransmission, even
// with the most aggressive idleness threshold. The pending retry holds
// the packet at the queue head with no transmission in progress — the
// exact window where an unguarded off-check would strand it.
func TestBERRetrySurvivesROO(t *testing.T) {
	k := sim.NewKernel()
	cfg := Config{
		ROO:        true,
		Wakeup:     WakeupDefault,
		BER:        0.5, // every flit attempt fails CRC (pErr ≈ 1)
		RetryDelay: 32 * sim.Nanosecond,
		FullWatts:  0.58625,
	}
	l := New(k, cfg, 0, DirRequest, 0, packet.ProcessorID, 0, 1)
	var delivered []*packet.Packet
	l.Deliver = func(p *packet.Packet) { delivered = append(delivered, p) }
	l.SetROOMode(0) // most aggressive threshold

	l.Enqueue(&packet.Packet{ID: 1, Kind: packet.ReadReq, Src: packet.ProcessorID, Dst: 0})

	// Let the first (corrupted) serialization and a couple of retry
	// windows elapse; the retry delay (32 ns) exceeds the mode-0 idle
	// threshold, so a bug here would turn the link off mid-retry.
	k.Run(k.Now() + 200*sim.Nanosecond)
	if l.State() == StateOff {
		t.Fatalf("link powered off with a retransmission pending (retries=%d, queue=%d)",
			l.Retries(), l.QueueLen())
	}
	if len(delivered) != 0 {
		t.Fatalf("corrupted packet delivered: %v", delivered)
	}

	// End the burst: the pending retry must now complete the delivery.
	l.SetBER(0)
	k.RunAll()
	if len(delivered) != 1 || delivered[0].ID != 1 {
		t.Fatalf("after burst ends, delivered = %v, want packet 1", delivered)
	}
	if l.Retries() == 0 {
		t.Fatal("expected at least one CRC retry")
	}
}

// TestFailReclaimsQueueAndInflight verifies Fail hands back both the
// serializing packet and the queued backlog, and that the failed link
// drops (and reports) later arrivals instead of accepting them.
func TestFailReclaimsQueueAndInflight(t *testing.T) {
	k := sim.NewKernel()
	l := New(k, Config{FullWatts: 0.58625}, 0, DirRequest, 0, packet.ProcessorID, 0, 1)
	l.Deliver = func(p *packet.Packet) { t.Fatalf("delivered %v on a link that fails first", p) }

	for id := uint64(1); id <= 3; id++ {
		l.Enqueue(&packet.Packet{ID: id, Kind: packet.WriteReq, Src: packet.ProcessorID, Dst: 0})
	}
	k.Run(1) // packet 1 is mid-serialization, 2 and 3 queued

	stranded := l.Fail()
	if len(stranded) != 3 {
		t.Fatalf("stranded %d packets, want 3 (inflight + 2 queued)", len(stranded))
	}
	if stranded[0].ID != 1 {
		t.Fatalf("inflight packet %d first, want 1", stranded[0].ID)
	}
	if !l.Failed() || l.State().String() != "failed" {
		t.Fatalf("state = %v after Fail", l.State())
	}
	if again := l.Fail(); again != nil {
		t.Fatalf("second Fail returned %v, want nil", again)
	}

	var droppedPkt *packet.Packet
	l.OnDrop = func(p *packet.Packet) { droppedPkt = p }
	l.Enqueue(&packet.Packet{ID: 9, Kind: packet.ReadReq, Src: packet.ProcessorID, Dst: 0})
	if droppedPkt == nil || droppedPkt.ID != 9 || l.Dropped() != 1 {
		t.Fatalf("drop hook got %v (dropped=%d), want packet 9", droppedPkt, l.Dropped())
	}
	k.RunAll()

	// A dead link draws nothing: energy must stop accumulating.
	l.FinishAccounting()
	idle0, active0 := l.EnergyJoules()
	k.Schedule(k.Now()+sim.Millisecond, func() {})
	k.RunAll()
	l.FinishAccounting()
	idle1, active1 := l.EnergyJoules()
	if idle1 != idle0 || active1 != active0 {
		t.Fatalf("failed link accumulated energy: idle %g->%g active %g->%g",
			idle0, idle1, active0, active1)
	}
}

// TestWakeFaultDelaysButDelivers covers both wake-fault flavors: an
// extra-delay fault stretches the wakeup, and a drop fault forces a
// second full wakeup — in both cases every queued packet is eventually
// delivered and the fault is counted.
func TestWakeFaultDelaysButDelivers(t *testing.T) {
	for _, tc := range []struct {
		name     string
		extra    sim.Duration
		drop     bool
		minDelay sim.Duration
	}{
		{"delay", 50 * sim.Nanosecond, false, WakeupDefault + 50*sim.Nanosecond},
		{"drop", 0, true, 2 * WakeupDefault},
	} {
		t.Run(tc.name, func(t *testing.T) {
			k := sim.NewKernel()
			l := New(k, Config{ROO: true, Wakeup: WakeupDefault, FullWatts: 0.58625},
				0, DirRequest, 0, packet.ProcessorID, 0, 1)
			var delivered []*packet.Packet
			l.Deliver = func(p *packet.Packet) { delivered = append(delivered, p) }

			// Idle past the full-mode threshold so the link powers down.
			k.Run(5 * sim.Microsecond)
			if l.State() != StateOff {
				t.Fatalf("state = %v before the wake, want off", l.State())
			}
			l.InjectWakeFault(tc.extra, tc.drop)
			start := k.Now()
			l.Enqueue(&packet.Packet{ID: 1, Kind: packet.ReadReq, Src: packet.ProcessorID, Dst: 0})
			k.RunAll()

			if len(delivered) != 1 {
				t.Fatalf("delivered %d packets, want 1", len(delivered))
			}
			if got := k.Now() - start; got < tc.minDelay {
				t.Fatalf("delivery after %v, want at least %v of wake penalty", got, tc.minDelay)
			}
			if l.WakeFaults() == 0 {
				t.Fatal("wake fault not counted")
			}
		})
	}
}

// TestFailDuringWakeStaysFailed: a Fail landing mid-wakeup must not be
// resurrected by the wake completion event.
func TestFailDuringWakeStaysFailed(t *testing.T) {
	k := sim.NewKernel()
	l := New(k, Config{ROO: true, Wakeup: WakeupDefault, FullWatts: 0.58625},
		0, DirRequest, 0, packet.ProcessorID, 0, 1)
	l.Deliver = func(p *packet.Packet) { t.Fatalf("delivered %v through a failed link", p) }

	k.Run(5 * sim.Microsecond) // idle long enough to power down
	l.Enqueue(&packet.Packet{ID: 1, Kind: packet.ReadReq, Src: packet.ProcessorID, Dst: 0})
	if l.State() != StateWaking {
		t.Fatalf("state = %v, want waking", l.State())
	}
	stranded := l.Fail()
	if len(stranded) != 1 {
		t.Fatalf("stranded %d packets, want the queued one", len(stranded))
	}
	k.RunAll() // wake-completion event must observe the failure and no-op
	if !l.Failed() {
		t.Fatalf("state = %v after wake completion, want failed", l.State())
	}
}
