package link

import (
	"testing"

	"memnet/internal/packet"
	"memnet/internal/sim"
)

// TestStateTimesPartition: the cumulative residency vector must
// partition elapsed time exactly — including the open interval since the
// last accounting instant — and reading it must not disturb the link.
func TestStateTimesPartition(t *testing.T) {
	k, l, _ := testLink(t, Config{ROO: true, Wakeup: 14 * sim.Nanosecond})
	l.SetROOMode(0) // 32ns idle threshold: the link powers off after the packet
	l.Enqueue(pkt(1, packet.ReadReq))
	k.Run(5 * sim.Microsecond)

	st := l.StateTimes(k.Now())
	var sum sim.Duration
	for _, d := range st {
		sum += d
	}
	if sum != sim.Duration(k.Now()) {
		t.Errorf("residency sum = %v, want elapsed %v", sum, k.Now())
	}
	if st[StateOff] == 0 {
		t.Error("ROO-armed idle link never accumulated off time")
	}
	if st[StateOn] == 0 {
		t.Error("link transmitted but accumulated no on time")
	}

	// Read-only: identical repeated reads, and the underlying energy
	// accounting instant is untouched (FinishAccounting still balances).
	if again := l.StateTimes(k.Now()); again != st {
		t.Errorf("StateTimes mutated state: %v then %v", st, again)
	}
	idleBefore, activeBefore := l.EnergyJoules()
	_ = l.StateTimes(k.Now())
	if idle, active := l.EnergyJoules(); idle != idleBefore || active != activeBefore {
		t.Error("StateTimes perturbed energy integration")
	}
}

// TestStateTimesFailedState: a failed link accrues residency in
// StateFailed, not StateOn.
func TestStateTimesFailedState(t *testing.T) {
	k, l, _ := testLink(t, Config{})
	k.Run(1 * sim.Microsecond)
	l.Fail()
	k.Run(3 * sim.Microsecond)
	st := l.StateTimes(k.Now())
	if st[StateFailed] < 2*sim.Microsecond {
		t.Errorf("failed residency = %v, want >= 2us", st[StateFailed])
	}
	var sum sim.Duration
	for _, d := range st {
		sum += d
	}
	if sum != sim.Duration(k.Now()) {
		t.Errorf("residency sum = %v, want %v", sum, k.Now())
	}
}
