package link

import (
	"fmt"
	"math"

	"memnet/internal/audit"
	"memnet/internal/packet"
	"memnet/internal/sim"
)

// Direction distinguishes the two unidirectional link types: request links
// carry traffic away from the processor, response links toward it.
type Direction int

const (
	// DirRequest links carry ReadReq/WriteReq downstream.
	DirRequest Direction = iota
	// DirResponse links carry ReadResp upstream.
	DirResponse
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	if d == DirRequest {
		return "request"
	}
	return "response"
}

// State is the rapid-on/off state of a link.
type State int

const (
	// StateOn: the link is powered and can transmit.
	StateOn State = iota
	// StateOff: the link is in the inaccessible 1%-power state.
	StateOff
	// StateWaking: the link is resynchronizing after an off period.
	StateWaking
	// StateFailed: the link has failed (fault injection or CRC escalation).
	// It draws no power and accepts no traffic until repaired.
	StateFailed
	// StateRetraining: the link is re-running lane training after a repair
	// or a CRC escalation. The PHY drives training sequences on every lane
	// at full power but delivers no bandwidth; enqueued packets buffer
	// until training completes.
	StateRetraining

	// NumStates sizes per-state arrays (residency accounting).
	NumStates = int(StateRetraining) + 1
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateOn:
		return "on"
	case StateOff:
		return "off"
	case StateWaking:
		return "waking"
	case StateFailed:
		return "failed"
	case StateRetraining:
		return "retraining"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Config selects a link's power-control capabilities.
type Config struct {
	// Mechanism is the bandwidth-scaling mechanism (none, VWL, DVFS).
	Mechanism Mechanism
	// ROO enables rapid on/off.
	ROO bool
	// Wakeup is the off→on resynchronization latency (14 or 20 ns).
	Wakeup sim.Duration
	// FullWatts is the link's full operating power (≈0.586 W).
	FullWatts float64
	// BER is the per-bit error rate. HMC links are CRC-protected with
	// link-level retry: a corrupted packet is retransmitted after
	// RetryDelay. 0 (the default, and the paper's model) disables error
	// injection.
	BER float64
	// RetryDelay is the detection + retry-request turnaround (default
	// 32 ns when BER > 0).
	RetryDelay sim.Duration
	// Retrain is the lane-training latency for repair and CRC escalation
	// (default RetrainDefault).
	Retrain sim.Duration
	// MaxCRCRetries bounds consecutive CRC retransmissions of one packet
	// before the link escalates (default DefaultMaxCRCRetries).
	MaxCRCRetries int
}

// Link is one unidirectional point-to-point link plus its controller:
// buffering with read priority, flit serialization at the current
// bandwidth, SERDES delay, ROO state machine, energy integration, and the
// management counters in Monitors.
type Link struct {
	kernel *sim.Kernel
	cfg    Config

	// Identity (immutable after construction).
	ID    int
	Dir   Direction
	Owner int // module whose connectivity link this is (the downstream module of the full link)
	From  int // transmitting module (packet.ProcessorID allowed)
	To    int // receiving module (packet.ProcessorID allowed)
	Depth int // hop distance of the full link's downstream endpoint

	// Deliver receives each packet after its last flit clears SERDES at
	// the far end. Wired by the network layer.
	Deliver func(*packet.Packet)

	// HoldOn, when set, vetoes turning the link off (network-aware ROO
	// keeps response links on while reads are outstanding downstream).
	HoldOn func() bool
	// OnWakeStart fires when the link begins waking (off→waking), the
	// hook the network-aware wakeup cascade uses.
	OnWakeStart func()
	// OnEnqueue fires when a packet enters the buffer (after arrival
	// bookkeeping); the cascade uses it to pre-wake the next hop.
	OnEnqueue func()
	// OnTurnOff fires when the link powers down; the cascade uses it to
	// let the upstream response link re-evaluate its own turn-off.
	OnTurnOff func()
	// OnDrop receives every packet the link refuses or loses because it
	// has failed. Wired by the network layer for drop accounting.
	OnDrop func(*packet.Packet)
	// OnRetrained fires when retraining completes and the link is back on.
	// The network layer uses it to clear unreachable marks after a repair.
	OnRetrained func()
	// OnHardFail fires when the CRC escalation ladder exhausts its options
	// and the link must be taken down. When wired (by the network layer,
	// which strands and error-completes the buffered requests) it replaces
	// the link's own Fail-and-drop fallback.
	OnHardFail func()

	// Power-control state.
	bwMode     int
	bwTarget   int
	bwTransEnd sim.Time
	// wattsByMode[m] is FullWatts*PowerFactor(mech, m), precomputed so
	// the per-event energy integrator doesn't re-derive the power factor
	// (a float divide for VWL) on every call.
	wattsByMode [NumBWModes]float64
	rooMode     int
	state       State
	forcedFull  bool
	offSeq      uint64

	// Transmission state.
	queue        []*packet.Packet
	transmitting bool
	inflight     *packet.Packet // the packet being serialized, reclaimed on Fail
	idleSince    sim.Time
	idleOpen     bool

	// Pooled event actions. The transmit-completion, retry, and
	// wake-completion events are singletons (the state machine allows at
	// most one of each in flight), so they live inline in the Link;
	// delivery events overlap across the SERDES pipeline and off-checks
	// overlap through cancellation, so those draw from per-link free
	// lists. Together they make steady-state scheduling allocation-free.
	txDone      txDoneAction
	retry       retryAction
	wake        wakeAction
	deliverFree []*deliverAction
	offFree     []*offCheckAction

	// Fault-injection state.
	wakeExtra  sim.Duration // extra latency added to the next wakeup
	wakeDrop   bool         // the next wakeup fails once and is re-attempted
	wakeFaults uint64
	dropped    uint64

	// Fault-recovery state.
	retrainSeq uint64 // cancels stale retrain-completion events
	crcStreak  int    // consecutive CRC failures on the head packet
	escLevel   int    // next rung of the escalation ladder
	esc        EscalationStats
	repairs    uint64

	// Energy/time integration.
	lastAccount  sim.Time
	energyIdle   float64 // joules
	energyActive float64
	totalBusy    sim.Duration
	// stateTime is the cumulative residency per power state over the
	// whole run (unlike the per-epoch Monitors counters, never reset);
	// the metrics sampler reads it through StateTimes.
	stateTime [NumStates]sim.Duration
	bytes     uint64
	maxQueue  int
	overflows uint64
	retries   uint64

	errRNG *sim.RNG

	mon *Monitors

	// Runtime invariant auditing (nil = unaudited). The previous-sweep
	// energy readings back the monotonicity check.
	audit           *audit.Auditor
	auditPrevIdle   float64
	auditPrevActive float64
}

// New creates a link. The caller wires Deliver before any traffic flows.
func New(k *sim.Kernel, cfg Config, id int, dir Direction, owner, from, to, depth int) *Link {
	if cfg.Wakeup <= 0 {
		cfg.Wakeup = WakeupDefault
	}
	if cfg.Retrain <= 0 {
		cfg.Retrain = RetrainDefault
	}
	if cfg.MaxCRCRetries <= 0 {
		cfg.MaxCRCRetries = DefaultMaxCRCRetries
	}
	l := &Link{
		kernel:      k,
		cfg:         cfg,
		ID:          id,
		Dir:         dir,
		Owner:       owner,
		From:        from,
		To:          to,
		Depth:       depth,
		rooMode:     ROOFullMode,
		mon:         newMonitors(cfg.Mechanism, cfg.Wakeup),
		lastAccount: k.Now(),
	}
	l.txDone.l, l.retry.l, l.wake.l = l, l, l
	for m := 0; m < NumModes(cfg.Mechanism); m++ {
		l.wattsByMode[m] = cfg.FullWatts * PowerFactor(cfg.Mechanism, m)
	}
	if cfg.BER > 0 {
		if l.cfg.RetryDelay <= 0 {
			l.cfg.RetryDelay = 32 * sim.Nanosecond
		}
		l.errRNG = sim.NewRNG(0x6c696e6b ^ uint64(id)<<20)
	}
	if cfg.ROO {
		// A freshly built link is idle; open the idle interval so it can
		// power down before ever carrying traffic.
		l.enterIdle(k.Now())
	}
	return l
}

// legalTransition reports whether the ROO/failure/recovery state lattice
// allows from→to: on→{off, retraining} (CRC escalation retrains a live
// link), off→waking, waking→{on, off} (a dropped wakeup falls back and
// retries), and any live state→failed. A failed link leaves StateFailed
// only through retraining (repair), retraining completes only to on, and
// a link never jumps off→on without waking.
func legalTransition(from, to State) bool {
	if to == StateFailed {
		return from != StateFailed
	}
	switch from {
	case StateOn:
		return to == StateOff || to == StateRetraining
	case StateOff:
		return to == StateWaking
	case StateWaking:
		return to == StateOn || to == StateOff
	case StateFailed:
		return to == StateRetraining
	case StateRetraining:
		return to == StateOn
	}
	return false
}

// setState is the single mutation point of the link's power-state
// machine. With an auditor attached every transition is validated against
// the legal lattice before it is applied; the state still changes so a
// buggy caller's behavior (not a cascade of secondary effects) is what
// the violation reports.
func (l *Link) setState(to State) {
	if l.audit != nil && !legalTransition(l.state, to) {
		l.audit.Reportf(l.component(), "state-lattice",
			"illegal transition %s -> %s (forced=%v q=%d transmitting=%v)",
			l.state, to, l.forcedFull, len(l.queue), l.transmitting)
	}
	l.state = to
}

// component names the link in audit violations.
func (l *Link) component() string { return fmt.Sprintf("link[%d]", l.ID) }

// energyHeadroom is the audit tolerance on the full-power energy bound:
// control-flit charges (ISP/AMS messages) add energy on top of the
// time-integral, and the paper budgets them as ~1% traffic.
const energyHeadroom = 1.02

// AttachAudit wires the runtime invariant auditor: state transitions are
// validated against the ROO lattice as they happen, enqueues are
// sample-checked, and a registered sweep bounds the buffer, the mode
// indices, and the energy accounting. Purely observational — an audited
// link schedules the same events and accumulates the same state as an
// unaudited one.
func (l *Link) AttachAudit(a *audit.Auditor) {
	l.audit = a
	l.auditPrevIdle, l.auditPrevActive = l.energyIdle, l.energyActive
	a.RegisterSweep(l.auditSweep)
}

// auditEnqueue is the sampled per-packet check: traffic direction must
// match the link's direction (request links carry downstream kinds).
func (l *Link) auditEnqueue(p *packet.Packet) {
	if p.Kind.Downstream() != (l.Dir == DirRequest) {
		l.audit.Reportf(l.component(), "direction-kind",
			"%v packet %d queued on %s link %d->%d", p.Kind, p.ID, l.Dir, l.From, l.To)
	}
}

// auditSweep is the registered whole-link invariant walk: buffer bounds
// honored or accounted, mode indices in range, energy non-negative,
// monotone since the previous sweep, and bounded by full power × elapsed
// time (stale-read safe: energies integrate only to lastAccount ≤ now).
func (l *Link) auditSweep(now sim.Time, report func(component, rule, detail string)) {
	c := l.component()
	if len(l.queue) > BufferEntries && l.overflows == 0 {
		report(c, "buffer-bound", fmt.Sprintf(
			"%d packets queued past the %d-entry buffer with no overflow accounted", len(l.queue), BufferEntries))
	}
	if l.maxQueue < len(l.queue) {
		report(c, "buffer-bound", fmt.Sprintf("high-water mark %d below live depth %d", l.maxQueue, len(l.queue)))
	}
	if nm := NumModes(l.cfg.Mechanism); l.bwMode < 0 || l.bwMode >= nm || l.bwTarget < 0 || l.bwTarget >= nm {
		report(c, "bw-mode-range", fmt.Sprintf("mode=%d target=%d outside [0,%d) for %s", l.bwMode, l.bwTarget, nm, l.cfg.Mechanism))
	}
	if l.rooMode < 0 || l.rooMode >= NumROOModes {
		report(c, "roo-mode-range", fmt.Sprintf("roo mode %d outside [0,%d)", l.rooMode, NumROOModes))
	}
	if l.state < StateOn || l.state > StateRetraining {
		report(c, "state-range", fmt.Sprintf("state %d is not a lattice state", l.state))
	}
	if (l.state == StateFailed || l.state == StateRetraining) && l.transmitting {
		report(c, "recovery-quiet", fmt.Sprintf("%s link is serializing a packet", l.state))
	}
	if l.energyIdle < 0 || l.energyActive < 0 {
		report(c, "energy-sign", fmt.Sprintf("idle=%g active=%g J", l.energyIdle, l.energyActive))
	}
	if l.energyIdle < l.auditPrevIdle || l.energyActive < l.auditPrevActive {
		report(c, "energy-monotone", fmt.Sprintf("idle %g->%g active %g->%g J",
			l.auditPrevIdle, l.energyIdle, l.auditPrevActive, l.energyActive))
	}
	l.auditPrevIdle, l.auditPrevActive = l.energyIdle, l.energyActive
	if tot, bound := l.energyIdle+l.energyActive, l.cfg.FullWatts*now.Seconds()*energyHeadroom; tot > bound {
		report(c, "energy-bound", fmt.Sprintf("%g J exceeds full-power bound %g J at %s", tot, bound, now))
	}
	if l.totalBusy > now {
		report(c, "busy-bound", fmt.Sprintf("busy time %s exceeds elapsed %s", l.totalBusy, now))
	}
}

// corrupted decides whether a just-serialized packet failed its CRC.
func (l *Link) corrupted(p *packet.Packet) bool {
	if l.errRNG == nil || l.cfg.BER <= 0 {
		return false
	}
	bits := float64(p.Bytes() * 8)
	pErr := 1 - pow1m(l.cfg.BER, bits)
	return l.errRNG.Float64() < pErr
}

// pow1m computes (1-ber)^bits stably for tiny ber.
func pow1m(ber, bits float64) float64 {
	if ber <= 0 {
		return 1
	}
	if ber >= 1 {
		return 0
	}
	// exp(bits × ln(1-ber)); for the tiny rates of interest this is
	// ≈ 1 - bits×ber.
	return math.Exp(bits * math.Log(1-ber))
}

// Retries counts CRC retransmissions performed by this link.
func (l *Link) Retries() uint64 { return l.retries }

// Dropped counts packets refused or lost because the link failed.
func (l *Link) Dropped() uint64 { return l.dropped }

// WakeFaults counts injected wakeup faults consumed by this link.
func (l *Link) WakeFaults() uint64 { return l.wakeFaults }

// Failed reports whether the link is down awaiting repair.
func (l *Link) Failed() bool { return l.state == StateFailed }

// SetBER reprograms the link's bit error rate at runtime (fault
// injection: transient corruption bursts driving the CRC retry path).
// Setting it back to zero ends the burst. The error RNG is seeded from
// the link ID, so bursts are deterministic for a given scenario.
func (l *Link) SetBER(ber float64) {
	l.cfg.BER = ber
	if ber > 0 {
		if l.cfg.RetryDelay <= 0 {
			l.cfg.RetryDelay = 32 * sim.Nanosecond
		}
		if l.errRNG == nil {
			l.errRNG = sim.NewRNG(0x6c696e6b ^ uint64(l.ID)<<20)
		}
	}
}

// InjectWakeFault arms a fault on the link's next wakeup: the
// resynchronization takes extra additional time, and if drop is set the
// wakeup fails once outright — the link falls back to off and retries the
// full wakeup. Models marginal links whose retraining struggles.
func (l *Link) InjectWakeFault(extra sim.Duration, drop bool) {
	if l.state == StateFailed {
		return
	}
	if extra > l.wakeExtra {
		l.wakeExtra = extra
	}
	l.wakeDrop = l.wakeDrop || drop
}

// Fail fails the link: energy is integrated up to now at the pre-failure
// draw, the state moves to StateFailed (0 W), and every buffered or
// in-flight packet is handed back to the caller so the network can
// complete or account them. Subsequent Enqueues are dropped through
// OnDrop until Repair brings the link back. Fail is idempotent.
func (l *Link) Fail() []*packet.Packet {
	if l.state == StateFailed {
		return nil
	}
	now := l.kernel.Now()
	l.account(now)
	if l.idleOpen {
		l.mon.observeIdleEnd(now - l.idleSince)
		l.idleOpen = false
	}
	l.setState(StateFailed)
	l.transmitting = false
	l.offSeq++ // cancel pending off-checks
	var stranded []*packet.Packet
	if l.inflight != nil {
		stranded = append(stranded, l.inflight)
		l.inflight = nil
	}
	stranded = append(stranded, l.queue...)
	l.queue = nil
	return stranded
}

// Config returns the link's capabilities.
func (l *Link) Config() Config { return l.cfg }

// Mon exposes the management counters.
func (l *Link) Mon() *Monitors { return l.mon }

// State returns the current ROO state.
func (l *Link) State() State { return l.state }

// BWMode returns the committed bandwidth mode.
func (l *Link) BWMode() int { return l.bwMode }

// BWTarget returns the bandwidth mode in effect after any transition.
func (l *Link) BWTarget() int { return l.bwTarget }

// ROOMode returns the current idleness-threshold index.
func (l *Link) ROOMode() int { return l.rooMode }

// QueueLen returns the number of buffered packets.
func (l *Link) QueueLen() int { return len(l.queue) }

// MaxQueue returns the high-water mark of the buffer.
func (l *Link) MaxQueue() int { return l.maxQueue }

// Overflows counts enqueues beyond the 128-entry hardware buffer. The
// model keeps the packets (injection is bounded upstream) but reports the
// condition.
func (l *Link) Overflows() uint64 { return l.overflows }

// EnergyJoules returns the idle and active I/O energy so far.
func (l *Link) EnergyJoules() (idle, active float64) { return l.energyIdle, l.energyActive }

// BusyTime returns total time spent serializing flits.
func (l *Link) BusyTime() sim.Duration { return l.totalBusy }

// Bytes returns total payload bytes transferred.
func (l *Link) Bytes() uint64 { return l.bytes }

// String identifies the link for diagnostics.
func (l *Link) String() string {
	return fmt.Sprintf("link%d(%s %d->%d)", l.ID, l.Dir, l.From, l.To)
}

// effBWLabel is the mode whose bandwidth currently binds (during a
// transition the link runs at the slower of old and new).
func (l *Link) effBWLabel(now sim.Time) int {
	if now <= l.bwTransEnd && l.bwTarget != l.bwMode {
		if l.bwTarget > l.bwMode { // higher index = less bandwidth
			return l.bwTarget
		}
		return l.bwMode
	}
	return l.bwMode
}

// effBWFactor is the bandwidth factor currently deliverable.
func (l *Link) effBWFactor(now sim.Time) float64 {
	return BWFactor(l.cfg.Mechanism, l.effBWLabel(now))
}

// currentWatts is the instantaneous power draw.
func (l *Link) currentWatts(now sim.Time) float64 {
	if l.state == StateFailed {
		return 0 // a dead link draws nothing and is dropped from accounting
	}
	if l.state == StateRetraining {
		// Training drives the PHY on every lane at full power while
		// delivering no bandwidth — the I/O cost of recovery.
		return l.cfg.FullWatts
	}
	if l.state == StateOff {
		return l.cfg.FullWatts * OffPowerFraction
	}
	// During a bandwidth transition both configurations are partially
	// powered; draw the higher of the two.
	w := l.wattsByMode[l.bwMode]
	if now <= l.bwTransEnd && l.bwTarget != l.bwMode {
		if w2 := l.wattsByMode[l.bwTarget]; w2 > w {
			w = w2
		}
	}
	return w
}

// account integrates energy and state-time up to now. Every state change
// calls it first.
func (l *Link) account(now sim.Time) {
	d := now - l.lastAccount
	if d <= 0 {
		l.lastAccount = now
		return
	}
	joules := l.currentWatts(now) * sim.Time(d).Seconds()
	if l.transmitting {
		l.energyActive += joules
		l.totalBusy += d
		l.mon.epoch.BusyTime += d
	} else {
		l.energyIdle += joules
	}
	l.mon.epoch.TimeInBWMode[l.effBWLabel(now)] += d
	l.stateTime[l.state] += d
	switch l.state {
	case StateOff:
		l.mon.epoch.OffTime += d
	case StateWaking:
		l.mon.epoch.WakingTime += d
	case StateRetraining:
		l.mon.epoch.RetrainTime += d
	}
	l.lastAccount = now
}

// StateTimes returns the cumulative per-state residency including the
// still-open interval since the last state change. Read-only: unlike
// account it does not advance the integrator, so sampling it cannot
// perturb energy accounting (currentWatts is evaluated at integration
// time, and integration instants stay exactly the set the simulation
// itself produces).
func (l *Link) StateTimes(now sim.Time) [NumStates]sim.Duration {
	st := l.stateTime
	if d := now - l.lastAccount; d > 0 {
		st[l.state] += d
	}
	return st
}

// Enqueue accepts a packet into the link buffer (reads ahead of writes)
// and starts transmission or wakeup as needed. A failed link refuses the
// packet and reports it through OnDrop.
func (l *Link) Enqueue(p *packet.Packet) {
	if l.state == StateFailed {
		l.dropped++
		if l.OnDrop != nil {
			l.OnDrop(p)
		}
		return
	}
	now := l.kernel.Now()
	l.account(now)
	p.HopArrive = now
	if l.idleOpen {
		l.mon.observeIdleEnd(now - l.idleSince)
		l.idleOpen = false
	}
	l.offSeq++ // cancel any pending off-check
	l.mon.observeArrival(now, p)

	if p.Kind.IsRead() {
		idx := len(l.queue)
		for i, q := range l.queue {
			if !q.Kind.IsRead() {
				idx = i
				break
			}
		}
		l.queue = append(l.queue, nil)
		copy(l.queue[idx+1:], l.queue[idx:])
		l.queue[idx] = p
	} else {
		l.queue = append(l.queue, p)
	}
	if len(l.queue) > l.maxQueue {
		l.maxQueue = len(l.queue)
	}
	if len(l.queue) > BufferEntries {
		l.overflows++
	}
	if l.audit.Sample() {
		l.auditEnqueue(p)
	}

	switch l.state {
	case StateOff:
		l.startWake()
	case StateOn:
		l.tryTransmit()
	}
	if l.OnEnqueue != nil {
		l.OnEnqueue()
	}
}

// tryTransmit starts serializing the head-of-queue packet if possible.
func (l *Link) tryTransmit() {
	if l.transmitting || len(l.queue) == 0 || l.state != StateOn {
		return
	}
	now := l.kernel.Now()
	l.account(now)
	p := l.queue[0]
	copy(l.queue, l.queue[1:])
	l.queue = l.queue[:len(l.queue)-1]
	l.transmitting = true
	l.inflight = p

	bw := l.effBWFactor(now)
	ser := sim.Duration(float64(int64(FlitTimeFull)*int64(p.Flits()))/bw + 0.5)
	end := now + ser
	serdes := SERDESLatency(l.cfg.Mechanism, l.effBWLabel(now))
	l.txDone.p, l.txDone.end, l.txDone.serdes = p, end, serdes
	l.kernel.ScheduleAction(end, &l.txDone)
}

// txDoneAction is the link's transmit-completion event. At most one
// transmission is in flight per link (the transmitting flag), so a single
// reusable value lives inline in the Link and scheduling it never
// allocates.
type txDoneAction struct {
	l      *Link
	p      *packet.Packet
	end    sim.Time
	serdes sim.Duration
}

func (a *txDoneAction) Act() { a.l.finishTransmit() }

// retryAction re-attempts transmission after the CRC retry turnaround.
// It is stateless, so the one inline value can back any number of
// concurrently scheduled retries.
type retryAction struct{ l *Link }

func (a *retryAction) Act() { a.l.tryTransmit() }

// deliverAction carries a serialized packet through the SERDES/router
// pipeline to Deliver. Deliveries overlap (serialization of the next
// packet starts before the previous one lands), so these are pooled on a
// per-link free list rather than embedded.
type deliverAction struct {
	l *Link
	p *packet.Packet
}

func (a *deliverAction) Act() {
	l, p := a.l, a.p
	a.p = nil
	l.deliverFree = append(l.deliverFree, a)
	p.Hops++
	l.Deliver(p)
}

// finishTransmit completes serialization of the in-flight packet:
// CRC-check it, then either hand it to the delivery pipeline and start
// the next transmission, or put it back at the head and retry.
func (l *Link) finishTransmit() {
	p, end, serdes := l.txDone.p, l.txDone.end, l.txDone.serdes
	if l.state == StateFailed {
		return // Fail() already reclaimed the in-flight packet
	}
	if !l.transmitting || l.inflight != p {
		return // stale: the link failed and was repaired mid-serialization
	}
	l.account(end)
	l.transmitting = false
	l.inflight = nil
	if l.corrupted(p) {
		// CRC failure: put the packet back at the head and
		// retransmit after the retry turnaround. Consecutive
		// failures escalate (degrade → retrain → hard-fail)
		// instead of spinning forever under a sustained burst.
		l.retries++
		l.queue = append(l.queue, nil)
		copy(l.queue[1:], l.queue)
		l.queue[0] = p
		l.offSeq++ // keep ROO from sleeping mid-retry
		l.crcStreak++
		if l.crcStreak >= l.cfg.MaxCRCRetries {
			l.escalate(end)
			return
		}
		l.kernel.AfterAction(l.cfg.RetryDelay, &l.retry)
		return
	}
	// A clean transmission resets the escalation ladder.
	l.crcStreak, l.escLevel = 0, 0
	l.bytes += uint64(p.Bytes())
	depart := end + serdes
	l.mon.observeDeparture(p, depart-p.HopArrive)
	// Delivery includes the receiving module's router traversal, so
	// the receiver can act inline (one event per hop instead of two).
	var da *deliverAction
	if n := len(l.deliverFree); n > 0 {
		da, l.deliverFree = l.deliverFree[n-1], l.deliverFree[:n-1]
	} else {
		da = &deliverAction{l: l}
	}
	da.p = p
	l.kernel.ScheduleAction(depart+RouterLatency(), da)
	if len(l.queue) > 0 {
		l.tryTransmit()
	} else {
		l.enterIdle(end)
	}
}

// Escalation ladder rungs: each exhausted CRC retry streak moves the
// link one rung further until a clean transmission resets it.
const (
	escDegrade  = iota // drop to the half-width lane mode
	escRetrain         // re-run lane training
	escHardFail        // give up: fail the link
)

// EscalationStats counts the CRC escalation ladder's actions.
type EscalationStats struct {
	Degrades  uint64 // half-width fallbacks
	Retrains  uint64 // escalation-triggered retrains (repairs not included)
	HardFails uint64 // links taken down after retraining did not help
}

// Escalations returns the ladder counters.
func (l *Link) Escalations() EscalationStats { return l.esc }

// Repairs counts completed failed→retraining→on repair cycles started on
// this link.
func (l *Link) Repairs() uint64 { return l.repairs }

// escalate runs one rung of the ladder after MaxCRCRetries consecutive
// CRC failures: degrade to the half-width mode, then retrain, then fail
// the link for good. Called from the transmit-completion event with the
// corrupt packet already back at the head of the queue.
func (l *Link) escalate(now sim.Time) {
	l.crcStreak = 0
	lvl := l.escLevel
	if lvl == escDegrade && NumModes(l.cfg.Mechanism) <= HalfWidthMode {
		lvl = escRetrain // no narrower mode to fall back to
	}
	switch lvl {
	case escDegrade:
		l.esc.Degrades++
		l.escLevel = escRetrain
		l.SetBWMode(HalfWidthMode)
		l.kernel.AfterAction(l.cfg.RetryDelay, &l.retry)
	case escRetrain:
		l.esc.Retrains++
		l.escLevel = escHardFail
		l.account(now)
		l.setState(StateRetraining)
		l.beginRetrain(now)
	default:
		l.esc.HardFails++
		if l.OnHardFail != nil {
			// The network layer fails the link and error-completes the
			// stranded requests.
			l.OnHardFail()
			return
		}
		for _, p := range l.Fail() {
			l.dropped++
			if l.OnDrop != nil {
				l.OnDrop(p)
			}
		}
	}
}

// beginRetrain schedules the training-complete event. The sequence
// number cancels it if the link fails (or is failed) mid-training.
func (l *Link) beginRetrain(now sim.Time) {
	l.retrainSeq++
	seq := l.retrainSeq
	l.kernel.Schedule(now+l.cfg.Retrain, func() { l.finishRetrain(seq) })
}

// finishRetrain completes lane training: the link comes back at full
// width with a clean CRC streak and resumes draining its buffer.
func (l *Link) finishRetrain(seq uint64) {
	if l.state != StateRetraining || l.retrainSeq != seq {
		return // failed mid-training, or superseded by a newer retrain
	}
	now := l.kernel.Now()
	l.account(now)
	// Training re-equalizes every lane, so the link exits at full width;
	// zeroing the transition deadline also cancels any stale mode-commit.
	l.bwMode, l.bwTarget, l.bwTransEnd = 0, 0, 0
	l.crcStreak = 0
	l.setState(StateOn)
	l.mon.epoch.Retrains++
	if l.OnRetrained != nil {
		l.OnRetrained()
	}
	if len(l.queue) > 0 {
		l.tryTransmit()
	} else {
		l.enterIdle(now)
	}
}

// Repair begins recovery of a failed link: it enters StateRetraining
// (full I/O power, no traffic) and comes back on after the configured
// training latency. The escalation ladder restarts from the bottom.
// Returns false — and does nothing — unless the link is failed.
func (l *Link) Repair() bool {
	if l.state != StateFailed {
		return false
	}
	now := l.kernel.Now()
	l.account(now) // close the 0 W failed interval
	l.setState(StateRetraining)
	l.repairs++
	l.escLevel = escDegrade
	l.wakeExtra, l.wakeDrop = 0, false // pending wake faults die with the old PHY state
	l.beginRetrain(now)
	return true
}

// enterIdle opens an idle interval and arms the ROO off-check.
func (l *Link) enterIdle(now sim.Time) {
	l.idleSince = now
	l.idleOpen = true
	l.armOffCheck(now, ROOThresholds[l.rooMode])
}

// armOffCheck schedules a turn-off attempt after the idleness threshold.
// Superseded checks (offSeq has moved on) stay scheduled and no-op when
// they fire, so several can be pending at once; the actions come from a
// per-link free list and each returns itself exactly once, when it fires.
func (l *Link) armOffCheck(now sim.Time, after sim.Duration) {
	if !l.cfg.ROO || l.forcedFull {
		return
	}
	l.offSeq++
	var a *offCheckAction
	if n := len(l.offFree); n > 0 {
		a, l.offFree = l.offFree[n-1], l.offFree[:n-1]
	} else {
		a = &offCheckAction{l: l}
	}
	a.seq = l.offSeq
	l.kernel.ScheduleAction(now+after, a)
}

// offCheckAction is a pooled ROO turn-off attempt; seq cancels it if the
// link saw traffic (or changed state) after it was armed.
type offCheckAction struct {
	l   *Link
	seq uint64
}

func (a *offCheckAction) Act() {
	l, seq := a.l, a.seq
	l.offFree = append(l.offFree, a)
	if l.offSeq != seq || l.state != StateOn || l.transmitting || len(l.queue) > 0 {
		return
	}
	if l.HoldOn != nil && l.HoldOn() {
		// Vetoed; try again one threshold later (the veto holder
		// also calls MaybeTurnOff when its condition clears).
		l.armOffCheck(l.kernel.Now(), ROOThresholds[l.rooMode])
		return
	}
	t := l.kernel.Now()
	l.account(t)
	l.setState(StateOff)
	if l.OnTurnOff != nil {
		l.OnTurnOff()
	}
}

// MaybeTurnOff turns the link off immediately if it is on, idle past its
// threshold, and not vetoed. Network-aware ROO calls this when a veto
// condition clears (DRAM drained, downstream links all off).
func (l *Link) MaybeTurnOff() {
	if !l.cfg.ROO || l.forcedFull || l.state != StateOn || l.transmitting || len(l.queue) > 0 {
		return
	}
	now := l.kernel.Now()
	if !l.idleOpen || now-l.idleSince < ROOThresholds[l.rooMode] {
		return
	}
	if l.HoldOn != nil && l.HoldOn() {
		return
	}
	l.account(now)
	l.setState(StateOff)
	if l.OnTurnOff != nil {
		l.OnTurnOff()
	}
}

// startWake begins the off→waking→on sequence. An armed wakeup fault
// stretches the resynchronization or (drop) aborts it once: the link
// falls back to off and immediately retries the full wakeup, so queued
// packets are delayed, never stranded.
func (l *Link) startWake() {
	if l.state != StateOff {
		return
	}
	now := l.kernel.Now()
	l.account(now)
	l.setState(StateWaking)
	wakeup := l.cfg.Wakeup
	if l.wakeExtra > 0 {
		wakeup += l.wakeExtra
		l.wakeExtra = 0
		l.wakeFaults++
	}
	drop := l.wakeDrop
	if drop {
		l.wakeDrop = false
		l.wakeFaults++
	}
	if l.OnWakeStart != nil {
		l.OnWakeStart()
	}
	l.wake.end, l.wake.drop = now+wakeup, drop
	l.kernel.ScheduleAction(l.wake.end, &l.wake)
}

// wakeAction is the wake-completion event. The state machine admits one
// wake at a time (off→waking, and waking ends before the next off), so a
// single inline value suffices; end doubles as a staleness guard.
type wakeAction struct {
	l    *Link
	end  sim.Time
	drop bool
}

func (a *wakeAction) Act() { a.l.finishWake() }

// finishWake completes resynchronization: the link comes on and drains
// its buffer, or — on an injected wake drop — falls back to off and
// retries the whole wakeup.
func (l *Link) finishWake() {
	if l.state != StateWaking || l.wake.end != l.kernel.Now() {
		return // failed mid-wake, or superseded by a newer wakeup
	}
	t := l.kernel.Now()
	l.account(t)
	if l.wake.drop {
		// Resynchronization failed; retry the whole wakeup.
		l.setState(StateOff)
		l.startWake()
		return
	}
	l.setState(StateOn)
	l.mon.epoch.Wakeups++
	if len(l.queue) > 0 {
		l.tryTransmit()
	} else {
		l.enterIdle(t)
	}
}

// Wake proactively powers the link on (or keeps it on). On an off link it
// starts the wakeup; on an on link it re-arms the off-check so the link
// stays up for at least another threshold.
func (l *Link) Wake() {
	switch l.state {
	case StateOff:
		l.startWake()
	case StateOn:
		if !l.transmitting && len(l.queue) == 0 {
			l.armOffCheck(l.kernel.Now(), ROOThresholds[l.rooMode])
		}
	}
}

// SetBWMode requests bandwidth mode m; the change completes after the
// mechanism's transition latency, during which the link runs at the
// slower of the two modes and draws the higher power.
func (l *Link) SetBWMode(m int) {
	if l.cfg.Mechanism == MechNone || m == l.bwTarget ||
		l.state == StateFailed || l.state == StateRetraining {
		return
	}
	if m < 0 || m >= NumModes(l.cfg.Mechanism) {
		panic(fmt.Sprintf("link: bandwidth mode %d out of range", m))
	}
	now := l.kernel.Now()
	l.account(now)
	// Commit any finished transition first.
	if now >= l.bwTransEnd {
		l.bwMode = l.bwTarget
	}
	l.bwTarget = m
	end := now + TransitionLatency(l.cfg.Mechanism)
	l.bwTransEnd = end
	l.kernel.Schedule(end, func() {
		if l.bwTransEnd != end || l.bwTarget != m ||
			l.state == StateFailed || l.state == StateRetraining {
			return // superseded (retraining resets the width itself)
		}
		l.account(end)
		l.bwMode = m
	})
}

// SetROOMode selects the idleness-threshold index.
func (l *Link) SetROOMode(m int) {
	if m < 0 || m >= NumROOModes {
		panic(fmt.Sprintf("link: ROO mode %d out of range", m))
	}
	l.rooMode = m
	if l.state == StateOn && !l.transmitting && len(l.queue) == 0 && l.idleOpen {
		l.armOffCheck(l.kernel.Now(), ROOThresholds[m])
	}
}

// ForceFullPower puts the link in full power until ClearForce (the §V
// AMS-violation response): full bandwidth, ROO suspended, woken if off.
// A failed link cannot be forced back up, and a retraining link is
// already at full I/O power and manages its own return to service.
func (l *Link) ForceFullPower() {
	if l.state == StateFailed || l.state == StateRetraining {
		return
	}
	l.forcedFull = true
	l.SetBWMode(0)
	l.offSeq++ // cancel pending off-checks
	if l.state == StateOff {
		l.startWake()
	}
}

// Forced reports whether the link is in the violation full-power state.
func (l *Link) Forced() bool { return l.forcedFull }

// ClearForce ends the violation state at an epoch boundary.
func (l *Link) ClearForce() {
	if !l.forcedFull {
		return
	}
	l.forcedFull = false
	if l.state == StateOn && !l.transmitting && len(l.queue) == 0 {
		l.enterIdle(l.kernel.Now())
	}
}

// ChargeControlFlits adds the transmission energy of n management flits
// (ISP messages, AMS requests) to the link's active-I/O energy without
// occupying the data path; the paper treats this traffic as negligible,
// and charging it keeps the power accounting honest.
func (l *Link) ChargeControlFlits(n int) {
	seconds := (sim.Duration(n) * FlitTimeFull).Seconds()
	l.energyActive += seconds * l.cfg.FullWatts
}

// FinishAccounting integrates energy up to now; call once at the end of a
// simulation before reading energies.
func (l *Link) FinishAccounting() {
	l.account(l.kernel.Now())
}
