package link

import (
	"math"
	"testing"

	"memnet/internal/packet"
	"memnet/internal/sim"
)

// TestLinkQueueMatchesMD1 validates the link's queueing behaviour against
// queueing theory: Poisson arrivals of fixed-size packets into a
// deterministic server form an M/D/1 queue, whose mean waiting time is
//
//	W = ρ·D / (2·(1−ρ))
//
// with service time D and utilization ρ. The measured mean link latency
// must match D + W + SERDES within Monte-Carlo tolerance. This anchors
// the simulator's core serialization/queueing engine to an analytic
// ground truth independent of the implementation.
func TestLinkQueueMatchesMD1(t *testing.T) {
	for _, rho := range []float64{0.3, 0.6, 0.8} {
		k := sim.NewKernel()
		l := New(k, Config{FullWatts: 0.586}, 0, DirResponse, 0, 0, packet.ProcessorID, 1)
		var total sim.Duration
		n := 0
		l.Deliver = func(p *packet.Packet) {}
		service := 5 * FlitTimeFull // 3.2 ns per response packet
		meanGap := float64(service) / rho

		rng := sim.NewRNG(99)
		const packets = 60000
		var inject func()
		sent := 0
		inject = func() {
			if sent >= packets {
				return
			}
			sent++
			p := &packet.Packet{ID: uint64(sent), Kind: packet.ReadResp}
			l.Enqueue(p)
			k.After(sim.Duration(rng.Exp(meanGap)), inject)
		}
		inject()
		k.RunAll()

		ec := l.Mon().Peek()
		total = ec.ActualReadLatency
		n = ec.ReadPackets
		if n != packets {
			t.Fatalf("rho=%v: %d packets measured", rho, n)
		}
		measured := float64(total)/float64(n) - float64(SERDESBase)
		d := float64(service)
		want := d + rho*d/(2*(1-rho))
		if math.Abs(measured-want)/want > 0.05 {
			t.Fatalf("rho=%v: mean latency %.2f ns, M/D/1 predicts %.2f ns",
				rho, measured/1000, want/1000)
		}
	}
}

// TestVaultlessThroughputAtSaturation checks the link saturates at exactly
// its serialization rate.
func TestLinkSaturationThroughput(t *testing.T) {
	k := sim.NewKernel()
	l := New(k, Config{FullWatts: 0.586}, 0, DirResponse, 0, 0, packet.ProcessorID, 1)
	delivered := 0
	l.Deliver = func(*packet.Packet) { delivered++ }
	const packets = 10000
	for i := 0; i < packets; i++ {
		l.Enqueue(&packet.Packet{ID: uint64(i), Kind: packet.ReadResp})
	}
	k.RunAll()
	// Last delivery at packets × 3.2 ns + SERDES + router.
	want := sim.Duration(packets)*5*FlitTimeFull + SERDESBase + RouterLatency()
	if k.Now() != want {
		t.Fatalf("saturated drain took %v, want %v", k.Now(), want)
	}
	if delivered != packets {
		t.Fatalf("delivered %d", delivered)
	}
}
