// Package link models one unidirectional high-speed point-to-point link:
// flit serialization, SERDES latency, buffering with read-over-write
// priority, the three circuit-level power control mechanisms the paper
// studies (rapid on/off, DVFS, variable-width links), idle/active energy
// integration, and the hardware counters ("delay monitors", idle-interval
// histograms) that the management policies of §V/§VI read each epoch.
package link

import (
	"fmt"

	"memnet/internal/sim"
)

// Mechanism selects the bandwidth-scaling mechanism a link supports. Rapid
// on/off is orthogonal and enabled separately (the paper evaluates VWL,
// ROO, VWL+ROO, DVFS, and DVFS+ROO).
type Mechanism int

const (
	// MechNone fixes the link at full bandwidth.
	MechNone Mechanism = iota
	// MechVWL varies the number of active lanes (16/8/4/1). Power scales
	// as (lanes+1)/17 — the I/O clock costs about one lane — and
	// bandwidth as lanes/16. Resizing takes 1 µs.
	MechVWL
	// MechDVFS scales voltage and frequency. Modes deliver 100/80/50/14%
	// bandwidth at 100/70/35/8% power. SERDES latency grows as the I/O
	// clock slows. A full transition takes up to 3 µs (half width, scale
	// bundle A, scale bundle B, restore width).
	MechDVFS
)

// String implements fmt.Stringer.
func (m Mechanism) String() string {
	switch m {
	case MechNone:
		return "none"
	case MechVWL:
		return "VWL"
	case MechDVFS:
		return "DVFS"
	default:
		return fmt.Sprintf("Mechanism(%d)", int(m))
	}
}

// Physical constants of the modelled links.
const (
	// LaneRateGbps is the per-lane signalling rate.
	LaneRateGbps = 12.5
	// LanesPerLink is the full width of a unidirectional link.
	LanesPerLink = 16
	// BufferEntries is the link controller buffer size (§III-B).
	BufferEntries = 128
)

// FlitTimeFull is the time to serialize one 16 B flit at full width:
// 16 B × 8 / (16 lanes × 12.5 Gbps) = 0.64 ns.
var FlitTimeFull = sim.FromNanos(0.64)

// SERDESBase is the serialization/deserialization latency at full speed.
var SERDESBase = sim.FromNanos(3.2)

// RouterCycle is the pipelined router clock period (the minimum flit
// transfer time) and RouterCycles its pipeline depth.
var RouterCycle = sim.FromNanos(0.64)

// RouterCycles is the router pipeline latency in cycles.
const RouterCycles = 4

// RouterLatency is the per-hop routing latency.
func RouterLatency() sim.Duration { return RouterCycles * RouterCycle }

// NumBWModes is the number of bandwidth modes for VWL and DVFS (mode 0 is
// always full power/bandwidth).
const NumBWModes = 4

// vwlLanes lists the active lane counts per VWL mode.
var vwlLanes = [NumBWModes]int{16, 8, 4, 1}

// dvfsBW and dvfsPower are the DVFS operating points from [16]: each
// successive mode gives roughly equal total-link-power steps.
var (
	dvfsBW    = [NumBWModes]float64{1.00, 0.80, 0.50, 0.14}
	dvfsPower = [NumBWModes]float64{1.00, 0.70, 0.35, 0.08}
)

// Transition latencies for bandwidth mode changes.
var (
	VWLTransition  = 1 * sim.Microsecond
	DVFSTransition = 3 * sim.Microsecond
)

// BWFactor returns the bandwidth fraction of mode m under mechanism mech.
func BWFactor(mech Mechanism, m int) float64 {
	switch mech {
	case MechNone:
		return 1
	case MechVWL:
		return float64(vwlLanes[m]) / float64(LanesPerLink)
	case MechDVFS:
		return dvfsBW[m]
	default:
		panic("link: unknown mechanism")
	}
}

// PowerFactor returns the power fraction of mode m under mechanism mech.
func PowerFactor(mech Mechanism, m int) float64 {
	switch mech {
	case MechNone:
		return 1
	case MechVWL:
		return float64(vwlLanes[m]+1) / float64(LanesPerLink+1)
	case MechDVFS:
		return dvfsPower[m]
	default:
		panic("link: unknown mechanism")
	}
}

// Lanes returns the active lane count of VWL mode m (16 for other
// mechanisms' mode 0 semantics; used for Fig. 13 reporting).
func Lanes(m int) int { return vwlLanes[m] }

// SERDESLatency returns the SERDES latency at mode m: constant for VWL
// (lanes change, clock does not), scaled with the slower I/O clock under
// DVFS — the DVFS drawback the paper highlights.
func SERDESLatency(mech Mechanism, m int) sim.Duration {
	if mech == MechDVFS {
		return sim.Duration(float64(SERDESBase) / dvfsBW[m])
	}
	return SERDESBase
}

// TransitionLatency returns how long a change to/from mode m takes.
func TransitionLatency(mech Mechanism) sim.Duration {
	switch mech {
	case MechVWL:
		return VWLTransition
	case MechDVFS:
		return DVFSTransition
	default:
		return 0
	}
}

// NumModes returns how many bandwidth modes mech offers (1 for MechNone).
func NumModes(mech Mechanism) int {
	if mech == MechNone {
		return 1
	}
	return NumBWModes
}

// Rapid on/off parameters (§IV-A).
const (
	// NumROOModes counts the idleness-threshold modes; the last (2048 ns)
	// is the "full power" ROO mode — even it turns the link off after
	// 2048 ns of idleness.
	NumROOModes = 4
	// ROOFullMode is the index of the least aggressive (2048 ns) mode.
	ROOFullMode = NumROOModes - 1
	// OffPowerFraction is the off-state power relative to full power.
	OffPowerFraction = 0.01
)

// ROOThresholds are the idleness thresholds per ROO mode.
var ROOThresholds = [NumROOModes]sim.Duration{
	32 * sim.Nanosecond,
	128 * sim.Nanosecond,
	512 * sim.Nanosecond,
	2048 * sim.Nanosecond,
}

// Wakeup latencies evaluated in the paper.
var (
	WakeupDefault     = 14 * sim.Nanosecond
	WakeupSensitivity = 20 * sim.Nanosecond
)

// Fault-recovery parameters.
const (
	// HalfWidthMode is the bandwidth-mode index the CRC escalation path
	// degrades to: 8 of 16 lanes under VWL, the 80% operating point under
	// DVFS. Narrower lanes mean fewer bits exposed per unit time on a
	// marginal link.
	HalfWidthMode = 1
	// DefaultMaxCRCRetries bounds consecutive CRC retransmissions of one
	// packet before the link escalates (degrade → retrain → hard-fail).
	// HMC controllers give up on link-level retry after a handful of
	// attempts and fall back to retraining.
	DefaultMaxCRCRetries = 8
)

// RetrainDefault is the link retraining latency: a repaired or escalated
// link re-runs PRBS lane training at full I/O power before carrying
// traffic again. Orders of magnitude longer than an ROO wakeup resync,
// which only re-locks an already-trained PHY.
var RetrainDefault = 1 * sim.Microsecond
