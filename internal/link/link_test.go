package link

import (
	"math"
	"testing"

	"memnet/internal/packet"
	"memnet/internal/sim"
)

// testLink builds a link whose deliveries append to a slice.
func testLink(t *testing.T, cfg Config) (*sim.Kernel, *Link, *[]*packet.Packet) {
	t.Helper()
	k := sim.NewKernel()
	if cfg.FullWatts == 0 {
		cfg.FullWatts = 0.58625
	}
	l := New(k, cfg, 0, DirRequest, 0, packet.ProcessorID, 0, 1)
	var delivered []*packet.Packet
	l.Deliver = func(p *packet.Packet) { delivered = append(delivered, p) }
	return k, l, &delivered
}

func pkt(id uint64, kind packet.Kind) *packet.Packet {
	return &packet.Packet{ID: id, Kind: kind, Src: packet.ProcessorID, Dst: 0}
}

func TestFullPowerTransmissionTiming(t *testing.T) {
	k, l, delivered := testLink(t, Config{})
	l.Enqueue(pkt(1, packet.ReadReq)) // 1 flit
	k.RunAll()
	// 0.64 ns serialization + 3.2 ns SERDES + 2.56 ns router.
	want := FlitTimeFull + SERDESBase + RouterLatency()
	if k.Now() != want {
		t.Fatalf("delivery at %v, want %v", k.Now(), want)
	}
	if len(*delivered) != 1 || (*delivered)[0].Hops != 1 {
		t.Fatalf("delivered = %v", *delivered)
	}
}

func TestFiveFlitPacketTiming(t *testing.T) {
	k, l, _ := testLink(t, Config{})
	l.Enqueue(pkt(1, packet.WriteReq)) // 5 flits
	k.RunAll()
	want := 5*FlitTimeFull + SERDESBase + RouterLatency()
	if k.Now() != want {
		t.Fatalf("delivery at %v, want %v", k.Now(), want)
	}
}

func TestBackToBackSerialization(t *testing.T) {
	k, l, delivered := testLink(t, Config{})
	l.Enqueue(pkt(1, packet.ReadReq))
	l.Enqueue(pkt(2, packet.ReadReq))
	k.RunAll()
	if len(*delivered) != 2 {
		t.Fatalf("delivered %d", len(*delivered))
	}
	// Packets pipeline: second serialization starts when the first ends.
	want := 2*FlitTimeFull + SERDESBase + RouterLatency()
	if k.Now() != want {
		t.Fatalf("last delivery at %v, want %v", k.Now(), want)
	}
}

func TestReadPriorityOverWrites(t *testing.T) {
	k, l, delivered := testLink(t, Config{})
	// First packet enters service immediately; queue a write then a read.
	l.Enqueue(pkt(1, packet.WriteReq))
	l.Enqueue(pkt(2, packet.WriteReq))
	l.Enqueue(pkt(3, packet.ReadReq))
	k.RunAll()
	order := [3]uint64{(*delivered)[0].ID, (*delivered)[1].ID, (*delivered)[2].ID}
	if order != [3]uint64{1, 3, 2} {
		t.Fatalf("delivery order = %v, want [1 3 2]", order)
	}
}

func TestVWLModeSlowsSerialization(t *testing.T) {
	k, l, _ := testLink(t, Config{Mechanism: MechVWL})
	l.SetBWMode(1) // 8 lanes
	k.Run(VWLTransition + 1)
	start := k.Now()
	l.Enqueue(pkt(1, packet.ReadResp)) // 5 flits
	k.RunAll()
	// At half width a flit takes 1.28 ns; SERDES unchanged for VWL.
	want := start + 10*FlitTimeFull + SERDESBase + RouterLatency()
	if k.Now() != want {
		t.Fatalf("delivery at %v, want %v", k.Now(), want)
	}
}

func TestDVFSModeSlowsSERDES(t *testing.T) {
	k, l, _ := testLink(t, Config{Mechanism: MechDVFS})
	l.SetBWMode(2) // 50% bandwidth
	k.Run(DVFSTransition + 1)
	start := k.Now()
	l.Enqueue(pkt(1, packet.ReadReq))
	k.RunAll()
	ser := sim.Duration(float64(FlitTimeFull)/0.5 + 0.5)
	serdes := sim.Duration(float64(SERDESBase) / 0.5)
	want := start + ser + serdes + RouterLatency()
	if k.Now() != want {
		t.Fatalf("delivery at %v, want %v", k.Now(), want)
	}
}

func TestTransitionRunsAtSlowerOfTwoModes(t *testing.T) {
	k, l, _ := testLink(t, Config{Mechanism: MechVWL})
	l.SetBWMode(3) // heading to 1 lane
	// Immediately enqueue: during the transition the link must already
	// run at the slower bandwidth.
	l.Enqueue(pkt(1, packet.ReadReq))
	k.RunAll()
	if l.BWMode() != 3 {
		t.Fatalf("mode = %d after transition, want 3", l.BWMode())
	}
	// 1 flit at 1/16 width = 10.24 ns.
	wantMin := sim.Duration(16 * FlitTimeFull)
	if k.Now() < wantMin {
		t.Fatalf("delivery at %v, faster than slow mode would allow", k.Now())
	}
}

func TestPowerFactors(t *testing.T) {
	// VWL: (lanes+1)/17.
	for m, lanes := range []int{16, 8, 4, 1} {
		want := float64(lanes+1) / 17
		if got := PowerFactor(MechVWL, m); math.Abs(got-want) > 1e-12 {
			t.Errorf("VWL power factor mode %d = %v, want %v", m, got, want)
		}
	}
	// DVFS table from [16].
	for m, want := range []float64{1.0, 0.70, 0.35, 0.08} {
		if got := PowerFactor(MechDVFS, m); math.Abs(got-want) > 1e-12 {
			t.Errorf("DVFS power factor mode %d = %v, want %v", m, got, want)
		}
	}
	if PowerFactor(MechNone, 0) != 1 || BWFactor(MechNone, 0) != 1 {
		t.Error("MechNone factors must be 1")
	}
}

func TestROOTurnsOffAfterThreshold(t *testing.T) {
	k, l, _ := testLink(t, Config{ROO: true})
	l.SetROOMode(0) // 32 ns threshold
	var offAt sim.Time = -1
	l.OnTurnOff = func() { offAt = k.Now() }
	l.Enqueue(pkt(1, packet.ReadReq))
	k.RunAll()
	if l.State() != StateOff {
		t.Fatalf("state = %v after idle, want off", l.State())
	}
	// Off exactly threshold after the link went idle (serialization end).
	if offAt != FlitTimeFull+ROOThresholds[0] {
		t.Fatalf("turned off at %v", offAt)
	}
}

func TestROOFullModeStillTurnsOff(t *testing.T) {
	// §V-B: the 2048 ns mode is the "full power" ROO mode but still
	// turns the link off.
	k, l, _ := testLink(t, Config{ROO: true})
	var offAt sim.Time = -1
	l.OnTurnOff = func() { offAt = k.Now() }
	l.Enqueue(pkt(1, packet.ReadReq))
	k.RunAll()
	if l.State() != StateOff {
		t.Fatal("full ROO mode never turned off")
	}
	if offAt != FlitTimeFull+ROOThresholds[ROOFullMode] {
		t.Fatalf("turned off at %v", offAt)
	}
}

func TestFreshROOLinkPowersDownWithoutTraffic(t *testing.T) {
	k, l, _ := testLink(t, Config{ROO: true})
	var offAt sim.Time = -1
	l.OnTurnOff = func() { offAt = k.Now() }
	k.Run(5 * sim.Microsecond)
	if l.State() != StateOff {
		t.Fatal("never-used ROO link stayed on")
	}
	if offAt != ROOThresholds[ROOFullMode] {
		t.Fatalf("turned off at %v, want %v", offAt, ROOThresholds[ROOFullMode])
	}
}

func TestNoROONeverOff(t *testing.T) {
	k, l, _ := testLink(t, Config{})
	l.Enqueue(pkt(1, packet.ReadReq))
	k.RunAll()
	k.Run(k.Now() + 10*sim.Microsecond)
	if l.State() != StateOn {
		t.Fatal("non-ROO link turned off")
	}
}

func TestWakeupDelaysArrival(t *testing.T) {
	k, l, delivered := testLink(t, Config{ROO: true, Wakeup: WakeupDefault})
	l.SetROOMode(0)
	l.Enqueue(pkt(1, packet.ReadReq))
	k.RunAll() // transmits, then turns off at 32.64 ns
	offAt := k.Now()
	k.Run(offAt + 100*sim.Nanosecond)
	arrival := k.Now()
	var deliveredAt sim.Time
	l.Deliver = func(p *packet.Packet) {
		deliveredAt = k.Now()
		*delivered = append(*delivered, p)
	}
	l.Enqueue(pkt(2, packet.ReadReq))
	k.RunAll()
	want := arrival + WakeupDefault + FlitTimeFull + SERDESBase + RouterLatency()
	if deliveredAt != want {
		t.Fatalf("post-wake delivery at %v, want %v", deliveredAt, want)
	}
	if len(*delivered) != 2 {
		t.Fatalf("delivered %d", len(*delivered))
	}
	if l.Mon().Peek().Wakeups != 1 {
		t.Fatalf("wakeups = %d, want 1", l.Mon().Peek().Wakeups)
	}
}

func TestProactiveWakeHidesLatency(t *testing.T) {
	k, l, _ := testLink(t, Config{ROO: true})
	l.SetROOMode(0)
	l.Enqueue(pkt(1, packet.ReadReq))
	k.RunAll()
	// Link is off. Wake proactively and wait exactly the wakeup latency;
	// traffic then flows with no extra delay.
	wakeAt := k.Now()
	l.Wake()
	k.Run(wakeAt + WakeupDefault)
	if l.State() != StateOn {
		t.Fatalf("state after proactive wake = %v", l.State())
	}
	start := k.Now()
	l.Enqueue(pkt(2, packet.ReadReq))
	k.Run(start + FlitTimeFull + SERDESBase + RouterLatency())
	if got := l.Mon().Peek().ActualReadLatency; got != 2*(FlitTimeFull+SERDESBase) {
		t.Fatalf("aggregate read latency = %v, want 2 unloaded passes", got)
	}
}

func TestHoldOnVetoesTurnOff(t *testing.T) {
	k, l, _ := testLink(t, Config{ROO: true})
	l.SetROOMode(0)
	hold := true
	l.HoldOn = func() bool { return hold }
	l.Enqueue(pkt(1, packet.ReadReq))
	k.Run(5 * sim.Microsecond)
	if l.State() != StateOn {
		t.Fatal("vetoed link turned off")
	}
	hold = false
	l.MaybeTurnOff()
	if l.State() != StateOff {
		t.Fatal("MaybeTurnOff did not turn the idle link off")
	}
}

func TestOnTurnOffAndOnWakeStartHooks(t *testing.T) {
	k, l, _ := testLink(t, Config{ROO: true})
	l.SetROOMode(0)
	var events []string
	l.OnTurnOff = func() { events = append(events, "off") }
	l.OnWakeStart = func() { events = append(events, "wake") }
	l.Enqueue(pkt(1, packet.ReadReq))
	k.RunAll()
	l.Enqueue(pkt(2, packet.ReadReq))
	k.RunAll()
	if len(events) < 3 || events[0] != "off" || events[1] != "wake" || events[2] != "off" {
		t.Fatalf("hook events = %v", events)
	}
}

func TestForceFullPower(t *testing.T) {
	k, l, _ := testLink(t, Config{Mechanism: MechVWL, ROO: true})
	l.SetBWMode(3)
	l.SetROOMode(0)
	l.Enqueue(pkt(1, packet.ReadReq))
	k.RunAll() // off now
	l.ForceFullPower()
	k.RunAll()
	if l.State() != StateOn || l.BWTarget() != 0 || !l.Forced() {
		t.Fatalf("forced state: %v mode=%d forced=%v", l.State(), l.BWTarget(), l.Forced())
	}
	// While forced, the link must not turn off again.
	k.Run(k.Now() + 10*sim.Microsecond)
	if l.State() != StateOn {
		t.Fatal("forced link turned off")
	}
	l.ClearForce()
	k.Run(k.Now() + 10*sim.Microsecond)
	if l.State() != StateOff {
		t.Fatal("cleared link never turned off again")
	}
}

func TestEnergyAccountingFullPowerIdle(t *testing.T) {
	k, l, _ := testLink(t, Config{FullWatts: 0.5})
	k.Run(1 * sim.Millisecond)
	l.FinishAccounting()
	idle, active := l.EnergyJoules()
	// 0.5 W × 1 ms = 0.5 mJ, all idle (idle I/O = active I/O power).
	if math.Abs(idle-0.5e-3) > 1e-9 || active != 0 {
		t.Fatalf("idle=%v active=%v, want 0.5e-3/0", idle, active)
	}
}

func TestEnergySplitsIdleAndActive(t *testing.T) {
	k, l, _ := testLink(t, Config{FullWatts: 1.0})
	l.Enqueue(pkt(1, packet.ReadResp)) // busy 3.2 ns
	k.Run(1 * sim.Microsecond)
	l.FinishAccounting()
	idle, active := l.EnergyJoules()
	wantActive := 1.0 * 3.2e-9
	wantIdle := 1.0 * (1e-6 - 3.2e-9)
	if math.Abs(active-wantActive) > 1e-15 || math.Abs(idle-wantIdle) > 1e-12 {
		t.Fatalf("active=%v idle=%v", active, idle)
	}
	if l.BusyTime() != 5*FlitTimeFull {
		t.Fatalf("busy = %v", l.BusyTime())
	}
	if l.Bytes() != 80 {
		t.Fatalf("bytes = %d", l.Bytes())
	}
}

func TestOffStateEnergyIsOnePercent(t *testing.T) {
	k, l, _ := testLink(t, Config{ROO: true, FullWatts: 1.0})
	l.SetROOMode(0)
	l.Enqueue(pkt(1, packet.ReadReq))
	k.RunAll() // off at 32.64 ns
	offStart := k.Now()
	l.FinishAccounting()
	idle0, _ := l.EnergyJoules()
	k.Run(offStart + 1*sim.Microsecond)
	l.FinishAccounting()
	idle1, _ := l.EnergyJoules()
	got := idle1 - idle0
	want := 0.01 * 1.0 * 1e-6
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("off energy over 1us = %v, want %v", got, want)
	}
}

func TestVWLModePowerDraw(t *testing.T) {
	k, l, _ := testLink(t, Config{Mechanism: MechVWL, FullWatts: 1.0})
	l.SetBWMode(1) // 8 lanes: 9/17 power
	k.Run(VWLTransition)
	l.FinishAccounting()
	idle0, _ := l.EnergyJoules()
	k.Run(VWLTransition + 1*sim.Microsecond)
	l.FinishAccounting()
	idle1, _ := l.EnergyJoules()
	got := idle1 - idle0
	want := (9.0 / 17.0) * 1e-6
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("8-lane idle energy = %v, want %v", got, want)
	}
}

func TestSetBWModePanicsOutOfRange(t *testing.T) {
	_, l, _ := testLink(t, Config{Mechanism: MechVWL})
	defer func() {
		if recover() == nil {
			t.Error("out-of-range mode did not panic")
		}
	}()
	l.SetBWMode(7)
}

func TestChargeControlFlits(t *testing.T) {
	_, l, _ := testLink(t, Config{FullWatts: 1.0})
	l.ChargeControlFlits(5)
	_, active := l.EnergyJoules()
	want := 5 * FlitTimeFull.Seconds() * 1.0
	if math.Abs(active-want) > 1e-18 {
		t.Fatalf("control energy = %v, want %v", active, want)
	}
}

func TestMaxQueueAndOverflow(t *testing.T) {
	k, l, _ := testLink(t, Config{})
	for i := 0; i < BufferEntries+10; i++ {
		l.Enqueue(pkt(uint64(i), packet.WriteReq))
	}
	if l.MaxQueue() <= BufferEntries {
		t.Fatalf("maxQueue = %d", l.MaxQueue())
	}
	if l.Overflows() == 0 {
		t.Fatal("overflow not recorded")
	}
	k.RunAll()
}

func TestBERRetries(t *testing.T) {
	// A lossy link must still deliver everything, with retries counted
	// and extra busy time burned.
	k, l, delivered := testLink(t, Config{BER: 1e-3}) // ~47% packet error for 80B
	for i := 0; i < 200; i++ {
		l.Enqueue(pkt(uint64(i), packet.ReadResp))
	}
	k.RunAll()
	if len(*delivered) != 200 {
		t.Fatalf("delivered %d of 200", len(*delivered))
	}
	if l.Retries() == 0 {
		t.Fatal("no retries on a lossy link")
	}
	// Expected retry rate ~ twice the per-packet error probability is a
	// loose sanity band.
	rate := float64(l.Retries()) / 200
	if rate < 0.1 || rate > 2.0 {
		t.Fatalf("retry rate = %v, implausible for BER 1e-3", rate)
	}
	// Busy time must exceed the error-free serialization total.
	minBusy := sim.Duration(200) * 5 * FlitTimeFull
	if l.BusyTime() <= minBusy {
		t.Fatalf("busy %v not above error-free %v", l.BusyTime(), minBusy)
	}
}

func TestBERZeroIsClean(t *testing.T) {
	k, l, delivered := testLink(t, Config{})
	for i := 0; i < 50; i++ {
		l.Enqueue(pkt(uint64(i), packet.ReadResp))
	}
	k.RunAll()
	if l.Retries() != 0 || len(*delivered) != 50 {
		t.Fatalf("clean link: retries=%d delivered=%d", l.Retries(), len(*delivered))
	}
}

func TestBERDeterministic(t *testing.T) {
	run := func() uint64 {
		k, l, _ := testLink(t, Config{BER: 5e-4})
		for i := 0; i < 100; i++ {
			l.Enqueue(pkt(uint64(i), packet.ReadResp))
		}
		k.RunAll()
		return l.Retries()
	}
	if run() != run() {
		t.Fatal("BER injection not deterministic")
	}
}
