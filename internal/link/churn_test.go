package link

import (
	"math"
	"testing"

	"memnet/internal/packet"
	"memnet/internal/sim"
)

// TestAccountingInvariantsUnderChurn exercises random interleavings of
// traffic, mode changes, ROO transitions, forcing and proactive wakes,
// then checks the time/energy partitions close exactly:
//
//   - Σ TimeInBWMode over an epoch equals the epoch length;
//   - busy time never exceeds elapsed time;
//   - energy sits between the off floor and the full-power ceiling;
//   - off/waking time only appears on ROO links.
func TestAccountingInvariantsUnderChurn(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := sim.NewRNG(uint64(42 + trial))
		mech := []Mechanism{MechNone, MechVWL, MechDVFS}[trial%3]
		roo := trial%2 == 1
		cfg := Config{Mechanism: mech, ROO: roo, FullWatts: 0.586}
		k := sim.NewKernel()
		l := New(k, cfg, 0, Direction(trial%2), 0, packet.ProcessorID, 0, 1)
		l.Deliver = func(*packet.Packet) {}

		horizon := 200 * sim.Microsecond
		var drive func()
		drive = func() {
			if k.Now() >= horizon {
				return
			}
			switch rng.Intn(10) {
			case 0:
				if mech != MechNone {
					l.SetBWMode(rng.Intn(NumModes(mech)))
				}
			case 1:
				if roo {
					l.SetROOMode(rng.Intn(NumROOModes))
				}
			case 2:
				l.Wake()
			case 3:
				l.ForceFullPower()
			case 4:
				l.ClearForce()
			case 5:
				l.MaybeTurnOff()
			default:
				kind := packet.ReadResp
				if rng.Float64() < 0.3 {
					kind = packet.WriteReq
				}
				l.Enqueue(&packet.Packet{ID: rng.Uint64(), Kind: kind})
			}
			k.After(sim.Duration(rng.Intn(2000))*sim.Nanosecond, drive)
		}
		drive()
		k.Run(horizon)
		l.FinishAccounting()

		ec := l.Mon().Peek()
		var modeSum sim.Duration
		for _, d := range ec.TimeInBWMode {
			if d < 0 {
				t.Fatalf("trial %d: negative mode time", trial)
			}
			modeSum += d
		}
		if modeSum != horizon {
			t.Fatalf("trial %d (%v,roo=%v): mode times sum to %v, want %v",
				trial, mech, roo, modeSum, horizon)
		}
		if ec.BusyTime < 0 || ec.BusyTime > horizon {
			t.Fatalf("trial %d: busy time %v", trial, ec.BusyTime)
		}
		if !roo && (ec.OffTime != 0 || ec.WakingTime != 0) {
			t.Fatalf("trial %d: non-ROO link has off/waking time", trial)
		}
		if ec.OffTime+ec.WakingTime > horizon {
			t.Fatalf("trial %d: off+waking exceed horizon", trial)
		}
		idle, active := l.EnergyJoules()
		total := idle + active
		secs := horizon.Seconds()
		if total < 0.99*cfg.FullWatts*OffPowerFraction*secs || total > 1.0001*cfg.FullWatts*secs {
			t.Fatalf("trial %d: energy %v outside physical bounds", trial, total)
		}
		if math.IsNaN(total) {
			t.Fatalf("trial %d: NaN energy", trial)
		}
	}
}

// TestQueueDrainsAfterChurn confirms no packet is stranded by mode/state
// churn: everything enqueued is eventually delivered.
func TestQueueDrainsAfterChurn(t *testing.T) {
	rng := sim.NewRNG(7)
	cfg := Config{Mechanism: MechVWL, ROO: true, FullWatts: 0.586}
	k := sim.NewKernel()
	l := New(k, cfg, 0, DirRequest, 0, packet.ProcessorID, 0, 1)
	delivered := 0
	l.Deliver = func(*packet.Packet) { delivered++ }
	sent := 0
	for i := 0; i < 500; i++ {
		k.Run(k.Now() + sim.Duration(rng.Intn(500))*sim.Nanosecond)
		switch rng.Intn(4) {
		case 0:
			l.SetBWMode(rng.Intn(NumBWModes))
		case 1:
			l.SetROOMode(rng.Intn(NumROOModes))
		default:
			sent++
			l.Enqueue(&packet.Packet{ID: uint64(i), Kind: packet.ReadReq})
		}
	}
	k.RunAll()
	if delivered != sent {
		t.Fatalf("delivered %d of %d packets", delivered, sent)
	}
	if l.QueueLen() != 0 {
		t.Fatalf("%d packets stranded", l.QueueLen())
	}
}
