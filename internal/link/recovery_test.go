package link

import (
	"testing"

	"memnet/internal/packet"
	"memnet/internal/sim"
)

// recoveryConfig is the shared base for the ladder tests: a short retrain
// and a tight retry budget keep the simulated schedules small without
// changing the ladder's shape.
func recoveryConfig(mech Mechanism) Config {
	return Config{
		Mechanism:     mech,
		RetryDelay:    10 * sim.Nanosecond,
		Retrain:       100 * sim.Nanosecond,
		MaxCRCRetries: 2,
		FullWatts:     0.58625,
	}
}

// TestRepairRetrainsAndDelivers walks the full repair cycle: a failed
// link enters retraining on Repair, buffers (rather than drops) arrivals
// while training, and comes back on to deliver them. Repair on a healthy
// link must be a no-op.
func TestRepairRetrainsAndDelivers(t *testing.T) {
	k := sim.NewKernel()
	l := New(k, recoveryConfig(MechVWL), 0, DirRequest, 0, packet.ProcessorID, 0, 1)
	var delivered []*packet.Packet
	l.Deliver = func(p *packet.Packet) { delivered = append(delivered, p) }

	if l.Repair() {
		t.Fatal("Repair on a healthy link must refuse")
	}
	l.Fail()
	l.Enqueue(&packet.Packet{ID: 1, Kind: packet.ReadReq, Src: packet.ProcessorID, Dst: 0})
	if l.Dropped() != 1 {
		t.Fatalf("failed link dropped %d packets, want 1", l.Dropped())
	}

	if !l.Repair() {
		t.Fatal("Repair on a failed link refused")
	}
	if l.State() != StateRetraining {
		t.Fatalf("state = %v after Repair, want retraining", l.State())
	}
	// Arrivals during training wait in the queue instead of dying.
	l.Enqueue(&packet.Packet{ID: 2, Kind: packet.ReadReq, Src: packet.ProcessorID, Dst: 0})
	if l.QueueLen() != 1 || l.Dropped() != 1 {
		t.Fatalf("retraining link queued %d / dropped %d, want 1 / 1", l.QueueLen(), l.Dropped())
	}

	k.RunAll()
	if l.State() != StateOn {
		t.Fatalf("state = %v after training, want on", l.State())
	}
	if len(delivered) != 1 || delivered[0].ID != 2 {
		t.Fatalf("delivered = %v, want packet 2", delivered)
	}
	if l.Repairs() != 1 {
		t.Fatalf("Repairs = %d, want 1", l.Repairs())
	}

	// A repaired link draws power again: the failed interval was 0 W, so
	// any accumulation proves the retraining + on intervals were charged.
	l.FinishAccounting()
	idle, active := l.EnergyJoules()
	if idle+active == 0 {
		t.Fatal("repaired link accumulated no energy")
	}
}

// TestCRCEscalationLadder drives a sustained BER=1 burst through the
// whole ladder: after MaxCRCRetries consecutive CRC failures the link
// degrades to half width, after another streak it retrains, and after a
// third it hard-fails — so RunAll terminates instead of retrying forever
// (the unbounded-retry hang this bound exists to prevent).
func TestCRCEscalationLadder(t *testing.T) {
	k := sim.NewKernel()
	cfg := recoveryConfig(MechVWL)
	cfg.BER = 1
	l := New(k, cfg, 0, DirRequest, 0, packet.ProcessorID, 0, 1)
	l.Deliver = func(p *packet.Packet) { t.Fatalf("corrupt packet %v delivered", p) }
	var dropped []*packet.Packet
	l.OnDrop = func(p *packet.Packet) { dropped = append(dropped, p) }

	l.Enqueue(&packet.Packet{ID: 1, Kind: packet.ReadReq, Src: packet.ProcessorID, Dst: 0})
	k.RunAll() // must terminate: the ladder bounds the retry loop

	want := EscalationStats{Degrades: 1, Retrains: 1, HardFails: 1}
	if l.Escalations() != want {
		t.Fatalf("escalations = %+v, want %+v", l.Escalations(), want)
	}
	if !l.Failed() {
		t.Fatalf("state = %v after the ladder, want failed", l.State())
	}
	if len(dropped) != 1 || dropped[0].ID != 1 {
		t.Fatalf("dropped = %v, want packet 1", dropped)
	}
	// Two CRC retries per rung, three rungs.
	if l.Retries() != 6 {
		t.Fatalf("retries = %d, want 6", l.Retries())
	}
}

// TestEscalationSkipsDegradeWithoutModes: with MechNone there is no
// narrower lane mode, so the first exhausted streak retrains directly.
func TestEscalationSkipsDegradeWithoutModes(t *testing.T) {
	k := sim.NewKernel()
	cfg := recoveryConfig(MechNone)
	cfg.BER = 1
	l := New(k, cfg, 0, DirRequest, 0, packet.ProcessorID, 0, 1)
	l.Deliver = func(p *packet.Packet) { t.Fatalf("corrupt packet %v delivered", p) }

	l.Enqueue(&packet.Packet{ID: 1, Kind: packet.ReadReq, Src: packet.ProcessorID, Dst: 0})
	k.RunAll()

	want := EscalationStats{Degrades: 0, Retrains: 1, HardFails: 1}
	if l.Escalations() != want {
		t.Fatalf("escalations = %+v, want %+v", l.Escalations(), want)
	}
	if !l.Failed() {
		t.Fatalf("state = %v, want failed", l.State())
	}
}

// TestCleanTransmitResetsLadder: a burst that ends mid-ladder must reset
// the escalation level — the next burst restarts from the degrade rung
// rather than resuming where the previous one left off.
func TestCleanTransmitResetsLadder(t *testing.T) {
	k := sim.NewKernel()
	l := New(k, recoveryConfig(MechVWL), 0, DirRequest, 0, packet.ProcessorID, 0, 1)
	var delivered []*packet.Packet
	l.Deliver = func(p *packet.Packet) { delivered = append(delivered, p) }
	l.OnDrop = func(p *packet.Packet) {}

	l.SetBER(1)
	l.Enqueue(&packet.Packet{ID: 1, Kind: packet.ReadReq, Src: packet.ProcessorID, Dst: 0})
	for i := 0; l.Escalations().Degrades == 0; i++ {
		if i > 1000 {
			t.Fatal("degrade rung never reached")
		}
		k.Run(k.Now() + 10*sim.Nanosecond)
	}

	// Burst ends before the retrain rung: the packet goes through and the
	// ladder must fully unwind.
	l.SetBER(0)
	k.RunAll()
	if len(delivered) != 1 || delivered[0].ID != 1 {
		t.Fatalf("delivered = %v, want packet 1", delivered)
	}
	if got := l.Escalations(); got != (EscalationStats{Degrades: 1}) {
		t.Fatalf("escalations = %+v, want only the one degrade", got)
	}

	// A fresh burst climbs the whole ladder from the bottom again.
	l.SetBER(1)
	l.Enqueue(&packet.Packet{ID: 2, Kind: packet.ReadReq, Src: packet.ProcessorID, Dst: 0})
	k.RunAll()
	want := EscalationStats{Degrades: 2, Retrains: 1, HardFails: 1}
	if l.Escalations() != want {
		t.Fatalf("escalations after second burst = %+v, want %+v", l.Escalations(), want)
	}
}

// TestFailCancelsRetrain: a Fail landing mid-training must win — the
// pending training-complete event observes the stale sequence and
// no-ops. A second Repair then completes normally.
func TestFailCancelsRetrain(t *testing.T) {
	k := sim.NewKernel()
	l := New(k, recoveryConfig(MechVWL), 0, DirRequest, 0, packet.ProcessorID, 0, 1)
	l.Deliver = func(p *packet.Packet) {}

	l.Fail()
	if !l.Repair() {
		t.Fatal("first Repair refused")
	}
	l.Fail() // dies again mid-training
	k.RunAll()
	if !l.Failed() {
		t.Fatalf("state = %v after mid-training Fail, want failed", l.State())
	}

	if !l.Repair() {
		t.Fatal("second Repair refused")
	}
	k.RunAll()
	if l.State() != StateOn {
		t.Fatalf("state = %v after second repair, want on", l.State())
	}
	if l.Repairs() != 2 {
		t.Fatalf("Repairs = %d, want 2", l.Repairs())
	}
}
