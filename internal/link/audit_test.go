package link

import (
	"strings"
	"testing"

	"memnet/internal/audit"
	"memnet/internal/packet"
	"memnet/internal/sim"
)

// TestLegalTransitionLattice pins the full state lattice.
func TestLegalTransitionLattice(t *testing.T) {
	legal := map[[2]State]bool{
		{StateOn, StateOff}:            true,
		{StateOff, StateWaking}:        true,
		{StateWaking, StateOn}:         true,
		{StateWaking, StateOff}:        true,
		{StateOn, StateFailed}:         true,
		{StateOff, StateFailed}:        true,
		{StateWaking, StateFailed}:     true,
		{StateOn, StateRetraining}:     true, // CRC escalation retrains a live link
		{StateFailed, StateRetraining}: true, // repair
		{StateRetraining, StateOn}:     true, // training complete
		{StateRetraining, StateFailed}: true, // killed mid-training
	}
	states := []State{StateOn, StateOff, StateWaking, StateFailed, StateRetraining}
	for _, from := range states {
		for _, to := range states {
			want := legal[[2]State{from, to}]
			if got := legalTransition(from, to); got != want {
				t.Errorf("legalTransition(%s, %s) = %v, want %v", from, to, got, want)
			}
		}
	}
}

// TestSetStateReportsIllegalTransition checks that a lattice breach is
// reported with the offending transition (and that the state still
// changes, so the caller's bug — not a secondary cascade — is what the
// diagnostics show).
func TestSetStateReportsIllegalTransition(t *testing.T) {
	k, l, _ := testLink(t, Config{})
	a := audit.New(audit.Config{}, k.Now)
	l.AttachAudit(a)
	l.setState(StateWaking) // on -> waking skips the off state
	if a.Count() != 1 {
		t.Fatalf("violations = %d, want 1", a.Count())
	}
	v := a.Violations()[0]
	if v.Component != "link[0]" || v.Rule != "state-lattice" || !strings.Contains(v.Detail, "on -> waking") {
		t.Fatalf("violation = %+v", v)
	}
	if l.State() != StateWaking {
		t.Fatalf("state = %v, want the transition applied anyway", l.State())
	}
	// A failed link must never come back.
	l.setState(StateFailed)
	before := a.Count()
	l.setState(StateOn)
	if a.Count() != before+1 {
		t.Fatal("failed -> on transition not reported")
	}
}

// TestAuditEnqueueDirectionKind checks the sampled per-packet check: an
// upstream (response) packet on a request link is a wiring bug.
func TestAuditEnqueueDirectionKind(t *testing.T) {
	k, l, _ := testLink(t, Config{})
	a := audit.New(audit.Config{SampleEvery: 1}, k.Now)
	l.AttachAudit(a)
	l.Enqueue(pkt(1, packet.ReadReq)) // correct direction
	if a.Count() != 0 {
		t.Fatalf("clean enqueue reported %d violations", a.Count())
	}
	l.Enqueue(pkt(2, packet.ReadResp)) // response on a request link
	if a.Count() != 1 {
		t.Fatalf("violations = %d, want 1", a.Count())
	}
	if v := a.Violations()[0]; v.Rule != "direction-kind" {
		t.Fatalf("violation = %+v", v)
	}
}

// TestAuditCleanTrafficNoViolations drives VWL+ROO traffic with churn at
// full sampling rate and requires a clean audit: the sweep's bounds
// (buffer, modes, energy monotonicity, busy time) hold on a healthy link.
func TestAuditCleanTrafficNoViolations(t *testing.T) {
	k, l, _ := testLink(t, Config{Mechanism: MechVWL, ROO: true, Wakeup: 14 * sim.Nanosecond})
	a := audit.New(audit.Config{SampleEvery: 1, SweepEvery: 8}, k.Now)
	l.AttachAudit(a)
	rng := sim.NewRNG(99)
	var id uint64
	for burst := 0; burst < 40; burst++ {
		at := k.Now() + sim.Duration(rng.Uint64()%uint64(2*sim.Microsecond))
		k.Schedule(at, func() {
			for i := 0; i < int(rng.Uint64()%6); i++ {
				id++
				l.Enqueue(pkt(id, packet.ReadReq))
			}
		})
		k.RunAll()
		l.MaybeTurnOff() // exercise the ROO lattice between bursts
	}
	a.RunSweeps()
	if a.Count() != 0 {
		t.Fatalf("healthy link reported %d violations: %v", a.Count(), a.Violations())
	}
	if a.Observations() == 0 {
		t.Fatal("auditor observed nothing — hooks not wired")
	}
}

// TestAuditSweepCatchesCorruptedState corrupts link accounting directly
// and checks the sweep notices each class of breach.
func TestAuditSweepCatchesCorruptedState(t *testing.T) {
	k, l, _ := testLink(t, Config{})
	a := audit.New(audit.Config{}, k.Now)
	l.AttachAudit(a)
	l.Enqueue(pkt(1, packet.ReadReq))
	k.RunAll()

	l.bwMode = NumModes(MechNone) + 3 // out of range
	a.RunSweeps()
	if a.Count() == 0 {
		t.Fatal("bw-mode corruption not detected")
	}
	found := false
	for _, v := range a.Violations() {
		if v.Rule == "bw-mode-range" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no bw-mode-range violation in %v", a.Violations())
	}

	l.bwMode = 0
	l.energyActive = -1 // negative energy is never physical
	a.RunSweeps()
	found = false
	for _, v := range a.Violations() {
		if v.Rule == "energy-sign" || v.Rule == "energy-monotone" {
			found = true
		}
	}
	if !found {
		t.Fatalf("energy corruption not detected: %v", a.Violations())
	}
}
