// Command power_tuning sweeps the allowable-memory-slowdown factor α and
// the circuit mechanisms for one workload/topology, showing the
// power/performance trade-off curve the paper's §V-C and §VI-D discuss.
package main

import (
	"flag"
	"fmt"
	"log"

	"memnet/internal/core"
	"memnet/internal/exp"
	"memnet/internal/topology"
	"memnet/internal/workload"
)

func main() {
	wlName := flag.String("wl", "mg.D", "workload profile")
	topoName := flag.String("topo", "star", "topology")
	flag.Parse()

	wl, err := workload.ByName(*wlName)
	if err != nil {
		log.Fatal(err)
	}
	kind, err := topology.ParseKind(*topoName)
	if err != nil {
		log.Fatal(err)
	}

	runner := exp.NewRunner()
	base := exp.Spec{Workload: wl, Topology: kind, Size: exp.Big}
	fp := runner.FPBaseline(base)
	fmt.Printf("workload %s on big %s network: full power %.2f W/HMC, %.0fM acc/s\n\n",
		wl.Name, kind, fp.PerHMC.Total(), fp.Throughput/1e6)

	fmt.Printf("%-9s %-16s %6s %12s %10s\n", "mech", "policy", "alpha", "power saving", "perf cost")
	for _, mech := range []exp.Mech{exp.MechVWL, exp.MechROO, exp.MechVWLROO} {
		for _, pol := range []core.PolicyKind{core.PolicyUnaware, core.PolicyAware} {
			for _, alpha := range []float64{0.025, 0.05, 0.10, 0.30} {
				spec := base
				spec.Mech = mech
				spec.Policy = pol
				spec.Alpha = alpha
				res := runner.Run(spec)
				saving := 1 - res.Power.Total()/fp.Power.Total()
				fmt.Printf("%-9s %-16s %5.1f%% %11.1f%% %9.1f%%\n",
					mech, pol, 100*alpha, 100*saving, 100*runner.PerfDegradation(res))
			}
		}
	}
	fmt.Println("\nPower saving saturates with alpha while performance keeps degrading —")
	fmt.Println("the diminishing-returns argument (§V-C) that motivates network-aware management.")
}
