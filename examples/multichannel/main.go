// Command multichannel demonstrates the multi-channel extension (the
// paper's §III-C future-work axis): the same workload on 1, 2, and 4
// page-interleaved channels, each channel independently managed. More
// channels spread the traffic thinner, so idle I/O dominates even harder —
// and network-aware management recovers more of it.
package main

import (
	"fmt"
	"log"

	"memnet/internal/core"
	"memnet/internal/link"
	"memnet/internal/multichannel"
	"memnet/internal/network"
	"memnet/internal/sim"
	"memnet/internal/topology"
	"memnet/internal/workload"
)

func main() {
	wl, err := workload.ByName("mg.D")
	if err != nil {
		log.Fatal(err)
	}

	run := func(channels int, policy core.PolicyKind) (wPerHMC, idleFrac, thr float64) {
		k := sim.NewKernel()
		netCfg := network.DefaultConfig()
		netCfg.Mechanism = link.MechVWL
		netCfg.ROO = true
		perChannel := (wl.Modules(4) + channels - 1) / channels
		if perChannel < 1 {
			perChannel = 1
		}
		sys, err := multichannel.New(k, multichannel.Config{
			Channels:          channels,
			Topology:          topology.Star,
			ModulesPerChannel: perChannel,
			Network:           netCfg,
			Management:        core.DefaultConfig(policy, 0.05),
		})
		if err != nil {
			log.Fatal(err)
		}
		fe, err := sys.AttachFrontEnd(wl, workload.DefaultFrontEndConfig(7))
		if err != nil {
			log.Fatal(err)
		}
		fe.Start()
		k.Run(100 * sim.Microsecond)
		warm := sys.TakeSnapshot()
		k.Run(500 * sim.Microsecond)
		end := sys.TakeSnapshot()
		p := multichannel.IntervalPower(warm, end)
		return p.Total() / float64(sys.Modules()), p.IdleIO / p.Total(),
			multichannel.Throughput(warm, end)
	}

	fmt.Printf("workload %s, star channels, VWL+ROO links, alpha=5%%\n\n", wl.Name)
	fmt.Printf("%8s  %-14s %8s %8s %12s\n", "channels", "policy", "W/HMC", "idleIO", "throughput")
	for _, ch := range []int{1, 2, 4} {
		for _, pol := range []core.PolicyKind{core.PolicyNone, core.PolicyAware} {
			w, idle, thr := run(ch, pol)
			fmt.Printf("%8d  %-14s %8.2f %7.0f%% %9.0fM/s\n", ch, pol, w, 100*idle, thr/1e6)
		}
	}
	fmt.Println("\nPer-channel utilization halves with each doubling of channels, so the")
	fmt.Println("idle-I/O share grows — management matters more, not less, at scale.")
}
