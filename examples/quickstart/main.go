// Command quickstart builds a small HMC memory network, runs one workload
// under network-aware power management, and prints the power breakdown and
// performance — the fastest way to see the library end to end.
package main

import (
	"fmt"
	"log"

	"memnet/internal/core"
	"memnet/internal/exp"
	"memnet/internal/sim"
	"memnet/internal/topology"
	"memnet/internal/workload"
)

func main() {
	wl, err := workload.ByName("mixB")
	if err != nil {
		log.Fatal(err)
	}

	runner := exp.NewRunner()
	runner.SimTime = 400 * sim.Microsecond

	base := exp.Spec{
		Workload: wl,
		Topology: topology.Star,
		Size:     exp.Small,
	}

	fp := runner.FPBaseline(base)
	fmt.Printf("workload %s on a %s %s network (%d modules, %d issue slots)\n\n",
		wl.Name, base.Size, base.Topology, fp.Modules, fp.Slots)
	fmt.Printf("full power:      %6.2f W/HMC  (idle I/O %.0f%% of total)  %.1fM acc/s  chanUtil %.0f%%\n",
		fp.PerHMC.Total(), 100*fp.IdleIOFraction(), fp.Throughput/1e6, 100*fp.ChannelUtil)

	for _, pol := range []core.PolicyKind{core.PolicyUnaware, core.PolicyAware} {
		spec := base
		spec.Mech = exp.MechVWLROO
		spec.Policy = pol
		spec.Alpha = 0.05
		res := runner.Run(spec)
		fmt.Printf("%-16s %6.2f W/HMC  (idle I/O %.0f%% of total)  %.1fM acc/s  perf -%.1f%%\n",
			pol.String()+":", res.PerHMC.Total(), 100*res.IdleIOFraction(),
			res.Throughput/1e6, 100*runner.PerfDegradation(res))
	}
}
