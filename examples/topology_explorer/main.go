// Command topology_explorer compares the four memory-network topologies
// of the paper's Fig. 3 for one workload: hop distances, utilization, and
// the full-power per-HMC power breakdown (the Fig. 5/6 view, one workload
// at a time).
package main

import (
	"flag"
	"fmt"
	"log"

	"memnet/internal/exp"
	"memnet/internal/topology"
	"memnet/internal/workload"
)

func main() {
	wlName := flag.String("wl", "is.D", "workload profile")
	sizeName := flag.String("size", "big", "small or big")
	flag.Parse()

	wl, err := workload.ByName(*wlName)
	if err != nil {
		log.Fatal(err)
	}
	size := exp.Small
	if *sizeName == "big" {
		size = exp.Big
	}

	runner := exp.NewRunner()
	fmt.Printf("workload %s (%d GB footprint) on %s networks (%d modules)\n\n",
		wl.Name, wl.FootprintGB, size, wl.Modules(size.ChunkGB()))
	fmt.Printf("%-14s %8s %9s %9s %9s %9s %10s %8s\n",
		"topology", "maxHops", "links/acc", "chanUtil", "linkUtil", "W/HMC", "idleIO", "latency")
	for _, kind := range topology.Kinds {
		topo, err := topology.Build(kind, wl.Modules(size.ChunkGB()))
		if err != nil {
			log.Fatal(err)
		}
		res := runner.Run(exp.Spec{Workload: wl, Topology: kind, Size: size})
		fmt.Printf("%-14s %8d %9.2f %8.1f%% %8.1f%% %9.2f %9.1f%% %8s\n",
			kind.String(), topo.MaxDepth(), res.LinksPerAccess,
			100*res.ChannelUtil, 100*res.LinkUtil,
			res.PerHMC.Total(), 100*res.IdleIOFraction(), res.AvgReadLatency)
	}
	fmt.Println("\nNote how traffic attenuation keeps average link utilization far below")
	fmt.Println("channel utilization — the reason idle I/O dominates memory network power.")
}
