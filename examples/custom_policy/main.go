// Command custom_policy shows how to plug a user-defined power-management
// policy into the epoch machinery via core.Config.Custom. The example
// policy is a deliberately simple utilization-threshold heuristic: links
// below 5% utilization drop to the narrowest width, links above 20% run
// full, everything else takes the middle mode — no AMS accounting at all.
// Comparing it against the paper's policies on the same workload shows why
// latency-budgeted management wins: the heuristic either leaves power on
// the table or blows past any performance target, depending on thresholds.
package main

import (
	"fmt"
	"log"

	"memnet/internal/core"
	"memnet/internal/link"
	"memnet/internal/network"
	"memnet/internal/sim"
	"memnet/internal/topology"
	"memnet/internal/workload"
)

// utilPolicy sets each link's width from its last-epoch utilization.
type utilPolicy struct {
	low, high float64
}

// Name implements core.Policy.
func (p *utilPolicy) Name() string { return "util-threshold" }

// Reconfigure implements core.Policy.
func (p *utilPolicy) Reconfigure(m *core.Manager, e *core.EpochData) []sim.Duration {
	ams := make([]sim.Duration, len(m.Net.Links))
	for i, l := range m.Net.Links {
		util := float64(e.Counters[i].BusyTime) / float64(e.EpochLen)
		switch {
		case util < p.low:
			l.SetBWMode(3)
		case util > p.high:
			l.SetBWMode(0)
		default:
			l.SetBWMode(1)
		}
		// No violation budget: effectively unlimited AMS.
		ams[i] = sim.Duration(1) << 60
	}
	return ams
}

func main() {
	wl, err := workload.ByName("mixC")
	if err != nil {
		log.Fatal(err)
	}

	// Custom policies plug into the epoch machinery directly, so this
	// example builds the network itself rather than going through the
	// exp.Spec harness (which covers only the built-in policies).
	run := func(custom core.Policy, builtin core.PolicyKind) (powerW, thr float64) {
		kernel := sim.NewKernel()
		topo, err := topology.Build(topology.Star, wl.Modules(4))
		if err != nil {
			log.Fatal(err)
		}
		ncfg := network.DefaultConfig()
		ncfg.Mechanism = link.MechVWL
		net := network.New(kernel, topo, ncfg)
		mcfg := core.DefaultConfig(builtin, 0.05)
		mcfg.Custom = custom
		core.Attach(kernel, net, mcfg)
		fe, err := workload.NewFrontEnd(kernel, net, wl, workload.DefaultFrontEndConfig(1))
		if err != nil {
			log.Fatal(err)
		}
		fe.Start()
		kernel.Run(100 * sim.Microsecond)
		warm := net.TakeSnapshot()
		kernel.Run(500 * sim.Microsecond)
		end := net.TakeSnapshot()
		return network.IntervalPower(warm, end).Total(), network.Throughput(warm, end)
	}

	fpPow, fpThr := run(nil, core.PolicyNone)
	fmt.Printf("%-18s %8s %12s %10s\n", "policy", "W/HMC", "power saving", "perf cost")
	report := func(name string, pow, thr float64) {
		fmt.Printf("%-18s %8.2f %11.1f%% %9.1f%%\n",
			name, pow/float64(wl.Modules(4)), 100*(1-pow/fpPow), 100*(1-thr/fpThr))
	}
	report("full power", fpPow, fpThr)
	for _, cfg := range []utilPolicy{{0.05, 0.20}, {0.01, 0.10}} {
		p := cfg
		pow, thr := run(&p, core.PolicyUnaware)
		report(fmt.Sprintf("util<%g%%/>%g%%", 100*p.low, 100*p.high), pow, thr)
	}
	unPow, unThr := run(nil, core.PolicyUnaware)
	report("network-unaware", unPow, unThr)
	awPow, awThr := run(nil, core.PolicyAware)
	report("network-aware", awPow, awThr)
}
